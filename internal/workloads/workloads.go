// Package workloads defines the framework the six evaluated HPC kernels run
// in (Table 2 of the paper): a Workload drives an emulated machine through
// named phases, issuing both real computation (so results can be verified)
// and simulated memory accesses (so the profiler can observe traffic).
//
// Each application lives in its own subpackage; this package holds the
// shared vector/array instrumentation helpers and the registry used by the
// experiment drivers.
package workloads

import (
	"repro/internal/machine"
	"repro/internal/mem"
)

// Workload is one application instance at a fixed input scale.
type Workload interface {
	// Name is the short application name (e.g. "HPL").
	Name() string
	// Run executes all phases on the machine. Implementations call
	// m.StartPhase/m.EndPhase around each phase and must be deterministic
	// for a given construction.
	Run(m *machine.Machine)
}

// Vec couples a real float64 slice with its simulated allocation so kernels
// can do actual arithmetic while the machine observes the traffic.
type Vec struct {
	Data []float64
	reg  *mem.Region
	m    *machine.Machine
}

// NewVec allocates an n-element vector named name.
func NewVec(m *machine.Machine, name string, n int) *Vec {
	return &Vec{
		Data: make([]float64, n),
		reg:  m.Alloc(name, uint64(n)*8),
		m:    m,
	}
}

// NewVecPlaced allocates with an explicit placement policy.
func NewVecPlaced(m *machine.Machine, name string, n int, pl mem.Placement) *Vec {
	return &Vec{
		Data: make([]float64, n),
		reg:  m.AllocPlaced(name, uint64(n)*8, pl),
		m:    m,
	}
}

// Len returns the element count.
func (v *Vec) Len() int { return len(v.Data) }

// Region exposes the backing simulated region.
func (v *Vec) Region() *mem.Region { return v.reg }

// Addr returns the simulated address of element i.
func (v *Vec) Addr(i int) uint64 { return v.reg.Base + uint64(i)*8 }

// ReadRange simulates a sequential read of elements [i, i+n).
func (v *Vec) ReadRange(i, n int) {
	if n <= 0 {
		return
	}
	v.m.Read(v.Addr(i), uint64(n)*8)
}

// WriteRange simulates a sequential write of elements [i, i+n).
func (v *Vec) WriteRange(i, n int) {
	if n <= 0 {
		return
	}
	v.m.Write(v.Addr(i), uint64(n)*8)
}

// ReadAt simulates a single-element read (for indexed gathers) and returns
// the value.
func (v *Vec) ReadAt(i int) float64 {
	v.m.Read(v.Addr(i), 8)
	return v.Data[i]
}

// WriteAt simulates a single-element write (for scatters) and stores x.
func (v *Vec) WriteAt(i int, x float64) {
	v.m.Write(v.Addr(i), 8)
	v.Data[i] = x
}

// Free releases the simulated allocation. The Go slice remains usable, but
// further simulated accesses panic — matching a use-after-free.
func (v *Vec) Free() { v.m.Free(v.reg) }

// IntVec couples an int32 slice with a simulated allocation (indices,
// offsets, graph structures).
type IntVec struct {
	Data []int32
	reg  *mem.Region
	m    *machine.Machine
}

// NewIntVec allocates an n-element int32 vector named name.
func NewIntVec(m *machine.Machine, name string, n int) *IntVec {
	return &IntVec{
		Data: make([]int32, n),
		reg:  m.Alloc(name, uint64(n)*4),
		m:    m,
	}
}

// Len returns the element count.
func (v *IntVec) Len() int { return len(v.Data) }

// Region exposes the backing simulated region.
func (v *IntVec) Region() *mem.Region { return v.reg }

// Addr returns the simulated address of element i.
func (v *IntVec) Addr(i int) uint64 { return v.reg.Base + uint64(i)*4 }

// ReadRange simulates a sequential read of elements [i, i+n).
func (v *IntVec) ReadRange(i, n int) {
	if n <= 0 {
		return
	}
	v.m.Read(v.Addr(i), uint64(n)*4)
}

// WriteRange simulates a sequential write of elements [i, i+n).
func (v *IntVec) WriteRange(i, n int) {
	if n <= 0 {
		return
	}
	v.m.Write(v.Addr(i), uint64(n)*4)
}

// ReadAt simulates a single-element read and returns the value.
func (v *IntVec) ReadAt(i int) int32 {
	v.m.Read(v.Addr(i), 4)
	return v.Data[i]
}

// WriteAt simulates a single-element write and stores x.
func (v *IntVec) WriteAt(i int, x int32) {
	v.m.Write(v.Addr(i), 4)
	v.Data[i] = x
}

// Free releases the simulated allocation.
func (v *IntVec) Free() { v.m.Free(v.reg) }
