package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads/registry"
)

// TestProfilerConcurrentCallersShareOneExecution hammers one profiler from
// many goroutines and checks that (a) every caller sees the same report and
// (b) the single-flight cache ran each distinct profile exactly once.
func TestProfilerConcurrentCallersShareOneExecution(t *testing.T) {
	p := NewProfiler(machine.Default())
	entry, err := registry.Get("XSBench")
	if err != nil {
		t.Fatal(err)
	}

	seq := NewProfiler(machine.Default())
	wantPeak := seq.PeakUsage(entry, 1)
	wantL2 := seq.Level2(entry, 1, 0.5)

	var wg sync.WaitGroup
	var bad atomic.Int32
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.PeakUsage(entry, 1) != wantPeak {
				bad.Add(1)
			}
			l2 := p.Level2(entry, 1, 0.5)
			if l2.RCap != wantL2.RCap || len(l2.Phases) != len(wantL2.Phases) {
				bad.Add(1)
			}
			for i := range l2.Phases {
				if l2.Phases[i].RemoteAccessRatio != wantL2.Phases[i].RemoteAccessRatio {
					bad.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d concurrent callers saw a report differing from the sequential profiler", n)
	}

	// The caches hold exactly one entry per distinct key. Level2 computes
	// the peak via ConfigForLocalFraction, so the peak map has one entry too.
	p.cache.mu.Lock()
	defer p.cache.mu.Unlock()
	if len(p.cache.l2) != 1 || len(p.cache.peak) != 1 {
		t.Fatalf("cache sizes: l2=%d peak=%d, want 1 and 1", len(p.cache.l2), len(p.cache.peak))
	}
}

// TestProfilerCachedReportsAreStable re-requests a cached Level-1 report
// and checks it is the same value (memoization must not recompute or
// mutate).
func TestProfilerCachedReportsAreStable(t *testing.T) {
	p := NewProfiler(machine.Default())
	entry, err := registry.Get("XSBench")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Level1(entry, 1)
	b := p.Level1(entry, 1)
	if a.PeakFootprint != b.PeakFootprint || a.Accuracy != b.Accuracy ||
		len(a.Phases) != len(b.Phases) {
		t.Fatal("cached Level1 report changed between calls")
	}
	if &a.Phases[0] != &b.Phases[0] {
		t.Fatal("cached Level1 report was recomputed instead of memoized")
	}
}
