package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CacheKeysAnalyzer enforces the typed-cache-key contract (PR 8): memo
// maps, the shared profile cache and single-flight groups key on typed
// comparable structs whose fields are exactly the inputs the cached value
// depends on. Sprintf- or concatenation-built string keys are banned at
// those sinks: they collide under adversarial separators, drift silently
// when a dependency is added, and defeat the dependency-sharing design.
//
// Three shapes are flagged:
//
//  1. a string argument built by fmt.Sprintf or string concatenation
//     passed to a method or function on a cache-like target (type or
//     function name containing cache/flight/group/memo/singleflight);
//  2. a cache-like method or function *declaring* a string parameter
//     named key (the API itself invites stringly keys);
//  3. a map index whose key expression is a direct fmt.Sprintf call or a
//     non-constant string concatenation.
func CacheKeysAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "cachekeys",
		Doc:  "cache, memo and single-flight keys must be typed comparable structs, not built strings",
		Appl: KindLibrary,
		Run:  runCacheKeys,
	}
}

func runCacheKeys(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCacheCall(pass, n)
			case *ast.FuncDecl:
				checkKeyParam(pass, n)
			case *ast.IndexExpr:
				checkMapIndexKey(pass, n)
			}
			return true
		})
	}
}

// cacheLike reports whether a type or function name suggests a keyed
// memoization sink.
func cacheLike(name string) bool {
	l := strings.ToLower(name)
	for _, m := range []string{"cache", "flight", "memo", "singleflight"} {
		if strings.Contains(l, m) {
			return true
		}
	}
	return false
}

// checkCacheCall flags built-string arguments flowing into cache-like
// callees.
func checkCacheCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	target := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		target = recvTypeName(sig.Recv().Type()) + "." + target
	}
	if !cacheLike(target) {
		return
	}
	for _, arg := range call.Args {
		if t := pass.TypeOf(arg); t == nil || !isString(t) {
			continue
		}
		if pos, ok := builtString(pass, arg); ok {
			pass.Reportf(pos, "built string key passed to %s: cache keys must be typed comparable structs carrying the value's actual dependencies", target)
		}
	}
}

// checkKeyParam flags cache-like functions and methods whose signature
// declares a string key parameter.
func checkKeyParam(pass *Pass, decl *ast.FuncDecl) {
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		if t := pass.TypeOf(decl.Recv.List[0].Type); t != nil {
			name = recvTypeName(t) + "." + name
		}
	}
	if !cacheLike(name) {
		return
	}
	for _, field := range decl.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isString(t) {
			continue
		}
		for _, id := range field.Names {
			if l := strings.ToLower(id.Name); l == "key" || strings.HasSuffix(l, "key") {
				pass.Reportf(id.Pos(), "%s keys by string parameter %q: declare a typed comparable struct key instead", name, id.Name)
			}
		}
	}
}

// checkMapIndexKey flags map reads and writes indexed by a freshly built
// string.
func checkMapIndexKey(pass *Pass, idx *ast.IndexExpr) {
	t := pass.TypeOf(idx.X)
	if t == nil {
		return
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok || !isString(m.Key()) {
		return
	}
	if pos, ok := builtString(pass, idx.Index); ok {
		pass.Reportf(pos, "map indexed by a built string: key this map by a typed comparable struct (stringly keys collide and drift)")
	}
}

// builtString reports whether e is a string freshly assembled at this
// site: a fmt.Sprintf call, or a concatenation with at least one
// non-constant operand. Constant folding ("a"+"b") and calls returning
// strings (canonicalizers, method values) are fine — the contract targets
// ad-hoc key assembly, not string use.
func builtString(pass *Pass, e ast.Expr) (token.Pos, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(pass, e); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "fmt" && (fn.Name() == "Sprintf" || fn.Name() == "Sprint") {
			return e.Pos(), true
		}
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return 0, false
		}
		if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
			return 0, false // constant fold
		}
		return e.Pos(), true
	}
	return 0, false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// recvTypeName names a receiver's base named type ("" when anonymous).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
