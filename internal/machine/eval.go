package machine

import (
	"repro/internal/cache"
	"repro/internal/link"
)

// phaseEval holds the loi-independent pieces of the PhaseTime fixed point
// for one phase, precomputed once so repeated evaluations at different
// interference levels skip the per-call link construction and the
// stats-to-bytes arithmetic. Every field is produced by exactly the same
// floating-point operations PhaseTime performs, in the same order, so an
// Evaluator result is bit-identical to the corresponding PhaseTime call.
type phaseEval struct {
	tCompute    float64
	tLocal      float64
	remoteBytes float64
	// latLocal is the precomputed local half of the latency term's
	// numerator: DemandMissLocal * LocalLatency.
	latLocal float64
	dmr      float64 // DemandMissRemote
	t0       float64 // uncontended initial guess for the fixed point
	// fixed is the phase time for any loi when the phase never touches the
	// link (no remote bytes, no remote demand misses): with those terms
	// exactly zero, background interference cannot reach the result.
	fixed    float64
	hasFixed bool
}

// Evaluator evaluates the PhaseTime timing model for a fixed set of phases
// on a fixed configuration, amortizing the per-call setup the plain
// Config.PhaseTime pays on every invocation: the link model is built once,
// the per-phase traffic/latency constants are folded once, and phases that
// never touch the link collapse to a precomputed constant. Results are
// bit-identical to Config.PhaseTime / Config.RunTime on the same inputs.
//
// An Evaluator is immutable after construction and safe for concurrent use:
// the shared link model is consulted only through its pure delay-model
// methods.
type Evaluator struct {
	cfg    Config
	lnk    *link.Link
	mlp    float64
	bgPeak float64 // Link.PeakTraffic, scales loi to raw background traffic
	phases []phaseEval
}

// NewEvaluator precomputes the timing-model invariants for phases on c.
func NewEvaluator(c Config, phases []PhaseStats) *Evaluator {
	e := &Evaluator{
		cfg:    c,
		lnk:    link.New(c.Link),
		bgPeak: c.Link.PeakTraffic,
		mlp:    c.MLP,
		phases: make([]phaseEval, len(phases)),
	}
	if e.mlp <= 0 {
		e.mlp = 1
	}
	for i, p := range phases {
		pe := &e.phases[i]
		if c.PeakFlops > 0 {
			pe.tCompute = p.Flops / c.PeakFlops
		}
		localEff := float64(p.LocalBytes) + c.StreamDemandPenalty*float64(p.StreamMissLocal)*cache.LineSize
		if c.LocalBandwidth > 0 {
			pe.tLocal = localEff / c.LocalBandwidth
		}
		pe.remoteBytes = float64(p.RemoteBytes) + c.StreamDemandPenalty*float64(p.StreamMissRemote)*cache.LineSize
		pe.latLocal = float64(p.DemandMissLocal) * c.LocalLatency
		pe.dmr = float64(p.DemandMissRemote)
		t := pe.tCompute + 1e-12
		if pe.tLocal > t {
			t = pe.tLocal
		}
		if pe.remoteBytes > 0 {
			tr := pe.remoteBytes / c.Link.DataBandwidth
			if tr > t {
				t = tr
			}
		}
		pe.t0 = t
		if pe.remoteBytes == 0 && pe.dmr == 0 {
			// The fixed point is independent of loi: solve it once.
			pe.fixed = e.solve(pe, 0)
			pe.hasFixed = true
		}
	}
	return e
}

// Len returns the number of phases the evaluator covers.
func (e *Evaluator) Len() int { return len(e.phases) }

// PhaseTime returns the modeled time of phase i under background
// interference loi — the same value e's Config.PhaseTime returns for the
// same phase and loi.
func (e *Evaluator) PhaseTime(i int, loi float64) float64 {
	pe := &e.phases[i]
	if pe.hasFixed {
		return pe.fixed
	}
	return e.solve(pe, loi)
}

// RunTime returns the total time of all phases at interference loi,
// matching Config.RunTime.
func (e *Evaluator) RunTime(loi float64) float64 {
	total := 0.0
	for i := range e.phases {
		total += e.PhaseTime(i, loi)
	}
	return total
}

// solve runs the (T, rho) fixed-point iteration of Config.PhaseTime on the
// precomputed constants. The loop body replicates PhaseTime operation for
// operation — any divergence shows up as a golden-artifact diff.
func (e *Evaluator) solve(pe *phaseEval, loi float64) float64 {
	c := &e.cfg
	l := e.lnk
	bgRaw := loi * e.bgPeak
	t := pe.t0
	for iter := 0; iter < 20; iter++ {
		appRemoteRate := pe.remoteBytes / t
		rho := l.Utilization(l.RawTraffic(appRemoteRate) + bgRaw)
		delay := l.DelayFactor(rho)

		effBW := c.Link.DataBandwidth / (1 + c.LatencyBWCoupling*(delay-1))
		share := l.ShareBandwidth(c.Link.DataBandwidth, bgRaw)
		if share < effBW {
			effBW = share
		}
		tRemote := 0.0
		if pe.remoteBytes > 0 && effBW > 0 {
			tRemote = pe.remoteBytes / effBW
		}

		latRemote := c.Link.Latency * l.DemandDelayFactor(rho)
		tLat := (pe.latLocal + pe.dmr*latRemote) / e.mlp

		tNew := maxf(pe.tCompute, pe.tLocal, tRemote) + tLat
		if tNew <= 0 {
			tNew = 1e-12
		}
		if relDiff(tNew, t) < 1e-9 {
			t = tNew
			break
		}
		t = tNew
	}
	return t
}
