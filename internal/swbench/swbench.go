// Package swbench benchmarks the sweep runner's cross-cell profile
// sharing: the same campaign grid is executed in isolated mode (a private
// profile cache per distinct platform — the pre-sharing behaviour) and in
// shared mode (one dependency-keyed core.SharedCache across every cell),
// and the wall-clock ratio between the two is the measured value of the
// sharing. Results are byte-identical across the modes by construction —
// the harness verifies it on every run — so the ratio is pure saved work.
//
// cmd/swbench is the CLI wrapper; its committed output, BENCH_sweep.json,
// pins the speedup on a link-axis-dominated grid in CI.
package swbench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// Schema identifies the JSON layout of a Result, first field of the
// emitted document.
const Schema = "swbench/v1"

// Config declares one benchmark: the campaign to time and how often.
type Config struct {
	// Grid is the campaign to execute in both modes.
	Grid sweep.Grid
	// Entries is the workload table (registry.All when nil).
	Entries []registry.Entry
	// Runs is the per-cell Monte-Carlo run count (the sweep default when
	// zero).
	Runs int
	// Reps is how many times each mode executes (min 1). Every rep starts
	// from a cold cache, so the median measures a fresh campaign, not a
	// warm-cache replay.
	Reps int
	// Workers is the fan-out width (sequential when <= 1).
	Workers int
	// Progress, when set, receives one line per finished rep.
	Progress func(format string, args ...any)
}

// Mode is one measured execution mode of the campaign.
type Mode struct {
	// WallSeconds are the per-rep campaign wall-clock times in rep order;
	// P50Seconds is their median and TotalSeconds their sum.
	WallSeconds  []float64 `json:"wall_seconds"`
	P50Seconds   float64   `json:"p50_seconds"`
	TotalSeconds float64   `json:"total_seconds"`
	// CellsPerSecond is grid cells (incl. the base reference row) divided
	// by the median wall-clock.
	CellsPerSecond float64 `json:"cells_per_second"`
	// Cache is the profile-cache counter snapshot of the last rep. Every
	// rep runs cold, so Misses counts the distinct sub-results actually
	// computed and Hits the cross-cell reuses; in isolated mode sharing is
	// off and the counters stay zero.
	Cache core.CacheStats `json:"cache"`
}

// Result is the benchmark document cmd/swbench emits as BENCH_sweep.json.
type Result struct {
	// Schema is the layout tag (the Schema constant).
	Schema string `json:"schema"`
	// Grid is the campaign's canonical grid key; Cells its generated cell
	// count (the base reference row adds one more); Workloads the table
	// width per cell.
	Grid      string `json:"grid"`
	Cells     int    `json:"cells"`
	Workloads int    `json:"workloads"`
	// Runs, Reps and Workers echo the configuration.
	Runs    int `json:"runs"`
	Reps    int `json:"reps"`
	Workers int `json:"workers"`
	// Isolated is the no-sharing baseline; Shared the dependency-keyed
	// shared-cache mode.
	Isolated Mode `json:"isolated"`
	Shared   Mode `json:"shared"`
	// Speedup is Isolated.P50Seconds / Shared.P50Seconds.
	Speedup float64 `json:"speedup"`
	// Identical records the byte-identity cross-check: the rendered sweep
	// artifact of the two modes compared equal. A run that ever produced
	// false indicates a correctness bug, not a benchmark artifact.
	Identical bool `json:"identical"`
}

// median returns the p50 of xs (mean of the middle pair for even counts).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Run executes the benchmark: Reps cold-cache executions of the grid in
// isolated mode, then in shared mode, cross-checking that both produce the
// byte-identical sweep artifact.
func Run(ctx context.Context, c Config) (*Result, error) {
	if err := c.Grid.Validate(); err != nil {
		return nil, err
	}
	entries := c.Entries
	if entries == nil {
		entries = registry.All()
	}
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	res := &Result{
		Schema:    Schema,
		Grid:      c.Grid.Key(),
		Cells:     c.Grid.Size(),
		Workloads: len(entries),
		Runs:      c.Runs,
		Reps:      reps,
		Workers:   c.Workers,
	}

	progress := c.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	renders := map[bool]string{}
	for _, isolated := range []bool{true, false} {
		mode := &res.Shared
		name := "shared"
		if isolated {
			mode = &res.Isolated
			name = "isolated"
		}
		for rep := 0; rep < reps; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r := &sweep.Runner{
				Grid:     c.Grid,
				Entries:  entries,
				Runs:     c.Runs,
				Isolated: isolated,
			}
			if !isolated {
				// A fresh cache per rep keeps every rep a cold run.
				r.Cache = core.NewSharedCache()
			}
			l := pool.NewLimiter(c.Workers)
			start := time.Now()
			camp, err := r.RunContext(ctx, l)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start).Seconds()
			mode.WallSeconds = append(mode.WallSeconds, wall)
			mode.TotalSeconds += wall
			if rep == 0 {
				renders[isolated] = report.RenderText(camp.Sweep())
			}
			if r.Cache != nil {
				mode.Cache = r.Cache.Stats()
			}
			progress("%s rep %d/%d: %.3fs", name, rep+1, reps, wall)
		}
		mode.P50Seconds = median(mode.WallSeconds)
		if mode.P50Seconds > 0 {
			mode.CellsPerSecond = float64(res.Cells+1) / mode.P50Seconds
		}
	}
	res.Identical = renders[true] == renders[false]
	if !res.Identical {
		return res, fmt.Errorf("swbench: isolated and shared campaigns rendered differently — sharing changed results")
	}
	if res.Shared.P50Seconds > 0 {
		res.Speedup = res.Isolated.P50Seconds / res.Shared.P50Seconds
	}
	return res, nil
}
