package mem

import (
	"testing"
	"testing/quick"
)

func TestFirstTouchSpill(t *testing.T) {
	s := NewSpace(Config{PageSize: 4096, LocalCapacity: 2 * 4096})
	r := s.Alloc("a", 4*4096)
	// Touch all four pages in order: first two land local, rest remote.
	for i := uint64(0); i < 4; i++ {
		s.Access(r.Base+i*4096, 64)
	}
	if got := s.Used(TierLocal); got != 2*4096 {
		t.Errorf("local used = %d, want %d", got, 2*4096)
	}
	if got := s.Used(TierRemote); got != 2*4096 {
		t.Errorf("remote used = %d, want %d", got, 2*4096)
	}
	if tier, _ := s.TierOf(r.Base); tier != TierLocal {
		t.Errorf("first page tier = %v, want local", tier)
	}
	if tier, _ := s.TierOf(r.Base + 3*4096); tier != TierRemote {
		t.Errorf("last page tier = %v, want remote", tier)
	}
}

func TestUnboundedLocal(t *testing.T) {
	s := NewSpace(Config{})
	r := s.Alloc("a", 1<<20)
	for off := uint64(0); off < 1<<20; off += 4096 {
		if tier := s.Access(r.Base+off, 64); tier != TierLocal {
			t.Fatalf("tier at %#x = %v, want local on unbounded system", off, tier)
		}
	}
	if rr := s.RemoteAccessRatio(); rr != 0 {
		t.Errorf("remote access ratio = %v, want 0", rr)
	}
}

func TestPlacementPolicies(t *testing.T) {
	s := NewSpace(Config{PageSize: 4096, LocalCapacity: 8 * 4096})
	rRemote := s.AllocPlaced("forced-remote", 4096, PlaceRemote)
	rLocal := s.AllocPlaced("forced-local", 4096, PlaceLocal)
	if tier := s.Access(rRemote.Base, 64); tier != TierRemote {
		t.Errorf("PlaceRemote page went to %v", tier)
	}
	if tier := s.Access(rLocal.Base, 64); tier != TierLocal {
		t.Errorf("PlaceLocal page went to %v", tier)
	}
}

func TestPlaceLocalFailover(t *testing.T) {
	s := NewSpace(Config{PageSize: 4096, LocalCapacity: 4096})
	a := s.AllocPlaced("a", 4096, PlaceLocal)
	b := s.AllocPlaced("b", 4096, PlaceLocal)
	s.Access(a.Base, 64)
	if tier := s.Access(b.Base, 64); tier != TierRemote {
		t.Errorf("second PlaceLocal page with full local tier = %v, want remote", tier)
	}
}

func TestFreeReturnsLocalCapacity(t *testing.T) {
	s := NewSpace(Config{PageSize: 4096, LocalCapacity: 4096})
	tmp := s.Alloc("tmp", 4096)
	s.Access(tmp.Base, 64) // occupies the only local page
	hot := s.Alloc("hot", 4096)
	if tier := s.Access(hot.Base, 64); tier != TierRemote {
		t.Fatalf("hot page with full local tier = %v, want remote", tier)
	}
	s.Free(tmp)
	if got := s.Used(TierLocal); got != 0 {
		t.Fatalf("local used after free = %d, want 0", got)
	}
	hot2 := s.Alloc("hot2", 4096)
	if tier := s.Access(hot2.Base, 64); tier != TierLocal {
		t.Errorf("page after free = %v, want local (freed capacity reused)", tier)
	}
}

func TestAccessFreedPagePanics(t *testing.T) {
	s := NewSpace(Config{})
	r := s.Alloc("a", 4096)
	s.Free(r)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on access to freed region")
		}
	}()
	s.Access(r.Base, 64)
}

func TestTrafficCounters(t *testing.T) {
	s := NewSpace(Config{PageSize: 4096, LocalCapacity: 4096})
	r := s.Alloc("a", 2*4096)
	s.Access(r.Base, 64)      // local
	s.Access(r.Base+4096, 64) // remote
	s.Access(r.Base+4096, 64) // remote again
	if got := s.TierBytes(TierLocal); got != 64 {
		t.Errorf("local bytes = %d, want 64", got)
	}
	if got := s.TierBytes(TierRemote); got != 128 {
		t.Errorf("remote bytes = %d, want 128", got)
	}
	if got := s.RemoteAccessRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("remote access ratio = %v, want 2/3", got)
	}
	s.ResetTraffic()
	if got := s.TierBytes(TierRemote); got != 0 {
		t.Errorf("remote bytes after reset = %d, want 0", got)
	}
	// Placement survives the reset.
	if got := s.RemoteCapacityRatio(); got != 0.5 {
		t.Errorf("remote capacity ratio = %v, want 0.5", got)
	}
}

func TestPerRegionOrdering(t *testing.T) {
	s := NewSpace(Config{})
	cold := s.Alloc("cold", 4096)
	hot := s.Alloc("hot", 4096)
	s.Access(cold.Base, 64)
	for i := 0; i < 10; i++ {
		s.Access(hot.Base, 64)
	}
	stats := s.PerRegion()
	if len(stats) != 2 {
		t.Fatalf("got %d regions, want 2", len(stats))
	}
	if stats[0].Region.Name != "hot" {
		t.Errorf("hottest region = %q, want hot", stats[0].Region.Name)
	}
	if stats[0].Accesses != 10 {
		t.Errorf("hot accesses = %d, want 10", stats[0].Accesses)
	}
}

func TestPageAccessCounts(t *testing.T) {
	s := NewSpace(Config{PageSize: 4096})
	r := s.Alloc("a", 3*4096)
	s.Access(r.Base, 64)
	s.Access(r.Base, 64)
	s.Access(r.Base+8192, 64)
	counts := s.PageAccessCounts()
	if len(counts) != 2 {
		t.Fatalf("touched pages = %d, want 2", len(counts))
	}
	sum := counts[0] + counts[1]
	if sum != 3 {
		t.Errorf("total page accesses = %d, want 3", sum)
	}
}

// Property: used capacity equals page size times the number of distinct
// touched pages, regardless of the access pattern.
func TestCapacityAccountingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewSpace(Config{PageSize: 4096, LocalCapacity: 16 * 4096})
		r := s.Alloc("a", 64*4096)
		seen := map[uint64]bool{}
		for _, o := range offsets {
			addr := r.Base + uint64(o)%(64*4096)
			s.Access(addr, 64)
			seen[addr/4096] = true
		}
		return s.Footprint() == uint64(len(seen))*4096
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: remote capacity ratio is always within [0,1] and local usage
// never exceeds configured capacity.
func TestLocalCapacityNeverExceededProperty(t *testing.T) {
	f := func(touches []uint16, capPages uint8) bool {
		capacity := (uint64(capPages%32) + 1) * 4096
		s := NewSpace(Config{PageSize: 4096, LocalCapacity: capacity})
		r := s.Alloc("a", 128*4096)
		for _, o := range touches {
			s.Access(r.Base+uint64(o)%(128*4096), 64)
		}
		ratio := s.RemoteCapacityRatio()
		return s.Used(TierLocal) <= capacity && ratio >= 0 && ratio <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
