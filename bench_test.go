// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates the corresponding
// artifact through the same driver the memdis CLI uses, so `go test
// -bench=.` reproduces every row and series the paper reports.
//
// The suite is shared across iterations of a single benchmark (the
// profiler's profile caches mirror the paper's profile-once workflow), but
// each benchmark function constructs its own suite so figures can be
// benchmarked in isolation.
//
// Pass -args -j N to fan each driver out over N workers (0 = all cores),
// e.g. `go test -bench Figure13 -args -j 8`; rendered artifacts are
// byte-identical for any worker count.
package repro

import (
	"flag"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pool"
)

// benchWorkers is the bench-harness counterpart of `memdis -j`.
var benchWorkers = flag.Int("j", 1, "worker-pool width for experiment drivers (0 = all cores)")

// benchExperiment runs one experiment driver per iteration and sanity-checks
// that it rendered a non-empty artifact.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	s := experiments.Default()
	s.Runs = 100 // the paper's Figure 13 protocol
	s.Workers = pool.Workers(*benchWorkers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if out := r.Render(); len(out) == 0 {
			b.Fatalf("%s rendered empty", id)
		}
	}
}

// BenchmarkFigure1 regenerates the memory-evolution timeline (Figure 1).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "figure1") }

// BenchmarkTable1 regenerates the Top-10 memory cost table (Table 1).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates the workload inventory with measured 1:2:4
// footprints (Table 2).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFigure5 regenerates the per-phase roofline placement (Figure 5).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "figure5") }

// BenchmarkFigure6 regenerates the bandwidth-capacity scaling CDFs at three
// input scales (Figure 6).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkFigure7 regenerates the prefetch-on/off traffic timelines
// (Figure 7).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkFigure8 regenerates the prefetch accuracy/coverage/excess/gain
// summary (Figure 8).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "figure8") }

// BenchmarkFigure9 regenerates the remote-access-ratio panels with the
// R_cap/R_BW references (Figure 9).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "figure9") }

// BenchmarkFigure10 regenerates the interference-sensitivity panels
// (Figure 10).
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }

// BenchmarkFigure11 regenerates the LBench validation panels (Figure 11).
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }

// BenchmarkFigure12 regenerates the BFS data-placement case study
// (Figure 12).
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "figure12") }

// BenchmarkFigure13 regenerates the interference-aware scheduling study
// (Figure 13).
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "figure13") }
