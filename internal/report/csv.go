package report

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// RenderCSV renders the document as sectioned CSV: one section per data
// block, introduced by a `# block N: ...` comment record (read them back
// with encoding/csv's Comment = '#'). Numeric cells emit their raw values
// in shortest round-trippable form — "NaN"/"+Inf"/"-Inf" for non-finite
// floats, all accepted by strconv.ParseFloat — never the human-formatted
// text, so every row stays machine-parseable. Note blocks are presentation
// glue and are skipped.
func RenderCSV(d Doc) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	comment := func(format string, args ...any) {
		// A comment is a plain line, not a CSV record: csv.Writer would
		// quote a leading '#' field containing commas.
		w.Flush()
		fmt.Fprintf(&b, "# "+format+"\n", args...)
	}
	comment("artifact: %s", d.Artifact)
	if d.Platform != "" {
		comment("platform: %s", d.Platform)
	}
	for i, bl := range d.Blocks {
		switch {
		case bl.Table != nil:
			t := bl.Table
			comment("block %d: table %q", i, t.Title)
			if len(t.Headers) > 0 {
				if err := w.Write(t.Headers); err != nil {
					return "", err
				}
			}
			for _, row := range t.Rows {
				rec := make([]string, len(row))
				for j, c := range row {
					rec[j] = c.Value()
				}
				if err := w.Write(rec); err != nil {
					return "", err
				}
			}
		case bl.Series != nil:
			s := bl.Series
			if s.Kind == Bar {
				comment("block %d: bar series %q (unit %q)", i, s.Title, s.Unit)
				if err := w.Write([]string{"label", "value"}); err != nil {
					return "", err
				}
				// Truncate to the paired length, mirroring the text
				// renderer's guard against malformed parsed documents.
				n := len(s.Labels)
				if len(s.Values) < n {
					n = len(s.Values)
				}
				for j := 0; j < n; j++ {
					if err := w.Write([]string{s.Labels[j], formatFloat(s.Values[j])}); err != nil {
						return "", err
					}
				}
				break
			}
			comment("block %d: line series %q (x: %s, y: %s)", i, s.Title, s.XLabel, s.YLabel)
			if err := w.Write([]string{"line", "x", "y"}); err != nil {
				return "", err
			}
			for _, l := range s.Lines {
				n := len(l.X)
				if len(l.Y) < n {
					n = len(l.Y)
				}
				for j := 0; j < n; j++ {
					if err := w.Write([]string{l.Name, formatFloat(l.X[j]), formatFloat(l.Y[j])}); err != nil {
						return "", err
					}
				}
			}
		case bl.Timeline != nil:
			t := bl.Timeline
			comment("block %d: timeline %q", i, t.Title)
			if err := w.Write([]string{"line", "step", "value"}); err != nil {
				return "", err
			}
			for _, l := range t.Lines {
				for j, v := range l.Values {
					if err := w.Write([]string{l.Name, strconv.Itoa(j), formatFloat(v)}); err != nil {
						return "", err
					}
				}
			}
		case bl.Dist != nil:
			ds := bl.Dist
			comment("block %d: dist", i)
			if err := w.Write([]string{"label", "min", "q1", "median", "q3", "max"}); err != nil {
				return "", err
			}
			rec := []string{strings.TrimRight(ds.Label, " "),
				formatFloat(ds.Min), formatFloat(ds.Q1), formatFloat(ds.Median),
				formatFloat(ds.Q3), formatFloat(ds.Max)}
			if err := w.Write(rec); err != nil {
				return "", err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("report: render %s as csv: %w", d.Artifact, err)
	}
	return b.String(), nil
}

// formatFloat is the machine form of a float value: shortest representation
// that round-trips through strconv.ParseFloat, including the non-finite
// spellings ParseFloat accepts.
func formatFloat(f Float) string {
	return strconv.FormatFloat(float64(f), 'g', -1, 64)
}
