package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// testGrid is the campaign the manager tests share: enough cells that a
// kill lands mid-flight, one workload and a tiny Monte-Carlo count so the
// whole grid still computes in a couple of seconds.
func testGrid(cells int) sweep.Grid {
	vals := make([]float64, cells)
	for i := range vals {
		vals[i] = float64(i * 10)
	}
	return sweep.Grid{Base: scenario.Default(), Axes: []sweep.Axis{{Name: "lat", Values: vals}}}
}

// testRunner is the NewRunner hook every test manager shares — identical
// config everywhere, so job ids agree across managers and processes.
func testRunner(g sweep.Grid) *sweep.Runner {
	return &sweep.Runner{Grid: g, Entries: registry.All()[:1], Runs: 2}
}

func testManager(t *testing.T, st Store, workers int) *Manager {
	t.Helper()
	m, err := NewManager(Config{Store: st, NewRunner: testRunner, Limiter: pool.NewLimiter(workers)})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runToDone submits g on a fresh manager over st and waits for the
// terminal record.
func runToDone(t *testing.T, st Store, workers int, g sweep.Grid) (*Manager, Record) {
	t.Helper()
	m := testManager(t, st, workers)
	rec, err := m.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = m.Wait(context.Background(), rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	return m, rec
}

// artifactsOf reads every rendered artifact of a done job, keyed by
// name.ext.
func artifactsOf(t *testing.T, m *Manager, id string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range []string{"sweep", "sensitivity"} {
		for _, f := range report.Formats {
			s, err := m.Artifact(id, name, f)
			if err != nil {
				t.Fatalf("Artifact(%s, %s, %s): %v", id, name, f, err)
			}
			out[name+"."+f.Ext()] = s
		}
	}
	return out
}

// TestJobLifecycle drives a job from submission to done on the in-memory
// store: terminal record, full bitmap, artifacts in every format, and an
// event log whose line sequence is submitted, one cell per task, done.
func TestJobLifecycle(t *testing.T) {
	st := NewMemStore()
	m := testManager(t, st, 1) // sequential, so the event order is deterministic
	g := testGrid(3)
	rec, err := m.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRunning || rec.Total != 4 { // (3 cells + base) × 1 workload
		t.Fatalf("submitted record = %+v, want running with 4 tasks", rec)
	}
	if _, err := m.Artifact(rec.ID, "sweep", report.FormatText); !errors.Is(err, ErrNotDone) {
		t.Errorf("Artifact before done = %v, want ErrNotDone", err)
	}
	rec, err = m.Wait(context.Background(), rec.ID)
	if err != nil || rec.State != StateDone {
		t.Fatalf("Wait = %+v, %v, want done", rec, err)
	}
	if rec.Done != rec.Total {
		t.Errorf("done job has %d/%d tasks", rec.Done, rec.Total)
	}
	for i := 0; i < rec.Total; i++ {
		if !bitmapGet(rec.Bitmap, i) {
			t.Errorf("bitmap bit %d unset on a done job", i)
		}
	}
	arts := artifactsOf(t, m, rec.ID)
	if len(arts) != 6 || !strings.Contains(arts["sweep.txt"], "Campaign grid") {
		t.Errorf("artifacts = %d entries, sweep.txt %q...", len(arts), firstLine(arts["sweep.txt"]))
	}

	raw, err := m.Events(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) != rec.Total+2 {
		t.Fatalf("event log has %d lines, want submitted + %d cells + done", len(events), rec.Total)
	}
	if events[0].Event != "submitted" || events[len(events)-1].Event != "done" {
		t.Errorf("event log ends = %s...%s, want submitted...done", events[0].Event, events[len(events)-1].Event)
	}
	seenDone := 0
	for _, ev := range events[1 : len(events)-1] {
		if ev.Event != "cell" || ev.Total != rec.Total || ev.Workload != "HPL" || ev.Seed == 0 {
			t.Fatalf("cell event %+v malformed", ev)
		}
		if ev.Done != seenDone+1 {
			t.Errorf("cell event done = %d, want strictly increasing %d", ev.Done, seenDone+1)
		}
		seenDone = ev.Done
	}

	// Resubmitting the identical campaign re-attaches to the done job.
	again, err := m.Submit(g)
	if err != nil || again.ID != rec.ID || again.State != StateDone {
		t.Errorf("resubmit = %+v, %v, want the done record", again, err)
	}
	// And the listing shows exactly one job.
	ls, err := m.List()
	if err != nil || len(ls) != 1 || ls[0].ID != rec.ID {
		t.Errorf("List = %+v, %v", ls, err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestUnknownJob pins the not-found mapping across the read surfaces.
func TestUnknownJob(t *testing.T) {
	m := testManager(t, NewMemStore(), 1)
	if _, err := m.Get("feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Resume("feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Resume(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Events("feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Events(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
}

// TestSubmitValidates pins that an invalid grid fails on the submit call
// with the shared sweep validation error, before anything persists.
func TestSubmitValidates(t *testing.T) {
	m := testManager(t, NewMemStore(), 1)
	g := sweep.Grid{Base: scenario.Default(), Axes: []sweep.Axis{{Name: "volts", Values: []float64{1}}}}
	if _, err := m.Submit(g); !errors.Is(err, sweep.ErrInvalid) {
		t.Errorf("Submit(invalid grid) = %v, want sweep.ErrInvalid", err)
	}
	if ls, _ := m.List(); len(ls) != 0 {
		t.Errorf("invalid submission persisted a record: %+v", ls)
	}
}

// waitForCells polls a disk job dir until the checkpoint holds at least n
// lines (or the deadline passes), returning the current line count.
func waitForCells(t *testing.T, dir, id string, n int, deadline time.Duration) int {
	t.Helper()
	path := filepath.Join(dir, "jobs", id, "cells.jsonl")
	end := time.Now().Add(deadline)
	for {
		if b, err := os.ReadFile(path); err == nil {
			if c := strings.Count(string(b), "\n"); c >= n {
				return c
			}
		}
		if time.Now().After(end) {
			t.Fatalf("checkpoint never reached %d cells", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// resumedSkipCount extracts the "resumed" event's skipped counter from a
// job's event log (the last resumed line wins).
func resumedSkipCount(t *testing.T, m *Manager, id string) int {
	t.Helper()
	raw, err := m.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	skipped := -1
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev Event
		if json.Unmarshal([]byte(line), &ev) == nil && ev.Event == "resumed" {
			skipped = ev.Skipped
		}
	}
	if skipped < 0 {
		t.Fatal("no resumed event in the log")
	}
	return skipped
}

// TestCancelResumeByteIdentical kills a campaign mid-flight with Cancel,
// resumes it on a *fresh manager* over the same disk store (the
// restarted-process shape), and checks the acceptance contract: at least
// one checkpointed cell is skipped, only the remainder recomputes, and
// the final artifacts are byte-identical to a never-interrupted run at
// both -j1 and -j8.
func TestCancelResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign byte-identity is covered by the full tier")
	}
	g := testGrid(24)
	wm, want := runToDone(t, NewMemStore(), 1, g)
	wantArts := artifactsOf(t, wm, want.ID)

	for _, workers := range []int{1, 8} {
		dir := t.TempDir()
		st, err := NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		m := testManager(t, st, workers)
		rec, err := m.Submit(g)
		if err != nil {
			t.Fatal(err)
		}
		waitForCells(t, dir, rec.ID, 1, time.Minute)
		rec, err = m.Cancel(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == StateDone {
			t.Skipf("campaign finished before the cancel landed (done=%d/%d); machine too fast for this grid", rec.Done, rec.Total)
		}
		if rec.State != StateCancelled || rec.Done == 0 {
			t.Fatalf("cancelled record = state %s done %d, want cancelled with progress", rec.State, rec.Done)
		}

		// A fresh manager over the same store: the restarted process.
		m2 := testManager(t, st, workers)
		if got, err := m2.Get(rec.ID); err != nil || got.State != StateCancelled {
			t.Fatalf("Get on fresh manager = %+v, %v", got, err)
		}
		res, err := m2.Resume(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		res, err = m2.Wait(context.Background(), res.ID)
		if err != nil || res.State != StateDone {
			t.Fatalf("resumed job = %+v, %v, want done", res, err)
		}
		if skipped := resumedSkipCount(t, m2, res.ID); skipped < 1 || skipped != rec.Done {
			t.Errorf("resume skipped %d cells, want the %d checkpointed ones", skipped, rec.Done)
		}
		got := artifactsOf(t, m2, res.ID)
		for k, w := range wantArts {
			if got[k] != w {
				t.Errorf("-j%d resumed artifact %s differs from the uninterrupted run (%d vs %d bytes)",
					workers, k, len(got[k]), len(w))
			}
		}
	}
}

// helperEnvDir is the env var that switches the test binary into the
// SIGKILL helper role: run the shared campaign over the given disk store
// until killed.
const helperEnvDir = "REPRO_JOBS_HELPER_DIR"

// TestHelperJobProcess is not a test: it is the subprocess body of
// TestSIGKILLResumeByteIdentical, selected via helperEnvDir.
func TestHelperJobProcess(t *testing.T) {
	dir := os.Getenv(helperEnvDir)
	if dir == "" {
		t.Skip("helper process body; driven by TestSIGKILLResumeByteIdentical")
	}
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testManager(t, st, 2)
	rec, err := m.Submit(testGrid(24))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), rec.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSIGKILLResumeByteIdentical is the acceptance test for the hard
// kill: a subprocess runs the campaign, the parent SIGKILLs it after the
// first checkpointed cell (no graceful shutdown, no deferred writes),
// and a fresh manager resumes the job from the on-disk checkpoint. The
// resumed job must skip at least one checkpointed cell, recompute only
// the remainder, and produce artifacts byte-identical to a
// never-interrupted run at both -j1 and -j8.
func TestSIGKILLResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-resume is covered by the full tier and the CI smoke")
	}
	g := testGrid(24)
	wm, want := runToDone(t, NewMemStore(), 1, g)
	wantArts := artifactsOf(t, wm, want.ID)

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperJobProcess$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnvDir+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	id := mustID(t, g)
	waitForCells(t, dir, id, 1, time.Minute)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: the process gets no say
		t.Fatal(err)
	}
	_ = cmd.Wait()

	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testManager(t, st, 1)
	rec, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State == StateDone {
		t.Skipf("campaign finished before the kill landed; machine too fast for this grid")
	}
	if rec.State != StateInterrupted {
		t.Fatalf("killed job reports %s, want interrupted", rec.State)
	}

	for _, workers := range []int{1, 8} {
		// Resume on a copy of the killed store, once per worker count, so
		// both resumes start from the same post-kill checkpoint.
		cdir := t.TempDir()
		copyTree(t, dir, cdir)
		cst, err := NewDiskStore(cdir)
		if err != nil {
			t.Fatal(err)
		}
		rm := testManager(t, cst, workers)
		res, err := rm.Resume(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err = rm.Wait(context.Background(), res.ID)
		if err != nil || res.State != StateDone {
			t.Fatalf("-j%d resume = %+v, %v, want done", workers, res, err)
		}
		if skipped := resumedSkipCount(t, rm, id); skipped < 1 {
			t.Errorf("-j%d resume skipped %d checkpointed cells, want >= 1", workers, skipped)
		}
		got := artifactsOf(t, rm, id)
		for k, w := range wantArts {
			if got[k] != w {
				t.Errorf("-j%d SIGKILL-resumed artifact %s differs from the uninterrupted run (%d vs %d bytes)",
					workers, k, len(got[k]), len(w))
			}
		}
	}
}

// mustID computes the deterministic job id of g under the shared test
// runner config.
func mustID(t *testing.T, g sweep.Grid) string {
	t.Helper()
	names, runs, seed := normalize(testRunner(g))
	id, err := jobID(g, names, runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// copyTree copies a job store directory (regular files only).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, e os.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestResumeRevalidates pins the tamper guard: a record whose stored
// declaration no longer hashes to its id refuses to run.
func TestResumeRevalidates(t *testing.T) {
	st := NewMemStore()
	m := testManager(t, st, 1)
	rec, err := m.Submit(testGrid(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), rec.ID); err != nil {
		t.Fatal(err)
	}
	// Tamper: bump the run count in the stored record.
	loaded, err := m.loadRecord(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Runs++
	loaded.State = StateFailed // make it resumable
	if err := m.putRecord(loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(rec.ID); !errors.Is(err, ErrRecordModified) {
		t.Errorf("Resume(tampered) = %v, want ErrRecordModified", err)
	}
}
