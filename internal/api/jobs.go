package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/jobs"
	"repro/internal/sweep"
)

// JobRequest is the POST /v1/jobs body: either a campaign declaration —
// a platform plus axis declarations, exactly the /v1/sweep vocabulary —
// or the id of an existing job to resume. An empty body submits the
// default grid on the default platform.
type JobRequest struct {
	// ID, when set, resumes the identified job from its checkpoint
	// instead of declaring a new campaign; the other fields must be
	// empty.
	ID string `json:"id,omitempty"`
	// Platform is the scenario whose base system the grid sweeps around;
	// empty selects the backend's default.
	Platform string `json:"platform,omitempty"`
	// Axes are sweep.ParseAxis declarations ("gen=0,5,6",
	// "lat=0:400:100"); none selects the platform's canonical default
	// grid.
	Axes []string `json:"axes,omitempty"`
}

// handleJobSubmit is POST /v1/jobs: submit a campaign job (or resume one
// by id) and answer 202 Accepted with the job record and a Location
// pointing at its status resource. Unlike the synchronous /v1/sweep
// route, jobs accept grids of any validating size — this is where the
// over-cap campaigns go.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	} else if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed job request: %w", err))
			return
		}
	}

	var rec jobs.Record
	var err error
	if req.ID != "" {
		if req.Platform != "" || len(req.Axes) > 0 {
			writeError(w, http.StatusBadRequest,
				errors.New(`a resume request carries only "id" (declare a campaign with "platform"/"axes" instead)`))
			return
		}
		rec, err = s.cfg.Backend.ResumeJob(req.ID)
	} else {
		var axes []sweep.Axis
		for _, a := range req.Axes {
			ax, perr := sweep.ParseAxis(a)
			if perr != nil {
				writeError(w, http.StatusBadRequest, perr)
				return
			}
			axes = append(axes, ax)
		}
		var g sweep.Grid
		if g, err = s.cfg.Backend.Grid(req.Platform, axes...); err == nil {
			rec, err = s.cfg.Backend.SubmitSweep(g)
		}
	}
	if err != nil {
		writeStatusError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+rec.ID)
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusAccepted, rec)
}

// handleJobs is GET /v1/jobs: every job's record, oldest first. Job state
// is live progress, so the listing is never cacheable.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	recs, err := s.cfg.Backend.Jobs()
	if err != nil {
		writeStatusError(w, err)
		return
	}
	if recs == nil {
		recs = []jobs.Record{}
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs": recs,
		"url":  "/v1/jobs/{id} (DELETE cancels; /events streams progress; /artifacts/{sweep|sensitivity}?format= serves results)",
	})
}

// handleJob is GET /v1/jobs/{id}: one job's record.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rec, err := s.cfg.Backend.Job(r.PathValue("id"))
	if err != nil {
		writeStatusError(w, err)
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, rec)
}

// handleJobCancel is DELETE /v1/jobs/{id}: stop the job at its next cell
// boundary and return its record. The checkpoint survives — resubmitting
// the campaign (or POSTing {"id": ...}) resumes it.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.cfg.Backend.CancelJob(r.PathValue("id"))
	if err != nil {
		writeStatusError(w, err)
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, rec)
}

// handleJobEvents is GET /v1/jobs/{id}/events: the job's JSON-lines event
// log, served verbatim as NDJSON. The log is append-only; pollers re-read
// and act on the suffix beyond their last offset.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	data, err := s.cfg.Backend.JobEvents(r.PathValue("id"))
	if err != nil {
		writeStatusError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	_, _ = w.Write(data)
}

// handleJobArtifact is GET /v1/jobs/{id}/artifacts/{artifact}: a done
// job's rendered sweep or sensitivity artifact in the negotiated format,
// straight from the job store. A job still running answers 409. Done
// artifacts are immutable, so this route mounts behind the conditional
// caching middleware like the other data routes.
func (s *server) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.cfg.Backend.JobArtifact(r.PathValue("id"), r.PathValue("artifact"), f)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeRendered(w, f, out)
}
