// Placement reproduces the §7.1 case study end to end: profile BFS on a
// 75%-pooled system, identify the hot allocation site stuck in remote
// memory, then apply the paper's two fixes (allocate the hot array first;
// free the initialization scratch) and measure the improvement in runtime,
// remote traffic and interference sensitivity.
package main

import (
	"fmt"

	"repro"
)

func main() {
	profiler := repro.NewProfiler(repro.DefaultPlatform())
	entry, err := repro.Workload("BFS")
	if err != nil {
		panic(err)
	}

	// Size the local tier to 25% of the baseline's peak usage (75% pooled),
	// the configuration where the paper observed 99% remote access.
	platform := profiler.ConfigForLocalFraction(entry, 1, 0.25)

	// Step 1: diagnose. The Level-2 per-allocation-site view shows which
	// objects sit in the pool; hotness density (accesses per page) singles
	// out Parents, "small but highly accessed".
	l2 := profiler.Level2(entry, 1, 0.25)
	fmt.Println("=== Diagnosis: allocation sites on the 25%-75% system ===")
	fmt.Printf("%-14s %8s %8s %12s %14s\n", "region", "local", "remote", "accesses", "accesses/page")
	for _, r := range repro.SortRegionsHot(l2.Regions) {
		pages := r.LocalPages + r.RemotePages
		if pages == 0 {
			continue
		}
		fmt.Printf("%-14s %8d %8d %12d %14.0f\n",
			r.Region.Name, r.LocalPages, r.RemotePages, r.Accesses,
			float64(r.Accesses)/float64(pages))
	}
	fmt.Println()

	// Step 2: apply the fixes and re-measure on the identical platform.
	variants := []repro.BFSVariant{repro.BFSBaseline, repro.BFSReorderOnly, repro.BFSOptimized}
	fmt.Println("=== Treatment: placement variants at 75% pooling ===")
	fmt.Printf("%-13s %12s %14s %15s %12s\n",
		"variant", "runtime", "remote bytes", "p2 %remote", "@LoI=50")
	var base, opt float64
	for _, v := range variants {
		m := repro.Run(platform, repro.NewBFS(1, v))
		runtime := platform.RunTime(m.Phases(), 0)
		var remote uint64
		for _, ph := range m.Phases() {
			remote += ph.RemoteBytes
		}
		p2, _ := m.Phase("p2")
		ratio := 0.0
		if p2.TotalBytes() > 0 {
			ratio = float64(p2.RemoteBytes) / float64(p2.TotalBytes())
		}
		sens := platform.Sensitivity(m.Phases(), 0.5)
		fmt.Printf("%-13s %12.4fs %11.1f MiB %14.1f%% %12.3f\n",
			v, runtime, float64(remote)/(1<<20), ratio*100, sens)
		switch v {
		case repro.BFSBaseline:
			base = runtime
		case repro.BFSOptimized:
			opt = runtime
		}
	}
	fmt.Printf("\noptimized speedup over baseline: %.1f%%\n", (base/opt-1)*100)
	fmt.Println("(the paper reports 13% at 75% pooling, with remote access 99% -> 50%)")
}
