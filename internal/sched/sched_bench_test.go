package sched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pool"
	"repro/internal/stats"
)

func benchPhases() []machine.PhaseStats {
	return []machine.PhaseStats{
		{Name: "p1", Flops: 2e11, LocalBytes: 6 << 30, DemandMissLocal: 1 << 19},
		{Name: "p2", Flops: 8e11, LocalBytes: 4 << 30, RemoteBytes: 3 << 30,
			DemandMissLocal: 1 << 18, DemandMissRemote: 1 << 17, StreamMissRemote: 1 << 14},
		{Name: "p3", Flops: 1e11, LocalBytes: 1 << 30, DemandMissLocal: 1 << 16},
	}
}

// BenchmarkDistribution measures the Monte-Carlo scheduler hot path: n
// simulated runs sharing one phase evaluator and one substream slice.
func BenchmarkDistribution(b *testing.B) {
	cfg := machine.Default()
	phases := benchPhases()
	l := pool.NewLimiter(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistributionLimited(cfg, phases, Baseline(), 100, 7, l)
	}
}

// TestDistributionMatchesPerRunSimulate pins the refactoring invariant: the
// evaluator-shared distribution is bit-identical to simulating each run
// independently with the public SimulateRun and per-run Stream substreams.
func TestDistributionMatchesPerRunSimulate(t *testing.T) {
	cfg := machine.Default()
	phases := benchPhases()
	const n, seed = 40, 123
	got := Distribution(cfg, phases, Baseline(), n, seed)
	base := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		want := SimulateRun(cfg, phases, Baseline(), base.Stream(i))
		if got[i] != want {
			t.Fatalf("run %d: distribution %v != per-run SimulateRun %v", i, got[i], want)
		}
	}
}
