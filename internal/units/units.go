// Package units provides the byte, bandwidth, flops, percentage, and
// duration formatting helpers shared by the experiment reports and CLIs,
// so every artifact renders quantities in the same human-readable form the
// paper uses (binary byte multiples, SI rate multiples, one decimal of
// precision). Keeping formatting in one place is also what makes rendered
// artifacts byte-comparable across sequential and parallel experiment
// runs.
package units

import "fmt"

// Byte-size constants.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// Decimal (SI) constants used for bandwidth, matching the paper's GB/s.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// Bytes renders a byte count with a binary-unit suffix.
func Bytes(n uint64) string {
	switch {
	case n >= TiB:
		return fmt.Sprintf("%.2f TiB", float64(n)/TiB)
	case n >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/GiB)
	case n >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/MiB)
	case n >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/KiB)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Bandwidth renders a rate in bytes/second using decimal units (GB/s etc.),
// the convention used in the paper's link and STREAM figures.
func Bandwidth(bytesPerSec float64) string {
	switch {
	case bytesPerSec >= TB:
		return fmt.Sprintf("%.2f TB/s", bytesPerSec/TB)
	case bytesPerSec >= GB:
		return fmt.Sprintf("%.2f GB/s", bytesPerSec/GB)
	case bytesPerSec >= MB:
		return fmt.Sprintf("%.2f MB/s", bytesPerSec/MB)
	case bytesPerSec >= KB:
		return fmt.Sprintf("%.2f KB/s", bytesPerSec/KB)
	default:
		return fmt.Sprintf("%.2f B/s", bytesPerSec)
	}
}

// Flops renders a floating-point rate (Gflop/s for typical magnitudes).
func Flops(flopsPerSec float64) string {
	switch {
	case flopsPerSec >= 1e12:
		return fmt.Sprintf("%.2f Tflop/s", flopsPerSec/1e12)
	case flopsPerSec >= 1e9:
		return fmt.Sprintf("%.2f Gflop/s", flopsPerSec/1e9)
	case flopsPerSec >= 1e6:
		return fmt.Sprintf("%.2f Mflop/s", flopsPerSec/1e6)
	default:
		return fmt.Sprintf("%.2f flop/s", flopsPerSec)
	}
}

// Seconds renders a duration given in seconds with adaptive precision.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2f us", s*1e6)
	default:
		return fmt.Sprintf("%.2f ns", s*1e9)
	}
}

// Percent renders a ratio in [0,1] as a percentage.
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", ratio*100)
}
