// Package mem models a paged virtual address space backed by a two-tier
// memory system: a fixed-capacity node-local tier and a fabric-attached
// remote tier (the rack-scale memory pool of the paper's Figure 2).
//
// Placement follows the Linux default first-touch policy the paper's
// emulation platform relies on: a page is bound to the local tier on its
// first access while local capacity remains, and spills to the remote tier
// afterwards. The package also keeps the page-granular access histogram that
// backs the bandwidth–capacity scaling curves (Figure 6) and the
// numa_maps-style footprint sampling of the multi-level profiler.
package mem

import (
	"fmt"
	"sort"
)

// Tier identifies a memory tier of the emulated platform.
type Tier int

const (
	// TierLocal is the node-local (fast, socket-attached) tier.
	TierLocal Tier = iota
	// TierRemote is the pooled (fabric-attached) tier behind the link.
	TierRemote
	numTiers
)

// String returns the conventional name of the tier.
func (t Tier) String() string {
	switch t {
	case TierLocal:
		return "local"
	case TierRemote:
		return "remote"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Config describes the address space geometry and tier capacities.
type Config struct {
	// PageSize is the placement granularity in bytes. Defaults to 4096.
	PageSize uint64
	// LocalCapacity is the local tier capacity in bytes. Zero means
	// unbounded (a single-tier system).
	LocalCapacity uint64
	// RemoteCapacity is the remote tier capacity in bytes. Zero means
	// unbounded, matching the paper's assumption that the pool always has
	// room for spilled pages.
	RemoteCapacity uint64
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	return c
}

// Placement is a page-placement policy hint carried by an allocation.
type Placement int

const (
	// PlaceFirstTouch binds pages by the default first-touch policy.
	PlaceFirstTouch Placement = iota
	// PlaceLocal forces pages to the local tier (libnuma-style explicit
	// placement), failing over to remote only when local is full.
	PlaceLocal
	// PlaceRemote forces pages to the remote tier, the "explicitly
	// allocate less accessed objects in remote memory" option of §7.1.
	PlaceRemote
)

// page holds the per-page bookkeeping. Pages start unbound (bound=false)
// and acquire a tier on first touch.
type page struct {
	bound     bool
	tier      Tier
	accesses  uint64 // cacheline-granule memory accesses (post-cache traffic)
	bytes     uint64
	regionID  int
	allocated bool
}

// Region is a named allocation, the unit the profiler attributes accesses to
// ("memory allocation sites" in the paper's §7.1 case study).
type Region struct {
	ID        int
	Name      string
	Base      uint64
	Size      uint64
	Placement Placement
	freed     bool
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Space is the paged address space of one emulated compute node.
type Space struct {
	cfg      Config
	nextAddr uint64
	pages    []page
	regions  []*Region

	localUsed  uint64
	remoteUsed uint64

	// Tier traffic counters, in bytes, reset per profiling phase. These
	// correspond to the LOCAL_DRAM / REMOTE_DRAM offcore events.
	tierBytes    [numTiers]uint64
	tierAccesses [numTiers]uint64
}

// NewSpace creates an empty address space with the given configuration.
func NewSpace(cfg Config) *Space {
	c := cfg.withDefaults()
	return &Space{cfg: c, nextAddr: c.PageSize} // keep address 0 unused
}

// Config returns the space configuration (with defaults applied).
func (s *Space) Config() Config { return s.cfg }

// PageSize returns the placement granularity in bytes.
func (s *Space) PageSize() uint64 { return s.cfg.PageSize }

// Alloc reserves size bytes under name using the first-touch policy.
func (s *Space) Alloc(name string, size uint64) *Region {
	return s.AllocPlaced(name, size, PlaceFirstTouch)
}

// AllocPlaced reserves size bytes with an explicit placement policy.
// The reservation is page-aligned; pages bind to a tier on first access.
func (s *Space) AllocPlaced(name string, size uint64, pl Placement) *Region {
	if size == 0 {
		size = 1
	}
	ps := s.cfg.PageSize
	npages := (size + ps - 1) / ps
	base := s.nextAddr
	id := len(s.regions)
	s.nextAddr += npages * ps
	need := int(s.nextAddr / ps)
	for len(s.pages) < need {
		s.pages = append(s.pages, page{})
	}
	for i := base / ps; i < base/ps+npages; i++ {
		s.pages[i].allocated = true
		s.pages[i].regionID = id
	}
	r := &Region{ID: id, Name: name, Base: base, Size: size, Placement: pl}
	s.regions = append(s.regions, r)
	return r
}

// Free releases a region: its bound pages return their capacity to their
// tiers and the address range becomes invalid. Freeing local pages is what
// makes the one-line BFS optimization of §7.1 effective — it reserves local
// headroom for later first-touch allocations.
func (s *Space) Free(r *Region) {
	if r.freed {
		return
	}
	r.freed = true
	ps := s.cfg.PageSize
	for i := r.Base / ps; i < (r.End()+ps-1)/ps; i++ {
		p := &s.pages[i]
		if p.bound {
			switch p.tier {
			case TierLocal:
				s.localUsed -= ps
			case TierRemote:
				s.remoteUsed -= ps
			}
			p.bound = false
		}
		p.allocated = false
	}
}

// Regions returns all regions ever allocated, in allocation order.
func (s *Space) Regions() []*Region { return s.regions }

// bind places an unbound page according to policy and capacity.
func (s *Space) bind(p *page, pl Placement) {
	ps := s.cfg.PageSize
	wantLocal := true
	switch pl {
	case PlaceRemote:
		wantLocal = false
	case PlaceLocal, PlaceFirstTouch:
		wantLocal = true
	}
	if wantLocal && (s.cfg.LocalCapacity == 0 || s.localUsed+ps <= s.cfg.LocalCapacity) {
		p.tier = TierLocal
		s.localUsed += ps
	} else {
		p.tier = TierRemote
		s.remoteUsed += ps
	}
	p.bound = true
}

// Touch binds the page containing addr (if unbound) and returns its tier
// without recording traffic. It is used for placement-only initialization.
func (s *Space) Touch(addr uint64) Tier {
	p, r := s.pageAt(addr)
	if !p.bound {
		s.bind(p, r.Placement)
	}
	return p.tier
}

// Access records a memory access of n bytes at addr (post-cache traffic:
// a demand fill or hardware prefetch fill) and returns the serving tier.
func (s *Space) Access(addr uint64, n uint64) Tier {
	p, r := s.pageAt(addr)
	if !p.bound {
		s.bind(p, r.Placement)
	}
	p.accesses++
	p.bytes += n
	s.tierBytes[p.tier] += n
	s.tierAccesses[p.tier]++
	return p.tier
}

// TierOf returns the tier currently serving addr; ok is false when the page
// is not yet bound.
func (s *Space) TierOf(addr uint64) (t Tier, ok bool) {
	idx := addr / s.cfg.PageSize
	if idx >= uint64(len(s.pages)) {
		return 0, false
	}
	p := s.pages[idx]
	if !p.bound {
		return 0, false
	}
	return p.tier, true
}

func (s *Space) pageAt(addr uint64) (*page, *Region) {
	idx := addr / s.cfg.PageSize
	if idx >= uint64(len(s.pages)) {
		panic(fmt.Sprintf("mem: access to unallocated address %#x", addr))
	}
	p := &s.pages[idx]
	if !p.allocated {
		panic(fmt.Sprintf("mem: access to freed/unallocated address %#x", addr))
	}
	return p, s.regions[p.regionID]
}

// ResetTraffic clears the per-tier traffic counters (phase boundary) while
// preserving placement and the page histogram.
func (s *Space) ResetTraffic() {
	s.tierBytes = [numTiers]uint64{}
	s.tierAccesses = [numTiers]uint64{}
}

// ResetHistogram clears the page access histogram (for per-run analyses)
// while preserving placement.
func (s *Space) ResetHistogram() {
	for i := range s.pages {
		s.pages[i].accesses = 0
		s.pages[i].bytes = 0
	}
}

// TierBytes returns bytes served by the tier since the last ResetTraffic.
func (s *Space) TierBytes(t Tier) uint64 { return s.tierBytes[t] }

// TierAccesses returns accesses served by the tier since last ResetTraffic.
func (s *Space) TierAccesses(t Tier) uint64 { return s.tierAccesses[t] }

// Used returns the bytes of bound pages in the tier (numa_maps resident
// set for that node).
func (s *Space) Used(t Tier) uint64 {
	if t == TierLocal {
		return s.localUsed
	}
	return s.remoteUsed
}

// Footprint returns the total bytes of bound pages across tiers.
func (s *Space) Footprint() uint64 { return s.localUsed + s.remoteUsed }

// RemoteCapacityRatio is the paper's "remote capacity ratio": the ratio of
// lower-tier memory to total memory in use, measured from placement.
func (s *Space) RemoteCapacityRatio() float64 {
	total := s.Footprint()
	if total == 0 {
		return 0
	}
	return float64(s.remoteUsed) / float64(total)
}

// RemoteAccessRatio is the paper's "remote access ratio": the fraction of
// memory-access bytes served by the remote tier since the last ResetTraffic.
func (s *Space) RemoteAccessRatio() float64 {
	total := s.tierBytes[TierLocal] + s.tierBytes[TierRemote]
	if total == 0 {
		return 0
	}
	return float64(s.tierBytes[TierRemote]) / float64(total)
}

// PageAccessCounts returns the access count of every touched page, in
// arbitrary order. This is the PEBS-style sample stream aggregated by page.
func (s *Space) PageAccessCounts() []uint64 {
	var out []uint64
	for i := range s.pages {
		if s.pages[i].bound {
			out = append(out, s.pages[i].accesses)
		}
	}
	return out
}

// RegionStats summarizes placement and traffic for one region.
type RegionStats struct {
	Region      *Region
	LocalPages  int
	RemotePages int
	Accesses    uint64
	Bytes       uint64
}

// PerRegion returns placement/traffic statistics for every live region,
// sorted by descending access count — the "memory allocation sites"
// view used to find the hot Parents array in §7.1.
func (s *Space) PerRegion() []RegionStats {
	ps := s.cfg.PageSize
	stats := make([]RegionStats, 0, len(s.regions))
	for _, r := range s.regions {
		if r.freed {
			continue
		}
		rs := RegionStats{Region: r}
		for i := r.Base / ps; i < (r.End()+ps-1)/ps; i++ {
			p := s.pages[i]
			if !p.bound {
				continue
			}
			if p.tier == TierLocal {
				rs.LocalPages++
			} else {
				rs.RemotePages++
			}
			rs.Accesses += p.accesses
			rs.Bytes += p.bytes
		}
		stats = append(stats, rs)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Accesses > stats[j].Accesses })
	return stats
}
