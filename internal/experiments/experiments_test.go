package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
)

// sharedSuite caches one suite across tests; the drivers themselves memoize
// peak footprints, so reuse keeps the package's test time bounded. The suite
// keeps the paper's defaults (Runs=100) so its renders are byte-identical to
// the memdis CLI — the golden tests lean on this to share one profiling pass
// with the shape tests.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func testSuite() *Suite {
	suiteOnce.Do(func() {
		suite = NewSuite(machine.Default())
	})
	return suite
}

// skipShort marks the tests that regenerate full artifacts (profiling every
// workload, some at x2/x4 input scales). The quick tier — `go test -short`
// — covers the same driver and engine code paths through the reduced suites
// of parallel_test.go and the data-only golden artifacts instead.
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full artifact regeneration; run without -short (nightly tier)")
	}
}

func findRow10(panel Figure10Config, name string) Figure10Row {
	for _, r := range panel.Rows {
		if r.Workload == name {
			return r
		}
	}
	return Figure10Row{}
}

func TestFigure1TimelineGrows(t *testing.T) {
	r := testSuite().Figure1()
	if len(r.Systems) < 8 {
		t.Fatalf("timeline too short: %d", len(r.Systems))
	}
	first, last := r.Systems[0], r.Systems[len(r.Systems)-1]
	if last.TotalPerNodeGB() <= first.TotalPerNodeGB() {
		t.Errorf("per-node capacity should grow over 15 years: %v -> %v",
			first.TotalPerNodeGB(), last.TotalPerNodeGB())
	}
	if !strings.Contains(r.Render(), "Frontier") {
		t.Error("render should include Frontier")
	}
}

func TestTable1CostShape(t *testing.T) {
	r := testSuite().Table1()
	if len(r.Rows) != 10 {
		t.Fatalf("want 10 systems, got %d", len(r.Rows))
	}
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.System.Name] = row
	}
	// The paper's Table 1: Frontier HBM ~$135M >> DDR ~$34M (HBM at 3-5x
	// DDR unit price and equal capacity).
	f := byName["Frontier"]
	if f.HBMCostM <= f.DDRCostM {
		t.Errorf("Frontier HBM cost (%f) should exceed DDR cost (%f)", f.HBMCostM, f.DDRCostM)
	}
	if f.HBMCostM < 3*f.DDRCostM || f.HBMCostM > 5*f.DDRCostM {
		t.Errorf("equal-capacity HBM should cost 3-5x DDR, got %.1fx", f.HBMCostM/f.DDRCostM)
	}
	// DDR-less and HBM-less systems render as "-".
	if byName["Fugaku"].DDRCostM != 0 {
		t.Error("Fugaku has no DDR")
	}
	if byName["Sunway TaihuLight"].HBMCostM != 0 {
		t.Error("Sunway has no HBM")
	}
}

func TestTable2FootprintRatios(t *testing.T) {
	skipShort(t)
	r := testSuite().Table2()
	if len(r.Entries) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(r.Entries))
	}
	for i, e := range r.Entries {
		fp := r.Footprints[i]
		if fp[0] == 0 {
			t.Errorf("%s: zero footprint", e.Name)
			continue
		}
		r2 := float64(fp[1]) / float64(fp[0])
		r4 := float64(fp[2]) / float64(fp[0])
		// The paper's inputs are "approximately 1:2:4".
		if r2 < 1.5 || r2 > 3.2 {
			t.Errorf("%s: x2 footprint ratio %.2f outside ~2", e.Name, r2)
		}
		if r4 < 3.0 || r4 > 6.5 {
			t.Errorf("%s: x4 footprint ratio %.2f outside ~4", e.Name, r4)
		}
	}
}

func TestFigure5CoversBothRegimes(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure5()
	if len(r.Points) < 8 {
		t.Fatalf("too few roofline points: %d", len(r.Points))
	}
	var memBound, compBound int
	for _, p := range r.Points {
		if p.Throughput > r.Model.Attainable(p.AI)*1.001 {
			t.Errorf("%s: throughput %.3g exceeds roofline %.3g", p.Label, p.Throughput, r.Model.Attainable(p.AI))
		}
		switch {
		case p.AI < r.Model.RidgeIntensity():
			memBound++
		default:
			compBound++
		}
		if strings.HasPrefix(p.Label, "BFS") {
			t.Errorf("BFS has no flops and should be omitted, got %s", p.Label)
		}
	}
	// The paper confirms "good coverage in the memory-bound to
	// compute-bound spectrum".
	if memBound == 0 || compBound == 0 {
		t.Errorf("phases should span both regimes: mem=%d comp=%d", memBound, compBound)
	}
}

func TestFigure6ScalingShapes(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure6()
	if len(r.Curves) != 18 {
		t.Fatalf("want 6 workloads x 3 scales = 18 curves, got %d", len(r.Curves))
	}
	get := func(w string, scale int) Figure6Curve {
		for _, c := range r.Curves {
			if c.Workload == w && c.Scale == scale {
				return c
			}
		}
		t.Fatalf("missing curve %s x%d", w, scale)
		return Figure6Curve{}
	}
	// CDFs are monotone and end at 100%.
	for _, c := range r.Curves {
		prev := -1.0
		for _, p := range c.Points {
			if p.AccessPct < prev-1e-9 {
				t.Fatalf("%s x%d: CDF not monotone", c.Workload, c.Scale)
			}
			prev = p.AccessPct
		}
		if last := c.Points[len(c.Points)-1].AccessPct; last < 99.9 {
			t.Errorf("%s x%d: CDF ends at %.1f%%", c.Workload, c.Scale, last)
		}
	}
	// XSBench and BFS are skewed: a small footprint share carries most
	// accesses. HPL and Hypre are much more uniform.
	if xs := get("XSBench", 1).AccessAtFootprint(25); xs < 70 {
		t.Errorf("XSBench should be skewed: hottest 25%% carries %.0f%%", xs)
	}
	if bfs := get("BFS", 1).AccessAtFootprint(25); bfs < 55 {
		t.Errorf("BFS should be skewed: hottest 25%% carries %.0f%%", bfs)
	}
	if hpl := get("HPL", 1).AccessAtFootprint(25); hpl > 55 {
		t.Errorf("HPL should be near-uniform: hottest 25%% carries %.0f%%", hpl)
	}
	// HPL/Hypre/XSBench curves overlap across scales (consistent usage
	// patterns); compare the hottest-25% capture between x1 and x4.
	for _, w := range []string{"HPL", "Hypre", "XSBench"} {
		a, b := get(w, 1).AccessAtFootprint(25), get(w, 4).AccessAtFootprint(25)
		// "Approximately overlapping": allow a 20-point drift (the paper's
		// own curves wiggle within roughly that band).
		if d := a - b; d > 20 || d < -20 {
			t.Errorf("%s: scaling curve should be input-consistent, x1=%.0f%% x4=%.0f%%", w, a, b)
		}
	}
}

func TestFigure7PrefetchTimelines(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure7()
	if len(r.Timelines) != 3 {
		t.Fatalf("want NekRS/HPL/XSBench, got %d timelines", len(r.Timelines))
	}
	for _, tl := range r.Timelines {
		if len(tl.On) == 0 || len(tl.Off) == 0 {
			t.Errorf("%s: empty timeline", tl.Workload)
			continue
		}
		on, off := sum(tl.On), sum(tl.Off)
		if on < off {
			t.Errorf("%s: prefetch-on traffic (%.3g) below prefetch-off (%.3g)", tl.Workload, on, off)
		}
	}
}

func TestFigure8PrefetchShape(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure8()
	rows := map[string]Figure8Row{}
	for _, row := range r.Rows {
		rows[row.Workload] = row
	}
	// "All except XSBench and BFS have more than 80% prefetching accuracy."
	for _, w := range []string{"HPL", "Hypre", "NekRS", "SuperLU"} {
		if rows[w].Accuracy < 0.8 {
			t.Errorf("%s accuracy %.2f below 0.8", w, rows[w].Accuracy)
		}
	}
	if rows["XSBench"].Accuracy > 0.6 {
		t.Errorf("XSBench accuracy should be low, got %.2f", rows["XSBench"].Accuracy)
	}
	// XSBench's prefetcher throttles: low excess traffic despite low
	// accuracy (the paper measures 3%).
	if rows["XSBench"].ExcessTraffic > 0.10 {
		t.Errorf("XSBench excess traffic should stay low, got %.2f", rows["XSBench"].ExcessTraffic)
	}
	// Streaming codes gain substantially; XSBench barely.
	if rows["Hypre"].PerformanceGain < 0.3 {
		t.Errorf("Hypre gain %.2f too low", rows["Hypre"].PerformanceGain)
	}
	if rows["NekRS"].PerformanceGain < 0.15 {
		t.Errorf("NekRS gain %.2f too low", rows["NekRS"].PerformanceGain)
	}
	if rows["XSBench"].PerformanceGain > rows["Hypre"].PerformanceGain {
		t.Error("XSBench should gain less than Hypre")
	}
	// Hypre and NekRS have the highest coverage in the paper.
	if rows["Hypre"].Coverage < 0.6 || rows["NekRS"].Coverage < 0.6 {
		t.Errorf("Hypre/NekRS coverage should be high: %.2f / %.2f",
			rows["Hypre"].Coverage, rows["NekRS"].Coverage)
	}
}

func TestFigure9ReferenceLinesAndXSBench(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure9()
	if len(r.Configs) != 3 {
		t.Fatalf("want 3 capacity panels, got %d", len(r.Configs))
	}
	for _, panel := range r.Configs {
		wantRCap := 1 - panel.LocalFraction
		if d := panel.RCap - wantRCap; d > 0.01 || d < -0.01 {
			t.Errorf("panel %v: R_cap=%v want %v", panel.LocalFraction, panel.RCap, wantRCap)
		}
		if panel.RBW < 0.25 || panel.RBW > 0.40 {
			t.Errorf("R_BW=%v outside the 34/(34+73) band", panel.RBW)
		}
		for _, ph := range panel.Phases {
			if ph.RemoteAccessRatio < 0 || ph.RemoteAccessRatio > 1 {
				t.Errorf("%s: ratio %v out of range", ph.Label, ph.RemoteAccessRatio)
			}
			// "XSBench stands out ... below 6% in all configurations."
			if ph.Label == "XSBench-p2" && ph.RemoteAccessRatio > 0.06 {
				t.Errorf("XSBench-p2 remote access %.3f should stay below 6%%", ph.RemoteAccessRatio)
			}
		}
	}
	// More pooling -> more remote access for the capacity-bound codes.
	find := func(panel Figure9Config, label string) float64 {
		for _, ph := range panel.Phases {
			if ph.Label == label {
				return ph.RemoteAccessRatio
			}
		}
		return -1
	}
	for _, label := range []string{"HPL-p2", "BFS-p2", "NekRS-p2"} {
		a, b, c := find(r.Configs[0], label), find(r.Configs[1], label), find(r.Configs[2], label)
		if !(a <= b+0.01 && b <= c+0.01) {
			t.Errorf("%s: remote access should grow with pooling: %.2f %.2f %.2f", label, a, b, c)
		}
	}
}

func TestFigure10SensitivityShape(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure10()
	if len(r.Configs) != 3 {
		t.Fatalf("want 3 panels, got %d", len(r.Configs))
	}
	panel := r.Configs[1] // 50%-50%, the paper's headline panel
	for _, row := range panel.Rows {
		// Relative performance is monotone non-increasing in LoI.
		prev := 2.0
		for i, v := range row.Relative {
			if v > prev+1e-9 {
				t.Errorf("%s: relative perf increased at LoI=%v", row.Workload, r.LoIs[i])
			}
			prev = v
			if v <= 0 || v > 1+1e-9 {
				t.Errorf("%s: relative perf %v out of range", row.Workload, v)
			}
		}
	}
	last := func(name string) float64 {
		rel := findRow10(panel, name).Relative
		return rel[len(rel)-1]
	}
	// Hypre and NekRS are among the most sensitive; HPL loses <5%;
	// XSBench is essentially unaffected.
	if last("HPL") < 0.95 {
		t.Errorf("HPL should lose <5%% at LoI=50, got %.3f", last("HPL"))
	}
	if last("XSBench") < 0.98 {
		t.Errorf("XSBench should be insensitive, got %.3f", last("XSBench"))
	}
	for _, w := range []string{"Hypre", "NekRS"} {
		if last(w) > last("HPL") {
			t.Errorf("%s (%.3f) should be more sensitive than HPL (%.3f)", w, last(w), last("HPL"))
		}
		if last(w) > 0.95 {
			t.Errorf("%s should lose noticeably at LoI=50, got %.3f", w, last(w))
		}
	}
}

func TestFigure11LBenchValidation(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure11()
	// Left: measured LoI tracks configured intensity for 2 threads.
	for i, c := range r.ConfiguredPct {
		m := r.Measured2T[i]
		if m < c*0.7 || m > c*1.3 {
			t.Errorf("2-thread LoI at %v%%: measured %.1f%% not within 30%%", c, m)
		}
	}
	// One thread cannot exceed its per-thread share (~25%).
	for i, c := range r.ConfiguredPct {
		if c >= 30 && r.Measured1T[i] > 30 {
			t.Errorf("1 thread should top out near 25%%, measured %.1f%% at %v%%", r.Measured1T[i], c)
		}
	}
	// Middle: IC is non-increasing in flops/element; PCM pins at the peak
	// below 8 flops/element while IC still distinguishes the points.
	for i := 1; i < len(r.IC); i++ {
		if r.IC[i] > r.IC[i-1]+1e-9 {
			t.Errorf("IC should fall with intensity: %v", r.IC)
		}
	}
	var pinned int
	for i, f := range r.FlopsPerElement {
		if f <= 8 && r.PCMTrafficGBs[i] >= 84.9 {
			pinned++
		}
	}
	if pinned < 3 {
		t.Errorf("PCM should pin at the 85 GB/s peak below 8 flops/element, pinned=%d", pinned)
	}
	if r.IC[0] <= r.IC[3] {
		t.Error("IC should keep growing into the overload regime PCM cannot see")
	}
	// Right: Hypre and NekRS induce the most interference; XSBench least.
	ic := map[string]float64{}
	for i, a := range r.Apps {
		ic[a] = r.AppIC[i]
	}
	if ic["XSBench"] > ic["Hypre"] || ic["XSBench"] > ic["NekRS"] {
		t.Errorf("XSBench IC (%v) should be the lowest band", ic["XSBench"])
	}
	if ic["Hypre"] < ic["BFS"] {
		t.Errorf("Hypre (%v) should induce more than BFS (%v)", ic["Hypre"], ic["BFS"])
	}
}

func TestFigure12CaseStudyShape(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure12()
	if len(r.Cells) != 6 {
		t.Fatalf("want 2 pooling x 3 variants = 6 cells, got %d", len(r.Cells))
	}
	get := func(pooled float64, v string) Figure12Cell {
		for _, c := range r.Cells {
			if c.PooledFraction == pooled && c.Variant.String() == v {
				return c
			}
		}
		t.Fatalf("missing cell %v/%s", pooled, v)
		return Figure12Cell{}
	}
	for _, pooled := range []float64{0.50, 0.75} {
		base := get(pooled, "baseline")
		opt := get(pooled, "optimized")
		if base.RemoteAccessRatio < 0.85 {
			t.Errorf("baseline at %v pooling should be nearly all-remote, got %.2f",
				pooled, base.RemoteAccessRatio)
		}
		if opt.RemoteAccessRatio > base.RemoteAccessRatio-0.3 {
			t.Errorf("optimization should cut remote access massively: %.2f -> %.2f",
				base.RemoteAccessRatio, opt.RemoteAccessRatio)
		}
		speedup := base.Runtime/opt.Runtime - 1
		if speedup < 0.05 {
			t.Errorf("optimized should be much faster, got %.1f%%", speedup*100)
		}
		// Optimization reduces interference sensitivity (Figure 12 right).
		if opt.Sensitivity[len(opt.Sensitivity)-1] < base.Sensitivity[len(base.Sensitivity)-1] {
			t.Errorf("optimized should be less interference-sensitive")
		}
	}
}

func TestFigure13SchedulingShape(t *testing.T) {
	skipShort(t)
	r := testSuite().Figure13()
	if len(r.Summaries) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(r.Summaries))
	}
	by := map[string]float64{}
	for _, s := range r.Summaries {
		if s.MeanSpeedup < -0.005 {
			t.Errorf("%s: interference-aware scheduling should not slow down (%.3f)", s.Workload, s.MeanSpeedup)
		}
		// Variability shrinks: the aware range is no wider than baseline.
		if (s.Aware.Max - s.Aware.Min) > (s.Baseline.Max-s.Baseline.Min)+1e-9 {
			t.Errorf("%s: aware spread should shrink", s.Workload)
		}
		by[s.Workload] = s.MeanSpeedup
	}
	// The paper: Hypre benefits most (4%); XSBench ~0%.
	if by["XSBench"] > by["Hypre"] {
		t.Errorf("XSBench (%.3f) should benefit less than Hypre (%.3f)", by["XSBench"], by["Hypre"])
	}
	if by["XSBench"] > 0.01 {
		t.Errorf("XSBench should see ~0%% speedup, got %.3f", by["XSBench"])
	}
}

func TestRunAndAllIDs(t *testing.T) {
	skipShort(t)
	s := testSuite()
	for _, id := range IDs {
		r, err := s.Run(id)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		if r.ID() != id {
			t.Errorf("Run(%s) returned id %s", id, r.ID())
		}
		if len(r.Render()) == 0 {
			t.Errorf("%s renders empty", id)
		}
	}
	if _, err := s.Run("figure99"); err == nil {
		t.Error("unknown id should error")
	}
}
