package repro

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNewOptionValidation(t *testing.T) {
	if _, err := New(WithDefaultPlatform("vapor")); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("unknown default platform: err = %v, want ErrUnknownPlatform", err)
	}
	if _, err := New(WithScenarios()); err == nil {
		t.Error("empty WithScenarios should error")
	}
	if _, err := New(WithWorkloads()); err == nil {
		t.Error("empty WithWorkloads should error")
	}
	if _, err := New(WithRuns(-1)); err == nil {
		t.Error("negative WithRuns should error")
	}
	if _, err := New(WithScenarios(Scenario{Name: "broken"})); err == nil {
		t.Error("invalid scenario spec should error")
	}
	// A valid custom set: the first scenario becomes the default platform.
	sp, err := PlatformNamed("cxl-gen5")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(WithScenarios(sp))
	if err != nil {
		t.Fatal(err)
	}
	if svc.DefaultPlatform() != "cxl-gen5" {
		t.Errorf("default platform = %q, want the first scenario", svc.DefaultPlatform())
	}
	if _, err := svc.Artifact(context.Background(), ArtifactRequest{Platform: "baseline", Artifact: "figure1"}); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("scenario outside the restricted set: err = %v, want ErrUnknownPlatform", err)
	}
}

func TestServiceEnumerations(t *testing.T) {
	svc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(svc.Scenarios()), len(Platforms()); got != want {
		t.Errorf("Scenarios() = %d entries, want %d", got, want)
	}
	if got, want := len(svc.Workloads()), 6; got != want {
		t.Errorf("Workloads() = %d entries, want %d", got, want)
	}
	ids := svc.IDs()
	if len(ids) != len(ExperimentIDs()) {
		t.Errorf("IDs() = %d entries, want %d", len(ids), len(ExperimentIDs()))
	}
	ids[0] = "mutated"
	if svc.IDs()[0] == "mutated" {
		t.Error("IDs must return a copy")
	}
}

// TestServiceArtifactMatchesLegacy is the facade's byte-identity
// guarantee on the cheap data-backed artifacts: the Service path renders
// exactly what the legacy suite path renders, and figure aliases
// canonicalize transparently at the library surface.
func TestServiceArtifactMatchesLegacy(t *testing.T) {
	svc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range []string{"figure1", "table1"} {
		legacy, err := NewExperiments(DefaultPlatform()).Run(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Rendered(ctx, ArtifactRequest{Artifact: id}, FormatText)
		if err != nil {
			t.Fatal(err)
		}
		if got != legacy.Render() {
			t.Errorf("%s: Service render differs from legacy path (%d vs %d bytes)",
				id, len(got), len(legacy.Render()))
		}
	}
	// Alias request: canonicalized, same document, stamped platform.
	d, err := svc.Artifact(ctx, ArtifactRequest{Artifact: "fig1"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Artifact != "figure1" || d.Platform != "baseline" {
		t.Errorf("alias request resolved to %q on %q, want figure1 on baseline", d.Artifact, d.Platform)
	}
	// Unknown ids and platforms classify under the exported sentinels.
	if _, err := svc.Artifact(ctx, ArtifactRequest{Artifact: "nope"}); !errors.Is(err, ErrUnknownArtifact) {
		t.Errorf("unknown artifact: err = %v, want ErrUnknownArtifact", err)
	}
	if _, err := svc.Artifact(ctx, ArtifactRequest{Platform: "vapor", Artifact: "figure1"}); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("unknown platform: err = %v, want ErrUnknownPlatform", err)
	}
}

// TestServiceCachePolicy checks WithCache: on by default (one compute per
// document), recompute-per-request when off.
func TestServiceCachePolicy(t *testing.T) {
	ctx := context.Background()
	svc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := svc.Rendered(ctx, ArtifactRequest{Artifact: "table1"}, FormatText); err != nil {
			t.Fatal(err)
		}
	}
	if docs, renders := svc.Store().Cached(); docs != 1 || renders != 1 {
		t.Errorf("cached docs=%d renders=%d after two requests, want 1 and 1", docs, renders)
	}
	uncached, err := New(WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uncached.Rendered(ctx, ArtifactRequest{Artifact: "table1"}, FormatText); err != nil {
		t.Fatal(err)
	}
	if docs, renders := uncached.Store().Cached(); docs != 0 || renders != 0 {
		t.Errorf("WithCache(false) memoized: docs=%d renders=%d", docs, renders)
	}
}

// TestServiceSweepValidation checks the shared validator guards the
// library path with the caps the HTTP layer enforces.
func TestServiceSweepValidation(t *testing.T) {
	svc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	g, err := svc.Grid("baseline", SweepAxis{Name: "bogus", Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Sweep(context.Background(), g); !errors.Is(err, ErrInvalidSweep) {
		t.Errorf("bad axis through the library path: err = %v, want ErrInvalidSweep", err)
	}
	if _, err := svc.Grid("vapor"); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("Grid on unknown platform: err = %v, want ErrUnknownPlatform", err)
	}
}

// TestServiceConcurrentRequests hammers one Service from several
// goroutines mixing artifact and sweep requests — the serve workload. The
// suite serializes engine invocations internally; under -race this pins
// that no request path races on the shared limiter or memos.
func TestServiceConcurrentRequests(t *testing.T) {
	hpl, err := Workload("HPL")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(WithWorkers(2), WithRuns(2), WithWorkloads(hpl))
	if err != nil {
		t.Fatal(err)
	}
	g, err := svc.Grid("baseline", SweepAxis{Name: "gen", Values: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			_, err := svc.Rendered(ctx, ArtifactRequest{Artifact: "figure1"}, FormatText)
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := svc.Rendered(ctx, ArtifactRequest{Artifact: "table1"}, FormatJSON)
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := svc.Sweep(ctx, g)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestServiceSweepMemoized pins the campaign-memo routing: repeated
// sweeps of one grid — including on the default platform, whose machine
// name differs from its scenario name — share a single execution.
func TestServiceSweepMemoized(t *testing.T) {
	hpl, err := Workload("HPL")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(WithRuns(2), WithWorkloads(hpl))
	if err != nil {
		t.Fatal(err)
	}
	g, err := svc.Grid("baseline", SweepAxis{Name: "gen", Values: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c1, err := svc.Sweep(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := svc.Sweep(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("repeated sweep of one grid did not hit the single-flight memo")
	}
}

// TestServiceCancellation pins the context contract on the service
// surface: pre-cancelled contexts fail fast and seed nothing.
func TestServiceCancellation(t *testing.T) {
	svc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Artifact(ctx, ArtifactRequest{Artifact: "figure1"}); !errors.Is(err, context.Canceled) {
		t.Errorf("Artifact under cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := svc.RunAll(ctx, ""); !errors.Is(err, context.Canceled) {
		t.Errorf("RunAll under cancelled ctx = %v, want context.Canceled", err)
	}
	g, err := svc.Grid("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Sweep(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep under cancelled ctx = %v, want context.Canceled", err)
	}
	if docs, renders := svc.Store().Cached(); docs != 0 || renders != 0 {
		t.Errorf("cancelled calls seeded the store: docs=%d renders=%d", docs, renders)
	}
}

// TestServiceHandlerEndToEnd drives the real /v1 surface over a real
// Service on the cheap artifacts: negotiation, envelope, health and the
// deprecated aliases, exactly as `memdis serve` mounts them.
func TestServiceHandlerEndToEnd(t *testing.T) {
	svc, err := New(WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	if code, b := body("/healthz"); code != 200 || !strings.Contains(b, `"ok"`) {
		t.Errorf("healthz = %d %q", code, b)
	}
	code, b := body("/v1/artifacts/figure1?format=json")
	if code != 200 {
		t.Fatalf("figure1 = %d\n%s", code, b)
	}
	d, err := ParseArtifactJSON(b)
	if err != nil || d.Artifact != "figure1" || d.Platform != "baseline" {
		t.Errorf("served document: %+v, %v", d, err)
	}
	// The legacy alias serves the identical bytes.
	if code, legacy := body("/artifacts/figure1.json"); code != 200 || legacy != b {
		t.Errorf("legacy alias differs from /v1 (%d, %d vs %d bytes)", code, len(legacy), len(b))
	}
	if code, b := body("/v1/artifacts/fig1"); code != 404 || !strings.Contains(b, "figure1") {
		t.Errorf("alias over /v1 = %d %q, want 404 pointing at figure1", code, b)
	}
	if code, b := body("/v1/platforms?format=json"); code != 200 || !strings.Contains(b, "cxl-gen5") {
		t.Errorf("platforms = %d %q", code, b)
	}
	if code, b := body("/v1/workloads"); code != 200 || !strings.Contains(b, "XSBench") {
		t.Errorf("workloads = %d %q", code, b)
	}
}

// TestServiceGoldenArtifacts is the acceptance criterion of the facade:
// every committed golden artifact, served through the Service path, is
// byte-identical to the file the legacy suite path generated. Full tier
// only (the quick tier pins the data-backed subset via
// TestServiceArtifactMatchesLegacy).
func TestServiceGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier golden sweep")
	}
	svc, err := New(WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range svc.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			got, err := svc.Rendered(ctx, ArtifactRequest{Artifact: id}, FormatText)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("internal", "experiments", "testdata", "golden", id+".txt")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s: %v", path, err)
			}
			if got != string(want) {
				t.Errorf("%s: Service render drifted from the committed golden (%d vs %d bytes)",
					id, len(got), len(want))
			}
		})
	}
}

// TestDefaultServiceBacksWrappers checks the legacy free functions
// delegate to the package-level default Service.
func TestDefaultServiceBacksWrappers(t *testing.T) {
	if got, want := len(Platforms()), len(Default().Scenarios()); got != want {
		t.Errorf("Platforms() = %d, Default().Scenarios() = %d", got, want)
	}
	if got, want := len(Workloads()), len(Default().Workloads()); got != want {
		t.Errorf("Workloads() = %d, Default().Workloads() = %d", got, want)
	}
	if got, want := len(ExperimentIDs()), len(Default().IDs()); got != want {
		t.Errorf("ExperimentIDs() = %d, Default().IDs() = %d", got, want)
	}
	if Default() != Default() {
		t.Error("Default must return one shared service")
	}
}
