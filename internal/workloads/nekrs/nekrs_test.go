package nekrs

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestGLLPointsOrder2(t *testing.T) {
	// 3-point GLL on [-1,1]: {-1, 0, 1} with weights {1/3, 4/3, 1/3}.
	x, w := gll(3)
	wantX := []float64{-1, 0, 1}
	wantW := []float64{1.0 / 3, 4.0 / 3, 1.0 / 3}
	for i := range wantX {
		if math.Abs(x[i]-wantX[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], wantX[i])
		}
		if math.Abs(w[i]-wantW[i]) > 1e-12 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], wantW[i])
		}
	}
}

func TestGLLWeightsIntegrateConstant(t *testing.T) {
	for n := 2; n <= 9; n++ {
		_, w := gll(n)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-2) > 1e-10 {
			t.Errorf("n=%d: weights sum to %v, want 2", n, sum)
		}
	}
}

func TestGLLQuadratureExactness(t *testing.T) {
	// n-point GLL is exact for polynomials up to degree 2n-3.
	n := 6
	x, w := gll(n)
	for deg := 0; deg <= 2*n-3; deg++ {
		got := 0.0
		for i := range x {
			got += w[i] * math.Pow(x[i], float64(deg))
		}
		want := 0.0
		if deg%2 == 0 {
			want = 2 / float64(deg+1)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("deg %d: integral = %v, want %v", deg, got, want)
		}
	}
}

func TestDiffMatrixExactOnPolynomials(t *testing.T) {
	n := 6
	x, _ := gll(n)
	d := diffMatrix(x)
	// Derivative of x^3 is 3x^2 — exact for the degree-5 basis.
	for i := 0; i < n; i++ {
		got := 0.0
		for j := 0; j < n; j++ {
			got += d[i*n+j] * math.Pow(x[j], 3)
		}
		want := 3 * x[i] * x[i]
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("(D x^3)[%d] = %v, want %v", i, got, want)
		}
	}
	// Rows sum to zero: derivative of constants vanishes.
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += d[i*n+j]
		}
		if math.Abs(s) > 1e-9 {
			t.Errorf("row %d sums to %v, want 0", i, s)
		}
	}
}

func TestLaplacianOfConstantIsZero(t *testing.T) {
	nk := &NekRS{Ex: 2, Ey: 2, Ez: 2, Order: 4}
	n1 := nk.Order + 1
	np := nk.Np()
	x, w := gll(n1)
	d := diffMatrix(x)
	g := make([]float64, np)
	for a := 0; a < n1; a++ {
		for b := 0; b < n1; b++ {
			for c := 0; c < n1; c++ {
				g[(c*n1+b)*n1+a] = w[a] * w[b] * w[c]
			}
		}
	}
	u := make([]float64, np)
	for i := range u {
		u[i] = 7.5
	}
	w0 := make([]float64, np)
	w1 := make([]float64, np)
	w2 := make([]float64, np)
	out := make([]float64, np)
	nk.applyLaplacian(d, g, u, w0, w1, w2, out, n1)
	for i, v := range out {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("Laplacian of constant at node %d = %v, want 0", i, v)
		}
	}
}

func TestLaplacianSymmetric(t *testing.T) {
	// The weak-form operator is symmetric: u'Av == v'Au.
	nk := &NekRS{Order: 4}
	n1 := nk.Order + 1
	np := n1 * n1 * n1
	x, w := gll(n1)
	d := diffMatrix(x)
	g := make([]float64, np)
	for i := range g {
		g[i] = w[i%n1] // arbitrary positive factors
	}
	u := make([]float64, np)
	v := make([]float64, np)
	for i := range u {
		u[i] = math.Sin(float64(i))
		v[i] = math.Cos(float64(3 * i))
	}
	w0 := make([]float64, np)
	w1 := make([]float64, np)
	w2 := make([]float64, np)
	au := make([]float64, np)
	av := make([]float64, np)
	nk.applyLaplacian(d, g, u, w0, w1, w2, au, n1)
	nk.applyLaplacian(d, g, v, w0, w1, w2, av, n1)
	uAv, vAu := 0.0, 0.0
	for i := range u {
		uAv += u[i] * av[i]
		vAu += v[i] * au[i]
	}
	if math.Abs(uAv-vAu) > 1e-8*math.Max(math.Abs(uAv), 1) {
		t.Errorf("operator not symmetric: u'Av=%v v'Au=%v", uAv, vAu)
	}
}

func TestRunDiffusionDecaysEnergy(t *testing.T) {
	nk := &NekRS{Ex: 2, Ey: 2, Ez: 2, Order: 4, Steps: 5, Dt: 1e-4}
	m := machine.New(machine.Default())
	nk.Run(m)
	// Initial energy of the sine product over the global grid.
	if nk.Energy <= 0 {
		t.Fatalf("energy = %v, want > 0", nk.Energy)
	}
	// Diffusion must not grow energy.
	nk2 := &NekRS{Ex: 2, Ey: 2, Ez: 2, Order: 4, Steps: 20, Dt: 1e-4}
	m2 := machine.New(machine.Default())
	nk2.Run(m2)
	if nk2.Energy > nk.Energy {
		t.Errorf("energy grew with more diffusion steps: %v -> %v", nk.Energy, nk2.Energy)
	}
}

func TestPhasesAndScale(t *testing.T) {
	nk := New(1)
	nk.Steps = 2
	m := machine.New(machine.Default())
	nk.Run(m)
	ph := m.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %d, want 2", len(ph))
	}
	if len(ph[1].Ticks) != 2 {
		t.Errorf("ticks = %d, want 2", len(ph[1].Ticks))
	}
	if ph[1].Flops <= 0 || ph[1].TotalBytes() == 0 {
		t.Errorf("p2 has no work recorded: %+v", ph[1])
	}
	// 1:2:4 element scaling.
	e1 := New(1).Ex * New(1).Ey * New(1).Ez
	e2 := New(2).Ex * New(2).Ey * New(2).Ez
	e4 := New(4).Ex * New(4).Ey * New(4).Ez
	if e2 != 2*e1 || e4 != 4*e1 {
		t.Errorf("element scaling %d:%d:%d, want 1:2:4", e1, e2, e4)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		nk := &NekRS{Ex: 2, Ey: 2, Ez: 2, Order: 3, Steps: 3, Dt: 1e-4}
		m := machine.New(machine.Default())
		nk.Run(m)
		return nk.Energy
	}
	if run() != run() {
		t.Errorf("non-deterministic energy")
	}
}
