package api

import (
	"strconv"
	"strings"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workloads/registry"
)

// platformsDoc reduces the scenario table to a typed document, so
// /v1/platforms serves through the same renderers (and formats) as every
// artifact.
func platformsDoc(scs []scenario.Spec) report.Doc {
	tb := report.NewTable("Platform scenarios",
		"Name", "Description", "Capacity sweep", "Headline")
	for _, sp := range scs {
		fr := make([]string, len(sp.CapacityFractions))
		for i, f := range sp.CapacityFractions {
			fr[i] = strconv.FormatFloat(f, 'g', -1, 64)
		}
		tb.Row(
			report.Str(sp.Name),
			report.Str(sp.Description),
			report.Str(strings.Join(fr, "/")),
			report.Pct(sp.HeadlineFraction),
		)
	}
	return *report.New("platforms").Append(tb.Block())
}

// workloadsDoc reduces the workload table (the paper's Table 2 metadata)
// to a typed document for /v1/workloads.
func workloadsDoc(entries []registry.Entry) report.Doc {
	tb := report.NewTable("Evaluated workloads",
		"Name", "Description", "Parallelization", "Inputs (1x/2x/4x)", "Phases")
	for _, e := range entries {
		tb.Row(
			report.Str(e.Name),
			report.Str(e.Description),
			report.Str(e.Parallelization),
			report.Str(strings.Join(e.Inputs[:], "; ")),
			report.Str(strings.Join(e.Phases, ",")),
		)
	}
	return *report.New("workloads").Append(tb.Block())
}
