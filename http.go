package repro

import (
	"context"
	"log"
	"net/http"
	"os"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// serviceBackend adapts a Service to the internal api.Backend interface
// the versioned HTTP layer serves.
type serviceBackend struct{ s *Service }

func (b serviceBackend) CanonicalID(id string) (string, error) {
	return experiments.CanonicalID(id)
}

func (b serviceBackend) Rendered(ctx context.Context, platform, artifact string, f report.Format) (string, error) {
	return b.s.Rendered(ctx, ArtifactRequest{Platform: platform, Artifact: artifact}, f)
}

func (b serviceBackend) Grid(platform string, axes ...sweep.Axis) (sweep.Grid, error) {
	return b.s.Grid(platform, axes...)
}

func (b serviceBackend) Sweep(ctx context.Context, g sweep.Grid) (*sweep.Campaign, error) {
	return b.s.Sweep(ctx, g)
}

func (b serviceBackend) Scenarios() []scenario.Spec  { return b.s.Scenarios() }
func (b serviceBackend) Workloads() []registry.Entry { return b.s.Workloads() }
func (b serviceBackend) IDs() []string               { return b.s.IDs() }
func (b serviceBackend) DefaultPlatform() string     { return b.s.DefaultPlatform() }

func (b serviceBackend) SubmitSweep(g sweep.Grid) (jobs.Record, error) { return b.s.SubmitSweep(g) }
func (b serviceBackend) ResumeJob(id string) (jobs.Record, error)      { return b.s.ResumeJob(id) }
func (b serviceBackend) Job(id string) (jobs.Record, error)            { return b.s.Job(id) }
func (b serviceBackend) Jobs() ([]jobs.Record, error)                  { return b.s.Jobs() }
func (b serviceBackend) CancelJob(id string) (jobs.Record, error)      { return b.s.CancelJob(id) }
func (b serviceBackend) JobEvents(id string) ([]byte, error)           { return b.s.JobEvents(id) }
func (b serviceBackend) JobArtifact(id, artifact string, f report.Format) (string, error) {
	return b.s.JobArtifact(id, artifact, f)
}

// Handler returns the Service's HTTP surface — what `memdis serve`
// mounts: the versioned /v1 API (GET /v1/artifacts/{id}, /v1/platforms,
// /v1/workloads, /v1/sweep, GET /healthz and GET /v1/stats) with one
// shared JSON error envelope, Accept-header plus ?format= content
// negotiation, and a middleware chain (request logging via WithLogger,
// panic recovery, conditional requests with strong ETags and
// If-None-Match 304s, Accept-Encoding gzip, single-flight coalescing of
// concurrent cache-miss renders), plus the pre-/v1 paths ("/",
// /artifacts/..., /sweep) mounted as deprecated aliases behind the same
// caching middleware with Deprecation headers added. /healthz reports the
// WithWarm readiness state. Artifact computation is bounded by each
// request's context, but a coalesced render survives until its last
// waiting client disconnects.
func (s *Service) Handler() http.Handler {
	logger := s.logger
	if !s.loggerSet {
		logger = log.New(os.Stderr, "api: ", log.LstdFlags)
	}
	legacySweep := sweep.Handler(
		func(platform string) (sweep.Grid, error) {
			return s.Grid(platform)
		},
		func(ctx context.Context, platform string, g sweep.Grid) (*sweep.Campaign, error) {
			// Request-scoped: a disconnecting client releases the engine
			// instead of pinning the suite's invocation slot.
			return s.Sweep(ctx, g)
		})
	return api.New(api.Config{
		Backend: serviceBackend{s: s},
		Logger:  logger,
		Ready:   s.Ready,
		WarmErr: s.WarmErr,
		ProfileCache: func() (hits, misses, joins int64) {
			cs := s.ProfileCacheStats()
			return cs.Hits, cs.Misses, cs.Joins
		},
		LegacyArtifacts: s.store.Handler(experiments.IDs, s.defaultPlatform),
		LegacySweep:     legacySweep,
	})
}
