package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// wallClockFuncs are the time-package functions that read (or schedule
// against) the wall clock. Engine output must be a pure function of the
// declaration and the seed, so none of these belong in an engine package.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// DeterminismAnalyzer enforces the engine's byte-identical-output
// contract: no wall-clock reads, no ambient randomness (randomness flows
// through stats.RNG's seeded substreams), and no map iteration whose order
// can leak into results — maps are iterated only to collect-and-sort keys,
// to rebuild another map, or to delete entries.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "engine packages must be wall-clock-free, ambient-randomness-free and map-order-independent",
		Appl: KindEngine,
		Run:  runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: engine randomness must flow through stats.RNG seeded substreams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "time.%s reads the wall clock: engine output must be a pure function of declaration and seed", fn.Name())
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange flags iteration over a map unless the loop body is one of
// the provably order-independent idioms:
//
//   - key collection:  ks = append(ks, k)   (collect, then sort)
//   - map rebuild:     other[expr] = expr   (distinct keys, distinct slots)
//   - entry deletion:  delete(m, k)
//
// Anything else — rendering, accumulation into floats, appends of values —
// can leak Go's randomized iteration order into results and must either
// sort keys first or carry a //repro:allow with the order-independence
// argument.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok {
		keyName = id.Name
	}
	for _, stmt := range rng.Body.List {
		if !orderIndependentStmt(stmt, keyName) {
			pass.Reportf(rng.Pos(), "map iteration order is nondeterministic here: collect and sort keys before this loop (or //repro:allow determinism with the order-independence argument)")
			return
		}
	}
}

// orderIndependentStmt reports whether stmt, as a map-range body
// statement, cannot observe iteration order. keyName is the loop's key
// variable ("" when unnamed).
func orderIndependentStmt(stmt ast.Stmt, keyName string) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// ks = append(ks, k): the collect-then-sort idiom. Only appends of
		// the key variable itself qualify — appending values or derived
		// expressions bakes iteration order into the slice.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) == 2 {
				if arg, ok := call.Args[1].(*ast.Ident); ok && keyName != "" && arg.Name == keyName {
					return true
				}
			}
			return false
		}
		// other[k2] = v2: one map entry per distinct key, no order effect.
		if _, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			return true
		}
		return false
	case *ast.ExprStmt:
		// delete(m, k)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.IncDecStmt:
		// n++ / n--: pure counting commutes.
		return true
	}
	return false
}

// calleeFunc resolves a call's target to its types.Func when the callee is
// a plain package-qualified or method selector (nil otherwise).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
