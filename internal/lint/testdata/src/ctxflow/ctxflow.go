// Package fixture exercises the ctxflow analyzer: context parameters not
// in first position and library-made root contexts are caught;
// ctx-first threading passes; //repro:allow silences a documented
// lifecycle detach.
package fixture

import "context"

// Engine is an exported entry-point carrier.
type Engine struct{}

// Run threads its caller's context, first parameter — clean.
func (e *Engine) Run(ctx context.Context, n int) error {
	return process(ctx, n)
}

// RunDetached buries the context mid-signature.
func (e *Engine) RunDetached(n int, ctx context.Context) error { // want ctxflow "RunDetached accepts context.Context at parameter 1"
	return ctx.Err()
}

// Compare is an exported free function with the same defect.
func Compare(a, b int, ctx context.Context) bool { // want ctxflow "Compare accepts context.Context at parameter 2"
	return ctx.Err() == nil && a == b
}

// process is unexported plumbing: position unchecked, but roots are still
// forbidden.
func process(ctx context.Context, n int) error {
	if n < 0 {
		ctx = context.Background() // want ctxflow "context.Background severs the cancellation chain"
	}
	return ctx.Err()
}

// todoContext reaches for TODO instead of accepting a context.
func todoContext() error {
	return process(context.TODO(), 1) // want ctxflow "context.TODO severs the cancellation chain"
}

// detach runs work that deliberately outlives its caller; the allow
// documents the lifecycle.
func detach() context.Context {
	//repro:allow ctxflow — fixture background lifecycle detach, stopped via its own cancel
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel
	return ctx
}
