package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/units"
)

// ScenarioCell holds one workload's headline metrics on one scenario: the
// Level-2 remote access ratio against the scenario's references, the
// Level-3 sensitivity and induced interference, and the Figure 13
// scheduling comparison.
type ScenarioCell struct {
	// RemoteAccess is the compute phase's (p2) remote access ratio at the
	// scenario's headline capacity split.
	RemoteAccess float64
	// Verdict classifies RemoteAccess against the scenario's R_cap/R_BW.
	Verdict core.TuningVerdict
	// RelPerf20 and RelPerf50 are relative performance at LoI=20% and 50%.
	RelPerf20, RelPerf50 float64
	// ICMean is the induced interference coefficient.
	ICMean float64
	// MeanSpeedup and P75Reduction compare the baseline and
	// interference-aware schedulers (the Figure 13 protocol).
	MeanSpeedup, P75Reduction float64
}

// ScenariosResult is the cross-scenario what-if comparison: the paper's
// Level-2/Level-3 and scheduling analyses re-evaluated on every registered
// platform scenario, rendered as side-by-side tables.
type ScenariosResult struct {
	Specs     []scenario.Spec
	Workloads []string
	// RBW[si] is scenario si's bandwidth reference point.
	RBW []float64
	// Cells[wi][si] is workload wi on scenario si.
	Cells [][]ScenarioCell
	// Runs is the Monte-Carlo run count of the scheduling comparison.
	Runs int
}

// pct renders a fraction as a whole percentage (rounded, so 1-0.9 prints
// as 10, not the float-truncated 9).
func pct(f float64) int { return int(math.Round(f * 100)) }

// profilerFor returns the suite's profiler for a scenario platform: the
// shared suite profiler when the platform matches (so `memdis all` pays
// nothing extra for the baseline column), otherwise a per-scenario profiler
// memoized on the suite so repeated sweeps reuse the profile caches.
func (s *Suite) profilerFor(sp scenario.Spec) *core.Profiler {
	if sp.Platform == s.Cfg {
		return s.Profiler
	}
	s.scenMu.Lock()
	defer s.scenMu.Unlock()
	if s.scenProfs == nil {
		s.scenProfs = map[string]*core.Profiler{}
	}
	if p, ok := s.scenProfs[sp.Name]; ok && p.Config() == sp.Platform {
		return p
	}
	// Per-scenario profilers draw from the suite's shared cache: dependency
	// keys make cross-platform sharing sound, so a scenario differing from
	// the base only in link parameters reuses the base's link-independent
	// profiles.
	p := core.NewProfilerShared(sp.Platform, s.Profiler.Cache())
	s.scenProfs[sp.Name] = p
	return p
}

// scenarioSeed derives the deterministic base seed of the (scenario,
// workload) scheduling comparison. It depends only on grid indices, so the
// sweep is byte-identical at any worker count.
func scenarioSeed(si, wi int) uint64 { return 4000 + uint64(si)*1000 + uint64(wi)*17 }

// Scenarios re-runs the profiling pipeline on every registered platform
// scenario at its headline capacity split and assembles the side-by-side
// comparison. The full per-scenario artifact set (Figure 9/10 panels over
// the scenario's own capacity sweep) is available by running the suite on
// that scenario via NewSuiteFor (the CLI's -platform flag); this driver is
// the cross-platform summary.
//
// The baseline scenario reuses the suite's shared profiler, so a composite
// invocation such as `memdis all` pays nothing extra for it; every other
// scenario owns one profiler shared by all of its cells.
func (s *Suite) Scenarios() ScenariosResult {
	specs := scenario.All()
	profs := make([]*core.Profiler, len(specs))
	for i, sp := range specs {
		profs[i] = s.profilerFor(sp)
	}
	res := ScenariosResult{Specs: specs, Runs: s.Runs}
	for _, sp := range specs {
		res.RBW = append(res.RBW, sp.Platform.BandwidthRatio())
	}
	for _, e := range s.Entries {
		res.Workloads = append(res.Workloads, e.Name)
	}
	l := s.lim()
	// Flatten the scenario x workload grid; each cell's Monte-Carlo runs
	// draw from the same shared worker budget (the limiter is nesting-safe)
	// and from substreams keyed by grid indices, never completion order.
	flat := pool.Map(l, len(specs)*len(s.Entries), func(i int) ScenarioCell {
		si, wi := i/len(s.Entries), i%len(s.Entries)
		sp, e, p := specs[si], s.Entries[wi], profs[si]
		rep := p.Level2(e, 1, sp.HeadlineFraction)
		cell := ScenarioCell{}
		for _, ph := range rep.Phases {
			if ph.Name == "p2" {
				cell.RemoteAccess = ph.RemoteAccessRatio
				cell.Verdict = rep.Verdict(ph)
			}
		}
		l3 := p.Level3(e, 1, sp.HeadlineFraction, []float64{0.20, 0.50})
		cell.RelPerf20, cell.RelPerf50 = l3.Relative[0], l3.Relative[1]
		cell.ICMean = l3.ICMean
		cfg := p.ConfigForLocalFraction(e, 1, sp.HeadlineFraction)
		sum := sched.CompareLimited(e.Name, cfg, rep.Phase2Stats, s.Runs, scenarioSeed(si, wi), l)
		cell.MeanSpeedup, cell.P75Reduction = sum.MeanSpeedup, sum.P75Reduction
		return cell
	})
	for wi := range s.Entries {
		row := make([]ScenarioCell, len(specs))
		for si := range specs {
			row[si] = flat[si*len(s.Entries)+wi]
		}
		res.Cells = append(res.Cells, row)
	}
	return res
}

// ID implements Result.
func (ScenariosResult) ID() string { return "scenarios" }

// headers returns the table header row: a leading label then one column per
// scenario annotated with its headline split.
func (r ScenariosResult) headers(label string) []string {
	hs := []string{label}
	for _, sp := range r.Specs {
		hs = append(hs, fmt.Sprintf("%s @%d-%d", sp.Name,
			pct(sp.HeadlineFraction), pct(1-sp.HeadlineFraction)))
	}
	return hs
}

// Report builds the platform inventory and one side-by-side table per
// analysis: remote access vs the references, interference sensitivity and
// induced coefficient, and the scheduler comparison. Composite cells carry
// their numeric payloads in Vals, so machine consumers need not re-parse
// the "97.5% balanced"-style text.
func (r ScenariosResult) Report() report.Doc {
	pt := report.NewTable("Cross-scenario platform inventory",
		"Scenario", "Link data", "Link peak", "Latency", "Overhead", "R_BW", "Capacity sweep (local %)")
	for si, sp := range r.Specs {
		sweep := ""
		for i, f := range sp.CapacityFractions {
			if i > 0 {
				sweep += "/"
			}
			sweep += fmt.Sprintf("%d", pct(f))
		}
		pt.Row(report.Str(sp.Name),
			report.Bandwidth(sp.Platform.Link.DataBandwidth),
			report.Bandwidth(sp.Platform.Link.PeakTraffic),
			report.Seconds(sp.Platform.Link.Latency),
			report.FixedSuffix(sp.Platform.Link.Overhead, 2, "x"),
			report.Pct(r.RBW[si]),
			report.Str(sweep, sp.CapacityFractions...))
	}

	ra := report.NewTable(
		"Remote access ratio of the compute phase (verdict vs the scenario's R_cap..R_BW band)",
		r.headers("Workload (p2)")...)
	sens := report.NewTable(
		"Interference: relative perf @LoI=50% and induced IC",
		r.headers("Workload")...)
	sch := report.NewTable(
		fmt.Sprintf("Interference-aware scheduling: mean speedup over %d runs (P75 cut)", r.Runs),
		r.headers("Workload")...)
	for wi, w := range r.Workloads {
		raRow := []report.Cell{report.Str(w)}
		sensRow := []report.Cell{report.Str(w)}
		schRow := []report.Cell{report.Str(w)}
		for si := range r.Specs {
			c := r.Cells[wi][si]
			raRow = append(raRow, report.Str(
				fmt.Sprintf("%s %s", units.Percent(c.RemoteAccess), c.Verdict), c.RemoteAccess))
			sensRow = append(sensRow, report.Str(
				fmt.Sprintf("%.3f ic=%.2f", c.RelPerf50, c.ICMean), c.RelPerf50, c.ICMean))
			schRow = append(schRow, report.Str(
				fmt.Sprintf("%s (%s)", units.Percent(c.MeanSpeedup), units.Percent(c.P75Reduction)),
				c.MeanSpeedup, c.P75Reduction))
		}
		ra.Row(raRow...)
		sens.Row(sensRow...)
		sch.Row(schRow...)
	}
	return *report.New("scenarios").Append(
		pt.Block(), report.Gap(), ra.Block(), report.Gap(), sens.Block(), report.Gap(), sch.Block())
}

// Render implements Result.
func (r ScenariosResult) Render() string { return report.RenderText(r.Report()) }
