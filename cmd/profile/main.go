// Command profile runs the three-level profiling workflow of Figure 4 on
// one workload and prints each level's report.
//
//	profile -workload BFS                 # all three levels, defaults
//	profile -workload XSBench -scale 2 -local 0.25 -level 2
//	profile -workload HPL -platform cxl-gen5   # profile against a scenario
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workloads/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	name := fs.String("workload", "", "workload name (HPL, Hypre, NekRS, BFS, SuperLU, XSBench)")
	scale := fs.Int("scale", 1, "input scale: 1, 2 or 4")
	local := fs.Float64("local", 0.5, "local tier capacity as a fraction of peak usage (levels 2-3)")
	level := fs.Int("level", 0, "run a single level (1, 2 or 3); 0 = all")
	platform := fs.String("platform", "baseline", "platform scenario (see `memdis platforms`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-workload is required; known: %v", registry.Names())
	}
	entry, err := registry.Get(*name)
	if err != nil {
		return err
	}
	if *scale != 1 && *scale != 2 && *scale != 4 {
		return fmt.Errorf("scale must be 1, 2 or 4")
	}
	sp, err := scenario.Get(*platform)
	if err != nil {
		return err
	}
	p := core.NewProfiler(sp.Platform)

	if *level == 0 || *level == 1 {
		printLevel1(p, entry, *scale)
	}
	if *level == 0 || *level == 2 {
		printLevel2(p, entry, *scale, *local)
	}
	if *level == 0 || *level == 3 {
		printLevel3(p, entry, *scale, *local)
	}
	return nil
}

func printLevel1(p *core.Profiler, entry registry.Entry, scale int) {
	rep := p.Level1(entry, scale)
	fmt.Printf("== Level 1: general characteristics (%s x%d) ==\n", rep.Workload, rep.Scale)
	fmt.Printf("peak footprint: %s\n", units.Bytes(rep.PeakFootprint))
	tb := textplot.NewTable("per-phase profile",
		"Phase", "Time", "AI (flop/B)", "Throughput", "Bandwidth", "PF acc", "PF cov")
	for _, ph := range rep.Phases {
		tb.AddRow(ph.Name, units.Seconds(ph.Time), fmt.Sprintf("%.3f", ph.AI),
			units.Flops(ph.Throughput), units.Bandwidth(ph.Bandwidth),
			units.Percent(ph.PrefetchAccuracy), units.Percent(ph.PrefetchCoverage))
	}
	fmt.Print(tb.String())
	fmt.Printf("prefetching: accuracy %s, coverage %s, excess traffic %s, performance gain %s\n\n",
		units.Percent(rep.Accuracy), units.Percent(rep.Coverage),
		units.Percent(rep.ExcessTraffic), units.Percent(rep.PerformanceGain))
}

func printLevel2(p *core.Profiler, entry registry.Entry, scale int, local float64) {
	rep := p.Level2(entry, scale, local)
	fmt.Printf("== Level 2: multi-tier access (%s x%d, local=%.0f%% of peak) ==\n",
		rep.Workload, rep.Scale, local*100)
	fmt.Printf("references: R_cap=%s R_BW=%s\n", units.Percent(rep.RCap), units.Percent(rep.RBW))
	tb := textplot.NewTable("per-phase tier ratios",
		"Phase", "%RemoteAccess", "%RemoteCapacity", "AI", "Verdict")
	for _, ph := range rep.Phases {
		tb.AddRow(ph.Name, units.Percent(ph.RemoteAccessRatio),
			units.Percent(ph.RemoteCapacityRatio), fmt.Sprintf("%.3f", ph.AI),
			rep.Verdict(ph).String())
	}
	fmt.Print(tb.String())

	regions := core.SortRegionsHot(rep.Regions)
	if len(regions) > 6 {
		regions = regions[:6]
	}
	rt := textplot.NewTable("hottest allocation sites", "Region", "Local pages", "Remote pages", "Accesses")
	for _, r := range regions {
		rt.AddRow(r.Region.Name, r.LocalPages, r.RemotePages, r.Accesses)
	}
	fmt.Print(rt.String())
	fmt.Println()
}

func printLevel3(p *core.Profiler, entry registry.Entry, scale int, local float64) {
	lois := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	rep := p.Level3(entry, scale, local, lois)
	fmt.Printf("== Level 3: memory interference (%s x%d, local=%.0f%% of peak) ==\n",
		rep.Workload, rep.Scale, local*100)
	headers := []string{"metric"}
	for _, l := range lois {
		headers = append(headers, fmt.Sprintf("LoI=%d", int(l*100)))
	}
	tb := textplot.NewTable("sensitivity to interference", headers...)
	row := []any{"rel perf"}
	idx := make([]int, len(rep.Relative))
	for i := range idx {
		idx[i] = i
	}
	sort.Ints(idx)
	for _, i := range idx {
		row = append(row, fmt.Sprintf("%.3f", rep.Relative[i]))
	}
	tb.AddRow(row...)
	fmt.Print(tb.String())
	fmt.Printf("interference coefficient: mean %.3f (min %.3f, max %.3f)\n",
		rep.ICMean, rep.ICLo, rep.ICHi)
	fmt.Printf("deployment advice: %s\n", rep.DeploymentAdvice())
}
