// Package core implements the paper's primary contribution: the three-level
// top-down quantitative methodology for dissecting application requirements
// on the memory system (§3), backed by the multi-level profiler.
//
//   - Level 1 captures an application's intrinsic requirements — arithmetic
//     intensity, capacity and bandwidth usage, access pattern, and hardware
//     prefetching behaviour — properties preserved across memory systems.
//   - Level 2 quantifies the impact of a general multi-tier memory system:
//     the per-tier access ratios against the two reference points, the
//     capacity ratio R_cap and the bandwidth ratio R_BW.
//   - Level 3 quantifies memory interference on pooling-based systems:
//     sensitivity to injected interference and the interference coefficient
//     an application induces on co-running jobs.
//
// The profiler drives workloads on the emulated platform (internal/machine)
// and reduces the collected PhaseStats to the reports each level needs.
// Because execution time is a pure function of (PhaseStats, Config, LoI),
// Level 3 re-evaluates measured phases analytically across interference
// levels without re-running the workload — the paper's own workflow of
// profiling once and reasoning about deployment configurations afterwards.
package core

import (
	"sort"

	"repro/internal/lbench"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/roofline"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/internal/workloads/registry"
)

// Profiler runs the multi-level analysis on a platform configuration.
// The zero value is not usable; construct with NewProfiler or
// NewProfilerShared.
//
// A profiler is safe for concurrent use: all memoization lives in a
// SharedCache, where concurrent requests for the same profile are coalesced
// so each workload execution happens exactly once (single-flight). Cached
// reports are shared between callers and must be treated as read-only.
//
// Each sub-result is memoized under a dependency key — the subset of cfg a
// result can actually read (see sharedcache.go) — so profilers for
// different platforms backed by one SharedCache reuse each other's work
// whenever the platforms agree on the fields that matter: sweeps stepping a
// link axis recompute nothing but the link-dependent levels.
type Profiler struct {
	cfg   machine.Config
	cache *SharedCache
}

// NewProfiler returns a profiler for the given platform with a private
// cache. Sweeps that profile many related platforms should prefer
// NewProfilerShared so link-independent results are computed once.
func NewProfiler(cfg machine.Config) *Profiler {
	return NewProfilerShared(cfg, NewSharedCache())
}

// NewProfilerShared returns a profiler for the given platform backed by the
// shared cache c (a private cache if c is nil). Any number of profilers for
// any mix of platforms may share one cache concurrently.
func NewProfilerShared(cfg machine.Config, c *SharedCache) *Profiler {
	if c == nil {
		c = NewSharedCache()
	}
	return &Profiler{cfg: cfg, cache: c}
}

// Config returns the platform configuration.
func (p *Profiler) Config() machine.Config { return p.cfg }

// Cache returns the shared cache backing this profiler.
func (p *Profiler) Cache() *SharedCache { return p.cache }

// Run executes a workload on a fresh machine with the given config and
// returns the machine (phases recorded).
func Run(cfg machine.Config, w workloads.Workload) *machine.Machine {
	m := machine.New(cfg)
	w.Run(m)
	return m
}

// PeakUsage returns the workload's peak memory footprint on an unbounded
// single-tier system — the quantity the paper's setup_waste protocol sizes
// local capacity against.
func (p *Profiler) PeakUsage(entry registry.Entry, scale int) uint64 {
	key := execKeyFor(p.cfg, entry.Name, scale)
	return cached(p.cache, p.cache.peak, key, func() uint64 {
		return Run(p.cfg, entry.New(scale)).PeakFootprint()
	})
}

// ConfigForLocalFraction returns the platform config with the local tier
// capped at fraction of the workload's peak usage (e.g. 0.25 for the
// "25%-75%" configuration of Figures 9 and 10).
func (p *Profiler) ConfigForLocalFraction(entry registry.Entry, scale int, fraction float64) machine.Config {
	peak := p.PeakUsage(entry, scale)
	capacity := uint64(fraction * float64(peak))
	if capacity < p.cfg.Mem.PageSize {
		capacity = p.cfg.Mem.PageSize
	}
	return p.cfg.WithLocalCapacity(capacity)
}

// ---------------------------------------------------------------------------
// Level 1
// ---------------------------------------------------------------------------

// PhaseProfile is the Level-1 view of one phase.
type PhaseProfile struct {
	Name string
	// Time is the modeled execution time on the idle system.
	Time float64
	// AI is the arithmetic intensity in flop/byte.
	AI float64
	// Throughput is the achieved compute rate in flop/s.
	Throughput float64
	// Bandwidth is the achieved memory bandwidth in bytes/s.
	Bandwidth float64
	// PrefetchAccuracy and PrefetchCoverage are the paper's equations
	// (1) and (2) over the phase.
	PrefetchAccuracy float64
	PrefetchCoverage float64
	// Stats is the raw phase record.
	Stats machine.PhaseStats
}

// Level1Report is the general characterization of §4.
type Level1Report struct {
	Workload string
	Scale    int
	// Phases on the single-tier (unbounded local) system.
	Phases []PhaseProfile
	// PeakFootprint is the maximum resident footprint.
	PeakFootprint uint64
	// Prefetch study (two runs, prefetcher on/off):
	// PerformanceGain is T_off/T_on - 1 (the paper's "performance gain").
	PerformanceGain float64
	// ExcessTraffic is bytes_on/bytes_off - 1 ("excessive prefetch
	// traffic").
	ExcessTraffic float64
	// Accuracy and Coverage over the whole run (prefetcher on).
	Accuracy, Coverage float64
	// TimelineOn and TimelineOff are the per-tick fetched-lines series of
	// the compute phase with and without prefetching (Figure 7).
	TimelineOn, TimelineOff []machine.Tick
}

// Level1 profiles intrinsic workload characteristics on a single-tier
// system, including the prefetching study of §4.2. Reports are memoized per
// (workload, scale); treat the returned slices as read-only.
func (p *Profiler) Level1(entry registry.Entry, scale int) Level1Report {
	key := l1Key{
		exec:                singleTierKeyFor(p.cfg, entry.Name, scale),
		peakFlops:           p.cfg.PeakFlops,
		localBandwidth:      p.cfg.LocalBandwidth,
		localLatency:        p.cfg.LocalLatency,
		mlp:                 p.cfg.MLP,
		streamDemandPenalty: p.cfg.StreamDemandPenalty,
	}
	return cached(p.cache, p.cache.l1, key, func() Level1Report {
		return p.level1(entry, scale)
	})
}

func (p *Profiler) level1(entry registry.Entry, scale int) Level1Report {
	cfgOn := p.cfg
	cfgOn.Mem.LocalCapacity = 0 // single tier
	mOn := Run(cfgOn, entry.New(scale))
	mOff := Run(cfgOn.WithPrefetch(false), entry.New(scale))

	rep := Level1Report{Workload: entry.Name, Scale: scale, PeakFootprint: mOn.PeakFootprint()}
	var tOn, tOff float64
	var bytesOn, bytesOff float64
	var acc, cov, wsum float64
	for _, ph := range mOn.Phases() {
		t := cfgOn.PhaseTime(ph, 0)
		pp := PhaseProfile{
			Name:             ph.Name,
			Time:             t,
			AI:               ph.ArithmeticIntensity(),
			PrefetchAccuracy: ph.Cache.Accuracy(),
			PrefetchCoverage: ph.Cache.Coverage(),
			Stats:            ph,
		}
		if t > 0 {
			pp.Throughput = ph.Flops / t
			pp.Bandwidth = float64(ph.TotalBytes()) / t
		}
		rep.Phases = append(rep.Phases, pp)
		tOn += t
		bytesOn += float64(ph.TotalBytes())
		w := float64(ph.Cache.LinesIn)
		acc += ph.Cache.Accuracy() * w
		cov += ph.Cache.Coverage() * w
		wsum += w
	}
	for _, ph := range mOff.Phases() {
		tOff += cfgOn.WithPrefetch(false).PhaseTime(ph, 0)
		bytesOff += float64(ph.TotalBytes())
	}
	if wsum > 0 {
		rep.Accuracy = acc / wsum
		rep.Coverage = cov / wsum
	}
	if tOn > 0 {
		rep.PerformanceGain = tOff/tOn - 1
	}
	if bytesOff > 0 {
		rep.ExcessTraffic = bytesOn/bytesOff - 1
	}
	if ph, ok := mOn.Phase("p2"); ok {
		rep.TimelineOn = ph.Ticks
	}
	if ph, ok := mOff.Phase("p2"); ok {
		rep.TimelineOff = ph.Ticks
	}
	return rep
}

// ScalingPoint is one point of the bandwidth–capacity scaling curve:
// the hottest FootprintPct percent of pages carry AccessPct percent of
// memory accesses.
type ScalingPoint struct {
	FootprintPct float64
	AccessPct    float64
}

// ScalingCurve builds the Figure 6 cumulative distribution for a workload
// at a scale: pages sorted by descending access count, cumulative access
// share sampled at each percent of the footprint.
func (p *Profiler) ScalingCurve(entry registry.Entry, scale int) []ScalingPoint {
	key := singleTierKeyFor(p.cfg, entry.Name, scale)
	return cached(p.cache, p.cache.curve, key, func() []ScalingPoint {
		return p.scalingCurve(entry, scale)
	})
}

func (p *Profiler) scalingCurve(entry registry.Entry, scale int) []ScalingPoint {
	cfg := p.cfg
	cfg.Mem.LocalCapacity = 0
	m := Run(cfg, entry.New(scale))
	counts := m.Space.PageAccessCounts()
	weights := make([]float64, len(counts))
	for i, c := range counts {
		weights[i] = float64(c)
	}
	cdf := stats.CDF(weights)
	if len(cdf) == 0 {
		return nil
	}
	points := make([]ScalingPoint, 0, 101)
	for pct := 0; pct <= 100; pct++ {
		idx := pct * (len(cdf) - 1) / 100
		points = append(points, ScalingPoint{
			FootprintPct: float64(pct),
			AccessPct:    cdf[idx] * 100,
		})
	}
	return points
}

// ---------------------------------------------------------------------------
// Level 2
// ---------------------------------------------------------------------------

// Level2Phase is the tiered view of one phase.
type Level2Phase struct {
	Name string
	// RemoteAccessRatio is the fraction of access bytes served remotely.
	RemoteAccessRatio float64
	// RemoteCapacityRatio is the fraction of bound pages resident remotely
	// at phase end.
	RemoteCapacityRatio float64
	// AI is re-measured on the tiered system (the paper validates it
	// matches the single-tier measurement).
	AI    float64
	Stats machine.PhaseStats
}

// Level2Report quantifies multi-tier memory access (§5).
type Level2Report struct {
	Workload string
	Scale    int
	// LocalFraction is the local capacity as a fraction of peak usage.
	LocalFraction float64
	// RCap and RBW are the two remote-side reference points of Figure 9.
	RCap, RBW float64
	Phases    []Level2Phase
	// Regions is the per-allocation-site breakdown (hot-object analysis
	// of §7.1), sorted by descending access count.
	Regions []mem.RegionStats
	// Machine retains the run for further analysis.
	Phase2Stats []machine.PhaseStats
}

// Level2 profiles the workload on a two-tier system with the local tier
// sized to fraction of peak usage. Reports are memoized per (workload,
// scale, fraction); treat the returned slices as read-only.
func (p *Profiler) Level2(entry registry.Entry, scale int, localFraction float64) Level2Report {
	key := l2Key{
		exec:           execKeyFor(p.cfg, entry.Name, scale),
		fraction:       localFraction,
		localBandwidth: p.cfg.LocalBandwidth,
		dataBandwidth:  p.cfg.Link.DataBandwidth,
	}
	return cached(p.cache, p.cache.l2, key, func() Level2Report {
		return p.level2(entry, scale, localFraction)
	})
}

func (p *Profiler) level2(entry registry.Entry, scale int, localFraction float64) Level2Report {
	cfg := p.ConfigForLocalFraction(entry, scale, localFraction)
	m := Run(cfg, entry.New(scale))
	rep := Level2Report{
		Workload:      entry.Name,
		Scale:         scale,
		LocalFraction: localFraction,
		RCap:          1 - localFraction,
		RBW:           cfg.BandwidthRatio(),
		Regions:       m.Space.PerRegion(),
	}
	for _, ph := range m.Phases() {
		rep.Phases = append(rep.Phases, Level2Phase{
			Name:                ph.Name,
			RemoteAccessRatio:   ph.RemoteAccessRatio,
			RemoteCapacityRatio: ph.RemoteCapacityRatio,
			AI:                  ph.ArithmeticIntensity(),
			Stats:               ph,
		})
		rep.Phase2Stats = append(rep.Phase2Stats, ph)
	}
	return rep
}

// TuningVerdict classifies a phase's remote access ratio against the two
// Level-2 reference points.
type TuningVerdict int

const (
	// Balanced: between R_cap and R_BW — little optimization headroom.
	Balanced TuningVerdict = iota
	// ExcessRemote: above R_BW — the slow tier limits memory performance;
	// prioritize moving hot data local.
	ExcessRemote
	// UnderusedRemote: below R_cap — remote bandwidth is left on the
	// table (acceptable for latency-sensitive codes).
	UnderusedRemote
)

// String names the verdict.
func (v TuningVerdict) String() string {
	switch v {
	case ExcessRemote:
		return "excess-remote"
	case UnderusedRemote:
		return "underused-remote"
	default:
		return "balanced"
	}
}

// Verdict classifies one phase of a Level-2 report. The R_BW bound is the
// upper tuning reference and R_cap the lower, per §5.1 (note the remote
// side: R_cap^remote = 1 - localFraction is the lower bound only when it is
// below R_BW; the verdict uses the interval between the two references).
func (r Level2Report) Verdict(phase Level2Phase) TuningVerdict {
	lo, hi := r.RCap, r.RBW
	if lo > hi {
		lo, hi = hi, lo
	}
	switch {
	case phase.RemoteAccessRatio > hi+0.05:
		return ExcessRemote
	case phase.RemoteAccessRatio < lo-0.05:
		return UnderusedRemote
	default:
		return Balanced
	}
}

// DominantPhase returns the phase contributing most execution time — the
// optimization priority per §5.2.
func (r Level2Report) DominantPhase(cfg machine.Config) (Level2Phase, bool) {
	best := -1.0
	var out Level2Phase
	for _, ph := range r.Phases {
		if t := cfg.PhaseTime(ph.Stats, 0); t > best {
			best = t
			out = ph
		}
	}
	return out, best >= 0
}

// RooflineModel returns the memory-roofline model for the platform,
// memoized on the three ceilings it is built from.
func (p *Profiler) RooflineModel() roofline.Model {
	key := rooflineKey{
		peakFlops:      p.cfg.PeakFlops,
		localBandwidth: p.cfg.LocalBandwidth,
		dataBandwidth:  p.cfg.Link.DataBandwidth,
	}
	return cached(p.cache, p.cache.roofline, key, func() roofline.Model {
		return roofline.Model{
			PeakFlops:       p.cfg.PeakFlops,
			LocalBandwidth:  p.cfg.LocalBandwidth,
			RemoteBandwidth: p.cfg.Link.DataBandwidth,
		}
	})
}

// ---------------------------------------------------------------------------
// Level 3
// ---------------------------------------------------------------------------

// Level3Report quantifies interference on memory pooling (§6).
type Level3Report struct {
	Workload      string
	Scale         int
	LocalFraction float64
	// LoIs are the injected interference levels (fractions of peak link
	// traffic); Relative[i] is the relative performance of the compute
	// phase at LoIs[i] versus LoI=0.
	LoIs     []float64
	Relative []float64
	// ICMean/ICLo/ICHi is the interference coefficient the workload
	// induces (time-weighted mean and per-phase extremes).
	ICMean, ICLo, ICHi float64
}

// Level3 measures interference sensitivity (relative performance of the
// compute phase under injected LoI) and induced interference (IC) for a
// workload on a pooled configuration.
func (p *Profiler) Level3(entry registry.Entry, scale int, localFraction float64, lois []float64) Level3Report {
	l2 := p.Level2(entry, scale, localFraction)
	cfg := p.ConfigForLocalFraction(entry, scale, localFraction)
	rep := Level3Report{
		Workload:      entry.Name,
		Scale:         scale,
		LocalFraction: localFraction,
		LoIs:          append([]float64(nil), lois...),
	}
	compute := computePhases(l2.Phase2Stats)
	for _, loi := range lois {
		rep.Relative = append(rep.Relative, cfg.Sensitivity(compute, loi))
	}
	md := lbench.NewModel(cfg)
	rep.ICMean, rep.ICLo, rep.ICHi = md.ICOfWorkload(cfg, l2.Phase2Stats)
	return rep
}

// computePhases drops the initialization phase (p1) — the paper's Figure 10
// reports sensitivity of the compute phases (X-p2).
func computePhases(phases []machine.PhaseStats) []machine.PhaseStats {
	var out []machine.PhaseStats
	for _, ph := range phases {
		if ph.Name != "p1" {
			out = append(out, ph)
		}
	}
	if len(out) == 0 {
		return phases
	}
	return out
}

// DeploymentAdvice renders the §6.1 guidance: low-sensitivity applications
// can lean on pooled capacity; highly sensitive ones should scale out to
// more nodes or avoid the pool.
func (r Level3Report) DeploymentAdvice() string {
	if len(r.Relative) == 0 {
		return "no measurement"
	}
	worst := r.Relative[len(r.Relative)-1]
	switch {
	case worst >= 0.95:
		return "low sensitivity: lean on pooled memory to reduce node count"
	case worst >= 0.85:
		return "moderate sensitivity: balance pooled capacity against co-location risk"
	default:
		return "high sensitivity: add compute nodes to cut remote access, or avoid the pool"
	}
}

// SortRegionsHot returns the regions sorted by access count descending
// (utility for reports).
func SortRegionsHot(regions []mem.RegionStats) []mem.RegionStats {
	out := append([]mem.RegionStats(nil), regions...)
	sort.Slice(out, func(i, j int) bool { return out[i].Accesses > out[j].Accesses })
	return out
}
