// Package placement implements the static data-placement optimizers the
// paper discusses in §5.2 and §7.1: given the per-allocation-site profile
// from a Level-2 run (sizes and access counts per region), decide which
// objects to pin to the local tier so that the predicted remote access
// ratio approaches the R_cap..R_BW tuning band.
//
// The paper notes that global placement across phases "is a Knapsack
// problem which is NP-complete"; this package provides both the greedy
// hotness-density heuristic practitioners actually use (the §7.1
// allocate-hottest-first recipe generalized) and an exact dynamic-program
// solution at page granularity for validating the heuristic on profiled
// workloads.
//
// It also provides the N:M interleave policy of the kernel patch the paper
// cites ([50], non-uniform interleaving for tiered memory): pages strided
// across tiers in proportion to tier bandwidth, which trades latency for
// aggregate-bandwidth utilization.
package placement

import (
	"sort"

	"repro/internal/mem"
)

// Object is one placement candidate: a profiled allocation site.
type Object struct {
	// Name identifies the allocation site.
	Name string
	// Bytes is the object size.
	Bytes uint64
	// Accesses is the profiled access count (post-cache traffic).
	Accesses uint64
}

// Density is accesses per byte — the greedy ordering key.
func (o Object) Density() float64 {
	if o.Bytes == 0 {
		return 0
	}
	return float64(o.Accesses) / float64(o.Bytes)
}

// FromRegions converts a Level-2 per-region profile into placement
// candidates, skipping freed/empty regions.
func FromRegions(regions []mem.RegionStats) []Object {
	out := make([]Object, 0, len(regions))
	for _, r := range regions {
		if r.Region == nil || r.Region.Size == 0 {
			continue
		}
		out = append(out, Object{
			Name:     r.Region.Name,
			Bytes:    r.Region.Size,
			Accesses: r.Accesses,
		})
	}
	return out
}

// Plan assigns each object a tier.
type Plan struct {
	// Local lists the objects pinned to the local tier, in allocation
	// order (hottest first so the §7.1 first-touch recipe realizes the
	// plan).
	Local []Object
	// Remote lists the objects left on the pool.
	Remote []Object
	// LocalBytes is the local capacity the plan consumes.
	LocalBytes uint64
}

// RemoteAccessRatio predicts the remote share of memory accesses under the
// plan.
func (p Plan) RemoteAccessRatio() float64 {
	var local, remote uint64
	for _, o := range p.Local {
		local += o.Accesses
	}
	for _, o := range p.Remote {
		remote += o.Accesses
	}
	if local+remote == 0 {
		return 0
	}
	return float64(remote) / float64(local+remote)
}

// Greedy packs objects into the local tier in descending hotness density
// until capacity runs out — the generalized form of the paper's
// "allocating and initializing objects in order of hotness" recipe. Objects
// that do not fit are skipped (not split); later, smaller objects may still
// fit, so the scan continues.
func Greedy(objects []Object, localCapacity uint64) Plan {
	sorted := append([]Object(nil), objects...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Density() > sorted[j].Density()
	})
	var plan Plan
	for _, o := range sorted {
		if plan.LocalBytes+o.Bytes <= localCapacity {
			plan.Local = append(plan.Local, o)
			plan.LocalBytes += o.Bytes
		} else {
			plan.Remote = append(plan.Remote, o)
		}
	}
	return plan
}

// Exact solves the placement as a 0/1 knapsack at page granularity:
// maximize local accesses subject to the local capacity. pageSize controls
// the DP resolution (weights are in pages, so the table stays small for
// laptop-scale profiles). It panics if pageSize is 0.
func Exact(objects []Object, localCapacity, pageSize uint64) Plan {
	if pageSize == 0 {
		panic("placement: pageSize must be positive")
	}
	capPages := int(localCapacity / pageSize)
	n := len(objects)
	weights := make([]int, n)
	for i, o := range objects {
		weights[i] = int((o.Bytes + pageSize - 1) / pageSize)
	}
	// dp[w] = best access count using capacity w; keep[i][w] for traceback.
	dp := make([]uint64, capPages+1)
	keep := make([][]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = make([]bool, capPages+1)
		w := weights[i]
		v := objects[i].Accesses
		for c := capPages; c >= w; c-- {
			if cand := dp[c-w] + v; cand > dp[c] {
				dp[c] = cand
				keep[i][c] = true
			}
		}
	}
	// Traceback.
	var plan Plan
	c := capPages
	inLocal := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		if keep[i][c] {
			inLocal[i] = true
			c -= weights[i]
		}
	}
	for i, o := range objects {
		if inLocal[i] {
			plan.Local = append(plan.Local, o)
			plan.LocalBytes += o.Bytes
		} else {
			plan.Remote = append(plan.Remote, o)
		}
	}
	// Hottest-first allocation order for the first-touch realization.
	sort.SliceStable(plan.Local, func(i, j int) bool {
		return plan.Local[i].Density() > plan.Local[j].Density()
	})
	return plan
}

// InterleavePattern is the N:M page interleave of the cited kernel patch:
// out of every Local+Remote consecutive pages, Local go to the fast tier.
type InterleavePattern struct {
	Local, Remote int
}

// BandwidthInterleave returns the N:M pattern proportional to the tier
// bandwidths, reduced to the smallest integer ratio with terms bounded by
// maxTerm (the kernel patch uses small ratios like 3:1).
func BandwidthInterleave(localBW, remoteBW float64, maxTerm int) InterleavePattern {
	if maxTerm <= 0 {
		maxTerm = 8
	}
	if localBW <= 0 || remoteBW <= 0 {
		return InterleavePattern{Local: 1, Remote: 0}
	}
	bestL, bestR := 1, 0
	bestErr := remoteBW / localBW // error of the all-local pattern
	target := localBW / remoteBW
	for r := 1; r <= maxTerm; r++ {
		for l := 1; l <= maxTerm; l++ {
			e := float64(l)/float64(r) - target
			if e < 0 {
				e = -e
			}
			if e < bestErr {
				bestErr, bestL, bestR = e, l, r
			}
		}
	}
	return InterleavePattern{Local: bestL, Remote: bestR}
}

// TierOf returns the tier of page index i under the pattern.
func (p InterleavePattern) TierOf(i int) mem.Tier {
	period := p.Local + p.Remote
	if period <= 0 || p.Remote == 0 {
		return mem.TierLocal
	}
	if i%period < p.Local {
		return mem.TierLocal
	}
	return mem.TierRemote
}

// AggregateBandwidth predicts the streaming bandwidth of an interleaved
// scan: pages alternate tiers, so both move concurrently and the slower
// stream finishes last. With fraction f of pages local, time per byte is
// max(f/localBW, (1-f)/remoteBW) and the aggregate is its inverse.
func (p InterleavePattern) AggregateBandwidth(localBW, remoteBW float64) float64 {
	period := float64(p.Local + p.Remote)
	if period == 0 {
		return localBW
	}
	f := float64(p.Local) / period
	tLocal := 0.0
	if localBW > 0 {
		tLocal = f / localBW
	}
	tRemote := 0.0
	if remoteBW > 0 {
		tRemote = (1 - f) / remoteBW
	}
	t := tLocal
	if tRemote > t {
		t = tRemote
	}
	if t == 0 {
		return 0
	}
	return 1 / t
}
