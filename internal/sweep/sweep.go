// Package sweep is the parameter-sweep campaign engine: it turns the fixed
// scenario registry into an unbounded scenario *generator* and runs the
// paper's headline analyses over the whole grid.
//
// A campaign is declared, not coded: a Grid is a base scenario plus a set
// of Axes (link generation, added link latency, bandwidth scale, local
// capacity fraction), and its cross-product derives one scenario.Spec per
// cell with a generated canonical name such as "gen=5,frac=0.25". A Runner
// fans the Level-2/Level-3/scheduling pipeline out across every
// (cell, workload) pair through the shared internal/pool limiter — each
// cell seeded by its grid coordinates via stats.SeedAt, never by worker or
// completion order — and streams finished cells into an Aggregator. The
// campaign reduces to two report.Doc artifacts: "sweep" (the long-form
// per-cell table, CSV-friendly) and "sensitivity" (per-axis marginal
// deltas against the base system plus the best/worst frontier cells).
//
// This answers the question the paper's single testbed cannot: how do the
// pooling verdicts shift as the interconnect generation, link latency,
// bandwidth and capacity split change — not at five hand-picked points,
// but over the whole design grid.
package sweep

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

// AxisNames lists the supported axis names in canonical order: "gen"
// (interconnect generation), "lat" (added link latency in ns), "bw" (link
// bandwidth scale factor) and "frac" (local capacity fraction).
var AxisNames = []string{"gen", "lat", "bw", "frac"}

// ErrInvalid marks every request-validation failure of this package —
// malformed axis declarations, unknown axis names, inadmissible values,
// oversized grids. Every error returned by ParseAxis, Axis.Validate and
// Grid.Validate matches errors.Is(err, ErrInvalid), so callers on a
// request boundary (the HTTP layer, repro.Service.Sweep) classify a
// client mistake without string matching. This is the single shared
// validation layer: the library and the HTTP API enforce exactly the same
// caps because they run exactly the same validator.
var ErrInvalid = errors.New("sweep: invalid request")

// invalidError is a validation failure: its message is the specific
// diagnostic, it matches ErrInvalid under errors.Is, and it unwraps to any
// error the diagnostic was built around (%w verbs work).
type invalidError struct{ err error }

func (e *invalidError) Error() string        { return e.err.Error() }
func (e *invalidError) Unwrap() error        { return e.err }
func (e *invalidError) Is(target error) bool { return target == ErrInvalid }

// invalidf builds a validation error (matching ErrInvalid) with the given
// diagnostic; %w wraps like fmt.Errorf.
func invalidf(format string, args ...any) error {
	return &invalidError{err: fmt.Errorf(format, args...)}
}

// MaxAxisValues bounds one axis's value count. It is enforced by
// validation (which every entry point — Runner.Run, the HTTP handler, the
// CLI — goes through), so a typo'd range ("lat=0:1e12:1") fails fast
// instead of allocating an astronomically sized campaign.
//
// MaxSyncGridCells bounds the campaigns a single *synchronous* request may
// compute — the GET /v1/sweep route and its deprecated /sweep alias, whose
// lifetime is one HTTP request. It is not a library limit: Grid.Validate
// accepts any cross-product size, and grids above the cap run through the
// asynchronous job manager (POST /v1/jobs, `memdis jobs submit`), which
// checkpoints cells as they finish and survives restarts.
const (
	MaxAxisValues    = 1024
	MaxSyncGridCells = 4096
)

// CheckSyncSize enforces the synchronous request-boundary cell cap: grids
// above MaxSyncGridCells are a validation error (matching ErrInvalid, so
// the HTTP layer maps it to a 400) whose message points the caller at the
// job manager. Asynchronous entry points never call it.
func CheckSyncSize(g Grid) error {
	if n := g.Size(); n > MaxSyncGridCells {
		return invalidf("sweep: grid has %d cells (max %d for a synchronous request; submit big grids as jobs: POST /v1/jobs or `memdis jobs submit`)",
			n, MaxSyncGridCells)
	}
	return nil
}

// Axis is one swept dimension of a campaign grid: a named parameter and
// the ordered list of values it takes. The supported names are:
//
//   - "gen":  interconnect generation. 0 keeps the base scenario's link;
//     4, 5 and 6 substitute the CXL-on-PCIe generation presets
//     (see LinkGenerations).
//   - "lat":  extra link latency in nanoseconds, added on top of the link
//     selected so far (so a "gen" axis earlier in the grid composes).
//   - "bw":   link bandwidth scale factor, multiplying both the payload
//     bandwidth and the peak raw traffic of the link selected so far.
//   - "frac": local capacity fraction in (0,1); collapses the cell's
//     capacity protocol to that single split (Spec.WithCapacitySplit).
type Axis struct {
	// Name is the axis name ("gen", "lat", "bw" or "frac").
	Name string
	// Values are the swept values in sweep order.
	Values []float64
}

// ParseAxis parses a command-line axis declaration of the form
// "name=v1,v2,..." or "name=lo:hi:step" (an inclusive range). Examples:
//
//	gen=0,5,6
//	frac=0.25:0.75:0.25   // 0.25, 0.50, 0.75
//	lat=0:400:100         // 0, 100, 200, 300, 400 ns added latency
func ParseAxis(s string) (Axis, error) {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" || spec == "" {
		return Axis{}, invalidf("sweep: axis %q: want name=v1,v2,... or name=lo:hi:step", s)
	}
	a := Axis{Name: name}
	if parts := strings.Split(spec, ":"); len(parts) == 3 {
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return Axis{}, invalidf("sweep: axis %q: malformed lo:hi:step range", s)
		}
		// Negated comparisons so a NaN endpoint or step fails the guard
		// (NaN compares false either way around, so `step <= 0 || hi < lo`
		// would wave it through into the point-count arithmetic).
		if !(step > 0) || !(hi >= lo) {
			return Axis{}, invalidf("sweep: axis %q: want lo <= hi and step > 0", s)
		}
		// Count the points instead of accumulating lo += step, so binary
		// floating-point steps (0.25:0.75:0.25) still land on hi exactly.
		// Reject oversized ranges before allocating anything: this parser
		// sits on the HTTP surface.
		pts := math.Floor((hi-lo)/step + 1e-9)
		if pts >= MaxAxisValues {
			return Axis{}, invalidf("sweep: axis %q: range yields %.0f values (max %d)", s, pts+1, MaxAxisValues)
		}
		n := int(pts)
		for i := 0; i <= n; i++ {
			a.Values = append(a.Values, lo+float64(i)*step)
		}
		return a, a.Validate()
	}
	for _, p := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return Axis{}, invalidf("sweep: axis %q: bad value %q", s, p)
		}
		a.Values = append(a.Values, v)
	}
	return a, a.Validate()
}

// Validate checks the axis name is known and every value is admissible for
// that axis.
func (a Axis) Validate() error {
	if len(a.Values) == 0 {
		return invalidf("sweep: axis %q has no values", a.Name)
	}
	if len(a.Values) > MaxAxisValues {
		return invalidf("sweep: axis %q has %d values (max %d)", a.Name, len(a.Values), MaxAxisValues)
	}
	for _, v := range a.Values {
		switch a.Name {
		case "gen":
			if v != 0 {
				if _, ok := LinkGenerations[int(v)]; !ok || v != math.Trunc(v) {
					return invalidf("sweep: axis gen: unknown generation %v (known: 0=base, %s)",
						v, generationList())
				}
			}
		case "lat":
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return invalidf("sweep: axis lat: added latency %v ns must be finite and >= 0", v)
			}
		case "bw":
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return invalidf("sweep: axis bw: bandwidth scale %v must be finite and > 0", v)
			}
		case "frac":
			if !(v > 0 && v < 1) {
				return invalidf("sweep: axis frac: capacity fraction %v outside (0,1)", v)
			}
		default:
			return invalidf("sweep: unknown axis %q (known: %s)", a.Name, strings.Join(AxisNames, ", "))
		}
	}
	return nil
}

// LinkGen is one interconnect-generation preset for the "gen" axis: the
// link constants of a CXL memory pool behind the named PCIe generation,
// mirroring the hand-written cxl-gen5/cxl-gen6 scenario registry entries.
type LinkGen struct {
	// Description names the modeled interconnect.
	Description string
	// DataBandwidth and PeakTraffic are the payload and raw link peaks in
	// bytes/s; Latency is the unloaded access latency in seconds; Overhead
	// is the protocol (flit) overhead multiplier.
	DataBandwidth, PeakTraffic, Latency, Overhead float64
}

// LinkGenerations maps a "gen" axis value to its link preset. Generation 0
// is not listed: it means "keep the base scenario's link". Generations 5
// and 6 are pulled from the cxl-gen5/cxl-gen6 scenario registry entries at
// init, so recalibrating a registry link automatically recalibrates the
// corresponding sweep cells; only generation 4 (which has no registry
// scenario) is defined here.
var LinkGenerations = map[int]LinkGen{
	4: {
		Description:   "CXL 1.1 pool on PCIe 4.0 x8",
		DataBandwidth: 13e9, PeakTraffic: 31e9, Latency: 450e-9, Overhead: 1.30,
	},
}

func init() {
	for _, p := range []struct {
		gen  int
		name string
	}{{5, "cxl-gen5"}, {6, "cxl-gen6"}} {
		sp, err := scenario.Get(p.name)
		if err != nil {
			panic(fmt.Sprintf("sweep: generation preset scenario missing: %v", err))
		}
		l := sp.Platform.Link
		LinkGenerations[p.gen] = LinkGen{
			Description:   sp.Description,
			DataBandwidth: l.DataBandwidth, PeakTraffic: l.PeakTraffic,
			Latency: l.Latency, Overhead: l.Overhead,
		}
	}
}

// generationList renders the known generation numbers for error messages.
func generationList() string {
	gens := make([]int, 0, len(LinkGenerations))
	for g := range LinkGenerations {
		gens = append(gens, g)
	}
	sort.Ints(gens)
	parts := make([]string, len(gens))
	for i, g := range gens {
		parts[i] = strconv.Itoa(g)
	}
	return strings.Join(parts, ", ")
}

// Grid is a declarative sweep campaign: a base scenario and the axes whose
// cross-product generates the swept scenarios. Axes apply in order, so a
// "lat" or "bw" axis modifies the link a preceding "gen" axis selected.
type Grid struct {
	// Base is the unswept reference system; every cell derives from it and
	// the campaign's deltas are measured against it.
	Base scenario.Spec
	// Axes are the swept dimensions, outermost first (the last axis varies
	// fastest in Points order).
	Axes []Axis
}

// DefaultGrid returns the canonical two-axis campaign on the given base:
// interconnect generation (base link, CXL gen5, CXL gen6) crossed with the
// paper's three local-capacity fractions — the "how do the pooling results
// shift with the CXL generation and the capacity split" question as a grid.
func DefaultGrid(base scenario.Spec) Grid {
	return Grid{
		Base: base,
		Axes: []Axis{
			{Name: "gen", Values: []float64{0, 5, 6}},
			{Name: "frac", Values: []float64{0.25, 0.50, 0.75}},
		},
	}
}

// Validate checks the axes (known names, admissible values, no duplicate
// axis) and every derived cell spec (via scenario.Spec.Validate), so an
// invalid campaign fails before any cell runs.
func (g Grid) Validate() error {
	if err := g.Base.Validate(); err != nil {
		return invalidf("sweep: base: %w", err)
	}
	seen := map[string]bool{}
	for _, a := range g.Axes {
		if err := a.Validate(); err != nil {
			return err
		}
		if seen[a.Name] {
			return invalidf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
	pts, err := g.Points()
	if err != nil {
		return err
	}
	for _, p := range pts {
		if err := p.Spec.Validate(); err != nil {
			return invalidf("sweep: cell %s: %w", p.Name(), err)
		}
	}
	return nil
}

// Size returns the number of grid cells (the product of the axis lengths).
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Key returns a canonical one-line description of the grid — base name
// plus every axis with its values — usable as a cache key and shown in
// artifact headers.
func (g Grid) Key() string {
	parts := []string{"base=" + g.Base.Name}
	for _, a := range g.Axes {
		vals := make([]string, len(a.Values))
		for i, v := range a.Values {
			vals[i] = formatValue(v)
		}
		parts = append(parts, a.Name+"="+strings.Join(vals, ","))
	}
	return strings.Join(parts, " ")
}

// Coord is one axis coordinate of a grid cell.
type Coord struct {
	// Axis is the axis name; Value is the cell's value on it.
	Axis  string
	Value float64
}

// Point is one generated grid cell: the derived scenario spec plus the
// coordinates that produced it.
type Point struct {
	// Spec is the fully derived scenario (generated canonical name, axis
	// deltas applied to the base platform and capacity protocol).
	Spec scenario.Spec
	// Coords are the cell's axis coordinates in grid axis order.
	Coords []Coord
}

// Name returns the cell's canonical name: comma-joined axis=value pairs in
// grid axis order, e.g. "gen=5,frac=0.25".
func (p Point) Name() string {
	parts := make([]string, len(p.Coords))
	for i, c := range p.Coords {
		parts[i] = c.Axis + "=" + formatValue(c.Value)
	}
	return strings.Join(parts, ",")
}

// formatValue renders an axis value canonically (shortest round-trippable
// float form, so names are stable and unambiguous).
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Points generates the grid cells in row-major order (the last axis varies
// fastest), deriving each cell's spec from the base by applying the axes in
// order. The generated specs keep the base platform's name, so cells whose
// coordinates produce identical physics (e.g. the same "gen" at different
// "frac") share profiler caches; the cell identity lives in Spec.Name.
func (g Grid) Points() ([]Point, error) {
	pts := make([]Point, 0, g.Size())
	idx := make([]int, len(g.Axes))
	for {
		p := Point{Spec: g.Base}
		for ai, a := range g.Axes {
			v := a.Values[idx[ai]]
			sp, err := applyAxis(p.Spec, a.Name, v)
			if err != nil {
				return nil, err
			}
			p.Spec = sp
			p.Coords = append(p.Coords, Coord{Axis: a.Name, Value: v})
		}
		if len(p.Coords) > 0 {
			p.Spec = p.Spec.Renamed(p.Name())
		}
		pts = append(pts, p)
		// Odometer increment, last axis fastest.
		ai := len(idx) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(g.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return pts, nil
		}
	}
}

// applyAxis derives a spec one axis coordinate at a time.
func applyAxis(sp scenario.Spec, axis string, v float64) (scenario.Spec, error) {
	switch axis {
	case "gen":
		if v == 0 {
			return sp, nil // keep the base link
		}
		lg, ok := LinkGenerations[int(v)]
		if !ok || v != math.Trunc(v) {
			return sp, invalidf("sweep: unknown link generation %v", v)
		}
		sp.Platform = sp.Platform.WithLink(sp.Platform.Link.
			WithBandwidth(lg.DataBandwidth, lg.PeakTraffic).
			WithLatency(lg.Latency).
			WithOverhead(lg.Overhead))
		return sp, nil
	case "lat":
		sp.Platform = sp.Platform.WithLink(sp.Platform.Link.
			WithLatency(sp.Platform.Link.Latency + v*1e-9))
		return sp, nil
	case "bw":
		sp.Platform = sp.Platform.WithLink(sp.Platform.Link.
			WithBandwidth(sp.Platform.Link.DataBandwidth*v, sp.Platform.Link.PeakTraffic*v))
		return sp, nil
	case "frac":
		return sp.WithCapacitySplit(v), nil
	}
	return sp, invalidf("sweep: unknown axis %q (known: %s)", axis, strings.Join(AxisNames, ", "))
}
