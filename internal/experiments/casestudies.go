package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workloads"
	"repro/internal/workloads/bfs"
	"repro/internal/workloads/registry"
)

// Figure12Cell is the BFS case-study measurement for one (pooling level,
// variant) pair.
type Figure12Cell struct {
	PooledFraction float64 // remote share of capacity (0.5 or 0.75)
	Variant        bfs.Variant
	// Runtime is modeled run time on the idle system.
	Runtime float64
	// RemoteBytes is total remote traffic.
	RemoteBytes uint64
	// RemoteAccessRatio of the search phase (p2), the paper's headline
	// metric ("99% remote access" at 75% pooling).
	RemoteAccessRatio float64
	// Sensitivity[i] is relative performance at LoILevels[i].
	Sensitivity []float64
}

// Figure12Result is the §7.1 data-placement case study.
type Figure12Result struct {
	Cells []Figure12Cell
	LoIs  []float64
}

// bfsEntry wraps a BFS variant as a registry entry so the profiler's
// capacity protocol applies unchanged.
func bfsEntry(v bfs.Variant) registry.Entry {
	return registry.Entry{
		Name:   "BFS-" + v.String(),
		Phases: []string{"p1", "p2"},
		New: func(scale int) workloads.Workload {
			b := bfs.New(scale)
			b.Variant = v
			return b
		},
	}
}

// Figure12 profiles baseline and optimized BFS at 50% and 75% pooling.
// Unlike Figures 11/13, the two pooling levels are the case study's own
// protocol (§7.1 reports exactly these), so they stay fixed across
// scenarios; `-platform` still changes the link and timing underneath.
//
// The capacity protocol follows the paper: the local tier is sized against
// the baseline variant's peak usage in both cases, so the optimized variant
// is measured on the identical machine rather than a machine resized to its
// own (smaller) footprint.
func (s *Suite) Figure12() Figure12Result {
	baseline := bfsEntry(bfs.Baseline)
	pooleds := []float64{0.50, 0.75}
	variants := []bfs.Variant{bfs.Baseline, bfs.ReorderOnly, bfs.Optimized}
	cells := pool.Map(s.lim(), len(pooleds)*len(variants), func(i int) Figure12Cell {
		pooled, v := pooleds[i/len(variants)], variants[i%len(variants)]
		// The PeakUsage probe inside ConfigForLocalFraction is single-flight
		// cached on ("BFS-baseline", scale), so all six cells share one
		// baseline footprint execution.
		cfg := s.Profiler.ConfigForLocalFraction(baseline, 1, 1-pooled)
		m := runOn(cfg, bfsEntry(v), 1)
		cell := Figure12Cell{PooledFraction: pooled, Variant: v}
		var remote uint64
		for _, ph := range m.Phases() {
			remote += ph.RemoteBytes
		}
		cell.Runtime = cfg.RunTime(m.Phases(), 0)
		cell.RemoteBytes = remote
		if p2, ok := m.Phase("p2"); ok && p2.TotalBytes() > 0 {
			cell.RemoteAccessRatio = float64(p2.RemoteBytes) / float64(p2.TotalBytes())
		}
		for _, loi := range LoILevels {
			cell.Sensitivity = append(cell.Sensitivity, cfg.Sensitivity(m.Phases(), loi))
		}
		return cell
	})
	return Figure12Result{LoIs: LoILevels, Cells: cells}
}

// ID implements Result.
func (Figure12Result) ID() string { return "figure12" }

// Report builds runtime, remote traffic, and sensitivity per cell.
func (r Figure12Result) Report() report.Doc {
	tb := report.NewTable("Figure 12: BFS data-placement optimization",
		"Pooled", "Variant", "Runtime (s)", "Remote bytes", "%RemoteAccess", "Rel perf @LoI=50")
	for _, c := range r.Cells {
		last := 1.0
		if n := len(c.Sensitivity); n > 0 {
			last = c.Sensitivity[n-1]
		}
		tb.Row(
			report.Pct(c.PooledFraction),
			report.Str(c.Variant.String()),
			report.Fixed(c.Runtime, 4),
			report.Bytes(c.RemoteBytes),
			report.Pct(c.RemoteAccessRatio),
			report.Fixed(last, 3))
	}
	d := report.New("figure12").Append(tb.Block())
	// Improvement summary lines, matching the paper's headline numbers.
	// The lookup keys on a typed struct (cachekeys contract): exactly the
	// two inputs the headline pairing depends on, no formatted-string
	// drift.
	type fig12Key struct {
		pooledPct int
		variant   bfs.Variant
	}
	byKey := map[fig12Key]Figure12Cell{}
	for _, c := range r.Cells {
		byKey[fig12Key{int(math.Round(c.PooledFraction * 100)), c.Variant}] = c
	}
	for _, pooled := range []int{50, 75} {
		b, okB := byKey[fig12Key{pooled, bfs.Baseline}]
		o, okO := byKey[fig12Key{pooled, bfs.Optimized}]
		if !okB || !okO || o.Runtime <= 0 {
			continue
		}
		d.Append(report.NoteBlock(fmt.Sprintf("\n%d%% pooled: speedup %.1f%%, remote access %s -> %s, remote bytes -%.0f%%",
			pooled, 100*(b.Runtime/o.Runtime-1),
			units.Percent(b.RemoteAccessRatio), units.Percent(o.RemoteAccessRatio),
			100*(1-float64(o.RemoteBytes)/float64(b.RemoteBytes)))))
	}
	d.Append(report.NoteBlock("\n"))
	return *d
}

// Render implements Result.
func (r Figure12Result) Render() string { return report.RenderText(r.Report()) }

// Figure13Result is the interference-aware scheduling study.
type Figure13Result struct {
	Summaries []sched.Summary
}

// Figure13 runs every workload (at the suite's headline pooling split, 50%
// in the paper's protocol) s.Runs times under the baseline (LoI 0-50%) and
// interference-aware (LoI 0-20%) schedulers. Workloads and the Monte-Carlo
// runs inside each comparison draw from the same shared worker budget;
// every simulated run owns the RNG substream of its run index, so the
// summaries are byte-identical at any worker count.
func (s *Suite) Figure13() Figure13Result {
	l := s.lim()
	local := s.headline()
	return Figure13Result{
		Summaries: pool.Map(l, len(s.Entries), func(i int) sched.Summary {
			e := s.Entries[i]
			rep := s.Profiler.Level2(e, 1, local)
			cfg := s.Profiler.ConfigForLocalFraction(e, 1, local)
			return sched.CompareLimited(e.Name, cfg, rep.Phase2Stats, s.Runs, 1000+uint64(i)*17, l)
		}),
	}
}

// ID implements Result.
func (Figure13Result) ID() string { return "figure13" }

// Report builds five-number summaries and box distributions per workload.
func (r Figure13Result) Report() report.Doc {
	tb := report.NewTable("Figure 13: execution time over 100 runs, baseline vs interference-aware",
		"Workload", "Sched", "Min", "Q1", "Median", "Q3", "Max", "Mean speedup", "P75 cut")
	var boxes []report.Block
	for _, s := range r.Summaries {
		b, a := s.Baseline, s.Aware
		tb.Row(report.Str(s.Workload), report.Str("baseline"),
			report.Fixed(b.Min, 4), report.Fixed(b.Q1, 4), report.Fixed(b.Median, 4),
			report.Fixed(b.Q3, 4), report.Fixed(b.Max, 4), report.Str(""), report.Str(""))
		tb.Row(report.Str(""), report.Str("i-aware"),
			report.Fixed(a.Min, 4), report.Fixed(a.Q1, 4), report.Fixed(a.Median, 4),
			report.Fixed(a.Q3, 4), report.Fixed(a.Max, 4),
			report.Pct(s.MeanSpeedup), report.Pct(s.P75Reduction))
		lo, hi := a.Min, b.Max
		if b.Min < lo {
			lo = b.Min
		}
		if a.Max > hi {
			hi = a.Max
		}
		bd := &report.Dist{Label: fmt.Sprintf("%-8s baseline", s.Workload),
			Min: report.Float(b.Min), Q1: report.Float(b.Q1), Median: report.Float(b.Median),
			Q3: report.Float(b.Q3), Max: report.Float(b.Max),
			Lo: report.Float(lo), Hi: report.Float(hi), Width: 44}
		ad := &report.Dist{Label: fmt.Sprintf("%-8s i-aware ", s.Workload),
			Min: report.Float(a.Min), Q1: report.Float(a.Q1), Median: report.Float(a.Median),
			Q3: report.Float(a.Q3), Max: report.Float(a.Max),
			Lo: report.Float(lo), Hi: report.Float(hi), Width: 44}
		boxes = append(boxes, bd.Block(), ad.Block())
	}
	return *report.New("figure13").Append(tb.Block(), report.Gap()).Append(boxes...)
}

// Render implements Result.
func (r Figure13Result) Render() string { return report.RenderText(r.Report()) }

// runOn executes a fresh workload instance on the given config.
func runOn(cfg machine.Config, e registry.Entry, scale int) *machine.Machine {
	return core.Run(cfg, e.New(scale))
}
