package experiments

import (
	"fmt"
	"strings"

	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/top500"
	"repro/internal/workloads/registry"
)

// Figure1Result is the evolution of memory characteristics of leadership
// supercomputers (paper Figure 1).
type Figure1Result struct {
	Systems []top500.System
}

// Figure1 collects the timeline dataset.
func (s *Suite) Figure1() Figure1Result {
	return Figure1Result{Systems: top500.Timeline()}
}

// ID implements Result.
func (Figure1Result) ID() string { return "figure1" }

// Report builds the capacity/bandwidth evolution table and trend series.
func (r Figure1Result) Report() report.Doc {
	tb := report.NewTable("Figure 1: memory evolution of leadership supercomputers",
		"Year", "System", "Mem/node (GB)", "HBM/node (GB)", "HBM BW/node (TB/s)")
	var xs, caps, bws []float64
	for _, s := range r.Systems {
		tb.Row(report.Int(s.Year), report.Str(s.Name), report.Num(s.TotalPerNodeGB()),
			report.Num(s.HBMPerNodeGB), report.Num(s.HBMBandwidthTBs*1000))
		xs = append(xs, float64(s.Year))
		caps = append(caps, s.TotalPerNodeGB())
		bws = append(bws, s.HBMBandwidthTBs*1000)
	}
	pl := report.NewLinePlot("Per-node memory capacity and bandwidth vs year", "year", "GB | GB/s")
	pl.AddLine("capacity GB/node", xs, caps)
	pl.AddLine("HBM BW GB/s/node", xs, bws)
	return *report.New("figure1").Append(tb.Block(), report.Gap(), pl.Block())
}

// Render implements Result.
func (r Figure1Result) Render() string { return report.RenderText(r.Report()) }

// Table1Row is one system of the paper's Table 1 with estimated costs.
type Table1Row struct {
	System      top500.System
	DDRCostM    float64 // $M
	HBMCostM    float64 // $M
	TotalCostM  float64 // $M
	HBMCapRatio float64 // HBM share of per-node capacity
}

// Table1Result is the Top-10 memory configuration and cost table.
type Table1Result struct {
	Rows []Table1Row
	Cost top500.CostModel
}

// Table1 applies the cost model (HBM at 3-5x DDR unit price) to the Top-10
// list of November 2022.
func (s *Suite) Table1() Table1Result {
	cm := top500.DefaultCostModel()
	res := Table1Result{Cost: cm}
	for _, sys := range top500.Top10Nov2022() {
		row := Table1Row{
			System:     sys,
			DDRCostM:   cm.DDRCost(sys) / 1e6,
			HBMCostM:   cm.HBMCost(sys) / 1e6,
			TotalCostM: cm.TotalCost(sys) / 1e6,
		}
		if t := sys.TotalPerNodeGB(); t > 0 {
			row.HBMCapRatio = sys.HBMPerNodeGB / t
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// ID implements Result.
func (Table1Result) ID() string { return "table1" }

// Report builds the Table 1 rows.
func (r Table1Result) Report() report.Doc {
	tb := report.NewTable("Table 1: Top-10 memory configuration and estimated cost",
		"Rank", "System", "DDR/node GB", "HBM/node GB", "HBM BW/node TB/s", "Nodes", "Est. DDR $M", "Est. HBM $M")
	for _, row := range r.Rows {
		s := row.System
		ddr := report.Str("-")
		if row.DDRCostM > 0 {
			ddr = report.Fixed(row.DDRCostM, 1)
		}
		hbm := report.Str("-")
		if row.HBMCostM > 0 {
			hbm = report.Fixed(row.HBMCostM, 1)
		}
		tb.Row(report.Int(s.Rank), report.Str(s.Name), report.Num(s.DDRPerNodeGB),
			report.Num(s.HBMPerNodeGB), report.Num(s.HBMBandwidthTBs), report.Int(s.Nodes),
			ddr, hbm)
	}
	return *report.New("table1").Append(tb.Block())
}

// Render implements Result.
func (r Table1Result) Render() string { return report.RenderText(r.Report()) }

// Table2Result is the evaluated-workload inventory.
type Table2Result struct {
	Entries []registry.Entry
	// Footprints[i][j] is the measured peak footprint of workload i at
	// scale 2^j (scales 1, 2, 4), validating the ~1:2:4 memory ratios.
	Footprints [][3]uint64
}

// Table2 lists the workloads and measures their scaled footprints.
func (s *Suite) Table2() Table2Result {
	scales := []int{1, 2, 4}
	flat := pool.Map(s.lim(), len(s.Entries)*len(scales), func(i int) uint64 {
		return s.Profiler.PeakUsage(s.Entries[i/len(scales)], scales[i%len(scales)])
	})
	res := Table2Result{Entries: s.Entries}
	for i := range s.Entries {
		res.Footprints = append(res.Footprints, [3]uint64{flat[i*3], flat[i*3+1], flat[i*3+2]})
	}
	return res
}

// ID implements Result.
func (Table2Result) ID() string { return "table2" }

// Report builds the workload table with measured footprint ratios.
func (r Table2Result) Report() report.Doc {
	tb := report.NewTable("Table 2: evaluated workloads (three inputs of ~1:2:4 memory usage)",
		"Application", "Description", "Parallelization", "Inputs", "Footprint x1/x2/x4 (MiB)", "Ratio")
	for i, e := range r.Entries {
		fp := r.Footprints[i]
		mib := func(b uint64) float64 { return float64(b) / (1 << 20) }
		ratio := report.Str("-")
		if fp[0] > 0 {
			r2, r4 := float64(fp[1])/float64(fp[0]), float64(fp[2])/float64(fp[0])
			ratio = report.Str(fmt.Sprintf("1:%.1f:%.1f", r2, r4), r2, r4)
		}
		tb.Row(report.Str(e.Name), report.Str(e.Description), report.Str(e.Parallelization),
			report.Str(strings.Join(e.Inputs[:], "; ")),
			report.Str(fmt.Sprintf("%.1f/%.1f/%.1f", mib(fp[0]), mib(fp[1]), mib(fp[2])),
				mib(fp[0]), mib(fp[1]), mib(fp[2])),
			ratio)
	}
	return *report.New("table2").Append(tb.Block())
}

// Render implements Result.
func (r Table2Result) Render() string { return report.RenderText(r.Report()) }
