package sbench

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer is a self-contained stand-in for `memdis serve`: a /healthz
// that flips ready, a /v1/stats counter pair, and one artifact route
// honoring ETag revalidation and gzip negotiation — enough surface to
// exercise every aggregation path without the real engine.
type fakeServer struct {
	ready    atomic.Bool
	requests atomic.Int64
	modified atomic.Int64 // 304s served
}

const (
	fakeBody = "the rendered artifact body\n"
	fakeETag = `"feedfacecafebeef"`
)

// gzBody is the real gzip encoding of fakeBody: the fake must serve
// genuine gzip because Go's default transport negotiates it on plain
// targets and transparently inflates the response.
var gzBody = func() []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(fakeBody))
	zw.Close()
	return buf.Bytes()
}()

func (f *fakeServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "ready": f.ready.Load()})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int64{
			"requests":     f.requests.Load(),
			"not_modified": f.modified.Load(),
		})
	})
	mux.HandleFunc("/v1/artifacts/figure9", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		w.Header().Set("ETag", fakeETag)
		if r.Header.Get("If-None-Match") == fakeETag {
			f.modified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			w.Header().Set("Content-Encoding", "gzip")
			w.Write(gzBody)
			return
		}
		fmt.Fprint(w, fakeBody)
	})
	mux.HandleFunc("/v1/artifacts/broken", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	return mux
}

func newFakeServer(t *testing.T) (*httptest.Server, *fakeServer) {
	t.Helper()
	f := &fakeServer{}
	f.ready.Store(true)
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	return srv, f
}

// TestRunAggregation drives a three-target run — plain, conditional and
// erroring — and checks every aggregate the JSON result carries: status
// histograms, byte counts, latency ordering, totals and the /v1/stats
// delta bracket.
func TestRunAggregation(t *testing.T) {
	srv, _ := newFakeServer(t)
	res, err := Run(context.Background(), Config{
		Base: srv.URL,
		Targets: []Target{
			{Name: "plain", Path: "/v1/artifacts/figure9", Requests: 10, Concurrency: 4},
			{Name: "cond", Path: "/v1/artifacts/figure9", Conditional: true, Requests: 6, Concurrency: 2},
			{Name: "broken", Path: "/v1/artifacts/broken", Requests: 3, Concurrency: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != Schema || res.Base != srv.URL || len(res.Targets) != 3 {
		t.Fatalf("result frame: schema %q base %q targets %d", res.Schema, res.Base, len(res.Targets))
	}

	plain := res.Targets[0]
	if plain.Status["200"] != 10 || plain.Errors != 0 {
		t.Errorf("plain: status %v errors %d, want 10x200", plain.Status, plain.Errors)
	}
	if want := int64(10 * len(fakeBody)); plain.Bytes != want {
		t.Errorf("plain bytes = %d, want %d", plain.Bytes, want)
	}
	l := plain.Latency
	if l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max || l.Max <= 0 {
		t.Errorf("latency quantiles out of order: %+v", l)
	}
	if plain.Throughput <= 0 {
		t.Errorf("plain throughput = %v, want > 0", plain.Throughput)
	}

	cond := res.Targets[1]
	if cond.ETag != fakeETag {
		t.Errorf("conditional target primed ETag %q, want %q", cond.ETag, fakeETag)
	}
	if cond.Status["304"] != 6 || cond.Bytes != 0 || cond.Errors != 0 {
		t.Errorf("conditional: status %v bytes %d, want 6 empty 304s", cond.Status, cond.Bytes)
	}

	broken := res.Targets[2]
	if broken.Errors != 3 || broken.Status["500"] != 3 {
		t.Errorf("broken: errors %d status %v, want 3x500 counted as errors", broken.Errors, broken.Status)
	}

	if res.Total.Requests != 19 || res.Total.Errors != 3 {
		t.Errorf("totals = %+v, want 19 requests / 3 errors", res.Total)
	}
	if res.Total.Throughput <= 0 || res.Total.Seconds <= 0 {
		t.Errorf("total throughput %v over %vs, want > 0", res.Total.Throughput, res.Total.Seconds)
	}

	// The stats bracket: 19 measured + 1 priming request, 6 of them 304s.
	if d := res.Server.Delta; d["requests"] != 20 || d["not_modified"] != 6 {
		t.Errorf("server delta = %v, want requests 20, not_modified 6", d)
	}
	if res.Server.Before == nil || res.Server.After == nil {
		t.Errorf("missing stats snapshots: %+v", res.Server)
	}
}

// TestRunGzipCountsCompressedBytes pins the encoding accounting: a gzip
// target reads the raw Content-Encoding body, so bytes reflect what would
// cross the wire.
func TestRunGzipCountsCompressedBytes(t *testing.T) {
	srv, _ := newFakeServer(t)
	res, err := Run(context.Background(), Config{
		Base: srv.URL,
		Targets: []Target{
			{Name: "gz", Path: "/v1/artifacts/figure9", Gzip: true, Requests: 4, Concurrency: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4 * len(gzBody)); res.Targets[0].Bytes != want {
		t.Errorf("gzip bytes = %d, want %d raw (compressed) bytes", res.Targets[0].Bytes, want)
	}
}

// TestRunMissingStatsIsNotFatal checks the enrichment contract: a server
// without /v1/stats still benchmarks, with the Server section left empty.
func TestRunMissingStatsIsNotFatal(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	srv := httptest.NewServer(mux)
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		Base:    srv.URL,
		Targets: []Target{{Name: "x", Path: "/x", Requests: 2, Concurrency: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Server.Before != nil || res.Server.Delta != nil {
		t.Errorf("stats-less server produced counters: %+v", res.Server)
	}
	if res.Targets[0].Status["200"] != 2 {
		t.Errorf("status = %v", res.Targets[0].Status)
	}
}

// TestRunConditionalWithoutETagFails: a conditional target against a route
// serving no validator is a configuration error, not a silent pass.
func TestRunConditionalWithoutETagFails(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	srv := httptest.NewServer(mux)
	defer srv.Close()
	_, err := Run(context.Background(), Config{
		Base:    srv.URL,
		Targets: []Target{{Name: "x", Path: "/x", Conditional: true, Requests: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "no ETag") {
		t.Fatalf("err = %v, want the missing-validator failure", err)
	}
}

// TestWaitReady flips the fake's readiness mid-poll and checks both arms:
// eventual success, and a clean ctx error against a never-ready server.
func TestWaitReady(t *testing.T) {
	srv, f := newFakeServer(t)
	f.ready.Store(false)
	go func() {
		time.Sleep(300 * time.Millisecond)
		f.ready.Store(true)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := WaitReady(ctx, nil, srv.URL); err != nil {
		t.Fatalf("WaitReady never saw the flip: %v", err)
	}

	f.ready.Store(false)
	short, cancel2 := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel2()
	if err := WaitReady(short, nil, srv.URL); err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("err = %v, want the not-ready timeout", err)
	}
}

// TestDefaultProfile pins the committed benchmark's shape: the fixed
// route/format/encoding matrix plus one single-wave burst per cold path.
func TestDefaultProfile(t *testing.T) {
	targets := DefaultProfile(100, 8, []string{"/v1/artifacts/figure13?platform=cxl-gen5"})
	if len(targets) != 10 {
		t.Fatalf("profile has %d targets, want 9 fixed + 1 cold", len(targets))
	}
	var conditional, gzip int
	for _, tg := range targets[:9] {
		if tg.Requests != 100 || tg.Concurrency != 8 {
			t.Errorf("%s: %d req @ %d, want 100 @ 8", tg.Name, tg.Requests, tg.Concurrency)
		}
		if tg.Conditional {
			conditional++
		}
		if tg.Gzip {
			gzip++
		}
	}
	if conditional < 2 || gzip < 1 {
		t.Errorf("profile has %d conditional / %d gzip targets, want >=2 / >=1", conditional, gzip)
	}
	burst := targets[9]
	if burst.Requests != burst.Concurrency || burst.Requests != 8 {
		t.Errorf("cold burst = %d req @ %d workers, want one full wave of 8", burst.Requests, burst.Concurrency)
	}
	if burst.Name != "cold-burst-1" || !strings.Contains(burst.Path, "figure13") {
		t.Errorf("cold burst target = %+v", burst)
	}
}
