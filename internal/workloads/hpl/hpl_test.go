package hpl

import (
	"math"
	"testing"

	"repro/internal/machine"
)

// tiny returns a small instance for correctness tests.
func tiny(n, nb int) *HPL {
	return &HPL{N: n, NB: nb, seed: 12345}
}

func TestFactorizationResidual(t *testing.T) {
	for _, n := range []int{16, 33, 64} {
		h := tiny(n, 8)
		m := machine.New(machine.Default())
		h.Run(m)
		if h.RelResidual > 1e-10 {
			t.Errorf("N=%d: residual = %g, want < 1e-10", n, h.RelResidual)
		}
	}
}

func TestBlockSizeDoesNotChangeSolution(t *testing.T) {
	var first []float64
	for _, nb := range []int{4, 8, 16, 48} {
		h := tiny(48, nb)
		m := machine.New(machine.Default())
		h.Run(m)
		if first == nil {
			first = h.X
			continue
		}
		for i := range first {
			if math.Abs(first[i]-h.X[i]) > 1e-8 {
				t.Fatalf("nb=%d: solution differs at %d: %v vs %v", nb, i, h.X[i], first[i])
			}
		}
	}
}

func TestPhasesRecorded(t *testing.T) {
	// Use the real x1 input so the footprint exceeds the modeled cache
	// and p2 generates memory traffic.
	h := New(1)
	m := machine.New(machine.Default())
	h.Run(m)
	ph := m.Phases()
	if len(ph) != 2 || ph[0].Name != "p1" || ph[1].Name != "p2" {
		t.Fatalf("phases = %+v", ph)
	}
	// HPL p2 has high arithmetic intensity: flops ~ 2/3 N^3 over N^2 data.
	ai1 := ph[0].ArithmeticIntensity()
	ai2 := ph[1].ArithmeticIntensity()
	if ai2 <= ai1 {
		t.Errorf("factorization AI (%v) should exceed init AI (%v)", ai2, ai1)
	}
	n := float64(h.N)
	if ph[1].Flops < n*n*n/2 {
		t.Errorf("p2 flops = %v, seems too low for N=%d", ph[1].Flops, h.N)
	}
}

func TestScalesHaveIncreasingFootprint(t *testing.T) {
	var prev uint64
	for _, s := range []int{1, 2, 4} {
		h := New(s)
		if h.N <= 0 || h.NB <= 0 {
			t.Fatalf("bad config at scale %d: %+v", s, h)
		}
		fp := uint64(h.N) * uint64(h.N) * 8
		if fp <= prev {
			t.Errorf("scale %d footprint %d not larger than previous %d", s, fp, prev)
		}
		prev = fp
	}
	// The 1:2:4 ratio of the paper (within 5%).
	f1 := float64(New(1).N) * float64(New(1).N)
	f4 := float64(New(4).N) * float64(New(4).N)
	if r := f4 / f1; r < 3.8 || r > 4.2 {
		t.Errorf("x4/x1 footprint ratio = %v, want ~4", r)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() []float64 {
		h := tiny(32, 8)
		m := machine.New(machine.Default())
		h.Run(m)
		return h.X
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic solution at %d", i)
		}
	}
}

func TestTicksEmitted(t *testing.T) {
	h := tiny(64, 8)
	m := machine.New(machine.Default())
	h.Run(m)
	p2, ok := m.Phase("p2")
	if !ok {
		t.Fatal("no p2 phase")
	}
	if len(p2.Ticks) != 8 {
		t.Errorf("ticks = %d, want 8 (one per block step)", len(p2.Ticks))
	}
}
