// Command lbench is the standalone interference benchmark of §3.2.
//
//	lbench calibrate             # configured intensity vs measured LoI
//	lbench sweep                 # IC and PCM traffic vs flops/element
//	lbench run -threads 2 -flops 8 -loi 0.3
//
// run reports the traffic the generator would inject at the given
// configuration and, with -loi, the flops/element setting that reaches a
// target level of interference.
//
// See docs/CLI.md for the complete flag reference.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lbench"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/textplot"
	"repro/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: lbench <calibrate|sweep|run> [flags]")
	}
	cfg := machine.Default()
	md := lbench.NewModel(cfg)
	switch args[0] {
	case "calibrate":
		tb := textplot.NewTable("LBench calibration: configured intensity vs measured LoI",
			"Configured", "1 thread", "2 threads", "12 threads")
		for pct := 10; pct <= 100; pct += 10 {
			row := []any{fmt.Sprintf("%d%%", pct)}
			for _, th := range []int{1, 2, 12} {
				n, ok := md.Configure(float64(pct)/100, th)
				if !ok {
					row = append(row, "-")
					continue
				}
				loi := md.MeasuredLoI(lbench.Config{Threads: th, FlopsPerElement: n})
				row = append(row, units.Percent(loi))
			}
			tb.AddRow(row...)
		}
		fmt.Print(tb.String())
		return nil
	case "sweep":
		l := link.New(cfg.Link)
		tb := textplot.NewTable("LBench sweep: interference coefficient vs PCM traffic (12 threads)",
			"flops/element", "offered raw", "IC", "PCM traffic")
		for f := 1; f <= 128; f *= 2 {
			bg := md.OfferedRaw(lbench.Config{Threads: 12, FlopsPerElement: f})
			tb.AddRow(f, units.Bandwidth(bg), fmt.Sprintf("%.2f", md.IC(bg)),
				units.Bandwidth(l.PCMTraffic(bg)))
		}
		fmt.Print(tb.String())
		return nil
	case "run":
		fs := flag.NewFlagSet("run", flag.ContinueOnError)
		threads := fs.Int("threads", 2, "generator threads")
		flops := fs.Int("flops", 1, "flops per element")
		loi := fs.Float64("loi", 0, "target LoI (0..1); overrides -flops")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		c := lbench.Config{Threads: *threads, FlopsPerElement: *flops}
		if *loi > 0 {
			n, ok := md.Configure(*loi, *threads)
			if !ok {
				return fmt.Errorf("%d thread(s) cannot reach LoI %.0f%%", *threads, *loi*100)
			}
			c.FlopsPerElement = n
			fmt.Printf("target LoI %.0f%% -> %d flops/element\n", *loi*100, n)
		}
		offered := md.OfferedRaw(c)
		fmt.Printf("threads=%d flops/element=%d\n", c.Threads, c.FlopsPerElement)
		fmt.Printf("offered raw traffic: %s (%.1f%% of peak)\n",
			units.Bandwidth(offered), 100*offered/cfg.Link.PeakTraffic)
		fmt.Printf("measured LoI (PCM): %.1f%%\n", md.MeasuredLoI(c)*100)
		fmt.Printf("interference coefficient at this load: %.2f\n", md.IC(offered))

		// Execute the kernel for real on an emulated machine to validate.
		b := lbench.NewBench(c)
		m := machine.New(cfg)
		b.Run(m)
		if ph, ok := m.Phase("lbench"); ok {
			fmt.Printf("executed kernel: %s remote traffic, %.0f flops\n",
				units.Bytes(ph.RemoteBytes), ph.Flops)
		}
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", args[0])
}
