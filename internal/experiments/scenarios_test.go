package experiments

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/scenario"
)

// TestNewSuiteForInstallsScenarioProtocol pins that a scenario suite runs
// the paper's pipeline at the scenario's capacity protocol: the sweep AND
// the headline point (Figures 11/13) — not the baseline's 50%-50%.
func TestNewSuiteForInstallsScenarioProtocol(t *testing.T) {
	sp, err := scenario.Get("skewed-split")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuiteFor(sp)
	if s.headline() != sp.HeadlineFraction {
		t.Errorf("headline = %v, want the scenario's %v", s.headline(), sp.HeadlineFraction)
	}
	if len(s.fractions()) != len(sp.CapacityFractions) || s.fractions()[0] != sp.CapacityFractions[0] {
		t.Errorf("fractions = %v, want the scenario's %v", s.fractions(), sp.CapacityFractions)
	}
	if NewSuite(machine.Default()).headline() != 0.50 {
		t.Error("default headline must stay at the paper's 50%-50% split")
	}
}

// TestScenariosCrossPlatformShape checks the what-if sweep reproduces the
// qualitative platform orderings the model predicts. It runs on the cheap
// suite so the quick tier covers the scenario subsystem end-to-end.
func TestScenariosCrossPlatformShape(t *testing.T) {
	r := quickSuite().Scenarios()
	if len(r.Specs) < 5 {
		t.Fatalf("want >=5 scenarios, got %d", len(r.Specs))
	}
	si := map[string]int{}
	for i, sp := range r.Specs {
		si[sp.Name] = i
	}
	wi := map[string]int{}
	for i, w := range r.Workloads {
		wi[w] = i
	}
	if len(r.Cells) != len(r.Workloads) {
		t.Fatalf("cells rows %d != workloads %d", len(r.Cells), len(r.Workloads))
	}
	for _, row := range r.Cells {
		if len(row) != len(r.Specs) {
			t.Fatalf("cells cols %d != scenarios %d", len(row), len(r.Specs))
		}
	}

	hypre := r.Cells[wi["Hypre"]]
	base := hypre[si["baseline"]]
	// A pool-heavy capacity split pushes more of the streaming solver's
	// accesses remote than the balanced baseline; an almost-all-local skew
	// pulls them back.
	if hypre[si["big-pool"]].RemoteAccess <= base.RemoteAccess {
		t.Errorf("big-pool remote access %.3f should exceed baseline %.3f",
			hypre[si["big-pool"]].RemoteAccess, base.RemoteAccess)
	}
	if hypre[si["skewed-split"]].RemoteAccess >= base.RemoteAccess {
		t.Errorf("90%%-local skew remote access %.3f should undercut baseline %.3f",
			hypre[si["skewed-split"]].RemoteAccess, base.RemoteAccess)
	}
	// With almost everything local, interference barely bites.
	if hypre[si["skewed-split"]].RelPerf50 < base.RelPerf50 {
		t.Errorf("90%%-local skew (rel %.3f) should be less interference-sensitive than baseline (%.3f)",
			hypre[si["skewed-split"]].RelPerf50, base.RelPerf50)
	}
	// The weaker CXL gen5 link cannot beat gen6 under interference.
	if hypre[si["cxl-gen5"]].RelPerf50 > hypre[si["cxl-gen6"]].RelPerf50+1e-9 {
		t.Errorf("cxl-gen5 (rel %.3f) should not outperform cxl-gen6 (rel %.3f) under interference",
			hypre[si["cxl-gen5"]].RelPerf50, hypre[si["cxl-gen6"]].RelPerf50)
	}
	// Sanity on every cell: ratios and relative performance in range, IC >= 1.
	for w, row := range r.Cells {
		for s, c := range row {
			if c.RemoteAccess < 0 || c.RemoteAccess > 1 {
				t.Errorf("%s/%s: remote access %v out of range", r.Workloads[w], r.Specs[s].Name, c.RemoteAccess)
			}
			if c.RelPerf50 <= 0 || c.RelPerf50 > 1+1e-9 || c.RelPerf20 < c.RelPerf50-1e-9 {
				t.Errorf("%s/%s: relative perf out of order: @20=%v @50=%v",
					r.Workloads[w], r.Specs[s].Name, c.RelPerf20, c.RelPerf50)
			}
			if c.ICMean < 1 {
				t.Errorf("%s/%s: IC %v below 1", r.Workloads[w], r.Specs[s].Name, c.ICMean)
			}
		}
	}

	out := r.Render()
	for _, sp := range r.Specs {
		if !strings.Contains(out, sp.Name) {
			t.Errorf("render should mention scenario %s", sp.Name)
		}
	}
	if !strings.Contains(out, "Cross-scenario platform inventory") {
		t.Error("render should include the platform inventory")
	}
}
