// Package stats provides deterministic random number generation and the
// descriptive statistics used throughout the experiment drivers: percentiles,
// five-number summaries, means, and least-squares fits.
//
// All experiments in this repository must be reproducible run-to-run, so the
// package deliberately offers only explicitly seeded generators. For
// parallel fan-out the RNG is splittable: Stream and Split derive
// independent, non-overlapping substreams via the xoshiro jump functions,
// so every parallel task can own a deterministic generator whose output
// depends only on the base seed and the task index — never on worker count
// or scheduling order.
package stats

import "math"

// RNG is a deterministic 64-bit pseudo-random generator (xoshiro256**).
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, so that
// closely spaced seeds still produce well-separated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		v := r.Float64()
		if u == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// jumpPoly and longJumpPoly are the xoshiro256** jump polynomials: applying
// jump advances the generator 2^128 steps, longJump 2^192 steps, without
// generating the intermediate values.
var (
	jumpPoly     = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	longJumpPoly = [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}
)

func (r *RNG) applyJump(poly [4]uint64) {
	var s0, s1, s2, s3 uint64
	for _, p := range poly {
		for b := 0; b < 64; b++ {
			if p&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = [4]uint64{s0, s1, s2, s3}
}

// Jump advances the generator by 2^128 steps, as if Uint64 had been called
// 2^128 times. Successive jumps partition the full 2^256-1 period into
// non-overlapping subsequences of 2^128 values each.
func (r *RNG) Jump() { r.applyJump(jumpPoly) }

// LongJump advances the generator by 2^192 steps, yielding up to 2^64
// starting points spaced 2^192 values apart — far more separation than any
// realistic fan-out can consume.
func (r *RNG) LongJump() { r.applyJump(longJumpPoly) }

// Stream returns an independent generator for parallel task i: a copy of
// r's current state advanced by i+1 long-jumps, so streams for distinct i
// are guaranteed non-overlapping for at least 2^192 draws. The receiver is
// not advanced, and concurrent Stream calls on a shared base generator are
// safe as long as nothing mutates the base. Stream(i) depends only on r's
// state and i — never on worker count or completion order — which is what
// makes parallel Monte-Carlo sweeps byte-identical to their sequential
// counterparts. It panics if i is negative.
func (r *RNG) Stream(i int) *RNG {
	if i < 0 {
		panic("stats: Stream with negative index")
	}
	sub := &RNG{s: r.s}
	for k := 0; k <= i; k++ {
		sub.LongJump()
	}
	return sub
}

// Split returns n independent generators, Stream(0) through Stream(n-1),
// for handing one substream to each of n parallel tasks.
func (r *RNG) Split(n int) []*RNG {
	out := make([]*RNG, 0, n)
	sub := &RNG{s: r.s}
	for i := 0; i < n; i++ {
		sub.LongJump()
		out = append(out, &RNG{s: sub.s})
	}
	return out
}

// Substreams is Split returning the generators by value in one contiguous
// slice — a single allocation instead of n+1, for Monte-Carlo fan-outs that
// create distributions in a hot loop. Substreams(n)[i] generates exactly
// the same sequence as Stream(i); parallel tasks may each advance their own
// element concurrently.
func (r *RNG) Substreams(n int) []RNG {
	out := make([]RNG, n)
	sub := RNG{s: r.s}
	for i := 0; i < n; i++ {
		sub.LongJump()
		out[i] = sub
	}
	return out
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
