package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func newTest(pf bool) *Cache {
	return New(Config{Size: 32 * 1024, Ways: 4, PrefetchEnabled: pf}, nil)
}

func TestColdMissThenHit(t *testing.T) {
	c := newTest(false)
	c.Access(0, false)
	c.Access(0, false)
	ctr := c.Counters()
	if ctr.DemandMisses != 1 || ctr.DemandHits != 1 {
		t.Errorf("misses=%d hits=%d, want 1 and 1", ctr.DemandMisses, ctr.DemandHits)
	}
	if ctr.LinesIn != 1 {
		t.Errorf("lines in = %d, want 1", ctr.LinesIn)
	}
}

func TestSequentialStreamPrefetchCoverage(t *testing.T) {
	c := newTest(true)
	// Stream through 64 KiB sequentially: after training, most lines
	// should be prefetched before the demand access arrives.
	for addr := uint64(0); addr < 64*1024; addr += LineSize {
		c.Access(addr, false)
	}
	ctr := c.Counters()
	if ctr.PrefetchFills == 0 {
		t.Fatalf("no prefetches on a sequential stream: %v", ctr)
	}
	if cov := ctr.Coverage(); cov < 0.5 {
		t.Errorf("sequential coverage = %.2f, want >= 0.5 (%v)", cov, ctr)
	}
	if acc := ctr.Accuracy(); acc < 0.8 {
		t.Errorf("sequential accuracy = %.2f, want >= 0.8 (%v)", acc, ctr)
	}
}

func TestRandomAccessLowPrefetch(t *testing.T) {
	c := newTest(true)
	rng := stats.NewRNG(7)
	span := uint64(8 << 20)
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(int(span/LineSize))) * LineSize
		c.Access(addr, false)
	}
	ctr := c.Counters()
	// Random traffic must not look prefetch-friendly.
	if cov := ctr.Coverage(); cov > 0.15 {
		t.Errorf("random coverage = %.2f, want <= 0.15 (%v)", cov, ctr)
	}
}

func TestPrefetchDisable(t *testing.T) {
	c := newTest(false)
	for addr := uint64(0); addr < 64*1024; addr += LineSize {
		c.Access(addr, false)
	}
	ctr := c.Counters()
	if ctr.PrefetchFills != 0 {
		t.Errorf("prefetch fills with prefetcher disabled = %d", ctr.PrefetchFills)
	}
	if ctr.DemandMisses != ctr.LinesIn {
		t.Errorf("misses=%d linesIn=%d, want equal without prefetch", ctr.DemandMisses, ctr.LinesIn)
	}
}

func TestRuntimePrefetchToggle(t *testing.T) {
	c := newTest(true)
	c.SetPrefetchEnabled(false)
	for addr := uint64(0); addr < 32*1024; addr += LineSize {
		c.Access(addr, false)
	}
	if ctr := c.Counters(); ctr.PrefetchFills != 0 {
		t.Errorf("prefetch fills after disable = %d", ctr.PrefetchFills)
	}
	c.SetPrefetchEnabled(true)
	for addr := uint64(1 << 20); addr < 1<<20+32*1024; addr += LineSize {
		c.Access(addr, false)
	}
	if ctr := c.Counters(); ctr.PrefetchFills == 0 {
		t.Errorf("no prefetch fills after re-enable")
	}
}

func TestPrefetchStopsAtPageBoundary(t *testing.T) {
	fills := map[uint64]bool{}
	c := New(Config{Size: 32 * 1024, Ways: 4, PrefetchEnabled: true, PageSize: 4096},
		func(la uint64, r FillReason) {
			if r == FillPrefetch {
				fills[la] = true
			}
		})
	// Walk only the first page.
	for addr := uint64(0); addr < 4096; addr += LineSize {
		c.Access(addr, false)
	}
	for la := range fills {
		if la >= 4096 {
			t.Errorf("prefetch crossed page boundary: fill at %#x", la)
		}
	}
}

func TestFillCallbackReasons(t *testing.T) {
	var demand, prefetch int
	c := New(Config{Size: 32 * 1024, Ways: 4, PrefetchEnabled: true},
		func(la uint64, r FillReason) {
			if r == FillDemand {
				demand++
			} else {
				prefetch++
			}
		})
	for addr := uint64(0); addr < 16*1024; addr += LineSize {
		c.Access(addr, false)
	}
	ctr := c.Counters()
	if uint64(demand) != ctr.DemandMisses {
		t.Errorf("demand fills callback=%d counter=%d", demand, ctr.DemandMisses)
	}
	if uint64(prefetch) != ctr.PrefetchFills {
		t.Errorf("prefetch fills callback=%d counter=%d", prefetch, ctr.PrefetchFills)
	}
}

func TestUselessPrefetchOnFlush(t *testing.T) {
	c := newTest(true)
	for addr := uint64(0); addr < 8*1024; addr += LineSize {
		c.Access(addr, false)
	}
	before := c.Counters().PrefetchFills - c.Counters().PrefetchedHits
	c.Flush()
	after := c.Counters()
	if after.UselessPrefetch == 0 && before > 0 {
		t.Errorf("flush should mark in-flight prefetched lines useless (pf=%d hits=%d)",
			after.PrefetchFills, after.PrefetchedHits)
	}
}

func TestAccessRangeTouchesEveryLine(t *testing.T) {
	c := newTest(false)
	c.AccessRange(10, 200, false) // spans lines 0..3
	ctr := c.Counters()
	if ctr.DemandAccesses != 4 {
		t.Errorf("accesses = %d, want 4", ctr.DemandAccesses)
	}
}

// Property: counter identities hold on arbitrary access sequences —
// accesses = hits + misses, linesIn = misses + prefetchFills, and the
// accuracy/coverage ratios stay within [0,1].
func TestCounterInvariantsProperty(t *testing.T) {
	f := func(seq []uint32, pf bool) bool {
		c := New(Config{Size: 16 * 1024, Ways: 4, PrefetchEnabled: pf}, nil)
		for _, v := range seq {
			c.Access(uint64(v)%(1<<22), v%3 == 0)
		}
		ctr := c.Counters()
		if ctr.DemandAccesses != ctr.DemandHits+ctr.DemandMisses {
			return false
		}
		if ctr.LinesIn != ctr.DemandMisses+ctr.PrefetchFills {
			return false
		}
		if ctr.UselessPrefetch > ctr.PrefetchFills {
			return false
		}
		a, cov := ctr.Accuracy(), ctr.Coverage()
		return a >= 0 && a <= 1 && cov >= 0 && cov <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with the prefetcher disabled the cache never reports prefetch
// activity and hits never exceed accesses.
func TestNoPrefetchProperty(t *testing.T) {
	f := func(seq []uint16) bool {
		c := New(Config{Size: 8 * 1024, Ways: 2, PrefetchEnabled: false}, nil)
		for _, v := range seq {
			c.Access(uint64(v)*LineSize, false)
		}
		ctr := c.Counters()
		return ctr.PrefetchFills == 0 && ctr.UselessPrefetch == 0 &&
			ctr.PrefetchedHits == 0 && ctr.DemandHits <= ctr.DemandAccesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
