// Package jobs is the asynchronous campaign job manager: it runs
// sweep-campaign grids detached from any request lifetime, streams every
// finished cell into a persistent checkpoint, and resumes a killed
// campaign exactly where it stopped.
//
// The design leans on the engine's determinism-first discipline: every
// (cell, workload) task is a pure function of its grid coordinates — the
// scenario derives from the grid declaration, the Monte-Carlo substream
// from stats.SeedAt(seed, cell, workload) — so a checkpointed cell
// replayed from disk is byte-identical to a recomputed one, and a resumed
// campaign's artifacts are byte-identical to an uninterrupted run at any
// worker count. That is what makes SIGKILL survivable: there is no hidden
// state to lose, only finished cells to skip.
//
// State persists through a pluggable Store (disk now, object-store-shaped
// for later): a JSON job record with the grid declaration and a per-cell
// completion bitmap, a JSON-lines cell checkpoint appended as cells
// finish, a JSON-lines event log (`cell done i/total, name, seed` — the
// structured per-iteration progress idiom), and the rendered
// sweep/sensitivity artifacts once the campaign completes.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sweep"
)

// State is a job's lifecycle phase.
type State string

// The job states. A job is born Running (submission starts execution
// immediately); Done, Failed and Cancelled are terminal on disk but
// Failed/Cancelled jobs — and Interrupted ones — can be resumed.
// Interrupted is never persisted: it is derived at read time for a job
// whose record says Running but which no live manager is executing (the
// process that ran it was killed), i.e. exactly the jobs Resume exists
// for.
const (
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCancelled   State = "cancelled"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether a state needs no further execution.
func (s State) Terminal() bool { return s == StateDone }

// ErrNotFound marks a lookup of an unknown job id; errors.Is-matchable so
// the HTTP layer maps it to a 404 without string matching.
var ErrNotFound = errors.New("jobs: no such job")

// ErrNotDone marks an artifact read from a job that has not completed;
// the HTTP layer maps it to a 409.
var ErrNotDone = errors.New("jobs: job is not done")

// ErrRecordModified marks a resume whose stored declaration no longer
// hashes to the job id — the record was tampered with (or corrupted) at
// rest, so it must never run. The HTTP layer maps it to a 409.
var ErrRecordModified = errors.New("jobs: stored job declaration was modified")

// notFoundError is a lookup failure matching ErrNotFound.
type notFoundError struct{ id string }

func (e *notFoundError) Error() string        { return fmt.Sprintf("jobs: no such job %q", e.id) }
func (e *notFoundError) Is(target error) bool { return target == ErrNotFound }

// Record is one job's persistent state: the full campaign declaration
// (enough to revalidate and re-derive every cell), the completion
// bitmap, and the progress counters the status surfaces serve.
type Record struct {
	// ID is the job id — a hash of the campaign declaration (grid, runs,
	// seed, workload names), so resubmitting an identical campaign
	// addresses the same job and its checkpoint instead of starting a
	// duplicate.
	ID string `json:"id"`
	// Grid is the declarative campaign; the record stores it verbatim so
	// Resume re-derives exactly the submitted cells.
	Grid sweep.Grid `json:"grid"`
	// Key is the grid's canonical one-line form (sweep.Grid.Key), shown
	// in listings.
	Key string `json:"key"`
	// Workloads are the workload names of the campaign's table, in table
	// order; Runs is the per-cell Monte-Carlo run count; Seed the
	// campaign base seed. Together with Grid they pin every cell's value.
	Workloads []string `json:"workloads"`
	Runs      int      `json:"runs"`
	Seed      uint64   `json:"seed"`
	// State is the lifecycle phase; Error carries the failure diagnostic
	// when State is "failed".
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Total is the campaign's task count — (grid cells + 1 base row) ×
	// workloads — and Done how many are checkpointed; Bitmap is the
	// per-task completion bitmap (bit i set ⇔ task i checkpointed),
	// base64 in JSON.
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Bitmap []byte `json:"bitmap,omitempty"`
	// Created and Updated are the submission and last-checkpoint times.
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
}

// jobID derives the deterministic job id: the first 16 hex digits of the
// SHA-256 over the canonical campaign declaration.
func jobID(g sweep.Grid, workloads []string, runs int, seed uint64) (string, error) {
	material, err := json.Marshal(struct {
		Grid      sweep.Grid
		Workloads []string
		Runs      int
		Seed      uint64
	}{g, workloads, runs, seed})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(material)
	return hex.EncodeToString(sum[:8]), nil
}

// Store keys of one job's state, all under "jobs/<id>/".
func keyJob(id string) string       { return "jobs/" + id + "/job.json" }
func keyCells(id string) string     { return "jobs/" + id + "/cells.jsonl" }
func keyEvents(id string) string    { return "jobs/" + id + "/events.jsonl" }
func keyArtifacts(id string) string { return "jobs/" + id + "/artifacts/" }

// cellLine is one checkpoint line: a finished task index and its cell.
type cellLine struct {
	I    int        `json:"i"`
	Cell sweep.Cell `json:"cell"`
}

// Event is one JSON-lines progress event. Job-level events ("submitted",
// "resumed", "done", "failed", "cancelled") carry the job fields; the
// per-cell "cell" event carries the finished task's coordinates — index,
// done/total progress, generated cell name, workload and the cell's
// derived Monte-Carlo seed — the structured per-iteration progress line
// observability rides on.
type Event struct {
	// Event is the kind: submitted, resumed, cell, done, failed,
	// cancelled.
	Event string `json:"event"`
	// Job is the job id; Time the emission time.
	Job  string    `json:"job"`
	Time time.Time `json:"time"`
	// I, Done, Total, Cell, Workload and Seed describe a "cell" event:
	// task I finished (Done of Total now checkpointed), measuring
	// workload Workload on grid cell Cell with substream seed Seed.
	I        int    `json:"i"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Cell     string `json:"cell,omitempty"`
	Workload string `json:"workload,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// Skipped is the checkpointed-cell count a "resumed" event replays;
	// Error the diagnostic on a "failed" event.
	Skipped int    `json:"skipped,omitempty"`
	Error   string `json:"error,omitempty"`
	// CacheHits, CacheMisses and CacheJoins are the cumulative shared
	// profile-cache counters at the time of a "cell" event (hits count
	// cross-cell reuse, joins coalesced in-flight computes), so a follower
	// can watch campaign cheapness build up as the grid fills in.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	CacheJoins  int64 `json:"cache_joins,omitempty"`
}

// bitmapSet sets bit i in b, growing it as needed.
func bitmapSet(b []byte, i int) []byte {
	for len(b) <= i/8 {
		b = append(b, 0)
	}
	b[i/8] |= 1 << (i % 8)
	return b
}

// bitmapGet reports bit i of b.
func bitmapGet(b []byte, i int) bool {
	return i/8 < len(b) && b[i/8]&(1<<(i%8)) != 0
}

// decodeCheckpoint parses a cells.jsonl blob into index → cell. A partial
// trailing line (the SIGKILL case: the process died mid-append) is
// ignored; duplicate indices keep the last value (they are identical by
// determinism anyway). Indices outside [0, total) are rejected — a
// checkpoint that disagrees with its grid declaration is corruption, not
// progress.
func decodeCheckpoint(data []byte, total int) (map[int]sweep.Cell, error) {
	cells := map[int]sweep.Cell{}
	for len(data) > 0 {
		nl := -1
		for j, c := range data {
			if c == '\n' {
				nl = j
				break
			}
		}
		if nl < 0 {
			break // partial trailing line: the append was cut mid-write
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(line) == 0 {
			continue
		}
		var cl cellLine
		if err := json.Unmarshal(line, &cl); err != nil {
			break // torn line that still ends in \n: drop it and the rest
		}
		if cl.I < 0 || cl.I >= total {
			return nil, fmt.Errorf("jobs: checkpoint cell index %d outside [0,%d)", cl.I, total)
		}
		cells[cl.I] = cl.Cell
	}
	return cells, nil
}

// bitmapOf rebuilds the completion bitmap from a decoded checkpoint.
func bitmapOf(cells map[int]sweep.Cell) []byte {
	idx := make([]int, 0, len(cells))
	for i := range cells {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var b []byte
	for _, i := range idx {
		b = bitmapSet(b, i)
	}
	return b
}
