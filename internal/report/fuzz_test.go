package report

import (
	"encoding/csv"
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzCellFormat fuzzes the cell formatter — the single code path every
// renderer's numeric output flows through — against NaN, the infinities,
// huge and subnormal floats, and arbitrary precisions:
//
//   - Text() never emits an empty cell or an embedded newline, which would
//     desynchronize table rows;
//   - Value() of a float-kind cell always parses back via
//     strconv.ParseFloat and recovers the exact payload (bit-equal, or
//     both NaN) — the CSV contract;
//   - a CSV document carrying the cell always reads back with
//     encoding/csv, with the payload intact in the expected field.
//
// `go test` replays the seed corpus; `go test -fuzz FuzzCellFormat
// ./internal/report` explores new inputs.
func FuzzCellFormat(f *testing.F) {
	f.Add(0.0, 0, uint8(0))
	f.Add(math.NaN(), 3, uint8(1))
	f.Add(math.Inf(1), 17, uint8(2))
	f.Add(math.Inf(-1), -2, uint8(3))
	f.Add(1.7976931348623157e308, 4, uint8(4)) // MaxFloat64
	f.Add(5e-324, 1, uint8(5))                 // smallest subnormal
	f.Add(-0.0, 2, uint8(0))
	f.Add(5400.0000000000005, 3, uint8(1))
	f.Fuzz(func(t *testing.T, v float64, prec int, kindSel uint8) {
		if prec < -1 || prec > 64 {
			prec = int(uint(prec) % 64)
		}
		floatCells := []Cell{
			Num(v),
			Fixed(v, prec),
			FixedSuffix(v, prec, "%"),
			Pct(v),
			Flops(v),
			Bandwidth(v),
			Seconds(v),
		}
		c := floatCells[int(kindSel)%len(floatCells)]

		if text := c.Text(); text == "" || strings.ContainsAny(text, "\n\r") {
			t.Fatalf("cell %+v: Text() = %q (empty or multi-line)", c, text)
		}
		val := c.Value()
		got, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("cell %+v: Value() = %q does not parse: %v", c, val, err)
		}
		if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
			t.Fatalf("cell %+v: Value() = %q parsed back to %v, want %v", c, val, got, v)
		}

		// The cell embedded in a rendered CSV document stays parseable and
		// lands intact in its field.
		tb := NewTable("fuzz", "label", "value")
		tb.Row(Str("w"), c)
		out, err := RenderCSV(*New("fuzz").Append(tb.Block()))
		if err != nil {
			t.Fatalf("RenderCSV: %v", err)
		}
		rd := csv.NewReader(strings.NewReader(out))
		rd.Comment = '#'
		rd.FieldsPerRecord = -1
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("CSV with cell %+v does not parse: %v\n%s", c, err, out)
		}
		last := recs[len(recs)-1]
		if len(last) != 2 || last[1] != val {
			t.Fatalf("CSV row %v: want value field %q", last, val)
		}
	})
}
