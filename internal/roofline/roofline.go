// Package roofline implements the standard roofline model (Williams et al.)
// and the extended memory roofline for multi-tier systems used in the
// paper's §3.4 and §5: attainable performance as a function of arithmetic
// intensity, with memory roofs for a single tier, for concurrent use of both
// tiers, and for an arbitrary local:remote access split.
package roofline

// Model is a platform description for the roofline analysis.
type Model struct {
	// PeakFlops is the compute roof in flop/s.
	PeakFlops float64
	// LocalBandwidth is the fast-tier memory bandwidth in bytes/s.
	LocalBandwidth float64
	// RemoteBandwidth is the pooled-tier bandwidth in bytes/s
	// (zero for a single-tier system).
	RemoteBandwidth float64
}

// Attainable is the classic single-tier roofline:
// P = min(F, B_local * I) for arithmetic intensity I in flop/byte.
func (m Model) Attainable(intensity float64) float64 {
	p := m.LocalBandwidth * intensity
	if p > m.PeakFlops {
		return m.PeakFlops
	}
	return p
}

// AggregateBandwidth is the combined bandwidth when both tiers stream
// concurrently — the dashed "additional memory tier" roof of Figure 5,
// and the hardware rebuttal to the "multi-tier memory is slower"
// misconception in §2.1.
func (m Model) AggregateBandwidth() float64 {
	return m.LocalBandwidth + m.RemoteBandwidth
}

// AttainableAggregate is the roofline using the aggregate two-tier roof.
func (m Model) AttainableAggregate(intensity float64) float64 {
	p := m.AggregateBandwidth() * intensity
	if p > m.PeakFlops {
		return m.PeakFlops
	}
	return p
}

// EffectiveBandwidth returns the achievable memory bandwidth for a workload
// that directs the fraction remote (0..1) of its access bytes to the remote
// tier, with both tiers operating concurrently: the binding tier limits the
// rate, so BW_eff = min(B_L/(1-r), B_R/r). The optimum — the balanced-split
// argument of §5 — is r* = B_R/(B_L+B_R), where BW_eff equals the aggregate
// bandwidth.
func (m Model) EffectiveBandwidth(remote float64) float64 {
	switch {
	case remote <= 0:
		return m.LocalBandwidth
	case remote >= 1:
		return m.RemoteBandwidth
	}
	local := m.LocalBandwidth / (1 - remote)
	rem := m.RemoteBandwidth / remote
	if local < rem {
		return local
	}
	return rem
}

// AttainableAt is the memory roofline at a given remote access fraction.
func (m Model) AttainableAt(intensity, remote float64) float64 {
	p := m.EffectiveBandwidth(remote) * intensity
	if p > m.PeakFlops {
		return m.PeakFlops
	}
	return p
}

// BalancedRemoteRatio is the remote access fraction that maximizes
// EffectiveBandwidth — the R_BW reference point of Figure 9.
func (m Model) BalancedRemoteRatio() float64 {
	total := m.LocalBandwidth + m.RemoteBandwidth
	if total == 0 {
		return 0
	}
	return m.RemoteBandwidth / total
}

// RidgeIntensity is the arithmetic intensity where the single-tier memory
// roof meets the compute roof: workloads below it are memory-bound.
func (m Model) RidgeIntensity() float64 {
	if m.LocalBandwidth == 0 {
		return 0
	}
	return m.PeakFlops / m.LocalBandwidth
}

// Point is a measured (intensity, throughput) sample placed on the roofline,
// one per application phase in Figure 5.
type Point struct {
	Label      string
	Intensity  float64 // flop/byte
	Throughput float64 // flop/s
}

// Bound classifies a point as compute- or memory-bound under the model.
type Bound int

const (
	// MemoryBound means the phase sits left of the ridge point.
	MemoryBound Bound = iota
	// ComputeBound means the phase sits right of the ridge point.
	ComputeBound
)

// String names the bound.
func (b Bound) String() string {
	if b == ComputeBound {
		return "compute-bound"
	}
	return "memory-bound"
}

// Classify returns the bound regime of an intensity under the model.
func (m Model) Classify(intensity float64) Bound {
	if intensity >= m.RidgeIntensity() {
		return ComputeBound
	}
	return MemoryBound
}

// Efficiency is the ratio of achieved throughput to the roofline ceiling at
// the point's intensity (0..1, above 1 indicates the model underestimates).
func (m Model) Efficiency(p Point) float64 {
	ceil := m.Attainable(p.Intensity)
	if ceil == 0 {
		return 0
	}
	return p.Throughput / ceil
}
