package xsbench

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func small() *XSBench {
	return &XSBench{Nuclides: 8, Gridpoints: 200, Lookups: 500, seed: 0x5b}
}

func TestChecksumDeterministic(t *testing.T) {
	run := func() float64 {
		x := small()
		m := machine.New(machine.Default())
		x.Run(m)
		return x.Checksum
	}
	if run() != run() {
		t.Errorf("non-deterministic checksum")
	}
}

func TestInterpolationExactForLinearChannels(t *testing.T) {
	// Channel c stores c*energy at every gridpoint, so the interpolated
	// channel-1 macro XS equals sum over nuclides of the queried energy
	// (clamped at grid edges). With many gridpoints the edge effect is
	// negligible; verify the checksum is close to sum of energies.
	x := &XSBench{Nuclides: 4, Gridpoints: 5000, Lookups: 2000, seed: 1}
	m := machine.New(machine.Default())
	x.Run(m)
	// Expected: checksum ~= sum over lookups of 4 * e (channel 1 = 1*e,
	// summed over 4 nuclides). The same RNG stream interleaves grid setup
	// and lookups, so just bound the per-lookup average within [0,4].
	avg := x.Checksum / float64(x.Lookups)
	if avg < 0.5 || avg > 4 {
		t.Errorf("average macro XS per lookup = %v, want within (0.5, 4)", avg)
	}
}

func TestPhaseProfile(t *testing.T) {
	x := New(1)
	x.Lookups = 2000
	m := machine.New(machine.Default())
	x.Run(m)
	p2, ok := m.Phase("p2")
	if !ok {
		t.Fatal("missing p2")
	}
	if p2.ArithmeticIntensity() > 2 {
		t.Errorf("XSBench p2 AI = %v, want low (memory/latency bound)", p2.ArithmeticIntensity())
	}
	// Random gathers defeat the prefetcher: coverage near zero (paper <1%).
	if cov := p2.Cache.Coverage(); cov > 0.10 {
		t.Errorf("prefetch coverage = %v, want < 0.10", cov)
	}
}

func TestLowRemoteAccessRatioUnderPooling(t *testing.T) {
	// The paper's standout XSBench result: remote access ratio below ~6%
	// in ALL pooling configurations, because the hot structures are small
	// and allocated first.
	probe := New(1)
	probe.Lookups = 3000
	mp := machine.New(machine.Default())
	probe.Run(mp)
	peak := mp.PeakFootprint()

	for _, localFrac := range []float64{0.25, 0.5, 0.75} {
		x := New(1)
		x.Lookups = 3000
		cfg := machine.Default().WithLocalCapacity(uint64(localFrac * float64(peak)))
		m := machine.New(cfg)
		x.Run(m)
		p2, _ := m.Phase("p2")
		if p2.RemoteAccessRatio > 0.10 {
			t.Errorf("local=%v: remote access ratio = %v, want <= 0.10",
				localFrac, p2.RemoteAccessRatio)
		}
	}
}

func TestIndexGridDominatesFootprint(t *testing.T) {
	x := New(1)
	x.Lookups = 100
	m := machine.New(machine.Default())
	x.Run(m)
	var indexBytes, total uint64
	for _, rs := range m.Space.PerRegion() {
		sz := rs.Region.Size
		total += sz
		if rs.Region.Name == "index-grid" {
			indexBytes = sz
		}
	}
	if float64(indexBytes)/float64(total) < 0.5 {
		t.Errorf("index grid is %d of %d bytes; should dominate", indexBytes, total)
	}
}

func TestScaleDoubling(t *testing.T) {
	g1, g2, g4 := New(1).Gridpoints, New(2).Gridpoints, New(4).Gridpoints
	if g2 != 2*g1 || g4 != 4*g1 {
		t.Errorf("gridpoint scaling %d:%d:%d, want 1:2:4", g1, g2, g4)
	}
}

func TestChecksumFinite(t *testing.T) {
	x := small()
	m := machine.New(machine.Default())
	x.Run(m)
	if math.IsNaN(x.Checksum) || math.IsInf(x.Checksum, 0) {
		t.Errorf("checksum = %v", x.Checksum)
	}
	if x.Checksum <= 0 {
		t.Errorf("checksum = %v, want > 0", x.Checksum)
	}
}
