package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func testModel() Model {
	return Model{PeakFlops: 250e9, LocalBandwidth: 73e9, RemoteBandwidth: 34e9}
}

func TestAttainableRegimes(t *testing.T) {
	m := testModel()
	// Deep in the memory-bound regime.
	if got := m.Attainable(0.1); got != 7.3e9 {
		t.Errorf("attainable(0.1) = %v, want 7.3e9", got)
	}
	// Deep in the compute-bound regime.
	if got := m.Attainable(1000); got != 250e9 {
		t.Errorf("attainable(1000) = %v, want peak", got)
	}
}

func TestRidge(t *testing.T) {
	m := testModel()
	ridge := m.RidgeIntensity()
	want := 250.0 / 73.0
	if math.Abs(ridge-want) > 1e-9 {
		t.Errorf("ridge = %v, want %v", ridge, want)
	}
	if m.Classify(ridge/2) != MemoryBound {
		t.Errorf("below ridge should be memory-bound")
	}
	if m.Classify(ridge*2) != ComputeBound {
		t.Errorf("above ridge should be compute-bound")
	}
}

func TestAggregateRoofHigher(t *testing.T) {
	m := testModel()
	// The §2.1 misconception: an extra tier ADDS bandwidth.
	if m.AggregateBandwidth() <= m.LocalBandwidth {
		t.Errorf("aggregate bandwidth should exceed local-only")
	}
	i := 0.5
	if m.AttainableAggregate(i) <= m.Attainable(i) {
		t.Errorf("aggregate roof should dominate in the memory-bound regime")
	}
}

func TestEffectiveBandwidthEndpoints(t *testing.T) {
	m := testModel()
	if got := m.EffectiveBandwidth(0); got != 73e9 {
		t.Errorf("r=0 eff BW = %v, want local", got)
	}
	if got := m.EffectiveBandwidth(1); got != 34e9 {
		t.Errorf("r=1 eff BW = %v, want remote", got)
	}
}

func TestBalancedRatioMaximizesBandwidth(t *testing.T) {
	m := testModel()
	r := m.BalancedRemoteRatio()
	want := 34.0 / 107.0
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("balanced ratio = %v, want %v", r, want)
	}
	best := m.EffectiveBandwidth(r)
	if math.Abs(best-m.AggregateBandwidth()) > 1 {
		t.Errorf("balanced split eff BW = %v, want aggregate %v", best, m.AggregateBandwidth())
	}
	for _, dr := range []float64{-0.1, -0.05, 0.05, 0.1} {
		if m.EffectiveBandwidth(r+dr) > best+1e-6 {
			t.Errorf("split %v beats the balanced split", r+dr)
		}
	}
}

func TestEfficiency(t *testing.T) {
	m := testModel()
	p := Point{Intensity: 0.1, Throughput: 3.65e9}
	if e := m.Efficiency(p); math.Abs(e-0.5) > 1e-9 {
		t.Errorf("efficiency = %v, want 0.5", e)
	}
}

// Property: effective bandwidth is within [min(BL,BR), BL+BR] and the
// roofline never exceeds the compute peak.
func TestEffectiveBandwidthBoundsProperty(t *testing.T) {
	m := testModel()
	f := func(r100 uint8, i100 uint16) bool {
		r := float64(r100%101) / 100
		i := float64(i100) / 100
		bw := m.EffectiveBandwidth(r)
		if bw < 34e9-1 || bw > 107e9+1 {
			return false
		}
		return m.AttainableAt(i, r) <= m.PeakFlops+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
