// Package fixture exercises the exporteddocs analyzer: undocumented
// exported symbols — including methods, which the old grep gate could not
// see — are caught; documented symbols pass; //repro:allow silences a
// documented exception without impersonating a doc comment.
package fixture

// Documented is a documented exported type.
type Documented struct{}

type Undocumented struct{} // want exporteddocs "exported type Undocumented has no doc comment"

// Render is a documented exported method.
func (Documented) Render() string { return "" }

func (Documented) Leak() string { return "" } // want exporteddocs "exported Documented.Leak has no doc comment"

// NewDocumented is a documented exported function.
func NewDocumented() Documented { return Documented{} }

func Naked() {} // want exporteddocs "exported Naked has no doc comment"

// Exported limits, documented as a group.
const (
	MaxCells   = 4096
	MaxWorkers = 64
)

var Bare = 2 // want exporteddocs "exported Bare has no doc comment"

//repro:allow exporteddocs — fixture escape hatch: suppression must work without counting as documentation
func Shh() {}

func unexported() {} // unexported: never checked
