package report

import (
	"os"
	"path/filepath"
	"sync"
)

// Source computes the document of one artifact on one platform. It is the
// seam between measurement and presentation: the experiment suites sit
// behind a Source, the Store and every renderer sit in front of it.
type Source func(platform, artifact string) (Doc, error)

// Store memoizes artifact documents and their renders: each (platform,
// artifact) document is computed once and each (platform, artifact, format)
// render is produced once, no matter how many CLI writes or HTTP requests
// ask for it.
type Store struct {
	src Source

	// mu guards docs and is held across source computation, serializing
	// document builds. renderMu guards rendered and is never held across
	// computation, so cached renders stay instant while a cold document
	// computes. Lock order when both are needed: mu, then renderMu.
	mu       sync.Mutex
	docs     map[[2]string]docEntry
	renderMu sync.Mutex
	rendered map[[3]string]string
}

// docEntry is one memoized document plus its generation: Put bumps the
// generation, and an in-flight render only caches if the document it
// rendered is still current, so Doc and Artifact never disagree.
type docEntry struct {
	doc Doc
	gen uint64
}

// NewStore returns an empty store over the given source.
func NewStore(src Source) *Store {
	return &Store{
		src:      src,
		docs:     map[[2]string]docEntry{},
		rendered: map[[3]string]string{},
	}
}

// Doc returns the memoized document of an artifact on a platform, computing
// it on first use and stamping the platform into the document. Source
// errors are not memoized: unknown ids and platforms fail fast in the
// source, and an unbounded error cache keyed by request-controlled strings
// would let a misbehaving client grow the store without limit.
//
// Computation happens under the store lock: concurrent requests for
// different artifacts serialize, which keeps one suite's drivers from
// running concurrently with each other (the suites parallelize internally).
func (st *Store) Doc(platform, artifact string) (Doc, error) {
	d, _, err := st.doc(platform, artifact)
	return d, err
}

// doc is Doc plus the entry's generation for Artifact's cache guard.
func (st *Store) doc(platform, artifact string) (Doc, uint64, error) {
	key := [2]string{platform, artifact}
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.docs[key]; ok {
		return e.doc, e.gen, nil
	}
	d, err := st.src(platform, artifact)
	if err != nil {
		return Doc{}, 0, err
	}
	if d.Platform == "" {
		d.Platform = platform
	}
	st.docs[key] = docEntry{doc: d, gen: 1}
	return d, 1, nil
}

// Put seeds the store with a precomputed document keyed by the given
// platform and the doc's artifact id — the hook for parallel sweeps
// (Suite.AllParallel) that compute many documents at once and hand them to
// the store for rendering and serving.
func (st *Store) Put(platform string, d Doc) {
	if d.Platform == "" {
		d.Platform = platform
	}
	key := [2]string{platform, d.Artifact}
	st.mu.Lock()
	st.docs[key] = docEntry{doc: d, gen: st.docs[key].gen + 1}
	// Drop any renders of a previously stored document so Doc and Artifact
	// never disagree after a re-Put.
	st.renderMu.Lock()
	for _, f := range Formats {
		delete(st.rendered, [3]string{platform, d.Artifact, string(f)})
	}
	st.renderMu.Unlock()
	st.mu.Unlock()
}

// Artifact returns the memoized render of an artifact on a platform in a
// format. A cached render is returned without touching the document path,
// so cold computations of other artifacts never block cached responses.
func (st *Store) Artifact(platform, artifact string, f Format) (string, error) {
	key := [3]string{platform, artifact, string(f)}
	st.renderMu.Lock()
	out, ok := st.rendered[key]
	st.renderMu.Unlock()
	if ok {
		return out, nil
	}
	d, gen, err := st.doc(platform, artifact)
	if err != nil {
		return "", err
	}
	out, err = Render(d, f)
	if err != nil {
		return "", err
	}
	st.mu.Lock()
	// Cache only if the document we rendered is still the stored one — a
	// concurrent Put may have replaced it while we rendered.
	if st.docs[[2]string{platform, artifact}].gen == gen {
		st.renderMu.Lock()
		st.rendered[key] = out
		st.renderMu.Unlock()
	}
	st.mu.Unlock()
	return out, nil
}

// WriteDir renders each artifact in each format and writes the files into
// dir as <artifact>.<ext> (figure9.txt, figure9.json, figure9.csv, ...),
// creating dir if needed. It returns the written file paths in order.
func (st *Store) WriteDir(dir, platform string, artifacts []string, formats ...Format) ([]string, error) {
	if len(formats) == 0 {
		formats = Formats
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, id := range artifacts {
		for _, f := range formats {
			out, err := st.Artifact(platform, id, f)
			if err != nil {
				return paths, err
			}
			p := filepath.Join(dir, id+"."+f.Ext())
			if err := os.WriteFile(p, []byte(out), 0o644); err != nil {
				return paths, err
			}
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// Cached reports how many documents and renders the store currently holds
// (for tests and diagnostics).
func (st *Store) Cached() (docs, renders int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.renderMu.Lock()
	defer st.renderMu.Unlock()
	return len(st.docs), len(st.rendered)
}
