// Package scenario turns the single-testbed reproduction into a what-if
// engine: a registry of named, declarative platform scenarios against which
// the paper's whole methodology — the three-level profiles, the R_cap/R_BW
// reference points, the interference analyses — can be re-evaluated.
//
// The paper defines its reference points relative to one testbed (a
// dual-socket Skylake-X with the UPI link standing in for the pool
// interconnect), but its purpose is to answer "should *this* system adopt
// disaggregated memory". Each Spec here describes one such candidate
// system: the paper's testbed as "baseline", CXL-generation interconnect
// variants with different link latency/bandwidth/protocol overhead, a
// larger pooled tier, and a skewed capacity sweep. The registry mirrors
// workloads/registry so drivers, the CLI and the public API can enumerate
// and look up scenarios exactly like workloads.
package scenario

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/machine"
)

// ErrUnknown marks a failed scenario lookup: every error returned by Get
// and GetFrom matches errors.Is(err, ErrUnknown), so request boundaries
// (the HTTP layer) classify a bad platform name as not-found without
// string matching. The error text itself stays the CLI-pinned
// names-listing diagnostic.
var ErrUnknown = errors.New("scenario: unknown scenario")

// notFoundError is a lookup failure matching ErrUnknown under errors.Is.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string        { return e.msg }
func (e *notFoundError) Is(target error) bool { return target == ErrUnknown }

// Spec is one named platform scenario: a full platform configuration plus
// the capacity protocol to sweep on it.
type Spec struct {
	// Name identifies the scenario (e.g. "cxl-gen5").
	Name string
	// Description is the one-line summary shown in listings.
	Description string
	// Platform is the complete emulated-platform configuration.
	Platform machine.Config
	// CapacityFractions is the local-capacity sweep for the Figure 9/10
	// protocol on this platform: the local tier sized to each fraction of
	// the workload's peak usage, most-local first.
	CapacityFractions []float64
	// HeadlineFraction is the single capacity point used by cross-scenario
	// comparisons (the baseline's 50%-50% split plays this role in the
	// paper's Figures 11-13).
	HeadlineFraction float64
}

// Validate checks the spec is internally consistent.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if s.Platform.Link.DataBandwidth <= 0 || s.Platform.Link.PeakTraffic <= 0 {
		return fmt.Errorf("scenario %s: link bandwidth must be positive", s.Name)
	}
	if s.Platform.Link.Latency <= 0 || s.Platform.LocalLatency <= 0 {
		return fmt.Errorf("scenario %s: latencies must be positive", s.Name)
	}
	if s.Platform.LocalBandwidth <= 0 || s.Platform.PeakFlops <= 0 {
		return fmt.Errorf("scenario %s: local bandwidth and peak flops must be positive", s.Name)
	}
	if len(s.CapacityFractions) == 0 {
		return fmt.Errorf("scenario %s: no capacity fractions", s.Name)
	}
	for _, f := range s.CapacityFractions {
		if f <= 0 || f >= 1 {
			return fmt.Errorf("scenario %s: capacity fraction %v outside (0,1)", s.Name, f)
		}
	}
	if s.HeadlineFraction <= 0 || s.HeadlineFraction >= 1 {
		return fmt.Errorf("scenario %s: headline fraction %v outside (0,1)", s.Name, s.HeadlineFraction)
	}
	return nil
}

// Renamed returns a copy of the spec under a new name. Generators (the
// sweep engine's grid cross-product) use it to stamp each derived spec with
// its canonical cell name while leaving the underlying platform name — and
// therefore profiler-cache sharing across cells with identical physics —
// untouched.
func (s Spec) Renamed(name string) Spec {
	s.Name = name
	return s
}

// WithCapacitySplit returns a copy of the spec whose capacity protocol is
// collapsed to the single local-capacity fraction f: the sweep and the
// headline point both become f. This is how a capacity-fraction axis turns
// one registered scenario into a continuum of candidate systems.
func (s Spec) WithCapacitySplit(f float64) Spec {
	s.CapacityFractions = []float64{f}
	s.HeadlineFraction = f
	return s
}

// paperFractions is the paper's 75/50/25 local-capacity protocol.
var paperFractions = []float64{0.75, 0.50, 0.25}

// All returns the scenario table, baseline first. Each call builds fresh
// specs, so callers may modify the returned values freely.
func All() []Spec {
	base := machine.Default()
	return []Spec{
		{
			Name:              "baseline",
			Description:       "the paper's testbed: UPI-emulated pool link (34 GB/s data, 202 ns)",
			Platform:          base,
			CapacityFractions: append([]float64(nil), paperFractions...),
			HeadlineFraction:  0.50,
		},
		{
			Name: "cxl-gen5",
			// A CXL 2.0 pool device behind a PCIe 5.0 x8 port: less payload
			// bandwidth than UPI, higher round-trip latency, and a heavier
			// flit overhead than the UPI cacheline protocol.
			Description: "CXL 2.0 pool on PCIe 5.0 x8: 26 GB/s data, 380 ns, 1.25x flit overhead",
			Platform: base.WithName("cxl-gen5").WithLink(
				base.Link.WithBandwidth(26e9, 62e9).WithLatency(380e-9).WithOverhead(1.25)),
			CapacityFractions: append([]float64(nil), paperFractions...),
			HeadlineFraction:  0.50,
		},
		{
			Name: "cxl-gen6",
			// PCIe 6.0 x8 doubles the lane rate and the 256-byte FLIT mode
			// trims protocol overhead; latency improves modestly because the
			// device-side controller, not the wire, dominates.
			Description: "CXL 3.0 pool on PCIe 6.0 x8: 52 GB/s data, 310 ns, 1.12x flit overhead",
			Platform: base.WithName("cxl-gen6").WithLink(
				base.Link.WithBandwidth(52e9, 120e9).WithLatency(310e-9).WithOverhead(1.12)),
			CapacityFractions: append([]float64(nil), paperFractions...),
			HeadlineFraction:  0.50,
		},
		{
			Name: "big-pool",
			// The same interconnect as the baseline but a rack that leans on
			// the pool for most of the footprint: the local tier shrinks to
			// at most half of peak usage and down to a tenth.
			Description:       "pool-heavy capacity: local tier 50/25/10% of peak usage on the baseline link",
			Platform:          base.WithName("big-pool"),
			CapacityFractions: []float64{0.50, 0.25, 0.10},
			HeadlineFraction:  0.25,
		},
		{
			Name: "skewed-split",
			// A deliberately asymmetric sweep probing both extremes of the
			// R_cap reference: an almost-all-local split and an
			// almost-all-pooled one around the balanced midpoint.
			Description:       "skewed capacity splits: local tier 90/50/15% of peak usage",
			Platform:          base.WithName("skewed-split"),
			CapacityFractions: []float64{0.90, 0.50, 0.15},
			HeadlineFraction:  0.90,
		},
	}
}

// Default returns the baseline scenario (the paper's testbed).
func Default() Spec { return All()[0] }

// Get returns the registered scenario with the given name. The failure
// matches ErrUnknown and lists every registered name.
func Get(name string) (Spec, error) { return GetFrom(All(), name) }

// GetFrom returns the scenario with the given name from an explicit spec
// set — the lookup a Service restricted to a scenario subset performs. The
// failure matches ErrUnknown and lists the set's names.
func GetFrom(specs []Spec, name string) (Spec, error) {
	known := make([]string, len(specs))
	for i, s := range specs {
		if s.Name == name {
			return s, nil
		}
		known[i] = s.Name
	}
	return Spec{}, &notFoundError{msg: fmt.Sprintf("scenario: unknown scenario %q (known: %s)",
		name, strings.Join(known, ", "))}
}

// Names returns the scenario names in table order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}
