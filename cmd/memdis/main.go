// Command memdis regenerates the paper's tables and figures on the emulated
// platform. Usage:
//
//	memdis all                        # every experiment in paper order
//	memdis -j 8 all                   # same, fanned out over 8 workers
//	memdis -j 0 all                   # use every core
//	memdis figure9                    # one experiment (figureN or tableN)
//	memdis -platform cxl-gen5 figure9 # same analysis on an alternate platform
//	memdis list                       # list experiment ids
//	memdis platforms                  # list platform scenarios
//
// The -j flag bounds the worker pool for both the experiment-level and the
// intra-driver fan-out. Output is byte-identical for any -j value: every
// randomized simulation owns a deterministic RNG substream keyed by its run
// index, never by worker or completion order.
//
// The -platform flag re-runs the selected experiments on a registered
// scenario (see `memdis platforms`): the drivers use the scenario's link,
// timing constants and capacity sweep in place of the testbed's.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/pool"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memdis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdis", flag.ContinueOnError)
	workers := fs.Int("j", 1, "parallel workers (0 = all cores)")
	platform := fs.String("platform", "baseline", "platform scenario (see `memdis platforms`)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: memdis [-j N] [-platform S] <all|list|platforms|%s|...>", experiments.IDs[0])
	}
	sp, err := scenario.Get(*platform)
	if err != nil {
		return err
	}
	s := experiments.NewSuiteFor(sp)
	s.Workers = pool.Workers(*workers)
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return nil
	case "platforms":
		for _, sc := range scenario.All() {
			fmt.Printf("%-12s  %s\n", sc.Name, sc.Description)
		}
		return nil
	case "all":
		if len(args) > 1 {
			// Catch `memdis all -j 4`: flag parsing stops at the first
			// non-flag argument, so a trailing -j would be silently
			// ignored instead of changing the worker count.
			return fmt.Errorf("unexpected arguments after \"all\": %v (flags go before the subcommand: memdis -j N all)", args[1:])
		}
		for _, r := range s.AllParallel(s.Workers) {
			fmt.Printf("==== %s ====\n%s\n", r.ID(), r.Render())
		}
		return nil
	default:
		for _, id := range args {
			r, err := s.Run(id)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		}
		return nil
	}
}
