package superlu

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
)

func TestSolveResidualSmall(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		s := &SuperLU{N: n, seed: 7}
		m := machine.New(machine.Default())
		s.Run(m)
		if s.RelResidual > 1e-9 {
			t.Errorf("n=%d: residual = %g, want < 1e-9", n, s.RelResidual)
		}
	}
}

func TestAgainstDenseLU(t *testing.T) {
	// Factor the 7-point matrix densely and compare the solution.
	n := 4
	rng := stats.NewRNG(7)
	a := lattice7(n, rng)
	order := a.n
	dense := make([]float64, order*order)
	for j := 0; j < order; j++ {
		for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
			dense[int(a.rowIdx[p])*order+j] = a.values[p]
		}
	}
	rng2 := stats.NewRNG(7)
	_ = lattice7(n, rng2) // consume the same stream as Run does
	b := make([]float64, order)
	for i := range b {
		b[i] = rng2.Float64() - 0.5
	}
	xDense := denseSolve(dense, append([]float64(nil), b...), order)

	s := &SuperLU{N: n, seed: 7}
	m := machine.New(machine.Default())
	s.Run(m)
	// Recover x by re-solving through the public Run result: the residual
	// check inside Run already validates; here compare dense vs sparse by
	// residual of dense solution instead.
	r := make([]float64, order)
	copy(r, b)
	for j := 0; j < order; j++ {
		for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
			r[a.rowIdx[p]] -= a.values[p] * xDense[j]
		}
	}
	for i := range r {
		if math.Abs(r[i]) > 1e-9 {
			t.Fatalf("dense reference solve is wrong at %d: %v", i, r[i])
		}
	}
	if s.RelResidual > 1e-9 {
		t.Errorf("sparse residual %g disagrees with solvable system", s.RelResidual)
	}
}

// denseSolve is a simple Gaussian elimination with partial pivoting.
func denseSolve(a, b []float64, n int) []float64 {
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i*n+k]) > math.Abs(a[p*n+k]) {
				p = i
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] / a[k*n+k]
			for j := k; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
			b[i] -= f * b[k]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s / a[i*n+i]
	}
	return x
}

func TestFillInGrowth(t *testing.T) {
	s := &SuperLU{N: 8, seed: 7}
	m := machine.New(machine.Default())
	s.Run(m)
	if s.FillNNZ <= s.InputNNZ {
		t.Errorf("fill nnz %d should exceed input nnz %d", s.FillNNZ, s.InputNNZ)
	}
	// Fill ratio grows with problem size (the Figure 6 CDF-shift driver).
	s2 := &SuperLU{N: 12, seed: 7}
	m2 := machine.New(machine.Default())
	s2.Run(m2)
	r1 := float64(s.FillNNZ) / float64(s.InputNNZ)
	r2 := float64(s2.FillNNZ) / float64(s2.InputNNZ)
	if r2 <= r1 {
		t.Errorf("fill ratio should grow with scale: %v -> %v", r1, r2)
	}
}

func TestThreePhases(t *testing.T) {
	s := New(1)
	m := machine.New(machine.Default())
	s.Run(m)
	ph := m.Phases()
	if len(ph) != 3 {
		t.Fatalf("phases = %d, want 3 (p1/p2/p3)", len(ph))
	}
	for i, want := range []string{"p1", "p2", "p3"} {
		if ph[i].Name != want {
			t.Errorf("phase %d = %q, want %q", i, ph[i].Name, want)
		}
	}
	// Factorization dominates the flops.
	if ph[1].Flops <= ph[2].Flops {
		t.Errorf("factor flops %v should exceed solve flops %v", ph[1].Flops, ph[2].Flops)
	}
}

func TestScaleNNZRatios(t *testing.T) {
	nnz := func(scale int) float64 {
		s := New(scale)
		n := s.N
		return float64(7*n*n*n - 6*n*n) // 7-pt lattice nnz
	}
	if r := nnz(4) / nnz(1); r < 2.3 || r > 4.5 {
		t.Errorf("x4/x1 nnz ratio = %v, want in the paper's ~4x band", r)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (float64, int) {
		s := &SuperLU{N: 6, seed: 9}
		m := machine.New(machine.Default())
		s.Run(m)
		return s.RelResidual, s.FillNNZ
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 || f1 != f2 {
		t.Errorf("non-deterministic factorization")
	}
}
