// Package api is the versioned HTTP surface of the reproduction service:
// one mux, one JSON error envelope, one content-negotiation rule and one
// middleware chain (request logging, panic recovery, shared request
// validation) over every route — replacing the two bespoke pre-/v1
// handlers (the artifact store's and the sweep endpoint's), which stay
// mounted as deprecated aliases.
//
// Routes (all GET):
//
//	/healthz                   liveness: {"status":"ok"}
//	/v1                        index: artifact ids, platforms, formats, routes
//	/v1/artifacts              artifact index
//	/v1/artifacts/{id}         one artifact (canonical ids only)
//	/v1/platforms              the scenario table
//	/v1/workloads              the workload table
//	/v1/sweep                  a sweep campaign (axis=, artifact=, platform=)
//
// Every data route accepts ?platform= (default: the backend's) and picks
// its representation from ?format= (text, json, csv — txt accepted,
// case-insensitive) or, absent that, the Accept header (application/json,
// text/csv, text/plain; unrecognized types fall back to text).
//
// Errors — unknown artifact or platform (404), alias ids (404, pointing
// at the canonical id), malformed formats or axes and oversized grids
// (400), cancelled computations (503/504), panics (500) — all share one
// JSON envelope:
//
//	{"error": {"status": 404, "message": "..."}}
//
// with a "formats" field listing the accepted spellings verbatim when the
// failure is a format error. Validation runs the exact same validators the
// library path runs (report.ParseFormat, sweep.Grid.Validate via the
// backend's Sweep), so the two surfaces cannot drift apart.
package api

import (
	"context"
	"log"
	"net/http"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// Backend is the service surface the HTTP API serves — implemented by
// repro.Service.
type Backend interface {
	// CanonicalID resolves an artifact id or alias to the canonical id
	// the backend serves it under; unknown ids error (matching
	// experiments.ErrUnknownID for the envelope's 404 mapping).
	CanonicalID(id string) (string, error)
	// Rendered returns one artifact rendered in one format; platform ""
	// means the backend's default.
	Rendered(ctx context.Context, platform, artifact string, f report.Format) (string, error)
	// Grid returns the sweep grid on a platform's base system over the
	// given axes (none selects the canonical default grid).
	Grid(platform string, axes ...sweep.Axis) (sweep.Grid, error)
	// Sweep executes (or returns the memoized) campaign for a grid.
	Sweep(ctx context.Context, g sweep.Grid) (*sweep.Campaign, error)
	// Scenarios, Workloads and IDs enumerate the served tables.
	Scenarios() []scenario.Spec
	Workloads() []registry.Entry
	IDs() []string
	// DefaultPlatform is the scenario an absent ?platform= resolves to.
	DefaultPlatform() string
}

// Config wires a Backend into the HTTP surface.
type Config struct {
	// Backend serves every /v1 route.
	Backend Backend
	// Logger receives one request-log line per request; nil disables
	// request logging.
	Logger *log.Logger
	// LegacyArtifacts and LegacySweep, when set, are mounted at the
	// pre-/v1 paths ("/" with its /artifacts/ subtree, and "/sweep") as
	// deprecated aliases: same behavior, plus Deprecation/Link headers
	// pointing successors out.
	LegacyArtifacts http.Handler
	LegacySweep     http.Handler
}

// New builds the versioned API handler: the /v1 routes and /healthz behind
// the middleware chain, with the legacy aliases (when configured) mounted
// beneath them.
func New(c Config) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/healthz", get(handleHealthz))
	mux.Handle("/v1", get(c.handleIndex))
	mux.Handle("/v1/", get(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, errNoRoute(r.URL.Path))
	}))
	mux.Handle("/v1/artifacts", get(c.handleArtifactIndex))
	mux.Handle("/v1/artifacts/{id}", get(c.handleArtifact))
	mux.Handle("/v1/platforms", get(c.handlePlatforms))
	mux.Handle("/v1/workloads", get(c.handleWorkloads))
	mux.Handle("/v1/sweep", get(c.handleSweep))
	if c.LegacyArtifacts != nil {
		mux.Handle("/", deprecated(c.LegacyArtifacts, "/v1/artifacts"))
	}
	if c.LegacySweep != nil {
		mux.Handle("/sweep", deprecated(c.LegacySweep, "/v1/sweep"))
	}
	return logging(c.Logger, recovery(mux))
}

// handleHealthz is the liveness probe: always 200, never touches the
// experiment engine.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleIndex describes the API: the served ids and names plus the route
// shapes, so `curl /v1` is self-documenting.
func (c Config) handleIndex(w http.ResponseWriter, r *http.Request) {
	scs := c.Backend.Scenarios()
	platforms := make([]string, len(scs))
	for i, sp := range scs {
		platforms[i] = sp.Name
	}
	ws := c.Backend.Workloads()
	workloads := make([]string, len(ws))
	for i, e := range ws {
		workloads[i] = e.Name
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"artifacts":        c.Backend.IDs(),
		"platforms":        platforms,
		"workloads":        workloads,
		"formats":          report.AcceptedFormats(),
		"default_platform": c.Backend.DefaultPlatform(),
		"routes": []string{
			"GET /healthz",
			"GET /v1",
			"GET /v1/artifacts",
			"GET /v1/artifacts/{id}?platform=&format=",
			"GET /v1/platforms?format=",
			"GET /v1/workloads?format=",
			"GET /v1/sweep?axis=&artifact=sweep|sensitivity&platform=&format=",
		},
	})
}

// handleArtifactIndex lists the artifact ids and the URL shape serving
// them.
func (c Config) handleArtifactIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"artifacts":        c.Backend.IDs(),
		"url":              "/v1/artifacts/{id}?platform={scenario}&format={text|json|csv}",
		"default_platform": c.Backend.DefaultPlatform(),
	})
}

// handleArtifact serves one rendered artifact. Only canonical ids name
// /v1 resources: a figure alias is a 404 whose message points at the
// canonical id, so every document is served from exactly one URL.
func (c Config) handleArtifact(w http.ResponseWriter, r *http.Request) {
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	canon, err := c.Backend.CanonicalID(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if canon != id {
		writeError(w, http.StatusNotFound, &experiments.AliasError{Alias: id, Canonical: canon})
		return
	}
	out, err := c.Backend.Rendered(r.Context(), r.URL.Query().Get("platform"), canon, f)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeRendered(w, f, out)
}

// handlePlatforms serves the scenario table as a negotiated document.
func (c Config) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	c.serveDoc(w, r, platformsDoc(c.Backend.Scenarios()))
}

// handleWorkloads serves the workload table as a negotiated document.
func (c Config) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	c.serveDoc(w, r, workloadsDoc(c.Backend.Workloads()))
}

// serveDoc renders a registry document in the negotiated format.
func (c Config) serveDoc(w http.ResponseWriter, r *http.Request, d report.Doc) {
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := report.Render(d, f)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeRendered(w, f, out)
}

// handleSweep executes a sweep campaign: each axis= parameter is one
// sweep.ParseAxis declaration (none keeps the platform's default grid),
// artifact= picks the "sweep" (default) or "sensitivity" view. Validation
// is the shared sweep validator — the same caps the library's
// Service.Sweep enforces — surfacing as 400s.
func (c Config) handleSweep(w http.ResponseWriter, r *http.Request) {
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	artifact := r.URL.Query().Get("artifact")
	if artifact == "" {
		artifact = "sweep"
	}
	if artifact != "sweep" && artifact != "sensitivity" {
		writeError(w, http.StatusBadRequest,
			errBadSweepArtifact(artifact))
		return
	}
	platform := r.URL.Query().Get("platform")
	var axes []sweep.Axis
	for _, s := range r.URL.Query()["axis"] {
		a, err := sweep.ParseAxis(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		axes = append(axes, a)
	}
	g, err := c.Backend.Grid(platform, axes...)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	camp, err := c.Backend.Sweep(r.Context(), g)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	var doc report.Doc
	if artifact == "sensitivity" {
		doc = camp.Sensitivity()
	} else {
		doc = camp.Sweep()
	}
	// Stamp the *scenario* name the request resolved to — not the grid's
	// machine-config name — so the platform field round-trips through
	// ?platform= and matches /v1/platforms (and what the CLI's seeded
	// store emits for the same campaign).
	if platform == "" {
		platform = c.Backend.DefaultPlatform()
	}
	doc.Platform = platform
	out, err := report.Render(doc, f)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeRendered(w, f, out)
}

// writeRendered emits a successful rendering with its media type.
func writeRendered(w http.ResponseWriter, f report.Format, out string) {
	w.Header().Set("Content-Type", report.ContentType(f))
	_, _ = w.Write([]byte(out))
}
