// Package nekrs implements the spectral-element CFD workload of the paper's
// Table 2 (NekRS turbPipePeriodic-style): a time-stepping loop applying the
// matrix-free spectral-element Laplacian to a continuous field on a 3D
// hexahedral mesh.
//
// The kernel is the real thing at small scale: Gauss–Lobatto–Legendre
// quadrature points and weights computed by Newton iteration on Legendre
// polynomials, the dense spectral differentiation matrix, per-element tensor
// contractions along each dimension, and gather/scatter between the global
// continuous field and element-local storage. The memory profile matches the
// paper: moderate-to-low arithmetic intensity, streaming element data with
// high prefetch coverage, and indexed gather/scatter traffic.
package nekrs

import (
	"math"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// NekRS is one solver instance.
type NekRS struct {
	// Ex, Ey, Ez are element counts per dimension; Order is the
	// polynomial order (Order+1 GLL nodes per dimension).
	Ex, Ey, Ez int
	Order      int
	// Steps is the number of time steps.
	Steps int
	Dt    float64

	// After Run: Energy is the final field energy (for determinism
	// checks) and NGlobal the number of global degrees of freedom.
	Energy  float64
	NGlobal int
}

// New returns a NekRS instance at input scale 1, 2 or 4. The element count
// doubles per scale step (the paper scales polynomial order; element-count
// scaling preserves the same 1:2:4 memory ratio with less run-time blowup).
func New(scale int) *NekRS {
	e := &NekRS{Ex: 8, Ey: 8, Ez: 8, Order: 5, Steps: 10, Dt: 1e-3}
	switch scale {
	case 2:
		e.Ez = 16
	case 4:
		e.Ey, e.Ez = 16, 16
	}
	return e
}

// Name implements workloads.Workload.
func (nk *NekRS) Name() string { return "NekRS" }

// Np returns nodes per element.
func (nk *NekRS) Np() int { n := nk.Order + 1; return n * n * n }

// gll computes the Gauss–Lobatto–Legendre points and weights on [-1,1] for
// n nodes (n >= 2) by Newton iteration on (1-x^2) P'_{n-1}(x).
func gll(n int) (x, w []float64) {
	x = make([]float64, n)
	w = make([]float64, n)
	x[0], x[n-1] = -1, 1
	for i := 1; i < n-1; i++ {
		// Chebyshev–Gauss–Lobatto initial guess.
		xi := -math.Cos(math.Pi * float64(i) / float64(n-1))
		for iter := 0; iter < 50; iter++ {
			p, dp := legendreAndDeriv(n-1, xi)
			// f(x) = (1-x^2) P'(x); f'(x) = -2x P' + (1-x^2) P''.
			// Using the Legendre ODE: (1-x^2)P'' = 2xP' - n(n+1)P.
			f := (1 - xi*xi) * dp
			df := -2*xi*dp + 2*xi*dp - float64(n-1)*float64(n)*p
			if df == 0 {
				break
			}
			step := f / df
			xi -= step
			if math.Abs(step) < 1e-15 {
				break
			}
		}
		x[i] = xi
	}
	for i := 0; i < n; i++ {
		p, _ := legendreAndDeriv(n-1, x[i])
		w[i] = 2 / (float64(n-1) * float64(n) * p * p)
	}
	return x, w
}

// legendreAndDeriv evaluates P_n and P'_n at x via the three-term recurrence.
func legendreAndDeriv(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	pm := 1.0
	p = x
	for k := 2; k <= n; k++ {
		pk := ((2*float64(k)-1)*x*p - (float64(k)-1)*pm) / float64(k)
		pm, p = p, pk
	}
	if x*x == 1 {
		dp = float64(n) * float64(n+1) / 2
		if x < 0 && n%2 == 0 {
			dp = -dp
		}
		return p, dp
	}
	dp = float64(n) * (x*p - pm) / (x*x - 1)
	return p, dp
}

// diffMatrix builds the spectral differentiation matrix on the GLL points:
// D[i][j] = l'_j(x_i) for Lagrange basis polynomials l_j.
func diffMatrix(x []float64) []float64 {
	n := len(x)
	d := make([]float64, n*n)
	// Barycentric weights.
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
		for j := range x {
			if j != i {
				c[i] *= x[i] - x[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d[i*n+j] = c[i] / (c[j] * (x[i] - x[j]))
			sum += d[i*n+j]
		}
		d[i*n+i] = -sum // rows of D sum to zero (derivative of constants)
	}
	return d
}

// Run implements workloads.Workload.
func (nk *NekRS) Run(m *machine.Machine) {
	n1 := nk.Order + 1
	np := nk.Np()
	nelem := nk.Ex * nk.Ey * nk.Ez
	gx := nk.Ex*nk.Order + 1
	gy := nk.Ey*nk.Order + 1
	gz := nk.Ez*nk.Order + 1
	nglobal := gx * gy * gz
	nk.NGlobal = nglobal

	// ---- p1: setup ----------------------------------------------------
	m.StartPhase("p1")
	pts, wts := gll(n1)
	dmat := diffMatrix(pts)
	dvec := workloads.NewVec(m, "D", n1*n1)
	copy(dvec.Data, dmat)
	dvec.WriteRange(0, n1*n1)

	// Geometric factors: one Jacobian-weighted quadrature weight per node
	// (unit cube elements, so the factor is the tensor weight product).
	geo := workloads.NewVec(m, "geo", nelem*np)
	ids := workloads.NewIntVec(m, "gather-ids", nelem*np)
	u := workloads.NewVec(m, "u", nglobal)
	rhs := workloads.NewVec(m, "rhs", nglobal)
	mass := workloads.NewVec(m, "mass", nglobal)

	elem := 0
	for ez := 0; ez < nk.Ez; ez++ {
		for ey := 0; ey < nk.Ey; ey++ {
			for ex := 0; ex < nk.Ex; ex++ {
				base := elem * np
				node := 0
				for c := 0; c < n1; c++ {
					for b := 0; b < n1; b++ {
						for a := 0; a < n1; a++ {
							gxi := ex*nk.Order + a
							gyi := ey*nk.Order + b
							gzi := ez*nk.Order + c
							gid := (gzi*gy+gyi)*gx + gxi
							ids.Data[base+node] = int32(gid)
							geo.Data[base+node] = wts[a] * wts[b] * wts[c]
							node++
						}
					}
				}
				ids.WriteRange(base, np)
				geo.WriteRange(base, np)
				m.AddFlops(float64(2 * np))
				elem++
			}
		}
	}
	// Initial condition: a smooth product of sines over the global grid;
	// assemble the diagonal mass matrix by scatter-adding element weights.
	for g := 0; g < nglobal; g++ {
		i := g % gx
		j := (g / gx) % gy
		k := g / (gx * gy)
		u.Data[g] = math.Sin(math.Pi*float64(i+1)/float64(gx+1)) *
			math.Sin(math.Pi*float64(j+1)/float64(gy+1)) *
			math.Sin(math.Pi*float64(k+1)/float64(gz+1))
	}
	u.WriteRange(0, nglobal)
	for e := 0; e < nelem; e++ {
		base := e * np
		ids.ReadRange(base, np)
		geo.ReadRange(base, np)
		for t := 0; t < np; t++ {
			mass.Data[ids.Data[base+t]] += geo.Data[base+t]
		}
		m.AddFlops(float64(np))
	}
	mass.WriteRange(0, nglobal)
	m.EndPhase()

	// ---- p2: time stepping --------------------------------------------
	m.StartPhase("p2")
	ue := make([]float64, np)
	w0 := make([]float64, np)
	w1 := make([]float64, np)
	w2 := make([]float64, np)
	lap := make([]float64, np)
	for step := 0; step < nk.Steps; step++ {
		// rhs = 0
		rhs.WriteRange(0, nglobal)
		for g := range rhs.Data {
			rhs.Data[g] = 0
		}
		for e := 0; e < nelem; e++ {
			base := e * np
			// Gather element field (indexed reads).
			ids.ReadRange(base, np)
			for t := 0; t < np; t++ {
				gid := int(ids.Data[base+t])
				ue[t] = u.Data[gid]
				m.Read(u.Addr(gid), 8)
			}
			// Tensor-contraction Laplacian:
			// lap = sum_d D_d^T (G . (D_d u)).
			dvec.ReadRange(0, n1*n1)
			geo.ReadRange(base, np)
			nk.applyLaplacian(dmat, geo.Data[base:base+np], ue, w0, w1, w2, lap, n1)
			m.AddFlops(float64(12*n1*np + 2*np))
			// Scatter-add (indexed writes).
			for t := 0; t < np; t++ {
				gid := int(ids.Data[base+t])
				rhs.Data[gid] += lap[t]
				m.Write(rhs.Addr(gid), 8)
			}
		}
		// Explicit diffusion update: u -= dt * M^-1 * rhs.
		u.ReadRange(0, nglobal)
		rhs.ReadRange(0, nglobal)
		mass.ReadRange(0, nglobal)
		u.WriteRange(0, nglobal)
		for g := 0; g < nglobal; g++ {
			u.Data[g] -= nk.Dt * rhs.Data[g] / mass.Data[g]
		}
		m.AddFlops(float64(3 * nglobal))
		m.Tick()
	}
	m.EndPhase()

	// Mass-weighted energy u'Mu: the Lyapunov function of the diffusion
	// semi-discretization (d/dt u'Mu = -2 u'Au <= 0).
	energy := 0.0
	for g, v := range u.Data {
		energy += mass.Data[g] * v * v
	}
	nk.Energy = energy
}

// applyLaplacian computes the element-local weak Laplacian via three tensor
// contractions per direction: w_d = D_d u, scaled by the geometric factor,
// then contracted back with D_d^T and accumulated.
func (nk *NekRS) applyLaplacian(d, g, u, w0, w1, w2, out []float64, n1 int) {
	np := n1 * n1 * n1
	// w0 = D_r u : derivative along the fastest (a) dimension.
	for k := 0; k < n1; k++ {
		for j := 0; j < n1; j++ {
			row := (k*n1 + j) * n1
			for i := 0; i < n1; i++ {
				s := 0.0
				for t := 0; t < n1; t++ {
					s += d[i*n1+t] * u[row+t]
				}
				w0[row+i] = s
			}
		}
	}
	// w1 = D_s u : derivative along b.
	for k := 0; k < n1; k++ {
		for i := 0; i < n1; i++ {
			for j := 0; j < n1; j++ {
				s := 0.0
				for t := 0; t < n1; t++ {
					s += d[j*n1+t] * u[(k*n1+t)*n1+i]
				}
				w1[(k*n1+j)*n1+i] = s
			}
		}
	}
	// w2 = D_t u : derivative along c.
	for j := 0; j < n1; j++ {
		for i := 0; i < n1; i++ {
			for k := 0; k < n1; k++ {
				s := 0.0
				for t := 0; t < n1; t++ {
					s += d[k*n1+t] * u[(t*n1+j)*n1+i]
				}
				w2[(k*n1+j)*n1+i] = s
			}
		}
	}
	// Scale by geometric factors.
	for t := 0; t < np; t++ {
		w0[t] *= g[t]
		w1[t] *= g[t]
		w2[t] *= g[t]
	}
	// out = D_r^T w0 + D_s^T w1 + D_t^T w2.
	for t := 0; t < np; t++ {
		out[t] = 0
	}
	for k := 0; k < n1; k++ {
		for j := 0; j < n1; j++ {
			row := (k*n1 + j) * n1
			for i := 0; i < n1; i++ {
				s := 0.0
				for t := 0; t < n1; t++ {
					s += d[t*n1+i] * w0[row+t]
				}
				out[row+i] += s
			}
		}
	}
	for k := 0; k < n1; k++ {
		for i := 0; i < n1; i++ {
			for j := 0; j < n1; j++ {
				s := 0.0
				for t := 0; t < n1; t++ {
					s += d[t*n1+j] * w1[(k*n1+t)*n1+i]
				}
				out[(k*n1+j)*n1+i] += s
			}
		}
	}
	for j := 0; j < n1; j++ {
		for i := 0; i < n1; i++ {
			for k := 0; k < n1; k++ {
				s := 0.0
				for t := 0; t < n1; t++ {
					s += d[t*n1+k] * w2[(t*n1+j)*n1+i]
				}
				out[(k*n1+j)*n1+i] += s
			}
		}
	}
}
