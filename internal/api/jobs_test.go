package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// postJob submits a JobRequest body and returns status, body and headers.
func postJob(t *testing.T, srv *httptest.Server, body string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out), resp.Header
}

// TestJobRoutes drives one campaign job across the whole HTTP surface:
// POST answers 202 with a Location, the status route reports progress
// until done, the events route streams NDJSON lines, and the artifact
// route serves the rendered results.
func TestJobRoutes(t *testing.T) {
	srv, _ := newTestServer(t)

	status, body, hdr := postJob(t, srv, `{"axes":["gen=0,5"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", status, body)
	}
	var rec jobs.Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("submit body %q: %v", body, err)
	}
	loc := hdr.Get("Location")
	if loc != "/v1/jobs/"+rec.ID || rec.ID == "" {
		t.Fatalf("Location = %q for job %q", loc, rec.ID)
	}
	if hdr.Get("Cache-Control") != "no-store" {
		t.Errorf("submit Cache-Control = %q, want no-store", hdr.Get("Cache-Control"))
	}

	// Poll the status route to done.
	deadline := time.Now().Add(time.Minute)
	for {
		st, _, b, _ := fetch(t, srv, http.MethodGet, loc, "")
		if st != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", loc, st, b)
		}
		if err := json.Unmarshal([]byte(b), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State == jobs.StateDone {
			break
		}
		if rec.State != jobs.StateRunning || time.Now().After(deadline) {
			t.Fatalf("job state = %s (%d/%d), want running→done", rec.State, rec.Done, rec.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec.Done != rec.Total || rec.Total != 3 { // (2 cells + base) × 1 workload
		t.Errorf("done job %d/%d tasks, want 3/3", rec.Done, rec.Total)
	}

	// The listing shows the job.
	st, ct, b, _ := fetch(t, srv, http.MethodGet, "/v1/jobs", "")
	if st != http.StatusOK || !strings.Contains(b, rec.ID) || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("GET /v1/jobs = %d %s: %s", st, ct, firstN(b, 120))
	}

	// Events: NDJSON, submitted → cell… → done.
	st, ct, b, ehdr := fetch(t, srv, http.MethodGet, loc+"/events", "")
	if st != http.StatusOK || ct != "application/x-ndjson" || ehdr.Get("Cache-Control") != "no-store" {
		t.Fatalf("GET events = %d %s (Cache-Control %q)", st, ct, ehdr.Get("Cache-Control"))
	}
	lines := strings.Split(strings.TrimSpace(b), "\n")
	if len(lines) != 5 { // submitted + 3 cells + done
		t.Fatalf("event log has %d lines: %s", len(lines), b)
	}
	var first, last jobs.Event
	if json.Unmarshal([]byte(lines[0]), &first) != nil || json.Unmarshal([]byte(lines[len(lines)-1]), &last) != nil {
		t.Fatalf("event lines do not parse: %s", b)
	}
	if first.Event != "submitted" || last.Event != "done" {
		t.Errorf("event log spans %s…%s, want submitted…done", first.Event, last.Event)
	}

	// Artifacts: text by default, csv via ?format=; the route is cacheable
	// (done artifacts are immutable).
	st, ct, b, ahdr := fetch(t, srv, http.MethodGet, loc+"/artifacts/sweep", "")
	if st != http.StatusOK || !strings.HasPrefix(ct, "text/plain") || !strings.Contains(b, "Campaign grid") {
		t.Errorf("GET sweep artifact = %d %s: %s", st, ct, firstN(b, 120))
	}
	if ahdr.Get("ETag") == "" || !strings.HasPrefix(ahdr.Get("Cache-Control"), "public") {
		t.Errorf("artifact route not cacheable: ETag %q, Cache-Control %q", ahdr.Get("ETag"), ahdr.Get("Cache-Control"))
	}
	st, ct, b, _ = fetch(t, srv, http.MethodGet, loc+"/artifacts/sensitivity?format=csv", "")
	if st != http.StatusOK || !strings.HasPrefix(ct, "text/csv") || !strings.Contains(b, ",") {
		t.Errorf("GET sensitivity csv = %d %s: %s", st, ct, firstN(b, 120))
	}

	// Resubmitting the identical declaration re-attaches (same id), and a
	// {"id": ...} body resumes explicitly — both 202 on the same resource.
	if st, b, h := postJob(t, srv, `{"axes":["gen=0,5"]}`); st != http.StatusAccepted || h.Get("Location") != loc {
		t.Errorf("resubmit = %d Location %q: %s", st, h.Get("Location"), firstN(b, 120))
	}
	if st, b, h := postJob(t, srv, `{"id":"`+rec.ID+`"}`); st != http.StatusAccepted || h.Get("Location") != loc {
		t.Errorf("resume by id = %d Location %q: %s", st, h.Get("Location"), firstN(b, 120))
	}
}

// TestJobRouteErrors pins the error envelope across the job surface:
// unknown ids are 404s, artifacts of unfinished jobs 409s, malformed
// declarations 400s, and wrong methods 405s — all in the one envelope.
func TestJobRouteErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	st, _, b, _ := fetch(t, srv, http.MethodGet, "/v1/jobs/feedfeedfeedfeed", "")
	envelope(t, b, st)
	if st != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", st)
	}
	st, _, b, _ = fetch(t, srv, http.MethodDelete, "/v1/jobs/feedfeedfeedfeed", "")
	envelope(t, b, st)
	if st != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", st)
	}

	// Malformed declarations: bad JSON, bad axis, resume+declaration mix.
	for _, body := range []string{`{not json`, `{"axes":["volts=1,2"]}`, `{"id":"x","axes":["gen=0"]}`} {
		st, b, _ := postJob(t, srv, body)
		envelope(t, b, st)
		if st != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, st)
		}
	}

	// Wrong method keeps the envelope and advertises the allowed set.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/jobs", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	envelope(t, string(out), resp.StatusCode)
	if resp.StatusCode != http.StatusMethodNotAllowed || !strings.Contains(resp.Header.Get("Allow"), "POST") {
		t.Errorf("PUT /v1/jobs = %d Allow %q, want 405 with POST", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// A slow job's artifact is a 409 (conflict: not done yet), and DELETE
	// cancels it.
	st, b2, hdr := postJob(t, srv, `{"axes":["lat=0:400:10"]}`)
	if st != http.StatusAccepted {
		t.Fatalf("POST slow job = %d: %s", st, b2)
	}
	loc := hdr.Get("Location")
	st, _, b, _ = fetch(t, srv, http.MethodGet, loc+"/artifacts/sweep", "")
	if st == http.StatusOK {
		t.Skip("campaign finished before the conflict check; machine too fast")
	}
	envelope(t, b, st)
	if st != http.StatusConflict {
		t.Errorf("artifact of running job = %d, want 409", st)
	}
	st, _, b, _ = fetch(t, srv, http.MethodDelete, loc, "")
	if st != http.StatusOK {
		t.Fatalf("DELETE running job = %d: %s", st, b)
	}
	var rec jobs.Record
	if err := json.Unmarshal([]byte(b), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != jobs.StateCancelled && rec.State != jobs.StateDone {
		t.Errorf("cancelled job state = %s", rec.State)
	}
}

func firstN(s string, n int) string {
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
