// Quickstart: run the paper's three-level profiling workflow on one
// workload, from general characteristics to multi-tier access ratios to
// interference sensitivity — the Figure 4 workflow in ~60 lines.
package main

import (
	"fmt"

	"repro"
)

func main() {
	platform := repro.DefaultPlatform()
	profiler := repro.NewProfiler(platform)

	entry, err := repro.Workload("Hypre")
	if err != nil {
		panic(err)
	}

	// Level 1: intrinsic requirements on the memory system — preserved
	// across memory configurations.
	l1 := profiler.Level1(entry, 1)
	fmt.Printf("=== Level 1: %s ===\n", entry.Name)
	fmt.Printf("peak footprint: %.1f MiB\n", float64(l1.PeakFootprint)/(1<<20))
	for _, ph := range l1.Phases {
		fmt.Printf("  phase %-3s AI=%.3f flop/B  throughput=%.2f Gflop/s  bandwidth=%.1f GB/s\n",
			ph.Name, ph.AI, ph.Throughput/1e9, ph.Bandwidth/1e9)
	}
	fmt.Printf("prefetching: accuracy %.0f%%, coverage %.0f%%, performance gain %.0f%%\n\n",
		l1.Accuracy*100, l1.Coverage*100, l1.PerformanceGain*100)

	// Level 2: the same application on a 50%-50% two-tier system. The two
	// reference points R_cap and R_BW bound the tuning space.
	l2 := profiler.Level2(entry, 1, 0.5)
	fmt.Println("=== Level 2: 50%-50% two-tier system ===")
	fmt.Printf("references: R_cap=%.0f%%  R_BW=%.0f%%\n", l2.RCap*100, l2.RBW*100)
	for _, ph := range l2.Phases {
		fmt.Printf("  phase %-3s remote access %.1f%%  -> %s\n",
			ph.Name, ph.RemoteAccessRatio*100, l2.Verdict(ph))
	}
	fmt.Println()

	// Level 3: sensitivity to memory-pool interference, and the
	// interference the application itself induces.
	l3 := profiler.Level3(entry, 1, 0.5, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5})
	fmt.Println("=== Level 3: interference on memory pooling ===")
	for i, loi := range l3.LoIs {
		fmt.Printf("  LoI=%2.0f%%: relative performance %.3f\n", loi*100, l3.Relative[i])
	}
	fmt.Printf("induced interference coefficient: %.3f (min %.3f, max %.3f)\n",
		l3.ICMean, l3.ICLo, l3.ICHi)
	fmt.Printf("deployment advice: %s\n", l3.DeploymentAdvice())
}
