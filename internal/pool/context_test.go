package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachContextCancelSequential pins the sequential cancellation
// contract: the task that observes the cancel is the last to run, every
// later index is skipped, and Err reports the context error.
func TestForEachContextCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var l *Limiter // nil: sequential
	cl := l.WithContext(ctx)
	ran := 0
	cl.ForEach(10, func(i int) {
		ran++
		if i == 2 {
			cancel()
		}
	})
	if ran != 3 {
		t.Errorf("ran %d tasks after cancel at index 2, want 3", ran)
	}
	if !errors.Is(cl.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", cl.Err())
	}
}

// TestForEachContextCancelParallel checks the parallel path: after a task
// cancels, the claim counter stops handing out indices (in-flight tasks
// finish), ForEach returns without leaking workers, and Err reports the
// cancellation.
func TestForEachContextCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cl := NewLimiter(4).WithContext(ctx)
	var ran atomic.Int64
	cl.ForEach(1000, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if n := ran.Load(); n < 5 || n >= 1000 {
		t.Errorf("ran %d of 1000 tasks, want >=5 (cancel fired) and <1000 (claiming stopped)", n)
	}
	if !errors.Is(cl.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", cl.Err())
	}
}

// TestWithContextChains pins the chain semantics: wrapping an
// already-gated limiter with a fresh (even background) context never
// un-cancels the outer gate, and the shared budget is preserved.
func TestWithContextChains(t *testing.T) {
	outer, cancel := context.WithCancel(context.Background())
	cancel()
	l := NewLimiter(4).WithContext(outer)
	rewrapped := l.WithContext(context.Background())
	if !errors.Is(rewrapped.Err(), context.Canceled) {
		t.Fatalf("rewrapping with a background context dropped the outer cancel: Err() = %v", rewrapped.Err())
	}
	ran := false
	rewrapped.ForEach(4, func(int) { ran = true })
	if ran {
		t.Error("task ran under a cancelled outer context")
	}
	// An untouched limiter is unaffected by derived gates.
	base := NewLimiter(2)
	_ = base.WithContext(outer)
	if base.Err() != nil {
		t.Errorf("deriving a gated limiter mutated the base: Err() = %v", base.Err())
	}
}

// TestMapContextCancelLeavesZeroSlots checks the documented contract that
// skipped indices keep their zero values, so a caller that consults Err
// never consumes a partial result unknowingly.
func TestMapContextCancelLeavesZeroSlots(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := NewLimiter(1).WithContext(ctx)
	out := Map(cl, 4, func(i int) int { return i + 1 })
	for i, v := range out {
		if v != 0 {
			t.Errorf("out[%d] = %d under a pre-cancelled context, want 0", i, v)
		}
	}
	if !errors.Is(cl.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", cl.Err())
	}
}
