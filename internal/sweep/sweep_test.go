package sweep

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workloads/registry"
)

func TestParseAxis(t *testing.T) {
	tests := []struct {
		in   string
		want []float64
		err  bool
	}{
		{in: "gen=0,5,6", want: []float64{0, 5, 6}},
		{in: "frac=0.25:0.75:0.25", want: []float64{0.25, 0.50, 0.75}},
		{in: "lat=0:400:100", want: []float64{0, 100, 200, 300, 400}},
		{in: "bw=0.5,1,2", want: []float64{0.5, 1, 2}},
		{in: "frac=0.5", want: []float64{0.5}},
		{in: "gen=7", err: true},     // unknown generation
		{in: "frac=1.5", err: true},  // outside (0,1)
		{in: "frac=0", err: true},    // outside (0,1)
		{in: "bw=0", err: true},      // non-positive scale
		{in: "lat=-5", err: true},    // negative added latency
		{in: "volts=1,2", err: true}, // unknown axis
		{in: "gen", err: true},       // no values
		{in: "=1,2", err: true},      // no name
		{in: "frac=a,b", err: true},  // non-numeric
		{in: "lat=5:1:1", err: true}, // hi < lo
		{in: "lat=1:5:0", err: true}, // zero step
		{in: "frac=0.1:0.9:0.2", want: []float64{0.1, 0.3, 0.5, 0.7, 0.9}},
	}
	for _, tc := range tests {
		a, err := ParseAxis(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseAxis(%q): want error, got %v", tc.in, a.Values)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAxis(%q): %v", tc.in, err)
			continue
		}
		if len(a.Values) != len(tc.want) {
			t.Errorf("ParseAxis(%q) = %v, want %v", tc.in, a.Values, tc.want)
			continue
		}
		for i, v := range a.Values {
			if diff := v - tc.want[i]; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("ParseAxis(%q)[%d] = %v, want %v", tc.in, i, v, tc.want[i])
			}
		}
	}
}

// TestParseAxisRangeEdges pins the lo:hi:step expansion at its numeric
// edges: inclusive endpoints appear exactly once even when the step does
// not divide the span in binary floating point, the value count sits
// exactly on the MaxAxisValues boundary (the historical pts+1 off-by-one
// lived here), and degenerate steps — denormals, NaN, infinities — either
// expand to a finite monotone axis or fail validation, never hang or
// allocate an astronomical slice.
func TestParseAxisRangeEdges(t *testing.T) {
	tests := []struct {
		name string
		in   string
		n    int     // expected value count (when err is false)
		last float64 // expected final value
		err  bool
	}{
		// Endpoint handling: hi is included exactly once, for steps that
		// divide the span exactly and for binary-inexact ones; a zero-span
		// range is the single point lo.
		{name: "exact step includes hi once", in: "lat=0:400:100", n: 5, last: 400},
		{name: "inexact step still lands on hi", in: "frac=0.1:0.3:0.1", n: 3, last: 0.3},
		{name: "step past hi stops at lo", in: "lat=0:5:10", n: 1, last: 0},
		{name: "zero-span range is one point", in: "lat=250:250:50", n: 1, last: 250},
		// The MaxAxisValues boundary: lat=0:1023:1 expands to exactly 1024
		// values (the cap), one more point is rejected — the off-by-one
		// either way would admit 1025 values or reject 1024.
		{name: "exactly MaxAxisValues accepted", in: "lat=0:1023:1", n: MaxAxisValues, last: 1023},
		{name: "MaxAxisValues+1 rejected", in: "lat=0:1024:1", err: true},
		{name: "astronomical range rejected", in: "lat=0:1e12:1", err: true},
		// Degenerate steps: a denormal step over a finite span would yield
		// ~1e308 points — the cap must trip before any allocation. A
		// denormal *span* with a proportionate step is legitimate. NaN and
		// infinity fail the range guard (NaN compares false both ways, so
		// this is the regression pin for the negated-comparison guard).
		{name: "denormal step over real span", in: "frac=0.1:0.9:5e-324", err: true},
		{name: "denormal step zero span", in: "frac=0.5:0.5:5e-324", n: 1, last: 0.5},
		{name: "denormal span and step", in: "lat=0:1e-320:1e-321", n: 11, last: 1e-320},
		{name: "NaN step", in: "lat=0:10:NaN", err: true},
		{name: "NaN hi", in: "lat=0:NaN:1", err: true},
		{name: "NaN lo", in: "lat=NaN:10:1", err: true},
		{name: "infinite hi", in: "lat=0:+Inf:1", err: true},
		{name: "infinite step", in: "lat=0:10:+Inf", err: true}, // lo + 0*Inf is NaN, caught by value validation
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a, err := ParseAxis(tc.in)
			if tc.err {
				if err == nil {
					t.Fatalf("ParseAxis(%q) = %v, want error", tc.in, a.Values)
				}
				if !errors.Is(err, ErrInvalid) {
					t.Fatalf("ParseAxis(%q) error %v does not match ErrInvalid", tc.in, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseAxis(%q): %v", tc.in, err)
			}
			if len(a.Values) != tc.n {
				t.Fatalf("ParseAxis(%q) yields %d values, want %d", tc.in, len(a.Values), tc.n)
			}
			for i := 1; i < len(a.Values); i++ {
				if a.Values[i] <= a.Values[i-1] {
					t.Fatalf("ParseAxis(%q) not strictly increasing at [%d]: %v", tc.in, i, a.Values)
				}
			}
			got := a.Values[len(a.Values)-1]
			if diff := got - tc.last; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("ParseAxis(%q) final value = %v, want %v", tc.in, got, tc.last)
			}
		})
	}
}

func TestGridPointsNamesAndOrder(t *testing.T) {
	g := Grid{Base: scenario.Default(), Axes: []Axis{
		{Name: "gen", Values: []float64{0, 5}},
		{Name: "frac", Values: []float64{0.25, 0.75}},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	pts, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"gen=0,frac=0.25", "gen=0,frac=0.75", "gen=5,frac=0.25", "gen=5,frac=0.75",
	}
	if len(pts) != len(wantNames) || g.Size() != len(wantNames) {
		t.Fatalf("got %d points, Size %d, want %d", len(pts), g.Size(), len(wantNames))
	}
	for i, p := range pts {
		if p.Spec.Name != wantNames[i] {
			t.Errorf("point %d named %q, want %q (last axis must vary fastest)", i, p.Spec.Name, wantNames[i])
		}
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("point %d invalid: %v", i, err)
		}
		if p.Spec.HeadlineFraction != p.Coords[1].Value {
			t.Errorf("point %d: frac axis not applied: headline %v, coord %v",
				i, p.Spec.HeadlineFraction, p.Coords[1].Value)
		}
	}
	// gen=0 keeps the base link; gen=5 swaps in the preset.
	base := scenario.Default().Platform.Link
	if pts[0].Spec.Platform.Link != base {
		t.Error("gen=0 should keep the base link")
	}
	if pts[2].Spec.Platform.Link.DataBandwidth != LinkGenerations[5].DataBandwidth {
		t.Error("gen=5 should install the generation preset")
	}
	// Cells share the base platform name so profiler caches can be shared
	// across cells with identical physics.
	if pts[0].Spec.Platform.Name != scenario.Default().Platform.Name {
		t.Errorf("cell platform renamed to %q; cells must keep the base platform name", pts[0].Spec.Platform.Name)
	}
}

// TestLinkGenerationsTrackRegistry pins the single-source-of-truth rule:
// the gen=5/gen=6 presets must be exactly the registry scenarios' links,
// so recalibrating a registry entry recalibrates the sweep.
func TestLinkGenerationsTrackRegistry(t *testing.T) {
	for gen, name := range map[int]string{5: "cxl-gen5", 6: "cxl-gen6"} {
		sp, err := scenario.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		lg := LinkGenerations[gen]
		l := sp.Platform.Link
		if lg.DataBandwidth != l.DataBandwidth || lg.PeakTraffic != l.PeakTraffic ||
			lg.Latency != l.Latency || lg.Overhead != l.Overhead {
			t.Errorf("gen %d preset %+v diverges from scenario %s link %+v", gen, lg, name, l)
		}
	}
	if _, ok := LinkGenerations[4]; !ok {
		t.Error("generation 4 preset missing")
	}
}

// TestSizeCaps pins the request-safety bounds: oversized ranges and grids
// must be rejected by validation before anything allocates.
func TestSizeCaps(t *testing.T) {
	if _, err := ParseAxis("lat=0:1e12:1"); err == nil {
		t.Error("ParseAxis should reject an astronomically sized range")
	}
	big := Axis{Name: "lat", Values: make([]float64, MaxAxisValues+1)}
	if err := big.Validate(); err == nil {
		t.Error("Axis.Validate should reject more than MaxAxisValues values")
	}
	wide := func() Axis {
		a := Axis{Name: "lat"}
		for i := 0; i < 100; i++ {
			a.Values = append(a.Values, float64(i))
		}
		return a
	}()
	frac := Axis{Name: "frac", Values: func() []float64 {
		var vs []float64
		for i := 1; i <= 100; i++ {
			vs = append(vs, float64(i)/101)
		}
		return vs
	}()}
	g := Grid{Base: scenario.Default(), Axes: []Axis{wide, frac}} // 10000 cells
	// Big grids are no longer a library error — they run through the job
	// manager — but the synchronous request boundary still refuses them,
	// pointing at the jobs surface.
	if err := g.Validate(); err != nil {
		t.Errorf("Grid.Validate should accept %d cells (big grids go through jobs): %v", g.Size(), err)
	}
	err := CheckSyncSize(g)
	if err == nil || !strings.Contains(err.Error(), "max") || !strings.Contains(err.Error(), "jobs") {
		t.Errorf("CheckSyncSize should reject %d cells with a pointer at jobs: %v", g.Size(), err)
	}
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("CheckSyncSize error should match ErrInvalid, got %v", err)
	}
	if err := CheckSyncSize(Grid{Base: scenario.Default()}); err != nil {
		t.Errorf("CheckSyncSize rejected a 1-cell grid: %v", err)
	}
}

func TestGridValidateRejects(t *testing.T) {
	base := scenario.Default()
	tests := []struct {
		name string
		g    Grid
	}{
		{"duplicate axis", Grid{Base: base, Axes: []Axis{
			{Name: "frac", Values: []float64{0.5}}, {Name: "frac", Values: []float64{0.25}}}}},
		{"unknown axis", Grid{Base: base, Axes: []Axis{{Name: "volts", Values: []float64{1}}}}},
		{"empty axis", Grid{Base: base, Axes: []Axis{{Name: "gen"}}}},
		{"invalid base", Grid{Axes: []Axis{{Name: "frac", Values: []float64{0.5}}}}},
	}
	for _, tc := range tests {
		if err := tc.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid grid", tc.name)
		}
	}
}

// quickEntries trims the workload table to the two cheapest applications
// so the quick tier can execute campaigns end-to-end.
func quickEntries() []registry.Entry {
	var picked []registry.Entry
	for _, e := range registry.All() {
		switch e.Name {
		case "HPL", "Hypre":
			picked = append(picked, e)
		}
	}
	return picked
}

// quickGrid is a 2x2 generation x capacity-fraction campaign.
func quickGrid() Grid {
	return Grid{Base: scenario.Default(), Axes: []Axis{
		{Name: "gen", Values: []float64{0, 5}},
		{Name: "frac", Values: []float64{0.25, 0.75}},
	}}
}

// runQuick executes the quick campaign under the given worker budget and
// renders both artifacts in text and JSON.
func runQuick(t *testing.T, workers int) map[string]string {
	t.Helper()
	r := &Runner{Grid: quickGrid(), Entries: quickEntries(), Runs: 5}
	c, err := r.Run(pool.NewLimiter(workers))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for name, doc := range map[string]report.Doc{"sweep": c.Sweep(), "sensitivity": c.Sensitivity()} {
		out[name+".txt"] = report.RenderText(doc)
		js, err := report.RenderJSON(doc)
		if err != nil {
			t.Fatal(err)
		}
		out[name+".json"] = js
	}
	return out
}

// TestCampaignDeterministicAcrossWorkers is the engine's quick-tier
// byte-identical guarantee for sweeps: a 2x2 campaign renders exactly the
// same sweep and sensitivity documents (text and JSON) at -j 1 and -j 8,
// on independent cold runners.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	seq := runQuick(t, 1)
	par := runQuick(t, 8)
	for name, want := range seq {
		if got := par[name]; got != want {
			t.Errorf("%s: workers=8 render differs from workers=1 (%d vs %d bytes)",
				name, len(got), len(want))
		}
		if len(want) == 0 {
			t.Errorf("%s renders empty", name)
		}
	}
}

// TestCampaignShape pins the aggregate structure of a campaign: rows for
// every (cell, workload) pair, base reference present, frontier indices
// consistent with the scores.
func TestCampaignShape(t *testing.T) {
	r := &Runner{Grid: quickGrid(), Entries: quickEntries(), Runs: 5}
	var last int
	r.Progress = func(done, total int) {
		if total != 10 { // (4 cells + base) x 2 workloads
			t.Errorf("progress total = %d, want 10", total)
		}
		last = done
	}
	c, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if last != 10 {
		t.Errorf("progress saw %d completions, want 10", last)
	}
	if len(c.Points) != 4 || len(c.Cells) != 4 || len(c.Base) != 2 {
		t.Fatalf("campaign shape: %d points, %d rows, %d base cells", len(c.Points), len(c.Cells), len(c.Base))
	}
	if c.Best < 0 || c.Worst < 0 || c.Scores[c.Best] < c.Scores[c.Worst] {
		t.Errorf("frontier inconsistent: best %d (%v) worst %d (%v)",
			c.Best, c.Scores[c.Best], c.Worst, c.Scores[c.Worst])
	}
	for pi, row := range c.Cells {
		for wi, cl := range row {
			if cl.Workload != c.Workloads[wi] {
				t.Errorf("cell [%d][%d] workload %q, want %q", pi, wi, cl.Workload, c.Workloads[wi])
			}
			if cl.Cell != c.Points[pi].Spec.Name {
				t.Errorf("cell [%d][%d] named %q, want %q", pi, wi, cl.Cell, c.Points[pi].Spec.Name)
			}
			if cl.RelPerf50 <= 0 || cl.RelPerf50 > 1.05 {
				t.Errorf("cell %s/%s: implausible RelPerf50 %v", cl.Cell, cl.Workload, cl.RelPerf50)
			}
		}
	}
	// A lower local fraction must not lower the remote access ratio.
	for wi := range c.Workloads {
		if c.Cells[0][wi].RemoteAccess < c.Cells[1][wi].RemoteAccess {
			t.Errorf("%s: frac=0.25 remote access (%v) below frac=0.75 (%v)",
				c.Workloads[wi], c.Cells[0][wi].RemoteAccess, c.Cells[1][wi].RemoteAccess)
		}
	}
}

// TestHandler exercises the /sweep endpoint: default grid, custom axes,
// artifact/format selection, and the error paths.
func TestHandler(t *testing.T) {
	campaigns := 0
	h := Handler(
		func(platform string) (Grid, error) {
			if platform != "" && platform != "baseline" {
				return Grid{}, scenarioErr(platform)
			}
			return quickGrid(), nil
		},
		func(ctx context.Context, platform string, g Grid) (*Campaign, error) {
			campaigns++
			r := &Runner{Grid: g, Entries: quickEntries(), Runs: 2}
			return r.RunContext(ctx, nil)
		})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(q string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/sweep" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get(""); code != http.StatusOK || !strings.Contains(body, "Campaign grid") {
		t.Errorf("GET /sweep = %d, body %q", code, firstLine(body))
	}
	if code, body := get("?artifact=sensitivity&format=json"); code != http.StatusOK || !strings.Contains(body, `"artifact": "sensitivity"`) {
		t.Errorf("GET sensitivity json = %d, body %q", code, firstLine(body))
	}
	if code, body := get("?axis=frac=0.5&format=csv"); code != http.StatusOK || !strings.Contains(body, "frac=0.5") {
		t.Errorf("GET custom axis csv = %d, body %q", code, firstLine(body))
	}
	if code, _ := get("?axis=volts=1"); code != http.StatusBadRequest {
		t.Errorf("unknown axis: got %d, want 400", code)
	}
	if code, _ := get("?format=yaml"); code != http.StatusBadRequest {
		t.Errorf("unknown format: got %d, want 400", code)
	}
	if code, _ := get("?artifact=figure9"); code != http.StatusBadRequest {
		t.Errorf("unknown artifact: got %d, want 400", code)
	}
	if code, _ := get("?platform=nope"); code != http.StatusNotFound {
		t.Errorf("unknown platform: got %d, want 404", code)
	}
	// Only the three well-formed requests should have executed a campaign
	// (memoization across requests is the wiring's job, not the handler's).
	if campaigns != 3 {
		t.Errorf("run called %d times, want 3", campaigns)
	}
}

func scenarioErr(platform string) error {
	_, err := scenario.Get(platform)
	return err
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
