// Command swbench benchmarks the sweep engine's cross-cell profile
// sharing: one campaign grid is executed in isolated mode (a private
// profile cache per distinct platform — the pre-sharing behaviour) and in
// shared mode (one dependency-keyed cache across every cell), with the
// wall-clock median, cells/second and cache hit/miss/join counters of each
// written as one JSON document — the file BENCH_sweep.json commits so the
// sweep-performance trajectory is tracked across PRs.
//
//	swbench -out BENCH_sweep.json
//	swbench -axis gen=0,5,6 -axis lat=0:400:100 -runs 20 -reps 3
//	swbench -axis gen=0,5 -runs 2 -reps 1 -workloads HPL   # CI smoke
//
// The default grid sweeps link generation x added link latency — a
// link-axis-dominated campaign, which is exactly where dependency-keyed
// sharing pays: workload execution, Level-1 profiles and scaling curves
// are link-independent, and Level-2 splits are latency-independent, so
// most of the per-cell profiling collapses onto a few distinct keys. The
// harness cross-checks that both modes render byte-identical artifacts on
// every run; the speedup is pure saved work, never changed results.
//
// See docs/CLI.md for the complete flag reference and
// docs/ARCHITECTURE.md for the dependency-key design.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenario"
	"repro/internal/swbench"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swbench", flag.ContinueOnError)
	platform := fs.String("platform", "baseline", "base platform scenario of the grid")
	runs := fs.Int("runs", 25, "Monte-Carlo scheduler runs per cell")
	reps := fs.Int("reps", 3, "cold-cache executions per mode (the report's p50 is their median)")
	workers := fs.Int("j", 1, "parallel workers per execution")
	out := fs.String("out", "", "write the JSON result to this file (default: stdout)")
	workloadList := fs.String("workloads", "", "comma-separated workload subset (default: all six)")
	quiet := fs.Bool("q", false, "suppress per-rep progress lines on stderr")
	var axes []sweep.Axis
	fs.Func("axis", "swept axis, name=v1,v2,... or name=lo:hi:step (repeatable; default: gen=0,4,5,6 lat=0:400:100)", func(s string) error {
		a, err := sweep.ParseAxis(s)
		if err != nil {
			return err
		}
		axes = append(axes, a)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected arguments: %v", rest)
	}
	if axes == nil {
		// The committed benchmark grid: every link generation crossed with
		// five added latencies. 20 cells sharing 4 distinct links' physics.
		for _, s := range []string{"gen=0,4,5,6", "lat=0:400:100"} {
			a, err := sweep.ParseAxis(s)
			if err != nil {
				return err
			}
			axes = append(axes, a)
		}
	}
	sp, err := scenario.Get(*platform)
	if err != nil {
		return err
	}
	var entries []registry.Entry
	if *workloadList != "" {
		for _, name := range strings.Split(*workloadList, ",") {
			e, err := registry.Get(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			entries = append(entries, e)
		}
	}
	cfg := swbench.Config{
		Grid:    sweep.Grid{Base: sp, Axes: axes},
		Entries: entries,
		Runs:    *runs,
		Reps:    *reps,
		Workers: *workers,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "swbench: "+format+"\n", args...)
		}
	}
	res, err := swbench.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "swbench: %d cells, %dx speedup (isolated p50 %.2fs -> shared p50 %.2fs), wrote %s\n",
		res.Cells, int(res.Speedup), res.Isolated.P50Seconds, res.Shared.P50Seconds, *out)
	return nil
}
