package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// streamPhase runs a simple streaming phase over size bytes and returns its
// stats.
func streamPhase(t *testing.T, cfg Config, size uint64) PhaseStats {
	t.Helper()
	m := New(cfg)
	r := m.Alloc("a", size)
	m.StartPhase("p1")
	m.Read(r.Base, size)
	m.AddFlops(float64(size) / 8)
	return m.EndPhase()
}

func TestSingleTierAllLocal(t *testing.T) {
	p := streamPhase(t, Default(), 1<<20)
	if p.RemoteBytes != 0 {
		t.Errorf("remote bytes on unbounded local = %d, want 0", p.RemoteBytes)
	}
	if p.LocalBytes == 0 {
		t.Errorf("no local traffic recorded")
	}
	if p.RemoteAccessRatio != 0 {
		t.Errorf("remote access ratio = %v, want 0", p.RemoteAccessRatio)
	}
}

func TestCapacitySpillProducesRemoteTraffic(t *testing.T) {
	cfg := Default().WithLocalCapacity(512 * 1024)
	p := streamPhase(t, cfg, 1<<20)
	if p.RemoteBytes == 0 {
		t.Fatalf("expected remote traffic with local capped at half the footprint")
	}
	// Streaming uniformly over a 50%-local footprint: remote access ratio
	// should be near the capacity ratio (0.5).
	if p.RemoteAccessRatio < 0.35 || p.RemoteAccessRatio > 0.65 {
		t.Errorf("remote access ratio = %v, want ~0.5", p.RemoteAccessRatio)
	}
	if p.RemoteCapacityRatio < 0.45 || p.RemoteCapacityRatio > 0.55 {
		t.Errorf("remote capacity ratio = %v, want ~0.5", p.RemoteCapacityRatio)
	}
}

func TestPhaseTimeComputeBound(t *testing.T) {
	cfg := Default()
	p := PhaseStats{Flops: 250e9, LocalBytes: 1000} // 1 s of compute
	tm := cfg.PhaseTime(p, 0)
	if tm < 0.99 || tm > 1.05 {
		t.Errorf("compute-bound time = %v, want ~1.0", tm)
	}
	// Compute-bound phases are insensitive to interference.
	if s := cfg.Sensitivity([]PhaseStats{p}, 0.5); s < 0.999 {
		t.Errorf("compute-bound sensitivity at LoI=50 = %v, want ~1", s)
	}
}

func TestPhaseTimeLocalBandwidthBound(t *testing.T) {
	cfg := Default()
	p := PhaseStats{LocalBytes: 73e9} // 1 s of local streaming
	tm := cfg.PhaseTime(p, 0)
	if tm < 0.99 || tm > 1.05 {
		t.Errorf("local-BW-bound time = %v, want ~1.0", tm)
	}
}

func TestInterferenceSlowsRemoteTraffic(t *testing.T) {
	cfg := Default()
	p := PhaseStats{
		RemoteBytes:      10e9,
		LocalBytes:       10e9,
		DemandMissRemote: 10e9 / 64 / 4, // 25% uncovered
	}
	t0 := cfg.PhaseTime(p, 0)
	t50 := cfg.PhaseTime(p, 0.5)
	if t50 <= t0 {
		t.Errorf("LoI=50 time %v should exceed LoI=0 time %v", t50, t0)
	}
	s := cfg.Sensitivity([]PhaseStats{p}, 0.5)
	if s >= 1 || s < 0.3 {
		t.Errorf("sensitivity = %v, want in [0.3, 1)", s)
	}
}

func TestSensitivityMonotoneInLoI(t *testing.T) {
	cfg := Default()
	p := PhaseStats{RemoteBytes: 20e9, LocalBytes: 30e9, DemandMissRemote: 50e6}
	prev := 1.01
	for _, loi := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		s := cfg.Sensitivity([]PhaseStats{p}, loi)
		if s > prev+1e-9 {
			t.Errorf("sensitivity increased at LoI=%v: %v > %v", loi, s, prev)
		}
		prev = s
	}
}

func TestZeroRemoteInsensitive(t *testing.T) {
	cfg := Default()
	p := PhaseStats{LocalBytes: 50e9, Flops: 1e9, DemandMissLocal: 1e6}
	if s := cfg.Sensitivity([]PhaseStats{p}, 0.5); s < 0.999 {
		t.Errorf("no-remote-traffic sensitivity = %v, want ~1", s)
	}
}

func TestTickTimeline(t *testing.T) {
	m := New(Default())
	r := m.Alloc("a", 1<<20)
	m.StartPhase("p")
	for i := 0; i < 4; i++ {
		m.Read(r.Base, 1<<18)
		m.AddFlops(100)
		m.Tick()
	}
	p := m.EndPhase()
	if len(p.Ticks) != 4 {
		t.Fatalf("ticks = %d, want 4", len(p.Ticks))
	}
	if p.Ticks[0].LinesIn == 0 {
		t.Errorf("first tick has no traffic")
	}
	// Later ticks re-stream cached data: traffic drops after the first.
	if p.Ticks[3].LinesIn > p.Ticks[0].LinesIn {
		t.Errorf("tick traffic should not grow when re-streaming: %v vs %v",
			p.Ticks[3].LinesIn, p.Ticks[0].LinesIn)
	}
	var sumFlops float64
	for _, tk := range p.Ticks {
		sumFlops += tk.Flops
	}
	if sumFlops != p.Flops {
		t.Errorf("tick flops sum %v != phase flops %v", sumFlops, p.Flops)
	}
}

func TestPhaseAccounting(t *testing.T) {
	m := New(Default())
	r := m.Alloc("a", 1<<20)
	m.StartPhase("init")
	m.Write(r.Base, 1<<20)
	m.EndPhase()
	m.StartPhase("compute")
	m.Read(r.Base, 1<<20)
	m.AddFlops(42)
	p2 := m.EndPhase()
	if p2.Flops != 42 {
		t.Errorf("phase flops = %v, want 42", p2.Flops)
	}
	phases := m.Phases()
	if len(phases) != 2 || phases[0].Name != "init" || phases[1].Name != "compute" {
		t.Fatalf("unexpected phases: %+v", phases)
	}
	if _, ok := m.Phase("compute"); !ok {
		t.Errorf("Phase lookup failed")
	}
}

func TestPrefetchReducesDemandMisses(t *testing.T) {
	run := func(pf bool) PhaseStats {
		m := New(Default().WithPrefetch(pf))
		r := m.Alloc("a", 4<<20)
		m.StartPhase("p")
		m.Read(r.Base, 4<<20)
		return m.EndPhase()
	}
	with := run(true)
	without := run(false)
	if with.Cache.DemandMisses >= without.Cache.DemandMisses {
		t.Errorf("prefetch should cut demand misses: with=%d without=%d",
			with.Cache.DemandMisses, without.Cache.DemandMisses)
	}
	// Without the prefetcher the sequential misses are still recognized as
	// stream misses (overlapped by OoO), not latency-exposed random misses.
	if without.StreamMissLocal == 0 {
		t.Error("sequential scan without prefetch should record stream misses")
	}
	if without.DemandMissLocal > without.StreamMissLocal/4 {
		t.Errorf("random misses (%d) should be a small fraction of stream misses (%d)",
			without.DemandMissLocal, without.StreamMissLocal)
	}
	// Latency-bound term shrinks, so the phase gets faster with prefetch.
	cfg := Default()
	if cfg.PhaseTime(with, 0) >= cfg.PhaseTime(without, 0) {
		t.Errorf("prefetch-enabled phase should be faster")
	}
}

func TestBandwidthRatioReference(t *testing.T) {
	cfg := Default()
	got := cfg.BandwidthRatio()
	want := 34e9 / (34e9 + 73e9)
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("bandwidth ratio = %v, want %v", got, want)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	p := PhaseStats{Flops: 640, LocalBytes: 64}
	if ai := p.ArithmeticIntensity(); ai != 10 {
		t.Errorf("AI = %v, want 10", ai)
	}
	if ai := (PhaseStats{}).ArithmeticIntensity(); ai != 0 {
		t.Errorf("empty AI = %v, want 0", ai)
	}
}

// Property: phase time is positive and non-decreasing in LoI for any stats.
func TestPhaseTimeMonotoneProperty(t *testing.T) {
	cfg := Default()
	f := func(localMB, remoteMB, missK uint16, flopsM uint32) bool {
		p := PhaseStats{
			Flops:            float64(flopsM) * 1e6,
			LocalBytes:       uint64(localMB) * 1e6,
			RemoteBytes:      uint64(remoteMB) * 1e6,
			DemandMissRemote: uint64(missK) * 1000,
		}
		prev := 0.0
		for _, loi := range []float64{0, 0.25, 0.5} {
			tm := cfg.PhaseTime(p, loi)
			if tm <= 0 || tm < prev-1e-12 {
				return false
			}
			prev = tm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlacedAllocation(t *testing.T) {
	m := New(Default().WithLocalCapacity(1 << 20))
	r := m.AllocPlaced("remote-only", 4096, mem.PlaceRemote)
	m.StartPhase("p")
	m.Read(r.Base, 4096)
	p := m.EndPhase()
	if p.RemoteBytes == 0 {
		t.Errorf("forced-remote region produced no remote traffic")
	}
}
