// Package registry enumerates the six evaluated workloads of the paper's
// Table 2 with their descriptions, parallelization models, and the three
// scaled input problems, and constructs instances for the experiment
// drivers.
package registry

import (
	"fmt"

	"repro/internal/workloads"
	"repro/internal/workloads/bfs"
	"repro/internal/workloads/hpl"
	"repro/internal/workloads/hypre"
	"repro/internal/workloads/nekrs"
	"repro/internal/workloads/superlu"
	"repro/internal/workloads/xsbench"
)

// Entry is one row of Table 2.
type Entry struct {
	// Name is the application name.
	Name string
	// Description matches the paper's one-line summary.
	Description string
	// Parallelization is the paper's parallelization column (informational
	// on the emulated single-node platform).
	Parallelization string
	// Inputs describes the three 1:2:4 input problems.
	Inputs [3]string
	// Phases lists the phase names the workload emits.
	Phases []string
	// New constructs an instance at scale 1, 2 or 4.
	New func(scale int) workloads.Workload
}

// All returns the workload table in the paper's order.
func All() []Entry {
	return []Entry{
		{
			Name:            "HPL",
			Description:     "High Performance LINPACK: dense LU factorization with partial pivoting",
			Parallelization: "MPI+OpenMP",
			Inputs:          [3]string{"N=576", "N=816", "N=1152"},
			Phases:          []string{"p1", "p2"},
			New:             func(s int) workloads.Workload { return hpl.New(s) },
		},
		{
			Name:            "Hypre",
			Description:     "High-performance linear solvers (structured interface): 7-point PCG",
			Parallelization: "MPI+OpenMP",
			Inputs:          [3]string{"n=48^3", "n=60^3", "n=76^3"},
			Phases:          []string{"p1", "p2"},
			New:             func(s int) workloads.Workload { return hypre.New(s) },
		},
		{
			Name:            "NekRS",
			Description:     "Spectral-element CFD: matrix-free Laplacian time stepping",
			Parallelization: "MPI",
			Inputs:          [3]string{"E=512,p=5", "E=1024,p=5", "E=2048,p=5"},
			Phases:          []string{"p1", "p2"},
			New:             func(s int) workloads.Workload { return nekrs.New(s) },
		},
		{
			Name:            "BFS",
			Description:     "Ligra-style breadth-first search on symmetric rMAT graphs",
			Parallelization: "OpenMP",
			Inputs:          [3]string{"N=2^17,M=2^20", "N=2^18,M=2^21", "N=2^19,M=2^22"},
			Phases:          []string{"p1", "p2"},
			New:             func(s int) workloads.Workload { return bfs.New(s) },
		},
		{
			Name:            "SuperLU",
			Description:     "Sparse LU factorization (left-looking, partial pivoting)",
			Parallelization: "MPI+OpenMP",
			Inputs:          [3]string{"lattice 10^3", "lattice 12^3", "lattice 14^3"},
			Phases:          []string{"p1", "p2", "p3"},
			New:             func(s int) workloads.Workload { return superlu.New(s) },
		},
		{
			Name:            "XSBench",
			Description:     "Monte Carlo neutron transport proxy: macroscopic XS lookups",
			Parallelization: "MPI+OpenMP",
			Inputs:          [3]string{"G=1500/nuclide", "G=3000/nuclide", "G=6000/nuclide"},
			Phases:          []string{"p1", "p2"},
			New:             func(s int) workloads.Workload { return xsbench.New(s) },
		},
	}
}

// Get returns the entry with the given name.
func Get(name string) (Entry, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("registry: unknown workload %q", name)
}

// Names returns the workload names in table order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}
