package report

import (
	"fmt"
	"strings"

	"repro/internal/textplot"
)

// Format names one of the pluggable renderers.
type Format string

// Registered formats.
const (
	FormatText Format = "text"
	FormatJSON Format = "json"
	FormatCSV  Format = "csv"
)

// Formats lists every registered format.
var Formats = []Format{FormatText, FormatJSON, FormatCSV}

// Ext returns the artifact file extension of the format ("txt", "json",
// "csv").
func (f Format) Ext() string {
	if f == FormatText {
		return "txt"
	}
	return string(f)
}

// FormatError reports an unparseable format spelling together with the
// full accepted vocabulary — every entry point (CLI flags, file
// extensions, query parameters, Accept negotiation) fails with the same
// structured error, and the HTTP layer's JSON error envelope embeds
// Accepted verbatim so clients can self-correct.
type FormatError struct {
	// Got is the rejected spelling.
	Got string
	// Accepted lists every accepted spelling: the canonical format names
	// plus the "txt" extension alias.
	Accepted []string
}

// AcceptedFormats returns every spelling ParseFormat accepts, canonical
// names first.
func AcceptedFormats() []string { return []string{"text", "json", "csv", "txt"} }

// Error implements error.
func (e *FormatError) Error() string {
	return fmt.Sprintf("report: unknown format %q (known: %s)", e.Got, strings.Join(e.Accepted, ", "))
}

// ParseFormat resolves a -format flag, query value or file extension. All
// spellings are case-insensitive, and the extension "txt" is accepted
// everywhere as an alias for "text" — the CLI, the artifact URLs WriteDir
// and the HTTP handlers derive from Ext, and the /v1 query parameters all
// share this one parser. Failure returns a *FormatError listing the
// accepted spellings.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "txt", "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	}
	return "", &FormatError{Got: s, Accepted: AcceptedFormats()}
}

// Render renders the document in the given format.
func Render(d Doc, f Format) (string, error) {
	switch f {
	case FormatText:
		return RenderText(d), nil
	case FormatJSON:
		return RenderJSON(d)
	case FormatCSV:
		return RenderCSV(d)
	}
	return "", fmt.Errorf("report: unknown format %q", f)
}

// RenderText renders the document as plain text on the textplot backend.
// Blocks are concatenated without implicit separators — the document's Note
// blocks carry all inter-block whitespace — so a driver's Doc reproduces its
// historical Render() output byte for byte.
func RenderText(d Doc) string {
	out := ""
	for _, bl := range d.Blocks {
		switch {
		case bl.Table != nil:
			out += textTable(bl.Table)
		case bl.Series != nil:
			out += textSeries(bl.Series)
		case bl.Timeline != nil:
			out += textTimeline(bl.Timeline)
		case bl.Dist != nil:
			out += textDist(bl.Dist)
		case bl.Note != nil:
			out += bl.Note.Text
		}
	}
	return out
}

func textTable(t *Table) string {
	tb := textplot.NewTable(t.Title, t.Headers...)
	for _, row := range t.Rows {
		cells := make([]any, len(row))
		for i, c := range row {
			cells[i] = c.Text()
		}
		tb.AddRow(cells...)
	}
	return tb.String()
}

func textSeries(s *Series) string {
	if s.Kind == Bar {
		bc := textplot.NewBarChart(s.Title)
		bc.Unit = s.Unit
		if s.Width > 0 {
			bc.Width = s.Width
		}
		// Guard mismatched label/value lengths (reachable via ParseJSON of
		// externally supplied documents) instead of panicking mid-render.
		n := len(s.Labels)
		if len(s.Values) < n {
			n = len(s.Values)
		}
		for i := 0; i < n; i++ {
			bc.Add(s.Labels[i], float64(s.Values[i]))
		}
		return bc.String()
	}
	pl := textplot.NewPlot(s.Title, s.XLabel, s.YLabel)
	if s.Cols > 0 {
		pl.Cols = s.Cols
	}
	if s.Rows > 0 {
		pl.Rows = s.Rows
	}
	for _, l := range s.Lines {
		x, y := l.X, l.Y
		// Same guard as the bar branch: never panic on a parsed document.
		if len(x) > len(y) {
			x = x[:len(y)]
		} else if len(y) > len(x) {
			y = y[:len(x)]
		}
		pl.Add(l.Name, floats(x), floats(y))
	}
	return pl.String()
}

func textTimeline(t *Timeline) string {
	pl := textplot.NewPlot(t.Title, t.XLabel, t.YLabel)
	if t.Rows > 0 {
		pl.Rows = t.Rows
	}
	for _, l := range t.Lines {
		xs := make([]float64, len(l.Values))
		for i := range xs {
			xs[i] = float64(i)
		}
		pl.Add(l.Name, xs, floats(l.Values))
	}
	return pl.String()
}

func textDist(d *Dist) string {
	return textplot.Box(d.Label,
		float64(d.Min), float64(d.Q1), float64(d.Median), float64(d.Q3), float64(d.Max),
		float64(d.Lo), float64(d.Hi), d.Width) + "\n"
}

func floats(xs []Float) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
