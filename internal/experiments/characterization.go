package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/roofline"
	"repro/internal/workloads/registry"
)

// Figure5Point is one per-phase roofline point.
type Figure5Point struct {
	Label      string // e.g. "HPL-p1"
	AI         float64
	Throughput float64
	Bound      roofline.Bound
}

// Figure5Result is the roofline model with per-phase workload points.
type Figure5Result struct {
	Model  roofline.Model
	Points []Figure5Point
}

// Figure5 profiles every workload at scale 1 on the single-tier system and
// places each phase on the platform roofline.
func (s *Suite) Figure5() Figure5Result {
	res := Figure5Result{Model: s.Profiler.RooflineModel()}
	reps := pool.Map(s.lim(), len(s.Entries), func(i int) core.Level1Report {
		return s.Profiler.Level1(s.Entries[i], 1)
	})
	for i, e := range s.Entries {
		for _, ph := range reps[i].Phases {
			if ph.Stats.Flops == 0 {
				// Integer-only phases (BFS) have no roofline placement;
				// the paper's Figure 5 omits them as well.
				continue
			}
			res.Points = append(res.Points, Figure5Point{
				Label:      fmt.Sprintf("%s-%s", e.Name, ph.Name),
				AI:         ph.AI,
				Throughput: ph.Throughput,
				Bound:      res.Model.Classify(ph.AI),
			})
		}
	}
	return res
}

// ID implements Result.
func (Figure5Result) ID() string { return "figure5" }

// Report builds the roofline table — per-phase AI, throughput, attainable
// peak on the single-tier roof and with the added tier (the dashed line) —
// plus the placement series.
func (r Figure5Result) Report() report.Doc {
	tb := report.NewTable("Figure 5: roofline placement of workload phases",
		"Phase", "AI (flop/B)", "Throughput", "Roof (1 tier)", "Roof (2 tiers)", "Bound")
	for _, p := range r.Points {
		tb.Row(report.Str(p.Label),
			report.Fixed(p.AI, 3),
			report.Flops(p.Throughput),
			report.Flops(r.Model.Attainable(p.AI)),
			report.Flops(r.Model.AttainableAggregate(p.AI)),
			report.Str(p.Bound.String()))
	}
	pl := report.NewLinePlot("Roofline (log-log placement rendered linearly)", "AI flop/B", "Gflop/s")
	var xs, ys []float64
	for _, p := range r.Points {
		xs = append(xs, p.AI)
		ys = append(ys, p.Throughput/1e9)
	}
	pl.AddLine("phases", xs, ys)
	return *report.New("figure5").Append(tb.Block(), report.Gap(), pl.Block())
}

// Render implements Result.
func (r Figure5Result) Render() string { return report.RenderText(r.Report()) }

// Figure6Curve is the bandwidth-capacity scaling curve of one workload at
// one input scale.
type Figure6Curve struct {
	Workload string
	Scale    int
	Points   []core.ScalingPoint
}

// AccessAtFootprint interpolates the cumulative access share at a footprint
// percentage.
func (c Figure6Curve) AccessAtFootprint(pct float64) float64 {
	for _, p := range c.Points {
		if p.FootprintPct >= pct {
			return p.AccessPct
		}
	}
	if n := len(c.Points); n > 0 {
		return c.Points[n-1].AccessPct
	}
	return 0
}

// Figure6Result is the set of CDFs for six applications at three scales.
type Figure6Result struct {
	Curves []Figure6Curve
}

// Figure6 builds the cumulative access-vs-footprint distribution for every
// workload at input scales 1, 2, 4.
func (s *Suite) Figure6() Figure6Result {
	scales := []int{1, 2, 4}
	return Figure6Result{
		Curves: pool.Map(s.lim(), len(s.Entries)*len(scales), func(i int) Figure6Curve {
			e, scale := s.Entries[i/len(scales)], scales[i%len(scales)]
			return Figure6Curve{
				Workload: e.Name,
				Scale:    scale,
				Points:   s.Profiler.ScalingCurve(e, scale),
			}
		}),
	}
}

// ID implements Result.
func (Figure6Result) ID() string { return "figure6" }

// Report builds, per workload, the access share captured by the hottest
// 10/25/50/75% of pages at each scale, plus the per-workload CDF series.
func (r Figure6Result) Report() report.Doc {
	tb := report.NewTable("Figure 6: bandwidth-capacity scaling (cumulative access share by hottest pages)",
		"Workload", "Scale", "@10% fp", "@25% fp", "@50% fp", "@75% fp")
	for _, c := range r.Curves {
		tb.Row(report.Str(c.Workload),
			report.Cell{Kind: report.KindInt, I: int64(c.Scale), Prefix: "x"},
			report.FixedSuffix(c.AccessAtFootprint(10), 1, "%"),
			report.FixedSuffix(c.AccessAtFootprint(25), 1, "%"),
			report.FixedSuffix(c.AccessAtFootprint(50), 1, "%"),
			report.FixedSuffix(c.AccessAtFootprint(75), 1, "%"))
	}
	d := report.New("figure6").Append(tb.Block())
	// One compact plot per workload with its three scales.
	byWorkload := map[string][]Figure6Curve{}
	var order []string
	for _, c := range r.Curves {
		if _, ok := byWorkload[c.Workload]; !ok {
			order = append(order, c.Workload)
		}
		byWorkload[c.Workload] = append(byWorkload[c.Workload], c)
	}
	for _, w := range order {
		pl := report.NewLinePlot(fmt.Sprintf("%s: %%access vs %%footprint", w), "%footprint", "%access")
		pl.Rows = 12
		for _, c := range byWorkload[w] {
			var xs, ys []float64
			for _, p := range c.Points {
				xs = append(xs, p.FootprintPct)
				ys = append(ys, p.AccessPct)
			}
			pl.AddLine(fmt.Sprintf("x%d", c.Scale), xs, ys)
		}
		d.Append(report.Gap(), pl.Block())
	}
	return *d
}

// Render implements Result.
func (r Figure6Result) Render() string { return report.RenderText(r.Report()) }

// Figure7Timeline is the fetched-cachelines timeline of one workload with
// and without L2 prefetching.
type Figure7Timeline struct {
	Workload string
	// On/Off are lines fetched per tick.
	On, Off []float64
}

// Figure7Result covers the three applications of the paper's figure.
type Figure7Result struct {
	Timelines []Figure7Timeline
}

// Figure7Workloads is the subset the paper plots.
var Figure7Workloads = []string{"NekRS", "HPL", "XSBench"}

// Figure7 records compute-phase traffic timelines with the prefetcher
// enabled and disabled.
func (s *Suite) Figure7() Figure7Result {
	var picked []registry.Entry
	for _, e := range s.Entries {
		if contains(Figure7Workloads, e.Name) {
			picked = append(picked, e)
		}
	}
	return Figure7Result{
		Timelines: pool.Map(s.lim(), len(picked), func(i int) Figure7Timeline {
			rep := s.Profiler.Level1(picked[i], 1)
			tl := Figure7Timeline{Workload: picked[i].Name}
			for _, t := range rep.TimelineOn {
				tl.On = append(tl.On, float64(t.LinesIn))
			}
			for _, t := range rep.TimelineOff {
				tl.Off = append(tl.Off, float64(t.LinesIn))
			}
			return tl
		}),
	}
}

// ID implements Result.
func (Figure7Result) ID() string { return "figure7" }

// Report builds lines fetched per tick for each workload, prefetch on vs
// off, with the per-workload traffic totals.
func (r Figure7Result) Report() report.Doc {
	d := report.New("figure7")
	for _, tl := range r.Timelines {
		t := &report.Timeline{
			Title:  fmt.Sprintf("Figure 7 (%s): L2 cachelines fetched per step", tl.Workload),
			XLabel: "step",
			YLabel: "lines",
			Rows:   12,
			Lines: []report.TimelineLine{
				{Name: "w. prefetch", Values: report.Floats(tl.On)},
				{Name: "w.o prefetch", Values: report.Floats(tl.Off)},
			},
		}
		sumOn, sumOff := sum(tl.On), sum(tl.Off)
		d.Append(t.Block(), report.NoteBlock(fmt.Sprintf("total lines: on=%.3g off=%.3g (+%.1f%%)\n\n",
			sumOn, sumOff, 100*(sumOn/sumOff-1))))
	}
	return *d
}

// Render implements Result.
func (r Figure7Result) Render() string { return report.RenderText(r.Report()) }

// Figure8Row is the prefetch study of one workload.
type Figure8Row struct {
	Workload string
	// Accuracy and Coverage are the paper's equations (1) and (2).
	Accuracy, Coverage float64
	// ExcessTraffic is total traffic with prefetch over without, minus 1.
	ExcessTraffic float64
	// PerformanceGain is runtime without prefetch over with, minus 1.
	PerformanceGain float64
}

// Figure8Result is the prefetch suitability summary of §4.2.
type Figure8Result struct {
	Rows []Figure8Row
}

// Figure8 measures prefetch accuracy, coverage, excess traffic and
// performance gain for every workload.
func (s *Suite) Figure8() Figure8Result {
	return Figure8Result{
		Rows: pool.Map(s.lim(), len(s.Entries), func(i int) Figure8Row {
			rep := s.Profiler.Level1(s.Entries[i], 1)
			return Figure8Row{
				Workload:        s.Entries[i].Name,
				Accuracy:        rep.Accuracy,
				Coverage:        rep.Coverage,
				ExcessTraffic:   rep.ExcessTraffic,
				PerformanceGain: rep.PerformanceGain,
			}
		}),
	}
}

// ID implements Result.
func (Figure8Result) ID() string { return "figure8" }

// Report builds the four prefetch metrics per workload plus the gain bars.
func (r Figure8Result) Report() report.Doc {
	tb := report.NewTable("Figure 8: hardware prefetching suitability",
		"Workload", "Accuracy", "Coverage", "Excess traffic", "Perf gain")
	bars := report.NewBarChart("Performance gain from prefetching", "%")
	for _, row := range r.Rows {
		tb.Row(report.Str(row.Workload),
			report.Pct(row.Accuracy),
			report.Pct(row.Coverage),
			report.Pct(row.ExcessTraffic),
			report.Pct(row.PerformanceGain))
		bars.AddBar(row.Workload, row.PerformanceGain*100)
	}
	return *report.New("figure8").Append(tb.Block(), report.Gap(), bars.Block())
}

// Render implements Result.
func (r Figure8Result) Render() string { return report.RenderText(r.Report()) }

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
