// Package pool provides the bounded worker pool behind every parallel
// fan-out in the repository: the experiment suite's driver-level and
// workload-level parallelism, and the scheduler's Monte-Carlo run sweeps.
//
// The pool is deliberately minimal: tasks are identified by index, results
// are written into index-addressed slots, and a task never learns which
// worker ran it. A single Limiter is shared across every nesting level, so
// the configured width bounds total running tasks rather than multiplying
// per fan-out. Combined with the splittable RNG substreams of
// internal/stats (one substream per task index), this guarantees that a
// parallel sweep produces byte-identical results for any worker count,
// including the sequential workers=1 case — reproducibility is a property
// of the decomposition, not of the schedule.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below 1 select
// runtime.GOMAXPROCS(0), everything else passes through. CLIs use it to
// implement "-j 0 = all cores".
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Limiter is a shared concurrency budget. Nested fan-outs (drivers inside
// a suite, Monte-Carlo runs inside a driver) acquire from the same limiter,
// so the total number of concurrently running tasks stays at the configured
// width no matter how deeply ForEach calls nest — a fan-out that finds the
// budget exhausted simply runs its tasks inline on the goroutine it already
// owns instead of spawning more.
//
// A nil *Limiter is valid and means "sequential".
//
// A limiter may carry a context (WithContext): once the context is done, no
// new task starts — ForEach skips every index it has not yet begun, leaving
// the corresponding result slots at their zero values, and returns after
// in-flight tasks complete. Callers that installed a context check Err
// after the fan-out to distinguish a complete sweep from an abandoned one.
// Cancellation is cooperative at task granularity: it never interrupts a
// running task and never leaks the worker goroutines, which always drain
// and exit on their own.
type Limiter struct {
	// sem holds width-1 tokens: every ForEach caller contributes its own
	// goroutine, so the running-task total is tokens + 1.
	sem chan struct{}
	// ctxs are the contexts gating the start of every task, outermost
	// first. A chain — not a single slot — so nesting composes: wrapping an
	// engine-owned limiter with a narrower (or background) context never
	// un-cancels the outer one. Cancellation is polled at task boundaries,
	// never waited on, which is what makes a chain cheap.
	ctxs []context.Context
}

// NewLimiter returns a limiter admitting at most width concurrently
// running tasks. width <= 1 yields a sequential limiter.
func NewLimiter(width int) *Limiter {
	l := &Limiter{}
	if width > 1 {
		l.sem = make(chan struct{}, width-1)
	}
	return l
}

// WithContext returns a limiter sharing this limiter's concurrency budget
// and additionally gated by ctx: once ctx — or any context the receiver
// already carried — is done, the returned limiter starts no new task (see
// the Limiter contract). The receiver is not modified, and a nil receiver
// yields a sequential but cancelable limiter.
func (l *Limiter) WithContext(ctx context.Context) *Limiter {
	if l == nil {
		return &Limiter{ctxs: []context.Context{ctx}}
	}
	ctxs := make([]context.Context, 0, len(l.ctxs)+1)
	ctxs = append(append(ctxs, l.ctxs...), ctx)
	return &Limiter{sem: l.sem, ctxs: ctxs}
}

// Err reports why the limiter stopped admitting tasks: the first done
// carried context's error, or nil for a context-free (or still-live)
// limiter.
func (l *Limiter) Err() error {
	if l == nil {
		return nil
	}
	for _, ctx := range l.ctxs {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn(i) for every i in [0, n) within the limiter's budget and
// returns when all calls have completed. The caller claims indices from a
// shared counter and, per index, either hands it to a freshly spawned
// worker (token available — the worker then keeps draining the counter on
// its own, so a slow inline task on the caller never stalls dispatch) or
// runs it inline (budget exhausted). ForEach therefore never blocks
// waiting for capacity and never deadlocks under nesting. fn must be safe
// to call concurrently; fn(i) must write only to state owned by index i.
//
// When the limiter carries a context (WithContext), a done context stops
// the claim counter: indices not yet started are skipped — their result
// slots keep their zero values — while in-flight calls run to completion
// before ForEach returns, so no goroutine outlives the call. Check Err to
// detect the abandonment.
func (l *Limiter) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if l == nil || l.sem == nil {
		for i := 0; i < n && l.Err() == nil; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	claim := func() int {
		if l.Err() != nil {
			return -1
		}
		if i := int(next.Add(1)) - 1; i < n {
			return i
		}
		return -1
	}
	var wg sync.WaitGroup
	for i := claim(); i >= 0; i = claim() {
		select {
		case l.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-l.sem
					wg.Done()
				}()
				for ; i >= 0; i = claim() {
					fn(i)
				}
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) within the limiter's budget and
// returns the results in index order. The output is identical for any
// budget as long as fn(i) is a pure function of i.
func Map[T any](l *Limiter, n int, fn func(i int) T) []T {
	out := make([]T, n)
	l.ForEach(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
