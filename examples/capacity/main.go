// Capacity walks the §4.1 deployment decision flow for a memory-pooled
// system: given a workload, how much of its footprint can be served from
// the pool before the slow tier becomes the bottleneck, and what does that
// mean for the number of compute nodes a job needs?
//
// The example combines the bandwidth-capacity scaling curve (which fraction
// of pages carries which fraction of traffic), the Level-2 reference points,
// and the Level-3 sensitivity measurement into a per-workload sizing
// recommendation.
package main

import (
	"fmt"

	"repro"
)

func main() {
	profiler := repro.NewProfiler(repro.DefaultPlatform())

	fractions := []float64{0.75, 0.50, 0.25} // local tier as fraction of peak
	fmt.Println("=== Pool-capacity sizing per workload ===")
	for _, entry := range repro.Workloads() {
		fmt.Printf("\n%s\n", entry.Name)

		// The scaling curve shows how concentrated the traffic is: a
		// skewed curve means a small local tier can still capture most
		// accesses (BFS, XSBench); a uniform curve means local capacity
		// buys traffic share one-for-one (HPL, Hypre).
		curve := profiler.ScalingCurve(entry, 1)
		at25, at50 := accessAt(curve, 25), accessAt(curve, 50)
		fmt.Printf("  traffic captured by hottest 25%%/50%% of pages: %.0f%% / %.0f%%\n", at25, at50)

		// Sweep pooled fractions: find the largest pool share whose
		// compute phase stays within the tuning band and loses < 5%
		// at LoI=50.
		best := -1.0
		for _, frac := range fractions {
			l2 := profiler.Level2(entry, 1, frac)
			l3 := profiler.Level3(entry, 1, frac, []float64{0, 0.5})
			dom, ok := l2.DominantPhase(profiler.ConfigForLocalFraction(entry, 1, frac))
			if !ok {
				continue
			}
			loss := 1 - l3.Relative[len(l3.Relative)-1]
			fmt.Printf("  local=%2.0f%%: dominant phase %s remote access %5.1f%% (%s), loss at LoI=50: %4.1f%%\n",
				frac*100, dom.Name, dom.RemoteAccessRatio*100, l2.Verdict(dom), loss*100)
			if loss < 0.05 && 1-frac > best {
				best = 1 - frac
			}
		}
		switch {
		case best >= 0.74:
			fmt.Printf("  => tolerates 75%% pooling: lean on the pool, cut node count\n")
		case best > 0:
			fmt.Printf("  => up to %.0f%% pooling within a 5%% interference budget\n", best*100)
		default:
			fmt.Printf("  => interference-sensitive: keep the working set node-local or scale out\n")
		}
	}
}

// accessAt interpolates the cumulative access share at a footprint percent.
func accessAt(curve []repro.ScalingPoint, pct float64) float64 {
	for _, p := range curve {
		if p.FootprintPct >= pct {
			return p.AccessPct
		}
	}
	if len(curve) > 0 {
		return curve[len(curve)-1].AccessPct
	}
	return 0
}
