// Package counters maps the hardware performance events named in the paper
// (§3.1) onto the simulator's native counters, so profiler reports can speak
// the same vocabulary as the paper: offcore response events for memory
// traffic, L2 prefetch events for the §4.2 analysis, and UPI traffic for the
// link.
package counters

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/machine"
)

// Event names, matching the paper's Skylake-X event list.
const (
	// OffcoreL3Miss counts cachelines loaded from memory, including
	// hardware prefetches (OFFCORE_RESPONSE:L3_MISS).
	OffcoreL3Miss = "OFFCORE_RESPONSE.L3_MISS"
	// OffcoreLocalDRAM counts lines served by the local tier.
	OffcoreLocalDRAM = "OFFCORE_RESPONSE.L3_MISS.LOCAL_DRAM"
	// OffcoreRemoteDRAM counts lines served by the remote tier.
	OffcoreRemoteDRAM = "OFFCORE_RESPONSE.L3_MISS.REMOTE_DRAM"
	// PFL2 counts prefetch fills into L2 (PF_L2_DATA_RD + PF_L2_RFO).
	PFL2 = "PF_L2_DATA_RD+PF_L2_RFO"
	// L2LinesIn counts all L2 fills.
	L2LinesIn = "L2_LINES_IN"
	// UselessHWPF counts prefetched lines evicted unused.
	UselessHWPF = "USELESS_HWPF"
	// L2DemandMiss counts demand misses at L2.
	L2DemandMiss = "L2_RQSTS.MISS"
	// L2DemandHit counts demand hits at L2.
	L2DemandHit = "L2_RQSTS.HIT"
	// UPITraffic is raw link traffic in bytes (PCM sktXtraffic),
	// including protocol overhead.
	UPITraffic = "UPI.TRAFFIC_BYTES"
)

// FromPhase derives the event values for a recorded phase.
func FromPhase(cfg machine.Config, p machine.PhaseStats) map[string]uint64 {
	remoteLines := uint64(0)
	localLines := uint64(0)
	if p.TotalBytes() > 0 {
		remoteLines = p.RemoteBytes / cache.LineSize
		localLines = p.LocalBytes / cache.LineSize
	}
	raw := float64(p.RemoteBytes) * cfg.Link.Overhead
	return map[string]uint64{
		OffcoreL3Miss:     p.Cache.LinesIn,
		OffcoreLocalDRAM:  localLines,
		OffcoreRemoteDRAM: remoteLines,
		PFL2:              p.Cache.PrefetchFills,
		L2LinesIn:         p.Cache.LinesIn,
		UselessHWPF:       p.Cache.UselessPrefetch,
		L2DemandMiss:      p.Cache.DemandMisses,
		L2DemandHit:       p.Cache.DemandHits,
		UPITraffic:        uint64(raw),
	}
}

// Names returns all event names in stable order.
func Names() []string {
	names := []string{
		OffcoreL3Miss, OffcoreLocalDRAM, OffcoreRemoteDRAM,
		PFL2, L2LinesIn, UselessHWPF, L2DemandMiss, L2DemandHit,
		UPITraffic,
	}
	sort.Strings(names)
	return names
}
