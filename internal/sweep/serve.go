package sweep

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/report"
)

// Handler serves sweep campaigns over HTTP — the grid counterpart of the
// artifact store's fixed-id handler:
//
//	GET /sweep                                         default grid, "sweep" artifact, text
//	GET /sweep?artifact=sensitivity&format=json
//	GET /sweep?axis=gen=0,5,6&axis=frac=0.25:0.75:0.25&format=csv
//	GET /sweep?platform=cxl-gen5                       sweep around a scenario's base system
//
// Each "axis" query parameter is one ParseAxis declaration; omitting them
// keeps the axes of the grid func's result. "artifact" picks "sweep"
// (default) or "sensitivity"; "format" picks txt, json or csv
// (report.ParseFormat, default txt).
//
// grid returns the default grid for a platform ("" means the server's
// default platform) and run executes a validated grid on that platform's
// suite — the memdis wiring memoizes campaigns per grid key on the suite,
// so the two artifacts and repeated requests share one execution.
// Malformed axes or formats are a 400; grid/run errors (e.g. an unknown
// platform) are a 404, like the artifact handler's.
//
// Deprecated: this is the legacy plain-text-error surface, kept mounted
// at /sweep as a compatibility alias. New clients should use GET
// /v1/sweep (internal/api), which shares the versioned API's JSON error
// envelope and content negotiation.
// run receives the request's context: a disconnecting client stops the
// campaign at its next cell boundary instead of pinning the engine.
func Handler(grid func(platform string) (Grid, error), run func(ctx context.Context, platform string, g Grid) (*Campaign, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		platform := r.URL.Query().Get("platform")
		g, err := grid(platform)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if axes := r.URL.Query()["axis"]; len(axes) > 0 {
			g.Axes = nil
			for _, s := range axes {
				a, err := ParseAxis(s)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				g.Axes = append(g.Axes, a)
			}
		}
		if err := g.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Synchronous request boundary: big grids go through the job
		// manager instead of pinning one HTTP request's lifetime.
		if err := CheckSyncSize(g); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "text"
		}
		f, err := report.ParseFormat(format)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		artifact := r.URL.Query().Get("artifact")
		if artifact == "" {
			artifact = "sweep"
		}
		if artifact != "sweep" && artifact != "sensitivity" {
			http.Error(w, fmt.Sprintf("unknown artifact %q (want sweep or sensitivity)", artifact), http.StatusBadRequest)
			return
		}

		camp, err := run(r.Context(), platform, g)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		doc := camp.Sweep()
		if artifact == "sensitivity" {
			doc = camp.Sensitivity()
		}
		doc.Platform = g.Base.Name
		out, err := report.Render(doc, f)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", report.ContentType(f))
		fmt.Fprint(w, out)
	})
}
