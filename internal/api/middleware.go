package api

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// get restricts a route to GET/HEAD, answering anything else with a 405
// envelope (the stock ServeMux 405 is plain text, which would break the
// one-envelope contract).
func get(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed (want GET)", r.Method))
			return
		}
		h(w, r)
	})
}

// methods dispatches a route by HTTP method, answering anything not in
// the table with a 405 envelope that lists the allowed methods — the
// multi-method sibling of get for routes like /v1/jobs (GET list, POST
// submit).
func methods(table map[string]http.HandlerFunc) http.Handler {
	var allow []string
	if _, ok := table[http.MethodGet]; ok {
		allow = append(allow, http.MethodGet, http.MethodHead)
	}
	for _, m := range []string{http.MethodPost, http.MethodDelete} {
		if _, ok := table[m]; ok {
			allow = append(allow, m)
		}
	}
	allowed := strings.Join(allow, ", ")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, ok := table[r.Method]
		if !ok && r.Method == http.MethodHead {
			h, ok = table[http.MethodGet]
		}
		if !ok {
			w.Header().Set("Allow", allowed)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed (want %s)", r.Method, allowed))
			return
		}
		h(w, r)
	})
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// logging emits one line per request — method, path+query, status,
// duration — to the configured logger; a nil logger disables it.
func logging(l *log.Logger, h http.Handler) http.Handler {
	if l == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sr, r)
		l.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), sr.status, time.Since(start).Round(time.Microsecond))
	})
}

// recovery converts a handler panic into a 500 envelope instead of a
// severed connection, keeping the one-envelope contract even for bugs.
// The panic value and stack go to the standard logger so they are never
// silently swallowed.
func recovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("api: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error: %v", v))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// deprecated mounts a legacy handler unchanged but stamps every response
// with a Deprecation header and a successor-version Link, so clients can
// discover the /v1 replacement without the alias breaking.
func deprecated(h http.Handler, successor string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h.ServeHTTP(w, r)
	})
}
