package sweep

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/report"
)

// TestIsolatedMatchesShared pins the tentpole correctness claim of the
// dependency-keyed profile cache: a campaign executed with cross-cell
// sharing renders byte-identical artifacts to the isolated (pre-sharing)
// mode, at one worker and at eight — sharing saves work, never changes
// results. It also asserts the sharing actually happened: the shared run
// records cross-cell cache hits, and strictly fewer computes (misses) than
// the campaign has profile lookups.
func TestIsolatedMatchesShared(t *testing.T) {
	grid := quickGrid()
	render := func(isolated bool, workers int) (string, *Runner) {
		t.Helper()
		r := &Runner{Grid: grid, Entries: quickEntries(), Runs: 3, Isolated: isolated}
		c, err := r.Run(pool.NewLimiter(workers))
		if err != nil {
			t.Fatal(err)
		}
		return report.RenderText(c.Sweep()) + "\x00" + report.RenderText(c.Sensitivity()), r
	}
	want, iso := render(true, 1)
	if want == "" {
		t.Fatal("isolated campaign rendered empty")
	}
	// Isolated mode must not install a shared cache behind the caller's
	// back — that would silently re-enable sharing.
	if iso.Cache != nil {
		t.Error("isolated runner published a shared cache")
	}
	for _, workers := range []int{1, 8} {
		got, r := render(false, workers)
		if got != want {
			t.Errorf("shared campaign at %d workers renders differently from isolated", workers)
		}
		st := r.Cache.Stats()
		if st.Hits+st.Joins == 0 {
			t.Errorf("shared campaign at %d workers recorded no cross-cell cache reuse: %+v", workers, st)
		}
		if st.Misses == 0 {
			t.Errorf("shared campaign at %d workers recorded no computes: %+v", workers, st)
		}
	}
}
