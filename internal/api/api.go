// Package api is the versioned HTTP surface of the reproduction service:
// one mux, one JSON error envelope, one content-negotiation rule, one
// caching policy and one middleware chain (request logging, panic
// recovery, conditional requests, gzip, request coalescing) over every
// route — replacing the two bespoke pre-/v1 handlers (the artifact
// store's and the sweep endpoint's), which stay mounted as deprecated
// aliases behind the same caching middleware.
//
// Routes (GET unless noted):
//
//	/healthz                   liveness + readiness: {"status":"ok","ready":true}
//	/v1                        index: artifact ids, platforms, formats, routes
//	/v1/stats                  serving + profile-cache counters (renders, coalesced, profile_hits, ...)
//	/v1/artifacts              artifact index
//	/v1/artifacts/{id}         one artifact (canonical ids only)
//	/v1/platforms              the scenario table
//	/v1/workloads              the workload table
//	/v1/sweep                  a synchronous sweep campaign (axis=, artifact=, platform=)
//	/v1/jobs                   POST submits an async campaign job (202 + Location); GET lists
//	/v1/jobs/{id}              job status; DELETE cancels (checkpoint survives)
//	/v1/jobs/{id}/events       the job's JSON-lines progress log (NDJSON)
//	/v1/jobs/{id}/artifacts/{artifact}  a done job's rendered sweep|sensitivity
//
// The synchronous /v1/sweep route caps grids at sweep.MaxSyncGridCells;
// larger campaigns go through POST /v1/jobs, which streams progress into a
// persistent checkpoint and survives restarts (see the jobs package).
//
// Every data route accepts ?platform= (default: the backend's) and picks
// its representation from ?format= (text, json, csv — txt accepted,
// case-insensitive) or, absent that, the Accept header (application/json,
// text/csv, text/plain; unrecognized types fall back to text).
//
// Serving semantics: documents are immutable per (platform, artifact,
// seed, code version), so every successful data response carries a strong
// ETag (SHA-256 of the rendered bytes), Cache-Control: public and
// Vary: Accept, Accept-Encoding; If-None-Match revalidations are an
// empty-body 304, gzip is negotiated via Accept-Encoding, and N
// concurrent cache-miss requests for one (platform, artifact, format)
// coalesce into a single render. Error envelopes are never cacheable.
//
// Errors — unknown artifact or platform (404), alias ids (404, pointing
// at the canonical id), malformed formats or axes and oversized grids
// (400), cancelled computations (503/504), panics (500) — all share one
// JSON envelope:
//
//	{"error": {"status": 404, "message": "..."}}
//
// with a "formats" field listing the accepted spellings verbatim when the
// failure is a format error. Validation runs the exact same validators the
// library path runs (report.ParseFormat, sweep.Grid.Validate via the
// backend's Sweep), so the two surfaces cannot drift apart.
package api

import (
	"context"
	"log"
	"net/http"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// Backend is the service surface the HTTP API serves — implemented by
// repro.Service.
type Backend interface {
	// CanonicalID resolves an artifact id or alias to the canonical id
	// the backend serves it under; unknown ids error (matching
	// experiments.ErrUnknownID for the envelope's 404 mapping).
	CanonicalID(id string) (string, error)
	// Rendered returns one artifact rendered in one format; platform ""
	// means the backend's default.
	Rendered(ctx context.Context, platform, artifact string, f report.Format) (string, error)
	// Grid returns the sweep grid on a platform's base system over the
	// given axes (none selects the canonical default grid).
	Grid(platform string, axes ...sweep.Axis) (sweep.Grid, error)
	// Sweep executes (or returns the memoized) campaign for a grid.
	Sweep(ctx context.Context, g sweep.Grid) (*sweep.Campaign, error)
	// Scenarios, Workloads and IDs enumerate the served tables.
	Scenarios() []scenario.Spec
	Workloads() []registry.Entry
	IDs() []string
	// DefaultPlatform is the scenario an absent ?platform= resolves to.
	DefaultPlatform() string

	// SubmitSweep starts (or re-attaches to) the asynchronous campaign
	// job for a grid; ResumeJob restarts one from its checkpoint. Job,
	// Jobs and CancelJob are the status surfaces; unknown ids match
	// jobs.ErrNotFound for the envelope's 404 mapping.
	SubmitSweep(g sweep.Grid) (jobs.Record, error)
	ResumeJob(id string) (jobs.Record, error)
	Job(id string) (jobs.Record, error)
	Jobs() ([]jobs.Record, error)
	CancelJob(id string) (jobs.Record, error)
	// JobEvents returns a job's raw JSON-lines event log; JobArtifact a
	// done job's rendered artifact (jobs.ErrNotDone → 409 before then).
	JobEvents(id string) ([]byte, error)
	JobArtifact(id, artifact string, f report.Format) (string, error)
}

// Config wires a Backend into the HTTP surface.
type Config struct {
	// Backend serves every /v1 route.
	Backend Backend
	// Logger receives one request-log line per request; nil disables
	// request logging.
	Logger *log.Logger
	// Ready reports whether the backend has finished its startup cache
	// warm; nil means always ready. /healthz serves it so orchestrators
	// can distinguish a live pod from one still recomputing its caches.
	Ready func() bool
	// WarmErr reports why the last startup warm failed (nil while
	// in-flight or after success); nil disables the field. /healthz
	// surfaces it as "warm_error" so a stuck not-ready pod is diagnosable
	// from the probe alone.
	WarmErr func() error
	// Metrics receives the serving counters; nil allocates a private set.
	// Served as a snapshot on GET /v1/stats either way.
	Metrics *Metrics
	// ProfileCache reports the backend's shared profile-cache counters;
	// nil omits them. GET /v1/stats merges them into the snapshot as the
	// flat keys profile_hits, profile_misses and profile_joins, keeping
	// the route a plain string → int64 map for harnesses that diff it.
	ProfileCache func() (hits, misses, joins int64)
	// LegacyArtifacts and LegacySweep, when set, are mounted at the
	// pre-/v1 paths ("/" with its /artifacts/ subtree, and "/sweep") as
	// deprecated aliases: same behavior, plus Deprecation/Link headers
	// pointing successors out, behind the same conditional-request and
	// gzip middleware as the /v1 routes.
	LegacyArtifacts http.Handler
	LegacySweep     http.Handler
}

// server is the built API: the configuration plus the shared serving
// state every handler needs — the counter set and the render-coalescing
// flight group.
type server struct {
	cfg     Config
	metrics *Metrics
	flights *flightGroup
}

// New builds the versioned API handler: the /v1 routes and /healthz behind
// the middleware chain, with the legacy aliases (when configured) mounted
// beneath them. Data routes — /v1 and legacy alike — sit behind the
// conditional-request/gzip middleware; /healthz, the indexes and /v1/stats
// stay uncacheable.
func New(c Config) http.Handler {
	m := c.Metrics
	if m == nil {
		m = &Metrics{}
	}
	s := &server{cfg: c, metrics: m, flights: newFlightGroup(m)}
	mux := http.NewServeMux()
	mux.Handle("/healthz", get(s.handleHealthz))
	mux.Handle("/v1", get(s.handleIndex))
	mux.Handle("/v1/", get(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, errNoRoute(r.URL.Path))
	}))
	mux.Handle("/v1/stats", get(s.handleStats))
	mux.Handle("/v1/artifacts", get(s.handleArtifactIndex))
	mux.Handle("/v1/artifacts/{id}", cacheable(m, get(s.handleArtifact)))
	mux.Handle("/v1/platforms", cacheable(m, get(s.handlePlatforms)))
	mux.Handle("/v1/workloads", cacheable(m, get(s.handleWorkloads)))
	mux.Handle("/v1/sweep", cacheable(m, get(s.handleSweep)))
	mux.Handle("/v1/jobs", methods(map[string]http.HandlerFunc{
		http.MethodGet:  s.handleJobs,
		http.MethodPost: s.handleJobSubmit,
	}))
	mux.Handle("/v1/jobs/{id}", methods(map[string]http.HandlerFunc{
		http.MethodGet:    s.handleJob,
		http.MethodDelete: s.handleJobCancel,
	}))
	mux.Handle("/v1/jobs/{id}/events", get(s.handleJobEvents))
	mux.Handle("/v1/jobs/{id}/artifacts/{artifact}", cacheable(m, get(s.handleJobArtifact)))
	if c.LegacyArtifacts != nil {
		mux.Handle("/", deprecated(cacheable(m, c.LegacyArtifacts), "/v1/artifacts"))
	}
	if c.LegacySweep != nil {
		mux.Handle("/sweep", deprecated(cacheable(m, c.LegacySweep), "/v1/sweep"))
	}
	return logging(c.Logger, recovery(counted(m, mux)))
}

// handleHealthz is the health probe: always 200 while the process serves
// (liveness), with a ready field that flips true once the startup cache
// warm — when one was requested — has completed (readiness). It never
// touches the experiment engine.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := s.cfg.Ready == nil || s.cfg.Ready()
	w.Header().Set("Cache-Control", "no-store")
	body := map[string]any{"status": "ok", "ready": ready}
	if s.cfg.WarmErr != nil {
		if err := s.cfg.WarmErr(); err != nil {
			// A failed warm leaves the pod live but not ready; surfacing
			// the diagnostic here makes that state debuggable from the
			// probe alone (the response stays no-store either way).
			body["warm_error"] = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleStats serves a snapshot of the serving counters — what the sbench
// harness diffs around a load run.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	snap := s.metrics.Snapshot()
	if s.cfg.ProfileCache != nil {
		hits, misses, joins := s.cfg.ProfileCache()
		snap["profile_hits"] = hits
		snap["profile_misses"] = misses
		snap["profile_joins"] = joins
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleIndex describes the API: the served ids and names plus the route
// shapes, so `curl /v1` is self-documenting.
func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	scs := s.cfg.Backend.Scenarios()
	platforms := make([]string, len(scs))
	for i, sp := range scs {
		platforms[i] = sp.Name
	}
	ws := s.cfg.Backend.Workloads()
	workloads := make([]string, len(ws))
	for i, e := range ws {
		workloads[i] = e.Name
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"artifacts":        s.cfg.Backend.IDs(),
		"platforms":        platforms,
		"workloads":        workloads,
		"formats":          report.AcceptedFormats(),
		"default_platform": s.cfg.Backend.DefaultPlatform(),
		"routes": []string{
			"GET /healthz",
			"GET /v1",
			"GET /v1/stats",
			"GET /v1/artifacts",
			"GET /v1/artifacts/{id}?platform=&format=",
			"GET /v1/platforms?format=",
			"GET /v1/workloads?format=",
			"GET /v1/sweep?axis=&artifact=sweep|sensitivity&platform=&format=",
			"POST /v1/jobs",
			"GET /v1/jobs",
			"GET /v1/jobs/{id}",
			"DELETE /v1/jobs/{id}",
			"GET /v1/jobs/{id}/events",
			"GET /v1/jobs/{id}/artifacts/{artifact}?format=",
		},
	})
}

// handleArtifactIndex lists the artifact ids and the URL shape serving
// them.
func (s *server) handleArtifactIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"artifacts":        s.cfg.Backend.IDs(),
		"url":              "/v1/artifacts/{id}?platform={scenario}&format={text|json|csv}",
		"default_platform": s.cfg.Backend.DefaultPlatform(),
	})
}

// handleArtifact serves one rendered artifact. Only canonical ids name
// /v1 resources: a figure alias is a 404 whose message points at the
// canonical id, so every document is served from exactly one URL. The
// render itself goes through the coalescing flight group: concurrent
// cache-miss requests for one (platform, artifact, format) trigger one
// backend render, and the computation survives any single client's
// disconnect as long as another is still waiting.
func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	canon, err := s.cfg.Backend.CanonicalID(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if canon != id {
		writeError(w, http.StatusNotFound, &experiments.AliasError{Alias: id, Canonical: canon})
		return
	}
	platform := r.URL.Query().Get("platform")
	keyPlatform := platform
	if keyPlatform == "" {
		// Normalize the flight key so "" and the explicit default name
		// coalesce onto one render.
		keyPlatform = s.cfg.Backend.DefaultPlatform()
	}
	key := flightKey{platform: keyPlatform, artifact: canon, format: f}
	out, err := s.flights.Do(r.Context(), key, func(ctx context.Context) (string, error) {
		return s.cfg.Backend.Rendered(ctx, platform, canon, f)
	})
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeRendered(w, f, out)
}

// handlePlatforms serves the scenario table as a negotiated document.
func (s *server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	s.serveDoc(w, r, platformsDoc(s.cfg.Backend.Scenarios()))
}

// handleWorkloads serves the workload table as a negotiated document.
func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.serveDoc(w, r, workloadsDoc(s.cfg.Backend.Workloads()))
}

// serveDoc renders a registry document in the negotiated format.
func (s *server) serveDoc(w http.ResponseWriter, r *http.Request, d report.Doc) {
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := report.Render(d, f)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeRendered(w, f, out)
}

// handleSweep executes a sweep campaign: each axis= parameter is one
// sweep.ParseAxis declaration (none keeps the platform's default grid),
// artifact= picks the "sweep" (default) or "sensitivity" view. Validation
// is the shared sweep validator — the same caps the library's
// Service.Sweep enforces — surfacing as 400s.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	artifact := r.URL.Query().Get("artifact")
	if artifact == "" {
		artifact = "sweep"
	}
	if artifact != "sweep" && artifact != "sensitivity" {
		writeError(w, http.StatusBadRequest,
			errBadSweepArtifact(artifact))
		return
	}
	platform := r.URL.Query().Get("platform")
	var axes []sweep.Axis
	for _, a := range r.URL.Query()["axis"] {
		ax, err := sweep.ParseAxis(a)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		axes = append(axes, ax)
	}
	g, err := s.cfg.Backend.Grid(platform, axes...)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	// The synchronous boundary: a request-lifetime campaign is capped;
	// bigger grids validate fine but belong on the job surface.
	if err := sweep.CheckSyncSize(g); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Normalize the platform before keying: "" and the explicit default
	// name must coalesce onto one execution.
	if platform == "" {
		platform = s.cfg.Backend.DefaultPlatform()
	}
	// Coalesce concurrent requests on the *canonical* grid (g.Key()
	// normalizes axis declarations — a range spelling and its expanded
	// value list key identically), so N cache-miss queries for one
	// campaign view trigger one execution and one render.
	key := flightKey{platform: platform, artifact: artifact, grid: g.Key(), format: f}
	out, err := s.flights.Do(r.Context(), key, func(ctx context.Context) (string, error) {
		camp, err := s.cfg.Backend.Sweep(ctx, g)
		if err != nil {
			return "", err
		}
		var doc report.Doc
		if artifact == "sensitivity" {
			doc = camp.Sensitivity()
		} else {
			doc = camp.Sweep()
		}
		// Stamp the *scenario* name the request resolved to — not the
		// grid's machine-config name — so the platform field round-trips
		// through ?platform= and matches /v1/platforms (and what the
		// CLI's seeded store emits for the same campaign).
		doc.Platform = platform
		return report.Render(doc, f)
	})
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeRendered(w, f, out)
}

// writeRendered emits a successful rendering with its media type.
func writeRendered(w http.ResponseWriter, f report.Format, out string) {
	w.Header().Set("Content-Type", report.ContentType(f))
	_, _ = w.Write([]byte(out))
}
