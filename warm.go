package repro

import (
	"context"

	"repro/internal/experiments"
	"repro/internal/report"
)

// WithWarm marks the Service for startup cache warming: the named platform
// scenarios (none means the default platform) are computed with RunAll and
// pre-rendered in every format when StartWarm runs, and the Service reports
// not-Ready until that completes. `memdis serve -warm` and /healthz's
// "ready" field ride on this: a cold pod behind a load balancer is kept out
// of rotation until its caches hold every artifact it advertises. Every
// named scenario must be one of the Service's; WithWarm is incompatible
// with WithCache(false).
func WithWarm(platforms ...string) Option {
	return func(s *Service) error {
		s.warm = true
		s.warmPlatforms = append([]string(nil), platforms...)
		return nil
	}
}

// Ready reports whether the Service is warm: true immediately for a
// service built without WithWarm, and true once StartWarm has finished
// successfully otherwise. The HTTP /healthz route serves it.
func (s *Service) Ready() bool { return s.ready.Load() }

// StartWarm launches the startup cache warm in the background and returns
// a channel that closes when it finishes (successfully or not — WarmErr
// reports which). The warm drives RunAll for each warm platform (the
// WithWarm set, or the default platform) and then renders every artifact
// in every format, so a warmed server answers every advertised route from
// cache. Serving while warming is safe: requests compute what they need
// and the engine serializes invocations. Once ctx dies the warm stops at
// the engine's next task boundary, the channel closes, no goroutine leaks,
// and the Service stays not-ready. StartWarm is idempotent while a warm
// is in flight or after one has succeeded: those calls return the same
// channel. A warm that finished with an error does not latch — the next
// StartWarm clears the recorded error and begins a fresh attempt, so a
// transient failure (a cancelled boot context, a briefly unavailable
// dependency) is retryable to readiness without restarting the process.
func (s *Service) StartWarm(ctx context.Context) <-chan struct{} {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if s.warmDone != nil {
		restart := false
		select {
		case <-s.warmDone:
			// Finished: only a failed warm warrants a new attempt.
			restart = s.warmErr != nil
		default:
			// Still in flight: join it.
		}
		if !restart {
			return s.warmDone
		}
		s.warmErr = nil
	}
	done := make(chan struct{})
	s.warmDone = done
	platforms := s.warmPlatforms
	if len(platforms) == 0 {
		platforms = []string{s.defaultPlatform}
	}
	go func() {
		err := s.warmAll(ctx, platforms)
		s.warmMu.Lock()
		s.warmErr = err
		s.warmMu.Unlock()
		if err == nil {
			s.ready.Store(true)
		}
		close(done)
	}()
	return done
}

// Warm is the synchronous form of StartWarm: it blocks until the warm
// completes and returns its error.
func (s *Service) Warm(ctx context.Context) error {
	<-s.StartWarm(ctx)
	return s.WarmErr()
}

// WarmErr returns the error the warm finished with (nil while it is still
// running, or if it succeeded).
func (s *Service) WarmErr() error {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	return s.warmErr
}

// warmAll computes and renders the whole artifact set for each platform:
// RunAll seeds the document store with the experiment-level fan-out, then
// every (artifact, format) render is materialized so first requests —
// including conditional ones, whose ETags hash the rendered bytes — are
// pure cache hits.
func (s *Service) warmAll(ctx context.Context, platforms []string) error {
	for _, p := range platforms {
		if _, err := s.RunAll(ctx, p); err != nil {
			return err
		}
		for _, id := range experiments.IDs {
			for _, f := range report.Formats {
				if _, err := s.store.Artifact(ctx, p, id, f); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
