package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(7)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Errorf("bucket %d count %d far from uniform %d", i, b, n/10)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Perm is not a permutation: %v", p)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ~2.138", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Errorf("empty-slice mean/stddev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestFiveNumber(t *testing.T) {
	f := FiveNumber([]float64{7, 1, 3, 5, 9})
	if f.Min != 1 || f.Max != 9 || f.Median != 5 {
		t.Errorf("five-number = %+v", f)
	}
	if f.IQR() <= 0 {
		t.Errorf("IQR = %v, want > 0", f.IQR())
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2 := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit = %v, %v, want 2, 1", slope, intercept)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Errorf("r2 = %v, want 1", r2)
	}
}

func TestCDFDescending(t *testing.T) {
	cdf := CDF([]float64{1, 3, 6})
	want := []float64{0.6, 0.9, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Errorf("clamp misbehaves")
	}
}

// Property: CDF output is sorted ascending and ends at 1 for any non-empty
// positive input.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(ws []uint16) bool {
		if len(ws) == 0 {
			return true
		}
		xs := make([]float64, len(ws))
		anyPos := false
		for i, w := range ws {
			xs[i] = float64(w)
			if w > 0 {
				anyPos = true
			}
		}
		cdf := CDF(xs)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1]-1e-12 {
				return false
			}
		}
		if anyPos && math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the five-number summary is ordered min<=Q1<=median<=Q3<=max.
func TestFiveNumberOrderedProperty(t *testing.T) {
	f := func(ws []int16) bool {
		if len(ws) == 0 {
			return true
		}
		xs := make([]float64, len(ws))
		for i, w := range ws {
			xs[i] = float64(w)
		}
		fn := FiveNumber(xs)
		return fn.Min <= fn.Q1 && fn.Q1 <= fn.Median &&
			fn.Median <= fn.Q3 && fn.Q3 <= fn.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormAndExpFinite(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if n := r.NormFloat64(); math.IsNaN(n) || math.IsInf(n, 0) {
			t.Fatalf("NormFloat64 produced %v", n)
		}
		if e := r.ExpFloat64(); e < 0 || math.IsInf(e, 0) {
			t.Fatalf("ExpFloat64 produced %v", e)
		}
	}
}
