// Command profile runs the three-level profiling workflow of Figure 4 on
// one workload and emits each level's report through the artifact pipeline.
//
//	profile -workload BFS                 # all three levels, defaults
//	profile -workload XSBench -scale 2 -local 0.25 -level 2
//	profile -workload HPL -platform cxl-gen5   # profile against a scenario
//	profile -workload HPL -format json         # machine-readable reports
//	profile -workload HPL -out profdir         # write level1.txt|.json|.csv ...
//
// See docs/CLI.md for the complete flag reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/units"
	"repro/internal/workloads/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	name := fs.String("workload", "", "workload name (HPL, Hypre, NekRS, BFS, SuperLU, XSBench)")
	scale := fs.Int("scale", 1, "input scale: 1, 2 or 4")
	local := fs.Float64("local", 0.5, "local tier capacity as a fraction of peak usage (levels 2-3)")
	level := fs.Int("level", 0, "run a single level (1, 2 or 3); 0 = all")
	platform := fs.String("platform", "baseline", "platform scenario (see `memdis platforms`)")
	format := fs.String("format", "text", "stdout renderer: text, json or csv")
	outDir := fs.String("out", "", "also write each report as level<N>.txt|.json|.csv into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-workload is required; known: %v", registry.Names())
	}
	entry, err := registry.Get(*name)
	if err != nil {
		return err
	}
	if *scale != 1 && *scale != 2 && *scale != 4 {
		return fmt.Errorf("scale must be 1, 2 or 4")
	}
	sp, err := scenario.Get(*platform)
	if err != nil {
		return err
	}
	f, err := report.ParseFormat(*format)
	if err != nil {
		return err
	}
	p := core.NewProfiler(sp.Platform)

	var docs []report.Doc
	if *level == 0 || *level == 1 {
		docs = append(docs, level1Doc(p, entry, *scale))
	}
	if *level == 0 || *level == 2 {
		docs = append(docs, level2Doc(p, entry, *scale, *local))
	}
	if *level == 0 || *level == 3 {
		docs = append(docs, level3Doc(p, entry, *scale, *local))
	}
	for _, d := range docs {
		d.Platform = sp.Name
		out, err := report.Render(d, f)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	if *outDir == "" {
		return nil
	}
	st := store(docs, sp.Name)
	ids := make([]string, len(docs))
	for i, d := range docs {
		ids[i] = d.Artifact
	}
	paths, err := st.WriteDir(context.Background(), *outDir, sp.Name, ids)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "profile: wrote %d report files to %s\n", len(paths), *outDir)
	return nil
}

// store seeds an artifact store with the already-computed level docs, so
// WriteDir renders without re-profiling.
func store(docs []report.Doc, platform string) *report.Store {
	st := report.NewStore(func(_ context.Context, pf, artifact string) (report.Doc, error) {
		return report.Doc{}, fmt.Errorf("profile: unknown report %q", artifact)
	})
	for _, d := range docs {
		st.Put(platform, d)
	}
	return st
}

// level1Doc builds the Level-1 (general characteristics) report document.
func level1Doc(p *core.Profiler, entry registry.Entry, scale int) report.Doc {
	rep := p.Level1(entry, scale)
	tb := report.NewTable("per-phase profile",
		"Phase", "Time", "AI (flop/B)", "Throughput", "Bandwidth", "PF acc", "PF cov")
	for _, ph := range rep.Phases {
		tb.Row(report.Str(ph.Name), report.Seconds(ph.Time), report.Fixed(ph.AI, 3),
			report.Flops(ph.Throughput), report.Bandwidth(ph.Bandwidth),
			report.Pct(ph.PrefetchAccuracy), report.Pct(ph.PrefetchCoverage))
	}
	return *report.New("level1").Append(
		report.NoteBlock(fmt.Sprintf("== Level 1: general characteristics (%s x%d) ==\n", rep.Workload, rep.Scale)),
		report.NoteBlock(fmt.Sprintf("peak footprint: %s\n", units.Bytes(rep.PeakFootprint))),
		tb.Block(),
		report.NoteBlock(fmt.Sprintf("prefetching: accuracy %s, coverage %s, excess traffic %s, performance gain %s\n\n",
			units.Percent(rep.Accuracy), units.Percent(rep.Coverage),
			units.Percent(rep.ExcessTraffic), units.Percent(rep.PerformanceGain))))
}

// level2Doc builds the Level-2 (multi-tier access) report document.
func level2Doc(p *core.Profiler, entry registry.Entry, scale int, local float64) report.Doc {
	rep := p.Level2(entry, scale, local)
	tb := report.NewTable("per-phase tier ratios",
		"Phase", "%RemoteAccess", "%RemoteCapacity", "AI", "Verdict")
	for _, ph := range rep.Phases {
		tb.Row(report.Str(ph.Name), report.Pct(ph.RemoteAccessRatio),
			report.Pct(ph.RemoteCapacityRatio), report.Fixed(ph.AI, 3),
			report.Str(rep.Verdict(ph).String()))
	}

	regions := core.SortRegionsHot(rep.Regions)
	if len(regions) > 6 {
		regions = regions[:6]
	}
	rt := report.NewTable("hottest allocation sites", "Region", "Local pages", "Remote pages", "Accesses")
	for _, r := range regions {
		rt.Row(report.Str(r.Region.Name), report.Int(r.LocalPages), report.Int(r.RemotePages),
			report.Uint(r.Accesses))
	}
	return *report.New("level2").Append(
		report.NoteBlock(fmt.Sprintf("== Level 2: multi-tier access (%s x%d, local=%.0f%% of peak) ==\n",
			rep.Workload, rep.Scale, local*100)),
		report.NoteBlock(fmt.Sprintf("references: R_cap=%s R_BW=%s\n", units.Percent(rep.RCap), units.Percent(rep.RBW))),
		tb.Block(),
		rt.Block(),
		report.NoteBlock("\n"))
}

// level3Doc builds the Level-3 (memory interference) report document.
func level3Doc(p *core.Profiler, entry registry.Entry, scale int, local float64) report.Doc {
	lois := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	rep := p.Level3(entry, scale, local, lois)
	headers := []string{"metric"}
	for _, l := range lois {
		headers = append(headers, fmt.Sprintf("LoI=%d", int(l*100)))
	}
	tb := report.NewTable("sensitivity to interference", headers...)
	row := []report.Cell{report.Str("rel perf")}
	idx := make([]int, len(rep.Relative))
	for i := range idx {
		idx[i] = i
	}
	sort.Ints(idx)
	for _, i := range idx {
		row = append(row, report.Fixed(rep.Relative[i], 3))
	}
	tb.Row(row...)
	return *report.New("level3").Append(
		report.NoteBlock(fmt.Sprintf("== Level 3: memory interference (%s x%d, local=%.0f%% of peak) ==\n",
			rep.Workload, rep.Scale, local*100)),
		tb.Block(),
		report.NoteBlock(fmt.Sprintf("interference coefficient: mean %.3f (min %.3f, max %.3f)\n",
			rep.ICMean, rep.ICLo, rep.ICHi)),
		report.NoteBlock(fmt.Sprintf("deployment advice: %s\n", rep.DeploymentAdvice())))
}
