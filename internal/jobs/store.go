package jobs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotExist marks a Store read of a key that was never written (or was
// deleted). Every Store implementation returns errors matching
// errors.Is(err, ErrNotExist) from Get on a missing key, so the manager
// can distinguish "no checkpoint yet" from a real I/O failure.
var ErrNotExist = errors.New("jobs: key does not exist")

// Store is the pluggable artifact-store backend job state persists
// through: a flat key → bytes namespace with slash-separated keys,
// deliberately shaped like an object store (put/get/list/delete over
// opaque keys, no directories, no partial reads) so a bucket-backed
// implementation can slot in later without changing the manager. Append
// is the one extension beyond the object-store minimum — it backs the
// JSON-lines checkpoint and event surfaces; an object-store
// implementation may emulate it with read-modify-write or multipart
// uploads, since the manager never requires an append to be atomic
// across processes (one manager owns a running job's keys at a time).
//
// Implementations must be safe for concurrent use.
type Store interface {
	// Put writes data under key, replacing any previous value atomically
	// (a reader sees the old bytes or the new bytes, never a mix).
	Put(key string, data []byte) error
	// Get returns the value under key, or an error matching ErrNotExist.
	Get(key string) ([]byte, error)
	// Append appends data to the value under key, creating it if absent.
	Append(key string, data []byte) error
	// List returns every key with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes key and every key under it ("key/..."). Deleting a
	// missing key is not an error.
	Delete(key string) error
}

// DiskStore is the filesystem Store: each key is a file under the root
// directory, Put is atomic via a same-directory rename, and Append uses
// O_APPEND writes — a crashed process leaves at most one partial trailing
// line, which the JSON-lines readers tolerate. This is the durable
// backend behind `memdis jobs` and repro.WithJobDir.
type DiskStore struct {
	root string
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: NewDiskStore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: NewDiskStore: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

// path maps a key to its file path, refusing escapes from the root.
func (d *DiskStore) path(key string) (string, error) {
	if key == "" || strings.HasPrefix(key, "/") || strings.Contains(key, "..") {
		return "", fmt.Errorf("jobs: invalid store key %q", key)
	}
	return filepath.Join(d.root, filepath.FromSlash(key)), nil
}

// Put implements Store with a write-to-temp-then-rename, so a concurrent
// reader (or a crash mid-write) never observes a torn value.
func (d *DiskStore) Put(key string, data []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Get implements Store.
func (d *DiskStore) Get(key string) ([]byte, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("jobs: %q: %w", key, ErrNotExist)
	}
	return b, err
}

// Append implements Store with a single O_APPEND write per call.
func (d *DiskStore) Append(key string, data []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// List implements Store.
func (d *DiskStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(d.root, func(p string, e os.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) && !strings.HasPrefix(filepath.Base(p), ".put-") {
			keys = append(keys, key)
		}
		return nil
	})
	sort.Strings(keys)
	return keys, err
}

// Delete implements Store: the key's file and any subtree under it.
func (d *DiskStore) Delete(key string) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.RemoveAll(p); err != nil {
		return err
	}
	return nil
}

// MemStore is the in-memory Store: jobs submitted against it run and
// report exactly like disk-backed ones but do not survive the process —
// the default backend of a repro.Service built without WithJobDir or
// WithJobStore, and the natural test double.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[string][]byte{}} }

// Put implements Store.
func (s *MemStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("jobs: %q: %w", key, ErrNotExist)
	}
	return append([]byte(nil), b...), nil
}

// Append implements Store.
func (s *MemStore) Append(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append(s.m[key], data...)
	return nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	for k := range s.m {
		if strings.HasPrefix(k, key+"/") {
			delete(s.m, k)
		}
	}
	return nil
}
