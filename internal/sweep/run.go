package sweep

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads/registry"
)

// DefaultSeed is the campaign base seed when Runner.Seed is zero. It is
// deliberately outside the seed ranges of the experiment drivers (the
// scenarios driver derives from the 4000 range), so sweep substreams never
// coincide with a driver's.
const DefaultSeed uint64 = 7000

// Cell holds one workload's headline metrics on one grid cell: the Level-2
// remote access ratio and verdict at the cell's capacity split, the
// Level-3 interference sensitivity and induced coefficient, and the
// Figure 13 scheduling comparison.
type Cell struct {
	// Cell is the grid cell's canonical name ("base" for the reference
	// system); Workload is the application the row measures.
	Cell, Workload string
	// RemoteAccess is the compute phase's (p2) remote access ratio at the
	// cell's capacity split; Verdict classifies it against the cell
	// platform's R_cap/R_BW references.
	RemoteAccess float64
	Verdict      core.TuningVerdict
	// RelPerf20 and RelPerf50 are relative performance under link
	// interference at LoI=20% and LoI=50%.
	RelPerf20, RelPerf50 float64
	// ICMean is the induced interference coefficient.
	ICMean float64
	// MeanSpeedup and P75Reduction compare the baseline and
	// interference-aware schedulers (the Figure 13 protocol).
	MeanSpeedup, P75Reduction float64
}

// Runner executes a campaign: the paper's headline analysis pipeline on
// every (grid cell, workload) pair, fanned out through a shared pool
// limiter with one deterministic substream per cell.
type Runner struct {
	// Grid is the declarative campaign to run.
	Grid Grid
	// Entries is the workload table (registry.All when nil).
	Entries []registry.Entry
	// Runs is the Monte-Carlo run count of the per-cell scheduling
	// comparison (the paper's 100 when zero).
	Runs int
	// Seed is the campaign base seed (DefaultSeed when zero); every cell
	// derives its own substream from it via stats.SeedAt.
	Seed uint64
	// BaseProfiler, when set, profiles the base platform — the hook the
	// experiment suite uses to share its warm caches. Cell platforms equal
	// to the base reuse it; distinct platforms get their own profiler,
	// shared across all cells with identical physics.
	BaseProfiler *core.Profiler
	// Cache is the dependency-keyed shared cache backing every cell
	// profiler the campaign creates, so cells that differ only along axes a
	// sub-result cannot read (a link axis for peak/Level-1/curve, a latency
	// axis for Level-2) reuse each other's work. When nil, RunContext
	// installs the BaseProfiler's cache if there is one, else a fresh
	// private cache — either way every cell of the campaign shares one.
	Cache *core.SharedCache
	// Isolated disables cross-cell sharing: each distinct platform gets a
	// fully private cache, reproducing the pre-sharing behaviour. This is
	// the benchmark baseline knob (cmd/swbench measures shared vs isolated)
	// — results are byte-identical either way, only the work differs.
	Isolated bool
	// Progress, when set, is called after each finished cell with the
	// number of completed and total cells (from the streaming aggregator;
	// calls are serialized under the aggregator's lock but arrive in
	// completion order, so done is strictly increasing).
	Progress func(done, total int)
	// Skip, when set, short-circuits one task: returning (cell, true) for
	// task index i stores that cell verbatim instead of recomputing it.
	// This is the checkpoint-resume hook — every cell is a pure function
	// of its grid coordinates (stats.SeedAt), so replaying a previously
	// computed cell is byte-identical to recomputing it. Skip must be safe
	// for concurrent calls and must not call back into the runner.
	Skip func(i int) (Cell, bool)
	// OnCell, when set, receives each freshly *computed* cell (skipped
	// tasks never reach it) with its task index, under the aggregator lock
	// and before the Progress callback — the streaming checkpoint hook.
	// Like Progress, it must not call back into the runner.
	OnCell func(i int, c Cell)
}

// Run executes every cell of the campaign within the given limiter's
// budget (nil means sequential) and returns the aggregated campaign.
// The result is byte-identical for any limiter width: cells are seeded by
// grid coordinates, results land in index-addressed slots, and the
// aggregator's reductions are order-independent.
func (r *Runner) Run(l *pool.Limiter) (*Campaign, error) {
	//repro:allow ctxflow — ctx-less compatibility wrapper; cancellable callers use RunContext
	return r.RunContext(context.Background(), l)
}

// RunContext is Run gated by ctx: once ctx is done, no new (cell, workload)
// task — and no new Monte-Carlo run inside one, since the nested scheduling
// sweeps draw from the same context-carrying limiter — starts. The call
// then returns ctx.Err() within one task boundary (in-flight cells finish;
// none of their results are returned) and leaks no goroutines: the pool
// workers drain the cancelled claim counter and exit before RunContext
// returns. An uncancelled RunContext returns the byte-identical campaign
// Run produces.
func (r *Runner) RunContext(ctx context.Context, l *pool.Limiter) (*Campaign, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cl := l.WithContext(ctx)
	l = cl
	if err := r.Grid.Validate(); err != nil {
		return nil, err
	}
	points, err := r.Grid.Points()
	if err != nil {
		return nil, err
	}
	entries := r.Entries
	if entries == nil {
		entries = registry.All()
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("sweep: no workloads")
	}
	runs := r.Runs
	if runs <= 0 {
		runs = 100
	}
	seed := r.Seed
	if seed == 0 {
		seed = DefaultSeed
	}

	// One profiler per distinct platform physics, all backed by one shared
	// dependency-keyed cache: cells differing only in capacity fraction (or
	// sharing a generation preset) reuse the whole profile, and cells
	// differing along a link axis reuse every link-independent sub-result.
	// Isolated mode reverts to a private cache per distinct platform — the
	// no-sharing baseline the sweep benchmark compares against.
	shared := r.Cache
	if shared == nil && !r.Isolated {
		if r.BaseProfiler != nil {
			shared = r.BaseProfiler.Cache()
		} else {
			shared = core.NewSharedCache()
		}
		// Publish the effective cache so the caller can observe hit/miss
		// counters after (or during) the run.
		r.Cache = shared
	}
	profs := map[machine.Config]*core.Profiler{}
	if r.BaseProfiler != nil && r.BaseProfiler.Config() == r.Grid.Base.Platform {
		profs[r.Grid.Base.Platform] = r.BaseProfiler
	}
	profFor := func(cfg machine.Config) *core.Profiler {
		if p, ok := profs[cfg]; ok {
			return p
		}
		var p *core.Profiler
		if r.Isolated {
			p = core.NewProfiler(cfg)
		} else {
			p = core.NewProfilerShared(cfg, shared)
		}
		profs[cfg] = p
		return p
	}
	profFor(r.Grid.Base.Platform)
	for _, p := range points {
		profFor(p.Spec.Platform)
	}

	// Flat task space: row 0 is the base reference, rows 1..len(points)
	// are the grid cells; within a row, one task per workload.
	nw := len(entries)
	total := (len(points) + 1) * nw
	ag := newAggregator(total, r.Progress, r.OnCell)
	l.ForEach(total, func(i int) {
		if r.Skip != nil {
			if cell, ok := r.Skip(i); ok {
				ag.replay(i, cell)
				return
			}
		}
		pi, wi := i/nw, i%nw
		sp := r.Grid.Base
		name := "base"
		if pi > 0 {
			sp = points[pi-1].Spec
			name = sp.Name
		}
		e := entries[wi]
		p := profs[sp.Platform]
		cell := Cell{Cell: name, Workload: e.Name}
		rep := p.Level2(e, 1, sp.HeadlineFraction)
		for _, ph := range rep.Phases {
			if ph.Name == "p2" {
				cell.RemoteAccess = ph.RemoteAccessRatio
				cell.Verdict = rep.Verdict(ph)
			}
		}
		l3 := p.Level3(e, 1, sp.HeadlineFraction, []float64{0.20, 0.50})
		cell.RelPerf20, cell.RelPerf50 = l3.Relative[0], l3.Relative[1]
		cell.ICMean = l3.ICMean
		cfg := p.ConfigForLocalFraction(e, 1, sp.HeadlineFraction)
		sum := sched.CompareLimited(e.Name, cfg, rep.Phase2Stats, runs,
			stats.SeedAt(seed, uint64(pi), uint64(wi)), l)
		cell.MeanSpeedup, cell.P75Reduction = sum.MeanSpeedup, sum.P75Reduction
		if ctx.Err() != nil {
			// Cancelled while this cell was in flight: the nested
			// Monte-Carlo sweep drew from the cancelled limiter and may have
			// been cut short, so the cell's scheduling stats are not the
			// deterministic values an uncancelled run produces. Discard it —
			// announcing it through OnCell would poison a checkpoint with a
			// truncated distribution.
			return
		}
		ag.add(i, cell)
	})
	if err := cl.Err(); err != nil {
		// Abandoned mid-campaign: the slots for unstarted cells are zero,
		// so no partial campaign is returned.
		return nil, err
	}

	c := &Campaign{
		Grid:   r.Grid,
		Points: points,
		Runs:   runs,
		Base:   ag.cells[:nw:nw],
	}
	for _, e := range entries {
		c.Workloads = append(c.Workloads, e.Name)
	}
	for pi := range points {
		row := ag.cells[(pi+1)*nw : (pi+2)*nw : (pi+2)*nw]
		c.Cells = append(c.Cells, row)
		c.Scores = append(c.Scores, meanOf(row, func(cl Cell) float64 { return cl.RelPerf50 }))
	}
	c.BaseScore = meanOf(c.Base, func(cl Cell) float64 { return cl.RelPerf50 })
	c.Best, c.Worst = frontier(c.Scores)
	return c, nil
}

// aggregator receives finished cells as they stream out of the fan-out:
// each is stored into its index-addressed slot and counted for progress.
// Both reductions are order-independent (slot writes and a counter), so
// streaming never compromises the byte-identical guarantee; the
// order-sensitive reductions — floating-point score sums and the frontier
// — run over the slots in index order once the fan-out drains.
type aggregator struct {
	mu       sync.Mutex
	cells    []Cell
	done     int
	progress func(done, total int)
	onCell   func(i int, c Cell)
}

func newAggregator(total int, progress func(done, total int), onCell func(i int, c Cell)) *aggregator {
	return &aggregator{cells: make([]Cell, total), progress: progress, onCell: onCell}
}

// add streams one freshly computed cell into the aggregator. The OnCell
// and Progress callbacks run under the aggregator lock, which is what
// makes the documented "calls are serialized" contract hold — callbacks
// must not call back into the runner.
func (ag *aggregator) add(i int, c Cell) { ag.store(i, c, true) }

// replay stores a checkpoint-restored cell: counted for progress, never
// re-announced through OnCell (it was checkpointed by a previous run).
func (ag *aggregator) replay(i int, c Cell) { ag.store(i, c, false) }

func (ag *aggregator) store(i int, c Cell, computed bool) {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	ag.cells[i] = c
	ag.done++
	if computed && ag.onCell != nil {
		ag.onCell(i, c)
	}
	if ag.progress != nil {
		ag.progress(ag.done, len(ag.cells))
	}
}

// frontier returns the best and worst grid-cell indices by score (ties to
// the lower index, so the result never depends on completion order).
func frontier(scores []float64) (best, worst int) {
	best, worst = -1, -1
	for pi, s := range scores {
		if best < 0 || s > scores[best] {
			best = pi
		}
		if worst < 0 || s < scores[worst] {
			worst = pi
		}
	}
	return best, worst
}

// Campaign is one executed sweep: every grid cell's headline metrics plus
// the base reference, reducible to the "sweep" and "sensitivity" artifact
// documents.
type Campaign struct {
	// Grid is the campaign declaration; Points its generated cells.
	Grid   Grid
	Points []Point
	// Workloads are the measured applications in table order.
	Workloads []string
	// Runs is the Monte-Carlo run count of each cell's scheduling
	// comparison.
	Runs int
	// Base holds the reference system's cells (one per workload); Cells
	// holds the grid: Cells[pi][wi] is grid cell pi measured on workload wi.
	Base  []Cell
	Cells [][]Cell
	// Scores[pi] is cell pi's campaign score — the mean RelPerf50 across
	// workloads (higher is better) — and BaseScore the reference's.
	Scores    []float64
	BaseScore float64
	// Best and Worst index the frontier cells by score (-1 when the grid
	// is empty).
	Best, Worst int
}

// meanOf averages f over cells in index order (deterministic summation).
func meanOf(cells []Cell, f func(Cell) float64) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += f(c)
	}
	return sum / float64(len(cells))
}

// Sweep reduces the campaign to the "sweep" artifact: the long-form
// per-cell table — base reference first, then one row per (cell, workload)
// in grid order — with one column per axis coordinate, CSV-friendly (every
// row is self-contained; the raw values ride in the cells).
func (c *Campaign) Sweep() report.Doc {
	headers := []string{"Cell"}
	for _, a := range c.Grid.Axes {
		headers = append(headers, a.Name)
	}
	headers = append(headers, "Workload", "%RemoteAccess", "Verdict",
		"RelPerf@20", "RelPerf@50", "IC", "MeanSpeedup", "P75 cut")
	tb := report.NewTable(fmt.Sprintf(
		"Campaign grid: %s (%d cells x %d workloads, %d scheduler runs/cell)",
		c.Grid.Key(), len(c.Points), len(c.Workloads), c.Runs), headers...)
	row := func(coords []Coord, cl Cell) {
		cells := []report.Cell{report.Str(cl.Cell)}
		for ai := range c.Grid.Axes {
			if coords == nil {
				cells = append(cells, report.Str("-"))
			} else {
				cells = append(cells, report.Num(coords[ai].Value))
			}
		}
		cells = append(cells,
			report.Str(cl.Workload),
			report.Pct(cl.RemoteAccess),
			report.Str(cl.Verdict.String()),
			report.Fixed(cl.RelPerf20, 3),
			report.Fixed(cl.RelPerf50, 3),
			report.Fixed(cl.ICMean, 2),
			report.Pct(cl.MeanSpeedup),
			report.Pct(cl.P75Reduction))
		tb.Row(cells...)
	}
	for _, cl := range c.Base {
		row(nil, cl)
	}
	for pi, p := range c.Points {
		for _, cl := range c.Cells[pi] {
			row(p.Coords, cl)
		}
	}
	return *report.New("sweep").Append(
		report.NoteBlock(fmt.Sprintf("== Parameter-sweep campaign over generated scenarios (base: %s) ==\n", c.Grid.Base.Name)),
		tb.Block(), report.Gap())
}

// marginal is the mean of a metric over every cell whose coordinate on one
// axis equals one value.
type marginal struct {
	cells                         int
	relPerf50, speedup, remoteAcc float64
}

// marginalAt computes the marginal mean at (axis index, value index) in
// deterministic grid order.
func (c *Campaign) marginalAt(ai, vi int) marginal {
	var m marginal
	v := c.Grid.Axes[ai].Values[vi]
	for pi, p := range c.Points {
		if p.Coords[ai].Value != v {
			continue
		}
		for _, cl := range c.Cells[pi] {
			m.cells++
			m.relPerf50 += cl.RelPerf50
			m.speedup += cl.MeanSpeedup
			m.remoteAcc += cl.RemoteAccess
		}
	}
	if m.cells > 0 {
		n := float64(m.cells)
		m.relPerf50 /= n
		m.speedup /= n
		m.remoteAcc /= n
	}
	return m
}

// Sensitivity reduces the campaign to the "sensitivity" artifact: per-axis
// marginal means of the headline metrics as deltas against the base
// reference, followed by the best/worst frontier cells — which corner of
// the design grid helps, which hurts, and by how much.
func (c *Campaign) Sensitivity() report.Doc {
	base := marginal{
		cells:     len(c.Base),
		relPerf50: c.BaseScore,
		speedup:   meanOf(c.Base, func(cl Cell) float64 { return cl.MeanSpeedup }),
		remoteAcc: meanOf(c.Base, func(cl Cell) float64 { return cl.RemoteAccess }),
	}
	mt := report.NewTable(
		"Per-axis marginal means (delta vs the base system)",
		"Axis", "Value", "Cells", "RelPerf@50", "dRelPerf@50",
		"MeanSpeedup", "dSpeedup", "%RemoteAccess", "dRemote")
	mt.Row(report.Str("(base)"), report.Str(c.Grid.Base.Name), report.Int(base.cells),
		report.Fixed(base.relPerf50, 3), report.Fixed(0, 3),
		report.Pct(base.speedup), report.Fixed(0, 3),
		report.Pct(base.remoteAcc), report.Fixed(0, 3))
	for ai, a := range c.Grid.Axes {
		for vi := range a.Values {
			m := c.marginalAt(ai, vi)
			mt.Row(report.Str(a.Name), report.Num(a.Values[vi]), report.Int(m.cells),
				report.Fixed(m.relPerf50, 3), report.Fixed(m.relPerf50-base.relPerf50, 3),
				report.Pct(m.speedup), report.Fixed(m.speedup-base.speedup, 3),
				report.Pct(m.remoteAcc), report.Fixed(m.remoteAcc-base.remoteAcc, 3))
		}
	}

	ft := report.NewTable(
		"Frontier cells by campaign score (mean RelPerf@50 across workloads)",
		"Rank", "Cell", "Score", "dScore vs base", "MeanSpeedup", "%RemoteAccess")
	frontierRow := func(rank string, pi int) {
		if pi < 0 {
			return
		}
		row := c.Cells[pi]
		ft.Row(report.Str(rank), report.Str(c.Points[pi].Spec.Name),
			report.Fixed(c.Scores[pi], 3), report.Fixed(c.Scores[pi]-c.BaseScore, 3),
			report.Pct(meanOf(row, func(cl Cell) float64 { return cl.MeanSpeedup })),
			report.Pct(meanOf(row, func(cl Cell) float64 { return cl.RemoteAccess })))
	}
	frontierRow("best", c.Best)
	frontierRow("worst", c.Worst)

	return *report.New("sensitivity").Append(
		report.NoteBlock(fmt.Sprintf("== Axis sensitivity: %s (%d cells, %d runs/cell) ==\n",
			c.Grid.Key(), len(c.Points), c.Runs)),
		mt.Block(), report.Gap(), ft.Block(), report.Gap())
}
