// Package sbench is the HTTP load harness of the serving layer — the
// cmd/lbench of `memdis serve`. It hammers a (warmed) server across
// routes, formats and encodings with a bounded worker pool per target,
// measures per-request latency, and snapshots the server's /v1/stats
// counters around the run so cache behavior (renders, coalesced joins,
// 304s, gzipped bodies) is part of the result, not a guess. cmd/sbench
// drives it and writes the JSON that BENCH_serve.json commits.
//
// Three request shapes per target: plain GETs, gzip-negotiated GETs
// (Accept-Encoding: gzip, body counted compressed), and conditional GETs
// (one priming request captures the ETag, the measured requests carry
// If-None-Match and are expected to come back 304). Cold-burst targets
// fire their whole request count concurrently at an uncached key to
// exercise the server's request coalescing.
package sbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Target is one benchmarked request shape: a path plus the headers that
// select its representation, fired Requests times from Concurrency
// workers.
type Target struct {
	// Name labels the target in the result.
	Name string `json:"name"`
	// Path is the request path (plus query) relative to the base URL.
	Path string `json:"path"`
	// Accept, when set, is sent as the Accept header.
	Accept string `json:"accept,omitempty"`
	// Gzip sends Accept-Encoding: gzip; bytes are counted compressed.
	Gzip bool `json:"gzip,omitempty"`
	// Conditional primes one request to capture the ETag, then sends
	// If-None-Match on every measured request (expecting 304s).
	Conditional bool `json:"conditional,omitempty"`
	// Requests is the measured request count.
	Requests int `json:"requests"`
	// Concurrency is the worker count draining the request budget.
	Concurrency int `json:"concurrency"`
}

// Latency is a latency distribution in milliseconds.
type Latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// TargetResult is one target's measurement.
type TargetResult struct {
	Target
	// Errors counts transport failures and unexpected (>=500) statuses.
	Errors int `json:"errors"`
	// Status histograms the response codes ("200", "304", ...).
	Status map[string]int `json:"status"`
	// Bytes is the total body bytes read (compressed bytes for gzip).
	Bytes int64 `json:"bytes"`
	// ETag is the validator the conditional priming request captured.
	ETag string `json:"etag,omitempty"`
	// Latency is the per-request latency distribution.
	Latency Latency `json:"latency_ms"`
	// Throughput is completed requests per second of target wall time.
	Throughput float64 `json:"throughput_rps"`

	// samples carries the raw latencies to the run-wide aggregation;
	// unexported, so it never serializes.
	samples []float64
}

// Totals aggregates the whole run.
type Totals struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Seconds    float64 `json:"duration_s"`
	Throughput float64 `json:"throughput_rps"`
	Latency    Latency `json:"latency_ms"`
}

// ServerCounters is the /v1/stats snapshot pair bracketing the run, plus
// their difference — the run's own cache behavior.
type ServerCounters struct {
	Before map[string]int64 `json:"before,omitempty"`
	After  map[string]int64 `json:"after,omitempty"`
	Delta  map[string]int64 `json:"delta,omitempty"`
}

// Result is the harness output — what BENCH_serve.json holds.
type Result struct {
	Schema  string         `json:"schema"`
	Base    string         `json:"base"`
	Targets []TargetResult `json:"targets"`
	Total   Totals         `json:"total"`
	Server  ServerCounters `json:"server"`
}

// Config configures a run.
type Config struct {
	// Base is the server's base URL, e.g. http://localhost:8080.
	Base string
	// Targets run sequentially, each with its own worker pool.
	Targets []Target
	// Client defaults to a fresh http.Client (request lifetimes are
	// bounded by the run's ctx).
	Client *http.Client
}

// Schema is the Result.Schema value this package writes.
const Schema = "sbench/v1"

// Run executes every target in order and returns the aggregated result.
// The /v1/stats snapshots are best-effort: a server without the route
// leaves Server empty rather than failing the run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	res := &Result{Schema: Schema, Base: cfg.Base}
	res.Server.Before = fetchStats(ctx, client, cfg.Base)
	var all []float64
	start := time.Now()
	for _, t := range cfg.Targets {
		tr, err := runTarget(ctx, client, cfg.Base, t)
		if err != nil {
			return nil, fmt.Errorf("sbench: target %s: %w", t.Name, err)
		}
		res.Targets = append(res.Targets, *tr)
		res.Total.Requests += t.Requests
		res.Total.Errors += tr.Errors
		all = append(all, tr.samples...)
	}
	res.Total.Seconds = time.Since(start).Seconds()
	if res.Total.Seconds > 0 {
		res.Total.Throughput = float64(res.Total.Requests) / res.Total.Seconds
	}
	res.Total.Latency = quantiles(all)
	res.Server.After = fetchStats(ctx, client, cfg.Base)
	res.Server.Delta = delta(res.Server.Before, res.Server.After)
	return res, nil
}

// runTarget fires one target's request budget through its worker pool.
func runTarget(ctx context.Context, client *http.Client, base string, t Target) (*TargetResult, error) {
	if t.Requests <= 0 {
		return nil, fmt.Errorf("no requests configured")
	}
	if t.Concurrency <= 0 {
		t.Concurrency = 1
	}
	tr := &TargetResult{Target: t, Status: map[string]int{}}
	if t.Conditional {
		etag, err := primeETag(ctx, client, base, t)
		if err != nil {
			return nil, err
		}
		tr.ETag = etag
	}
	type sample struct {
		ms     float64
		status int
		bytes  int64
		err    error
	}
	jobs := make(chan struct{}, t.Requests)
	for i := 0; i < t.Requests; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	out := make(chan sample, t.Requests)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < t.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				s0 := time.Now()
				status, n, err := doRequest(ctx, client, base, t, tr.ETag)
				out <- sample{ms: float64(time.Since(s0).Microseconds()) / 1e3, status: status, bytes: n, err: err}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(out)
	samples := make([]float64, 0, t.Requests)
	for s := range out {
		if s.err != nil || s.status >= 500 {
			tr.Errors++
		}
		if s.status > 0 {
			tr.Status[strconv.Itoa(s.status)]++
		}
		tr.Bytes += s.bytes
		samples = append(samples, s.ms)
	}
	tr.Latency = quantiles(samples)
	if elapsed > 0 {
		tr.Throughput = float64(t.Requests) / elapsed
	}
	tr.samples = samples
	return tr, nil
}

// doRequest performs one measured request and returns status and body
// bytes read.
func doRequest(ctx context.Context, client *http.Client, base string, t Target, etag string) (int, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+t.Path, nil)
	if err != nil {
		return 0, 0, err
	}
	if t.Accept != "" {
		req.Header.Set("Accept", t.Accept)
	}
	if t.Gzip {
		// Explicit negotiation: the transport then hands back the raw
		// compressed body, which is what we count.
		req.Header.Set("Accept-Encoding", "gzip")
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, n, err
}

// primeETag captures the validator a conditional target revalidates with.
func primeETag(ctx context.Context, client *http.Client, base string, t Target) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+t.Path, nil)
	if err != nil {
		return "", err
	}
	if t.Accept != "" {
		req.Header.Set("Accept", t.Accept)
	}
	if t.Gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		return "", fmt.Errorf("priming GET %s returned no ETag (status %d)", t.Path, resp.StatusCode)
	}
	return etag, nil
}

// fetchStats snapshots /v1/stats; a missing route or decode failure
// returns nil (the counters are an enrichment, not a requirement).
func fetchStats(ctx context.Context, client *http.Client, base string) map[string]int64 {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil
	}
	return m
}

// delta subtracts counter snapshots key-wise.
func delta(before, after map[string]int64) map[string]int64 {
	if after == nil {
		return nil
	}
	d := map[string]int64{}
	for k, v := range after {
		d[k] = v - before[k]
	}
	return d
}

// quantiles computes the latency distribution of a sample set.
func quantiles(samples []float64) Latency {
	if len(samples) == 0 {
		return Latency{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Latency{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Mean: sum / float64(len(s)),
		Max:  s[len(s)-1],
	}
}

// WaitReady polls /healthz until the server reports ready (the warm
// completed) or ctx dies. It is how the harness avoids measuring a
// half-warmed cache.
func WaitReady(ctx context.Context, client *http.Client, base string) error {
	if client == nil {
		client = &http.Client{}
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			var h struct {
				Status string `json:"status"`
				Ready  bool   `json:"ready"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if decErr == nil && resp.StatusCode == http.StatusOK && h.Ready {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("sbench: server at %s not ready: %w", base, ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// DefaultProfile is the standard route/format/encoding matrix the
// committed benchmark runs: hot artifact renders in every format, a
// gzip-negotiated and a conditional variant, the registry tables, the
// memoized default sweep — each n requests at concurrency c — plus one
// single-wave cold burst per cold path (c concurrent requests at an
// uncached key, exercising coalescing).
func DefaultProfile(n, c int, cold []string) []Target {
	mk := func(name, path string, mod func(*Target)) Target {
		t := Target{Name: name, Path: path, Requests: n, Concurrency: c}
		if mod != nil {
			mod(&t)
		}
		return t
	}
	targets := []Target{
		mk("artifact-text", "/v1/artifacts/figure9", nil),
		mk("artifact-json", "/v1/artifacts/figure9?format=json", nil),
		mk("artifact-csv", "/v1/artifacts/table1?format=csv", nil),
		mk("artifact-json-gzip", "/v1/artifacts/figure9?format=json", func(t *Target) { t.Gzip = true }),
		mk("artifact-conditional", "/v1/artifacts/figure9?format=json", func(t *Target) { t.Conditional = true }),
		mk("platforms-json", "/v1/platforms?format=json", nil),
		mk("workloads-text", "/v1/workloads", nil),
		mk("sweep-json", "/v1/sweep?format=json", nil),
		mk("sweep-conditional", "/v1/sweep?format=json", func(t *Target) { t.Conditional = true }),
	}
	for i, p := range cold {
		targets = append(targets, Target{
			Name:        fmt.Sprintf("cold-burst-%d", i+1),
			Path:        p,
			Requests:    c,
			Concurrency: c,
		})
	}
	return targets
}
