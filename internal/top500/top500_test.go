package top500

import "testing"

func TestTop10HasTenSystems(t *testing.T) {
	syss := Top10Nov2022()
	if len(syss) != 10 {
		t.Fatalf("got %d systems, want 10", len(syss))
	}
	for i, s := range syss {
		if s.Rank != i+1 {
			t.Errorf("system %s rank = %d, want %d", s.Name, s.Rank, i+1)
		}
		if s.Nodes <= 0 {
			t.Errorf("system %s has no node count", s.Name)
		}
	}
}

func TestFrontierConfig(t *testing.T) {
	s := Top10Nov2022()[0]
	if s.Name != "Frontier" || s.DDRPerNodeGB != 512 || s.HBMPerNodeGB != 512 {
		t.Errorf("Frontier config wrong: %+v", s)
	}
	if s.TotalPerNodeGB() != 1024 {
		t.Errorf("Frontier total/node = %v, want 1024", s.TotalPerNodeGB())
	}
}

func TestTimelineSortedAndGrowing(t *testing.T) {
	tl := Timeline()
	if len(tl) < 8 {
		t.Fatalf("timeline too short: %d entries", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Year < tl[i-1].Year {
			t.Fatalf("timeline not sorted at %d", i)
		}
	}
	// The motivating trend: capacity per node grew by more than an order
	// of magnitude over 15 years.
	first, last := tl[0], tl[len(tl)-1]
	if last.TotalPerNodeGB() < 10*first.TotalPerNodeGB() {
		t.Errorf("per-node capacity growth %vGB -> %vGB is below 10x",
			first.TotalPerNodeGB(), last.TotalPerNodeGB())
	}
}

func TestCostModelMatchesPaperEstimates(t *testing.T) {
	m := DefaultCostModel()
	// Paper Table 1 rounded estimates in $M.
	cases := []struct {
		name     string
		ddrM     float64
		hbmM     float64
		tolerant float64 // relative tolerance
	}{
		{"Frontier", 34, 135, 0.15},
		{"LUMI-G", 9.2, 35, 0.15},
		{"Summit", 17, 12, 0.25},
		{"Sunway TaihuLight", 9.2, 0, 0.15},
	}
	idx := map[string]System{}
	for _, s := range Top10Nov2022() {
		idx[s.Name] = s
	}
	for _, c := range cases {
		s, ok := idx[c.name]
		if !ok {
			t.Fatalf("system %s missing", c.name)
		}
		gotDDR := m.DDRCost(s) / 1e6
		gotHBM := m.HBMCost(s) / 1e6
		if !within(gotDDR, c.ddrM, c.tolerant) {
			t.Errorf("%s DDR cost = $%.1fM, paper ~$%.1fM", c.name, gotDDR, c.ddrM)
		}
		if !within(gotHBM, c.hbmM, c.tolerant) {
			t.Errorf("%s HBM cost = $%.1fM, paper ~$%.1fM", c.name, gotHBM, c.hbmM)
		}
	}
}

func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d/want <= tol
}

func TestHBMCostlierThanDDRPerGB(t *testing.T) {
	m := DefaultCostModel()
	if m.HBMMultiplier < 3 || m.HBMMultiplier > 5 {
		t.Errorf("HBM multiplier %v outside the paper's 3-5x band", m.HBMMultiplier)
	}
	s := System{DDRPerNodeGB: 100, HBMPerNodeGB: 100, Nodes: 1}
	if m.HBMCost(s) <= m.DDRCost(s) {
		t.Errorf("equal capacity should cost more in HBM")
	}
}
