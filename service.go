package repro

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/pool"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// Service is the unified facade of the library: one handle owning every
// shared resource the free functions used to scatter — the per-platform
// experiment suites with their warm profiler caches, the bounded worker
// pool, the memoizing artifact store, and the single-flight sweep-campaign
// memo. Every execution method is context-first: cancellation and
// deadlines propagate through the whole engine (driver fan-outs, sweep
// cells, Monte-Carlo runs) and take effect within one task boundary,
// without leaking goroutines and without perturbing results — an
// uncancelled run through the Service is byte-identical to the legacy
// free-function path.
//
// A Service is safe for concurrent use: artifact computation serializes
// through the store (the engine parallelizes internally), and sweep
// campaigns are single-flight per grid.
//
// Construct one with New and functional options:
//
//	svc, err := repro.New(
//		repro.WithWorkers(8),
//		repro.WithDefaultPlatform("cxl-gen5"),
//	)
//	doc, err := svc.Artifact(ctx, repro.ArtifactRequest{Artifact: "figure9"})
type Service struct {
	scenarios       []Scenario
	defaultPlatform string
	workers         int
	runs            int
	entries         []WorkloadEntry
	cache           bool
	logger          *log.Logger
	loggerSet       bool

	// warm marks a WithWarm service: it starts not-ready and flips ready
	// once StartWarm has computed (and rendered) the warm set.
	warm          bool
	warmPlatforms []string
	warmMu        sync.Mutex
	warmDone      chan struct{}
	warmErr       error
	ready         atomic.Bool

	// limiter is the one shared concurrency budget (WithWorkers) every
	// engine invocation on every suite draws from — concurrent requests
	// queue inside it instead of multiplying workers.
	limiter *pool.Limiter

	// profCache is the one dependency-keyed profile cache behind every
	// suite, sweep runner and campaign job this Service executes: profile
	// sub-results are keyed by the configuration fields they actually read,
	// so any two platforms the Service touches — scenario variants, sweep
	// cells — share whatever the differing fields cannot influence.
	profCache *core.SharedCache

	// jobStore persists campaign jobs (WithJobStore/WithJobDir; in-memory
	// by default) and jobs is the manager executing them on the shared
	// limiter.
	jobStore jobs.Store
	jobs     *jobs.Manager

	mu     sync.Mutex
	suites map[string]*ExperimentSuite
	// compute serializes uncached computation (WithCache(false)) — the
	// role the store's computation slot plays on the cached path — as a
	// one-slot semaphore so waiters can abandon on context death.
	compute chan struct{}
	store   *ArtifactStore
}

// Option configures a Service under construction (see New).
type Option func(*Service) error

// WithWorkers bounds the Service's worker pool: every fan-out — the
// experiment-level spread of RunAll, each driver's internal fan-out, sweep
// cells and the Monte-Carlo runs inside them — draws from this one budget,
// so nesting never multiplies the worker count. Zero or negative selects
// every core. The default is 1 (sequential); results never depend on the
// worker count.
func WithWorkers(n int) Option {
	return func(s *Service) error {
		s.workers = pool.Workers(n)
		return nil
	}
}

// WithScenarios restricts (or extends) the platform scenarios the Service
// serves; the default is the full registry (Platforms()). The first listed
// scenario becomes the default platform unless WithDefaultPlatform says
// otherwise. Every spec must validate.
func WithScenarios(scs ...Scenario) Option {
	return func(s *Service) error {
		if len(scs) == 0 {
			return fmt.Errorf("repro: WithScenarios: no scenarios")
		}
		s.scenarios = make([]Scenario, len(scs))
		for i, sp := range scs {
			sp.CapacityFractions = append([]float64(nil), sp.CapacityFractions...)
			s.scenarios[i] = sp
		}
		return nil
	}
}

// WithDefaultPlatform selects the scenario an empty ArtifactRequest.Platform
// (and the HTTP API's missing ?platform=) resolves to. The name must be one
// of the Service's scenarios. The default is the first scenario — "baseline"
// for the registry set.
func WithDefaultPlatform(name string) Option {
	return func(s *Service) error {
		s.defaultPlatform = name
		return nil
	}
}

// WithCache switches the memoizing artifact store on the request paths
// (Artifact, Rendered, the HTTP API). It is on by default: each (platform,
// artifact) document computes once and each (platform, artifact, format)
// renders once. WithCache(false) recomputes on every request — for
// benchmarking and tests — while Store-mediated surfaces (WriteDir, seeded
// RunAll output) still memoize. Sweep campaigns always memoize
// single-flight on their suite regardless.
func WithCache(on bool) Option {
	return func(s *Service) error {
		s.cache = on
		return nil
	}
}

// WithRuns sets the Monte-Carlo run count of every scheduling comparison
// (Figure 13 panels, sweep cells). Zero keeps the paper's 100. Tests and
// smoke jobs lower it; the goldens pin the default.
func WithRuns(n int) Option {
	return func(s *Service) error {
		if n < 0 {
			return fmt.Errorf("repro: WithRuns: negative run count %d", n)
		}
		s.runs = n
		return nil
	}
}

// WithWorkloads restricts the workload table every driver and sweep
// iterates over; the default is the paper's six applications (Workloads()).
func WithWorkloads(entries ...WorkloadEntry) Option {
	return func(s *Service) error {
		if len(entries) == 0 {
			return fmt.Errorf("repro: WithWorkloads: no workloads")
		}
		s.entries = append([]WorkloadEntry(nil), entries...)
		return nil
	}
}

// WithLogger installs the logger the HTTP API's request-logging middleware
// writes to. The default logs to standard error; a nil logger disables
// request logging.
func WithLogger(l *log.Logger) Option {
	return func(s *Service) error {
		s.logger = l
		s.loggerSet = true
		return nil
	}
}

// New builds a Service from the given options (see Option and the
// defaults on each With* constructor). It validates the configuration —
// every scenario spec, the default-platform name — and returns an error
// rather than a half-built service.
func New(opts ...Option) (*Service, error) {
	s := &Service{
		scenarios: scenario.All(),
		workers:   1,
		cache:     true,
		suites:    map[string]*ExperimentSuite{},
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	for _, sp := range s.scenarios {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("repro: New: %w", err)
		}
	}
	if s.defaultPlatform == "" {
		s.defaultPlatform = s.scenarios[0].Name
	}
	if _, err := scenario.GetFrom(s.scenarios, s.defaultPlatform); err != nil {
		return nil, fmt.Errorf("repro: New: default platform: %w", err)
	}
	for _, name := range s.warmPlatforms {
		if _, err := scenario.GetFrom(s.scenarios, name); err != nil {
			return nil, fmt.Errorf("repro: New: warm platform: %w", err)
		}
	}
	if s.warm && !s.cache {
		return nil, fmt.Errorf("repro: New: WithWarm requires the artifact cache (WithCache(false) recomputes every request)")
	}
	s.ready.Store(!s.warm)
	s.limiter = pool.NewLimiter(s.workers)
	s.profCache = core.NewSharedCache()
	s.compute = make(chan struct{}, 1)
	s.store = NewArtifactStore(s.source)
	if s.jobStore == nil {
		s.jobStore = jobs.NewMemStore()
	}
	mgr, err := jobs.NewManager(jobs.Config{
		Store:     s.jobStore,
		NewRunner: s.newSweepRunner,
		Limiter:   s.limiter,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: New: %w", err)
	}
	s.jobs = mgr
	return s, nil
}

// defaultService backs the legacy package-level free functions: a Service
// on the registry scenarios with the historical defaults (sequential, the
// paper's run counts and workload table).
var (
	defaultOnce    sync.Once
	defaultService *Service
)

// Default returns the package-level default Service the legacy free
// functions delegate to: registry scenarios, "baseline" default platform,
// one worker, caching on. It is built lazily, once.
func Default() *Service {
	defaultOnce.Do(func() {
		var err error
		defaultService, err = New()
		if err != nil {
			panic(err) // unreachable: the defaults validate
		}
	})
	return defaultService
}

// Scenarios returns the platform scenarios this Service serves, registry
// order preserved. The specs are copies down to their capacity sweeps, so
// callers may modify them freely (the contract scenario.All established).
func (s *Service) Scenarios() []Scenario {
	out := make([]Scenario, len(s.scenarios))
	for i, sp := range s.scenarios {
		sp.CapacityFractions = append([]float64(nil), sp.CapacityFractions...)
		out[i] = sp
	}
	return out
}

// Workloads returns the workload table this Service's drivers iterate
// over. The slice is a copy.
func (s *Service) Workloads() []WorkloadEntry {
	if s.entries != nil {
		return append([]WorkloadEntry(nil), s.entries...)
	}
	return registry.All()
}

// IDs lists every artifact id this Service serves, in paper order.
func (s *Service) IDs() []string { return append([]string(nil), experiments.IDs...) }

// DefaultPlatform returns the scenario name an empty request platform
// resolves to.
func (s *Service) DefaultPlatform() string { return s.defaultPlatform }

// Store returns the Service's memoizing artifact store — the render-once
// cache behind Artifact, Rendered and the HTTP API, and the target RunAll
// seeds. Callers may Put precomputed documents to serve them through the
// Service's surfaces.
func (s *Service) Store() *ArtifactStore { return s.store }

// platform resolves a request's platform name ("" means the default)
// against the Service's scenario set.
func (s *Service) platform(name string) (Scenario, error) {
	if name == "" {
		name = s.defaultPlatform
	}
	return scenario.GetFrom(s.scenarios, name)
}

// suite returns the Service's memoized experiment suite for a scenario
// name, building it on first use with the Service's worker budget, run
// count and workload table installed.
func (s *Service) suite(name string) (*ExperimentSuite, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if su, ok := s.suites[name]; ok {
		return su, nil
	}
	sp, err := scenario.GetFrom(s.scenarios, name)
	if err != nil {
		return nil, err
	}
	su := experiments.NewSuiteForShared(sp, s.profCache)
	su.Workers = s.workers
	su.Limiter = s.limiter
	if s.runs > 0 {
		su.Runs = s.runs
	}
	if s.entries != nil {
		su.Entries = append([]WorkloadEntry(nil), s.entries...)
	}
	s.suites[name] = su
	return su, nil
}

// source is the artifact source the Service's store sits in front of: it
// resolves the (platform, artifact) pair strictly — the platform must be
// one of the Service's scenarios, the id must be canonical (an alias
// errors with a pointer to the canonical id, so store keys and served URLs
// never diverge from the document's Artifact field) — and computes the
// document through the suite's context-aware path.
func (s *Service) source(ctx context.Context, platform, artifact string) (Doc, error) {
	canon, err := experiments.CanonicalID(artifact)
	if err != nil {
		return Doc{}, err
	}
	if canon != artifact {
		return Doc{}, &experiments.AliasError{Alias: artifact, Canonical: canon}
	}
	su, err := s.suite(platform)
	if err != nil {
		return Doc{}, err
	}
	r, err := su.RunContext(ctx, canon)
	if err != nil {
		return Doc{}, err
	}
	return r.Report(), nil
}

// ArtifactRequest names one artifact on one platform.
type ArtifactRequest struct {
	// Platform is the scenario name; empty selects the Service's default.
	Platform string
	// Artifact is the artifact id; figure aliases ("fig9") are accepted
	// and canonicalized.
	Artifact string
}

// resolve canonicalizes a request: platform resolved against the scenario
// set, artifact id canonicalized through the alias table.
func (s *Service) resolve(req ArtifactRequest) (platform, artifact string, err error) {
	sp, err := s.platform(req.Platform)
	if err != nil {
		return "", "", err
	}
	canon, err := experiments.CanonicalID(req.Artifact)
	if err != nil {
		return "", "", err
	}
	return sp.Name, canon, nil
}

// Artifact computes (or returns the memoized) typed document of one
// artifact. Cancellation propagates into the experiment engine: once ctx
// is done the computation stops at its next task boundary and Artifact
// returns ctx.Err(); a caller waiting behind another computation abandons
// the wait immediately. An uncancelled document is byte-identical (through
// every renderer) to the legacy free-function path.
func (s *Service) Artifact(ctx context.Context, req ArtifactRequest) (Doc, error) {
	platform, artifact, err := s.resolve(req)
	if err != nil {
		return Doc{}, err
	}
	if !s.cache {
		return s.computeUncached(ctx, platform, artifact)
	}
	return s.store.Doc(ctx, platform, artifact)
}

// computeUncached is the WithCache(false) document path: serialized like
// the store's — including the context-aware wait, so a cancelled caller
// abandons immediately instead of queueing behind a long computation —
// and never memoized.
func (s *Service) computeUncached(ctx context.Context, platform, artifact string) (Doc, error) {
	select {
	case s.compute <- struct{}{}:
		defer func() { <-s.compute }()
	case <-ctx.Done():
		return Doc{}, ctx.Err()
	}
	d, err := s.source(ctx, platform, artifact)
	if err != nil {
		return Doc{}, err
	}
	if d.Platform == "" {
		d.Platform = platform
	}
	return d, nil
}

// Rendered returns one artifact rendered in one format, render-once
// memoized alongside the document (unless WithCache(false)).
func (s *Service) Rendered(ctx context.Context, req ArtifactRequest, f ArtifactFormat) (string, error) {
	platform, artifact, err := s.resolve(req)
	if err != nil {
		return "", err
	}
	if !s.cache {
		d, err := s.computeUncached(ctx, platform, artifact)
		if err != nil {
			return "", err
		}
		return RenderArtifact(d, f)
	}
	return s.store.Artifact(ctx, platform, artifact, f)
}

// Grid returns a sweep-campaign grid on a platform's base system: the
// platform's link and capacity protocol as the unswept reference, crossed
// with the given axes. No axes selects the canonical generation ×
// capacity-fraction grid behind the "sweep" and "sensitivity" artifacts.
func (s *Service) Grid(platform string, axes ...SweepAxis) (SweepGrid, error) {
	sp, err := s.platform(platform)
	if err != nil {
		return SweepGrid{}, err
	}
	su, err := s.suite(sp.Name)
	if err != nil {
		return SweepGrid{}, err
	}
	if len(axes) == 0 {
		return su.SweepGrid(nil), nil
	}
	return su.SweepGrid(append([]SweepAxis(nil), axes...)), nil
}

// Sweep executes a sweep campaign over the grid with the Service's
// workload table, run count and worker budget. Campaigns on a registered
// platform's base system memoize single-flight per grid on that platform's
// suite — the "sweep"/"sensitivity" artifacts and repeated HTTP queries
// for the same grid share one execution — while grids over unregistered
// base specs run unmemoized. Validation failures match ErrInvalidSweep;
// once ctx is done the campaign stops within one cell boundary, returns ctx.Err(), leaks no goroutines, and is not memoized.
func (s *Service) Sweep(ctx context.Context, g SweepGrid) (*SweepCampaign, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Route the grid to the suite owning its base system, if any: grids
	// built by Service.Grid match their platform suite's base spec exactly
	// (the campaign memo key includes only the base *name*, so routing on
	// anything looser could collide two protocols under one key). The
	// candidate base specs derive straight from the scenario values — no
	// suite (and no profiler) is constructed until a match is found.
	for _, sp := range s.scenarios {
		base := Scenario{
			Name:              sp.Platform.Name,
			Platform:          sp.Platform,
			CapacityFractions: sp.CapacityFractions,
			HeadlineFraction:  sp.HeadlineFraction,
		}
		if specEqual(base, g.Base) {
			su, err := s.suite(sp.Name)
			if err != nil {
				return nil, err
			}
			return su.RunSweepContext(ctx, g)
		}
	}
	r := &sweep.Runner{Grid: g, Entries: s.entries, Runs: s.runs, Cache: s.profCache}
	return r.RunContext(ctx, s.limiter)
}

// ProfileCacheStats is a snapshot of the Service's shared profile-cache
// counters: Misses counts distinct sub-results computed, Hits counts
// lookups served from a finished entry (cross-cell and cross-platform
// reuse), and Joins counts lookups that coalesced onto an in-flight
// compute. GET /v1/stats reports these as profile_hits, profile_misses and
// profile_joins.
type ProfileCacheStats = core.CacheStats

// ProfileCacheStats returns the Service-wide profile-cache counters.
func (s *Service) ProfileCacheStats() ProfileCacheStats { return s.profCache.Stats() }

// specEqual reports whether two scenario specs describe the same base
// system: same name, platform physics and capacity protocol. The
// free-text description is deliberately ignored.
func specEqual(a, b Scenario) bool {
	if a.Name != b.Name || a.Platform != b.Platform ||
		a.HeadlineFraction != b.HeadlineFraction ||
		len(a.CapacityFractions) != len(b.CapacityFractions) {
		return false
	}
	for i := range a.CapacityFractions {
		if a.CapacityFractions[i] != b.CapacityFractions[i] {
			return false
		}
	}
	return true
}

// RunAll computes every artifact on one platform with the experiment-level
// fan-out, seeds the store with the results (so Rendered, WriteDir and the
// HTTP API only render), and returns the documents in paper order. Once
// ctx is done the engine stops within one task boundary and RunAll returns
// ctx.Err() without seeding anything.
func (s *Service) RunAll(ctx context.Context, platform string) ([]Doc, error) {
	sp, err := s.platform(platform)
	if err != nil {
		return nil, err
	}
	su, err := s.suite(sp.Name)
	if err != nil {
		return nil, err
	}
	rs, err := su.AllParallelContext(ctx, s.workers)
	if err != nil {
		return nil, err
	}
	docs := make([]Doc, len(rs))
	for i, r := range rs {
		d := r.Report()
		s.store.Put(sp.Name, d)
		if d.Platform == "" {
			d.Platform = sp.Name
		}
		docs[i] = d
	}
	return docs, nil
}

// WriteDir renders the named artifacts (aliases accepted) on a platform in
// the given formats (all three by default) into dir as <id>.<ext> files,
// creating dir if needed, and returns the written paths.
func (s *Service) WriteDir(ctx context.Context, dir, platform string, ids []string, formats ...ArtifactFormat) ([]string, error) {
	sp, err := s.platform(platform)
	if err != nil {
		return nil, err
	}
	canon := make([]string, len(ids))
	for i, id := range ids {
		if canon[i], err = experiments.CanonicalID(id); err != nil {
			return nil, err
		}
	}
	return s.store.WriteDir(ctx, dir, sp.Name, canon, formats...)
}
