package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads/registry"
)

// pollCtx is a context whose Err flips to Canceled after a fixed number of
// polls. The engine checks the context at every task boundary, so this
// cancels deterministically mid-run — no timers, no flakes — exercising
// the abandonment path of a fan-out that is already deep in flight.
type pollCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *pollCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// cancelSuite is a reduced fresh suite for cancellation tests: one
// workload, few scheduler runs, so even the uncancelled parts stay cheap
// (never the shared warm quickSuite — cancellation must not touch it).
func cancelSuite() *Suite {
	s := NewSuite(machine.Default())
	s.Entries = registry.All()[:1]
	s.Runs = 3
	return s
}

// drainGoroutines polls until the goroutine count returns to within slack
// of the baseline — the no-leak check for cancelled engine runs.
func drainGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+slack {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d running, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAllParallelContextCancelMidRun cancels the full engine sweep after a
// fixed number of task-boundary polls and asserts prompt ctx.Err() return,
// no results, and no leaked goroutines.
func TestAllParallelContextCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx := &pollCtx{Context: context.Background(), after: 40}
	s := cancelSuite()
	rs, err := s.AllParallelContext(ctx, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AllParallelContext = %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Fatal("cancelled sweep must not return results")
	}
	drainGoroutines(t, baseline, 2)
	// The suite must stay usable after an abandoned sweep: the limiter is
	// uninstalled and the campaign memo was not poisoned.
	if testing.Short() {
		return
	}
	if _, err := s.Run("table1"); err != nil {
		t.Fatalf("suite unusable after cancelled sweep: %v", err)
	}
}

// TestRunContextCancelMidDriver cancels a single driver mid-run through
// its fan-out polls. The threshold is small on purpose: the reduced
// figure13 driver polls the context only a handful of times (entry check,
// one workload task, six Monte-Carlo claims, the exit check), and the
// cancel must land inside that window.
func TestRunContextCancelMidDriver(t *testing.T) {
	ctx := &pollCtx{Context: context.Background(), after: 4}
	s := cancelSuite()
	if _, err := s.RunContext(ctx, "figure13"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

// TestRunContextPreCancelled pins the entry fast path.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := cancelSuite()
	if _, err := s.RunContext(ctx, "table1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if _, err := s.AllParallelContext(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("AllParallelContext = %v, want context.Canceled", err)
	}
}

// TestRunSweepContextCancelNotMemoized asserts an abandoned campaign does
// not poison the single-flight memo: the same grid re-runs successfully
// afterwards.
func TestRunSweepContextCancelNotMemoized(t *testing.T) {
	s := cancelSuite()
	g := s.SweepGrid(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunSweepContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSweepContext = %v, want context.Canceled", err)
	}
	if testing.Short() {
		t.Skip("uncancelled re-run is full-tier work")
	}
	c, err := s.RunSweepContext(context.Background(), g)
	if err != nil || c == nil {
		t.Fatalf("re-run after cancelled campaign = %v, %v; memo poisoned?", c, err)
	}
}

// TestRunContextUncancelledMatchesRun is the byte-identical guarantee on
// the driver path: a live context changes nothing.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	want, err := cancelSuite().Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := cancelSuite().RunContext(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Errorf("RunContext render differs from Run (%d vs %d bytes)",
			len(got.Render()), len(want.Render()))
	}
}
