package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/units"
)

// Figure9Phase is one bar of Figure 9: the remote access ratio of one phase
// of one workload on one capacity configuration.
type Figure9Phase struct {
	Label             string // e.g. "HPL-p1"
	RemoteAccessRatio float64
	Verdict           core.TuningVerdict
}

// Figure9Config is one panel (one capacity ratio).
type Figure9Config struct {
	// LocalFraction is the local tier size as a fraction of peak usage.
	LocalFraction float64
	// RCap and RBW are the reference lines.
	RCap, RBW float64
	Phases    []Figure9Phase
}

// Figure9Result is the three-panel remote-access-ratio figure.
type Figure9Result struct {
	Configs []Figure9Config
}

// Figure9 measures the per-phase remote access ratios on the suite's
// capacity configurations (75/25, 50/50, 25/75 in the paper's protocol).
func (s *Suite) Figure9() Figure9Result {
	// Fan out over the full (capacity point, workload) grid; assembly into
	// panels below follows the flattened index order, so the result is
	// identical to the sequential nested loops.
	fractions := s.fractions()
	reps := pool.Map(s.lim(), len(fractions)*len(s.Entries), func(i int) core.Level2Report {
		return s.Profiler.Level2(s.Entries[i%len(s.Entries)], 1, fractions[i/len(s.Entries)])
	})
	var res Figure9Result
	for fi, frac := range fractions {
		panel := Figure9Config{LocalFraction: frac}
		for ei, e := range s.Entries {
			rep := reps[fi*len(s.Entries)+ei]
			panel.RCap, panel.RBW = rep.RCap, rep.RBW
			for _, ph := range rep.Phases {
				panel.Phases = append(panel.Phases, Figure9Phase{
					Label:             fmt.Sprintf("%s-%s", e.Name, ph.Name),
					RemoteAccessRatio: ph.RemoteAccessRatio,
					Verdict:           rep.Verdict(ph),
				})
			}
		}
		res.Configs = append(res.Configs, panel)
	}
	return res
}

// ID implements Result.
func (Figure9Result) ID() string { return "figure9" }

// Report builds one bar chart and table per capacity panel with the two
// reference lines.
func (r Figure9Result) Report() report.Doc {
	d := report.New("figure9")
	for _, panel := range r.Configs {
		title := fmt.Sprintf("Figure 9 (%d%%-%d%% local-remote capacity): remote access ratio [R_cap=%s R_BW=%s]",
			pct(panel.LocalFraction), pct(1-panel.LocalFraction),
			units.Percent(panel.RCap), units.Percent(panel.RBW))
		bars := report.NewBarChart(title, "%")
		tb := report.NewTable("", "Phase", "%RemoteAccess", "Verdict")
		for _, ph := range panel.Phases {
			bars.AddBar(ph.Label, ph.RemoteAccessRatio*100)
			tb.Row(report.Str(ph.Label), report.Pct(ph.RemoteAccessRatio), report.Str(ph.Verdict.String()))
		}
		d.Append(bars.Block(), tb.Block(), report.Gap())
	}
	return *d
}

// Render implements Result.
func (r Figure9Result) Render() string { return report.RenderText(r.Report()) }
