package report_test

import (
	"fmt"

	"repro/internal/report"
)

// ExampleRenderText builds a small document by hand and renders it the way
// the CLI prints artifacts.
func ExampleRenderText() {
	bars := report.NewBarChart("Remote access ratio", "%")
	bars.AddBar("HPL", 46.2)
	bars.AddBar("XSBench", 5.1)
	d := report.New("demo").Append(bars.Block(), report.NoteBlock("R_cap=50.0%\n"))
	fmt.Print(report.RenderText(*d))
	// Output:
	// Remote access ratio
	// HPL     |################################################## 46.2%
	// XSBench |##### 5.1%
	// R_cap=50.0%
}

// ExampleRenderJSON shows the machine-readable form of the same data: the
// cells keep their raw values, and the output unmarshals back into an
// equal Doc (see ParseJSON).
func ExampleRenderJSON() {
	tb := report.NewTable("", "Phase", "%RemoteAccess")
	tb.Row(report.Str("HPL-p2"), report.Pct(0.462))
	out, err := report.RenderJSON(*report.New("figure9").Append(tb.Block()))
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// {
	//   "artifact": "figure9",
	//   "blocks": [
	//     {
	//       "table": {
	//         "headers": [
	//           "Phase",
	//           "%RemoteAccess"
	//         ],
	//         "rows": [
	//           [
	//             {
	//               "k": "str",
	//               "s": "HPL-p2"
	//             },
	//             {
	//               "k": "pct",
	//               "v": 0.462
	//             }
	//           ]
	//         ]
	//       }
	//     }
	//   ]
	// }
}
