package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/workloads/bfs"
	"repro/internal/workloads/hypre"
)

func TestRoundTripEvents(t *testing.T) {
	events := []Event{
		{Op: OpAlloc, Name: "A", Addr: 4096, N: 8192, Placement: mem.PlaceRemote},
		{Op: OpPhaseStart, Name: "p1"},
		{Op: OpRead, Addr: 4096, N: 64},
		{Op: OpWrite, Addr: 8192, N: 128},
		{Op: OpFlops, Flops: 12.5},
		{Op: OpTick},
		{Op: OpPhaseEnd, Name: "p1"},
		{Op: OpFree, Addr: 4096},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		w.Write(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != len(events) {
		t.Fatalf("wrote %d events, want %d", w.Events(), len(events))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic should be rejected")
	}
}

func TestTruncatedTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Op: OpAlloc, Name: "region-with-a-long-name", Addr: 1, N: 2})
	_ = w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record should be a hard error, got %v", err)
	}
}

// recordRun records a workload into a buffer and returns the machine it ran
// on plus the trace bytes.
func recordRun(t *testing.T, cfg machine.Config, run func(*machine.Machine)) (*machine.Machine, []byte) {
	t.Helper()
	var buf bytes.Buffer
	m := machine.New(cfg)
	if err := Record(m, run, &buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

func samePhases(t *testing.T, a, b []machine.PhaseStats) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("phase count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Flops != b[i].Flops ||
			a[i].LocalBytes != b[i].LocalBytes || a[i].RemoteBytes != b[i].RemoteBytes ||
			a[i].Cache != b[i].Cache {
			t.Fatalf("phase %s differs:\n orig  %+v\n replay %+v", a[i].Name, a[i], b[i])
		}
	}
}

func TestReplayReproducesOriginalRun(t *testing.T) {
	cfg := machine.Default()
	w := hypre.New(1)
	orig, data := recordRun(t, cfg, w.Run)

	replayM := machine.New(cfg)
	if err := Replay(replayM, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	samePhases(t, orig.Phases(), replayM.Phases())
}

func TestReplayOntoDifferentCapacity(t *testing.T) {
	// Record on an unbounded single-tier machine; replay onto a pooled
	// configuration. The replay must spill to the remote tier even though
	// the recording machine never did — the profile-once workflow.
	cfg := machine.Default()
	w := bfs.New(1)
	w.Roots = 1
	orig, data := recordRun(t, cfg, w.Run)
	if ratio := orig.Phases()[1].RemoteAccessRatio; ratio != 0 {
		t.Fatalf("unbounded recording should be all-local, got %.2f remote", ratio)
	}

	pooled := machine.New(cfg.WithLocalCapacity(orig.PeakFootprint() / 4))
	if err := Replay(pooled, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	p2, ok := pooled.Phase("p2")
	if !ok {
		t.Fatal("replay lost the p2 phase")
	}
	if p2.RemoteAccessRatio < 0.5 {
		t.Fatalf("replay at 25%% local should be mostly remote, got %.2f", p2.RemoteAccessRatio)
	}
}

func TestReplayOntoPrefetchDisabled(t *testing.T) {
	cfg := machine.Default()
	w := hypre.New(1)
	orig, data := recordRun(t, cfg, w.Run)

	noPF := machine.New(cfg.WithPrefetch(false))
	if err := Replay(noPF, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	var pfOrig, pfReplay uint64
	for _, ph := range orig.Phases() {
		pfOrig += ph.Cache.PrefetchFills
	}
	for _, ph := range noPF.Phases() {
		pfReplay += ph.Cache.PrefetchFills
	}
	if pfOrig == 0 {
		t.Fatal("original run should prefetch")
	}
	if pfReplay != 0 {
		t.Fatalf("prefetch-disabled replay issued %d prefetches", pfReplay)
	}
}

func TestReplayErrorsOnUnknownRegion(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Op: OpPhaseStart, Name: "p"})
	w.Write(Event{Op: OpRead, Addr: 1 << 30, N: 64})
	_ = w.Flush()
	m := machine.New(machine.Default())
	if err := Replay(m, &buf); err == nil {
		t.Fatal("access outside any recorded region must error")
	}
}

func TestReplayClosesDanglingPhase(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Op: OpAlloc, Name: "a", Addr: 4096, N: 4096})
	w.Write(Event{Op: OpPhaseStart, Name: "p"})
	w.Write(Event{Op: OpRead, Addr: 4096, N: 64})
	_ = w.Flush() // trace ends mid-phase
	m := machine.New(machine.Default())
	if err := Replay(m, &buf); err != nil {
		t.Fatal(err)
	}
	if len(m.Phases()) != 1 {
		t.Fatalf("dangling phase should be closed, got %d phases", len(m.Phases()))
	}
}
