// Command sbench is the HTTP load harness of the serving layer: it
// hammers a (warmed) `memdis serve` across routes, formats and encodings,
// measures p50/p90/p99 latency and throughput per target, brackets the run
// with the server's /v1/stats counters (renders, coalesced joins, 304s,
// gzipped bodies), and writes one JSON result — the file BENCH_serve.json
// commits so the serving-performance trajectory is tracked across PRs.
//
//	sbench -base http://localhost:8080 -n 200 -c 16 -out BENCH_serve.json
//	sbench -wait-ready 10m -cold '/v1/artifacts/figure13?platform=cxl-gen5'
//
// The default profile exercises hot artifact renders in every format, a
// gzip-negotiated variant, conditional (If-None-Match) revalidations, the
// registry tables and the memoized default sweep; each -cold PATH adds a
// single-wave burst of -c concurrent requests at that (presumably
// uncached) key, which is what drives the server's request coalescing.
// -wait-ready polls /healthz until the warm finishes before measuring.
//
// See docs/CLI.md for the complete flag reference.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/sbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sbench", flag.ContinueOnError)
	base := fs.String("base", "http://localhost:8080", "base URL of the server under test")
	n := fs.Int("n", 200, "requests per target")
	c := fs.Int("c", 16, "concurrent workers per target (and cold-burst wave size)")
	out := fs.String("out", "", "write the JSON result to this file (default: stdout)")
	waitReady := fs.Duration("wait-ready", 0, "poll /healthz until ready for up to this long before measuring (0 = don't wait)")
	var cold []string
	fs.Func("cold", "path for a single-wave cold burst (repeatable), e.g. /v1/artifacts/figure13?platform=cxl-gen5", func(s string) error {
		cold = append(cold, s)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected arguments: %v", rest)
	}
	ctx := context.Background()
	if *waitReady > 0 {
		wctx, cancel := context.WithTimeout(ctx, *waitReady)
		err := sbench.WaitReady(wctx, nil, *base)
		cancel()
		if err != nil {
			return err
		}
	}
	res, err := sbench.Run(ctx, sbench.Config{
		Base:    *base,
		Targets: sbench.DefaultProfile(*n, *c, cold),
	})
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sbench: %d requests, %.1f req/s overall, p99 %.2f ms; wrote %s\n",
		res.Total.Requests, res.Total.Throughput, res.Total.Latency.P99, *out)
	return nil
}
