package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var counts [n]atomic.Int32
		NewLimiter(workers).ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	NewLimiter(4).ForEach(0, func(int) { ran = true })
	NewLimiter(4).ForEach(-3, func(int) { ran = true })
	if ran {
		t.Fatal("ForEach ran tasks for n <= 0")
	}
}

func TestMapOrderIndependentOfBudget(t *testing.T) {
	want := Map(NewLimiter(1), 50, func(i int) int { return i * i })
	for _, workers := range []int{2, 5, 50} {
		got := Map(NewLimiter(workers), 50, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d got %d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestNilLimiterIsSequential(t *testing.T) {
	var l *Limiter
	sum := 0
	l.ForEach(10, func(i int) { sum += i }) // must run on this goroutine
	if sum != 45 {
		t.Fatalf("nil limiter sum = %d", sum)
	}
}

// TestNestedForEachSharesOneBudget is the contract that prevents worker
// multiplication: a fan-out inside a fan-out draws from the same limiter,
// so the peak number of concurrently running tasks stays at the configured
// width instead of width^2 — and nesting never deadlocks.
func TestNestedForEachSharesOneBudget(t *testing.T) {
	const width = 4
	l := NewLimiter(width)
	var running, peak atomic.Int32
	task := func() {
		if r := running.Add(1); r > peak.Load() {
			peak.Store(r) // racy max, but only ever under-reports
		}
		for i := 0; i < 100; i++ {
			runtime.Gosched()
		}
		running.Add(-1)
	}
	l.ForEach(8, func(int) {
		l.ForEach(8, func(int) { task() })
	})
	if p := peak.Load(); p > width {
		t.Fatalf("peak concurrency %d exceeded the budget %d", p, width)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}
