package core

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads/registry"
)

// sharedProf is one profiler shared by the read-only tests below: reports
// are memoized per (workload, scale[, fraction]) and treated as read-only,
// so sharing trims repeated workload executions without changing any
// assertion. Tests that exercise cache mechanics construct their own
// profiler with NewProfiler.
var (
	profOnce   sync.Once
	sharedProf *Profiler
)

func prof() *Profiler {
	profOnce.Do(func() { sharedProf = NewProfiler(machine.Default()) })
	return sharedProf
}

func entry(t *testing.T, name string) registry.Entry {
	t.Helper()
	e, err := registry.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLevel1HPLProfile(t *testing.T) {
	p := prof()
	rep := p.Level1(entry(t, "HPL"), 1)
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(rep.Phases))
	}
	// HPL p2 is the high-AI phase; p1 is a streaming init.
	if rep.Phases[1].AI <= rep.Phases[0].AI {
		t.Errorf("p2 AI %v should exceed p1 AI %v", rep.Phases[1].AI, rep.Phases[0].AI)
	}
	if rep.PeakFootprint == 0 {
		t.Errorf("no footprint recorded")
	}
	// Dense LU streams predictably: high prefetch accuracy.
	if rep.Accuracy < 0.7 {
		t.Errorf("HPL prefetch accuracy = %v, want >= 0.7 (paper >80%%)", rep.Accuracy)
	}
	if rep.PerformanceGain <= 0 {
		t.Errorf("HPL should gain from prefetching, got %v", rep.PerformanceGain)
	}
	if len(rep.TimelineOn) == 0 || len(rep.TimelineOff) == 0 {
		t.Errorf("missing prefetch timelines")
	}
}

func TestLevel1XSBenchLowCoverage(t *testing.T) {
	p := prof()
	rep := p.Level1(entry(t, "XSBench"), 1)
	hpl := p.Level1(entry(t, "HPL"), 1)
	if rep.Coverage >= hpl.Coverage {
		t.Errorf("XSBench coverage (%v) should be far below HPL (%v)", rep.Coverage, hpl.Coverage)
	}
}

func TestScalingCurveShapes(t *testing.T) {
	p := prof()
	// Figure 6: HPL accesses are near-uniform; BFS is skewed (a small
	// fraction of the footprint takes most accesses).
	hplCurve := p.ScalingCurve(entry(t, "HPL"), 1)
	bfsCurve := p.ScalingCurve(entry(t, "BFS"), 1)
	if len(hplCurve) != 101 || len(bfsCurve) != 101 {
		t.Fatalf("curves should have 101 points, got %d and %d", len(hplCurve), len(bfsCurve))
	}
	// Accesses captured by the hottest 30% of pages.
	at30 := func(c []ScalingPoint) float64 { return c[30].AccessPct }
	if at30(bfsCurve) <= at30(hplCurve) {
		t.Errorf("BFS (%v%%) should be more skewed than HPL (%v%%) at 30%% footprint",
			at30(bfsCurve), at30(hplCurve))
	}
	// CDF monotone and ending at 100.
	for i := 1; i < len(hplCurve); i++ {
		if hplCurve[i].AccessPct < hplCurve[i-1].AccessPct-1e-9 {
			t.Fatalf("HPL curve not monotone at %d", i)
		}
	}
	if last := hplCurve[100].AccessPct; last < 99.9 {
		t.Errorf("curve should end at 100%%, got %v", last)
	}
}

func TestLevel2ReferencesAndRatios(t *testing.T) {
	p := prof()
	rep := p.Level2(entry(t, "Hypre"), 1, 0.5)
	if rep.RCap != 0.5 {
		t.Errorf("RCap = %v, want 0.5", rep.RCap)
	}
	want := machine.Default().BandwidthRatio()
	if rep.RBW != want {
		t.Errorf("RBW = %v, want %v", rep.RBW, want)
	}
	// Hypre streams uniformly: remote access ratio near capacity ratio.
	var p2 Level2Phase
	found := false
	for _, ph := range rep.Phases {
		if ph.Name == "p2" {
			p2, found = ph, true
		}
	}
	if !found {
		t.Fatal("no p2 phase")
	}
	if p2.RemoteAccessRatio < 0.25 || p2.RemoteAccessRatio > 0.75 {
		t.Errorf("Hypre p2 remote access ratio = %v, want near the 0.5 capacity ratio",
			p2.RemoteAccessRatio)
	}
}

func TestLevel2XSBenchLowRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("three capacity-bounded XSBench runs; the full tier covers the sweep")
	}
	p := prof()
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		rep := p.Level2(entry(t, "XSBench"), 1, frac)
		for _, ph := range rep.Phases {
			if ph.Name == "p2" && ph.RemoteAccessRatio > 0.10 {
				t.Errorf("local=%v: XSBench p2 remote ratio = %v, want <= 0.10 (paper <6%%)",
					frac, ph.RemoteAccessRatio)
			}
		}
	}
}

func TestVerdictClassification(t *testing.T) {
	rep := Level2Report{RCap: 0.25, RBW: 0.32}
	cases := []struct {
		ratio float64
		want  TuningVerdict
	}{
		{0.9, ExcessRemote},
		{0.28, Balanced},
		{0.05, UnderusedRemote},
	}
	for _, c := range cases {
		got := rep.Verdict(Level2Phase{RemoteAccessRatio: c.ratio})
		if got != c.want {
			t.Errorf("ratio %v: verdict = %v, want %v", c.ratio, got, c.want)
		}
	}
}

func TestLevel3SensitivityOrdering(t *testing.T) {
	p := prof()
	lois := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	hypre := p.Level3(entry(t, "Hypre"), 1, 0.5, lois)
	hplR := p.Level3(entry(t, "HPL"), 1, 0.5, lois)
	xs := p.Level3(entry(t, "XSBench"), 1, 0.5, lois)

	last := func(r Level3Report) float64 { return r.Relative[len(r.Relative)-1] }
	// Paper Figure 10 ordering: Hypre most sensitive; HPL and XSBench least.
	if last(hypre) >= last(hplR) {
		t.Errorf("Hypre sensitivity (rel %v) should exceed HPL (rel %v)", last(hypre), last(hplR))
	}
	if last(hplR) < 0.90 {
		t.Errorf("HPL relative perf at LoI=50 = %v, paper shows <5%% loss", last(hplR))
	}
	if last(xs) < 0.90 {
		t.Errorf("XSBench relative perf at LoI=50 = %v, paper shows minimal loss", last(xs))
	}
	// Monotone non-increasing in LoI.
	for i := 1; i < len(hypre.Relative); i++ {
		if hypre.Relative[i] > hypre.Relative[i-1]+1e-9 {
			t.Errorf("sensitivity not monotone at LoI=%v", lois[i])
		}
	}
	// Relative performance at LoI=0 is exactly 1.
	if hypre.Relative[0] != 1 {
		t.Errorf("relative at LoI=0 = %v, want 1", hypre.Relative[0])
	}
}

func TestLevel3ICOrdering(t *testing.T) {
	p := prof()
	lois := []float64{0, 0.5}
	hypre := p.Level3(entry(t, "Hypre"), 1, 0.5, lois)
	xs := p.Level3(entry(t, "XSBench"), 1, 0.5, lois)
	// Figure 11 right: Hypre/NekRS induce the most interference, XSBench
	// and HPL the least.
	if hypre.ICHi <= xs.ICHi {
		t.Errorf("Hypre induced IC (%v) should exceed XSBench (%v)", hypre.ICHi, xs.ICHi)
	}
	if xs.ICLo < 1 || hypre.ICLo < 1 {
		t.Errorf("IC must be >= 1: %v %v", xs.ICLo, hypre.ICLo)
	}
}

func TestPeakUsageCached(t *testing.T) {
	p := prof()
	e := entry(t, "XSBench")
	a := p.PeakUsage(e, 1)
	b := p.PeakUsage(e, 1)
	if a != b || a == 0 {
		t.Errorf("peak usage cache broken: %d vs %d", a, b)
	}
}

func TestDeploymentAdvice(t *testing.T) {
	low := Level3Report{Relative: []float64{1, 0.99}}
	high := Level3Report{Relative: []float64{1, 0.7}}
	if low.DeploymentAdvice() == high.DeploymentAdvice() {
		t.Errorf("advice should differ between low and high sensitivity")
	}
}
