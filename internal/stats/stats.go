package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FiveNum is a five-number summary (Tukey) of a sample, the statistic drawn
// as the box-and-whisker plots of Figure 13.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// FiveNumber computes the five-number summary of xs.
func FiveNumber(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return FiveNum{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
	}
}

// IQR returns the interquartile range of the summary.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

// LinearFit returns the slope and intercept of the least-squares line through
// (xs[i], ys[i]), plus the coefficient of determination r². It panics if the
// slices differ in length and returns zeros when fewer than two points are
// given or x has no variance.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	if len(xs) != len(ys) {
		panic("stats: LinearFit input length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// CDF computes the cumulative distribution of weights sorted in descending
// order, normalized to [0,1]: out[i] is the fraction of total weight carried
// by the i+1 largest entries. It is the core of the bandwidth–capacity
// scaling curve (Figure 6). The input is not modified.
func CDF(weights []float64) []float64 {
	sorted := make([]float64, len(weights))
	copy(sorted, weights)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := 0.0
	for _, w := range sorted {
		total += w
	}
	out := make([]float64, len(sorted))
	run := 0.0
	for i, w := range sorted {
		run += w
		if total > 0 {
			out[i] = run / total
		} else {
			out[i] = 0
		}
	}
	return out
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
