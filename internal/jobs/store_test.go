package jobs

import (
	"errors"
	"testing"
)

// TestStoreContract drives both Store implementations through the same
// contract: atomic puts, append-creates, prefix listing, recursive
// delete, and ErrNotExist on missing keys.
func TestStoreContract(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]Store{"disk": disk, "mem": NewMemStore()} {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Get("jobs/x/job.json"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Get(missing) = %v, want ErrNotExist", err)
			}
			if err := st.Put("jobs/x/job.json", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := st.Put("jobs/x/job.json", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if b, err := st.Get("jobs/x/job.json"); err != nil || string(b) != "v2" {
				t.Fatalf("Get after overwrite = %q, %v", b, err)
			}
			if err := st.Append("jobs/x/events.jsonl", []byte("a\n")); err != nil {
				t.Fatal(err)
			}
			if err := st.Append("jobs/x/events.jsonl", []byte("b\n")); err != nil {
				t.Fatal(err)
			}
			if b, _ := st.Get("jobs/x/events.jsonl"); string(b) != "a\nb\n" {
				t.Fatalf("Append composed %q, want %q", b, "a\nb\n")
			}
			if err := st.Put("jobs/y/job.json", []byte("other")); err != nil {
				t.Fatal(err)
			}
			keys, err := st.List("jobs/x/")
			if err != nil || len(keys) != 2 || keys[0] != "jobs/x/events.jsonl" || keys[1] != "jobs/x/job.json" {
				t.Fatalf("List(jobs/x/) = %v, %v", keys, err)
			}
			if err := st.Delete("jobs/x"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get("jobs/x/job.json"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Get after recursive delete = %v, want ErrNotExist", err)
			}
			if keys, _ := st.List("jobs/"); len(keys) != 1 {
				t.Fatalf("List after delete = %v, want only jobs/y", keys)
			}
			if err := st.Delete("jobs/never-written"); err != nil {
				t.Fatalf("Delete(missing) = %v, want nil", err)
			}
		})
	}
}

// TestDiskStoreRejectsEscapes pins the key sanitizer: no absolute paths,
// no parent traversal.
func TestDiskStoreRejectsEscapes(t *testing.T) {
	st, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "/etc/passwd", "jobs/../../x"} {
		if err := st.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an escaping key", key)
		}
	}
}

// TestDecodeCheckpointTolerance pins the crash-tolerance contract: a
// partial trailing line (the SIGKILL-mid-append case) is dropped, blank
// lines are skipped, duplicates keep the last value, and out-of-range
// indices are corruption.
func TestDecodeCheckpointTolerance(t *testing.T) {
	blob := []byte(`{"i":0,"cell":{"Cell":"base","Workload":"HPL"}}
{"i":1,"cell":{"Cell":"gen=5","Workload":"HPL"}}

{"i":1,"cell":{"Cell":"gen=5","Workload":"HPL"}}
{"i":2,"cell":{"Cell":"gen=6","Wor`)
	cells, err := decodeCheckpoint(blob, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].Cell != "base" || cells[1].Cell != "gen=5" {
		t.Fatalf("decodeCheckpoint = %v, want cells 0 and 1 only", cells)
	}
	if _, err := decodeCheckpoint([]byte(`{"i":9,"cell":{}}`+"\n"), 4); err == nil {
		t.Error("decodeCheckpoint accepted an out-of-range index")
	}
	bm := bitmapOf(cells)
	if !bitmapGet(bm, 0) || !bitmapGet(bm, 1) || bitmapGet(bm, 2) {
		t.Errorf("bitmapOf = %08b, want bits 0 and 1", bm)
	}
}
