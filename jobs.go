package repro

import (
	"context"
	"fmt"

	"repro/internal/jobs"
	"repro/internal/sweep"
)

// Async campaign jobs. A sweep campaign over a large grid can outlive any
// reasonable HTTP request; SubmitSweep runs it as a background job whose
// every finished cell streams into a persistent checkpoint. The engine's
// determinism-first discipline makes the checkpoint trustworthy: each
// (cell, workload) task is a pure function of its grid coordinates, so a
// job killed mid-campaign — cancelled, crashed, or SIGKILLed — resumes by
// replaying checkpointed cells and recomputing only the remainder, with
// final artifacts byte-identical to an uninterrupted run at any worker
// count.

// JobRecord is one campaign job's state: the full grid declaration, the
// per-cell completion bitmap, progress counters and lifecycle state.
type JobRecord = jobs.Record

// JobState is a job's lifecycle phase (see the JobRunning... constants).
type JobState = jobs.State

// JobEvent is one line of a job's JSON-lines event log.
type JobEvent = jobs.Event

// JobStore is the pluggable persistence backend job state lives in: a flat
// key → bytes namespace deliberately shaped like an object store. The
// library ships a disk implementation (NewDiskJobStore) and an in-memory
// one (the default); a bucket-backed implementation can slot in without
// touching the job manager.
type JobStore = jobs.Store

// The job lifecycle states. JobInterrupted is derived, never persisted: a
// record that says running with no live execution in this process — the
// killed-process case ResumeJob exists for.
const (
	JobRunning     = jobs.StateRunning
	JobDone        = jobs.StateDone
	JobFailed      = jobs.StateFailed
	JobCancelled   = jobs.StateCancelled
	JobInterrupted = jobs.StateInterrupted
)

// Job error sentinels, errors.Is-matchable like the Service's other
// classification sentinels.
var (
	// ErrUnknownJob matches a lookup of a job id that was never submitted.
	ErrUnknownJob = jobs.ErrNotFound
	// ErrJobNotDone matches an artifact read from a job that has not
	// completed.
	ErrJobNotDone = jobs.ErrNotDone
	// ErrJobRecordModified matches a resume whose stored declaration no
	// longer hashes to the job id — a tampered or corrupted record that
	// must never run. The HTTP layer serves it as a 409 conflict.
	ErrJobRecordModified = jobs.ErrRecordModified
)

// NewDiskJobStore opens (creating if needed) the durable filesystem job
// store rooted at dir — the backend behind `memdis jobs -dir` and
// WithJobDir. Jobs submitted against it survive the process and resume
// from their on-disk checkpoint.
func NewDiskJobStore(dir string) (JobStore, error) { return jobs.NewDiskStore(dir) }

// NewMemJobStore returns an in-memory job store: jobs run and report
// exactly like disk-backed ones but do not survive the process. It is the
// default backend of a Service built without WithJobStore or WithJobDir.
func NewMemJobStore() JobStore { return jobs.NewMemStore() }

// WithJobStore installs the persistence backend for campaign jobs. The
// default is an in-memory store (jobs die with the process); pass
// NewDiskJobStore's result — or any object-store-shaped implementation —
// to make jobs durable.
func WithJobStore(st JobStore) Option {
	return func(s *Service) error {
		if st == nil {
			return fmt.Errorf("repro: WithJobStore: nil store")
		}
		s.jobStore = st
		return nil
	}
}

// WithJobDir is WithJobStore over a disk store rooted at dir: campaign
// jobs checkpoint to disk and survive the process.
func WithJobDir(dir string) Option {
	return func(s *Service) error {
		st, err := jobs.NewDiskStore(dir)
		if err != nil {
			return fmt.Errorf("repro: WithJobDir: %w", err)
		}
		s.jobStore = st
		return nil
	}
}

// newSweepRunner builds the sweep runner a campaign job executes — the
// same construction Service.Sweep uses, including routing the grid to the
// suite owning its base system so the job shares that suite's warm
// profiler caches.
func (s *Service) newSweepRunner(g SweepGrid) *sweep.Runner {
	r := &sweep.Runner{Grid: g, Entries: s.entries, Runs: s.runs, Cache: s.profCache}
	for _, sp := range s.scenarios {
		base := Scenario{
			Name:              sp.Platform.Name,
			Platform:          sp.Platform,
			CapacityFractions: sp.CapacityFractions,
			HeadlineFraction:  sp.HeadlineFraction,
		}
		if specEqual(base, g.Base) {
			if su, err := s.suite(sp.Name); err == nil {
				r.BaseProfiler = su.Profiler
			}
			break
		}
	}
	return r
}

// SubmitSweep starts the campaign for g as an asynchronous job and returns
// its record immediately; poll with Job or block with WaitJob. Job ids are
// deterministic in the campaign declaration (grid, workload table, run
// count, seed), so submitting an identical grid re-attaches to the running
// or finished job — and submitting after a crash resumes its checkpoint —
// instead of duplicating work. The job executes detached from any request
// context on the Service's shared worker budget; stop it with CancelJob.
// Unlike the synchronous HTTP sweep surface, jobs accept grids of any
// validating size.
func (s *Service) SubmitSweep(g SweepGrid) (JobRecord, error) {
	return s.jobs.Submit(g)
}

// ResumeJob restarts an interrupted, failed or cancelled job from its
// persisted checkpoint: the stored grid declaration is revalidated
// (including that it still hashes to the job id), checkpointed cells are
// skipped by coordinate, and only the remainder recomputes — the resumed
// artifacts are byte-identical to an uninterrupted run.
func (s *Service) ResumeJob(id string) (JobRecord, error) {
	return s.jobs.Resume(id)
}

// Job returns one job's record; lookups of unknown ids match
// ErrUnknownJob. A record persisted as running with no live execution in
// this process is reported as JobInterrupted.
func (s *Service) Job(id string) (JobRecord, error) { return s.jobs.Get(id) }

// Jobs lists every job in the store, oldest submission first.
func (s *Service) Jobs() ([]JobRecord, error) { return s.jobs.List() }

// CancelJob stops a running job at its next cell boundary and returns its
// record. Finished cells stay checkpointed: ResumeJob picks the campaign
// back up without recomputing them.
func (s *Service) CancelJob(id string) (JobRecord, error) { return s.jobs.Cancel(id) }

// WaitJob blocks until the job reaches a terminal state in this process —
// done, failed or cancelled — or ctx dies, and returns the record.
func (s *Service) WaitJob(ctx context.Context, id string) (JobRecord, error) {
	return s.jobs.Wait(ctx, id)
}

// JobEvents returns the job's raw JSON-lines event log (one JobEvent per
// line): submission, resume, one `cell done i/total` line per finished
// cell with its generated name and substream seed, and the terminal event.
// The log is append-only, so a follower can re-read and print only the
// suffix beyond its last offset.
func (s *Service) JobEvents(id string) ([]byte, error) { return s.jobs.Events(id) }

// JobArtifact returns a done job's rendered artifact — "sweep" or
// "sensitivity" — in the given format, straight from the store. Reads
// from a job that has not completed match ErrJobNotDone.
func (s *Service) JobArtifact(id, artifact string, f ArtifactFormat) (string, error) {
	return s.jobs.Artifact(id, artifact, f)
}

// Close stops the Service's background work: every live campaign job is
// cancelled and awaited. Checkpoints persist, so a durable store's jobs
// resume in the next process (ResumeJob or an identical SubmitSweep).
func (s *Service) Close() { s.jobs.Close() }
