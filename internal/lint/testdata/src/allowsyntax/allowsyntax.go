// Package fixture exercises the suppression driver itself (expectations
// live in lint_test.go, not in want comments, because the defects are the
// allow comments themselves): an allow without a reason is rejected and
// suppresses nothing, and an allow covering no diagnostic is stale.
package fixture

import "strings"

// classify carries a reason-less allow on line 12: the allow is a
// diagnostic and the violation on line 13 still fires.
func classify(err error) bool {
	//repro:allow errsentinel
	return strings.Contains(err.Error(), "boom")
}

// The allow below (line 18) covers a clean line: stale.
//
//repro:allow determinism — nothing on the next line violates determinism
var clean = 1
