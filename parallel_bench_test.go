// Benchmarks for the concurrent experiment engine: the full `memdis all`
// artifact regeneration, sequential versus fanned out over a worker pool.
// Each iteration constructs a fresh suite so the profile caches start cold,
// exactly like one CLI invocation; on a multi-core machine the parallel
// variants improve wall-clock roughly with the core count until the
// longest single driver dominates.
//
//	go test -bench SuiteAll -benchtime 1x
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// BenchmarkSuiteAllSequential regenerates all twelve artifacts one driver
// at a time — the pre-engine `memdis all` behaviour.
func BenchmarkSuiteAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Default()
		if got := len(s.All()); got != len(experiments.IDs) {
			b.Fatalf("rendered %d artifacts", got)
		}
	}
}

// BenchmarkSuiteAllParallel regenerates all twelve artifacts through the
// concurrent engine at several worker counts — `memdis all -j N`.
func BenchmarkSuiteAllParallel(b *testing.B) {
	counts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.Default()
				if got := len(s.AllParallel(workers)); got != len(experiments.IDs) {
					b.Fatalf("rendered %d artifacts", got)
				}
			}
		})
	}
}

// BenchmarkSchedulerRuns measures the Figure 13 Monte-Carlo layer alone:
// 100 simulated runs per scheduler for one profiled workload, sequential
// versus substream-parallel.
func BenchmarkSchedulerRuns(b *testing.B) {
	s := experiments.Default()
	entry := s.Entries[1] // Hypre: the paper's most scheduler-sensitive code
	rep := s.Profiler.Level2(entry, 1, 0.50)
	cfg := s.Profiler.ConfigForLocalFraction(entry, 1, 0.50)
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSummary = benchCompare(entry.Name, cfg, rep, workers)
			}
		})
	}
}

var benchSummary any

func benchCompare(name string, cfg Platform, rep Level2Report, workers int) any {
	return CompareSchedulersParallel(name, cfg, rep.Phase2Stats, 100, 1017, workers)
}
