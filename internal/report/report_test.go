package report

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestCellText pins the formatting rule of every cell kind against the
// strings the pre-pipeline drivers printed.
func TestCellText(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Str("HPL-p1"), "HPL-p1"},
		{Str("97.5% balanced", 0.975), "97.5% balanced"},
		{Int(-3), "-3"},
		{Uint(18446744073709551615), "18446744073709551615"},
		{Num(512), "512"},
		{Num(12.8), "12.8"},
		{Num(5400.0000000000005), "5.4e+03"},
		{Fixed(1.23456, 3), "1.235"},
		{Fixed(10, 0), "10"},
		{FixedSuffix(12.34, 1, "%"), "12.3%"},
		{FixedSuffix(1.25, 2, "x"), "1.25x"},
		{Cell{Kind: KindInt, I: 4, Prefix: "x"}, "x4"},
		{Pct(0.4615), "46.2%"},
		{Bytes(1 << 30), "1.00 GiB"},
		{Flops(2.5e9), "2.50 Gflop/s"},
		{Bandwidth(34e9), "34.00 GB/s"},
		{Seconds(202e-9), "202.00 ns"},
	}
	for _, c := range cases {
		if got := c.cell.Text(); got != c.want {
			t.Errorf("%+v.Text() = %q, want %q", c.cell, got, c.want)
		}
	}
}

// TestCellValue pins the machine-readable CSV form: raw values, shortest
// round-trippable floats, parseable non-finite spellings.
func TestCellValue(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Pct(0.4615), "0.4615"},
		{Fixed(1.23456, 3), "1.23456"}, // raw value, not the rounded text
		{Bytes(1 << 30), "1073741824"},
		{Int(-3), "-3"},
		{Num(math.NaN()), "NaN"},
		{Num(math.Inf(1)), "+Inf"},
		{Num(math.Inf(-1)), "-Inf"},
		{Str("free text"), "free text"},
	}
	for _, c := range cases {
		if got := c.cell.Value(); got != c.want {
			t.Errorf("%+v.Value() = %q, want %q", c.cell, got, c.want)
		}
	}
}

// testDoc builds a document exercising every block kind.
func testDoc() Doc {
	tb := NewTable("T", "A", "B")
	tb.Row(Str("r1"), Pct(0.5))
	bars := NewBarChart("bars", "%")
	bars.AddBar("x", 10)
	bars.AddBar("yy", 4)
	pl := NewLinePlot("plot", "x", "y")
	pl.AddLine("s1", []float64{0, 1, 2}, []float64{1, 4, 9})
	tl := &Timeline{Title: "tl", XLabel: "step", YLabel: "v", Rows: 8,
		Lines: []TimelineLine{{Name: "on", Values: Floats([]float64{1, 2, 3})}}}
	ds := &Dist{Label: "d", Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5, Lo: 1, Hi: 5, Width: 20}
	return *New("demo").Append(tb.Block(), Gap(), bars.Block(), pl.Block(),
		tl.Block(), ds.Block(), NoteBlock("done\n"))
}

// TestJSONRoundTrip checks RenderJSON/ParseJSON is lossless for a document
// exercising every block kind.
func TestJSONRoundTrip(t *testing.T) {
	d := testDoc()
	out, err := RenderJSON(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Errorf("round trip drifted:\nbefore %+v\nafter  %+v", d, back)
	}
}

// TestJSONNonFinite checks the Float encoding survives NaN and the
// infinities, which encoding/json rejects natively.
func TestJSONNonFinite(t *testing.T) {
	tb := NewTable("", "v")
	tb.Row(Num(math.NaN()), Num(math.Inf(1)), Num(math.Inf(-1)))
	d := *New("nan").Append(tb.Block())
	out, err := RenderJSON(d)
	if err != nil {
		t.Fatalf("non-finite doc should render: %v", err)
	}
	back, err := ParseJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	row := back.Blocks[0].Table.Rows[0]
	if !math.IsNaN(float64(row[0].V)) {
		t.Errorf("NaN did not round trip: %v", row[0].V)
	}
	if !math.IsInf(float64(row[1].V), 1) || !math.IsInf(float64(row[2].V), -1) {
		t.Errorf("infinities did not round trip: %v %v", row[1].V, row[2].V)
	}
}

// TestCSVParses checks the CSV rendering of every block kind reads back
// with encoding/csv.
func TestCSVParses(t *testing.T) {
	out, err := RenderCSV(testDoc())
	if err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(strings.NewReader(out))
	rd.Comment = '#'
	rd.FieldsPerRecord = -1
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v\n%s", err, out)
	}
	if len(recs) == 0 {
		t.Fatal("CSV has no records")
	}
	// The table row's Pct cell must be the raw ratio, not the "50.0%" text.
	found := false
	for _, rec := range recs {
		if len(rec) == 2 && rec[0] == "r1" && rec[1] == "0.5" {
			found = true
		}
	}
	if !found {
		t.Errorf("table row with raw ratio not found in:\n%s", out)
	}
}

// TestRenderTextBlocks pins the text backend block by block.
func TestRenderTextBlocks(t *testing.T) {
	bars := NewBarChart("B", "%")
	bars.AddBar("x", 10)
	d := *New("t").Append(bars.Block(), NoteBlock("note\n"))
	got := RenderText(d)
	want := "B\nx |################################################## 10%\nnote\n"
	if got != want {
		t.Errorf("RenderText = %q, want %q", got, want)
	}
	if s, err := Render(d, FormatText); err != nil || s != got {
		t.Errorf("Render(text) = %q, %v", s, err)
	}
	if _, err := Render(d, Format("yaml")); err == nil {
		t.Error("unknown format should error")
	}
}

// TestStoreMemoizes checks the render-once contract: one source call per
// (platform, artifact), one render per format — and that source errors are
// NOT memoized (see Store.Doc).
func TestStoreMemoizes(t *testing.T) {
	calls := map[string]int{}
	st := NewStore(func(_ context.Context, platform, artifact string) (Doc, error) {
		calls[platform+"/"+artifact]++
		if artifact == "missing" {
			return Doc{}, fmt.Errorf("no such artifact")
		}
		d := testDoc()
		d.Artifact = artifact
		return d, nil
	})
	for i := 0; i < 3; i++ {
		for _, f := range Formats {
			if _, err := st.Artifact(context.Background(), "baseline", "demo", f); err != nil {
				t.Fatal(err)
			}
		}
	}
	if calls["baseline/demo"] != 1 {
		t.Errorf("source called %d times, want 1", calls["baseline/demo"])
	}
	docs, renders := st.Cached()
	if docs != 1 || renders != 3 {
		t.Errorf("cached docs=%d renders=%d, want 1 and 3", docs, renders)
	}
	// The doc is stamped with the platform it was fetched under.
	d, err := st.Doc(context.Background(), "baseline", "demo")
	if err != nil {
		t.Fatal(err)
	}
	if d.Platform != "baseline" {
		t.Errorf("platform not stamped: %q", d.Platform)
	}
	// Errors are deliberately NOT memoized: an unbounded error cache keyed
	// by request-controlled strings would let a misbehaving client grow the
	// store without limit, and unknown ids fail fast in the source.
	for i := 0; i < 2; i++ {
		if _, err := st.Artifact(context.Background(), "baseline", "missing", FormatText); err == nil {
			t.Fatal("missing artifact should error")
		}
	}
	if calls["baseline/missing"] != 2 {
		t.Errorf("error source called %d times, want one per request", calls["baseline/missing"])
	}
	// Put seeds a doc without touching the source.
	seeded := testDoc()
	seeded.Artifact = "seeded"
	st.Put("baseline", seeded)
	if _, err := st.Artifact(context.Background(), "baseline", "seeded", FormatJSON); err != nil {
		t.Fatal(err)
	}
	if calls["baseline/seeded"] != 0 {
		t.Error("Put-seeded artifact should not call the source")
	}
}

// TestStorePutInvalidatesRenders checks a re-Put drops stale renders so
// Doc and Artifact never disagree.
func TestStorePutInvalidatesRenders(t *testing.T) {
	st := NewStore(func(_ context.Context, platform, artifact string) (Doc, error) {
		return Doc{}, fmt.Errorf("source should not be called")
	})
	v1 := *New("a").Append(NoteBlock("v1\n"))
	st.Put("baseline", v1)
	if out, err := st.Artifact(context.Background(), "baseline", "a", FormatText); err != nil || out != "v1\n" {
		t.Fatalf("v1 render: %q, %v", out, err)
	}
	v2 := *New("a").Append(NoteBlock("v2\n"))
	st.Put("baseline", v2)
	if out, err := st.Artifact(context.Background(), "baseline", "a", FormatText); err != nil || out != "v2\n" {
		t.Errorf("render after re-Put: %q, %v (stale cache?)", out, err)
	}
}

// TestRenderTextMalformedSeries checks RenderText degrades gracefully on
// documents with mismatched series lengths (reachable via ParseJSON of
// external input) instead of panicking.
func TestRenderTextMalformedSeries(t *testing.T) {
	d, err := ParseJSON(`{"artifact":"x","blocks":[
		{"series":{"kind":"bar","labels":["a","b"],"values":[1]}},
		{"series":{"kind":"line","lines":[{"name":"s","x":[1,2,3],"y":[1]}]}}]}`)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderText(d) // must not panic
	if !strings.Contains(out, "a |") {
		t.Errorf("truncated bar chart should still render the paired bars:\n%s", out)
	}
	if _, err := RenderCSV(d); err != nil {
		t.Errorf("CSV of malformed series should degrade, not fail: %v", err)
	}
}

// TestStorePutDuringRender pins the generation guard behind the
// Doc/Artifact agreement: a Put landing between an in-flight Artifact's
// document fetch and its render-cache write bumps the generation, which is
// exactly the condition Artifact checks before caching, so the stale
// render is discarded instead of being served forever.
func TestStorePutDuringRender(t *testing.T) {
	st := NewStore(func(_ context.Context, platform, artifact string) (Doc, error) {
		return *New(artifact).Append(NoteBlock("v1\n")), nil
	})
	// The in-flight fetch, as Artifact performs it on a cache miss.
	_, gen, err := st.doc(context.Background(), "baseline", "a")
	if err != nil {
		t.Fatal(err)
	}
	// A Put races in before the render result is cached.
	st.Put("baseline", *New("a").Append(NoteBlock("v2\n")))
	st.mu.Lock()
	current := st.docs[[2]string{"baseline", "a"}].gen
	st.mu.Unlock()
	if current == gen {
		t.Fatal("Put did not bump the generation; an in-flight stale render would be cached")
	}
	// The next Artifact serves the new document.
	if out, err := st.Artifact(context.Background(), "baseline", "a", FormatText); err != nil || out != "v2\n" {
		t.Errorf("Artifact after racing Put = %q, %v; want v2", out, err)
	}
}

// TestStoreWriteDir checks the artifact directory layout.
func TestStoreWriteDir(t *testing.T) {
	st := NewStore(func(_ context.Context, platform, artifact string) (Doc, error) {
		d := testDoc()
		d.Artifact = artifact
		return d, nil
	})
	dir := t.TempDir()
	paths, err := st.WriteDir(context.Background(), dir, "baseline", []string{"figure9", "table1"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		dir + "/figure9.txt", dir + "/figure9.json", dir + "/figure9.csv",
		dir + "/table1.txt", dir + "/table1.json", dir + "/table1.csv",
	}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v, want %v", paths, want)
	}
}

// TestHandler checks the HTTP surface: the index, per-format content
// types, and error mapping.
func TestHandler(t *testing.T) {
	st := NewStore(func(_ context.Context, platform, artifact string) (Doc, error) {
		if platform != "baseline" && platform != "cxl-gen5" {
			return Doc{}, fmt.Errorf("unknown scenario %q", platform)
		}
		if artifact != "figure9" {
			return Doc{}, fmt.Errorf("unknown id %q", artifact)
		}
		d := testDoc()
		d.Artifact = artifact
		return d, nil
	})
	srv := httptest.NewServer(st.Handler([]string{"figure9"}, "baseline"))
	defer srv.Close()
	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}
	if code, _, body := get("/"); code != 200 || !strings.Contains(body, "/artifacts/figure9.json") {
		t.Errorf("index: code=%d body=%q", code, body)
	}
	code, ct, body := get("/artifacts/figure9.json")
	if code != 200 || ct != "application/json" {
		t.Errorf("json artifact: code=%d ct=%q", code, ct)
	}
	if d, err := ParseJSON(body); err != nil || d.Artifact != "figure9" || d.Platform != "baseline" {
		t.Errorf("served JSON does not parse back: %v %+v", err, d)
	}
	if code, ct, _ := get("/artifacts/figure9.csv?platform=cxl-gen5"); code != 200 || ct != "text/csv; charset=utf-8" {
		t.Errorf("csv artifact: code=%d ct=%q", code, ct)
	}
	if code, ct, _ := get("/artifacts/figure9.txt"); code != 200 || ct != "text/plain; charset=utf-8" {
		t.Errorf("txt artifact: code=%d ct=%q", code, ct)
	}
	if code, _, _ := get("/artifacts/figure9.yaml"); code != 400 {
		t.Errorf("unknown format: code=%d, want 400", code)
	}
	if code, _, _ := get("/artifacts/nope.json"); code != 404 {
		t.Errorf("unknown artifact: code=%d, want 404", code)
	}
	if code, _, _ := get("/artifacts/figure9.json?platform=vapor"); code != 404 {
		t.Errorf("unknown platform: code=%d, want 404", code)
	}
	if code, _, _ := get("/artifacts/figure9"); code != 400 {
		t.Errorf("missing extension: code=%d, want 400", code)
	}
}
