// Command memdis regenerates the paper's tables and figures on the emulated
// platform. Usage:
//
//	memdis all                        # every experiment in paper order
//	memdis -j 8 all                   # same, fanned out over 8 workers
//	memdis -j 0 all                   # use every core
//	memdis figure9                    # one experiment (figureN or tableN)
//	memdis -platform cxl-gen5 figure9 # same analysis on an alternate platform
//	memdis -format json figure9       # machine-readable artifact on stdout
//	memdis -out artifacts all         # write figureN.txt|.json|.csv files
//	memdis sweep                      # default parameter-sweep campaign
//	memdis sweep -axis gen=0,5,6 -axis frac=0.25:0.75:0.25
//	memdis serve                      # serve every artifact over HTTP
//	memdis list                       # list experiment ids
//	memdis platforms                  # list platform scenarios
//
// The -j flag bounds the worker pool for both the experiment-level and the
// intra-driver fan-out. Output is byte-identical for any -j value: every
// randomized simulation owns a deterministic RNG substream keyed by its run
// index, never by worker or completion order.
//
// The -platform flag re-runs the selected experiments on a registered
// scenario (see `memdis platforms`): the drivers use the scenario's link,
// timing constants and capacity sweep in place of the testbed's.
//
// The -format flag picks the stdout renderer (text, json or csv); -out DIR
// additionally writes each selected artifact in every format into DIR. Both
// draw from one render-once artifact store, as does `memdis serve`, which
// answers GET /artifacts/<id>.<txt|json|csv>?platform=<scenario> and
// GET /sweep?axis=...&artifact=sweep|sensitivity&format=... on -addr.
//
// The sweep subcommand runs a parameter-sweep campaign over generated
// scenarios: each -axis flag declares one swept dimension (gen, lat, bw,
// frac — see internal/sweep), their cross-product derives one scenario per
// cell from the -platform base system, and the campaign emits the "sweep"
// and "sensitivity" artifacts through the same store, -format and -out
// plumbing as the fixed experiments. With no -axis flags the canonical
// generation x capacity-fraction grid runs — exactly the grid behind
// `memdis sweep` and `memdis sensitivity` as plain artifact ids.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"

	"strings"

	"repro/internal/experiments"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memdis:", err)
		os.Exit(1)
	}
}

// suites builds one experiment suite per platform on demand, so the store
// source shares profiler caches across artifacts of the same scenario.
// This deliberately does not reuse repro.NewExperimentSource: the CLI
// needs the suite handles themselves — to install -j on each and to run
// `all` through Suite.AllParallel — which the Source seam hides.
func suites(workers int) func(platform string) (*experiments.Suite, error) {
	var mu sync.Mutex
	cache := map[string]*experiments.Suite{}
	return func(platform string) (*experiments.Suite, error) {
		mu.Lock()
		defer mu.Unlock()
		if s, ok := cache[platform]; ok {
			return s, nil
		}
		sp, err := scenario.Get(platform)
		if err != nil {
			return nil, err
		}
		s := experiments.NewSuiteFor(sp)
		s.Workers = workers
		cache[platform] = s
		return s, nil
	}
}

// newStore wires the experiment suites behind the artifact store: documents
// compute once per (platform, artifact), renders once per format.
func newStore(forPlatform func(string) (*experiments.Suite, error)) *report.Store {
	return report.NewStore(func(platform, artifact string) (report.Doc, error) {
		// The store keys and the serve URLs use canonical ids only; the CLI
		// canonicalizes aliases before it gets here, and HTTP clients asking
		// for an alias get pointed at the canonical URL instead of computing
		// and caching a duplicate document under a divergent key.
		canon, err := experiments.CanonicalID(artifact)
		if err != nil {
			return report.Doc{}, err
		}
		if canon != artifact {
			return report.Doc{}, fmt.Errorf("%q is an alias: request %q", artifact, canon)
		}
		s, err := forPlatform(platform)
		if err != nil {
			return report.Doc{}, err
		}
		r, err := s.Run(canon)
		if err != nil {
			return report.Doc{}, err
		}
		return r.Report(), nil
	})
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdis", flag.ContinueOnError)
	workers := fs.Int("j", 1, "parallel workers (0 = all cores)")
	platform := fs.String("platform", "baseline", "platform scenario (see `memdis platforms`)")
	format := fs.String("format", "text", "stdout renderer: text, json or csv")
	outDir := fs.String("out", "", "also write each artifact as <id>.txt|.json|.csv into this directory")
	addr := fs.String("addr", "localhost:8080", "listen address for `memdis serve`")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: memdis [-j N] [-platform S] [-format F] [-out DIR] <all|serve|sweep|list|platforms|%s|...>", experiments.IDs[0])
	}
	f, err := report.ParseFormat(*format)
	if err != nil {
		return err
	}
	if _, err := scenario.Get(*platform); err != nil {
		return err
	}
	forPlatform := suites(pool.Workers(*workers))
	st := newStore(forPlatform)
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return nil
	case "platforms":
		for _, sc := range scenario.All() {
			fmt.Printf("%-12s  %s\n", sc.Name, sc.Description)
		}
		return nil
	case "serve":
		if len(args) > 1 {
			return fmt.Errorf("unexpected arguments after \"serve\": %v (flags go before the subcommand: memdis -addr HOST:PORT serve)", args[1:])
		}
		mux := http.NewServeMux()
		mux.Handle("/", st.Handler(experiments.IDs, *platform))
		mux.Handle("/sweep", sweepHandler(forPlatform, *platform))
		fmt.Fprintf(os.Stderr, "memdis: serving artifacts on http://%s/ (default platform %s)\n", *addr, *platform)
		return http.ListenAndServe(*addr, mux)
	case "sweep":
		return runSweep(args[1:], forPlatform, st, *platform, f, *outDir)
	case "all":
		if len(args) > 1 {
			// Catch `memdis all -j 4`: flag parsing stops at the first
			// non-flag argument, so a trailing -j would be silently
			// ignored instead of changing the worker count.
			return fmt.Errorf("unexpected arguments after \"all\": %v (flags go before the subcommand: memdis -j N all)", args[1:])
		}
		// Compute the whole artifact set with the experiment-level fan-out
		// and seed the store, which then only renders.
		s, err := forPlatform(*platform)
		if err != nil {
			return err
		}
		for _, r := range s.AllParallel(s.Workers) {
			st.Put(*platform, r.Report())
		}
		return emit(st, *platform, experiments.IDs, f, *outDir, true)
	default:
		// Canonicalize aliases ("fig9" -> "figure9") so store keys, served
		// URLs and -out filenames always match the document's artifact id.
		ids := make([]string, len(args))
		for i, id := range args {
			canon, err := experiments.CanonicalID(id)
			if err != nil {
				return err
			}
			ids[i] = canon
		}
		return emit(st, *platform, ids, f, *outDir, false)
	}
}

// runSweep implements the sweep subcommand: parse the axis declarations,
// run the campaign on the selected platform's suite, seed the store with
// the two resulting documents and emit them like any other artifact pair.
func runSweep(args []string, forPlatform func(string) (*experiments.Suite, error), st *report.Store, platform string, f report.Format, outDir string) error {
	fs := flag.NewFlagSet("memdis sweep", flag.ContinueOnError)
	var axes []sweep.Axis
	fs.Func("axis", "swept axis, name=v1,v2,... or name=lo:hi:step (repeatable; axes: gen, lat, bw, frac)", func(s string) error {
		a, err := sweep.ParseAxis(s)
		if err != nil {
			return err
		}
		axes = append(axes, a)
		return nil
	})
	runs := fs.Int("runs", 0, "Monte-Carlo scheduler runs per cell (0 = the paper's 100)")
	workloadList := fs.String("workloads", "", "comma-separated workload subset (default: all six)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected arguments after \"sweep\" flags: %v", rest)
	}
	s, err := forPlatform(platform)
	if err != nil {
		return err
	}
	if *runs > 0 {
		s.Runs = *runs
	}
	if *workloadList != "" {
		var entries []registry.Entry
		for _, name := range strings.Split(*workloadList, ",") {
			e, err := registry.Get(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			entries = append(entries, e)
		}
		s.Entries = entries
	}
	camp, err := s.RunSweep(s.SweepGrid(axes))
	if err != nil {
		return err
	}
	st.Put(platform, camp.Sweep())
	st.Put(platform, camp.Sensitivity())
	return emit(st, platform, []string{"sweep", "sensitivity"}, f, outDir, false)
}

// sweepHandler adapts the per-platform suites to the sweep campaign
// endpoint: each platform's default grid comes from its suite, and
// campaigns memoize on the suite so repeated queries share executions.
func sweepHandler(forPlatform func(string) (*experiments.Suite, error), defaultPlatform string) http.Handler {
	resolve := func(platform string) (*experiments.Suite, error) {
		if platform == "" {
			platform = defaultPlatform
		}
		return forPlatform(platform)
	}
	return sweep.Handler(
		func(platform string) (sweep.Grid, error) {
			s, err := resolve(platform)
			if err != nil {
				return sweep.Grid{}, err
			}
			return s.SweepGrid(nil), nil
		},
		func(platform string, g sweep.Grid) (*sweep.Campaign, error) {
			s, err := resolve(platform)
			if err != nil {
				return nil, err
			}
			return s.RunSweep(g)
		})
}

// emit prints each artifact in the chosen format (with the historical
// banner for `all` text output) and, when outDir is set, writes the whole
// artifact set in every format there.
func emit(st *report.Store, platform string, ids []string, f report.Format, outDir string, banner bool) error {
	for _, id := range ids {
		out, err := st.Artifact(platform, id, f)
		if err != nil {
			return err
		}
		switch {
		case f == report.FormatText && banner:
			fmt.Printf("==== %s ====\n%s\n", id, out)
		case f == report.FormatText:
			// The historical `memdis <id>` layout: Println adds the blank
			// line that separated consecutive artifacts.
			fmt.Println(out)
		default:
			fmt.Print(out)
		}
	}
	if outDir == "" {
		return nil
	}
	paths, err := st.WriteDir(outDir, platform, ids)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memdis: wrote %d artifact files to %s\n", len(paths), outDir)
	return nil
}
