package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro"
)

// ExampleNew builds the unified Service facade — one handle owning the
// worker pool, the per-platform suites, the artifact store and the sweep
// memo — and drives it with context-first calls: cancellation or the
// deadline here stops the engine mid-campaign within one task boundary.
// (No Output comment: computing a real artifact profiles workloads, so
// the example compiles under go test but is not executed.)
func ExampleNew() {
	svc, err := repro.New(
		repro.WithWorkers(8),                  // one shared budget for every fan-out
		repro.WithDefaultPlatform("cxl-gen5"), // what an empty Platform resolves to
	)
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	doc, err := svc.Artifact(ctx, repro.ArtifactRequest{Artifact: "figure9"})
	if err != nil {
		panic(err)
	}
	out, err := svc.Rendered(ctx, repro.ArtifactRequest{Artifact: "figure9"}, repro.FormatJSON)
	if err != nil {
		panic(err)
	}
	grid, err := svc.Grid("") // the default generation x capacity-fraction grid
	if err != nil {
		panic(err)
	}
	campaign, err := svc.Sweep(ctx, grid) // memoized single-flight per grid
	if err != nil {
		panic(err)
	}
	fmt.Println(doc.Artifact, len(out), len(campaign.Points))
}

// ExampleNewProfiler runs the paper's Level-2 analysis on a 50%-50%
// two-tier system and classifies each phase's remote access ratio against
// the R_cap and R_BW tuning references.
func ExampleNewProfiler() {
	profiler := repro.NewProfiler(repro.DefaultPlatform())
	entry, err := repro.Workload("XSBench")
	if err != nil {
		panic(err)
	}
	l2 := profiler.Level2(entry, 1, 0.5)
	fmt.Printf("references: R_cap=%.0f%% R_BW=%.0f%%\n", l2.RCap*100, l2.RBW*100)
	for _, ph := range l2.Phases {
		fmt.Printf("phase %s: %s\n", ph.Name, l2.Verdict(ph))
	}
	// Output:
	// references: R_cap=50% R_BW=32%
	// phase p1: balanced
	// phase p2: underused-remote
}

// ExampleSchedule simulates a four-job queue on a two-node rack that
// shares one memory pool, under the interference-aware placement policy:
// the loud pool-heavy jobs are interleaved with quiet mostly-local ones
// instead of being co-located.
func ExampleSchedule() {
	phases := func(remoteFrac float64) []repro.PhaseStats {
		total := uint64(4 << 30)
		remote := uint64(float64(total) * remoteFrac)
		return []repro.PhaseStats{{
			Name:             "p2",
			Flops:            1e8,
			LocalBytes:       total - remote,
			RemoteBytes:      remote,
			DemandMissLocal:  (total - remote) / 64 / 4,
			DemandMissRemote: remote / 64 / 4,
		}}
	}
	queue := []repro.Job{
		{Name: "loud-1", Phases: phases(0.9), IC: 1.6, Sensitivity: 0.15},
		{Name: "loud-2", Phases: phases(0.9), IC: 1.6, Sensitivity: 0.15},
		{Name: "quiet-1", Phases: phases(0.1), IC: 1.05, Sensitivity: 0.05},
		{Name: "quiet-2", Phases: phases(0.1), IC: 1.05, Sensitivity: 0.05},
	}
	rack := repro.RackConfig{Nodes: 2, Machine: repro.DefaultPlatform()}
	res := repro.Schedule(rack, queue, repro.InterferenceAware)
	for _, j := range res.Jobs {
		fmt.Printf("%s started at %.2fs\n", j.Name, j.Start)
	}
	// Output:
	// quiet-1 started at 0.00s
	// loud-1 started at 0.00s
	// quiet-2 started at 0.13s
	// loud-2 started at 0.24s
}

// ExamplePlatformNamed looks a platform scenario up by name and shows the
// what-if surface: the scenario carries a complete platform plus the
// capacity protocol to sweep on it.
func ExamplePlatformNamed() {
	sc, err := repro.PlatformNamed("cxl-gen6")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %s\n", sc.Name, sc.Description)
	fmt.Printf("link: %.0f GB/s data, %.0f ns, headline split %.0f%% local\n",
		sc.Platform.Link.DataBandwidth/1e9, sc.Platform.Link.Latency*1e9,
		sc.HeadlineFraction*100)
	// Output:
	// cxl-gen6: CXL 3.0 pool on PCIe 6.0 x8: 52 GB/s data, 310 ns, 1.12x flit overhead
	// link: 52 GB/s data, 310 ns, headline split 50% local
}

// ExampleRunSweep declares a two-axis campaign — interconnect generation
// crossed with the local capacity fraction — and runs the paper's headline
// analyses over every generated scenario. (No Output comment: a full
// campaign profiles every workload, so the example compiles under go test
// but is not executed.)
func ExampleRunSweep() {
	base, err := repro.PlatformNamed("baseline")
	if err != nil {
		panic(err)
	}
	grid := repro.SweepGrid{
		Base: base,
		Axes: []repro.SweepAxis{
			{Name: "gen", Values: []float64{0, 5, 6}},
			{Name: "frac", Values: []float64{0.25, 0.50, 0.75}},
		},
	}
	campaign, err := repro.RunSweep(grid, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.RenderText(campaign.Sensitivity()))
	best := campaign.Points[campaign.Best]
	fmt.Printf("best cell: %s (score %.3f)\n", best.Spec.Name, campaign.Scores[campaign.Best])
}

// ExampleRecordTrace shows the profile-once / analyze-everywhere workflow:
// a workload execution is recorded once, then the operation trace is
// replayed onto a platform with a quarter of the local capacity — no
// re-run of the application — to see the remote access ratio grow.
func ExampleRecordTrace() {
	platform := repro.DefaultPlatform()
	entry, err := repro.Workload("XSBench")
	if err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	recorded, err := repro.RecordTrace(platform, entry.New(1), &buf)
	if err != nil {
		panic(err)
	}

	pooled := platform.WithLocalCapacity(recorded.PeakFootprint() / 4)
	replayed, err := repro.ReplayTrace(pooled, &buf)
	if err != nil {
		panic(err)
	}

	ratio := func(m *repro.Machine) float64 {
		var remote, total uint64
		for _, ph := range m.Phases() {
			remote += ph.RemoteBytes
			total += ph.TotalBytes()
		}
		return float64(remote) / float64(total)
	}
	fmt.Printf("remote access: recorded %.0f%%, replayed at 25%% local %.0f%%\n",
		ratio(recorded)*100, ratio(replayed)*100)
	// Output:
	// remote access: recorded 0%, replayed at 25% local 13%
}
