package repro

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
)

// warmService builds the reduced Monte-Carlo service the warm tests share:
// one workload, two scheduler runs, so a full warm is cheap even on one
// core.
func warmService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	hpl, err := Workload("HPL")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(append([]Option{WithWorkers(0), WithRuns(2), WithWorkloads(hpl)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// drainGoroutines polls until the goroutine count returns to within slack
// of the baseline — the no-leak check for cancelled warms (the same idiom
// the engine's cancellation tests use).
func drainGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+slack {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d running, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWarmLifecycle drives the full readiness arc: a WithWarm service is
// born not-ready, serves correct artifacts while the warm runs, flips
// ready when StartWarm finishes, and by then holds every (artifact,
// format) render in its store.
func TestWarmLifecycle(t *testing.T) {
	svc := warmService(t, WithWarm())
	if svc.Ready() {
		t.Fatal("WithWarm service reports ready before any warm ran")
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	healthz := func() bool {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var got struct {
			Ready bool `json:"ready"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("healthz = %d, want 200 (liveness holds while warming)", resp.StatusCode)
		}
		return got.Ready
	}
	if healthz() {
		t.Fatal("healthz reports ready before the warm started")
	}

	ctx := context.Background()
	done := svc.StartWarm(ctx)
	if again := svc.StartWarm(ctx); again != done {
		t.Error("StartWarm is not idempotent: second call returned a different channel")
	}

	// Serving while warming: a request racing the warm still gets the
	// correct bytes — the store computes what the warm has not reached yet.
	early, err := svc.Rendered(ctx, ArtifactRequest{Artifact: "figure9"}, FormatText)
	if err != nil || early == "" {
		t.Fatalf("render during warm: %v", err)
	}

	select {
	case <-done:
	case <-time.After(8 * time.Minute): // generous: one slow core under -race
		t.Fatal("warm did not finish")
	}
	if err := svc.WarmErr(); err != nil {
		t.Fatalf("warm failed: %v", err)
	}
	if !svc.Ready() || !healthz() {
		t.Fatal("service not ready after a successful warm")
	}
	// The warm's whole point: every advertised (artifact, format) is a
	// pure cache hit now.
	docs, renders := svc.Store().Cached()
	ids := len(svc.IDs())
	if docs < ids || renders < ids*len(report.Formats) {
		t.Errorf("store holds %d docs / %d renders after warm, want >=%d docs and >=%d renders",
			docs, renders, ids, ids*len(report.Formats))
	}
	late, err := svc.Rendered(ctx, ArtifactRequest{Artifact: "figure9"}, FormatText)
	if err != nil || late != early {
		t.Errorf("post-warm render drifted from the mid-warm one (err %v)", err)
	}
}

// TestWarmCancellation kills the warm's context mid-flight and checks the
// abort contract: the done channel closes, no goroutines leak, and — when
// the cancel actually won the race — the service stays not-ready with the
// cancellation recorded in WarmErr.
func TestWarmCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	svc := warmService(t, WithWarm())
	ctx, cancel := context.WithCancel(context.Background())
	done := svc.StartWarm(ctx)
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("cancelled warm never closed its done channel")
	}
	drainGoroutines(t, baseline, 2)
	// On a fast machine the warm may have beaten the cancel; both ends of
	// the race must be coherent.
	if err := svc.WarmErr(); err != nil {
		if !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Errorf("warm error = %v, want a context cancellation", err)
		}
		if svc.Ready() {
			t.Error("service reports ready after a cancelled warm")
		}
	} else if !svc.Ready() {
		t.Error("warm succeeded but service not ready")
	}
}

// TestWarmRetryAfterFailure pins the retry contract: a warm that finished
// with an error (here a pre-cancelled boot context — the transient kind a
// supervisor's shutdown race produces) must not latch the service
// not-ready forever. The failure is diagnosable from /healthz, and the
// next StartWarm begins a fresh attempt that carries the service to
// readiness without a process restart.
func TestWarmRetryAfterFailure(t *testing.T) {
	svc := warmService(t, WithWarm())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	select {
	case <-svc.StartWarm(dead):
	case <-time.After(time.Minute):
		t.Fatal("warm under a dead context never closed its channel")
	}
	if err := svc.WarmErr(); err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("warm error = %v, want a context cancellation", err)
	}
	if svc.Ready() {
		t.Fatal("service reports ready after a failed warm")
	}

	// The probe shows the stuck-not-ready diagnosis: still 200 (the pod is
	// live), ready=false, and the warm error verbatim — never cached.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Ready   bool   `json:"ready"`
		WarmErr string `json:"warm_error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatalf("healthz after failed warm = %d (Cache-Control %q), want 200 no-store",
			resp.StatusCode, resp.Header.Get("Cache-Control"))
	}
	if probe.Ready || !strings.Contains(probe.WarmErr, context.Canceled.Error()) {
		t.Fatalf("healthz after failed warm: ready=%v warm_error=%q", probe.Ready, probe.WarmErr)
	}

	// Retry: StartWarm starts over instead of returning the dead channel,
	// stays idempotent while the new attempt is in flight, and reaches
	// readiness.
	done := svc.StartWarm(context.Background())
	if again := svc.StartWarm(context.Background()); again != done {
		t.Error("StartWarm is not idempotent while the retry is in flight")
	}
	select {
	case <-done:
	case <-time.After(8 * time.Minute): // generous: one slow core under -race
		t.Fatal("retried warm did not finish")
	}
	if err := svc.WarmErr(); err != nil {
		t.Fatalf("retried warm failed: %v", err)
	}
	if !svc.Ready() {
		t.Fatal("service not ready after a successful retry")
	}
	// Success latches: further calls rejoin the finished warm.
	if again := svc.StartWarm(context.Background()); again != done {
		t.Error("StartWarm after a successful warm returned a new channel")
	}
}

// TestWarmOptionValidation pins the constructor contract: warm platforms
// must name registered scenarios, and warming a cache-less service is a
// configuration error, not a silent no-op.
func TestWarmOptionValidation(t *testing.T) {
	if _, err := New(WithWarm("vapor")); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("WithWarm(vapor) error = %v, want unknown scenario", err)
	}
	if _, err := New(WithWarm(), WithCache(false)); err == nil || !strings.Contains(err.Error(), "WithCache") {
		t.Errorf("WithWarm+WithCache(false) error = %v, want the incompatibility", err)
	}
	// Without WithWarm the service is born ready and Warm is still usable
	// as an explicit pre-computation call.
	svc := warmService(t)
	if !svc.Ready() {
		t.Error("plain service should be ready immediately")
	}
}
