package experiments

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads/registry"
)

// smallSuite returns a fresh suite trimmed for determinism testing: three
// workloads spanning the interesting regimes (streaming, graph, skewed
// lookup) and a reduced Monte-Carlo run count. Entries and Runs only scale
// the work down — the engine code paths are identical to the full suite.
func smallSuite() *Suite {
	s := NewSuite(machine.Default())
	all := registry.All()
	var picked []registry.Entry
	for _, e := range all {
		switch e.Name {
		case "Hypre", "BFS", "XSBench":
			picked = append(picked, e)
		}
	}
	s.Entries = picked
	s.Runs = 10
	return s
}

// freshCheapSuite returns a suite trimmed to the two cheapest workloads
// with a reduced Monte-Carlo count — small enough for the quick tier to
// exercise the drivers and the engine end-to-end on one core.
func freshCheapSuite() *Suite {
	s := NewSuite(machine.Default())
	var picked []registry.Entry
	for _, e := range registry.All() {
		switch e.Name {
		case "HPL", "Hypre":
			picked = append(picked, e)
		}
	}
	s.Entries = picked
	s.Runs = 5
	return s
}

// quickSuite is the shared warm instance of freshCheapSuite for quick-tier
// tests that only read results (renders are pure functions of the cached
// profiles, so sharing changes nothing but the runtime).
var (
	quickOnce  sync.Once
	quickCache *Suite
)

func quickSuite() *Suite {
	quickOnce.Do(func() { quickCache = freshCheapSuite() })
	return quickCache
}

// quickIDs span the capacity sweep (figure9), the Monte-Carlo scheduling
// comparison (figure13) and the cross-scenario what-if sweep (scenarios).
var quickIDs = []string{"figure9", "figure13", "scenarios"}

// TestQuickTierDeterministic is the quick-tier (-short) version of the
// byte-identical guarantee: the quick driver subset must render the same
// bytes sequentially (shared warm suite), on a cold suite at 8 workers, and
// again on the warm parallel suite (scenario profilers memoized on it). It
// runs in both tiers so every PR still covers the engine plus the scenario
// subsystem end-to-end.
func TestQuickTierDeterministic(t *testing.T) {
	render := func(s *Suite) map[string]string {
		out := map[string]string{}
		for _, id := range quickIDs {
			r, err := s.Run(id)
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			out[id] = r.Render()
		}
		return out
	}
	seq := render(quickSuite())
	par := freshCheapSuite()
	par.Workers = 8
	got := render(par)
	for _, id := range quickIDs {
		if seq[id] != got[id] {
			t.Errorf("%s: workers=8 render differs from sequential (%d vs %d bytes)",
				id, len(seq[id]), len(got[id]))
		}
		if len(seq[id]) == 0 {
			t.Errorf("%s renders empty", id)
		}
	}
	again := render(par)
	for _, id := range quickIDs {
		if again[id] != got[id] {
			t.Errorf("%s: warm re-render differs", id)
		}
	}
}

// TestSweepArtifactsShareOneCampaign pins the single-flight memo: the
// "sweep" and "sensitivity" drivers must reduce the same executed
// campaign, not run the grid twice — including when AllParallel requests
// both concurrently (the full tier exercises that path; here the two
// driver calls hit the memo sequentially on the warm quick suite).
func TestSweepArtifactsShareOneCampaign(t *testing.T) {
	s := quickSuite()
	sw := s.Sweep()
	se := s.Sensitivity()
	if sw.Campaign != se.Campaign {
		t.Error("sweep and sensitivity ran separate campaigns; want one shared execution")
	}
	if sw.Campaign == nil || len(sw.Campaign.Points) == 0 {
		t.Fatal("default campaign is empty")
	}
	if sw.Render() == "" || se.Render() == "" {
		t.Error("sweep artifacts render empty")
	}
	if sw.Report().Artifact != "sweep" || se.Report().Artifact != "sensitivity" {
		t.Errorf("artifact ids: %q, %q", sw.Report().Artifact, se.Report().Artifact)
	}
}

// TestAllParallelByteIdenticalToSequential is the engine's core guarantee:
// a parallel sweep renders exactly the bytes the sequential sweep renders,
// for any worker count. Two independent suites are used so the parallel run
// cannot lean on profiles the sequential run already cached; a third pass
// at a different worker count on the warm parallel suite then checks that
// neither worker count nor cache reuse changes the rendered output.
func TestAllParallelByteIdenticalToSequential(t *testing.T) {
	skipShort(t)
	seq := smallSuite().All()
	parSuite := smallSuite()
	par := parSuite.AllParallel(8)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID() != par[i].ID() {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i].ID(), par[i].ID())
		}
		a, b := seq[i].Render(), par[i].Render()
		if a != b {
			t.Errorf("%s: parallel render differs from sequential (%d vs %d bytes)",
				seq[i].ID(), len(a), len(b))
		}
	}
	if parSuite.limiter != nil {
		t.Error("AllParallel should uninstall the shared limiter when done")
	}
	two := parSuite.AllParallel(2)
	for i := range two {
		if two[i].Render() != par[i].Render() {
			t.Errorf("%s: workers=2 and workers=8 disagree", two[i].ID())
		}
	}
}
