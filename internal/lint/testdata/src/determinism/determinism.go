// Package fixture exercises the determinism analyzer: wall-clock reads,
// ambient randomness and order-leaking map iteration are caught; the
// collect-then-sort, map-rebuild and delete idioms pass; //repro:allow
// silences a documented order-independent loop.
package fixture

import (
	"fmt"
	"math/rand" // want determinism "import of math/rand"
	"sort"
	"time"
)

// wallClock reads the clock twice and rolls ambient dice — three catches.
func wallClock() float64 {
	start := time.Now()         // want determinism "time.Now reads the wall clock"
	_ = time.Since(start)       // want determinism "time.Since reads the wall clock"
	time.Sleep(time.Nanosecond) // want determinism "time.Sleep reads the wall clock"
	return rand.Float64()
}

// leakyRender bakes iteration order into rendered output.
func leakyRender(m map[string]float64) []string {
	var out []string
	for k, v := range m { // want determinism "map iteration order is nondeterministic"
		out = append(out, fmt.Sprintf("%s=%g", k, v))
	}
	return out
}

// sortedRender is the contract-conformant idiom: collect keys, sort,
// then render — clean.
func sortedRender(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([]string, 0, len(ks))
	for _, k := range ks {
		out = append(out, fmt.Sprintf("%s=%g", k, m[k]))
	}
	return out
}

// rebuild inverts a map into another map — one slot per distinct key, no
// order effect — clean.
func rebuild(m map[string]int) map[int]string {
	inv := map[int]string{}
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// drain deletes every entry — clean.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// countEntries is order-independent but not one of the recognized idioms;
// the allow documents why it is safe.
func countEntries(m map[string]int) int {
	n := 0
	//repro:allow determinism — pure counting commutes; no value escapes in iteration order
	for _, v := range m {
		if v > 0 {
			n += v
		}
	}
	return n
}
