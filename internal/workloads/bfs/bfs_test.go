package bfs

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

func small(variant Variant) *BFS {
	return &BFS{NVerts: 1 << 10, AvgDeg: 8, Roots: 2, Variant: variant, seed: 0xb5f5}
}

// refBFS computes distances with a plain queue BFS on the CSR graph.
func refBFS(offsets, adj []int32, nv int, root int32) []int32 {
	dist := make([]int32, nv)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int32{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := offsets[u]; p < offsets[u+1]; p++ {
			v := adj[p]
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func TestParentsFormValidBFSTree(t *testing.T) {
	b := small(Baseline)
	m := machine.New(machine.Default())
	b.Run(m)
	nv := b.NVerts
	root := int32((int(uint64(0xb5f5)) + (b.Roots-1)*7919) % nv)
	dist := refBFS(b.offsets, b.adj, nv, root)

	// Same reachable set.
	for v := 0; v < nv; v++ {
		reached := b.Parents[v] >= 0
		refReached := dist[v] >= 0
		if reached != refReached {
			t.Fatalf("vertex %d reachability mismatch: parents=%v ref=%v",
				v, b.Parents[v], dist[v])
		}
	}
	// Parent edges exist and connect adjacent BFS levels.
	for v := 0; v < nv; v++ {
		p := b.Parents[v]
		if p < 0 || int32(v) == p {
			continue
		}
		if dist[v] != dist[p]+1 {
			t.Errorf("vertex %d at depth %d has parent %d at depth %d",
				v, dist[v], p, dist[p])
		}
		found := false
		for e := b.offsets[v]; e < b.offsets[v+1]; e++ {
			if b.adj[e] == p {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("parent %d of %d is not a neighbour", p, v)
		}
	}
	if b.Reached < nv/2 {
		t.Errorf("only %d/%d vertices reached; rMAT giant component expected", b.Reached, nv)
	}
}

func TestVariantsComputeSameTraversal(t *testing.T) {
	results := map[Variant]int{}
	for _, v := range []Variant{Baseline, ReorderOnly, Optimized} {
		b := small(v)
		m := machine.New(machine.Default())
		b.Run(m)
		results[v] = b.Reached
	}
	if results[Baseline] != results[Optimized] || results[Baseline] != results[ReorderOnly] {
		t.Errorf("variants disagree on reached count: %v", results)
	}
}

func TestOptimizedReducesRemoteAccess(t *testing.T) {
	// The §7.1 headline: at 75% pooling the baseline does nearly all its
	// traversal traffic remotely; the optimized variant cuts it sharply.
	remote := func(v Variant) float64 {
		// Measure peak footprint first (setup_waste protocol).
		probe := small(v)
		mp := machine.New(machine.Default())
		probe.Run(mp)
		local := mp.PeakFootprint() / 4 // 25% local, 75% pooled

		b := small(v)
		m := machine.New(machine.Default().WithLocalCapacity(local))
		b.Run(m)
		p2, ok := m.Phase("p2")
		if !ok {
			t.Fatal("missing p2")
		}
		return p2.RemoteAccessRatio
	}
	base := remote(Baseline)
	opt := remote(Optimized)
	if base < 0.8 {
		t.Errorf("baseline remote access ratio = %v, want >= 0.8 (paper: 99%%)", base)
	}
	if opt >= base-0.2 {
		t.Errorf("optimized remote ratio %v should be well below baseline %v", opt, base)
	}
}

func TestReorderPinsParentsLocally(t *testing.T) {
	b := small(ReorderOnly)
	probe := small(ReorderOnly)
	mp := machine.New(machine.Default())
	probe.Run(mp)
	local := mp.PeakFootprint() / 4
	m := machine.New(machine.Default().WithLocalCapacity(local))
	b.Run(m)
	for _, rs := range m.Space.PerRegion() {
		if rs.Region.Name == "Parents" && rs.RemotePages > 0 {
			t.Errorf("Parents has %d remote pages in reorder-only variant", rs.RemotePages)
		}
	}
}

func TestScratchFreedOnlyInOptimized(t *testing.T) {
	check := func(v Variant, wantLive bool) {
		b := small(v)
		m := machine.New(machine.Default())
		b.Run(m)
		live := false
		for _, rs := range m.Space.PerRegion() {
			if rs.Region.Name == "edge-scratch" {
				live = true
			}
		}
		if live != wantLive {
			t.Errorf("%v: scratch live = %v, want %v", v, live, wantLive)
		}
	}
	check(Baseline, true)
	check(Optimized, false)
}

func TestDegreeSkewGrowsWithScale(t *testing.T) {
	maxDeg := func(scale int) float64 {
		b := New(scale)
		b.Roots = 1
		m := machine.New(machine.Default())
		b.Run(m)
		mx := int32(0)
		for v := 0; v < b.NVerts; v++ {
			if d := b.offsets[v+1] - b.offsets[v]; d > mx {
				mx = d
			}
		}
		return float64(mx) / float64(2*b.AvgDeg)
	}
	if maxDeg(2) <= maxDeg(1) {
		t.Errorf("rMAT skew (max/avg degree) should grow with scale")
	}
}

func TestRMATQuadrantBias(t *testing.T) {
	b := New(1)
	b.Roots = 1
	m := machine.New(machine.Default())
	b.Run(m)
	// Low-id vertices should have much higher degree mass than high-id
	// ones under (a,b,c,d)=(0.57,...).
	half := b.NVerts / 2
	lowMass, highMass := int64(0), int64(0)
	for v := 0; v < b.NVerts; v++ {
		d := int64(b.offsets[v+1] - b.offsets[v])
		if v < half {
			lowMass += d
		} else {
			highMass += d
		}
	}
	if lowMass < 2*highMass {
		t.Errorf("rMAT bias missing: low-half mass %d vs high-half %d", lowMass, highMass)
	}
}

func TestFreedScratchCapacityReused(t *testing.T) {
	b := small(Optimized)
	probe := small(Optimized)
	mp := machine.New(machine.Default())
	probe.Run(mp)
	local := mp.PeakFootprint() / 2
	m := machine.New(machine.Default().WithLocalCapacity(local))
	b.Run(m)
	// After freeing the scratch, dynamic frontiers should have found local
	// space: local tier should not be empty at end of run.
	if m.Space.Used(mem.TierLocal) == 0 {
		t.Errorf("local tier unused despite freed scratch")
	}
}
