package experiments

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads/registry"
)

// smallSuite returns a fresh suite trimmed for determinism testing: three
// workloads spanning the interesting regimes (streaming, graph, skewed
// lookup) and a reduced Monte-Carlo run count. Entries and Runs only scale
// the work down — the engine code paths are identical to the full suite.
func smallSuite() *Suite {
	s := NewSuite(machine.Default())
	all := registry.All()
	var picked []registry.Entry
	for _, e := range all {
		switch e.Name {
		case "Hypre", "BFS", "XSBench":
			picked = append(picked, e)
		}
	}
	s.Entries = picked
	s.Runs = 10
	return s
}

// TestAllParallelByteIdenticalToSequential is the engine's core guarantee:
// a parallel sweep renders exactly the bytes the sequential sweep renders,
// for any worker count. Two independent suites are used so the parallel run
// cannot lean on profiles the sequential run already cached; a third pass
// at a different worker count on the warm parallel suite then checks that
// neither worker count nor cache reuse changes the rendered output.
func TestAllParallelByteIdenticalToSequential(t *testing.T) {
	seq := smallSuite().All()
	parSuite := smallSuite()
	par := parSuite.AllParallel(8)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID() != par[i].ID() {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i].ID(), par[i].ID())
		}
		a, b := seq[i].Render(), par[i].Render()
		if a != b {
			t.Errorf("%s: parallel render differs from sequential (%d vs %d bytes)",
				seq[i].ID(), len(a), len(b))
		}
	}
	if parSuite.limiter != nil {
		t.Error("AllParallel should uninstall the shared limiter when done")
	}
	two := parSuite.AllParallel(2)
	for i := range two {
		if two[i].Render() != par[i].Render() {
			t.Errorf("%s: workers=2 and workers=8 disagree", two[i].ID())
		}
	}
}
