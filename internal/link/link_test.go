package link

import (
	"math"
	"testing"
	"testing/quick"
)

func testLink() *Link {
	return New(Config{
		DataBandwidth: 34e9,
		PeakTraffic:   85e9,
		Latency:       202e-9,
	})
}

func TestPCMSaturates(t *testing.T) {
	l := testLink()
	if got := l.PCMTraffic(40e9); got != 40e9 {
		t.Errorf("PCM below peak = %v, want 40e9", got)
	}
	if got := l.PCMTraffic(200e9); got != 85e9 {
		t.Errorf("PCM above peak = %v, want saturated 85e9", got)
	}
}

func TestDelayFactorMonotone(t *testing.T) {
	l := testLink()
	prev := 0.0
	for rho := 0.0; rho <= 3.0; rho += 0.05 {
		d := l.DelayFactor(rho)
		if d < 1 {
			t.Fatalf("delay factor %v < 1 at rho=%v", d, rho)
		}
		if d < prev {
			t.Fatalf("delay factor not monotone at rho=%v: %v < %v", rho, d, prev)
		}
		prev = d
	}
}

func TestDelayGrowsPastSaturation(t *testing.T) {
	// The whole point of LBench: contention keeps increasing after the
	// PCM counter has pinned at the link peak.
	l := testLink()
	atSat := l.DelayFactor(1.0)
	over := l.DelayFactor(2.0)
	if over <= atSat {
		t.Errorf("delay at rho=2 (%v) should exceed delay at rho=1 (%v)", over, atSat)
	}
	if l.PCMTraffic(2*85e9) != l.PCMTraffic(85e9) {
		t.Errorf("PCM should be identical at and past saturation")
	}
}

func TestEffectiveLatencyUnloaded(t *testing.T) {
	l := testLink()
	if got := l.EffectiveLatency(0); got != 202e-9 {
		t.Errorf("unloaded latency = %v, want 202ns", got)
	}
}

func TestShareBandwidthUncontended(t *testing.T) {
	l := testLink()
	// 10 GB/s payload demand with no background: full demand served.
	if got := l.ShareBandwidth(10e9, 0); got != 10e9 {
		t.Errorf("uncontended share = %v, want 10e9", got)
	}
	// Demand above data bandwidth clips at data bandwidth.
	if got := l.ShareBandwidth(50e9, 0); got != 34e9 {
		t.Errorf("clipped share = %v, want 34e9", got)
	}
}

func TestShareBandwidthContended(t *testing.T) {
	l := testLink()
	// Background consumes 80% of peak raw traffic; a large demand gets a
	// proportional slice, strictly less than the uncontended value.
	free := l.ShareBandwidth(30e9, 0)
	contended := l.ShareBandwidth(30e9, 0.8*85e9)
	if contended >= free {
		t.Errorf("contended share %v should be below free share %v", contended, free)
	}
	if contended <= 0 {
		t.Errorf("contended share should stay positive, got %v", contended)
	}
}

func TestRawTrafficOverhead(t *testing.T) {
	l := testLink()
	if got := l.RawTraffic(100); math.Abs(got-115) > 1e-9 {
		t.Errorf("raw traffic = %v, want 115 (15%% overhead)", got)
	}
}

func TestTrafficAccounting(t *testing.T) {
	l := testLink()
	l.AddPayload(1000)
	l.AddPayload(500)
	if got := l.PayloadBytes(); got != 1500 {
		t.Errorf("payload = %d, want 1500", got)
	}
	l.Reset()
	if got := l.PayloadBytes(); got != 0 {
		t.Errorf("payload after reset = %d, want 0", got)
	}
}

// Property: bandwidth share never exceeds demand, never exceeds data
// bandwidth, is non-negative, and is monotone non-increasing in background
// load.
func TestShareBandwidthProperty(t *testing.T) {
	l := testLink()
	f := func(demandGB, bg1GB, bg2GB uint16) bool {
		demand := float64(demandGB%200) * 1e9
		bgA := float64(bg1GB%200) * 1e9
		bgB := float64(bg2GB%200) * 1e9
		if bgA > bgB {
			bgA, bgB = bgB, bgA
		}
		sA := l.ShareBandwidth(demand, bgA)
		sB := l.ShareBandwidth(demand, bgB)
		if demand == 0 {
			return sA == 0 && sB == 0
		}
		return sA >= sB-1e-6 && sA <= demand+1e-6 && sA <= 34e9+1e-6 && sB >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
