// Ablation benchmarks for the design choices DESIGN.md calls out: the
// prefetcher's degree and adaptive throttle, the stream-demand penalty that
// calibrates Figure 8, the data-placement optimizers of §5.2, and the N:M
// bandwidth interleave of the cited kernel patch. Run with
// `go test -bench Ablation -benchmem`; each benchmark reports its headline
// quantity as a custom metric so sweeps can be compared numerically.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/placement"
	"repro/internal/workloads/registry"
)

// BenchmarkAblationPrefetchDegree sweeps the streamer's prefetch degree and
// reports Hypre's prefetch performance gain at each setting: degree 4 (the
// default) captures nearly all of the benefit.
func BenchmarkAblationPrefetchDegree(b *testing.B) {
	entry, err := registry.Get("Hypre")
	if err != nil {
		b.Fatal(err)
	}
	for _, degree := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			cfg := machine.Default()
			cfg.Cache.PrefetchDegree = degree
			b.ReportAllocs()
			var gain float64
			for i := 0; i < b.N; i++ {
				rep := core.NewProfiler(cfg).Level1(entry, 1)
				gain = rep.PerformanceGain
			}
			b.ReportMetric(gain*100, "%gain")
		})
	}
}

// BenchmarkAblationStreamPenalty sweeps the stream-demand penalty and
// reports NekRS's prefetch gain: the paper-calibrated 0.85 sits between the
// no-penalty (gain ~= 0) and double-cost extremes.
func BenchmarkAblationStreamPenalty(b *testing.B) {
	entry, err := registry.Get("NekRS")
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []float64{0, 0.5, 0.85, 1.5} {
		b.Run(fmt.Sprintf("penalty=%.2f", p), func(b *testing.B) {
			cfg := machine.Default()
			cfg.StreamDemandPenalty = p
			b.ReportAllocs()
			var gain float64
			for i := 0; i < b.N; i++ {
				rep := core.NewProfiler(cfg).Level1(entry, 1)
				gain = rep.PerformanceGain
			}
			b.ReportMetric(gain*100, "%gain")
		})
	}
}

// BenchmarkAblationThrottle compares XSBench's excess prefetch traffic with
// the adaptive throttle against a build-equivalent without it (throttle
// window pushed beyond reach): the throttle is what keeps low-accuracy
// prefetching from flooding the memory system, the paper's XSBench
// observation.
func BenchmarkAblationThrottle(b *testing.B) {
	entry, err := registry.Get("XSBench")
	if err != nil {
		b.Fatal(err)
	}
	// The throttle is always on in the cache model; ablate by comparing
	// the default degree against degree 1 (what the throttle converges to
	// under low accuracy) and degree 8 with no convergence headroom.
	for _, degree := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			cfg := machine.Default()
			cfg.Cache.PrefetchDegree = degree
			b.ReportAllocs()
			var excess float64
			for i := 0; i < b.N; i++ {
				rep := core.NewProfiler(cfg).Level1(entry, 1)
				excess = rep.ExcessTraffic
			}
			b.ReportMetric(excess*100, "%excess")
		})
	}
}

// BenchmarkAblationPlacement compares the greedy hotness-density packer
// against the exact knapsack on BFS's profiled regions at 75% pooling,
// reporting the predicted remote access ratio of each plan.
func BenchmarkAblationPlacement(b *testing.B) {
	p := core.NewProfiler(machine.Default())
	entry, err := registry.Get("BFS")
	if err != nil {
		b.Fatal(err)
	}
	l2 := p.Level2(entry, 1, 0.25)
	objects := placement.FromRegions(l2.Regions)
	capacity := uint64(0.25 * float64(p.PeakUsage(entry, 1)))
	pageSize := machine.Default().Mem.PageSize

	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		var ratio float64
		for i := 0; i < b.N; i++ {
			ratio = placement.Greedy(objects, capacity).RemoteAccessRatio()
		}
		b.ReportMetric(ratio*100, "%remote")
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		var ratio float64
		for i := 0; i < b.N; i++ {
			ratio = placement.Exact(objects, capacity, pageSize).RemoteAccessRatio()
		}
		b.ReportMetric(ratio*100, "%remote")
	})
	b.Run("first-touch", func(b *testing.B) {
		// The measured first-touch baseline, for reference.
		b.ReportAllocs()
		var ratio float64
		for i := 0; i < b.N; i++ {
			var remote, total uint64
			for _, ph := range l2.Phase2Stats {
				remote += ph.RemoteBytes
				total += ph.TotalBytes()
			}
			ratio = float64(remote) / float64(total)
		}
		b.ReportMetric(ratio*100, "%remote")
	})
}

// BenchmarkAblationInterleave sweeps N:M page-interleave patterns and
// reports the predicted aggregate streaming bandwidth — the §2.1
// "adding tiers can increase aggregate bandwidth" point, maximized when the
// pattern matches the 73:34 tier ratio.
func BenchmarkAblationInterleave(b *testing.B) {
	cfg := machine.Default()
	local, remote := cfg.LocalBandwidth, cfg.Link.DataBandwidth
	patterns := []placement.InterleavePattern{
		{Local: 1, Remote: 0}, // local only
		{Local: 1, Remote: 1},
		{Local: 2, Remote: 1},
		placement.BandwidthInterleave(local, remote, 8),
		{Local: 1, Remote: 2},
	}
	for _, p := range patterns {
		b.Run(fmt.Sprintf("L%d:R%d", p.Local, p.Remote), func(b *testing.B) {
			b.ReportAllocs()
			var agg float64
			for i := 0; i < b.N; i++ {
				agg = p.AggregateBandwidth(local, remote)
			}
			b.ReportMetric(agg/1e9, "GB/s")
		})
	}
}
