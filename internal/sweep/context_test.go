package sweep

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/report"
)

// mustText renders a document as text for byte comparison.
func mustText(t *testing.T, d report.Doc) string {
	t.Helper()
	return report.RenderText(d)
}

// waitGoroutines polls until the goroutine count drops back to within
// slack of the baseline, failing the test if it never does — the
// no-leaked-goroutines check for cancelled fan-outs.
func waitGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d running, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextCancelMidCampaign cancels a campaign from its own progress
// callback — deterministically after the first finished cell — and asserts
// the acceptance contract: RunContext returns context.Canceled within one
// cell boundary (no campaign escapes), and no worker goroutine outlives
// the call.
func TestRunContextCancelMidCampaign(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &Runner{Grid: quickGrid(), Entries: quickEntries(), Runs: 5}
	done := 0
	r.Progress = func(d, total int) {
		done = d
		if d == 1 {
			cancel()
		}
	}
	c, err := r.RunContext(ctx, pool.NewLimiter(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after mid-campaign cancel = %v, want context.Canceled", err)
	}
	if c != nil {
		t.Fatal("cancelled campaign must not be returned")
	}
	// One task boundary: the cells in flight at cancel time may finish (at
	// most the limiter width plus the caller), but claiming stopped.
	if total := (4 + 1) * len(quickEntries()); done >= total {
		t.Errorf("all %d cells completed despite the cancel", total)
	}
	waitGoroutines(t, baseline, 2)
}

// TestRunContextPreCancelled pins the fast path: a context that is already
// done costs no cell work at all.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Grid: quickGrid(), Entries: quickEntries(), Runs: 5}
	r.Progress = func(d, total int) { t.Errorf("cell ran under a pre-cancelled context (%d/%d)", d, total) }
	if _, err := r.RunContext(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

// TestRunContextUncancelledMatchesRun is the byte-identical guarantee of
// the context path: a live context changes nothing about the campaign.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	r1 := &Runner{Grid: quickGrid(), Entries: quickEntries(), Runs: 3}
	want, err := r1.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2 := &Runner{Grid: quickGrid(), Entries: quickEntries(), Runs: 3}
	got, err := r2.RunContext(context.Background(), pool.NewLimiter(4))
	if err != nil {
		t.Fatal(err)
	}
	if gs, ws := mustText(t, got.Sweep()), mustText(t, want.Sweep()); gs != ws {
		t.Errorf("context path sweep render differs from plain Run (%d vs %d bytes)", len(gs), len(ws))
	}
	if gs, ws := mustText(t, got.Sensitivity()), mustText(t, want.Sensitivity()); gs != ws {
		t.Errorf("context path sensitivity render differs from plain Run (%d vs %d bytes)", len(gs), len(ws))
	}
}
