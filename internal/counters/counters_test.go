package counters

import (
	"testing"

	"repro/internal/machine"
)

func TestFromPhaseBasics(t *testing.T) {
	cfg := machine.Default()
	m := machine.New(cfg.WithLocalCapacity(64 * 1024))
	r := m.Alloc("a", 256*1024)
	m.StartPhase("p")
	m.Read(r.Base, 256*1024)
	p := m.EndPhase()

	ev := FromPhase(cfg, p)
	if ev[OffcoreL3Miss] == 0 {
		t.Errorf("no offcore misses recorded")
	}
	if ev[OffcoreRemoteDRAM] == 0 {
		t.Errorf("no remote DRAM lines despite spill")
	}
	if ev[L2LinesIn] != ev[OffcoreL3Miss] {
		t.Errorf("L2_LINES_IN (%d) should equal offcore L3 miss lines (%d)",
			ev[L2LinesIn], ev[OffcoreL3Miss])
	}
	if ev[UPITraffic] <= ev[OffcoreRemoteDRAM]*64 {
		t.Errorf("UPI raw traffic %d should exceed remote payload %d (protocol overhead)",
			ev[UPITraffic], ev[OffcoreRemoteDRAM]*64)
	}
	// Local + remote lines account for all filled lines.
	if ev[OffcoreLocalDRAM]+ev[OffcoreRemoteDRAM] != ev[L2LinesIn] {
		t.Errorf("local(%d)+remote(%d) != linesIn(%d)",
			ev[OffcoreLocalDRAM], ev[OffcoreRemoteDRAM], ev[L2LinesIn])
	}
}

func TestNamesStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) != 9 {
		t.Fatalf("got %d names, want 9", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("names not stable at %d", i)
		}
	}
}
