package stats

// SeedAt derives the deterministic base seed of one cell of a
// multi-dimensional sweep from the campaign's base seed and the cell's grid
// coordinates. The derivation is a SplitMix64-style mix over the coordinate
// sequence, so nearby coordinates (adjacent grid cells, consecutive
// workload indices) still yield well-separated seeds — unlike the additive
// base+i*k schemes, which collide as soon as two axes' strides interact.
//
// The result depends only on (base, coords...): never on worker count,
// completion order, or how the grid happened to be flattened into task
// indices. Feeding the derived seed to NewRNG (or to sched.Compare, which
// does so internally) therefore gives every sweep cell its own independent,
// reproducible substream — the same per-index contract RNG.Stream provides
// for flat fan-outs, extended to multi-axis grids.
func SeedAt(base uint64, coords ...uint64) uint64 {
	z := base
	for _, c := range coords {
		z += 0x9e3779b97f4a7c15 // golden-ratio increment, as in NewRNG's seeder
		z ^= c
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}
