package report

import (
	"fmt"
	"net/http"
	"strings"
)

// contentTypes maps formats to HTTP media types.
var contentTypes = map[Format]string{
	FormatText: "text/plain; charset=utf-8",
	FormatJSON: "application/json",
	FormatCSV:  "text/csv; charset=utf-8",
}

// ContentType returns the HTTP media type of a format — for handlers
// outside this package (the sweep campaign endpoint) that serve rendered
// documents with the same headers as the artifact handler.
func ContentType(f Format) string { return contentTypes[f] }

// Handler serves the store over HTTP — the pre-/v1 artifact surface: any
// artifact, any platform, any format, straight from the memoized store.
//
//	GET /                             index of artifact URLs
//	GET /artifacts/figure9.json       one artifact (extension picks format)
//	GET /artifacts/figure9.csv?platform=cxl-gen5
//
// artifacts is the id list the index advertises; platform defaults to
// defaultPlatform when the query omits it. Unknown artifacts or platforms
// surface the source's error as 404. Document computation is bounded by
// each request's context: a client that disconnects mid-computation stops
// the experiment engine at its next task boundary.
//
// Deprecated: this is the legacy plain-text-error surface, kept mounted as
// a compatibility alias. New clients should use the versioned /v1 API
// (internal/api), which adds content negotiation and a structured JSON
// error envelope.
func (st *Store) Handler(artifacts []string, defaultPlatform string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "artifact store (formats: txt, json, csv; ?platform=<scenario>, default %s)\n", defaultPlatform)
		for _, id := range artifacts {
			for _, f := range Formats {
				fmt.Fprintf(w, "/artifacts/%s.%s\n", id, f.Ext())
			}
		}
	})
	mux.HandleFunc("/artifacts/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/artifacts/")
		dot := strings.LastIndexByte(name, '.')
		if dot < 0 {
			http.Error(w, "want /artifacts/<id>.<txt|json|csv>", http.StatusBadRequest)
			return
		}
		id, ext := name[:dot], name[dot+1:]
		format, err := ParseFormat(ext)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		platform := r.URL.Query().Get("platform")
		if platform == "" {
			platform = defaultPlatform
		}
		out, err := st.Artifact(r.Context(), platform, id, format)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", contentTypes[format])
		fmt.Fprint(w, out)
	})
	return mux
}
