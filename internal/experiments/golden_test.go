package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// update rewrites the golden artifact files instead of comparing against
// them:
//
//	go test ./internal/experiments -run Golden -update
//
// Review the diff before committing — the goldens pin the byte-identical
// guarantee of every rendered artifact.
var update = flag.Bool("update", false, "rewrite testdata/golden artifact files")

// shortGoldenIDs are the artifacts backed by static datasets (no workload
// execution), cheap enough for the quick tier to pin on every PR.
var shortGoldenIDs = map[string]bool{"figure1": true, "table1": true}

// goldenPath returns the committed location of an artifact's golden render.
func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// checkGolden compares got against the committed golden file, or rewrites
// the file under -update.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s — regenerate with `go test ./internal/experiments -run Golden -update` (%v)", path, err)
	}
	if got == string(want) {
		return
	}
	t.Errorf("%s: render drifted from the committed artifact (%d vs %d bytes)\n%s",
		path, len(got), len(want), firstDiff(got, string(want)))
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("first diff at line %d:\n  got:  %q\n  want: %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("one render is a prefix of the other (%d vs %d lines)", len(g), len(w))
}

// TestGoldenArtifacts pins every artifact's rendered bytes — the paper's 12
// plus the cross-scenario comparison. The suite shares the package test
// suite (paper defaults, Runs=100), so the goldens are byte-identical to
// `memdis <id>` and `memdis all` output; any behavioral drift in the
// machine model, the drivers, the RNG derivation or the text rendering
// fails this test. The quick tier pins only the data-backed artifacts.
func TestGoldenArtifacts(t *testing.T) {
	s := testSuite()
	for _, id := range IDs {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && !shortGoldenIDs[id] {
				t.Skip("profiled artifact; pinned by the full (nightly) tier")
			}
			r, err := s.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, goldenPath(id), r.Render())
		})
	}
}

// TestGoldenFigure9OnCXLGen5 pins the acceptance artifact of the scenario
// subsystem: `memdis -platform cxl-gen5 figure9` — the paper's capacity
// sweep re-evaluated on a CXL-generation link, where the shifted R_BW
// reference changes the tuning verdicts.
func TestGoldenFigure9OnCXLGen5(t *testing.T) {
	skipShort(t)
	sp, err := scenario.Get("cxl-gen5")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuiteFor(sp)
	// Share the package suite's memoized cxl-gen5 profiler (same platform),
	// so this golden rides on the profiling the scenario sweep already did.
	s.Profiler = testSuite().profilerFor(sp)
	checkGolden(t, goldenPath("figure9@cxl-gen5"), s.Figure9().Render())
}
