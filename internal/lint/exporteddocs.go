package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RequiredSurface lists, per public-surface package path, the symbols the
// serving stack is built against: clients, the CLI and the CI smoke tests
// all assume these exist. A method is spelled "Type.Name". The analyzer
// reports any listed symbol missing from the package — the typed
// replacement for ci.yml's old grep-based symbol-drift gate.
var RequiredSurface = map[string][]string{
	"repro": {
		// Service construction and options (service.go).
		"Service", "New", "WithWorkers", "WithScenarios", "WithCache",
		// Core service surface.
		"Service.Artifact", "Service.Sweep", "Service.ProfileCacheStats",
		// Jobs surface (jobs.go).
		"WithJobStore", "WithJobDir", "NewDiskJobStore",
		"Service.SubmitSweep", "Service.ResumeJob", "Service.CancelJob", "Service.WaitJob",
		// Classification sentinels the HTTP envelope mapping depends on.
		"ErrUnknownJob", "ErrJobNotDone", "ErrJobRecordModified",
		// Warming surface (warm.go) and HTTP mount (http.go).
		"WithWarm", "Service.StartWarm", "Service.Ready", "Service.Handler",
	},
}

// ExportedDocsAnalyzer enforces the public facade's documentation
// contract: every exported top-level symbol — functions, methods on
// exported types, types, vars and consts — carries a godoc comment, and
// the load-bearing surface symbols in RequiredSurface exist. It replaces
// the awk/grep godoc and symbol-drift gates that previously lived in
// ci.yml (and, unlike them, sees methods).
func ExportedDocsAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "exporteddocs",
		Doc:  "every exported symbol on the public facade has a godoc comment; the required surface exists",
		Appl: KindSurface,
		Run:  runExportedDocs,
	}
}

func runExportedDocs(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
	checkRequiredSurface(pass)
}

// checkFuncDoc requires a doc comment on exported functions and on
// methods of exported types.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	label := d.Name.Name
	if d.Recv != nil {
		if len(d.Recv.List) != 1 {
			return
		}
		recv := recvTypeName(pass.TypeOf(d.Recv.List[0].Type))
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		label = recv + "." + label
	}
	if !hasDoc(d.Doc) {
		pass.Reportf(d.Name.Pos(), "exported %s has no doc comment", label)
	}
}

// hasDoc reports whether cg contains real documentation. //repro:allow
// directives are not documentation: a suppression must silence the
// diagnostic through the driver, not by impersonating a doc comment.
func hasDoc(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, "//repro:allow") {
			continue
		}
		if strings.TrimSpace(strings.TrimLeft(c.Text, "/* ")) != "" {
			return true
		}
	}
	return false
}

// checkGenDoc requires doc comments on exported type, var and const
// specs. A spec inside a grouped declaration may inherit the group's doc
// only for var/const blocks (the conventional sentinel-list shape); every
// exported type documents itself.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !hasDoc(s.Doc) && !(groupDoc && len(d.Specs) == 1) {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			specDoc := hasDoc(s.Doc)
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if !specDoc && !groupDoc {
					pass.Reportf(name.Pos(), "exported %s has no doc comment", name.Name)
				}
			}
		}
	}
}

// checkRequiredSurface verifies every symbol RequiredSurface lists for
// this package, reporting drift at the package clause of the first file.
func checkRequiredSurface(pass *Pass) {
	want := RequiredSurface[pass.Path]
	if len(want) == 0 || len(pass.Files) == 0 {
		return
	}
	pos := pass.Files[0].Name.Pos()
	scope := pass.Pkg.Scope()
	for _, sym := range want {
		typeName, method, isMethod := strings.Cut(sym, ".")
		if !isMethod {
			if scope.Lookup(sym) == nil {
				pass.Reportf(pos, "public surface drifted: %s is gone from package %s", sym, pass.Path)
			}
			continue
		}
		obj := scope.Lookup(typeName)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			pass.Reportf(pos, "public surface drifted: type %s is gone from package %s", typeName, pass.Path)
			continue
		}
		if !hasMethod(tn.Type(), method) {
			pass.Reportf(pos, "public surface drifted: method %s is gone from package %s", sym, pass.Path)
		}
	}
}

// hasMethod reports whether *T (or T) has a method named name.
func hasMethod(t types.Type, name string) bool {
	for _, tt := range []types.Type{types.NewPointer(t), t} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
