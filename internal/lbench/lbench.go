// Package lbench implements LBench, the paper's §3.2 benchmark for
// injecting and quantifying interference on the link to the memory pool.
//
// The kernel is the paper's: an array resident on the memory pool is
// streamed while performing NFLOP fused multiply-adds per element
// (beta = beta*A[i] + alpha), so the generated link traffic is tuned by the
// flops-per-element knob. The level of interference (LoI) is the generated
// raw link traffic as a percentage of the peak link traffic, which is
// reached at 1 flop/element with 12 threads.
//
// Two measurement modes mirror the paper:
//
//   - LoI generation/calibration (Figure 11, left): configured intensity vs
//     measured link traffic;
//   - the interference coefficient (IC): the relative runtime of a 1-thread,
//     1-flop/element probe against an idle system, which keeps growing past
//     link saturation where raw PCM counters pin at the peak (Figure 11,
//     middle).
package lbench

import (
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// RawBytesPerElement is the raw link traffic per processed element: an
// 8-byte read plus an 8-byte writeback, times protocol overhead.
const payloadPerElement = 16.0

// Config describes one LBench run.
type Config struct {
	// Threads is the number of generator threads (the paper uses 2 for
	// injection and 12 for peak).
	Threads int
	// FlopsPerElement is the NFLOP knob of the kernel.
	FlopsPerElement int
}

// Model captures the calibrated traffic model of the generator on a given
// platform.
type Model struct {
	// Link is the pool link the generator loads.
	Link link.Config
	// PeakThreads is the thread count that reaches peak link traffic at
	// 1 flop/element (12 on the testbed).
	PeakThreads int
	// PerThreadShare is the fraction of peak raw traffic one thread can
	// drive (finite outstanding misses); 0.25 on the testbed, so two
	// threads reach 50% intensity as in §6.
	PerThreadShare float64
	// FlopRate is the per-thread flop throughput of the kernel in flop/s.
	FlopRate float64
}

// NewModel calibrates the generator model against a machine configuration:
// the per-thread flop rate is set so that 12 threads saturate the link for
// every intensity below 8 flops/element, matching the paper's observation
// that PCM counters pin at the link peak below 8 flops/element.
func NewModel(cfg machine.Config) Model {
	raw := payloadPerElement * cfg.Link.Overhead
	return Model{
		Link:           cfg.Link,
		PeakThreads:    12,
		PerThreadShare: 0.25,
		FlopRate:       cfg.Link.PeakTraffic * 8 / (12 * raw),
	}
}

// OfferedRaw returns the raw link traffic demand (bytes/s) of the generator
// at a configuration — unclamped, so overload is visible.
func (md Model) OfferedRaw(c Config) float64 {
	if c.Threads <= 0 || c.FlopsPerElement <= 0 {
		return 0
	}
	raw := payloadPerElement * md.Link.Overhead
	flopLimited := raw * md.FlopRate / float64(c.FlopsPerElement)
	capLimited := md.PerThreadShare * md.Link.PeakTraffic
	per := flopLimited
	if capLimited < per {
		per = capLimited
	}
	return float64(c.Threads) * per
}

// MeasuredLoI is the link-traffic level a PCM-style counter reports for the
// configuration, as a fraction of peak: offered demand clipped at the peak.
func (md Model) MeasuredLoI(c Config) float64 {
	l := link.New(md.Link)
	return l.PCMTraffic(md.OfferedRaw(c)) / md.Link.PeakTraffic
}

// Configure returns the flops-per-element setting that generates the target
// LoI (fraction of peak raw traffic) with the given thread count. The
// second return is false when the thread count cannot reach the target.
func (md Model) Configure(targetLoI float64, threads int) (int, bool) {
	if targetLoI <= 0 {
		return 1 << 20, true // effectively idle
	}
	maxLoI := float64(threads) * md.PerThreadShare
	if targetLoI > maxLoI+1e-9 {
		return 1, false
	}
	raw := payloadPerElement * md.Link.Overhead
	perThreadTarget := targetLoI * md.Link.PeakTraffic / float64(threads)
	f := raw * md.FlopRate / perThreadTarget
	n := int(f + 0.5)
	if n < 1 {
		n = 1
	}
	return n, true
}

// probeRho is the utilization offered by the IC probe (1 thread,
// 1 flop/element).
func (md Model) probeRho() float64 {
	return md.OfferedRaw(Config{Threads: 1, FlopsPerElement: 1}) / md.Link.PeakTraffic
}

// IC returns the interference coefficient measured by the probe while
// background raw traffic bgRaw (bytes/s) loads the link: the probe's
// relative runtime versus the idle system. Because delay keeps growing in
// the overload regime, IC distinguishes saturated from contended links.
func (md Model) IC(bgRaw float64) float64 {
	l := link.New(md.Link)
	probe := md.probeRho()
	idle := l.DelayFactor(probe)
	loaded := l.DelayFactor(probe + bgRaw/md.Link.PeakTraffic)
	return loaded / idle
}

// ICOfWorkload computes the interference coefficient an application causes:
// its phases' remote traffic is replayed as background load on the link and
// the probe slowdown is measured per phase; the result is the
// time-weighted mean and the per-phase extremes (the spread of Figure 11,
// right).
func (md Model) ICOfWorkload(cfg machine.Config, phases []machine.PhaseStats) (mean, lo, hi float64) {
	totalT := 0.0
	lo, hi = 0, 0
	first := true
	for _, p := range phases {
		t := cfg.PhaseTime(p, 0)
		if t <= 0 {
			continue
		}
		bg := float64(p.RemoteBytes) * cfg.Link.Overhead / t
		ic := md.IC(bg)
		mean += ic * t
		totalT += t
		if first || ic < lo {
			lo = ic
		}
		if first || ic > hi {
			hi = ic
		}
		first = false
	}
	if totalT > 0 {
		mean /= totalT
	} else {
		mean = 1
	}
	if first {
		lo, hi = 1, 1
	}
	return mean, lo, hi
}

// Bench executes the kernel on an emulated machine: it allocates the array
// on the memory pool and streams it with NFLOP flops per element. This is
// the executable counterpart of the analytical Model, used to validate the
// generator (Figure 11, left).
type Bench struct {
	Cfg Config
	// Elements is the array length; Iterations the number of sweeps.
	Elements   int
	Iterations int
}

// NewBench returns a pool-sized generator run.
func NewBench(c Config) *Bench {
	return &Bench{Cfg: c, Elements: 1 << 17, Iterations: 4}
}

// Name implements workloads.Workload.
func (b *Bench) Name() string { return "LBench" }

// Run implements workloads.Workload: the kernel from the paper's §3.2
// listing, executed for real over a pool-resident array.
func (b *Bench) Run(m *machine.Machine) {
	m.StartPhase("lbench")
	arr := workloads.NewVecPlaced(m, "lbench-array", b.Elements, mem.PlaceRemote)
	alpha := 1.000000001
	nflop := b.Cfg.FlopsPerElement
	for it := 0; it < b.Iterations; it++ {
		arr.ReadRange(0, b.Elements)
		arr.WriteRange(0, b.Elements)
		for i := range arr.Data {
			beta := arr.Data[i]
			if nflop%2 == 1 {
				beta = arr.Data[i] + alpha
			}
			for k := 0; k < nflop/2; k++ {
				beta = beta*arr.Data[i] + alpha
			}
			arr.Data[i] = beta
		}
		m.AddFlops(float64(b.Elements * nflop))
		m.Tick()
	}
	m.EndPhase()
}
