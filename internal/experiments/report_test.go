package experiments

import (
	"encoding/csv"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/scenario"
)

// roundTrip asserts the full renderer contract on one result: the JSON
// rendering unmarshals back into an equal Doc, the CSV rendering parses
// with encoding/csv, and the text rendering reproduces the committed seed
// golden byte for byte.
func roundTrip(t *testing.T, r Result, goldenID string) {
	t.Helper()
	doc := r.Report()
	if doc.Artifact != r.ID() {
		t.Errorf("doc artifact %q != result id %q", doc.Artifact, r.ID())
	}

	js, err := report.RenderJSON(doc)
	if err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	back, err := report.ParseJSON(js)
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if !reflect.DeepEqual(doc, back) {
		t.Errorf("JSON round trip lost data (render, parse, compare Doc)")
	}

	cs, err := report.RenderCSV(doc)
	if err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	rd := csv.NewReader(strings.NewReader(cs))
	rd.Comment = '#'
	rd.FieldsPerRecord = -1
	if _, err := rd.ReadAll(); err != nil {
		t.Errorf("CSV rendering does not parse: %v", err)
	}

	want, err := os.ReadFile(goldenPath(goldenID))
	if err != nil {
		t.Fatalf("missing golden for %s: %v", goldenID, err)
	}
	if got := report.RenderText(doc); got != string(want) {
		t.Errorf("%s: RenderText drifted from the seed golden (%d vs %d bytes)\n%s",
			goldenID, len(got), len(want), firstDiff(got, string(want)))
	}
	if got := r.Render(); got != string(want) {
		t.Errorf("%s: Render() is no longer RenderText(Report())", goldenID)
	}
}

// TestRendererRoundTrips covers all 16 artifacts: the paper's 12, the
// cross-scenario comparison, the two sweep-campaign views, and figure9 on
// the cxl-gen5 scenario. The quick tier covers the two data-backed
// artifacts; the full tier runs the whole set off the shared suite's
// memoized profiles.
func TestRendererRoundTrips(t *testing.T) {
	s := testSuite()
	for _, id := range IDs {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && !shortGoldenIDs[id] {
				t.Skip("profiled artifact; round-tripped by the full (nightly) tier")
			}
			r, err := s.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, r, id)
		})
	}
	t.Run("figure9@cxl-gen5", func(t *testing.T) {
		skipShort(t)
		sp, err := scenario.Get("cxl-gen5")
		if err != nil {
			t.Fatal(err)
		}
		sc := NewSuiteFor(sp)
		sc.Profiler = testSuite().profilerFor(sp)
		roundTrip(t, sc.Figure9(), "figure9@cxl-gen5")
	})
}

// TestCanonicalID pins alias resolution: figure aliases map to their
// canonical artifact id, canonical ids map to themselves, and unknown ids
// error.
func TestCanonicalID(t *testing.T) {
	for _, id := range IDs {
		if got, err := CanonicalID(id); err != nil || got != id {
			t.Errorf("CanonicalID(%q) = %q, %v", id, got, err)
		}
	}
	for alias, want := range map[string]string{"fig1": "figure1", "fig9": "figure9", "fig13": "figure13"} {
		if got, err := CanonicalID(alias); err != nil || got != want {
			t.Errorf("CanonicalID(%q) = %q, %v; want %q", alias, got, err, want)
		}
	}
	for _, bad := range []string{"figure99", "fig", "tab1", "figtable1", "figscenarios", ""} {
		if _, err := CanonicalID(bad); err == nil {
			t.Errorf("CanonicalID(%q) should error", bad)
		}
	}
}

// TestHeadlineContract pins the Headline field's documented contract: the
// (0,1)-exclusive range is honored, anything outside it falls back to the
// paper's 0.50 split, and NewSuiteFor rejects invalid specs loudly instead
// of silently clamping.
func TestHeadlineContract(t *testing.T) {
	s := NewSuite(machine.Default())
	for _, bad := range []float64{-0.5, 0, 1, 1.5} {
		s.Headline = bad
		if got := s.headline(); got != 0.50 {
			t.Errorf("Headline=%v: headline() = %v, want the documented 0.50 fallback", bad, got)
		}
	}
	s.Headline = 0.25
	if got := s.headline(); got != 0.25 {
		t.Errorf("Headline=0.25: headline() = %v", got)
	}

	// Valid scenario specs construct fine and install their headline.
	sp := scenario.Default()
	sp.HeadlineFraction = 0.75
	if got := NewSuiteFor(sp).headline(); got != 0.75 {
		t.Errorf("NewSuiteFor installed headline %v, want 0.75", got)
	}

	// Out-of-range specs are a construction bug and panic with the
	// validation error rather than silently running at 50%.
	for _, bad := range []float64{0, 1, 2.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSuiteFor with HeadlineFraction=%v should panic", bad)
				}
			}()
			sp := scenario.Default()
			sp.HeadlineFraction = bad
			NewSuiteFor(sp)
		}()
	}
}
