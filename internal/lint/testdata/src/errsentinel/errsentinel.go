// Package fixture exercises the errsentinel analyzer: substring-matching
// and text-comparing err.Error() are caught; errors.Is/errors.As
// classification passes; //repro:allow silences a documented exception.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

// errBoom is the exported sentinel classification should go through.
var errBoom = errors.New("fixture: boom")

// classifyByText branches on message text — three catches.
func classifyByText(err error) int {
	if strings.Contains(err.Error(), "boom") { // want errsentinel "strings.Contains over err.Error"
		return 1
	}
	if strings.HasPrefix(fmt.Sprintf("[%s]", err.Error()), "[fixture") { // want errsentinel "strings.HasPrefix over err.Error"
		return 2
	}
	if err.Error() == "fixture: boom" { // want errsentinel "comparing err.Error"
		return 3
	}
	return 0
}

// classifyBySentinel is the contract-conformant path — clean.
func classifyBySentinel(err error) int {
	if errors.Is(err, errBoom) {
		return 1
	}
	var nf interface{ NotFound() bool }
	if errors.As(err, &nf) {
		return 2
	}
	return 0
}

// messageText may inspect non-error strings freely — clean.
func messageText(s string) bool {
	return strings.Contains(s, "boom")
}

// legacyClassify matches a third-party error that exports no sentinel;
// the allow documents the debt.
func legacyClassify(err error) bool {
	//repro:allow errsentinel — upstream fixture dependency exports no sentinel; tracked debt
	return strings.Contains(err.Error(), "temporarily unavailable")
}
