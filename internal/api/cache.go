package api

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/report"
)

// cacheControl is the policy stamped on every cacheable /v1 (and alias)
// success response. Artifacts are immutable per (platform, artifact, seed,
// code version): a deploy changes the ETag, so validators keep long-lived
// caches correct and max-age only bounds how stale an un-revalidated copy
// may get.
const cacheControl = "public, max-age=86400"

// etagStem is the strong-validator stem of a response body: the first 16
// hex digits of its SHA-256. The identity representation serves `"<stem>"`,
// the gzip representation `"<stem>-gzip"` — per-representation tags, as the
// ETag contract requires, that still revalidate against each other (a
// client that cached either encoding gets its 304).
func etagStem(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// etagFor quotes the variant tag for a stem.
func etagFor(stem string, gzipped bool) string {
	if gzipped {
		return `"` + stem + `-gzip"`
	}
	return `"` + stem + `"`
}

// inmMatches reports whether an If-None-Match header revalidates a body
// with the given stem: any listed tag equal to either encoding variant (or
// the wildcard) is a match. Weak-prefixed tags compare by their opaque
// value — the weak comparison If-None-Match mandates.
func inmMatches(header, stem string) bool {
	if header == "" {
		return false
	}
	for _, tag := range strings.Split(header, ",") {
		tag = strings.TrimSpace(tag)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == "*" || tag == etagFor(stem, false) || tag == etagFor(stem, true) {
			return true
		}
	}
	return false
}

// bufferedResponse captures a handler's response so the conditional layer
// can hash, revalidate and compress it before anything reaches the wire.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) {
	if b.status == 0 {
		b.status = status
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

// cacheable is the conditional-request middleware: it buffers the wrapped
// handler's response and, on a 200, stamps the strong ETag, Cache-Control
// and Vary, answers a matching If-None-Match with an empty-body 304, and
// gzips the body when the client negotiated it. Everything else — error
// envelopes, legacy plain-text errors, 405s — passes through uncacheable
// (Cache-Control: no-store, never a validator). Both the /v1 data routes
// and the deprecated aliases mount behind this one middleware, so the two
// surfaces cannot drift in caching semantics.
func cacheable(m *Metrics, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		br := &bufferedResponse{header: http.Header{}}
		h.ServeHTTP(br, r)
		if br.status == 0 {
			br.status = http.StatusOK
		}
		dst := w.Header()
		for k, vs := range br.header {
			dst[k] = vs
		}
		if br.status != http.StatusOK {
			if dst.Get("Cache-Control") == "" {
				dst.Set("Cache-Control", "no-store")
			}
			w.WriteHeader(br.status)
			_, _ = w.Write(br.body.Bytes())
			return
		}
		body := br.body.Bytes()
		stem := etagStem(body)
		gz := acceptsGzip(r)
		dst.Set("ETag", etagFor(stem, gz))
		dst.Set("Cache-Control", cacheControl)
		// The representation depends on both negotiation inputs: Accept
		// picks the format, Accept-Encoding the encoding.
		dst.Set("Vary", "Accept, Accept-Encoding")
		if inmMatches(r.Header.Get("If-None-Match"), stem) {
			m.NotModified.Add(1)
			dst.Del("Content-Type")
			dst.Del("Content-Length")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if gz {
			body = gzipBytes(body)
			dst.Set("Content-Encoding", "gzip")
			m.Gzipped.Add(1)
		}
		dst.Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(br.status)
		_, _ = w.Write(body)
	})
}

// flight is one in-progress render shared by every request that asked for
// the same (platform, artifact, format) while it was in the air.
type flight struct {
	refs     int
	cancel   context.CancelFunc
	done     chan struct{}
	out      string
	err      error
	panicked any
}

// flightKey identifies one coalesceable render. A typed comparable struct
// per the cachekeys contract: the fields are exactly the inputs the
// rendered bytes depend on, there is no separator to collide on, and
// adding a dependency means adding a field the compiler checks at every
// call site.
type flightKey struct {
	// platform is the canonical platform name (the default platform's
	// name when the request left it implicit, so both spellings coalesce).
	platform string
	// artifact is the canonical artifact id, or the sweep view name.
	artifact string
	// grid is the canonical sweep declaration (Grid.Key()) for sweep
	// flights, empty for plain artifact renders.
	grid string
	// format is the negotiated rendering format.
	format report.Format
}

// flightGroup coalesces concurrent cache-miss renders: the first request
// for a key starts the render, later arrivals wait on the same flight, and
// the underlying computation runs under a context that dies only when the
// last waiter has gone — one caller disconnecting never poisons the result
// for the rest. Results are not cached here (the store memoizes); a
// completed flight leaves the map immediately.
type flightGroup struct {
	metrics *Metrics
	mu      sync.Mutex
	flights map[flightKey]*flight
}

func newFlightGroup(m *Metrics) *flightGroup {
	return &flightGroup{metrics: m, flights: map[flightKey]*flight{}}
}

// Do returns fn's result for key, executing it at most once across all
// concurrent callers. A caller whose ctx dies returns ctx.Err()
// immediately; the flight itself is cancelled (and evicted, so later
// requests start fresh) only when no caller remains. A panic inside fn
// re-panics in every waiting caller, keeping the recovery middleware's
// one-envelope contract.
func (g *flightGroup) Do(ctx context.Context, key flightKey, fn func(context.Context) (string, error)) (string, error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok {
		f.refs++
		g.metrics.Coalesced.Add(1)
	} else {
		// The flight deliberately outlives any single waiter: its context
		// dies when the last waiter leaves, not when the first one does.
		//repro:allow ctxflow — coalesced flight lifecycle is detached by design; cancellation is refcounted below
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{refs: 1, cancel: cancel, done: make(chan struct{})}
		g.flights[key] = f
		g.metrics.Renders.Add(1)
		go func() {
			defer func() {
				if v := recover(); v != nil {
					f.panicked = v
				}
				g.mu.Lock()
				if g.flights[key] == f {
					delete(g.flights, key)
				}
				g.mu.Unlock()
				cancel()
				close(f.done)
			}()
			f.out, f.err = fn(fctx)
		}()
	}
	g.mu.Unlock()
	select {
	case <-f.done:
		if f.panicked != nil {
			panic(f.panicked)
		}
		return f.out, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		if f.refs == 0 {
			// Last caller gone: abandon the render and evict the flight so
			// a later request is not handed the cancellation error.
			f.cancel()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
		}
		g.mu.Unlock()
		return "", ctx.Err()
	}
}
