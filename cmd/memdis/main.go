// Command memdis regenerates the paper's tables and figures on the emulated
// platform. Usage:
//
//	memdis all            # every experiment in paper order
//	memdis figure9        # one experiment (figureN or tableN)
//	memdis list           # list experiment ids
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memdis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: memdis <all|list|%s|...>", experiments.IDs[0])
	}
	s := experiments.Default()
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return nil
	case "all":
		for _, r := range s.All() {
			fmt.Printf("==== %s ====\n%s\n", r.ID(), r.Render())
		}
		return nil
	default:
		for _, id := range args {
			r, err := s.Run(id)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		}
		return nil
	}
}
