package hypre

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestCGConverges(t *testing.T) {
	h := &Hypre{N: 12, MaxIters: 200, Tol: 1e-8}
	m := machine.New(machine.Default())
	h.Run(m)
	if h.RelResidual > 1e-8 {
		t.Errorf("relative residual = %g after %d iters, want <= 1e-8", h.RelResidual, h.Iters)
	}
}

func TestSolutionSolvesSystem(t *testing.T) {
	h := &Hypre{N: 8, MaxIters: 300, Tol: 1e-10}
	m := machine.New(machine.Default())
	h.Run(m)
	n := h.N
	idx := func(i, j, k int) int { return (k*n+j)*n + i }
	// Recompute A*x and compare against the RHS used in Run.
	maxErr := 0.0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				v := 6 * h.Solution[idx(i, j, k)]
				if i > 0 {
					v -= h.Solution[idx(i-1, j, k)]
				}
				if i < n-1 {
					v -= h.Solution[idx(i+1, j, k)]
				}
				if j > 0 {
					v -= h.Solution[idx(i, j-1, k)]
				}
				if j < n-1 {
					v -= h.Solution[idx(i, j+1, k)]
				}
				if k > 0 {
					v -= h.Solution[idx(i, j, k-1)]
				}
				if k < n-1 {
					v -= h.Solution[idx(i, j, k+1)]
				}
				fi := float64(i+1) / float64(n+1)
				fj := float64(j+1) / float64(n+1)
				fk := float64(k+1) / float64(n+1)
				b := math.Sin(math.Pi*fi) * math.Sin(math.Pi*fj) * math.Sin(math.Pi*fk)
				if e := math.Abs(v - b); e > maxErr {
					maxErr = e
				}
			}
		}
	}
	if maxErr > 1e-7 {
		t.Errorf("max |Ax-b| = %g, want < 1e-7", maxErr)
	}
}

func TestLowArithmeticIntensity(t *testing.T) {
	h := New(1)
	h.MaxIters = 5
	m := machine.New(machine.Default())
	h.Run(m)
	p2, ok := m.Phase("p2")
	if !ok {
		t.Fatal("missing p2")
	}
	ai := p2.ArithmeticIntensity()
	// Hypre sits deep in the memory-bound regime (paper Figure 5).
	if ai > 2 {
		t.Errorf("AI = %v, want < 2 flop/byte (memory-bound)", ai)
	}
	if ai <= 0 {
		t.Errorf("AI = %v, want > 0", ai)
	}
}

func TestScaleRatio(t *testing.T) {
	v := func(s int) float64 {
		h := New(s)
		return float64(h.N * h.N * h.N)
	}
	if r := v(4) / v(1); r < 3.5 || r > 4.5 {
		t.Errorf("x4/x1 volume ratio = %v, want ~4", r)
	}
	if r := v(2) / v(1); r < 1.7 || r > 2.3 {
		t.Errorf("x2/x1 volume ratio = %v, want ~2", r)
	}
}

func TestPhasesAndTicks(t *testing.T) {
	h := &Hypre{N: 12, MaxIters: 7, Tol: 0} // run exactly MaxIters
	m := machine.New(machine.Default())
	h.Run(m)
	ph := m.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %d, want 2", len(ph))
	}
	if len(ph[1].Ticks) != 7 {
		t.Errorf("ticks = %d, want 7 (one per CG iteration)", len(ph[1].Ticks))
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		h := &Hypre{N: 10, MaxIters: 30, Tol: 1e-9}
		m := machine.New(machine.Default())
		h.Run(m)
		return h.RelResidual
	}
	if run() != run() {
		t.Errorf("non-deterministic residual")
	}
}
