// Command memdis regenerates the paper's tables and figures on the emulated
// platform. Usage:
//
//	memdis all                        # every experiment in paper order
//	memdis -j 8 all                   # same, fanned out over 8 workers
//	memdis -j 0 all                   # use every core
//	memdis figure9                    # one experiment (figureN or tableN)
//	memdis -platform cxl-gen5 figure9 # same analysis on an alternate platform
//	memdis -format json figure9       # machine-readable artifact on stdout
//	memdis -out artifacts all         # write figureN.txt|.json|.csv files
//	memdis sweep                      # default parameter-sweep campaign
//	memdis sweep -axis gen=0,5,6 -axis frac=0.25:0.75:0.25
//	memdis sweep -cpuprofile cpu.out -memprofile mem.out  # profile the campaign
//	memdis jobs submit -dir state -axis lat=0:400:50   # campaign as a durable job
//	memdis jobs status -dir state     # list jobs in the store
//	memdis jobs resume -dir state ID  # pick a killed job up from its checkpoint
//	memdis jobs events -dir state -follow ID           # tail the event log
//	memdis jobs artifact -dir state ID sweep           # a done job's artifact
//	memdis serve                      # serve the versioned HTTP API
//	memdis -warm default serve        # same, pre-warming the artifact caches
//	memdis -pprof serve               # same, with net/http/pprof on /debug/pprof/
//	memdis -runs 5 -workloads HPL all # reduced Monte-Carlo scale
//	memdis list                       # list experiment ids
//	memdis platforms                  # list platform scenarios
//
// The CLI is a thin shell over repro.Service: every flag maps to a
// functional option (-j to repro.WithWorkers, -platform to
// repro.WithDefaultPlatform, -runs and -workloads to repro.WithRuns and
// repro.WithWorkloads, -warm to repro.WithWarm), and every subcommand
// calls a context-first Service method.
//
// The -warm flag (serve only) drives the startup cache warm: the listed
// scenarios ("default" = the -platform scenario) are computed and
// rendered in the background while the server already answers requests,
// and /healthz flips its "ready" field once the warm completes — the
// readiness signal a load balancer keys on. The serving layer itself adds
// strong ETags with If-None-Match 304s, Cache-Control, gzip negotiation
// and request coalescing on every artifact route; `sbench` (cmd/sbench)
// is the companion load harness that measures it.
//
// The -j flag bounds the worker pool for both the experiment-level and the
// intra-driver fan-out. Output is byte-identical for any -j value: every
// randomized simulation owns a deterministic RNG substream keyed by its run
// index, never by worker or completion order.
//
// The -platform flag re-runs the selected experiments on a registered
// scenario (see `memdis platforms`): the drivers use the scenario's link,
// timing constants and capacity sweep in place of the testbed's.
//
// The -format flag picks the stdout renderer (text, json or csv); -out DIR
// additionally writes each selected artifact in every format into DIR. Both
// draw from the service's render-once artifact store, as does
// `memdis serve`, which mounts the versioned HTTP API on -addr:
// GET /v1/artifacts/<id>, /v1/platforms, /v1/workloads, /v1/sweep and
// /healthz, all sharing one JSON error envelope and Accept/?format=
// content negotiation — plus the pre-/v1 paths
// (/artifacts/<id>.<ext>, /sweep) as deprecated aliases. See docs/API.md.
//
// The sweep subcommand runs a parameter-sweep campaign over generated
// scenarios: each -axis flag declares one swept dimension (gen, lat, bw,
// frac — see internal/sweep), their cross-product derives one scenario per
// cell from the -platform base system, and the campaign emits the "sweep"
// and "sensitivity" artifacts through the same store, -format and -out
// plumbing as the fixed experiments. With no -axis flags the canonical
// generation x capacity-fraction grid runs — exactly the grid behind
// `memdis sweep` and `memdis sensitivity` as plain artifact ids.
//
// The jobs subcommand runs the same campaigns asynchronously with a
// durable checkpoint: `memdis jobs submit -dir DIR` streams every finished
// cell into DIR as it completes, so a run killed mid-campaign — Ctrl-C,
// crash, SIGKILL — is picked up by `memdis jobs resume`, which replays the
// checkpointed cells and recomputes only the remainder. Resumed artifacts
// are byte-identical to an uninterrupted run at any -j. Grids of any
// validating size are accepted here (and on POST /v1/jobs); only the
// synchronous sweep surfaces cap the cell count. See docs/CLI.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memdis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdis", flag.ContinueOnError)
	workers := fs.Int("j", 1, "parallel workers (0 = all cores)")
	platform := fs.String("platform", "baseline", "platform scenario (see `memdis platforms`)")
	format := fs.String("format", "text", "stdout renderer: text, json or csv")
	outDir := fs.String("out", "", "also write each artifact as <id>.txt|.json|.csv into this directory")
	addr := fs.String("addr", "localhost:8080", "listen address for `memdis serve`")
	runs := fs.Int("runs", 0, "Monte-Carlo scheduler runs per comparison (0 = the paper's 100)")
	workloadList := fs.String("workloads", "", "comma-separated workload subset (default: all six)")
	warm := fs.String("warm", "", "`memdis serve` startup cache warm: comma-separated scenarios, or \"default\" for the -platform scenario")
	pprofFlag := fs.Bool("pprof", false, "`memdis serve`: mount net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: memdis [-j N] [-platform S] [-format F] [-out DIR] <all|serve|sweep|list|platforms|%s|...>", repro.ExperimentIDs()[0])
	}
	f, err := repro.ParseArtifactFormat(*format)
	if err != nil {
		return err
	}
	// Resolve the platform before service construction so an unknown name
	// surfaces as the bare names-listing error, not a wrapped one.
	if _, err := repro.PlatformNamed(*platform); err != nil {
		return err
	}
	opts := []repro.Option{
		repro.WithWorkers(*workers),
		repro.WithDefaultPlatform(*platform),
	}
	if *runs > 0 {
		opts = append(opts, repro.WithRuns(*runs))
	}
	if *workloadList != "" {
		entries, err := parseWorkloads(*workloadList)
		if err != nil {
			return err
		}
		opts = append(opts, repro.WithWorkloads(entries...))
	}
	if *warm != "" {
		if args[0] != "serve" {
			return fmt.Errorf("-warm only applies to `memdis serve`")
		}
		var warmPlatforms []string
		if *warm != "default" {
			warmPlatforms = strings.Split(*warm, ",")
			for i := range warmPlatforms {
				warmPlatforms[i] = strings.TrimSpace(warmPlatforms[i])
			}
		}
		opts = append(opts, repro.WithWarm(warmPlatforms...))
	}
	ctx := context.Background()
	// The sweep subcommand builds its own service carrying the -runs and
	// -workloads options; every other subcommand shares this one. The jobs
	// subcommand dispatches its own verbs over a durable disk store.
	if args[0] == "sweep" {
		return runSweep(ctx, args[1:], opts, *platform, f, *outDir)
	}
	if args[0] == "jobs" {
		return runJobs(ctx, args[1:], opts, *platform, f)
	}
	svc, err := repro.New(opts...)
	if err != nil {
		return err
	}
	switch args[0] {
	case "list":
		for _, id := range svc.IDs() {
			fmt.Println(id)
		}
		return nil
	case "platforms":
		for _, sc := range svc.Scenarios() {
			fmt.Printf("%-12s  %s\n", sc.Name, sc.Description)
		}
		return nil
	case "serve":
		if len(args) > 1 {
			return fmt.Errorf("unexpected arguments after \"serve\": %v (flags go before the subcommand: memdis -addr HOST:PORT serve)", args[1:])
		}
		if *warm != "" {
			done := svc.StartWarm(ctx)
			fmt.Fprintf(os.Stderr, "memdis: warming caches for %s in the background (/healthz reports readiness)\n", *warm)
			go func() {
				<-done
				if err := svc.WarmErr(); err != nil {
					fmt.Fprintf(os.Stderr, "memdis: cache warm failed: %v\n", err)
					return
				}
				fmt.Fprintln(os.Stderr, "memdis: cache warm complete, server ready")
			}()
		}
		handler := svc.Handler()
		if *pprofFlag {
			// The profiling endpoints ride on a wrapper mux so the service
			// handler keeps owning "/" (and its legacy alias subtree).
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", httppprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
			mux.Handle("/", handler)
			handler = mux
			fmt.Fprintf(os.Stderr, "memdis: pprof mounted at http://%s/debug/pprof/\n", *addr)
		}
		fmt.Fprintf(os.Stderr, "memdis: serving the /v1 API on http://%s/ (default platform %s)\n", *addr, *platform)
		return http.ListenAndServe(*addr, handler)
	case "all":
		if len(args) > 1 {
			// Catch `memdis all -j 4`: flag parsing stops at the first
			// non-flag argument, so a trailing -j would be silently
			// ignored instead of changing the worker count.
			return fmt.Errorf("unexpected arguments after \"all\": %v (flags go before the subcommand: memdis -j N all)", args[1:])
		}
		// Compute the whole artifact set with the experiment-level fan-out;
		// RunAll seeds the store, so emit only renders.
		if _, err := svc.RunAll(ctx, *platform); err != nil {
			return err
		}
		return emit(ctx, svc, *platform, svc.IDs(), f, *outDir, true)
	default:
		// Canonicalize aliases ("fig9" -> "figure9") so store keys, served
		// URLs and -out filenames always match the document's artifact id.
		ids := make([]string, len(args))
		for i, id := range args {
			canon, err := repro.CanonicalArtifactID(id)
			if err != nil {
				return err
			}
			ids[i] = canon
		}
		return emit(ctx, svc, *platform, ids, f, *outDir, false)
	}
}

// runSweep implements the sweep subcommand: parse the axis declarations,
// build a service carrying the run-count and workload-subset options, run
// the campaign on the selected platform's suite, seed the store with the
// two resulting documents and emit them like any other artifact pair.
func runSweep(ctx context.Context, args []string, opts []repro.Option, platform string, f repro.ArtifactFormat, outDir string) error {
	fs := flag.NewFlagSet("memdis sweep", flag.ContinueOnError)
	var axes []repro.SweepAxis
	fs.Func("axis", "swept axis, name=v1,v2,... or name=lo:hi:step (repeatable; axes: gen, lat, bw, frac)", func(s string) error {
		a, err := repro.ParseSweepAxis(s)
		if err != nil {
			return err
		}
		axes = append(axes, a)
		return nil
	})
	runs := fs.Int("runs", 0, "Monte-Carlo scheduler runs per cell (0 = the paper's 100)")
	workloadList := fs.String("workloads", "", "comma-separated workload subset (default: all six)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memprofile := fs.String("memprofile", "", "write a post-campaign heap profile to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected arguments after \"sweep\" flags: %v", rest)
	}
	if *runs > 0 {
		opts = append(opts, repro.WithRuns(*runs))
	}
	if *workloadList != "" {
		entries, err := parseWorkloads(*workloadList)
		if err != nil {
			return err
		}
		opts = append(opts, repro.WithWorkloads(entries...))
	}
	svc, err := repro.New(opts...)
	if err != nil {
		return err
	}
	g, err := svc.Grid(platform, axes...)
	if err != nil {
		return err
	}
	// Profile exactly the campaign execution: the CPU profile stops (and
	// the heap snapshot is taken) before rendering and emission.
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	camp, err := svc.Sweep(ctx, g)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		return err
	}
	if *memprofile != "" {
		mf, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC() // settle the heap so the profile shows live campaign state
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
	}
	svc.Store().Put(platform, camp.Sweep())
	svc.Store().Put(platform, camp.Sensitivity())
	return emit(ctx, svc, platform, []string{"sweep", "sensitivity"}, f, outDir, false)
}

// runJobs implements the jobs subcommand — asynchronous checkpoint/resume
// campaigns over a durable disk store:
//
//	memdis jobs submit -dir DIR [-axis ...]   # run a campaign as a job
//	memdis jobs status -dir DIR [ID]          # list jobs, or one record
//	memdis jobs resume -dir DIR ID            # pick a killed job back up
//	memdis jobs events -dir DIR [-follow] ID  # print the event log
//	memdis jobs artifact -dir DIR ID NAME     # a done job's sweep|sensitivity
//
// submit and resume wait for the job, streaming event lines to stderr as
// cells finish, and print the two campaign artifacts on completion; an
// interrupt (Ctrl-C) cancels at the next cell boundary, keeping the
// checkpoint so a later resume recomputes only the remainder. The resumed
// run must use the same -runs/-workloads as the original submit — the
// declaration is pinned in the record and revalidated.
func runJobs(ctx context.Context, args []string, opts []repro.Option, platform string, f repro.ArtifactFormat) error {
	usage := "usage: memdis jobs <submit|status|resume|events|artifact> -dir DIR [flags] [ID] [NAME]"
	if len(args) == 0 {
		return errors.New(usage)
	}
	verb, args := args[0], args[1:]
	fs := flag.NewFlagSet("memdis jobs "+verb, flag.ContinueOnError)
	dir := fs.String("dir", "", "durable job store directory (required)")
	follow := fs.Bool("follow", false, "events: keep streaming new lines until the job finishes")
	var axes []repro.SweepAxis
	fs.Func("axis", "submit: swept axis, name=v1,v2,... or name=lo:hi:step (repeatable)", func(s string) error {
		a, err := repro.ParseSweepAxis(s)
		if err != nil {
			return err
		}
		axes = append(axes, a)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *dir == "" {
		return fmt.Errorf("memdis jobs %s: -dir is required (the job store directory checkpoints live in)", verb)
	}
	svc, err := repro.New(append(opts, repro.WithJobDir(*dir))...)
	if err != nil {
		return err
	}
	defer svc.Close()
	rest := fs.Args()
	one := func() (string, error) {
		if len(rest) != 1 {
			return "", fmt.Errorf("memdis jobs %s: want exactly one job id (%s)", verb, usage)
		}
		return rest[0], nil
	}
	switch verb {
	case "submit":
		if len(rest) > 0 {
			return fmt.Errorf("unexpected arguments after \"jobs submit\" flags: %v", rest)
		}
		g, err := svc.Grid(platform, axes...)
		if err != nil {
			return err
		}
		rec, err := svc.SubmitSweep(g)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "memdis: job %s: %d tasks over %d grid cells\n", rec.ID, rec.Total, g.Size()+1)
		return watchJob(ctx, svc, rec.ID, f)
	case "resume":
		id, err := one()
		if err != nil {
			return err
		}
		rec, err := svc.ResumeJob(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "memdis: job %s: resumed at %d/%d tasks\n", rec.ID, rec.Done, rec.Total)
		return watchJob(ctx, svc, rec.ID, f)
	case "status":
		if len(rest) == 0 {
			recs, err := svc.Jobs()
			if err != nil {
				return err
			}
			for _, rec := range recs {
				fmt.Printf("%-16s  %-11s  %5d/%-5d  %s\n",
					rec.ID, rec.State, rec.Done, rec.Total, rec.Created.Format("2006-01-02T15:04:05Z"))
			}
			return nil
		}
		id, err := one()
		if err != nil {
			return err
		}
		rec, err := svc.Job(id)
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	case "events":
		id, err := one()
		if err != nil {
			return err
		}
		offset := 0
		for {
			data, err := svc.JobEvents(id)
			if err != nil {
				return err
			}
			if len(data) > offset {
				os.Stdout.Write(data[offset:])
				offset = len(data)
			}
			if !*follow {
				return nil
			}
			rec, err := svc.Job(id)
			if err != nil {
				return err
			}
			// Interrupted still follows: a sibling process may be appending
			// to the same store. Ctrl-C stops the tail.
			if rec.State == repro.JobDone || rec.State == repro.JobFailed || rec.State == repro.JobCancelled {
				return nil
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(200 * time.Millisecond):
			}
		}
	case "artifact":
		if len(rest) != 2 {
			return fmt.Errorf("usage: memdis jobs artifact -dir DIR ID <sweep|sensitivity>")
		}
		out, err := svc.JobArtifact(rest[0], rest[1], f)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	default:
		return fmt.Errorf("unknown jobs verb %q (%s)", verb, usage)
	}
}

// watchJob blocks on a submitted or resumed job, tailing its event log to
// stderr; on completion it prints the campaign's two artifacts to stdout.
// An interrupt cancels the job at its next cell boundary — the checkpoint
// stays, so `memdis jobs resume` recomputes only the remainder.
func watchJob(ctx context.Context, svc *repro.Service, id string, f repro.ArtifactFormat) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	offset := 0
	tail := func() {
		if data, err := svc.JobEvents(id); err == nil && len(data) > offset {
			os.Stderr.Write(data[offset:])
			offset = len(data)
		}
	}
	for {
		tail()
		rec, err := svc.Job(id)
		if err != nil {
			return err
		}
		switch rec.State {
		case repro.JobRunning:
		case repro.JobDone:
			tail()
			for _, name := range []string{"sweep", "sensitivity"} {
				out, err := svc.JobArtifact(id, name, f)
				if err != nil {
					return err
				}
				if f == repro.FormatText {
					fmt.Println(out)
				} else {
					fmt.Print(out)
				}
			}
			return nil
		default:
			tail()
			return fmt.Errorf("job %s %s at %d/%d tasks (resume with `memdis jobs resume`)%s",
				id, rec.State, rec.Done, rec.Total, errSuffix(rec.Error))
		}
		select {
		case <-ctx.Done():
			stop() // restore default signal handling: a second Ctrl-C kills
			fmt.Fprintf(os.Stderr, "memdis: interrupt — cancelling job %s at the next cell boundary (checkpoint kept)\n", id)
			rec, err := svc.CancelJob(id)
			if err != nil {
				return err
			}
			tail()
			return fmt.Errorf("job %s cancelled at %d/%d tasks (resume with `memdis jobs resume -dir DIR %s`)",
				id, rec.Done, rec.Total, id)
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// parseWorkloads resolves a comma-separated workload-name list against the
// registry — shared by the global -workloads flag and the sweep
// subcommand's local one.
func parseWorkloads(list string) ([]repro.WorkloadEntry, error) {
	var entries []repro.WorkloadEntry
	for _, name := range strings.Split(list, ",") {
		e, err := repro.Workload(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// emit prints each artifact in the chosen format (with the historical
// banner for `all` text output) and, when outDir is set, writes the whole
// artifact set in every format there.
func emit(ctx context.Context, svc *repro.Service, platform string, ids []string, f repro.ArtifactFormat, outDir string, banner bool) error {
	for _, id := range ids {
		out, err := svc.Rendered(ctx, repro.ArtifactRequest{Platform: platform, Artifact: id}, f)
		if err != nil {
			return err
		}
		switch {
		case f == repro.FormatText && banner:
			fmt.Printf("==== %s ====\n%s\n", id, out)
		case f == repro.FormatText:
			// The historical `memdis <id>` layout: Println adds the blank
			// line that separated consecutive artifacts.
			fmt.Println(out)
		default:
			fmt.Print(out)
		}
	}
	if outDir == "" {
		return nil
	}
	paths, err := svc.WriteDir(ctx, outDir, platform, ids)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memdis: wrote %d artifact files to %s\n", len(paths), outDir)
	return nil
}
