package scenario

import (
	"testing"

	"repro/internal/machine"
)

func TestAllSpecsValidate(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("want at least 5 scenarios, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, sp := range all {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
		if seen[sp.Name] {
			t.Errorf("duplicate scenario name %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Description == "" {
			t.Errorf("%s: empty description", sp.Name)
		}
	}
}

func TestBaselineIsTheTestbed(t *testing.T) {
	if Default().Name != "baseline" {
		t.Fatalf("default scenario = %q, want baseline", Default().Name)
	}
	if Default().Platform != machine.Default() {
		t.Error("baseline platform must be the testbed configuration")
	}
	if got := Default().CapacityFractions; len(got) != 3 || got[0] != 0.75 || got[1] != 0.50 || got[2] != 0.25 {
		t.Errorf("baseline sweep = %v, want the paper's 75/50/25", got)
	}
}

func TestGetAndNames(t *testing.T) {
	for _, name := range Names() {
		sp, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if sp.Name != name {
			t.Errorf("Get(%s) returned %s", name, sp.Name)
		}
	}
	if _, err := Get("upi-gen9"); err == nil {
		t.Error("unknown scenario should error")
	}
}

// TestGetUnknownErrorListsValidNames pins the lookup error message: a user
// typo must come back with the full list of valid scenario names, not an
// opaque "unknown scenario". The exact text is part of the CLI surface
// (memdis and profile print it verbatim for a bad -platform).
func TestGetUnknownErrorListsValidNames(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{
			in:   "upi-gen9",
			want: `scenario: unknown scenario "upi-gen9" (known: baseline, cxl-gen5, cxl-gen6, big-pool, skewed-split)`,
		},
		{
			in:   "",
			want: `scenario: unknown scenario "" (known: baseline, cxl-gen5, cxl-gen6, big-pool, skewed-split)`,
		},
		{
			// Case matters: names are registered lowercase.
			in:   "Baseline",
			want: `scenario: unknown scenario "Baseline" (known: baseline, cxl-gen5, cxl-gen6, big-pool, skewed-split)`,
		},
	}
	for _, tc := range tests {
		_, err := Get(tc.in)
		if err == nil {
			t.Errorf("Get(%q): want error", tc.in)
			continue
		}
		if got := err.Error(); got != tc.want {
			t.Errorf("Get(%q) error:\n  got:  %s\n  want: %s", tc.in, got, tc.want)
		}
	}
}

// TestDerivationHelpers covers the spec derivation surface the sweep
// generator builds on.
func TestDerivationHelpers(t *testing.T) {
	base := Default()
	r := base.Renamed("cell-1")
	if r.Name != "cell-1" || r.Platform != base.Platform {
		t.Errorf("Renamed should change only the spec name (got %q, platform %q)", r.Name, r.Platform.Name)
	}
	if base.Name != "baseline" {
		t.Error("Renamed must not mutate the receiver")
	}
	c := base.WithCapacitySplit(0.3)
	if len(c.CapacityFractions) != 1 || c.CapacityFractions[0] != 0.3 || c.HeadlineFraction != 0.3 {
		t.Errorf("WithCapacitySplit(0.3) = sweep %v headline %v", c.CapacityFractions, c.HeadlineFraction)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("derived spec should validate: %v", err)
	}
	if len(base.CapacityFractions) != 3 {
		t.Error("WithCapacitySplit must not mutate the receiver")
	}
}

func TestCXLGenerationsOrdering(t *testing.T) {
	g5, _ := Get("cxl-gen5")
	g6, _ := Get("cxl-gen6")
	base := Default()
	// Gen6 doubles gen5's payload bandwidth and trims latency and overhead.
	if g6.Platform.Link.DataBandwidth != 2*g5.Platform.Link.DataBandwidth {
		t.Errorf("gen6 data bandwidth %v should double gen5's %v",
			g6.Platform.Link.DataBandwidth, g5.Platform.Link.DataBandwidth)
	}
	if !(g6.Platform.Link.Latency < g5.Platform.Link.Latency) {
		t.Error("gen6 latency should improve on gen5")
	}
	if !(g6.Platform.Link.Overhead < g5.Platform.Link.Overhead) {
		t.Error("gen6 flit overhead should improve on gen5")
	}
	// Both CXL links are slower than the UPI testbed link; only the link
	// differs from the testbed (same node, cache, memory geometry).
	for _, sp := range []Spec{g5, g6} {
		if !(sp.Platform.Link.Latency > base.Platform.Link.Latency) {
			t.Errorf("%s: CXL latency should exceed UPI's", sp.Name)
		}
		if sp.Platform.WithLink(base.Platform.Link).WithName(base.Platform.Name) != base.Platform {
			t.Errorf("%s: only the link and name should differ from the testbed", sp.Name)
		}
	}
}

func TestCapacityScenariosKeepTestbedLink(t *testing.T) {
	for _, name := range []string{"big-pool", "skewed-split"} {
		sp, _ := Get(name)
		if sp.Platform.Link != Default().Platform.Link {
			t.Errorf("%s: capacity scenarios should keep the testbed link", name)
		}
		found := false
		for _, f := range sp.CapacityFractions {
			if f == sp.HeadlineFraction {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: headline fraction %v should be part of the sweep %v",
				name, sp.HeadlineFraction, sp.CapacityFractions)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := Default()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero link bandwidth", func(s *Spec) { s.Platform.Link.DataBandwidth = 0 }},
		{"zero link latency", func(s *Spec) { s.Platform.Link.Latency = 0 }},
		{"zero local bandwidth", func(s *Spec) { s.Platform.LocalBandwidth = 0 }},
		{"no fractions", func(s *Spec) { s.CapacityFractions = nil }},
		{"fraction out of range", func(s *Spec) { s.CapacityFractions = []float64{1.5} }},
		{"headline out of range", func(s *Spec) { s.HeadlineFraction = 0 }},
	}
	for _, tc := range cases {
		sp := good
		sp.CapacityFractions = append([]float64(nil), good.CapacityFractions...)
		tc.mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		}
	}
}
