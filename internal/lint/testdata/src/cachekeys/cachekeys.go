// Package fixture exercises the cachekeys analyzer: Sprintf- and
// concat-built strings flowing into cache-like sinks or map indexes are
// caught; typed comparable struct keys and canonicalizer calls pass;
// //repro:allow silences a documented non-key join.
package fixture

import "fmt"

// profileCache is a cache-like sink by name.
type profileCache struct{ m map[string]int }

// get keys by a string parameter — the API itself invites stringly keys.
func (c *profileCache) get(key string) int { // want cachekeys "profileCache.get keys by string parameter"
	return c.m[key]
}

// lookupSprintf assembles the key ad hoc at the call site.
func lookupSprintf(c *profileCache, name string, gen int) int {
	return c.get(fmt.Sprintf("%s-%d", name, gen)) // want cachekeys "built string key passed to profileCache.get"
}

// lookupConcat concatenates the key ad hoc at the call site.
func lookupConcat(c *profileCache, name, variant string) int {
	return c.get(name + ":" + variant) // want cachekeys "built string key passed to profileCache.get"
}

var memo = map[string]int{}

// memoizeSprintf indexes a memo map by a freshly built string.
func memoizeSprintf(name string, gen int) {
	memo[fmt.Sprintf("%s-%d", name, gen)]++ // want cachekeys "map indexed by a built string"
}

// profileKey is the contract-conformant shape: a typed comparable struct
// carrying exactly the dependencies.
type profileKey struct {
	name string
	gen  int
}

var typedMemo = map[profileKey]int{}

// memoizeTyped is clean: a struct key has no separators to collide on.
func memoizeTyped(name string, gen int) {
	typedMemo[profileKey{name, gen}]++
}

// canonical is a canonicalizer; calls returning strings are not ad-hoc
// assembly and pass.
func canonical(name string) string { return name }

// lookupCanonical is clean: the key flows through a named canonicalizer.
func lookupCanonical(c *profileCache, name string) int {
	return c.get(canonical(name))
}

// constantKey is clean: "a" + "b" folds to a constant.
func constantKey(c *profileCache) int {
	return c.get("peak" + "-l1")
}

// renderLabel joins display text, not a key; the allow documents it.
func renderLabel(name, unit string) {
	//repro:allow cachekeys — display-label join for rendering, not a memoization key
	memo[name+" ("+unit+")"] = 0
}
