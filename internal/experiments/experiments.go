// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns a structured result whose Render
// method prints the same rows/series the paper reports; the cmd/memdis CLI
// and the root benchmark harness both call these drivers, so the printed
// artifacts and the benchmarked work are identical.
//
// A Suite shares one profiler (and therefore its peak-footprint cache)
// across drivers so that composite invocations such as `memdis all` probe
// each workload input only once.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads/registry"
)

// Suite binds the experiment drivers to one platform configuration.
type Suite struct {
	// Cfg is the emulated platform.
	Cfg machine.Config
	// Profiler is shared across drivers (peak-usage cache).
	Profiler *core.Profiler
	// Entries is the workload table (registry.All by default).
	Entries []registry.Entry
	// Runs is the number of scheduler runs per configuration in Figure 13
	// (100 in the paper; tests may lower it).
	Runs int
}

// NewSuite returns a suite on the given platform with the paper's defaults.
func NewSuite(cfg machine.Config) *Suite {
	return &Suite{
		Cfg:      cfg,
		Profiler: core.NewProfiler(cfg),
		Entries:  registry.All(),
		Runs:     100,
	}
}

// Default returns a suite on the default testbed-calibrated platform.
func Default() *Suite { return NewSuite(machine.Default()) }

// Result is the common interface of every experiment result.
type Result interface {
	// ID is the paper artifact name, e.g. "figure9".
	ID() string
	// Render prints the artifact as text.
	Render() string
}

// LoILevels is the paper's interference sweep for Figure 10.
var LoILevels = []float64{0, 0.10, 0.20, 0.30, 0.40, 0.50}

// CapacityFractions is the paper's local-capacity sweep: local tier sized to
// 75%, 50% and 25% of the workload's peak usage (so the remote/pooled side
// is 25%, 50% and 75%).
var CapacityFractions = []float64{0.75, 0.50, 0.25}

// IDs lists every experiment in paper order.
var IDs = []string{
	"figure1", "table1", "table2", "figure5", "figure6", "figure7",
	"figure8", "figure9", "figure10", "figure11", "figure12", "figure13",
}

// Run executes the experiment with the given ID.
func (s *Suite) Run(id string) (Result, error) {
	switch id {
	case "figure1", "fig1":
		return s.Figure1(), nil
	case "table1":
		return s.Table1(), nil
	case "table2":
		return s.Table2(), nil
	case "figure5", "fig5":
		return s.Figure5(), nil
	case "figure6", "fig6":
		return s.Figure6(), nil
	case "figure7", "fig7":
		return s.Figure7(), nil
	case "figure8", "fig8":
		return s.Figure8(), nil
	case "figure9", "fig9":
		return s.Figure9(), nil
	case "figure10", "fig10":
		return s.Figure10(), nil
	case "figure11", "fig11":
		return s.Figure11(), nil
	case "figure12", "fig12":
		return s.Figure12(), nil
	case "figure13", "fig13":
		return s.Figure13(), nil
	}
	return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs, ", "))
}

// All runs every experiment in paper order.
func (s *Suite) All() []Result {
	out := make([]Result, 0, len(IDs))
	for _, id := range IDs {
		r, err := s.Run(id)
		if err != nil {
			panic(err) // unreachable: IDs only contains known ids
		}
		out = append(out, r)
	}
	return out
}
