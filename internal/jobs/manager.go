package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// Config wires a Manager to its execution engine and its persistence
// backend.
type Config struct {
	// Store persists every job's state; required.
	Store Store
	// NewRunner builds the sweep runner for a grid, carrying the owning
	// service's workload table, Monte-Carlo run count, base seed and warm
	// profiler caches. The manager installs its own Skip/OnCell hooks on
	// the returned runner; required.
	NewRunner func(g sweep.Grid) *sweep.Runner
	// Limiter is the concurrency budget job execution draws from (nil
	// means sequential) — typically the service's shared pool, so jobs
	// and synchronous requests never multiply workers.
	Limiter *pool.Limiter
}

// Manager owns asynchronous campaign jobs: Submit starts (or re-attaches
// to) a job, execution streams finished cells into the store's
// checkpoint, and Resume picks a killed job up from that checkpoint,
// recomputing only the remainder. One Manager per store prefix: a
// running job's keys are owned by exactly one manager at a time.
type Manager struct {
	cfg  Config
	mu   sync.Mutex
	live map[string]*liveJob
}

// liveJob is one executing job's in-memory handle.
type liveJob struct {
	mu        sync.Mutex
	rec       Record
	cancel    context.CancelFunc
	cancelled bool  // Cancel was requested (distinguishes cancel from kill)
	storeErr  error // first checkpoint-persistence failure, fails the job
	done      chan struct{}
}

// NewManager builds a Manager over the given configuration.
func NewManager(c Config) (*Manager, error) {
	if c.Store == nil {
		return nil, fmt.Errorf("jobs: NewManager: nil Store")
	}
	if c.NewRunner == nil {
		return nil, fmt.Errorf("jobs: NewManager: nil NewRunner")
	}
	return &Manager{cfg: c, live: map[string]*liveJob{}}, nil
}

// normalize applies the runner's documented defaults, so the record pins
// the values execution actually uses (and the job id hashes them).
func normalize(r *sweep.Runner) (names []string, runs int, seed uint64) {
	entries := r.Entries
	if entries == nil {
		entries = registry.All()
	}
	for _, e := range entries {
		names = append(names, e.Name)
	}
	runs = r.Runs
	if runs <= 0 {
		runs = 100
	}
	seed = r.Seed
	if seed == 0 {
		seed = sweep.DefaultSeed
	}
	return names, runs, seed
}

// Submit starts the campaign for g as an asynchronous job and returns its
// record immediately. Job ids are deterministic in the campaign
// declaration, so submitting an identical grid while its job is running
// (or after it finished) re-attaches instead of duplicating work — and
// submitting after a crash resumes from the checkpoint. The job executes
// detached from any request context; stop it with Cancel.
func (m *Manager) Submit(g sweep.Grid) (Record, error) {
	if err := g.Validate(); err != nil {
		return Record{}, err
	}
	r := m.cfg.NewRunner(g)
	names, runs, seed := normalize(r)
	id, err := jobID(g, names, runs, seed)
	if err != nil {
		return Record{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if lj, ok := m.live[id]; ok {
		return lj.snapshot(), nil
	}
	if rec, err := m.loadRecord(id); err == nil {
		if rec.State == StateDone {
			return rec, nil
		}
		// A prior run exists but is not live here: resume its checkpoint.
		return m.startLocked(r, rec, true)
	} else if !errors.Is(err, ErrNotExist) {
		return Record{}, err
	}
	now := time.Now().UTC()
	rec := Record{
		ID:        id,
		Grid:      g,
		Key:       g.Key(),
		Workloads: names,
		Runs:      runs,
		Seed:      seed,
		State:     StateRunning,
		Total:     (g.Size() + 1) * len(names),
		Created:   now,
		Updated:   now,
	}
	m.event(Event{Event: "submitted", Job: id, Time: now, Total: rec.Total})
	return m.startLocked(r, rec, false)
}

// Resume restarts an interrupted, failed or cancelled job from its
// persisted checkpoint: the grid declaration is revalidated (including
// that it still hashes to the job's id — a tampered record never runs),
// checkpointed cells are skipped by coordinate, and only the remainder
// recomputes. Resuming a running job returns its record; resuming a done
// job returns it unchanged.
func (m *Manager) Resume(id string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lj, ok := m.live[id]; ok {
		return lj.snapshot(), nil
	}
	rec, err := m.loadRecord(id)
	if errors.Is(err, ErrNotExist) {
		return Record{}, &notFoundError{id: id}
	}
	if err != nil {
		return Record{}, err
	}
	if rec.State == StateDone {
		return rec, nil
	}
	if err := rec.Grid.Validate(); err != nil {
		return Record{}, fmt.Errorf("jobs: resume %s: stored grid no longer validates: %w", id, err)
	}
	wantID, err := jobID(rec.Grid, rec.Workloads, rec.Runs, rec.Seed)
	if err != nil {
		return Record{}, err
	}
	if wantID != id {
		return Record{}, fmt.Errorf("jobs: resume %s: record hashes to %s: %w", id, wantID, ErrRecordModified)
	}
	r := m.cfg.NewRunner(rec.Grid)
	names, runs, seed := normalize(r)
	if !equalStrings(names, rec.Workloads) || runs != rec.Runs || seed != rec.Seed {
		return Record{}, fmt.Errorf(
			"jobs: resume %s: job was declared with workloads %v, %d runs, seed %d but the service is configured for %v, %d runs, seed %d",
			id, rec.Workloads, rec.Runs, rec.Seed, names, runs, seed)
	}
	return m.startLocked(r, rec, true)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// startLocked launches (or re-launches) a job's execution goroutine.
// Caller holds m.mu.
func (m *Manager) startLocked(r *sweep.Runner, rec Record, resumed bool) (Record, error) {
	// Load the checkpoint before declaring the job live, so a corrupt
	// checkpoint surfaces on the submit/resume call, not inside the
	// goroutine.
	var cells map[int]sweep.Cell
	if data, err := m.cfg.Store.Get(keyCells(rec.ID)); err == nil {
		if cells, err = decodeCheckpoint(data, rec.Total); err != nil {
			return Record{}, err
		}
	} else if !errors.Is(err, ErrNotExist) {
		return Record{}, err
	}
	rec.State = StateRunning
	rec.Error = ""
	rec.Done = len(cells)
	rec.Bitmap = bitmapOf(cells)
	rec.Updated = time.Now().UTC()
	if err := m.putRecord(rec); err != nil {
		return Record{}, err
	}
	if resumed {
		m.event(Event{Event: "resumed", Job: rec.ID, Time: rec.Updated,
			Done: rec.Done, Total: rec.Total, Skipped: len(cells)})
	}

	// A job deliberately outlives the submitting request: its lifecycle
	// is Cancel/Close, not the caller's context.
	//repro:allow ctxflow — background job detaches from the request by design; stop via Cancel/Close
	ctx, cancel := context.WithCancel(context.Background())
	lj := &liveJob{rec: rec, cancel: cancel, done: make(chan struct{})}
	m.live[rec.ID] = lj
	go m.run(ctx, lj, r, cells)
	return lj.snapshot(), nil
}

// run executes one job to a terminal state. The runner's Skip hook
// replays checkpointed cells; OnCell appends each computed cell to the
// checkpoint *before* updating the record, so a crash between the two
// loses bookkeeping, never results.
func (m *Manager) run(ctx context.Context, lj *liveJob, r *sweep.Runner, cells map[int]sweep.Cell) {
	id := lj.rec.ID
	nw := len(lj.rec.Workloads)
	total := lj.rec.Total
	seed := lj.rec.Seed
	r.Skip = func(i int) (sweep.Cell, bool) {
		c, ok := cells[i]
		return c, ok
	}
	r.OnCell = func(i int, c sweep.Cell) {
		line, err := json.Marshal(cellLine{I: i, Cell: c})
		if err == nil {
			err = m.cfg.Store.Append(keyCells(id), append(line, '\n'))
		}
		lj.mu.Lock()
		if err != nil {
			if lj.storeErr == nil {
				lj.storeErr = fmt.Errorf("jobs: checkpoint append: %w", err)
				lj.cancel() // stop admitting cells; the job fails below
			}
			lj.mu.Unlock()
			return
		}
		lj.rec.Done++
		lj.rec.Bitmap = bitmapSet(lj.rec.Bitmap, i)
		lj.rec.Updated = time.Now().UTC()
		rec := lj.rec
		lj.mu.Unlock()
		_ = m.putRecord(rec)
		ev := Event{Event: "cell", Job: id, Time: rec.Updated,
			I: i, Done: rec.Done, Total: total, Cell: c.Cell, Workload: c.Workload,
			Seed: stats.SeedAt(seed, uint64(i/nw), uint64(i%nw))}
		if r.Cache != nil {
			// Cumulative shared-cache counters: how cheap the campaign is
			// running, visible line by line in the event log.
			cs := r.Cache.Stats()
			ev.CacheHits, ev.CacheMisses, ev.CacheJoins = cs.Hits, cs.Misses, cs.Joins
		}
		m.event(ev)
	}

	camp, err := r.RunContext(ctx, m.cfg.Limiter)

	lj.mu.Lock()
	cancelled := lj.cancelled
	if lj.storeErr != nil {
		err = lj.storeErr
	}
	lj.mu.Unlock()

	var final State
	var diag string
	switch {
	case err == nil:
		if err := m.putArtifacts(lj.rec.ID, lj.rec.Grid, camp); err != nil {
			final, diag = StateFailed, err.Error()
		} else {
			final = StateDone
		}
	case cancelled && errors.Is(err, context.Canceled):
		final = StateCancelled
	default:
		final, diag = StateFailed, err.Error()
	}

	lj.mu.Lock()
	lj.rec.State = final
	lj.rec.Error = diag
	lj.rec.Updated = time.Now().UTC()
	rec := lj.rec
	lj.mu.Unlock()
	_ = m.putRecord(rec)
	ev := Event{Event: string(final), Job: id, Time: rec.Updated,
		Done: rec.Done, Total: rec.Total, Error: diag}
	m.event(ev)

	m.mu.Lock()
	delete(m.live, id)
	m.mu.Unlock()
	lj.cancel() // release the context's resources on every path
	close(lj.done)
}

// putArtifacts renders the finished campaign's two artifacts in every
// format into the store, so status surfaces serve them without
// recomputation and a done job's results survive the process.
func (m *Manager) putArtifacts(id string, g sweep.Grid, camp *sweep.Campaign) error {
	for name, doc := range map[string]report.Doc{
		"sweep": camp.Sweep(), "sensitivity": camp.Sensitivity(),
	} {
		doc.Platform = g.Base.Name
		for _, f := range report.Formats {
			out, err := report.Render(doc, f)
			if err != nil {
				return fmt.Errorf("jobs: render %s.%s: %w", name, f.Ext(), err)
			}
			if err := m.cfg.Store.Put(keyArtifacts(id)+name+"."+f.Ext(), []byte(out)); err != nil {
				return fmt.Errorf("jobs: persist %s.%s: %w", name, f.Ext(), err)
			}
		}
	}
	return nil
}

// Get returns a job's record: the live in-memory state for a running
// job, the persisted record otherwise. A persisted record that claims to
// be running with no live execution here — the killed-process case — is
// reported as interrupted, which is exactly the state Resume accepts.
func (m *Manager) Get(id string) (Record, error) {
	m.mu.Lock()
	lj, ok := m.live[id]
	m.mu.Unlock()
	if ok {
		return lj.snapshot(), nil
	}
	rec, err := m.loadRecord(id)
	if errors.Is(err, ErrNotExist) {
		return Record{}, &notFoundError{id: id}
	}
	if err != nil {
		return Record{}, err
	}
	if rec.State == StateRunning {
		rec.State = StateInterrupted
	}
	return rec, nil
}

// List returns every job's record (see Get for the state derivation),
// oldest submission first.
func (m *Manager) List() ([]Record, error) {
	keys, err := m.cfg.Store.List("jobs/")
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, k := range keys {
		if !strings.HasSuffix(k, "/job.json") {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(k, "jobs/"), "/job.json")
		rec, err := m.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Cancel stops a running job at its next cell boundary (already-finished
// cells stay checkpointed; Resume restarts from them) and returns the
// job's record. Cancelling a job that is not running marks the persisted
// record cancelled; cancelling a done job is a no-op.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	lj, ok := m.live[id]
	m.mu.Unlock()
	if ok {
		lj.mu.Lock()
		lj.cancelled = true
		lj.mu.Unlock()
		lj.cancel()
		// Wait for the run loop to persist the terminal state, so the
		// returned record (and an immediately following Get) reflects the
		// cancellation instead of racing it.
		<-lj.done
		return m.Get(id)
	}
	rec, err := m.Get(id)
	if err != nil {
		return Record{}, err
	}
	if rec.State == StateDone || rec.State == StateCancelled {
		return rec, nil
	}
	rec.State = StateCancelled
	rec.Updated = time.Now().UTC()
	if err := m.putRecord(rec); err != nil {
		return Record{}, err
	}
	m.event(Event{Event: string(StateCancelled), Job: id, Time: rec.Updated,
		Done: rec.Done, Total: rec.Total})
	return rec, nil
}

// Wait blocks until the job reaches a terminal-on-this-manager state —
// done, failed or cancelled, or until ctx dies — and returns the record.
// Waiting on a job this manager is not executing returns its record
// immediately.
func (m *Manager) Wait(ctx context.Context, id string) (Record, error) {
	m.mu.Lock()
	lj, ok := m.live[id]
	m.mu.Unlock()
	if !ok {
		return m.Get(id)
	}
	select {
	case <-lj.done:
		return m.Get(id)
	case <-ctx.Done():
		return Record{}, ctx.Err()
	}
}

// Events returns the job's raw JSON-lines event log (one Event per
// line). The log is append-only, so a follower can re-read and print
// only the suffix beyond its last offset.
func (m *Manager) Events(id string) ([]byte, error) {
	if _, err := m.Get(id); err != nil {
		return nil, err
	}
	data, err := m.cfg.Store.Get(keyEvents(id))
	if errors.Is(err, ErrNotExist) {
		return nil, nil
	}
	return data, err
}

// Artifact returns a done job's rendered artifact ("sweep" or
// "sensitivity") in the given format, straight from the store. A job
// that has not completed yet errors with ErrNotDone.
func (m *Manager) Artifact(id, artifact string, f report.Format) (string, error) {
	rec, err := m.Get(id)
	if err != nil {
		return "", err
	}
	if artifact != "sweep" && artifact != "sensitivity" {
		return "", fmt.Errorf("jobs: unknown artifact %q (want sweep or sensitivity)", artifact)
	}
	if rec.State != StateDone {
		return "", fmt.Errorf("jobs: job %s is %s: %w", id, rec.State, ErrNotDone)
	}
	out, err := m.cfg.Store.Get(keyArtifacts(id) + artifact + "." + f.Ext())
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Close cancels every live job and waits for their goroutines to exit.
// Checkpoints persist, so closed-over jobs resume in the next process.
func (m *Manager) Close() {
	m.mu.Lock()
	live := make([]*liveJob, 0, len(m.live))
	for _, lj := range m.live {
		live = append(live, lj)
	}
	m.mu.Unlock()
	for _, lj := range live {
		lj.cancel()
	}
	for _, lj := range live {
		<-lj.done
	}
}

// snapshot returns a copy of the live record safe to hand out (the
// bitmap is cloned; everything else is value- or read-only data).
func (lj *liveJob) snapshot() Record {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	rec := lj.rec
	rec.Bitmap = append([]byte(nil), rec.Bitmap...)
	return rec
}

// loadRecord reads and decodes a job record; missing records surface the
// store's ErrNotExist.
func (m *Manager) loadRecord(id string) (Record, error) {
	data, err := m.cfg.Store.Get(keyJob(id))
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("jobs: job %s record: %w", id, err)
	}
	return rec, nil
}

// putRecord persists a record (atomically, per the Store contract).
func (m *Manager) putRecord(rec Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return m.cfg.Store.Put(keyJob(rec.ID), append(data, '\n'))
}

// event appends one event line to the job's log. Event emission is
// best-effort bookkeeping: a failed append never fails the job (the
// checkpoint, not the log, is the source of truth).
func (m *Manager) event(ev Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	_ = m.cfg.Store.Append(keyEvents(ev.Job), append(line, '\n'))
}
