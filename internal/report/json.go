package report

import (
	"encoding/json"
	"fmt"
)

// RenderJSON renders the document as indented JSON with a trailing newline.
// The encoding is lossless: ParseJSON (or a plain json.Unmarshal into a
// Doc) recovers an equal document, including non-finite float payloads,
// which encode as the strings "NaN"/"+Inf"/"-Inf".
func RenderJSON(d Doc) (string, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: render %s as json: %w", d.Artifact, err)
	}
	return string(b) + "\n", nil
}

// ParseJSON is the inverse of RenderJSON.
func ParseJSON(s string) (Doc, error) {
	var d Doc
	if err := json.Unmarshal([]byte(s), &d); err != nil {
		return Doc{}, fmt.Errorf("report: parse doc json: %w", err)
	}
	return d, nil
}
