// Package top500 carries the historical memory-configuration dataset behind
// the paper's Figure 1 (evolution of memory characteristics of leadership
// supercomputers, 2008–2023) and Table 1 (memory configuration and estimated
// memory cost of the November-2022 Top-10), together with the DDR/HBM cost
// model the paper applies (HBM unit price 3–5x DDR).
package top500

import "sort"

// System describes one machine's per-node memory configuration.
type System struct {
	Name string
	// Year the system (or the referenced configuration) debuted.
	Year int
	// Rank in the November 2022 Top500 list (0 when the system is only
	// part of the historical timeline).
	Rank int
	// DDRPerNodeGB and HBMPerNodeGB are capacities per compute node.
	DDRPerNodeGB float64
	HBMPerNodeGB float64
	// HBMBandwidthTBs is HBM bandwidth per node in TB/s.
	HBMBandwidthTBs float64
	// Nodes is the number of compute nodes.
	Nodes int
}

// TotalPerNodeGB is the combined DDR+HBM capacity per node.
func (s System) TotalPerNodeGB() float64 { return s.DDRPerNodeGB + s.HBMPerNodeGB }

// Top10Nov2022 reproduces the paper's Table 1 inventory (ranks follow the
// November 2022 list the paper cites).
func Top10Nov2022() []System {
	return []System{
		{Name: "Frontier", Year: 2021, Rank: 1, DDRPerNodeGB: 512, HBMPerNodeGB: 512, HBMBandwidthTBs: 12.8, Nodes: 9408},
		{Name: "Fugaku", Year: 2020, Rank: 2, DDRPerNodeGB: 0, HBMPerNodeGB: 32, HBMBandwidthTBs: 1.0, Nodes: 158976},
		{Name: "LUMI-G", Year: 2022, Rank: 3, DDRPerNodeGB: 512, HBMPerNodeGB: 512, HBMBandwidthTBs: 12.8, Nodes: 2560},
		{Name: "Leonardo", Year: 2022, Rank: 4, DDRPerNodeGB: 512, HBMPerNodeGB: 256, HBMBandwidthTBs: 8.2, Nodes: 3456},
		{Name: "Summit", Year: 2018, Rank: 5, DDRPerNodeGB: 512, HBMPerNodeGB: 96, HBMBandwidthTBs: 5.4, Nodes: 4608},
		{Name: "Sierra", Year: 2018, Rank: 6, DDRPerNodeGB: 256, HBMPerNodeGB: 64, HBMBandwidthTBs: 3.6, Nodes: 4284},
		{Name: "Sunway TaihuLight", Year: 2016, Rank: 7, DDRPerNodeGB: 32, HBMPerNodeGB: 0, Nodes: 40960},
		{Name: "Perlmutter (GPU)", Year: 2021, Rank: 8, DDRPerNodeGB: 256, HBMPerNodeGB: 160, HBMBandwidthTBs: 6.2, Nodes: 1536},
		{Name: "Selene", Year: 2020, Rank: 9, DDRPerNodeGB: 1024, HBMPerNodeGB: 640, HBMBandwidthTBs: 16, Nodes: 280},
		{Name: "Tianhe-2A", Year: 2018, Rank: 10, DDRPerNodeGB: 192, HBMPerNodeGB: 0, Nodes: 16000},
	}
}

// Timeline returns the 15-year evolution series of Figure 1: leadership
// (No. 1) systems with per-node memory capacity and bandwidth. Entries are
// sorted by year.
func Timeline() []System {
	syss := []System{
		{Name: "Roadrunner", Year: 2008, DDRPerNodeGB: 32, Nodes: 3060},
		{Name: "Jaguar", Year: 2009, DDRPerNodeGB: 16, Nodes: 18688},
		{Name: "Tianhe-1A", Year: 2010, DDRPerNodeGB: 32, Nodes: 7168},
		{Name: "K computer", Year: 2011, DDRPerNodeGB: 16, Nodes: 88128},
		{Name: "Titan", Year: 2012, DDRPerNodeGB: 38, Nodes: 18688},
		{Name: "Tianhe-2", Year: 2013, DDRPerNodeGB: 64, Nodes: 16000},
		{Name: "Sunway TaihuLight", Year: 2016, DDRPerNodeGB: 32, Nodes: 40960},
		{Name: "Summit", Year: 2018, DDRPerNodeGB: 512, HBMPerNodeGB: 96, HBMBandwidthTBs: 5.4, Nodes: 4608},
		{Name: "Fugaku", Year: 2020, HBMPerNodeGB: 32, HBMBandwidthTBs: 1.0, Nodes: 158976},
		{Name: "Frontier", Year: 2021, DDRPerNodeGB: 512, HBMPerNodeGB: 512, HBMBandwidthTBs: 12.8, Nodes: 9408},
		{Name: "LUMI-G", Year: 2022, DDRPerNodeGB: 512, HBMPerNodeGB: 512, HBMBandwidthTBs: 12.8, Nodes: 2560},
	}
	sort.Slice(syss, func(i, j int) bool { return syss[i].Year < syss[j].Year })
	return syss
}

// CostModel estimates memory cost per system following the paper's
// assumption that HBM carries 3–5x the unit price of DDR.
type CostModel struct {
	// DDRDollarPerGB is the assumed DDR price in $/GB.
	DDRDollarPerGB float64
	// HBMMultiplier is the HBM unit-price multiple of DDR.
	HBMMultiplier float64
}

// DefaultCostModel matches the paper's table: it reproduces the estimated
// costs within rounding (e.g. Frontier: $34M DDR, $135M HBM) with DDR at
// ~$7/GB and HBM at 4x.
func DefaultCostModel() CostModel {
	return CostModel{DDRDollarPerGB: 7, HBMMultiplier: 4}
}

// DDRCost estimates the system-wide DDR cost in dollars.
func (m CostModel) DDRCost(s System) float64 {
	return s.DDRPerNodeGB * float64(s.Nodes) * m.DDRDollarPerGB
}

// HBMCost estimates the system-wide HBM cost in dollars.
func (m CostModel) HBMCost(s System) float64 {
	return s.HBMPerNodeGB * float64(s.Nodes) * m.DDRDollarPerGB * m.HBMMultiplier
}

// TotalCost is DDR plus HBM cost in dollars.
func (m CostModel) TotalCost(s System) float64 { return m.DDRCost(s) + m.HBMCost(s) }
