package lbench

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mem"
)

func model() Model { return NewModel(machine.Default()) }

func TestPeakDefinition(t *testing.T) {
	// 1 flop/element with 12 threads defines (at least) peak link traffic.
	md := model()
	loi := md.MeasuredLoI(Config{Threads: 12, FlopsPerElement: 1})
	if loi < 0.999 {
		t.Errorf("12-thread 1-flop LoI = %v, want saturated 1.0", loi)
	}
}

func TestTwoThreadsReachFiftyPercent(t *testing.T) {
	// §6: two threads provide up to 50% intensity.
	md := model()
	loi := md.MeasuredLoI(Config{Threads: 2, FlopsPerElement: 1})
	if math.Abs(loi-0.5) > 0.02 {
		t.Errorf("2-thread max LoI = %v, want ~0.5", loi)
	}
}

func TestSaturationBelowEightFlops(t *testing.T) {
	// Paper: at 12 threads, PCM-measured traffic saturates at the link
	// peak for intensities below 8 flops/element.
	md := model()
	for f := 1; f <= 8; f++ {
		if loi := md.MeasuredLoI(Config{Threads: 12, FlopsPerElement: f}); loi < 0.99 {
			t.Errorf("f=%d: measured LoI = %v, want saturated", f, loi)
		}
	}
	if loi := md.MeasuredLoI(Config{Threads: 12, FlopsPerElement: 32}); loi > 0.5 {
		t.Errorf("f=32: measured LoI = %v, want well below saturation", loi)
	}
}

func TestConfigureRoundTrip(t *testing.T) {
	md := model()
	for _, target := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		f, ok := md.Configure(target, 2)
		if !ok {
			t.Fatalf("cannot configure LoI=%v with 2 threads", target)
		}
		got := md.MeasuredLoI(Config{Threads: 2, FlopsPerElement: f})
		if math.Abs(got-target) > 0.07 {
			t.Errorf("target %v -> f=%d -> measured %v", target, f, got)
		}
	}
	// Out of range for the thread count.
	if _, ok := md.Configure(0.9, 2); ok {
		t.Errorf("2 threads should not reach LoI=0.9")
	}
}

func TestMeasuredLoIMonotoneInThreads(t *testing.T) {
	md := model()
	prev := 0.0
	for th := 1; th <= 12; th++ {
		loi := md.MeasuredLoI(Config{Threads: th, FlopsPerElement: 4})
		if loi < prev-1e-9 {
			t.Errorf("LoI decreased at %d threads", th)
		}
		prev = loi
	}
}

func TestICGrowsPastSaturation(t *testing.T) {
	// The core LBench claim: IC keeps increasing while the PCM reading is
	// flat at the peak.
	md := model()
	icAtPeak := md.IC(md.Link.PeakTraffic)
	icOverload := md.IC(3 * md.Link.PeakTraffic)
	if icOverload <= icAtPeak {
		t.Errorf("IC should grow past saturation: %v vs %v", icOverload, icAtPeak)
	}
	if idle := md.IC(0); math.Abs(idle-1) > 1e-9 {
		t.Errorf("idle IC = %v, want 1", idle)
	}
}

func TestICRangeMatchesPaperScale(t *testing.T) {
	// Figure 11 middle: IC spans roughly 1.0 .. ~2.6 for background
	// intensities 128 down to 1 flop/element at 12 threads.
	md := model()
	icMax := md.IC(md.OfferedRaw(Config{Threads: 12, FlopsPerElement: 1}))
	icMin := md.IC(md.OfferedRaw(Config{Threads: 12, FlopsPerElement: 128}))
	if icMax < 1.8 || icMax > 4 {
		t.Errorf("IC at f=1 = %v, want in the paper's ~2-3 band", icMax)
	}
	if icMin > 1.2 {
		t.Errorf("IC at f=128 = %v, want near 1", icMin)
	}
	// Monotone decreasing in f.
	prev := math.Inf(1)
	for _, f := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		ic := md.IC(md.OfferedRaw(Config{Threads: 12, FlopsPerElement: f}))
		if ic > prev+1e-9 {
			t.Errorf("IC not monotone at f=%d", f)
		}
		prev = ic
	}
}

func TestBenchRunGeneratesRemoteTraffic(t *testing.T) {
	b := NewBench(Config{Threads: 2, FlopsPerElement: 3})
	b.Elements = 1 << 14
	b.Iterations = 2
	m := machine.New(machine.Default())
	b.Run(m)
	p, ok := m.Phase("lbench")
	if !ok {
		t.Fatal("no lbench phase")
	}
	if p.RemoteBytes == 0 {
		t.Errorf("LBench array should live on the pool (remote traffic)")
	}
	if p.LocalBytes > p.RemoteBytes/10 {
		t.Errorf("local bytes %d unexpectedly high vs remote %d", p.LocalBytes, p.RemoteBytes)
	}
	if tier, _ := m.Space.TierOf(0x1000); tier == mem.TierLocal {
		_ = tier // placement checked via traffic above
	}
	if p.Flops != float64(b.Elements*3*2) {
		t.Errorf("flops = %v, want %v", p.Flops, b.Elements*3*2)
	}
}

func TestICOfWorkloadSpread(t *testing.T) {
	cfg := machine.Default()
	md := model()
	phases := []machine.PhaseStats{
		{Name: "init", LocalBytes: 10e9},                     // no remote traffic
		{Name: "compute", LocalBytes: 5e9, RemoteBytes: 8e9}, // heavy remote
	}
	mean, lo, hi := md.ICOfWorkload(cfg, phases)
	if lo > hi || mean < lo || mean > hi {
		t.Errorf("mean/lo/hi inconsistent: %v %v %v", mean, lo, hi)
	}
	if hi <= 1 {
		t.Errorf("remote-heavy phase should cause interference: hi=%v", hi)
	}
	if lo < 1 {
		t.Errorf("IC below 1 is impossible: lo=%v", lo)
	}
}

// Property: measured LoI is within [0,1] and monotone non-increasing in
// flops-per-element.
func TestLoIBoundsProperty(t *testing.T) {
	md := model()
	f := func(threads, flops uint8) bool {
		th := int(threads%16) + 1
		fl := int(flops%200) + 1
		loi := md.MeasuredLoI(Config{Threads: th, FlopsPerElement: fl})
		if loi < 0 || loi > 1 {
			return false
		}
		more := md.MeasuredLoI(Config{Threads: th, FlopsPerElement: fl + 1})
		return more <= loi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
