package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("title", "Name", "Value")
	tb.AddRow("a", 1)
	tb.AddRow("longer", 2.5)
	out := tb.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header row malformed: %q", lines[1])
	}
	// Column start of "Value" must align with "1" and "2.5".
	col := strings.Index(lines[1], "Value")
	if lines[3][col] != '1' {
		t.Errorf("row 1 misaligned: %q", lines[3])
	}
	if lines[4][col] != '2' {
		t.Errorf("row 2 misaligned: %q", lines[4])
	}
}

func TestTableNumRows(t *testing.T) {
	tb := NewTable("", "A")
	if tb.NumRows() != 0 {
		t.Fatal("fresh table should have 0 rows")
	}
	tb.AddRow("x")
	tb.AddRow("y")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableIntegerFloatFormatting(t *testing.T) {
	tb := NewTable("", "V")
	tb.AddRow(3.0)
	out := tb.String()
	if !strings.Contains(out, "3\n") {
		t.Errorf("whole float should print without decimals: %q", out)
	}
}

func TestBarChartScaling(t *testing.T) {
	c := NewBarChart("bars")
	c.Width = 10
	c.Add("a", 100)
	c.Add("b", 50)
	c.Add("c", 0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	nA := strings.Count(lines[1], "#")
	nB := strings.Count(lines[2], "#")
	nC := strings.Count(lines[3], "#")
	if nA != 10 {
		t.Errorf("max bar should fill width: %d", nA)
	}
	if nB != 5 {
		t.Errorf("half bar = %d, want 5", nB)
	}
	if nC != 0 {
		t.Errorf("zero bar should be empty, got %d", nC)
	}
}

func TestBarChartNonzeroGetsAtLeastOneChar(t *testing.T) {
	c := NewBarChart("")
	c.Width = 10
	c.Add("big", 1000)
	c.Add("tiny", 1)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") < 1 {
		t.Errorf("tiny nonzero bar should render at least one #: %q", lines[1])
	}
}

func TestPlotRendersMarkersAndLegend(t *testing.T) {
	p := NewPlot("t", "x", "y")
	p.Cols, p.Rows = 20, 5
	p.Add("s1", []float64{0, 1, 2}, []float64{0, 1, 2})
	p.Add("s2", []float64{0, 1, 2}, []float64{2, 1, 0})
	out := p.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("expected two distinct markers:\n%s", out)
	}
	if !strings.Contains(out, "s1") || !strings.Contains(out, "s2") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("t", "x", "y")
	if !strings.Contains(p.String(), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestPlotMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	NewPlot("", "", "").Add("bad", []float64{1}, []float64{1, 2})
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("flat", "x", "y")
	p.Add("s", []float64{1, 1}, []float64{5, 5})
	out := p.String()
	if out == "" || strings.Contains(out, "NaN") {
		t.Errorf("degenerate ranges must not produce NaN:\n%s", out)
	}
}

func TestBox(t *testing.T) {
	out := Box("lbl", 1, 2, 3, 4, 5, 0, 10, 40)
	if !strings.Contains(out, "lbl") || !strings.Contains(out, "M") {
		t.Errorf("box missing label or median marker: %q", out)
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "=") {
		t.Errorf("box missing whiskers or box body: %q", out)
	}
	if !strings.Contains(out, "med=3") {
		t.Errorf("median annotation missing: %q", out)
	}
}

func TestBoxDegenerateRange(t *testing.T) {
	out := Box("x", 1, 1, 1, 1, 1, 1, 1, 20)
	if strings.Contains(out, "NaN") {
		t.Errorf("degenerate box must not NaN: %q", out)
	}
}
