package api

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sweep"
)

// newMetricsServer is newTestServer with the serving state exposed: the
// caller supplies the Backend, the counter set and the readiness probe, so
// the caching tests can inspect what the middleware counted.
func newMetricsServer(t *testing.T, b Backend, m *Metrics, ready func() bool) *httptest.Server {
	t.Helper()
	st := report.NewStore(func(ctx context.Context, platform, artifact string) (report.Doc, error) {
		if artifact != "figure9" {
			return report.Doc{}, &experiments.AliasError{Alias: artifact, Canonical: "figure9"}
		}
		return *report.New(artifact).Append(report.NoteBlock("legacy\n")), nil
	})
	h := New(Config{
		Backend:         b,
		Metrics:         m,
		Ready:           ready,
		LegacyArtifacts: st.Handler([]string{"figure9"}, "baseline"),
		LegacySweep: sweep.Handler(
			func(platform string) (sweep.Grid, error) { return b.Grid(platform) },
			func(ctx context.Context, platform string, g sweep.Grid) (*sweep.Campaign, error) {
				return b.Sweep(ctx, g)
			},
		),
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// fetchHdr performs one GET with explicit headers. Setting Accept-Encoding
// by hand also disables the transport's transparent gzip, so the test sees
// the raw bytes and Content-Encoding the server actually produced.
func fetchHdr(t *testing.T, srv *httptest.Server, path string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// identity pins the identity encoding (no transport auto-gzip either).
var identity = map[string]string{"Accept-Encoding": "identity"}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConditionalRequests walks the ETag contract on a /v1 artifact route:
// stable strong validators, 304s with empty bodies that keep their
// caching headers, weak and wildcard and cross-encoding revalidation, and
// full 200s for stale tags.
func TestConditionalRequests(t *testing.T) {
	m := &Metrics{}
	srv := newMetricsServer(t, &stubBackend{}, m, nil)
	const path = "/v1/artifacts/figure9"

	code, body, hdr := fetchHdr(t, srv, path, identity)
	if code != 200 || len(body) == 0 {
		t.Fatalf("GET %s = %d (%d bytes), want a full 200", path, code, len(body))
	}
	etag := hdr.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) || strings.Contains(etag, "gzip") {
		t.Fatalf("identity ETag = %q, want a quoted strong tag without the gzip variant suffix", etag)
	}
	if cc := hdr.Get("Cache-Control"); !strings.Contains(cc, "public") || !strings.Contains(cc, "max-age") {
		t.Errorf("Cache-Control = %q, want public with a max-age", cc)
	}
	if v := hdr.Get("Vary"); v != "Accept, Accept-Encoding" {
		t.Errorf("Vary = %q, want \"Accept, Accept-Encoding\"", v)
	}

	// Same representation, same tag: the validator is stable across
	// requests, which is what makes caches useful at all.
	_, body2, hdr2 := fetchHdr(t, srv, path, identity)
	if hdr2.Get("ETag") != etag || string(body2) != string(body) {
		t.Fatalf("second GET drifted: ETag %q vs %q", hdr2.Get("ETag"), etag)
	}

	stem := strings.Trim(etag, `"`)
	revalidations := []struct {
		name, inm string
	}{
		{"exact tag", etag},
		{"weak-prefixed tag", "W/" + etag},
		{"wildcard", "*"},
		{"tag in a list", `"bogus", ` + etag},
		{"gzip variant tag", `"` + stem + `-gzip"`},
	}
	for _, tc := range revalidations {
		t.Run(tc.name, func(t *testing.T) {
			code, body, hdr := fetchHdr(t, srv, path, map[string]string{
				"Accept-Encoding": "identity",
				"If-None-Match":   tc.inm,
			})
			if code != 304 {
				t.Fatalf("If-None-Match %q = %d, want 304", tc.inm, code)
			}
			if len(body) != 0 {
				t.Errorf("304 carried %d body bytes, want none", len(body))
			}
			if hdr.Get("ETag") != etag {
				t.Errorf("304 ETag = %q, want %q", hdr.Get("ETag"), etag)
			}
			if hdr.Get("Cache-Control") == "" || hdr.Get("Content-Type") != "" {
				t.Errorf("304 headers: Cache-Control %q, Content-Type %q — want caching headers kept, media type dropped",
					hdr.Get("Cache-Control"), hdr.Get("Content-Type"))
			}
		})
	}

	// A tag that matches nothing gets the full body back.
	code, body3, _ := fetchHdr(t, srv, path, map[string]string{
		"Accept-Encoding": "identity",
		"If-None-Match":   `"0000000000000000"`,
	})
	if code != 200 || string(body3) != string(body) {
		t.Fatalf("stale If-None-Match = %d, want the full 200 body back", code)
	}
	if got := m.NotModified.Load(); got != int64(len(revalidations)) {
		t.Errorf("not_modified counter = %d, want %d", got, len(revalidations))
	}

	// Different representations never share a tag: json vs text.
	_, _, jhdr := fetchHdr(t, srv, path+"?format=json", identity)
	if jhdr.Get("ETag") == etag {
		t.Errorf("json and text served the same ETag %q", etag)
	}
}

// TestGzipRoundTrip checks the negotiated gzip representation: tagged with
// the -gzip variant, byte-identical to the identity body after
// decompression, and declined when the client zeroes it out.
func TestGzipRoundTrip(t *testing.T) {
	m := &Metrics{}
	srv := newMetricsServer(t, &stubBackend{}, m, nil)
	const path = "/v1/artifacts/figure9?format=json"

	_, plain, phdr := fetchHdr(t, srv, path, identity)
	code, packed, hdr := fetchHdr(t, srv, path, map[string]string{"Accept-Encoding": "gzip"})
	if code != 200 || hdr.Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip GET = %d, Content-Encoding %q", code, hdr.Get("Content-Encoding"))
	}
	if !strings.HasSuffix(hdr.Get("ETag"), `-gzip"`) {
		t.Errorf("gzip ETag = %q, want the -gzip variant", hdr.Get("ETag"))
	}
	if want := `"` + strings.Trim(phdr.Get("ETag"), `"`) + `-gzip"`; hdr.Get("ETag") != want {
		t.Errorf("gzip ETag = %q, want %q (same stem as the identity tag)", hdr.Get("ETag"), want)
	}
	zr, err := gzip.NewReader(strings.NewReader(string(packed)))
	if err != nil {
		t.Fatalf("body is not gzip: %v", err)
	}
	unpacked, err := io.ReadAll(zr)
	if err != nil || string(unpacked) != string(plain) {
		t.Fatalf("gzip round-trip mismatch (err %v): %d bytes vs %d identity bytes", err, len(unpacked), len(plain))
	}
	if m.Gzipped.Load() != 1 {
		t.Errorf("gzipped counter = %d, want 1", m.Gzipped.Load())
	}

	// gzip;q=0 is an explicit refusal.
	_, body, hdr := fetchHdr(t, srv, path, map[string]string{"Accept-Encoding": "gzip;q=0"})
	if hdr.Get("Content-Encoding") != "" || string(body) != string(plain) {
		t.Errorf("gzip;q=0 still served Content-Encoding %q", hdr.Get("Content-Encoding"))
	}
}

// TestErrorsUncacheable pins the negative space of the caching policy:
// no failure — envelope or legacy plain text — ever carries a validator
// or a cacheable Cache-Control.
func TestErrorsUncacheable(t *testing.T) {
	srv := newMetricsServer(t, &stubBackend{}, nil, nil)
	paths := []struct {
		name, path string
		wantStatus int
	}{
		{"unknown artifact", "/v1/artifacts/nope", 404},
		{"bad format", "/v1/artifacts/figure9?format=yaml", 400},
		{"bad platform", "/v1/artifacts/figure9?platform=vapor", 404},
		{"cancelled computation", "/v1/artifacts/figure5", 503},
		{"panic recovery", "/v1/artifacts/figure7", 500},
		{"legacy bad format", "/artifacts/figure9.yaml", 400},
		{"bad sweep axis", "/v1/sweep?axis=bogus=1", 400},
	}
	for _, tc := range paths {
		t.Run(tc.name, func(t *testing.T) {
			code, _, hdr := fetchHdr(t, srv, tc.path, identity)
			if code != tc.wantStatus {
				t.Fatalf("GET %s = %d, want %d", tc.path, code, tc.wantStatus)
			}
			if et := hdr.Get("ETag"); et != "" {
				t.Errorf("error response carries ETag %q", et)
			}
			if cc := hdr.Get("Cache-Control"); cc != "no-store" {
				t.Errorf("error Cache-Control = %q, want no-store", cc)
			}
		})
	}
}

// TestAliasCachingParity is the drift regression for the deprecated paths:
// the legacy artifact and sweep routes flow through the same conditional
// and gzip middleware as /v1, so they serve the same caching headers, honor
// If-None-Match, and keep their Deprecation marker on the 304.
func TestAliasCachingParity(t *testing.T) {
	srv := newMetricsServer(t, &stubBackend{}, nil, nil)
	canonical := map[string]string{}
	for _, path := range []string{"/v1/artifacts/figure9", "/v1/sweep"} {
		_, _, hdr := fetchHdr(t, srv, path, identity)
		canonical["Cache-Control"] = hdr.Get("Cache-Control")
		canonical["Vary"] = hdr.Get("Vary")
		if hdr.Get("ETag") == "" {
			t.Fatalf("%s served no ETag", path)
		}
	}
	for _, path := range []string{"/artifacts/figure9.txt", "/artifacts/figure9.json", "/sweep"} {
		code, _, hdr := fetchHdr(t, srv, path, identity)
		if code != 200 {
			t.Fatalf("GET %s = %d", path, code)
		}
		etag := hdr.Get("ETag")
		if etag == "" {
			t.Fatalf("legacy %s served no ETag", path)
		}
		for k, want := range canonical {
			if got := hdr.Get(k); got != want {
				t.Errorf("legacy %s: %s = %q, want %q (parity with /v1)", path, k, got, want)
			}
		}
		if hdr.Get("Deprecation") != "true" {
			t.Errorf("legacy %s lost its Deprecation header behind the caching middleware", path)
		}
		code, body, hdr := fetchHdr(t, srv, path, map[string]string{
			"Accept-Encoding": "identity",
			"If-None-Match":   etag,
		})
		if code != 304 || len(body) != 0 {
			t.Errorf("legacy %s revalidation = %d (%d bytes), want an empty 304", path, code, len(body))
		}
		if hdr.Get("Deprecation") != "true" {
			t.Errorf("legacy %s 304 dropped the Deprecation header", path)
		}
	}
}

// TestHealthzReadiness checks the probe's two roles: always-200 liveness,
// and a ready field tracking the warm.
func TestHealthzReadiness(t *testing.T) {
	var ready atomic.Bool
	srv := newMetricsServer(t, &stubBackend{}, nil, ready.Load)
	probe := func() (int, bool) {
		code, body, hdr := fetchHdr(t, srv, "/healthz", nil)
		if hdr.Get("Cache-Control") != "no-store" {
			t.Errorf("healthz Cache-Control = %q, want no-store", hdr.Get("Cache-Control"))
		}
		var got struct {
			Status string `json:"status"`
			Ready  bool   `json:"ready"`
		}
		if err := json.Unmarshal(body, &got); err != nil || got.Status != "ok" {
			t.Fatalf("healthz body %q: %v", body, err)
		}
		return code, got.Ready
	}
	if code, r := probe(); code != 200 || r {
		t.Fatalf("cold healthz = %d ready=%v, want 200 ready=false (live but not warm)", code, r)
	}
	ready.Store(true)
	if code, r := probe(); code != 200 || !r {
		t.Fatalf("warm healthz = %d ready=%v, want 200 ready=true", code, r)
	}
}

// TestStatsRoute checks /v1/stats serves the counter snapshot the load
// harness diffs: every key present, request counting live.
func TestStatsRoute(t *testing.T) {
	m := &Metrics{}
	srv := newMetricsServer(t, &stubBackend{}, m, nil)
	fetchHdr(t, srv, "/v1/artifacts/figure9", identity)
	_, body, hdr := fetchHdr(t, srv, "/v1/stats", nil)
	if hdr.Get("Cache-Control") != "no-store" {
		t.Errorf("stats Cache-Control = %q, want no-store", hdr.Get("Cache-Control"))
	}
	var snap map[string]int64
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"requests", "renders", "coalesced", "not_modified", "gzipped"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("stats missing %q: %s", key, body)
		}
	}
	if snap["requests"] < 2 || snap["renders"] < 1 {
		t.Errorf("stats = %v, want at least the artifact request counted", snap)
	}
}

// TestStatsProfileCacheKeys checks the profile-cache hook merges into the
// stats snapshot as flat int64 keys — the shape sbench and the CI smoke
// decode — and that an unwired hook leaves the snapshot unchanged.
func TestStatsProfileCacheKeys(t *testing.T) {
	h := New(Config{
		Backend: &stubBackend{},
		ProfileCache: func() (hits, misses, joins int64) {
			return 5, 3, 1
		},
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	_, body, _ := fetchHdr(t, srv, "/v1/stats", nil)
	var snap map[string]int64
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("stats not a flat map[string]int64: %v\n%s", err, body)
	}
	if snap["profile_hits"] != 5 || snap["profile_misses"] != 3 || snap["profile_joins"] != 1 {
		t.Errorf("profile keys = %v, want hits=5 misses=3 joins=1", snap)
	}
}

// slowBackend gates one artifact's render so the coalescing tests can hold
// N requests in flight, then counts how many times the backend actually
// ran.
type slowBackend struct {
	*stubBackend
	gate  chan struct{}
	calls atomic.Int32
}

func (b *slowBackend) Rendered(ctx context.Context, platform, artifact string, f report.Format) (string, error) {
	if artifact == "figure13" {
		b.calls.Add(1)
		select {
		case <-b.gate:
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	return b.stubBackend.Rendered(ctx, platform, artifact, f)
}

// TestCoalescedRenders races N concurrent cache-miss requests for one
// (platform, artifact, format) key and asserts exactly one backend render:
// one flight lead, N-1 coalesced joins, identical bodies all around. The
// implicit-default and explicit ?platform= spellings must land on the same
// flight. Run with -race.
func TestCoalescedRenders(t *testing.T) {
	m := &Metrics{}
	b := &slowBackend{stubBackend: &stubBackend{}, gate: make(chan struct{})}
	srv := newMetricsServer(t, b, m, nil)
	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/v1/artifacts/figure13"
			if i%2 == 1 {
				// Half the callers name the default platform explicitly:
				// the flight key must normalize both spellings together.
				path += "?platform=baseline"
			}
			codes[i], bodies[i], _ = func() (int, string, http.Header) {
				code, body, hdr := fetchHdr(t, srv, path, identity)
				return code, string(body), hdr
			}()
		}(i)
	}
	waitFor(t, "all requests to share one flight", func() bool {
		return m.Renders.Load() == 1 && m.Coalesced.Load() == n-1
	})
	close(b.gate)
	wg.Wait()
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("backend rendered %d times for %d concurrent requests, want exactly 1", got, n)
	}
	for i := 0; i < n; i++ {
		if codes[i] != 200 || bodies[i] != bodies[0] {
			t.Errorf("request %d: status %d, body drift %v", i, codes[i], bodies[i] != bodies[0])
		}
	}
}

// slowSweepBackend gates campaign execution so the sweep-coalescing test
// can hold N requests in one flight, then counts real executions.
type slowSweepBackend struct {
	*stubBackend
	gate  chan struct{}
	calls atomic.Int32
}

func (b *slowSweepBackend) Sweep(ctx context.Context, g sweep.Grid) (*sweep.Campaign, error) {
	b.calls.Add(1)
	select {
	case <-b.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.stubBackend.Sweep(ctx, g)
}

// TestSweepCoalescing races concurrent /v1/sweep cache-miss requests whose
// query spellings alias — a lo:hi:step range against its expanded value
// list, the implicit default platform against the explicit name — and
// asserts they all land on one canonical-grid flight: exactly one campaign
// executes, every response is byte-identical with one shared ETag. Run
// with -race.
func TestSweepCoalescing(t *testing.T) {
	m := &Metrics{}
	b := &slowSweepBackend{stubBackend: &stubBackend{}, gate: make(chan struct{})}
	srv := newMetricsServer(t, b, m, nil)
	// Four spellings of one campaign: the canonical grid key normalizes
	// the axis declaration, the handler normalizes the platform.
	paths := []string{
		"/v1/sweep?axis=lat%3D0:20:10",
		"/v1/sweep?axis=lat%3D0,10,20",
		"/v1/sweep?axis=lat%3D0:20:10&platform=baseline",
		"/v1/sweep?axis=lat%3D0,10,20&platform=baseline",
	}
	n := len(paths)
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([]string, n)
	etags := make([]string, n)
	for i, path := range paths {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			code, body, hdr := fetchHdr(t, srv, path, identity)
			codes[i], bodies[i], etags[i] = code, string(body), hdr.Get("ETag")
		}(i, path)
	}
	waitFor(t, "all sweep spellings to share one flight", func() bool {
		return m.Renders.Load() == 1 && m.Coalesced.Load() == int64(n-1)
	})
	close(b.gate)
	wg.Wait()
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("backend executed %d campaigns for %d aliased requests, want exactly 1", got, n)
	}
	for i := range paths {
		if codes[i] != 200 || bodies[i] != bodies[0] || etags[i] != etags[0] {
			t.Errorf("spelling %q: status %d, body drift %v, ETag %q vs %q",
				paths[i], codes[i], bodies[i] != bodies[0], etags[i], etags[0])
		}
	}
	// The oversize guard sits on this synchronous surface only: a grid
	// past the cap answers 400 with a pointer at the job surface.
	code, body, _ := fetchHdr(t, srv, "/v1/sweep?axis=lat%3D0:1000:1&axis=bw%3D1,2,3,4,5", identity)
	if code != 400 || !strings.Contains(string(body), "jobs") {
		t.Errorf("oversized sync sweep = %d: %s", code, firstN(string(body), 160))
	}
}

// TestFlightGroupWaiterCancel pins the non-poisoning contract: one waiter's
// context death returns its own ctx.Err immediately, while the flight — and
// its context — stays alive for the remaining waiter, who still gets the
// result.
func TestFlightGroupWaiterCancel(t *testing.T) {
	m := &Metrics{}
	g := newFlightGroup(m)
	release := make(chan struct{})
	started := make(chan struct{})
	var fnCtx context.Context
	fn := func(ctx context.Context) (string, error) {
		fnCtx = ctx
		close(started)
		select {
		case <-release:
			return "rendered", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	type res struct {
		out string
		err error
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	aCh := make(chan res, 1)
	go func() {
		out, err := g.Do(ctxA, flightKey{artifact: "k"}, fn)
		aCh <- res{out, err}
	}()
	<-started
	bCh := make(chan res, 1)
	go func() {
		out, err := g.Do(context.Background(), flightKey{artifact: "k"}, fn)
		bCh <- res{out, err}
	}()
	waitFor(t, "second caller to join the flight", func() bool { return m.Coalesced.Load() == 1 })

	cancelA()
	a := <-aCh
	if a.err != context.Canceled || a.out != "" {
		t.Fatalf("cancelled waiter got (%q, %v), want its own ctx.Err", a.out, a.err)
	}
	select {
	case <-fnCtx.Done():
		t.Fatal("flight context died while a waiter remained — the render was poisoned")
	default:
	}

	close(release)
	if b := <-bCh; b.err != nil || b.out != "rendered" {
		t.Fatalf("surviving waiter got (%q, %v), want the rendered result", b.out, b.err)
	}
	if m.Renders.Load() != 1 {
		t.Errorf("renders = %d, want 1", m.Renders.Load())
	}
}

// TestFlightGroupAbandonAndRetry checks the last-waiter path: when every
// caller is gone the flight's context is cancelled and the flight evicted,
// so the next request starts a fresh render instead of joining a corpse.
func TestFlightGroupAbandonAndRetry(t *testing.T) {
	m := &Metrics{}
	g := newFlightGroup(m)
	fnDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resCh := make(chan error, 1)
	go func() {
		_, err := g.Do(ctx, flightKey{artifact: "k"}, func(fctx context.Context) (string, error) {
			<-fctx.Done()
			fnDone <- fctx.Err()
			return "", fctx.Err()
		})
		resCh <- err
	}()
	waitFor(t, "the flight to start", func() bool { return m.Renders.Load() == 1 })
	cancel()
	if err := <-resCh; err != context.Canceled {
		t.Fatalf("abandoned caller got %v, want context.Canceled", err)
	}
	// The flight context must die with its last waiter — that is what stops
	// an orphaned render from pinning the engine.
	if err := <-fnDone; err != context.Canceled {
		t.Fatalf("flight context ended with %v, want context.Canceled", err)
	}
	out, err := g.Do(context.Background(), flightKey{artifact: "k"}, func(context.Context) (string, error) {
		return "fresh", nil
	})
	if err != nil || out != "fresh" {
		t.Fatalf("retry after abandonment got (%q, %v), want a fresh render", out, err)
	}
	if m.Renders.Load() != 2 {
		t.Errorf("renders = %d, want 2 (abandoned + fresh)", m.Renders.Load())
	}
}
