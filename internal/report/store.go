package report

import (
	"context"
	"os"
	"path/filepath"
	"sync"
)

// Source computes the document of one artifact on one platform. It is the
// seam between measurement and presentation: the experiment suites sit
// behind a Source, the Store and every renderer sit in front of it. The
// context bounds the computation — sources built on the experiment engine
// stop at the next task boundary and return ctx.Err() when it is done.
type Source func(ctx context.Context, platform, artifact string) (Doc, error)

// Store memoizes artifact documents and their renders: each (platform,
// artifact) document is computed once and each (platform, artifact, format)
// render is produced once, no matter how many CLI writes or HTTP requests
// ask for it.
type Store struct {
	src Source

	// compute is a one-slot semaphore serializing document computation (one
	// suite's drivers must not run concurrently with another's — the suites
	// parallelize internally). Waiters block on it context-aware: a caller
	// whose ctx dies while another document computes abandons the wait
	// immediately instead of queueing behind a long experiment.
	compute chan struct{}

	// mu guards docs and renderMu guards rendered; neither is ever held
	// across source computation or rendering, so cached responses stay
	// instant while a cold document computes. Lock order when both are
	// needed: mu, then renderMu.
	mu       sync.Mutex
	docs     map[[2]string]docEntry
	renderMu sync.Mutex
	rendered map[[3]string]string
}

// docEntry is one memoized document plus its generation: Put bumps the
// generation, and an in-flight render only caches if the document it
// rendered is still current, so Doc and Artifact never disagree.
type docEntry struct {
	doc Doc
	gen uint64
}

// NewStore returns an empty store over the given source.
func NewStore(src Source) *Store {
	return &Store{
		src:      src,
		compute:  make(chan struct{}, 1),
		docs:     map[[2]string]docEntry{},
		rendered: map[[3]string]string{},
	}
}

// Doc returns the memoized document of an artifact on a platform, computing
// it on first use and stamping the platform into the document. Source
// errors are not memoized: unknown ids and platforms fail fast in the
// source, and an unbounded error cache keyed by request-controlled strings
// would let a misbehaving client grow the store without limit.
//
// Computation is serialized store-wide: concurrent requests for different
// cold artifacts run one at a time, which keeps one suite's drivers from
// running concurrently with each other (the suites parallelize internally).
// The wait for the computation slot is context-aware — a cancelled caller
// returns ctx.Err() immediately, even while another document computes —
// and ctx is handed to the source, so the computation itself stops at its
// next task boundary once ctx is done.
func (st *Store) Doc(ctx context.Context, platform, artifact string) (Doc, error) {
	d, _, err := st.doc(ctx, platform, artifact)
	return d, err
}

// cached returns the memoized entry for a key, if present.
func (st *Store) cached(key [2]string) (docEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.docs[key]
	return e, ok
}

// doc is Doc plus the entry's generation for Artifact's cache guard.
func (st *Store) doc(ctx context.Context, platform, artifact string) (Doc, uint64, error) {
	key := [2]string{platform, artifact}
	if e, ok := st.cached(key); ok {
		return e.doc, e.gen, nil
	}
	// Cold: take the store-wide computation slot, abandoning on ctx death.
	select {
	case st.compute <- struct{}{}:
		defer func() { <-st.compute }()
	case <-ctx.Done():
		return Doc{}, 0, ctx.Err()
	}
	// Another holder of the slot (or a Put) may have filled the entry while
	// we waited.
	if e, ok := st.cached(key); ok {
		return e.doc, e.gen, nil
	}
	d, err := st.src(ctx, platform, artifact)
	if err != nil {
		return Doc{}, 0, err
	}
	if d.Platform == "" {
		d.Platform = platform
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	// A concurrent Put may have landed during computation; matching its
	// generation bump keeps the Artifact cache guard sound either way.
	gen := st.docs[key].gen + 1
	st.docs[key] = docEntry{doc: d, gen: gen}
	return d, gen, nil
}

// Put seeds the store with a precomputed document keyed by the given
// platform and the doc's artifact id — the hook for parallel sweeps
// (Suite.AllParallel) that compute many documents at once and hand them to
// the store for rendering and serving.
func (st *Store) Put(platform string, d Doc) {
	if d.Platform == "" {
		d.Platform = platform
	}
	key := [2]string{platform, d.Artifact}
	st.mu.Lock()
	st.docs[key] = docEntry{doc: d, gen: st.docs[key].gen + 1}
	// Drop any renders of a previously stored document so Doc and Artifact
	// never disagree after a re-Put.
	st.renderMu.Lock()
	for _, f := range Formats {
		delete(st.rendered, [3]string{platform, d.Artifact, string(f)})
	}
	st.renderMu.Unlock()
	st.mu.Unlock()
}

// Artifact returns the memoized render of an artifact on a platform in a
// format. A cached render is returned without touching the document path,
// so cold computations of other artifacts never block cached responses.
func (st *Store) Artifact(ctx context.Context, platform, artifact string, f Format) (string, error) {
	key := [3]string{platform, artifact, string(f)}
	st.renderMu.Lock()
	out, ok := st.rendered[key]
	st.renderMu.Unlock()
	if ok {
		return out, nil
	}
	d, gen, err := st.doc(ctx, platform, artifact)
	if err != nil {
		return "", err
	}
	out, err = Render(d, f)
	if err != nil {
		return "", err
	}
	st.mu.Lock()
	// Cache only if the document we rendered is still the stored one — a
	// concurrent Put may have replaced it while we rendered.
	if st.docs[[2]string{platform, artifact}].gen == gen {
		st.renderMu.Lock()
		st.rendered[key] = out
		st.renderMu.Unlock()
	}
	st.mu.Unlock()
	return out, nil
}

// WriteDir renders each artifact in each format and writes the files into
// dir as <artifact>.<ext> (figure9.txt, figure9.json, figure9.csv, ...),
// creating dir if needed. It returns the written file paths in order.
func (st *Store) WriteDir(ctx context.Context, dir, platform string, artifacts []string, formats ...Format) ([]string, error) {
	if len(formats) == 0 {
		formats = Formats
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, id := range artifacts {
		for _, f := range formats {
			out, err := st.Artifact(ctx, platform, id, f)
			if err != nil {
				return paths, err
			}
			p := filepath.Join(dir, id+"."+f.Ext())
			if err := os.WriteFile(p, []byte(out), 0o644); err != nil {
				return paths, err
			}
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// Cached reports how many documents and renders the store currently holds
// (for tests and diagnostics).
func (st *Store) Cached() (docs, renders int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.renderMu.Lock()
	defer st.renderMu.Unlock()
	return len(st.docs), len(st.rendered)
}
