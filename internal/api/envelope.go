package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// ErrorBody is the one JSON error envelope every /v1 failure — and the
// panic-recovery path — serializes to:
//
//	{"error": {"status": 404, "message": "...", "formats": [...]}}
//
// Status duplicates the HTTP status code so piped output (`curl | jq`)
// keeps it; Formats is present exactly when the failure is a
// report.FormatError, carrying its accepted spellings verbatim.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the envelope payload.
type ErrorDetail struct {
	// Status is the HTTP status code of the response.
	Status int `json:"status"`
	// Message is the diagnostic, identical to the library error's text.
	Message string `json:"message"`
	// Formats lists every accepted format spelling when the failure is a
	// format error.
	Formats []string `json:"formats,omitempty"`
}

// statusOf classifies an error into an HTTP status by kind, never by
// message text: validation failures (the shared sweep validator, format
// parsing) are 400s, failed lookups (platforms, artifact ids, aliases)
// 404s, abandoned computations 503/504, everything else a 500.
func statusOf(err error) int {
	var fe *report.FormatError
	switch {
	case errors.As(err, &fe), errors.Is(err, sweep.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, scenario.ErrUnknown), errors.Is(err, experiments.ErrUnknownID),
		errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrNotDone), errors.Is(err, jobs.ErrRecordModified):
		return http.StatusConflict
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// writeStatusError writes err in the envelope under its classified status.
func writeStatusError(w http.ResponseWriter, err error) {
	writeError(w, statusOf(err), err)
}

// writeError writes err in the JSON error envelope. Responses are always
// JSON regardless of the request's negotiated format: clients get one
// machine-parseable error shape everywhere — and never a cache validator:
// errors are transient (a cancelled computation, a typo'd query), so a
// cached 404 must not shadow a later success.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Cache-Control", "no-store")
	detail := ErrorDetail{Status: status, Message: err.Error()}
	var fe *report.FormatError
	if errors.As(err, &fe) {
		detail.Formats = fe.Accepted
	}
	writeJSON(w, status, ErrorBody{Error: detail})
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errNoRoute reports an unrecognized /v1 path.
func errNoRoute(path string) error {
	return fmt.Errorf("no such route %q (see GET /v1)", path)
}

// errBadSweepArtifact reports an unrecognized sweep view selector.
func errBadSweepArtifact(got string) error {
	return fmt.Errorf("unknown artifact %q (want sweep or sensitivity)", got)
}
