package repro

import (
	"bytes"
	"testing"
)

func TestFacadeWorkloadsTable(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(ws))
	}
	if _, err := Workload("SuperLU"); err != nil {
		t.Fatal(err)
	}
	if _, err := Workload("bogus"); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestFacadeThreeLevelWorkflow(t *testing.T) {
	p := NewProfiler(DefaultPlatform())
	entry, err := Workload("SuperLU")
	if err != nil {
		t.Fatal(err)
	}
	l1 := p.Level1(entry, 1)
	if l1.PeakFootprint == 0 || len(l1.Phases) == 0 {
		t.Fatalf("Level1 empty: %+v", l1)
	}
	l2 := p.Level2(entry, 1, 0.5)
	if l2.RBW <= 0 || l2.RCap != 0.5 {
		t.Fatalf("Level2 references wrong: %+v", l2)
	}
	l3 := p.Level3(entry, 1, 0.5, []float64{0, 0.5})
	if len(l3.Relative) != 2 || l3.Relative[0] != 1 {
		t.Fatalf("Level3 baseline should be 1: %+v", l3.Relative)
	}
	if l3.DeploymentAdvice() == "" {
		t.Fatal("advice should render")
	}
}

func TestFacadeBFSVariantsAndPlacement(t *testing.T) {
	platform := DefaultPlatform().WithLocalCapacity(4 << 20)
	m := Run(platform, NewBFS(1, BFSOptimized))
	if len(m.Phases()) != 2 {
		t.Fatalf("BFS should record 2 phases, got %d", len(m.Phases()))
	}
	regions := SortRegionsHot(m.Space.PerRegion())
	objs := PlacementFromRegions(regions)
	if len(objs) == 0 {
		t.Fatal("profiled regions should yield placement candidates")
	}
	g := GreedyPlacement(objs, 4<<20)
	e := ExactPlacement(objs, 4<<20, platform.Mem.PageSize)
	if g.RemoteAccessRatio() < 0 || g.RemoteAccessRatio() > 1 {
		t.Fatalf("greedy ratio out of range: %v", g.RemoteAccessRatio())
	}
	// Exact never leaves more accesses remote than greedy.
	if e.RemoteAccessRatio() > g.RemoteAccessRatio()+1e-9 {
		t.Fatalf("exact (%v) should not lose to greedy (%v)",
			e.RemoteAccessRatio(), g.RemoteAccessRatio())
	}
}

func TestFacadeLBench(t *testing.T) {
	md := NewLBench(DefaultPlatform())
	n, ok := md.Configure(0.3, 2)
	if !ok || n < 1 {
		t.Fatalf("2 threads should reach 30%%: n=%d ok=%v", n, ok)
	}
	loi := md.MeasuredLoI(LBenchConfig{Threads: 2, FlopsPerElement: n})
	if loi < 0.2 || loi > 0.4 {
		t.Fatalf("measured LoI %.2f should be near the 0.3 target", loi)
	}
	if ic := md.IC(0); ic != 1 {
		t.Fatalf("idle IC should be 1, got %v", ic)
	}
}

func TestFacadeSchedulers(t *testing.T) {
	platform := DefaultPlatform()
	phases := []PhaseStats{{
		Name: "p2", Flops: 1e8,
		LocalBytes: 1 << 28, RemoteBytes: 1 << 29,
		DemandMissRemote: 1 << 15,
	}}
	s := CompareSchedulers("synthetic", platform, phases, 40, 7)
	if s.MeanSpeedup < 0 {
		t.Fatalf("aware scheduler should not slow a pool-heavy job: %v", s.MeanSpeedup)
	}
	res := Schedule(RackConfig{Nodes: 2, Machine: platform},
		[]Job{{Name: "a", Phases: phases, IC: 1.2}, {Name: "b", Phases: phases, IC: 1.1}},
		InterferenceAware)
	if len(res.Jobs) != 2 {
		t.Fatalf("both jobs should finish: %+v", res)
	}
}

func TestFacadeInterleave(t *testing.T) {
	p := BandwidthInterleave(73e9, 34e9, 8)
	if p.AggregateBandwidth(73e9, 34e9) <= 73e9 {
		t.Fatal("matched interleave should beat local-only bandwidth")
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	// The paper's 12 artifacts plus the repo's cross-scenario comparison
	// and the two sweep-campaign views.
	if len(ids) != 15 {
		t.Fatalf("want 15 experiments, got %d", len(ids))
	}
	if ids[12] != "scenarios" || ids[13] != "sweep" || ids[14] != "sensitivity" {
		t.Fatalf("repo artifacts should come after the paper artifacts: %v", ids)
	}
	ids[0] = "mutated"
	if ExperimentIDs()[0] == "mutated" {
		t.Fatal("ExperimentIDs must return a copy")
	}
}

func TestFacadePlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) < 5 {
		t.Fatalf("Platforms() = %d entries, want >= 5", len(ps))
	}
	if ps[0].Name != "baseline" {
		t.Fatalf("first scenario = %q, want baseline", ps[0].Name)
	}
	if ps[0].Platform != DefaultPlatform() {
		t.Error("baseline scenario must be the default platform")
	}
	sp, err := PlatformNamed("cxl-gen5")
	if err != nil || sp.Name != "cxl-gen5" {
		t.Fatalf("PlatformNamed(cxl-gen5) = %v, %v", sp.Name, err)
	}
	if _, err := PlatformNamed("bogus"); err == nil {
		t.Fatal("unknown scenario should error")
	}
	// NewExperimentsFor carries the scenario's capacity protocol, not just
	// its platform — big-pool differs from baseline only in that protocol.
	bp, err := PlatformNamed("big-pool")
	if err != nil {
		t.Fatal(err)
	}
	s := NewExperimentsFor(bp)
	if s.Cfg != bp.Platform || s.Headline != bp.HeadlineFraction {
		t.Errorf("suite headline = %v on %q, want %v on %q",
			s.Headline, s.Cfg.Name, bp.HeadlineFraction, bp.Platform.Name)
	}
	if len(s.Fractions) != len(bp.CapacityFractions) || s.Fractions[0] != bp.CapacityFractions[0] {
		t.Errorf("suite fractions = %v, want %v", s.Fractions, bp.CapacityFractions)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	platform := DefaultPlatform()
	entry, err := Workload("Hypre")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := RecordTrace(platform, entry.New(1), &buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTrace(platform, &buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := orig.Phases(), replay.Phases()
	if len(a) != len(b) {
		t.Fatalf("phase count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TotalBytes() != b[i].TotalBytes() || a[i].Flops != b[i].Flops {
			t.Fatalf("replay diverged in phase %s", a[i].Name)
		}
	}
}
