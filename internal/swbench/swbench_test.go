package swbench

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// tinyConfig is the smallest meaningful benchmark: two cells differing
// only in link generation, one workload, one Monte-Carlo run.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	e, err := registry.Get("HPL")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Grid: sweep.Grid{Base: scenario.Default(), Axes: []sweep.Axis{
			{Name: "gen", Values: []float64{0, 5}},
		}},
		Entries: []registry.Entry{e},
		Runs:    1,
		Reps:    1,
		Workers: 2,
	}
}

// TestRunTinyGrid drives the harness end to end on the tiny grid: both
// modes execute, render identically, the shared mode records cross-cell
// hits, and the result marshals with the pinned schema tag.
func TestRunTinyGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small campaigns; the CI smoke drives the swbench binary instead")
	}
	res, err := Run(context.Background(), tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("isolated and shared campaigns rendered differently")
	}
	if res.Shared.Cache.Hits == 0 || res.Shared.Cache.Misses == 0 {
		t.Errorf("shared cache counters = %+v, want nonzero hits and misses", res.Shared.Cache)
	}
	if st := res.Isolated.Cache; st.Hits+st.Misses+st.Joins != 0 {
		t.Errorf("isolated mode reported cache traffic: %+v", st)
	}
	if res.Speedup <= 0 || res.Isolated.P50Seconds <= 0 || res.Shared.P50Seconds <= 0 {
		t.Errorf("degenerate timings: speedup=%v iso=%v shared=%v",
			res.Speedup, res.Isolated.P50Seconds, res.Shared.P50Seconds)
	}
	if res.Cells != 2 || res.Workloads != 1 {
		t.Errorf("cells=%d workloads=%d, want 2 and 1", res.Cells, res.Workloads)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var round struct {
		Schema string `json:"schema"`
		Shared struct {
			Cache struct {
				Hits int64 `json:"hits"`
			} `json:"cache"`
		} `json:"shared"`
	}
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Schema != Schema {
		t.Errorf("schema = %q, want %q", round.Schema, Schema)
	}
	if round.Shared.Cache.Hits != res.Shared.Cache.Hits {
		t.Errorf("hits did not round-trip: %d vs %d", round.Shared.Cache.Hits, res.Shared.Cache.Hits)
	}
}

// TestRunRejectsBadGrid pins validation-before-measurement.
func TestRunRejectsBadGrid(t *testing.T) {
	c := tinyConfig(t)
	c.Grid.Axes = []sweep.Axis{{Name: "bogus", Values: []float64{1}}}
	if _, err := Run(context.Background(), c); err == nil {
		t.Fatal("invalid grid ran anyway")
	}
}

// TestMedian pins the even/odd p50 arithmetic.
func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
}
