// Dependency-keyed shared memoization for the multi-level profiler.
//
// Every memoized sub-result (peak usage, scaling curve, Level-1, Level-2,
// roofline) is keyed by the exact subset of platform-configuration fields it
// can read, so profilers for *different* platforms share entries whenever
// the differing fields cannot influence the result. A sweep stepping a
// link axis (generation, latency, bandwidth scale) re-executes nothing that
// the link change cannot touch: workload execution depends only on the
// memory and cache geometry, and the single-tier Level-1 timing never
// exercises the link because an unbounded local tier serves every access.
//
// The key types are the enforcement mechanism: a sub-result cannot secretly
// depend on a field its key omits without breaking the byte-identical
// golden artifacts, and a field added to a key is an explicit declaration
// that the level reads it. docs/ARCHITECTURE.md lists the field budget per
// level.
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/roofline"
)

// execKey identifies one workload execution: the workload, its scale, and
// the only configuration fields that can influence how the run unfolds —
// the memory geometry and the cache geometry. Link parameters and node
// timing constants are deliberately absent: the emulated machine consults
// the link for traffic accounting only, never for behaviour, so platforms
// that differ solely in link generation, latency, or bandwidth execute
// workloads identically. The platform name is likewise excluded — scenario
// variants that rename a platform without changing execution-relevant
// fields share entries.
type execKey struct {
	workload string
	scale    int
	mem      mem.Config
	cache    cache.Config
}

// l1Key identifies a Level-1 report. Level 1 runs on a single-tier system
// (local capacity forced to zero in the embedded execKey), so no access is
// ever remote and every link term in the timing model vanishes; beyond the
// execution inputs the report reads only the node timing constants listed
// here. LatencyBWCoupling is absent: it scales a remote-bandwidth term
// that is zero on a single tier.
type l1Key struct {
	exec                execKey
	peakFlops           float64
	localBandwidth      float64
	localLatency        float64
	mlp                 float64
	streamDemandPenalty float64
}

// l2Key identifies a Level-2 report. Level 2 reports execution data only —
// no modeled times — so beyond the capacity-capped execution (derived from
// the full base memory geometry, since local capacity is sized against the
// peak footprint measured there, plus the fraction) it reads just the two
// bandwidths that form R_BW. Link latency, generation slopes, and peak
// traffic are absent: cells stepping those axes share Level-2 entries.
type l2Key struct {
	exec           execKey
	fraction       float64
	localBandwidth float64
	dataBandwidth  float64
}

// rooflineKey identifies a roofline model: the three ceilings and nothing
// else.
type rooflineKey struct {
	peakFlops      float64
	localBandwidth float64
	dataBandwidth  float64
}

// flight is one single-flight cache slot.
type flight[T any] struct {
	once sync.Once
	val  T
	// done flips after val is computed, distinguishing a lookup that found
	// a finished entry (hit) from one that joined an in-flight compute.
	done atomic.Bool
	// panicked records a panic raised by the compute function: sync.Once
	// marks itself done even then, so without this every later caller for
	// the key would silently receive the zero value.
	panicked any
}

// SharedCache memoizes profiler sub-results under dependency keys. One
// cache may back any number of Profilers for any number of platforms
// concurrently: entries are single-flight (concurrent requests for the same
// key block on exactly one compute) and race-safe, and cached values are
// shared between callers, so they must be treated as read-only.
//
// The zero value is not usable; construct with NewSharedCache.
type SharedCache struct {
	mu       sync.Mutex
	peak     map[execKey]*flight[uint64]
	curve    map[execKey]*flight[[]ScalingPoint]
	l1       map[l1Key]*flight[Level1Report]
	l2       map[l2Key]*flight[Level2Report]
	roofline map[rooflineKey]*flight[roofline.Model]

	hits   atomic.Int64
	misses atomic.Int64
	joins  atomic.Int64
}

// NewSharedCache returns an empty shared profile cache.
func NewSharedCache() *SharedCache {
	return &SharedCache{
		peak:     map[execKey]*flight[uint64]{},
		curve:    map[execKey]*flight[[]ScalingPoint]{},
		l1:       map[l1Key]*flight[Level1Report]{},
		l2:       map[l2Key]*flight[Level2Report]{},
		roofline: map[rooflineKey]*flight[roofline.Model]{},
	}
}

// CacheStats is a point-in-time snapshot of shared-cache traffic. Every
// lookup increments exactly one counter: Misses counts lookups that created
// the entry and ran the compute, Joins counts lookups that blocked on a
// compute already in flight, and Hits counts lookups served from a finished
// entry. Misses therefore equals the number of distinct keys ever computed.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Joins  int64 `json:"joins"`
}

// Stats returns a snapshot of the cache counters.
func (c *SharedCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Joins: c.joins.Load()}
}

// Entries returns the number of distinct keys resident across all levels
// (test and diagnostic hook).
func (c *SharedCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peak) + len(c.curve) + len(c.l1) + len(c.l2) + len(c.roofline)
}

// cached returns the memoized value for key, computing it with f exactly
// once even under concurrent callers from any number of profilers. The
// cache lock is held only for the map lookup, never during f. If f panics,
// the panic is re-raised for every caller of the key rather than poisoning
// the slot with a zero value.
func cached[K comparable, T any](c *SharedCache, m map[K]*flight[T], key K, f func() T) T {
	c.mu.Lock()
	e := m[key]
	switch {
	case e == nil:
		e = &flight[T]{}
		m[key] = e
		c.misses.Add(1)
	case e.done.Load():
		c.hits.Add(1)
	default:
		c.joins.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicked = r
				panic(r)
			}
		}()
		e.val = f()
		e.done.Store(true)
	})
	if e.panicked != nil {
		panic(e.panicked)
	}
	return e.val
}

// execKeyFor builds the execution key for a workload run on cfg.
func execKeyFor(cfg machine.Config, workload string, scale int) execKey {
	return execKey{workload: workload, scale: scale, mem: cfg.Mem, cache: cfg.Cache}
}

// singleTierKeyFor is execKeyFor with the local capacity normalized to
// zero — the single-tier system Level 1 and the scaling curve run on, so
// platforms differing only in capacity split share those entries.
func singleTierKeyFor(cfg machine.Config, workload string, scale int) execKey {
	cfg.Mem.LocalCapacity = 0
	return execKeyFor(cfg, workload, scale)
}
