package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads/registry"
)

// levelSizes snapshots the per-level resident key counts.
type levelSizes struct{ peak, curve, l1, l2, roofline int }

func sizesOf(c *SharedCache) levelSizes {
	c.mu.Lock()
	defer c.mu.Unlock()
	return levelSizes{len(c.peak), len(c.curve), len(c.l1), len(c.l2), len(c.roofline)}
}

// profileAll drives every memoized sub-result once.
func profileAll(p *Profiler, e registry.Entry) {
	p.PeakUsage(e, 1)
	p.Level1(e, 1)
	p.ScalingCurve(e, 1)
	p.Level2(e, 1, 0.5)
	p.RooflineModel()
}

// TestLinkAxisSharing pins the dependency-key contract for a link axis:
// two platforms differing only in link generation (bandwidth, latency,
// overhead) share the peak-usage, Level-1 and scaling-curve entries —
// none of those sub-results can read the link — but compute their own
// Level-2 and roofline entries, which read the link's data bandwidth.
func TestLinkAxisSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full profiles on two platforms; the full tier covers it")
	}
	c := NewSharedCache()
	base := machine.Default()
	alt := base.WithName("swept-gen").WithLink(
		base.Link.WithBandwidth(26e9, 62e9).WithLatency(380e-9).WithOverhead(1.25))
	e := registry.All()[0]

	pa := NewProfilerShared(base, c)
	profileAll(pa, e)
	before := sizesOf(c)

	pb := NewProfilerShared(alt, c)
	profileAll(pb, e)
	after := sizesOf(c)

	if after.peak != before.peak || after.l1 != before.l1 || after.curve != before.curve {
		t.Errorf("link-only platform change grew link-independent levels: peak %d->%d, l1 %d->%d, curve %d->%d",
			before.peak, after.peak, before.l1, after.l1, before.curve, after.curve)
	}
	if after.l2 != before.l2+1 {
		t.Errorf("l2 entries %d -> %d, want +1: Level-2 reads the link's data bandwidth", before.l2, after.l2)
	}
	if after.roofline != before.roofline+1 {
		t.Errorf("roofline entries %d -> %d, want +1: the roofline reads the link's data bandwidth", before.roofline, after.roofline)
	}
	// The shared entries really are shared results, not coincidentally
	// equal ones.
	if !reflect.DeepEqual(pa.Level1(e, 1), pb.Level1(e, 1)) {
		t.Error("Level-1 reports differ across link-only platform variants")
	}
	if pa.PeakUsage(e, 1) != pb.PeakUsage(e, 1) {
		t.Error("peak usage differs across link-only platform variants")
	}
}

// TestLatencyAxisSharesLevel2 pins the finer grain of the Level-2 key: the
// report carries capacity splits and bandwidth ratios but no phase-time
// values, so a platform differing only in link *latency* shares even the
// Level-2 entry (a latency axis recomputes nothing in the profile cache).
func TestLatencyAxisSharesLevel2(t *testing.T) {
	if testing.Short() {
		t.Skip("drives Level-2 on two platforms; the full tier covers it")
	}
	c := NewSharedCache()
	base := machine.Default()
	pa := NewProfilerShared(base, c)
	pa.Level2(e0(), 1, 0.5)
	before := sizesOf(c)

	lagged := base.WithName("swept-lat").WithLink(base.Link.WithLatency(base.Link.Latency + 200e-9))
	pb := NewProfilerShared(lagged, c)
	rep := pb.Level2(e0(), 1, 0.5)
	after := sizesOf(c)
	if after != before {
		t.Errorf("latency-only platform change grew the cache: %+v -> %+v", before, after)
	}
	if !reflect.DeepEqual(rep, pa.Level2(e0(), 1, 0.5)) {
		t.Error("Level-2 reports differ across latency-only platform variants")
	}
}

func e0() registry.Entry { return registry.All()[0] }

// TestCapacityFractionSharing pins the other half of the contract: two
// cells differing only in the local capacity fraction share the Level-1
// profile (measured with the remote tier disabled, so the split cannot
// reach it) but compute their own Level-2 entries.
func TestCapacityFractionSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("drives Level-1/2 profiles; the full tier covers it")
	}
	c := NewSharedCache()
	p := NewProfilerShared(machine.Default(), c)
	e := e0()
	p.Level1(e, 1)
	p.Level2(e, 1, 0.50)
	before := sizesOf(c)

	p.Level1(e, 1) // same key: a fraction is not even an input here
	p.Level2(e, 1, 0.25)
	after := sizesOf(c)
	if after.l1 != before.l1 {
		t.Errorf("l1 entries %d -> %d, want unchanged across capacity fractions", before.l1, after.l1)
	}
	if after.l2 != before.l2+1 {
		t.Errorf("l2 entries %d -> %d, want +1: the fraction is a Level-2 key field", before.l2, after.l2)
	}
}

// TestSingleFlightOneComputePerKey hammers one shared cache from 8
// concurrent workers over a common key set (run under -race in CI): every
// distinct key computes exactly once, every caller gets the computed
// value, and the counter algebra holds — Misses equals distinct keys,
// and every other lookup is a hit or an in-flight join.
func TestSingleFlightOneComputePerKey(t *testing.T) {
	const keys, workers = 16, 8
	c := NewSharedCache()
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for k := 0; k < keys; k++ {
				k := k
				key := execKey{workload: fmt.Sprintf("w%d", k), scale: k}
				got := cached(c, c.peak, key, func() uint64 {
					computes[k].Add(1)
					time.Sleep(200 * time.Microsecond) // widen the join window
					return uint64(k) * 3
				})
				if got != uint64(k)*3 {
					t.Errorf("key %d: got %d, want %d", k, got, uint64(k)*3)
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	for k := range computes {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", k, n)
		}
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("Misses = %d, want %d (one per distinct key)", st.Misses, keys)
	}
	if total := st.Hits + st.Joins + st.Misses; total != keys*workers {
		t.Errorf("Hits+Joins+Misses = %d, want %d (every lookup counted once)", total, keys*workers)
	}
}

// TestConcurrentProfilersShareOneCompute is the same single-flight
// guarantee through the public surface: 8 profilers on one platform and
// cache, racing the same Level-2 profile, leave exactly as many misses as
// resident keys.
func TestConcurrentProfilersShareOneCompute(t *testing.T) {
	if testing.Short() {
		t.Skip("races 8 full Level-2 profiles; TestSingleFlightOneComputePerKey covers the short tier")
	}
	c := NewSharedCache()
	e := e0()
	var wg sync.WaitGroup
	reps := make([]Level2Report, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i] = NewProfilerShared(machine.Default(), c).Level2(e, 1, 0.5)
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if !reflect.DeepEqual(reps[0], reps[i]) {
			t.Fatalf("profiler %d returned a different Level-2 report", i)
		}
	}
	if st := c.Stats(); int(st.Misses) != c.Entries() {
		t.Errorf("Misses = %d, resident keys = %d; want equal (exactly one compute per key)", st.Misses, c.Entries())
	}
}
