// Package textplot renders the paper's tables and figures as plain-text
// artifacts: aligned tables, horizontal bar charts, line/series plots on a
// character grid, and box-and-whisker summaries. Every experiment driver
// (internal/experiments) reduces its structured result to one of these
// renderers, so the CLI and the benchmark harness print the same rows and
// series the paper reports.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with column alignment and a header rule.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// TrimFloat is the raw-float64 cell rule AddRow applies: integral values
// print plainly, everything else with three significant digits. Exported so
// the report package's units-aware cells reproduce table cells exactly.
func TrimFloat(v float64) string { return trimFloat(v) }

// BarChart renders labeled horizontal bars scaled to a maximum width.
type BarChart struct {
	Title string
	// Width is the maximum bar width in characters (default 50).
	Width int
	// Unit is appended to the printed value.
	Unit   string
	labels []string
	values []float64
}

// NewBarChart returns an empty chart.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 50} }

// Add appends one labeled bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxv := 0.0
	maxl := 0
	for i, v := range c.values {
		if v > maxv {
			maxv = v
		}
		if len(c.labels[i]) > maxl {
			maxl = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, v := range c.values {
		n := 0
		if maxv > 0 && v > 0 {
			n = int(v / maxv * float64(width))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&b, "%s |%s %s%s\n", pad(c.labels[i], maxl), strings.Repeat("#", n), trimFloat(v), c.Unit)
	}
	return b.String()
}

// Series is one named line of (x, y) points for a Plot.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders one or more series on a character grid with axis ranges.
// Each series uses a distinct marker; overlapping points show the later
// series' marker.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// Cols/Rows is the grid size (default 64x20).
	Cols, Rows int
	series     []Series
}

var markers = []byte{'*', 'o', '+', 'x', '@', '$', '%', '&'}

// NewPlot returns an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Cols: 64, Rows: 20}
}

// Add appends a named series. X and Y must be the same length.
func (p *Plot) Add(name string, x, y []float64) {
	if len(x) != len(y) {
		panic("textplot: series length mismatch")
	}
	p.series = append(p.series, Series{Name: name, X: x, Y: y})
}

// String renders the grid, axes, and a marker legend.
func (p *Plot) String() string {
	cols, rows := p.Cols, p.Rows
	if cols <= 0 {
		cols = 64
	}
	if rows <= 0 {
		rows = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	npts := 0
	for _, s := range p.series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			npts++
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	if npts == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range p.series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(cols-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(rows-1))
			grid[rows-1-cy][cx] = mk
		}
	}
	fmt.Fprintf(&b, "%s max=%s\n", p.YLabel, trimFloat(ymax))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", cols))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s: %s .. %s   (y min=%s)\n", p.XLabel, trimFloat(xmin), trimFloat(xmax), trimFloat(ymin))
	for si, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Box renders one five-number summary as a horizontal box-and-whisker line
// scaled to [lo, hi] over width characters.
func Box(label string, min, q1, med, q3, max, lo, hi float64, width int) string {
	if width <= 0 {
		width = 50
	}
	if hi <= lo {
		hi = lo + 1
	}
	col := func(v float64) int {
		c := int((v - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	line := []byte(strings.Repeat(" ", width))
	cmin, cq1, cmed, cq3, cmax := col(min), col(q1), col(med), col(q3), col(max)
	for i := cmin; i <= cmax; i++ {
		line[i] = '-'
	}
	for i := cq1; i <= cq3; i++ {
		line[i] = '='
	}
	line[cmin] = '|'
	line[cmax] = '|'
	line[cmed] = 'M'
	return fmt.Sprintf("%s [%s] med=%s", label, string(line), trimFloat(med))
}
