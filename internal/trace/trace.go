// Package trace records and replays the operation stream a workload drives
// through an emulated machine. This is the trace-driven backbone of the
// methodology: a workload is executed (and recorded) once, then the trace
// is replayed onto machines with different memory configurations — capacity
// splits, prefetcher settings, placement policies — without re-running the
// application, exactly how the paper reasons about deployment options from
// one set of profiled runs.
//
// The format is a compact binary stream (varint-encoded deltas for
// addresses, one byte per opcode) so full application traces stay small
// enough to keep on disk next to the profile.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/machine"
	"repro/internal/mem"
)

// Op is the operation kind of one trace event.
type Op byte

// Operation kinds.
const (
	OpAlloc Op = iota + 1
	OpFree
	OpRead
	OpWrite
	OpFlops
	OpPhaseStart
	OpPhaseEnd
	OpTick
)

// Event is one decoded trace record.
type Event struct {
	Op Op
	// Name is the region name (OpAlloc) or phase name (OpPhaseStart/End).
	Name string
	// Addr is the region base (OpAlloc/OpFree) or access address.
	Addr uint64
	// N is the region/access size in bytes.
	N uint64
	// Placement applies to OpAlloc.
	Placement mem.Placement
	// Flops applies to OpFlops.
	Flops float64
}

const magic = "MDTR1\n"

// Writer encodes events to a stream.
type Writer struct {
	w   *bufio.Writer
	err error
	n   int
}

// NewWriter writes the header and returns an encoder.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Events returns the number of events written so far.
func (w *Writer) Events() int { return w.n }

func (w *Writer) varint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if _, err := w.w.Write(buf[:n]); err != nil && w.err == nil {
		w.err = err
	}
}

func (w *Writer) str(s string) {
	w.varint(uint64(len(s)))
	if _, err := w.w.WriteString(s); err != nil && w.err == nil {
		w.err = err
	}
}

// Write appends one event.
func (w *Writer) Write(e Event) {
	if w.err != nil {
		return
	}
	if err := w.w.WriteByte(byte(e.Op)); err != nil {
		if w.err == nil {
			w.err = err
		}
		return
	}
	switch e.Op {
	case OpAlloc:
		w.str(e.Name)
		w.varint(e.Addr)
		w.varint(e.N)
		w.varint(uint64(e.Placement))
	case OpFree:
		w.varint(e.Addr)
	case OpRead, OpWrite:
		w.varint(e.Addr)
		w.varint(e.N)
	case OpFlops:
		w.varint(math.Float64bits(e.Flops))
	case OpPhaseStart, OpPhaseEnd:
		w.str(e.Name)
	case OpTick:
	default:
		w.err = fmt.Errorf("trace: unknown op %d", e.Op)
	}
	w.n++
}

// Flush completes the stream. Call before using the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes events from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic (not a memdis trace)")
	}
	return &Reader{r: br}, nil
}

func (r *Reader) str() (string, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Next decodes one event; io.EOF signals a clean end of trace.
func (r *Reader) Next() (Event, error) {
	op, err := r.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF passes through
	}
	e := Event{Op: Op(op)}
	fail := func(err error) (Event, error) {
		return Event{}, fmt.Errorf("trace: decoding op %d: %w", op, err)
	}
	switch e.Op {
	case OpAlloc:
		if e.Name, err = r.str(); err != nil {
			return fail(err)
		}
		if e.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
		if e.N, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
		pl, err := binary.ReadUvarint(r.r)
		if err != nil {
			return fail(err)
		}
		e.Placement = mem.Placement(pl)
	case OpFree:
		if e.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
	case OpRead, OpWrite:
		if e.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
		if e.N, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
	case OpFlops:
		bits, err := binary.ReadUvarint(r.r)
		if err != nil {
			return fail(err)
		}
		e.Flops = math.Float64frombits(bits)
	case OpPhaseStart, OpPhaseEnd:
		if e.Name, err = r.str(); err != nil {
			return fail(err)
		}
	case OpTick:
	default:
		return Event{}, fmt.Errorf("trace: unknown op %d", op)
	}
	return e, nil
}

// Recorder implements machine.Hook, streaming every operation to a Writer.
type Recorder struct {
	W *Writer
}

var _ machine.Hook = Recorder{}

// OnAlloc implements machine.Hook.
func (r Recorder) OnAlloc(reg *mem.Region, pl mem.Placement) {
	r.W.Write(Event{Op: OpAlloc, Name: reg.Name, Addr: reg.Base, N: reg.Size, Placement: pl})
}

// OnFree implements machine.Hook.
func (r Recorder) OnFree(reg *mem.Region) { r.W.Write(Event{Op: OpFree, Addr: reg.Base}) }

// OnAccess implements machine.Hook.
func (r Recorder) OnAccess(addr, n uint64, write bool) {
	op := OpRead
	if write {
		op = OpWrite
	}
	r.W.Write(Event{Op: op, Addr: addr, N: n})
}

// OnFlops implements machine.Hook.
func (r Recorder) OnFlops(n float64) { r.W.Write(Event{Op: OpFlops, Flops: n}) }

// OnPhase implements machine.Hook.
func (r Recorder) OnPhase(name string, start bool) {
	op := OpPhaseEnd
	if start {
		op = OpPhaseStart
	}
	r.W.Write(Event{Op: op, Name: name})
}

// OnTick implements machine.Hook.
func (r Recorder) OnTick() { r.W.Write(Event{Op: OpTick}) }

// Record executes the workload on the machine while streaming its
// operations to w.
func Record(m *machine.Machine, run func(*machine.Machine), w io.Writer) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	m.SetHook(Recorder{W: tw})
	defer m.SetHook(nil)
	run(m)
	return tw.Flush()
}

// Replay applies a recorded trace to a fresh machine. Region bases are
// remapped through the replay allocator, so the trace can be replayed onto
// machines with different capacities, placement behaviour, or prefetcher
// settings than the one it was recorded on.
func Replay(m *machine.Machine, r io.Reader) error {
	tr, err := NewReader(r)
	if err != nil {
		return err
	}
	// Map recorded region base -> replayed region, for address remapping.
	regions := map[uint64]*mem.Region{}
	remap := func(addr uint64) (uint64, bool) {
		// Find the recorded region containing addr. Linear scan over live
		// regions; traces carry few live regions at a time.
		for base, reg := range regions {
			if addr >= base && addr < base+reg.Size {
				return reg.Base + (addr - base), true
			}
		}
		return 0, false
	}
	open := false
	for {
		e, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch e.Op {
		case OpAlloc:
			regions[e.Addr] = m.AllocPlaced(e.Name, e.N, e.Placement)
		case OpFree:
			reg, ok := regions[e.Addr]
			if !ok {
				return fmt.Errorf("trace: free of unknown region %#x", e.Addr)
			}
			delete(regions, e.Addr)
			m.Free(reg)
		case OpRead, OpWrite:
			a, ok := remap(e.Addr)
			if !ok {
				return fmt.Errorf("trace: access to unmapped address %#x", e.Addr)
			}
			if e.Op == OpRead {
				m.Read(a, e.N)
			} else {
				m.Write(a, e.N)
			}
		case OpFlops:
			m.AddFlops(e.Flops)
		case OpPhaseStart:
			m.StartPhase(e.Name)
			open = true
		case OpPhaseEnd:
			if open {
				m.EndPhase()
				open = false
			}
		case OpTick:
			m.Tick()
		}
	}
	if open {
		m.EndPhase()
	}
	return nil
}
