// Package stats provides deterministic random number generation and the
// descriptive statistics used throughout the experiment drivers: percentiles,
// five-number summaries, means, and least-squares fits.
//
// All experiments in this repository must be reproducible run-to-run, so the
// package deliberately offers only explicitly seeded generators.
package stats

import "math"

// RNG is a deterministic 64-bit pseudo-random generator (xoshiro256**).
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, so that
// closely spaced seeds still produce well-separated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		v := r.Float64()
		if u == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
