package stats

import "testing"

// FuzzStreamSplit fuzzes the substream derivation invariants the whole
// concurrent experiment engine rests on:
//
//   - Split(n)[i] is exactly Stream(i), for every i — the two derivation
//     paths must agree so sequential and parallel sweeps see the same
//     substreams;
//   - re-deriving Stream(i) yields the same stream (derivation is a pure
//     function of base state and index, and never advances the base);
//   - distinct substreams do not collide on their opening draws (the jump
//     polynomial spacing is doing its job), and none replays the base
//     stream.
//
// `go test` replays the seed corpus; `go test -fuzz FuzzStreamSplit
// ./internal/stats` explores new seeds.
func FuzzStreamSplit(f *testing.F) {
	f.Add(uint64(0), uint8(2))
	f.Add(uint64(1), uint8(16))
	f.Add(uint64(0xdeadbeef), uint8(7))
	f.Add(uint64(1)<<63, uint8(32))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		n := int(nRaw%32) + 2
		base := NewRNG(seed)
		baseState := *base

		split := NewRNG(seed).Split(n)
		if len(split) != n {
			t.Fatalf("Split(%d) returned %d streams", n, len(split))
		}
		for i := 0; i < n; i++ {
			a, b := base.Stream(i), split[i]
			for k := 0; k < 4; k++ {
				if av, bv := a.Uint64(), b.Uint64(); av != bv {
					t.Fatalf("seed %#x: Stream(%d) draw %d = %#x, Split[%d] = %#x",
						seed, i, k, av, i, bv)
				}
			}
		}
		if *base != baseState {
			t.Fatalf("seed %#x: Stream advanced the base generator", seed)
		}

		// Re-derivation determinism.
		i := n / 2
		x, y := base.Stream(i), base.Stream(i)
		for k := 0; k < 4; k++ {
			if xv, yv := x.Uint64(), y.Uint64(); xv != yv {
				t.Fatalf("seed %#x: re-derived Stream(%d) diverged at draw %d: %#x vs %#x",
					seed, i, k, xv, yv)
			}
		}

		// No collisions on the opening draws across substreams and the base
		// stream itself. Each value is a fresh 64-bit draw from a stream
		// 2^192 steps from its neighbours; any equality is a derivation bug,
		// not chance.
		seen := map[uint64]int{NewRNG(seed).Uint64(): -1}
		for j, r := range NewRNG(seed).Split(n) {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("seed %#x: streams %d and %d opened with the same draw %#x",
					seed, prev, j, v)
			}
			seen[v] = j
		}
	})
}
