package workloads

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

func newMachine() *machine.Machine { return machine.New(machine.Default()) }

func TestVecAllocatesAndAddresses(t *testing.T) {
	m := newMachine()
	v := NewVec(m, "v", 100)
	if v.Len() != 100 || len(v.Data) != 100 {
		t.Fatalf("len = %d", v.Len())
	}
	if v.Addr(1)-v.Addr(0) != 8 {
		t.Errorf("float64 stride should be 8 bytes")
	}
	if v.Region().Name != "v" || v.Region().Size != 800 {
		t.Errorf("region mismatch: %+v", v.Region())
	}
}

func TestVecReadWriteGenerateTraffic(t *testing.T) {
	m := newMachine()
	v := NewVec(m, "v", 1<<14)
	m.StartPhase("p")
	v.WriteRange(0, v.Len())
	v.ReadRange(0, v.Len())
	ph := m.EndPhase()
	if ph.TotalBytes() == 0 {
		t.Fatal("sequential scan should move memory")
	}
	if ph.Cache.DemandAccesses == 0 {
		t.Fatal("accesses should hit the cache model")
	}
}

func TestVecReadAtWriteAt(t *testing.T) {
	m := newMachine()
	v := NewVec(m, "v", 8)
	v.WriteAt(3, 42.5)
	if got := v.ReadAt(3); got != 42.5 {
		t.Fatalf("ReadAt = %v, want 42.5", got)
	}
}

func TestVecRangeNoopOnEmpty(t *testing.T) {
	m := newMachine()
	v := NewVec(m, "v", 8)
	m.StartPhase("p")
	v.ReadRange(0, 0)
	v.WriteRange(3, -1)
	ph := m.EndPhase()
	if ph.Cache.DemandAccesses != 0 {
		t.Fatalf("empty ranges should not touch the cache: %+v", ph.Cache)
	}
}

func TestIntVecStrideAndTraffic(t *testing.T) {
	m := newMachine()
	v := NewIntVec(m, "iv", 64)
	if v.Addr(1)-v.Addr(0) != 4 {
		t.Errorf("int32 stride should be 4 bytes")
	}
	v.WriteAt(5, 7)
	if got := v.ReadAt(5); got != 7 {
		t.Fatalf("ReadAt = %d, want 7", got)
	}
	if v.Len() != 64 {
		t.Fatalf("Len = %d", v.Len())
	}
}

func TestVecPlacedRemote(t *testing.T) {
	m := newMachine()
	// Cap local so placement is observable.
	cfg := machine.Default().WithLocalCapacity(1 << 20)
	m = machine.New(cfg)
	v := NewVecPlaced(m, "pool-array", 1<<15, mem.PlaceRemote)
	m.StartPhase("p")
	v.ReadRange(0, v.Len())
	ph := m.EndPhase()
	if ph.RemoteBytes == 0 {
		t.Fatal("PlaceRemote array should generate remote traffic")
	}
	if ph.LocalBytes > ph.RemoteBytes/10 {
		t.Fatalf("traffic should be (almost) all remote: local=%d remote=%d",
			ph.LocalBytes, ph.RemoteBytes)
	}
}

func TestVecFreeReleasesCapacity(t *testing.T) {
	cfg := machine.Default().WithLocalCapacity(1 << 20)
	m := machine.New(cfg)
	a := NewVec(m, "a", (1<<20)/8) // fills local exactly
	m.StartPhase("p1")
	a.WriteRange(0, a.Len())
	m.EndPhase()
	a.Free()
	// After the free, a new allocation must land local again (the §7.1
	// free-the-scratch mechanism).
	b := NewVec(m, "b", 1024)
	m.StartPhase("p2")
	b.WriteRange(0, b.Len())
	ph := m.EndPhase()
	if ph.RemoteBytes != 0 {
		t.Fatalf("freed local capacity should be reused: remote=%d", ph.RemoteBytes)
	}
}
