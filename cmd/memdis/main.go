// Command memdis regenerates the paper's tables and figures on the emulated
// platform. Usage:
//
//	memdis all                        # every experiment in paper order
//	memdis -j 8 all                   # same, fanned out over 8 workers
//	memdis -j 0 all                   # use every core
//	memdis figure9                    # one experiment (figureN or tableN)
//	memdis -platform cxl-gen5 figure9 # same analysis on an alternate platform
//	memdis -format json figure9       # machine-readable artifact on stdout
//	memdis -out artifacts all         # write figureN.txt|.json|.csv files
//	memdis sweep                      # default parameter-sweep campaign
//	memdis sweep -axis gen=0,5,6 -axis frac=0.25:0.75:0.25
//	memdis serve                      # serve the versioned HTTP API
//	memdis -warm default serve        # same, pre-warming the artifact caches
//	memdis -runs 5 -workloads HPL all # reduced Monte-Carlo scale
//	memdis list                       # list experiment ids
//	memdis platforms                  # list platform scenarios
//
// The CLI is a thin shell over repro.Service: every flag maps to a
// functional option (-j to repro.WithWorkers, -platform to
// repro.WithDefaultPlatform, -runs and -workloads to repro.WithRuns and
// repro.WithWorkloads, -warm to repro.WithWarm), and every subcommand
// calls a context-first Service method.
//
// The -warm flag (serve only) drives the startup cache warm: the listed
// scenarios ("default" = the -platform scenario) are computed and
// rendered in the background while the server already answers requests,
// and /healthz flips its "ready" field once the warm completes — the
// readiness signal a load balancer keys on. The serving layer itself adds
// strong ETags with If-None-Match 304s, Cache-Control, gzip negotiation
// and request coalescing on every artifact route; `sbench` (cmd/sbench)
// is the companion load harness that measures it.
//
// The -j flag bounds the worker pool for both the experiment-level and the
// intra-driver fan-out. Output is byte-identical for any -j value: every
// randomized simulation owns a deterministic RNG substream keyed by its run
// index, never by worker or completion order.
//
// The -platform flag re-runs the selected experiments on a registered
// scenario (see `memdis platforms`): the drivers use the scenario's link,
// timing constants and capacity sweep in place of the testbed's.
//
// The -format flag picks the stdout renderer (text, json or csv); -out DIR
// additionally writes each selected artifact in every format into DIR. Both
// draw from the service's render-once artifact store, as does
// `memdis serve`, which mounts the versioned HTTP API on -addr:
// GET /v1/artifacts/<id>, /v1/platforms, /v1/workloads, /v1/sweep and
// /healthz, all sharing one JSON error envelope and Accept/?format=
// content negotiation — plus the pre-/v1 paths
// (/artifacts/<id>.<ext>, /sweep) as deprecated aliases. See docs/API.md.
//
// The sweep subcommand runs a parameter-sweep campaign over generated
// scenarios: each -axis flag declares one swept dimension (gen, lat, bw,
// frac — see internal/sweep), their cross-product derives one scenario per
// cell from the -platform base system, and the campaign emits the "sweep"
// and "sensitivity" artifacts through the same store, -format and -out
// plumbing as the fixed experiments. With no -axis flags the canonical
// generation x capacity-fraction grid runs — exactly the grid behind
// `memdis sweep` and `memdis sensitivity` as plain artifact ids.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memdis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdis", flag.ContinueOnError)
	workers := fs.Int("j", 1, "parallel workers (0 = all cores)")
	platform := fs.String("platform", "baseline", "platform scenario (see `memdis platforms`)")
	format := fs.String("format", "text", "stdout renderer: text, json or csv")
	outDir := fs.String("out", "", "also write each artifact as <id>.txt|.json|.csv into this directory")
	addr := fs.String("addr", "localhost:8080", "listen address for `memdis serve`")
	runs := fs.Int("runs", 0, "Monte-Carlo scheduler runs per comparison (0 = the paper's 100)")
	workloadList := fs.String("workloads", "", "comma-separated workload subset (default: all six)")
	warm := fs.String("warm", "", "`memdis serve` startup cache warm: comma-separated scenarios, or \"default\" for the -platform scenario")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: memdis [-j N] [-platform S] [-format F] [-out DIR] <all|serve|sweep|list|platforms|%s|...>", repro.ExperimentIDs()[0])
	}
	f, err := repro.ParseArtifactFormat(*format)
	if err != nil {
		return err
	}
	// Resolve the platform before service construction so an unknown name
	// surfaces as the bare names-listing error, not a wrapped one.
	if _, err := repro.PlatformNamed(*platform); err != nil {
		return err
	}
	opts := []repro.Option{
		repro.WithWorkers(*workers),
		repro.WithDefaultPlatform(*platform),
	}
	if *runs > 0 {
		opts = append(opts, repro.WithRuns(*runs))
	}
	if *workloadList != "" {
		entries, err := parseWorkloads(*workloadList)
		if err != nil {
			return err
		}
		opts = append(opts, repro.WithWorkloads(entries...))
	}
	if *warm != "" {
		if args[0] != "serve" {
			return fmt.Errorf("-warm only applies to `memdis serve`")
		}
		var warmPlatforms []string
		if *warm != "default" {
			warmPlatforms = strings.Split(*warm, ",")
			for i := range warmPlatforms {
				warmPlatforms[i] = strings.TrimSpace(warmPlatforms[i])
			}
		}
		opts = append(opts, repro.WithWarm(warmPlatforms...))
	}
	ctx := context.Background()
	// The sweep subcommand builds its own service carrying the -runs and
	// -workloads options; every other subcommand shares this one.
	if args[0] == "sweep" {
		return runSweep(ctx, args[1:], opts, *platform, f, *outDir)
	}
	svc, err := repro.New(opts...)
	if err != nil {
		return err
	}
	switch args[0] {
	case "list":
		for _, id := range svc.IDs() {
			fmt.Println(id)
		}
		return nil
	case "platforms":
		for _, sc := range svc.Scenarios() {
			fmt.Printf("%-12s  %s\n", sc.Name, sc.Description)
		}
		return nil
	case "serve":
		if len(args) > 1 {
			return fmt.Errorf("unexpected arguments after \"serve\": %v (flags go before the subcommand: memdis -addr HOST:PORT serve)", args[1:])
		}
		if *warm != "" {
			done := svc.StartWarm(ctx)
			fmt.Fprintf(os.Stderr, "memdis: warming caches for %s in the background (/healthz reports readiness)\n", *warm)
			go func() {
				<-done
				if err := svc.WarmErr(); err != nil {
					fmt.Fprintf(os.Stderr, "memdis: cache warm failed: %v\n", err)
					return
				}
				fmt.Fprintln(os.Stderr, "memdis: cache warm complete, server ready")
			}()
		}
		fmt.Fprintf(os.Stderr, "memdis: serving the /v1 API on http://%s/ (default platform %s)\n", *addr, *platform)
		return http.ListenAndServe(*addr, svc.Handler())
	case "all":
		if len(args) > 1 {
			// Catch `memdis all -j 4`: flag parsing stops at the first
			// non-flag argument, so a trailing -j would be silently
			// ignored instead of changing the worker count.
			return fmt.Errorf("unexpected arguments after \"all\": %v (flags go before the subcommand: memdis -j N all)", args[1:])
		}
		// Compute the whole artifact set with the experiment-level fan-out;
		// RunAll seeds the store, so emit only renders.
		if _, err := svc.RunAll(ctx, *platform); err != nil {
			return err
		}
		return emit(ctx, svc, *platform, svc.IDs(), f, *outDir, true)
	default:
		// Canonicalize aliases ("fig9" -> "figure9") so store keys, served
		// URLs and -out filenames always match the document's artifact id.
		ids := make([]string, len(args))
		for i, id := range args {
			canon, err := repro.CanonicalArtifactID(id)
			if err != nil {
				return err
			}
			ids[i] = canon
		}
		return emit(ctx, svc, *platform, ids, f, *outDir, false)
	}
}

// runSweep implements the sweep subcommand: parse the axis declarations,
// build a service carrying the run-count and workload-subset options, run
// the campaign on the selected platform's suite, seed the store with the
// two resulting documents and emit them like any other artifact pair.
func runSweep(ctx context.Context, args []string, opts []repro.Option, platform string, f repro.ArtifactFormat, outDir string) error {
	fs := flag.NewFlagSet("memdis sweep", flag.ContinueOnError)
	var axes []repro.SweepAxis
	fs.Func("axis", "swept axis, name=v1,v2,... or name=lo:hi:step (repeatable; axes: gen, lat, bw, frac)", func(s string) error {
		a, err := repro.ParseSweepAxis(s)
		if err != nil {
			return err
		}
		axes = append(axes, a)
		return nil
	})
	runs := fs.Int("runs", 0, "Monte-Carlo scheduler runs per cell (0 = the paper's 100)")
	workloadList := fs.String("workloads", "", "comma-separated workload subset (default: all six)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected arguments after \"sweep\" flags: %v", rest)
	}
	if *runs > 0 {
		opts = append(opts, repro.WithRuns(*runs))
	}
	if *workloadList != "" {
		entries, err := parseWorkloads(*workloadList)
		if err != nil {
			return err
		}
		opts = append(opts, repro.WithWorkloads(entries...))
	}
	svc, err := repro.New(opts...)
	if err != nil {
		return err
	}
	g, err := svc.Grid(platform, axes...)
	if err != nil {
		return err
	}
	camp, err := svc.Sweep(ctx, g)
	if err != nil {
		return err
	}
	svc.Store().Put(platform, camp.Sweep())
	svc.Store().Put(platform, camp.Sensitivity())
	return emit(ctx, svc, platform, []string{"sweep", "sensitivity"}, f, outDir, false)
}

// parseWorkloads resolves a comma-separated workload-name list against the
// registry — shared by the global -workloads flag and the sweep
// subcommand's local one.
func parseWorkloads(list string) ([]repro.WorkloadEntry, error) {
	var entries []repro.WorkloadEntry
	for _, name := range strings.Split(list, ",") {
		e, err := repro.Workload(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// emit prints each artifact in the chosen format (with the historical
// banner for `all` text output) and, when outDir is set, writes the whole
// artifact set in every format there.
func emit(ctx context.Context, svc *repro.Service, platform string, ids []string, f repro.ArtifactFormat, outDir string, banner bool) error {
	for _, id := range ids {
		out, err := svc.Rendered(ctx, repro.ArtifactRequest{Platform: platform, Artifact: id}, f)
		if err != nil {
			return err
		}
		switch {
		case f == repro.FormatText && banner:
			fmt.Printf("==== %s ====\n%s\n", id, out)
		case f == repro.FormatText:
			// The historical `memdis <id>` layout: Println adds the blank
			// line that separated consecutive artifacts.
			fmt.Println(out)
		default:
			fmt.Print(out)
		}
	}
	if outDir == "" {
		return nil
	}
	paths, err := svc.WriteDir(ctx, outDir, platform, ids)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memdis: wrote %d artifact files to %s\n", len(paths), outDir)
	return nil
}
