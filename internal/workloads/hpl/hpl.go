// Package hpl implements the High Performance LINPACK kernel of the paper's
// Table 2: dense LU factorization with partial pivoting in a blocked
// right-looking formulation, followed by the triangular solves.
//
// Phase structure matches the paper's profile: p1 generates the system
// (streaming writes over the whole footprint) and p2 factorizes and solves
// (high arithmetic intensity, uniform access over the matrix with the
// trailing submatrix — the end of the allocation — touched quadratically
// more often, which is what pushes HPL's remote access ratio above the
// capacity reference in Figure 9 when the matrix tail spills to the pool).
package hpl

import (
	"math"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// HPL is one HPL instance. Construct with New, run with Run.
type HPL struct {
	// N is the matrix order; NB the blocking factor.
	N, NB int
	seed  uint64

	// After Run:
	// X is the computed solution and RelResidual the scaled residual
	// ||Ax-b||_inf / (||A||_inf * ||x||_inf * N), the HPL acceptance
	// metric (should be O(machine epsilon)).
	X           []float64
	RelResidual float64
}

// New returns an HPL instance at the given input scale. Scales 1, 2, 4
// follow the paper's 1:2:4 memory-usage ratio (N grows by sqrt(2) per
// step, like the paper's N=20000/28280/40000 inputs).
func New(scale int) *HPL {
	n := 576
	switch scale {
	case 2:
		n = 816
	case 4:
		n = 1152
	}
	// NB=192 keeps the blocked update's arithmetic intensity (~NB/16
	// flop/byte) high enough that factorization is compute-bound, as real
	// HPL is (NB=192..256 at production scale) — the property behind its
	// low interference sensitivity and low induced interference.
	return &HPL{N: n, NB: 192, seed: 0x48504c} // "HPL"
}

// Name implements workloads.Workload.
func (h *HPL) Name() string { return "HPL" }

// Run implements workloads.Workload.
func (h *HPL) Run(m *machine.Machine) {
	n, nb := h.N, h.NB
	rng := stats.NewRNG(h.seed)

	// ---- p1: generate the system -------------------------------------
	m.StartPhase("p1")
	a := workloads.NewVec(m, "A", n*n)
	b := workloads.NewVec(m, "b", n)
	for i := 0; i < n; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] = rng.Float64() - 0.5
		}
		a.WriteRange(i*n, n)
		m.AddFlops(float64(n)) // RNG transform cost proxy
	}
	for i := 0; i < n; i++ {
		b.Data[i] = rng.Float64() - 0.5
	}
	b.WriteRange(0, n)
	// Keep a verification copy outside the simulated footprint.
	orig := append([]float64(nil), a.Data...)
	origB := append([]float64(nil), b.Data...)
	m.EndPhase()

	// ---- p2: factorize and solve --------------------------------------
	// Panels are copied into a contiguous cache-resident buffer and
	// factored there — the structure of real HPL, where all panel
	// operations (pivot search, scaling, rank-1 updates) hit cache and
	// the memory traffic is the prefetch-friendly row streams of the
	// trailing update.
	m.StartPhase("p2")
	piv := make([]int, n)
	panel := workloads.NewVec(m, "panel", n*nb)
	for k := 0; k < n; k += nb {
		kb := min(nb, n-k)
		h.loadPanel(m, a, panel, k, kb)
		h.panelFactor(m, a, panel, piv, k, kb)
		if k+kb < n {
			h.trailingUpdate(m, a, panel, k, kb)
		} else {
			h.storePanelTail(m, a, panel, k, kb)
		}
		m.Tick()
	}
	x := h.solve(m, a, b, piv)
	h.X = x
	m.EndPhase()

	h.RelResidual = relResidual(orig, origB, x)
}

// loadPanel copies the panel block A[k:n, k:k+kb] into the contiguous
// buffer (row-major, kb-wide rows) and warms it: one sequential stream over
// the buffer keeps the whole panel cache-resident for the factorization.
func (h *HPL) loadPanel(m *machine.Machine, a, panel *workloads.Vec, k, kb int) {
	n := h.N
	rows := n - k
	for i := 0; i < rows; i++ {
		src := a.Data[(k+i)*n+k : (k+i)*n+k+kb]
		copy(panel.Data[i*kb:(i+1)*kb], src)
		a.ReadRange((k+i)*n+k, kb)
	}
	panel.WriteRange(0, rows*kb)
	panel.ReadRange(0, rows*kb)
}

// panelFactor factorizes the buffered panel with partial pivoting. The
// panel arithmetic is cache-blocked in real implementations, so its memory
// cost is the warm stream issued by loadPanel plus one write-back stream
// here; per-element panel operations run on the buffer without additional
// simulated traffic. Row interchanges are applied immediately to the full
// matrix as contiguous row swaps (and mirrored in the buffer), so buffer
// row i always corresponds to matrix row k+i.
func (h *HPL) panelFactor(m *machine.Machine, a, panel *workloads.Vec, piv []int, k, kb int) {
	n := h.N
	rows := n - k
	for jj := 0; jj < kb; jj++ {
		j := k + jj
		// Pivot search down buffer column jj (cache-blocked).
		p := jj
		best := math.Abs(panel.Data[jj*kb+jj])
		for i := jj; i < rows; i++ {
			if v := math.Abs(panel.Data[i*kb+jj]); v > best {
				best, p = v, i
			}
		}
		piv[j] = k + p
		if p != jj {
			// Mirror the interchange in the buffer...
			for c := 0; c < kb; c++ {
				panel.Data[jj*kb+c], panel.Data[p*kb+c] = panel.Data[p*kb+c], panel.Data[jj*kb+c]
			}
			// ...and swap the full matrix rows (contiguous streams).
			r1, r2 := j, k+p
			a.ReadRange(r1*n, n)
			a.ReadRange(r2*n, n)
			a.WriteRange(r1*n, n)
			a.WriteRange(r2*n, n)
			for c := 0; c < n; c++ {
				a.Data[r1*n+c], a.Data[r2*n+c] = a.Data[r2*n+c], a.Data[r1*n+c]
			}
		}
		pivot := panel.Data[jj*kb+jj]
		if pivot == 0 {
			continue // singular column; keep going like LINPACK does
		}
		// Scale multipliers and rank-1-update the panel's remainder.
		jb := kb - jj - 1
		for i := jj + 1; i < rows; i++ {
			lij := panel.Data[i*kb+jj] / pivot
			panel.Data[i*kb+jj] = lij
			if jb > 0 {
				src := panel.Data[jj*kb+jj+1 : (jj+1)*kb]
				dst := panel.Data[i*kb+jj+1 : (i+1)*kb]
				for c := range dst {
					dst[c] -= lij * src[c]
				}
				m.AddFlops(float64(2 * jb))
			}
		}
		m.AddFlops(float64(rows - jj - 1)) // the divisions
	}
	// Write-back stream of the factored panel.
	panel.WriteRange(0, rows*kb)
}

// trailingUpdate forms the U block rows and applies the blocked GEMM update
// A[k+kb:, k+kb:] -= L[k+kb:, k:k+kb] * U[k:k+kb, k+kb:]. The factored L
// values are written back from the panel buffer fused into each row's
// stream, so every memory access in this routine is a contiguous row scan.
func (h *HPL) trailingUpdate(m *machine.Machine, a, panel *workloads.Vec, k, kb int) {
	n := h.N
	j0 := k + kb
	w := n - j0
	// U block rows: write back the panel row and solve the unit-lower
	// triangle against the rows above; the whole row [k, n) streams once.
	for j := k; j < j0; j++ {
		jj := j - k
		copy(a.Data[j*n+k:j*n+j0], panel.Data[jj*kb:(jj+1)*kb])
		for t := k; t < j; t++ {
			ltj := a.Data[j*n+t]
			if ltj == 0 {
				continue
			}
			src := a.Data[t*n+j0 : t*n+j0+w]
			dst := a.Data[j*n+j0 : j*n+j0+w]
			for c := range dst {
				dst[c] -= ltj * src[c]
			}
			m.AddFlops(float64(2 * w))
		}
		a.ReadRange(j*n+k, n-k)
		a.WriteRange(j*n+k, n-k)
	}
	// GEMM: each trailing row streams once — L write-back, L reads from
	// the cached panel buffer, and the row update.
	for i := j0; i < n; i++ {
		bi := i - k
		copy(a.Data[i*n+k:i*n+j0], panel.Data[bi*kb:(bi+1)*kb])
		a.ReadRange(i*n+k, n-k)
		a.WriteRange(i*n+k, n-k)
		dst := a.Data[i*n+j0 : i*n+j0+w]
		for t := k; t < j0; t++ {
			lit := a.Data[i*n+t]
			if lit == 0 {
				continue
			}
			src := a.Data[t*n+j0 : t*n+j0+w]
			for c := range dst {
				dst[c] -= lit * src[c]
			}
		}
		m.AddFlops(float64(2 * kb * w))
	}
}

// storePanelTail writes the final panel's factored values back to the
// matrix (for the last block there is no trailing update to fuse into).
func (h *HPL) storePanelTail(m *machine.Machine, a, panel *workloads.Vec, k, kb int) {
	n := h.N
	for i := 0; i < n-k; i++ {
		copy(a.Data[(k+i)*n+k:(k+i)*n+k+kb], panel.Data[i*kb:i*kb+kb])
		a.WriteRange((k+i)*n+k, kb)
	}
}

// solve performs the pivoted forward and backward substitutions.
func (h *HPL) solve(m *machine.Machine, a, b *workloads.Vec, piv []int) []float64 {
	n := h.N
	y := append([]float64(nil), b.Data...)
	// Apply row interchanges.
	for j := 0; j < n; j++ {
		if p := piv[j]; p != j {
			y[j], y[p] = y[p], y[j]
		}
	}
	b.ReadRange(0, n)
	// Ly = b (unit lower).
	for i := 0; i < n; i++ {
		a.ReadRange(i*n, i)
		s := y[i]
		row := a.Data[i*n : i*n+i]
		for t, v := range row {
			s -= v * y[t]
		}
		y[i] = s
		m.AddFlops(float64(2 * i))
	}
	// Ux = y (upper).
	for i := n - 1; i >= 0; i-- {
		a.ReadRange(i*n+i, n-i)
		s := y[i]
		for t := i + 1; t < n; t++ {
			s -= a.Data[i*n+t] * y[t]
		}
		y[i] = s / a.Data[i*n+i]
		m.AddFlops(float64(2 * (n - i)))
	}
	b.WriteRange(0, n)
	return y
}

// relResidual is the HPL acceptance residual on the original system.
func relResidual(a, b, x []float64) float64 {
	n := len(x)
	normA, normX, normR := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		rowSum := 0.0
		r := b[i]
		for j := 0; j < n; j++ {
			v := a[i*n+j]
			rowSum += math.Abs(v)
			r -= v * x[j]
		}
		normA = math.Max(normA, rowSum)
		normR = math.Max(normR, math.Abs(r))
		normX = math.Max(normX, math.Abs(x[i]))
	}
	den := normA * normX * float64(n)
	if den == 0 {
		return math.Inf(1)
	}
	return normR / den
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
