// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns a structured result whose Report
// method reduces the measurements to a typed report.Doc; Render is the text
// rendering of that document (report.RenderText), byte-identical to the
// historical output. The cmd/memdis CLI and the root benchmark harness both
// call these drivers, so the printed artifacts and the benchmarked work are
// identical — and the same Doc feeds the JSON/CSV renderers and the
// artifact store.
//
// A Suite shares one profiler (and therefore its single-flight profile
// caches) across drivers so that composite invocations such as `memdis all`
// probe each workload input only once.
//
// The suite is a concurrent experiment engine: AllParallel fans the drivers
// out over a bounded worker pool, and each driver additionally fans out
// internally over its workloads, input scales, and capacity points when
// Suite.Workers is above one. Every randomized sweep hands each simulated
// run its own RNG substream, so parallel output is byte-identical to the
// sequential output at any worker count.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workloads/registry"
)

// Suite binds the experiment drivers to one platform configuration.
type Suite struct {
	// Cfg is the emulated platform.
	Cfg machine.Config
	// Profiler is shared across drivers (single-flight profile caches).
	Profiler *core.Profiler
	// Entries is the workload table (registry.All by default).
	Entries []registry.Entry
	// Runs is the number of scheduler runs per configuration in Figure 13
	// (100 in the paper; tests may lower it).
	Runs int
	// Fractions is the local-capacity sweep for the Figure 9/10 protocol
	// (CapacityFractions by default; scenario suites install their own).
	Fractions []float64
	// Headline is the single local-capacity point the Figure 11 and 13
	// analyses run at (the paper's 50%-50% split by default; scenario
	// suites install their HeadlineFraction). The contract is (0, 1)
	// exclusive: values outside it fall back to the paper's 0.50 rather
	// than producing a degenerate capacity split. NewSuiteFor rejects such
	// specs up front instead of falling back silently.
	Headline float64
	// Workers bounds the intra-driver fan-out over workloads, scales,
	// capacity points and Monte-Carlo runs. Values <= 1 mean sequential.
	// Results do not depend on it. Do not change it while drivers run.
	Workers int
	// Limiter, when non-nil, is the externally owned concurrency budget
	// engine invocations draw from in place of a fresh per-invocation
	// limiter of Workers width. A Service installs one shared limiter on
	// every suite it builds, so concurrent invocations across suites stay
	// inside one budget instead of multiplying it. Set before first use.
	Limiter *pool.Limiter
	// invoke is a one-slot semaphore serializing top-level engine
	// invocations that install the shared limiter (RunContext,
	// AllParallelContext, RunSweepContext): the context-first entry
	// points are safe to call concurrently — they queue, and a queued
	// caller whose context dies abandons the wait immediately — while
	// the engine-internal paths (drivers, defaultCampaign) run lock-free
	// inside whichever invocation is active.
	invoke chan struct{}
	// limiter, when set (the context-first entry points install one for
	// the duration of an invocation), is the single concurrency budget
	// every fan-out level draws from, so nesting never multiplies the
	// worker count.
	limiter *pool.Limiter
	// scenMu guards scenProfs, the per-scenario profilers of the
	// cross-scenario driver (memoized so repeated sweeps share caches).
	scenMu    sync.Mutex
	scenProfs map[string]*core.Profiler
	// sweepMu guards sweeps, the single-flight memo of sweep campaigns
	// keyed by grid (the "sweep" and "sensitivity" artifacts share one
	// execution even when requested concurrently).
	sweepMu sync.Mutex
	sweeps  map[string]*campaignEntry
}

// NewSuite returns a suite on the given platform with the paper's defaults
// and a private profile cache.
func NewSuite(cfg machine.Config) *Suite {
	return NewSuiteShared(cfg, nil)
}

// NewSuiteShared is NewSuite backed by the given dependency-keyed profile
// cache (a private cache when nil). A Service installs one cache across all
// of its suites, so platforms that agree on the fields a profile level
// reads — scenario variants, sweep cells — share sub-results across suites.
func NewSuiteShared(cfg machine.Config, c *core.SharedCache) *Suite {
	return &Suite{
		Cfg:       cfg,
		Profiler:  core.NewProfilerShared(cfg, c),
		Entries:   registry.All(),
		Runs:      100,
		Fractions: append([]float64(nil), CapacityFractions...),
		Headline:  0.50,
		invoke:    make(chan struct{}, 1),
	}
}

// acquireInvoke takes the invocation slot, abandoning with ctx.Err() if
// ctx dies while queued behind another invocation. The caller must
// releaseInvoke on success.
func (s *Suite) acquireInvoke(ctx context.Context) error {
	select {
	case s.invoke <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseInvoke frees the invocation slot.
func (s *Suite) releaseInvoke() { <-s.invoke }

// NewSuiteFor returns a suite on a scenario's platform with the scenario's
// capacity sweep installed, so every driver reproduces the paper's protocol
// on the alternate system.
//
// The spec must be valid (scenario.Spec.Validate); in particular its
// HeadlineFraction must lie in (0, 1) exclusive. NewSuiteFor panics on an
// invalid spec: every registry scenario validates, so an invalid spec is a
// caller construction bug, and rejecting it loudly here replaces the old
// behavior of headline() silently substituting the paper's 0.50 split.
func NewSuiteFor(sp scenario.Spec) *Suite {
	return NewSuiteForShared(sp, nil)
}

// NewSuiteForShared is NewSuiteFor backed by the given shared profile cache
// (a private cache when nil); see NewSuiteShared.
func NewSuiteForShared(sp scenario.Spec, c *core.SharedCache) *Suite {
	if err := sp.Validate(); err != nil {
		panic(fmt.Sprintf("experiments: NewSuiteFor: %v", err))
	}
	s := NewSuiteShared(sp.Platform, c)
	s.Fractions = append([]float64(nil), sp.CapacityFractions...)
	s.Headline = sp.HeadlineFraction
	return s
}

// fractions returns the suite's capacity sweep (the paper's protocol when
// unset).
func (s *Suite) fractions() []float64 {
	if len(s.Fractions) == 0 {
		return CapacityFractions
	}
	return s.Fractions
}

// headline returns the suite's headline capacity point (the paper's 50%-50%
// split when unset). Out-of-range Headline values — anything outside (0, 1)
// exclusive — take the same fallback as the zero value; NewSuiteFor rejects
// them before they reach this silent clamp (see the Headline field contract,
// pinned by TestHeadlineContract).
func (s *Suite) headline() float64 {
	if s.Headline <= 0 || s.Headline >= 1 {
		return 0.50
	}
	return s.Headline
}

// workers returns the effective intra-driver fan-out width.
func (s *Suite) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

// lim returns the limiter an engine fan-out draws from: the
// invocation-installed limiter (context-first entry points install one for
// their duration), else the externally owned shared Limiter, else a fresh
// limiter of the configured width for a stand-alone driver call. Drivers
// fetch it once and pass it to every fan-out they perform, including
// nested Monte-Carlo sweeps.
func (s *Suite) lim() *pool.Limiter {
	if s.limiter != nil {
		return s.limiter
	}
	if s.Limiter != nil {
		return s.Limiter
	}
	return pool.NewLimiter(s.workers())
}

// Default returns a suite on the default testbed-calibrated platform.
func Default() *Suite { return NewSuite(machine.Default()) }

// Result is the common interface of every experiment result.
type Result interface {
	// ID is the paper artifact name, e.g. "figure9".
	ID() string
	// Report reduces the measurements to the typed artifact document every
	// renderer (text, JSON, CSV) and the artifact store consume.
	Report() report.Doc
	// Render prints the artifact as text: report.RenderText(r.Report()).
	Render() string
}

// LoILevels is the paper's interference sweep for Figure 10.
var LoILevels = []float64{0, 0.10, 0.20, 0.30, 0.40, 0.50}

// CapacityFractions is the paper's local-capacity sweep: local tier sized to
// 75%, 50% and 25% of the workload's peak usage (so the remote/pooled side
// is 25%, 50% and 75%).
var CapacityFractions = []float64{0.75, 0.50, 0.25}

// IDs lists every experiment in paper order, followed by the repo's own
// artifacts (not from the paper, hence last): the cross-scenario
// comparison and the two views of the default sweep campaign.
var IDs = []string{
	"figure1", "table1", "table2", "figure5", "figure6", "figure7",
	"figure8", "figure9", "figure10", "figure11", "figure12", "figure13",
	"scenarios", "sweep", "sensitivity",
}

// ErrUnknownID marks a failed artifact-id lookup: every error CanonicalID
// returns for an id that is neither canonical nor an alias matches
// errors.Is(err, ErrUnknownID), so request boundaries classify it as
// not-found without string matching.
var ErrUnknownID = errors.New("experiments: unknown id")

// unknownIDError is a lookup failure matching ErrUnknownID.
type unknownIDError struct{ msg string }

func (e *unknownIDError) Error() string        { return e.msg }
func (e *unknownIDError) Is(target error) bool { return target == ErrUnknownID }

// AliasError reports a request that used a figure alias where a canonical
// artifact id is required (store keys, /v1 URLs, -out filenames): the
// caller should retry with Canonical. It matches ErrUnknownID under
// errors.Is — an alias is not the resource's name — while carrying the
// redirect target for surfaces that can point the client at it.
type AliasError struct {
	// Alias is the rejected spelling; Canonical the id to request instead.
	Alias, Canonical string
}

// Error implements error.
func (e *AliasError) Error() string {
	return fmt.Sprintf("%q is an alias: request %q", e.Alias, e.Canonical)
}

// Is reports alias errors as unknown-id errors for status classification.
func (e *AliasError) Is(target error) bool { return target == ErrUnknownID }

// CanonicalID resolves an experiment id or figure alias ("fig9") to its
// canonical artifact id ("figure9") — the id results report, artifact
// stores key on, and `-out` files are named after. It is the single alias
// mechanism: Run resolves through it too. The failure matches ErrUnknownID.
func CanonicalID(id string) (string, error) {
	for _, known := range IDs {
		if id == known {
			return known, nil
		}
		if rest, ok := strings.CutPrefix(known, "figure"); ok && id == "fig"+rest {
			return known, nil
		}
	}
	return "", &unknownIDError{msg: fmt.Sprintf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs, ", "))}
}

// Run executes the experiment with the given ID (canonical or alias).
func (s *Suite) Run(id string) (Result, error) {
	canon, err := CanonicalID(id)
	if err != nil {
		return nil, err
	}
	switch canon {
	case "figure1":
		return s.Figure1(), nil
	case "table1":
		return s.Table1(), nil
	case "table2":
		return s.Table2(), nil
	case "figure5":
		return s.Figure5(), nil
	case "figure6":
		return s.Figure6(), nil
	case "figure7":
		return s.Figure7(), nil
	case "figure8":
		return s.Figure8(), nil
	case "figure9":
		return s.Figure9(), nil
	case "figure10":
		return s.Figure10(), nil
	case "figure11":
		return s.Figure11(), nil
	case "figure12":
		return s.Figure12(), nil
	case "figure13":
		return s.Figure13(), nil
	case "scenarios":
		return s.Scenarios(), nil
	case "sweep":
		return s.Sweep(), nil
	case "sensitivity":
		return s.Sensitivity(), nil
	}
	panic("experiments: CanonicalID returned an unhandled id " + canon) // unreachable
}

// RunContext is Run bounded by ctx: the driver's fan-outs (and any nested
// Monte-Carlo sweeps) draw from a context-carrying limiter, so once ctx is
// done no new task starts and the call returns ctx.Err() within one task
// boundary — the context-first execution path repro.Service.Artifact rides
// on. An uncancelled RunContext returns exactly Run's result.
//
// Concurrent context-first invocations on one Suite serialize (the engine
// parallelizes internally); a queued caller whose ctx dies still waits for
// its turn before returning the error.
func (s *Suite) RunContext(ctx context.Context, id string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.acquireInvoke(ctx); err != nil {
		return nil, err
	}
	defer s.releaseInvoke()
	l := s.lim().WithContext(ctx)
	prev := s.limiter
	s.limiter = l
	defer func() { s.limiter = prev }()
	r, err := s.Run(id)
	if err != nil {
		return nil, err
	}
	if err := l.Err(); err != nil {
		// Abandoned mid-driver: the result holds partially zeroed
		// measurements, so it must not escape.
		return nil, err
	}
	return r, nil
}

// All runs every experiment in paper order.
func (s *Suite) All() []Result {
	out := make([]Result, 0, len(IDs))
	for _, id := range IDs {
		r, err := s.Run(id)
		if err != nil {
			panic(err) // unreachable: IDs only contains known ids
		}
		out = append(out, r)
	}
	return out
}

// AllParallel runs every experiment concurrently and returns the results
// in paper order. One limiter of width workers is shared by the
// experiment-level fan-out, every driver's internal fan-out, and the
// Monte-Carlo sweeps inside them, so at most workers tasks ever run at
// once; the shared profiler coalesces concurrent requests for the same
// profile into one execution. The rendered results are byte-identical to
// All() for any worker count.
//
// AllParallel installs the shared limiter in the suite for the duration of
// the call, so a Suite supports one sweep at a time: do not call
// AllParallel or individual drivers concurrently from multiple goroutines
// on the same Suite (the engine parallelizes internally; outer concurrency
// would race on the limiter field).
func (s *Suite) AllParallel(workers int) []Result {
	//repro:allow ctxflow — ctx-less compatibility wrapper; cancellable callers use AllParallelContext
	rs, err := s.AllParallelContext(context.Background(), workers)
	if err != nil {
		panic(err) // unreachable: the background context never cancels
	}
	return rs
}

// AllParallelContext is AllParallel bounded by ctx: the experiment-level
// fan-out, every driver's internal fan-out and the nested Monte-Carlo
// sweeps all draw from one context-carrying limiter, so once ctx is done
// no new task anywhere in the engine starts and the call returns ctx.Err()
// within one task boundary, with no goroutine left running. An uncancelled
// call returns exactly AllParallel's results.
func (s *Suite) AllParallelContext(ctx context.Context, workers int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.acquireInvoke(ctx); err != nil {
		return nil, err
	}
	defer s.releaseInvoke()
	if workers < 1 {
		workers = 1
	}
	// While the limiter is installed every fan-out draws from it, so
	// Suite.Workers is deliberately left alone — it only matters for
	// stand-alone driver calls. An externally owned shared Limiter wins
	// over the workers argument: the whole point of sharing is that no
	// invocation brings its own budget.
	base := s.Limiter
	if base == nil {
		base = pool.NewLimiter(workers)
	}
	prev := s.limiter
	l := base.WithContext(ctx)
	s.limiter = l
	defer func() { s.limiter = prev }()
	rs := pool.Map(l, len(IDs), func(i int) Result {
		r, err := s.Run(IDs[i])
		if err != nil {
			panic(err) // unreachable: IDs only contains known ids
		}
		return r
	})
	if err := l.Err(); err != nil {
		// Abandoned mid-sweep: unstarted drivers left nil slots and started
		// ones may hold partially zeroed measurements — discard them all.
		return nil, err
	}
	return rs, nil
}
