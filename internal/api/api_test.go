package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads/registry"
)

// stubBackend serves canned documents through the real error types, so the
// route table runs fast while the status mapping is exercised exactly as
// the Service produces it. Two trapdoors: artifact "figure5" fails with a
// context.Canceled error (pinning the 503 mapping) and "figure7" panics
// (pinning the recovery middleware). Jobs run through a real manager over
// an in-memory store, so the job routes serve real lifecycle behavior.
type stubBackend struct {
	sweeps   int
	jobsOnce sync.Once
	jobs     *jobs.Manager
}

// manager lazily builds the stub's job manager (tiny campaigns: one
// workload, two Monte-Carlo runs).
func (b *stubBackend) manager() *jobs.Manager {
	b.jobsOnce.Do(func() {
		m, err := jobs.NewManager(jobs.Config{
			Store: jobs.NewMemStore(),
			NewRunner: func(g sweep.Grid) *sweep.Runner {
				return &sweep.Runner{Grid: g, Entries: registry.All()[:1], Runs: 2}
			},
		})
		if err != nil {
			panic(err)
		}
		b.jobs = m
	})
	return b.jobs
}

func (b *stubBackend) SubmitSweep(g sweep.Grid) (jobs.Record, error) {
	return b.manager().Submit(g)
}
func (b *stubBackend) ResumeJob(id string) (jobs.Record, error) { return b.manager().Resume(id) }
func (b *stubBackend) Job(id string) (jobs.Record, error)       { return b.manager().Get(id) }
func (b *stubBackend) Jobs() ([]jobs.Record, error)             { return b.manager().List() }
func (b *stubBackend) CancelJob(id string) (jobs.Record, error) { return b.manager().Cancel(id) }
func (b *stubBackend) JobEvents(id string) ([]byte, error)      { return b.manager().Events(id) }
func (b *stubBackend) JobArtifact(id, artifact string, f report.Format) (string, error) {
	return b.manager().Artifact(id, artifact, f)
}

func (b *stubBackend) scenarios() []scenario.Spec { return scenario.All()[:2] }

func (b *stubBackend) CanonicalID(id string) (string, error) { return experiments.CanonicalID(id) }

func (b *stubBackend) Rendered(ctx context.Context, platform, artifact string, f report.Format) (string, error) {
	if platform == "" {
		platform = "baseline"
	}
	if _, err := scenario.GetFrom(b.scenarios(), platform); err != nil {
		return "", err
	}
	switch artifact {
	case "figure5":
		return "", fmt.Errorf("engine stopped: %w", context.Canceled)
	case "figure7":
		panic("driver bug")
	}
	d := *report.New(artifact).Append(report.NoteBlock("body of " + artifact + "\n"))
	d.Platform = platform
	return report.Render(d, f)
}

func (b *stubBackend) Grid(platform string, axes ...sweep.Axis) (sweep.Grid, error) {
	if platform == "" {
		platform = "baseline"
	}
	sp, err := scenario.GetFrom(b.scenarios(), platform)
	if err != nil {
		return sweep.Grid{}, err
	}
	if len(axes) == 0 {
		axes = []sweep.Axis{{Name: "gen", Values: []float64{0}}}
	}
	return sweep.Grid{Base: sp, Axes: axes}, nil
}

func (b *stubBackend) Sweep(ctx context.Context, g sweep.Grid) (*sweep.Campaign, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	b.sweeps++
	r := &sweep.Runner{Grid: g, Entries: registry.All()[:1], Runs: 2}
	return r.RunContext(ctx, nil)
}

func (b *stubBackend) Scenarios() []scenario.Spec  { return b.scenarios() }
func (b *stubBackend) Workloads() []registry.Entry { return registry.All() }
func (b *stubBackend) IDs() []string               { return append([]string(nil), experiments.IDs...) }
func (b *stubBackend) DefaultPlatform() string     { return "baseline" }

// newTestServer mounts the full handler — /v1 routes plus both legacy
// aliases — over the stub.
func newTestServer(t *testing.T) (*httptest.Server, *stubBackend) {
	t.Helper()
	b := &stubBackend{}
	st := report.NewStore(func(ctx context.Context, platform, artifact string) (report.Doc, error) {
		if artifact != "figure9" {
			return report.Doc{}, &experiments.AliasError{Alias: artifact, Canonical: "figure9"}
		}
		return *report.New(artifact).Append(report.NoteBlock("legacy\n")), nil
	})
	h := New(Config{
		Backend:         b,
		LegacyArtifacts: st.Handler([]string{"figure9"}, "baseline"),
		LegacySweep: sweep.Handler(
			func(platform string) (sweep.Grid, error) { return b.Grid(platform) },
			func(ctx context.Context, platform string, g sweep.Grid) (*sweep.Campaign, error) {
				return b.Sweep(ctx, g)
			},
		),
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, b
}

// get performs one request and returns status, content type, body and the
// response headers.
func fetch(t *testing.T, srv *httptest.Server, method, path string, accept string) (int, string, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body), resp.Header
}

// envelope decodes the error envelope, failing on any shape drift: the
// body must be {"error":{...}} with matching status.
func envelope(t *testing.T, body string, wantStatus int) ErrorDetail {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v\n%s", err, body)
	}
	if eb.Error.Status != wantStatus {
		t.Errorf("envelope status %d, want %d (%s)", eb.Error.Status, wantStatus, body)
	}
	if eb.Error.Message == "" {
		t.Errorf("envelope message empty: %s", body)
	}
	return eb.Error
}

// TestRoutesAndFormats walks every /v1 route through every selection
// mechanism (default, ?format=, Accept) and checks status plus media type.
func TestRoutesAndFormats(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name, path, accept string
		wantStatus         int
		wantCT             string
	}{
		{"healthz", "/healthz", "", 200, "application/json"},
		{"index", "/v1", "", 200, "application/json"},
		{"artifact index", "/v1/artifacts", "", 200, "application/json"},
		{"artifact text default", "/v1/artifacts/figure9", "", 200, "text/plain; charset=utf-8"},
		{"artifact json query", "/v1/artifacts/figure9?format=json", "", 200, "application/json"},
		{"artifact txt alias query", "/v1/artifacts/figure9?format=txt", "", 200, "text/plain; charset=utf-8"},
		{"artifact case-insensitive query", "/v1/artifacts/figure9?format=JSON", "", 200, "application/json"},
		{"artifact json accept", "/v1/artifacts/figure9", "application/json", 200, "application/json"},
		{"artifact csv accept", "/v1/artifacts/figure9", "text/csv", 200, "text/csv; charset=utf-8"},
		{"artifact accept q-params", "/v1/artifacts/figure9", "text/csv;q=0.9, application/xml", 200, "text/csv; charset=utf-8"},
		{"artifact unknown accept falls back", "/v1/artifacts/figure9", "application/xml", 200, "text/plain; charset=utf-8"},
		{"artifact explicit platform", "/v1/artifacts/figure9?platform=cxl-gen5", "", 200, "text/plain; charset=utf-8"},
		{"platforms text", "/v1/platforms", "", 200, "text/plain; charset=utf-8"},
		{"platforms json", "/v1/platforms?format=json", "", 200, "application/json"},
		{"platforms csv", "/v1/platforms?format=csv", "", 200, "text/csv; charset=utf-8"},
		{"workloads text", "/v1/workloads", "", 200, "text/plain; charset=utf-8"},
		{"workloads json", "/v1/workloads?format=json", "", 200, "application/json"},
		{"workloads csv", "/v1/workloads?format=csv", "", 200, "text/csv; charset=utf-8"},
		{"sweep text", "/v1/sweep", "", 200, "text/plain; charset=utf-8"},
		{"sweep sensitivity json", "/v1/sweep?artifact=sensitivity&format=json", "", 200, "application/json"},
		{"sweep custom axis csv", "/v1/sweep?axis=frac=0.5&format=csv", "", 200, "text/csv; charset=utf-8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, ct, body, _ := fetch(t, srv, http.MethodGet, tc.path, tc.accept)
			if code != tc.wantStatus || ct != tc.wantCT {
				t.Fatalf("GET %s (Accept %q) = %d %q, want %d %q\n%s",
					tc.path, tc.accept, code, ct, tc.wantStatus, tc.wantCT, body)
			}
			if body == "" {
				t.Error("empty body")
			}
		})
	}
}

// TestJSONRoundTrips checks machine formats parse back: the artifact and
// registry documents unmarshal into Docs, the index into a map.
func TestJSONRoundTrips(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, path := range []string{
		"/v1/artifacts/figure9?format=json",
		"/v1/platforms?format=json",
		"/v1/workloads?format=json",
		"/v1/sweep?format=json",
	} {
		_, _, body, _ := fetch(t, srv, http.MethodGet, path, "")
		d, err := report.ParseJSON(body)
		if err != nil || d.Artifact == "" {
			t.Errorf("%s: served JSON does not parse back into a Doc: %v", path, err)
		}
		// Platform-scoped documents must stamp the *scenario* name so the
		// field round-trips through ?platform= (never the machine-config
		// name); the registry docs are platform-free.
		scoped := strings.Contains(path, "artifacts") || strings.Contains(path, "sweep")
		if scoped && d.Platform != "baseline" {
			t.Errorf("%s: platform stamped %q, want the scenario name baseline", path, d.Platform)
		}
	}
	_, _, body, _ := fetch(t, srv, http.MethodGet, "/v1", "")
	var idx map[string]any
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("index not JSON: %v", err)
	}
	for _, key := range []string{"artifacts", "platforms", "workloads", "formats", "default_platform", "routes"} {
		if _, ok := idx[key]; !ok {
			t.Errorf("index missing %q: %s", key, body)
		}
	}
}

// TestErrorEnvelope is the error-case table: every failure mode must wear
// the one JSON envelope with the right status, regardless of the
// negotiated success format.
func TestErrorEnvelope(t *testing.T) {
	srv, _ := newTestServer(t)
	oversized := "/v1/sweep?axis=lat=0:69:1&axis=bw=" + strings.TrimSuffix(strings.Repeat("1,", 60), ",")
	cases := []struct {
		name, path string
		method     string
		wantStatus int
		wantIn     string // substring of the envelope message
	}{
		{"unknown artifact", "/v1/artifacts/nope", "", 404, "unknown id"},
		{"alias id", "/v1/artifacts/fig9", "", 404, `alias: request "figure9"`},
		{"bad platform", "/v1/artifacts/figure9?platform=vapor", "", 404, "unknown scenario"},
		{"bad format", "/v1/artifacts/figure9?format=yaml", "", 400, "unknown format"},
		{"bad format on platforms", "/v1/platforms?format=yaml", "", 400, "unknown format"},
		{"bad sweep axis", "/v1/sweep?axis=bogus=1", "", 400, "unknown axis"},
		{"malformed sweep axis", "/v1/sweep?axis=lat", "", 400, "want name=v1,v2"},
		{"oversized axis range", "/v1/sweep?axis=lat=0:2000000:1", "", 400, "max 1024"},
		{"oversized grid", oversized, "", 400, "max 4096"},
		{"bad sweep artifact", "/v1/sweep?artifact=bogus", "", 400, "want sweep or sensitivity"},
		{"bad sweep platform", "/v1/sweep?platform=vapor", "", 404, "unknown scenario"},
		{"cancelled computation", "/v1/artifacts/figure5", "", 503, "engine stopped"},
		{"panic recovery", "/v1/artifacts/figure7", "", 500, "internal error"},
		{"no such v1 route", "/v1/bogus", "", 404, "no such route"},
		{"method not allowed", "/v1/artifacts/figure9", http.MethodPost, 405, "method POST not allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			method := tc.method
			if method == "" {
				method = http.MethodGet
			}
			code, ct, body, _ := fetch(t, srv, method, tc.path, "")
			if code != tc.wantStatus {
				t.Fatalf("%s %s = %d, want %d\n%s", method, tc.path, code, tc.wantStatus, body)
			}
			if ct != "application/json" {
				t.Errorf("error content type %q, want application/json", ct)
			}
			detail := envelope(t, body, tc.wantStatus)
			if !strings.Contains(detail.Message, tc.wantIn) {
				t.Errorf("message %q does not contain %q", detail.Message, tc.wantIn)
			}
		})
	}
}

// TestFormatErrorListsFormats pins satellite contract: the format error's
// accepted spellings ride in the envelope verbatim.
func TestFormatErrorListsFormats(t *testing.T) {
	srv, _ := newTestServer(t)
	_, _, body, _ := fetch(t, srv, http.MethodGet, "/v1/artifacts/figure9?format=yaml", "")
	detail := envelope(t, body, 400)
	want := report.AcceptedFormats()
	if len(detail.Formats) != len(want) {
		t.Fatalf("formats = %v, want %v", detail.Formats, want)
	}
	for i := range want {
		if detail.Formats[i] != want[i] {
			t.Fatalf("formats = %v, want %v", detail.Formats, want)
		}
	}
}

// TestLegacyAliases checks the pre-/v1 paths answer exactly as before —
// plain-text errors and all — with deprecation headers added.
func TestLegacyAliases(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		path       string
		wantStatus int
		wantLink   string
	}{
		{"/", 200, "/v1/artifacts"},
		{"/artifacts/figure9.json", 200, "/v1/artifacts"},
		{"/artifacts/figure9.txt", 200, "/v1/artifacts"},
		{"/sweep", 200, "/v1/sweep"},
		{"/sweep?artifact=sensitivity", 200, "/v1/sweep"},
	}
	for _, tc := range cases {
		code, _, body, hdr := fetch(t, srv, http.MethodGet, tc.path, "")
		if code != tc.wantStatus {
			t.Errorf("GET %s = %d, want %d\n%s", tc.path, code, tc.wantStatus, body)
		}
		if hdr.Get("Deprecation") != "true" {
			t.Errorf("GET %s: missing Deprecation header", tc.path)
		}
		if link := hdr.Get("Link"); !strings.Contains(link, tc.wantLink) || !strings.Contains(link, "successor-version") {
			t.Errorf("GET %s: Link = %q, want successor %s", tc.path, link, tc.wantLink)
		}
	}
	// Legacy errors stay plain text — the envelope is a /v1 contract.
	code, ct, _, _ := fetch(t, srv, http.MethodGet, "/artifacts/figure9.yaml", "")
	if code != 400 || strings.HasPrefix(ct, "application/json") {
		t.Errorf("legacy bad format = %d %q, want 400 plain text", code, ct)
	}
}

// TestSweepMemoSeam checks the handler passes the grid through the backend
// untouched (the memo seam the service hangs campaigns on): two identical
// requests reach Sweep twice here because the stub does not memoize, but
// both succeed and carry the same grid key.
func TestSweepMemoSeam(t *testing.T) {
	srv, b := newTestServer(t)
	for i := 0; i < 2; i++ {
		if code, _, body, _ := fetch(t, srv, http.MethodGet, "/v1/sweep", ""); code != 200 {
			t.Fatalf("sweep run %d = %d\n%s", i, code, body)
		}
	}
	if b.sweeps != 2 {
		t.Errorf("stub saw %d sweep executions, want 2 (memoization lives in the service, not the handler)", b.sweeps)
	}
}
