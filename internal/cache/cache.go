// Package cache models the L2 data cache and its hardware prefetcher, the
// level the paper instruments for prefetch analysis (§4.2): the core
// prefetcher sits at L2 on Skylake-X, and the counters PF_L2_DATA_RD,
// PF_L2_RFO, L2_LINES_IN and USELESS_HWPF are all L2 events.
//
// The model is a set-associative LRU cache plus a streamer-style prefetcher
// that detects unit-stride (and small-stride) streams within a page and runs
// a configurable number of lines ahead. Fills call back into the memory
// model so traffic is attributed to the serving tier, and the counter set
// mirrors the paper's equations (1) and (2) for accuracy and coverage.
package cache

import "fmt"

// LineSize is the cacheline granularity in bytes.
const LineSize = 64

// FillReason distinguishes demand fills from prefetch fills.
type FillReason int

const (
	// FillDemand is a fill triggered by a demand miss the stream detector
	// could not predict (a latency-exposed miss).
	FillDemand FillReason = iota
	// FillPrefetch is a fill triggered by the hardware prefetcher.
	FillPrefetch
	// FillDemandStream is a demand fill that followed a detected stream:
	// with the prefetcher disabled these misses are still overlapped by
	// out-of-order execution, so the timing model treats them as
	// bandwidth-bound (at a penalty) rather than latency-exposed.
	FillDemandStream
)

// NumFillReasons is the number of FillReason values.
const NumFillReasons = 3

// Config describes the cache geometry and the prefetcher.
type Config struct {
	// Size is the cache capacity in bytes. Defaults to 1 MiB.
	Size int
	// Ways is the associativity. Defaults to 16.
	Ways int
	// PrefetchEnabled mirrors the two LSBs of MSR 0x1a4: when false the
	// hardware prefetcher is fully disabled.
	PrefetchEnabled bool
	// PrefetchDegree is how many lines ahead the streamer runs once a
	// stream is confirmed. Defaults to 4.
	PrefetchDegree int
	// PrefetchStreams is the number of concurrently tracked streams.
	// Defaults to 16.
	PrefetchStreams int
	// PageSize bounds prefetches: the streamer never crosses a page
	// boundary (physical prefetchers cannot). Defaults to 4096.
	PageSize uint64
}

func (c Config) withDefaults() Config {
	if c.Size == 0 {
		c.Size = 1 << 20
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	if c.PrefetchDegree == 0 {
		c.PrefetchDegree = 4
	}
	if c.PrefetchStreams == 0 {
		c.PrefetchStreams = 16
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	return c
}

// Counters is the paper-aligned counter set, all in cacheline units.
type Counters struct {
	// DemandAccesses is the number of L2 lookups.
	DemandAccesses uint64
	// DemandHits is lookups that hit (including hits on prefetched lines).
	DemandHits uint64
	// DemandMisses is lookups that missed and triggered a demand fill.
	DemandMisses uint64
	// LinesIn is every line filled into the cache (L2_LINES_IN): demand
	// fills plus prefetch fills.
	LinesIn uint64
	// PrefetchFills is lines filled by the prefetcher
	// (PF_L2_DATA_RD + PF_L2_RFO).
	PrefetchFills uint64
	// UselessPrefetch is prefetched lines evicted before any demand hit
	// (USELESS_HWPF).
	UselessPrefetch uint64
	// PrefetchedHits is demand hits whose line was brought in by the
	// prefetcher and had not been hit before (first-use hits).
	PrefetchedHits uint64
	// DemandMissStream is the subset of DemandMisses that followed a
	// detected stream (predictable misses).
	DemandMissStream uint64
}

// Accuracy implements the paper's equation (1):
// (PF - USELESS) / PF. It returns 1 when no prefetches were issued.
func (c Counters) Accuracy() float64 {
	if c.PrefetchFills == 0 {
		return 1
	}
	return float64(c.PrefetchFills-c.UselessPrefetch) / float64(c.PrefetchFills)
}

// Coverage implements the paper's equation (2):
// (PF - USELESS) / (LINES_IN - USELESS). It returns 0 when nothing was
// filled.
func (c Counters) Coverage() float64 {
	den := c.LinesIn - c.UselessPrefetch
	if den == 0 {
		return 0
	}
	return float64(c.PrefetchFills-c.UselessPrefetch) / float64(den)
}

// line is one cache line's metadata.
type line struct {
	tag        uint64 // line address (addr >> 6)
	valid      bool
	lru        uint64
	prefetched bool // filled by prefetcher and not yet demand-hit
}

// Throttle thresholds: the streamer measures its own accuracy over windows
// of issued prefetches and adapts its aggressiveness, mirroring how real
// prefetchers back off when accuracy is low (the paper observes XSBench's
// excess prefetch traffic staying low despite poor accuracy for exactly
// this reason).
const (
	throttleWindow  = 256
	throttleLowAcc  = 0.30
	throttleHalfAcc = 0.60
)

// stream is one tracked prefetch stream.
type stream struct {
	page     uint64 // page index
	lastLine uint64 // last line address observed
	dir      int64  // +1 or -1
	conf     int    // confidence: confirmations of the direction
	lru      uint64
	valid    bool
}

// Cache is the L2 model. It is not safe for concurrent use; the emulated
// platform is single-node and the workloads drive it from one goroutine.
type Cache struct {
	cfg      Config
	sets     [][]line
	nsets    uint64
	clock    uint64
	streams  []stream
	ctr      Counters
	fill     func(lineAddr uint64, reason FillReason)
	disabled bool // runtime prefetch disable (MSR write)

	// Throttle state: accuracy over the last window of issued prefetches.
	throttleLevel int // 0 = full degree, 1 = half, 2 = probe only
	winPF, winUse uint64
}

// New creates a cache; fill is invoked for every line filled from memory
// (demand or prefetch) with the line's base address.
func New(cfg Config, fill func(lineAddr uint64, reason FillReason)) *Cache {
	c := cfg.withDefaults()
	nlines := c.Size / LineSize
	nsets := nlines / c.Ways
	if nsets == 0 {
		nsets = 1
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*c.Ways)
	for i := range sets {
		sets[i], backing = backing[:c.Ways:c.Ways], backing[c.Ways:]
	}
	return &Cache{
		cfg:      c,
		sets:     sets,
		nsets:    uint64(nsets),
		streams:  make([]stream, c.PrefetchStreams),
		fill:     fill,
		disabled: !c.PrefetchEnabled,
	}
}

// SetPrefetchEnabled toggles the hardware prefetcher at run time, the
// equivalent of writing MSR 0x1a4.
func (c *Cache) SetPrefetchEnabled(on bool) { c.disabled = !on }

// PrefetchEnabled reports whether the prefetcher is active.
func (c *Cache) PrefetchEnabled() bool { return !c.disabled }

// Counters returns a copy of the counter set.
func (c *Cache) Counters() Counters { return c.ctr }

// ResetCounters clears the counters without flushing cache contents
// (phase boundary).
func (c *Cache) ResetCounters() { c.ctr = Counters{} }

// Flush invalidates all lines and stream state. Unused prefetched lines
// count as useless, as they would on eviction.
func (c *Cache) Flush() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.prefetched {
				c.ctr.UselessPrefetch++
			}
			l.valid = false
		}
	}
	for i := range c.streams {
		c.streams[i].valid = false
	}
}

// Access performs one demand access to addr (byte address). The write flag
// is accepted for API symmetry; the model treats reads and writes alike
// (write-allocate, fills counted as traffic).
func (c *Cache) Access(addr uint64, write bool) {
	_ = write
	la := addr / LineSize
	c.clock++
	c.ctr.DemandAccesses++
	set := c.sets[la%c.nsets]
	if l := c.lookup(set, la); l != nil {
		c.ctr.DemandHits++
		if l.prefetched {
			c.ctr.PrefetchedHits++
			l.prefetched = false
		}
		l.lru = c.clock
	} else {
		c.ctr.DemandMisses++
		reason := FillDemand
		if c.streamPredicted(la) {
			reason = FillDemandStream
			c.ctr.DemandMissStream++
		}
		c.insert(la, false)
		if c.fill != nil {
			c.fill(la*LineSize, reason)
		}
	}
	// Stream detection always trains (out-of-order execution exploits the
	// same predictability); the MSR toggle only gates prefetch issue.
	if st := c.train(la); st != nil && !c.disabled {
		c.issue(st, la)
	}
}

// streamPredicted reports whether line la continues a confirmed stream —
// evaluated before the stream table is trained with la itself.
func (c *Cache) streamPredicted(la uint64) bool {
	pageIdx := la / c.linesPerPage()
	for i := range c.streams {
		st := &c.streams[i]
		if !st.valid || st.page != pageIdx || st.conf < 2 || st.dir == 0 {
			continue
		}
		delta := int64(la) - int64(st.lastLine)
		if delta*st.dir >= 1 && delta*st.dir <= int64(c.cfg.PrefetchDegree)+2 {
			return true
		}
	}
	return false
}

// AccessRange performs sequential demand accesses covering [addr, addr+n).
func (c *Cache) AccessRange(addr, n uint64, write bool) {
	if n == 0 {
		return
	}
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	for la := first; la <= last; la++ {
		c.Access(la*LineSize, write)
	}
}

func (c *Cache) lookup(set []line, la uint64) *line {
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return &set[i]
		}
	}
	return nil
}

// insert fills line la, evicting LRU if needed; prefetched marks the fill
// as a prefetch fill.
func (c *Cache) insert(la uint64, prefetched bool) {
	set := c.sets[la%c.nsets]
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	if victim.valid && victim.prefetched {
		c.ctr.UselessPrefetch++
	}
	victim.tag = la
	victim.valid = true
	victim.lru = c.clock
	victim.prefetched = prefetched
	c.ctr.LinesIn++
	if prefetched {
		c.ctr.PrefetchFills++
	}
}

// linesPerPage returns the number of cachelines per page.
func (c *Cache) linesPerPage() uint64 { return c.cfg.PageSize / LineSize }

// train updates the stream table with a demand access and returns the
// stream la belongs to (nil while direction is still unknown).
func (c *Cache) train(la uint64) *stream {
	pageIdx := la / c.linesPerPage()
	var st *stream
	for i := range c.streams {
		if c.streams[i].valid && c.streams[i].page == pageIdx {
			st = &c.streams[i]
			break
		}
	}
	if st == nil {
		// Allocate an entry (LRU replacement) and wait for a second
		// access to establish direction.
		victim := &c.streams[0]
		for i := range c.streams {
			if !c.streams[i].valid {
				victim = &c.streams[i]
				break
			}
			if c.streams[i].lru < victim.lru {
				victim = &c.streams[i]
			}
		}
		*victim = stream{page: pageIdx, lastLine: la, dir: 0, conf: 0, lru: c.clock, valid: true}
		return nil
	}
	st.lru = c.clock
	delta := int64(la) - int64(st.lastLine)
	st.lastLine = la
	if delta == 0 {
		return nil
	}
	dir := int64(1)
	if delta < 0 {
		dir = -1
	}
	// Streamer behaviour: near-unit strides sustain a stream; jumps reset.
	if delta == st.dir || (st.dir == 0 && (delta == 1 || delta == -1)) {
		if st.dir == 0 {
			st.dir = delta
		}
		st.conf++
	} else if delta*dir <= 2 && dir == sign(st.dir) {
		// Small same-direction stride: keep the stream, lower confidence.
		if st.conf > 0 {
			st.conf--
		}
	} else {
		st.dir = 0
		st.conf = 0
		return nil
	}
	return st
}

// issue runs the streamer ahead of a trained stream, subject to the
// accuracy throttle.
func (c *Cache) issue(st *stream, la uint64) {
	conf := 2
	degree := c.cfg.PrefetchDegree
	switch c.throttleLevel {
	case 1:
		if degree > 1 {
			degree /= 2
		}
	case 2:
		degree = 1
		conf = 4
	}
	if st.conf < conf {
		return
	}
	// Confirmed stream: run degree lines ahead, within the page.
	pageIdx := st.page
	lpp := c.linesPerPage()
	pageFirst := pageIdx * lpp
	pageLast := pageFirst + lpp - 1
	next := la
	for i := 0; i < degree; i++ {
		ni := int64(next) + st.dir
		if ni < int64(pageFirst) || ni > int64(pageLast) {
			break
		}
		next = uint64(ni)
		set := c.sets[next%c.nsets]
		if c.lookup(set, next) != nil {
			continue
		}
		c.insert(next, true)
		if c.fill != nil {
			c.fill(next*LineSize, FillPrefetch)
		}
	}
	c.updateThrottle()
}

// updateThrottle recomputes the throttle level once per window of issued
// prefetches, from the accuracy observed over that window.
func (c *Cache) updateThrottle() {
	issued := c.ctr.PrefetchFills - c.winPF
	if issued < throttleWindow {
		return
	}
	useless := c.ctr.UselessPrefetch - c.winUse
	acc := 1 - float64(useless)/float64(issued)
	switch {
	case acc < throttleLowAcc:
		c.throttleLevel = 2
	case acc < throttleHalfAcc:
		c.throttleLevel = 1
	default:
		c.throttleLevel = 0
	}
	c.winPF = c.ctr.PrefetchFills
	c.winUse = c.ctr.UselessPrefetch
}

func sign(x int64) int64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// String renders the counters compactly for debugging.
func (c Counters) String() string {
	return fmt.Sprintf("acc=%d hit=%d miss=%d in=%d pf=%d useless=%d (acc=%.2f cov=%.2f)",
		c.DemandAccesses, c.DemandHits, c.DemandMisses, c.LinesIn,
		c.PrefetchFills, c.UselessPrefetch, c.Accuracy(), c.Coverage())
}
