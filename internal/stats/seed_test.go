package stats

import "testing"

// TestSeedAtDeterministic pins that SeedAt is a pure function of its
// inputs and sensitive to every coordinate, including coordinate order.
func TestSeedAtDeterministic(t *testing.T) {
	if SeedAt(7, 1, 2) != SeedAt(7, 1, 2) {
		t.Fatal("SeedAt not deterministic")
	}
	distinct := map[uint64]string{}
	cases := map[string]uint64{
		"base7-1-2": SeedAt(7, 1, 2),
		"base7-2-1": SeedAt(7, 2, 1), // order matters
		"base8-1-2": SeedAt(8, 1, 2), // base matters
		"base7-1":   SeedAt(7, 1),    // arity matters
		"base7":     SeedAt(7),
	}
	for name, s := range cases {
		if prev, ok := distinct[s]; ok {
			t.Errorf("SeedAt collision: %s == %s (%d)", name, prev, s)
		}
		distinct[s] = name
	}
}

// TestSeedAtSeparation checks that a dense grid of nearby coordinates —
// the exact shape a sweep campaign produces — yields collision-free,
// well-mixed seeds, where the additive base+i*k schemes would collide.
func TestSeedAtSeparation(t *testing.T) {
	seen := map[uint64]bool{}
	n := 0
	for base := uint64(0); base < 4; base++ {
		for pi := uint64(0); pi < 32; pi++ {
			for wi := uint64(0); wi < 8; wi++ {
				s := SeedAt(base*1000, pi, wi)
				if seen[s] {
					t.Fatalf("collision at base=%d pi=%d wi=%d", base*1000, pi, wi)
				}
				seen[s] = true
				n++
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("%d seeds, %d distinct", n, len(seen))
	}
}
