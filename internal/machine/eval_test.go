package machine

import (
	"testing"

	"repro/internal/stats"
)

// fuzzPhases builds a deterministic mix of phase shapes: compute-bound,
// local-bandwidth-bound, remote-heavy, latency-bound, and fully empty, so
// both the precomputed fast path (no link traffic) and the full fixed-point
// loop are exercised.
func fuzzPhases(rng *stats.RNG, n int) []PhaseStats {
	phases := make([]PhaseStats, n)
	for i := range phases {
		p := &phases[i]
		p.Name = "f"
		p.Flops = rng.Float64() * 1e12
		p.LocalBytes = uint64(rng.Intn(1 << 30))
		p.DemandMissLocal = uint64(rng.Intn(1 << 20))
		switch i % 3 {
		case 0:
			// Link-free: the loi-independent fast path.
		case 1:
			p.RemoteBytes = uint64(rng.Intn(1 << 30))
			p.DemandMissRemote = uint64(rng.Intn(1 << 20))
			p.StreamMissRemote = uint64(rng.Intn(1 << 16))
		case 2:
			// Remote demand misses without remote payload bytes.
			p.DemandMissRemote = uint64(rng.Intn(1 << 18))
		}
		p.StreamMissLocal = uint64(rng.Intn(1 << 16))
	}
	return phases
}

// TestEvaluatorMatchesPhaseTimeBitExact checks the precomputed evaluator
// returns bit-identical times to Config.PhaseTime across phase shapes,
// interference levels, and config variations — the property that keeps
// golden artifacts byte-identical when the scheduler uses the evaluator.
func TestEvaluatorMatchesPhaseTimeBitExact(t *testing.T) {
	rng := stats.NewRNG(42)
	cfgs := []Config{Default()}
	weird := Default()
	weird.MLP = 0 // PhaseTime clamps this to 1; the evaluator must too
	weird.LatencyBWCoupling = 2.5
	cfgs = append(cfgs, weird)
	zeroPeak := Default()
	zeroPeak.Link.PeakTraffic = 0
	zeroPeak.PeakFlops = 0
	zeroPeak.LocalBandwidth = 0
	cfgs = append(cfgs, zeroPeak)

	lois := []float64{0, 0.05, 0.25, 0.5, 0.9, 1.0}
	for ci, cfg := range cfgs {
		phases := fuzzPhases(rng, 60)
		ev := NewEvaluator(cfg, phases)
		for i, p := range phases {
			for _, loi := range lois {
				want := cfg.PhaseTime(p, loi)
				got := ev.PhaseTime(i, loi)
				if got != want {
					t.Fatalf("cfg %d phase %d loi %g: evaluator %v != PhaseTime %v", ci, i, loi, got, want)
				}
			}
		}
		for _, loi := range lois {
			if got, want := ev.RunTime(loi), cfg.RunTime(phases, loi); got != want {
				t.Fatalf("cfg %d loi %g: evaluator RunTime %v != Config.RunTime %v", ci, loi, got, want)
			}
		}
	}
}

// TestEvaluatorConcurrentUse hammers one evaluator from many goroutines
// (run under -race) and checks results stay bit-identical to PhaseTime.
func TestEvaluatorConcurrentUse(t *testing.T) {
	cfg := Default()
	phases := fuzzPhases(stats.NewRNG(7), 12)
	ev := NewEvaluator(cfg, phases)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			lois := []float64{0, 0.1 * float64(g), 0.6}
			for rep := 0; rep < 50; rep++ {
				for i, p := range phases {
					for _, loi := range lois {
						if ev.PhaseTime(i, loi) != cfg.PhaseTime(p, loi) {
							done <- errMismatch
							return
						}
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("evaluator result diverged from PhaseTime under concurrency")

type errorString string

func (e errorString) Error() string { return string(e) }

func BenchmarkPhaseTime(b *testing.B) {
	cfg := Default()
	phases := fuzzPhases(stats.NewRNG(3), 16)
	b.Run("config", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg.PhaseTime(phases[i%len(phases)], 0.3)
		}
	})
	b.Run("evaluator", func(b *testing.B) {
		ev := NewEvaluator(cfg, phases)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.PhaseTime(i%len(phases), 0.3)
		}
	})
}
