// Scheduling demonstrates the §7.2 system-level use case twice over:
//
//  1. the paper's Figure 13 protocol — each workload against randomly
//     re-rolled pool interference, baseline (LoI 0-50%) vs an
//     interference-aware scheduler (LoI 0-20%);
//  2. the rack co-location simulator — a queue of profiled jobs placed onto
//     nodes sharing one memory pool, FIFO vs interference-aware selection
//     using the IC and sensitivity hints the paper proposes attaching to
//     job submissions.
package main

import (
	"fmt"

	"repro"
)

func main() {
	profiler := repro.NewProfiler(repro.DefaultPlatform())

	// Profile every workload once on the 50%-pooled configuration and keep
	// the phases + hints; this is the "user provides the interference
	// profile at submission" workflow.
	type profiled struct {
		name   string
		plat   repro.Platform
		phases []repro.PhaseStats
		job    repro.Job
	}
	var jobs []profiled
	for _, entry := range repro.Workloads() {
		l2 := profiler.Level2(entry, 1, 0.5)
		plat := profiler.ConfigForLocalFraction(entry, 1, 0.5)
		l3 := profiler.Level3(entry, 1, 0.5, []float64{0, 0.5})
		jobs = append(jobs, profiled{
			name:   entry.Name,
			plat:   plat,
			phases: l2.Phase2Stats,
			job: repro.Job{
				Name:        entry.Name,
				Phases:      l2.Phase2Stats,
				IC:          l3.ICMean,
				Sensitivity: 1 - l3.Relative[len(l3.Relative)-1],
			},
		})
	}

	// Part 1: Figure 13 protocol.
	fmt.Println("=== Baseline vs interference-aware scheduler (100 runs each) ===")
	fmt.Printf("%-9s %14s %14s %13s %9s\n", "workload", "median (base)", "median (aware)", "mean speedup", "P75 cut")
	for i, j := range jobs {
		s := repro.CompareSchedulers(j.name, j.plat, j.phases, 100, 42+uint64(i))
		fmt.Printf("%-9s %13.4fs %13.4fs %12.1f%% %8.1f%%\n",
			j.name, s.Baseline.Median, s.Aware.Median, s.MeanSpeedup*100, s.P75Reduction*100)
	}
	fmt.Println()

	// Part 2: rack co-location. Two nodes share the pool; the queue mixes
	// every workload. FIFO ignores the hints; the aware policy avoids
	// pairing pressure-inducing jobs with sensitive ones.
	rack := repro.RackConfig{Nodes: 2, Machine: repro.DefaultPlatform()}
	var queue []repro.Job
	for _, j := range jobs {
		queue = append(queue, j.job)
	}
	fmt.Println("=== Rack co-location: 2 nodes, one shared pool ===")
	for _, pol := range []repro.SchedulePolicy{repro.FIFO, repro.InterferenceAware} {
		res := repro.Schedule(rack, queue, pol)
		fmt.Printf("%-19s makespan %7.4fs  mean slowdown %.3f  worst %.3f\n",
			res.Policy, res.Makespan, res.MeanSlowdown(), res.MaxSlowdown())
		for _, jr := range res.Jobs {
			fmt.Printf("    %-9s start %7.4fs  end %7.4fs  slowdown %.3f\n",
				jr.Name, jr.Start, jr.End, jr.Slowdown())
		}
	}
}
