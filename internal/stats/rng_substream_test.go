package stats

import "testing"

func TestJumpMatchesManualAdvance(t *testing.T) {
	// Jump must land on a state different from any nearby manual advance
	// and remain deterministic: two identical generators jump to identical
	// states.
	a, b := NewRNG(42), NewRNG(42)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identical jumps diverged at step %d", i)
		}
	}
}

func TestStreamDeterministicAndIndependentOfOrder(t *testing.T) {
	base := NewRNG(7)
	// Stream(i) must depend only on (state, i): requesting streams in any
	// order, or repeatedly, yields identical generators.
	s2a := base.Stream(2)
	s0 := base.Stream(0)
	s2b := base.Stream(2)
	for i := 0; i < 100; i++ {
		if s2a.Uint64() != s2b.Uint64() {
			t.Fatalf("Stream(2) not reproducible at step %d", i)
		}
	}
	// The base generator must not have been advanced by Stream calls.
	fresh := NewRNG(7)
	for i := 0; i < 10; i++ {
		if base.Uint64() != fresh.Uint64() {
			t.Fatal("Stream advanced the base generator")
		}
	}
	_ = s0
}

func TestStreamsDoNotOverlap(t *testing.T) {
	// Draw a window from each of several substreams and check pairwise
	// disjointness. Streams are spaced 2^192 steps apart, so any collision
	// in a 64-bit value window would be an implementation bug (the chance
	// of a birthday collision between honest streams over 4000 draws is
	// ~4e-13).
	base := NewRNG(99)
	const streams, draws = 8, 500
	seen := make(map[uint64]int, streams*draws)
	for i := 0; i < streams; i++ {
		r := base.Stream(i)
		for d := 0; d < draws; d++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d produced the same value %#x", prev, i, v)
			}
			seen[v] = i
		}
	}
}

func TestSplitMatchesStream(t *testing.T) {
	base := NewRNG(1234)
	subs := base.Split(5)
	if len(subs) != 5 {
		t.Fatalf("Split(5) returned %d generators", len(subs))
	}
	for i, sub := range subs {
		want := base.Stream(i)
		for d := 0; d < 50; d++ {
			if sub.Uint64() != want.Uint64() {
				t.Fatalf("Split[%d] diverged from Stream(%d) at draw %d", i, i, d)
			}
		}
	}
}

func TestSubstreamsMatchStream(t *testing.T) {
	base := NewRNG(1234)
	subs := base.Substreams(5)
	if len(subs) != 5 {
		t.Fatalf("Substreams(5) returned %d generators", len(subs))
	}
	for i := range subs {
		want := base.Stream(i)
		for d := 0; d < 50; d++ {
			if subs[i].Uint64() != want.Uint64() {
				t.Fatalf("Substreams[%d] diverged from Stream(%d) at draw %d", i, i, d)
			}
		}
	}
}

func TestStreamNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stream(-1) should panic")
		}
	}()
	NewRNG(1).Stream(-1)
}
