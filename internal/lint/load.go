package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds expression types, uses, defs and selections for Files.
	Info *types.Info
	// Kind classifies the package for analyzer scoping.
	Kind Kind
}

// enginePackages are the deterministic core: every package whose rendered
// output must be byte-identical at any -j. Benchmark and serving packages
// (sbench, lbench, swbench, jobs, api, trace) are deliberately absent —
// they measure wall-clock time and manage detached lifecycles by design.
var enginePackages = map[string]bool{
	"repro/internal/core":        true,
	"repro/internal/sched":       true,
	"repro/internal/sweep":       true,
	"repro/internal/experiments": true,
	"repro/internal/machine":     true,
	"repro/internal/stats":       true,
	"repro/internal/scenario":    true,
	"repro/internal/report":      true,
}

// Classify derives a package's Kind from its import path relative to the
// module root.
func Classify(modPath, pkgPath string) Kind {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
	switch {
	case strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/"):
		return KindMain
	case rel == "":
		return KindLibrary | KindSurface
	case enginePackages[pkgPath]:
		return KindLibrary | KindEngine
	}
	return KindLibrary
}

// LoadModule walks the module rooted at root (the directory holding
// go.mod), parses every package matched by patterns, and type-checks each
// one against the stdlib source importer — no toolchain beyond the go
// distribution itself, no external modules. Patterns are "./..." (the
// whole module) or "./"-relative directories; an empty list means "./...".
func LoadModule(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := selectDirs(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// One source importer shared by every package: dependencies are parsed
	// and checked once, from source, with positions in the same fset.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, modPath, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir parses and type-checks the single package in dir, or returns
// (nil, nil) when dir holds no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, modPath, root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Kind:  Classify(modPath, path),
	}, nil
}

// selectDirs resolves patterns to package directories under root, skipping
// testdata, hidden directories and VCS metadata. "./..." (or the empty
// pattern list) selects every directory; "dir/..." selects a subtree; a
// plain directory selects itself.
func selectDirs(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		st, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}
