// Package repro is the public API of memdis, a Go reproduction of
// "A Quantitative Approach for Adopting Disaggregated Memory in HPC
// Systems" (Wahlgren, Schieffer, Gokhale, Peng — SC 2023,
// arXiv:2308.14780).
//
// The library provides:
//
//   - an emulated rack-scale memory-pooling platform (a compute node with a
//     local memory tier, a pooled remote tier behind a contended link, an L2
//     cache with a stream prefetcher, and a roofline-based timing model);
//   - the paper's three-level profiling methodology: Level 1 (intrinsic
//     characteristics), Level 2 (multi-tier access ratios against the R_cap
//     and R_BW references), Level 3 (interference sensitivity and the
//     interference coefficient);
//   - LBench, the link-interference generator and probe;
//   - six instrumented HPC workloads (HPL, Hypre, NekRS, BFS, SuperLU,
//     XSBench) with three input scales each;
//   - an interference-aware job scheduling simulator; and
//   - experiment drivers that regenerate every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
// The unified entry point is the Service facade — one handle owning the
// worker pool, the per-platform experiment suites, the memoizing artifact
// store and the sweep-campaign memo, with context-first execution:
//
//	svc, err := repro.New(repro.WithWorkers(8))
//	doc, err := svc.Artifact(ctx, repro.ArtifactRequest{Artifact: "figure9"})
//	camp, err := svc.Sweep(ctx, grid)   // cancellable mid-campaign
//
// The three-level profiling workflow is available directly:
//
//	p := repro.NewProfiler(repro.DefaultPlatform())
//	entry, _ := repro.Workload("XSBench")
//	l1 := p.Level1(entry, 1)            // intrinsic characteristics
//	l2 := p.Level2(entry, 1, 0.5)       // 50%-50% two-tier system
//	l3 := p.Level3(entry, 1, 0.5,       // interference sensitivity
//	    []float64{0, 0.25, 0.5})
//
// See the examples/ directory for complete programs, and docs/API.md for
// the versioned HTTP API Service.Handler serves.
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lbench"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/placement"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/roofline"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/workloads/bfs"
	"repro/internal/workloads/registry"
)

// Error classification sentinels: every lookup and validation failure the
// Service (and the /v1 HTTP layer riding on it) produces matches exactly
// one of these under errors.Is, so callers branch on kind — not on error
// text.
var (
	// ErrUnknownPlatform matches a failed scenario lookup (PlatformNamed,
	// ArtifactRequest.Platform, ?platform= query).
	ErrUnknownPlatform = scenario.ErrUnknown
	// ErrUnknownArtifact matches a failed artifact-id lookup, including a
	// figure alias used where a canonical id is required.
	ErrUnknownArtifact = experiments.ErrUnknownID
	// ErrInvalidSweep matches every sweep-campaign validation failure:
	// malformed or unknown axes, inadmissible values, oversized grids. The
	// library (Service.Sweep) and the HTTP layer run the same validator, so
	// the guardrails are identical on both surfaces.
	ErrInvalidSweep = sweep.ErrInvalid
)

// Platform describes the emulated node: memory geometry, cache and
// prefetcher, pool link, and the timing-model constants.
type Platform = machine.Config

// Machine is one emulated compute node executing a workload.
type Machine = machine.Machine

// PhaseStats is the per-phase measurement record all analyses derive from.
type PhaseStats = machine.PhaseStats

// DefaultPlatform returns the testbed-calibrated configuration: 73 GB/s /
// 111 ns local tier, 34 GB/s / 202 ns pool link with 85 GB/s peak raw
// traffic, 250 Gflop/s peak compute.
func DefaultPlatform() Platform { return machine.Default() }

// Scenario is a named, declarative platform scenario: a complete platform
// plus the capacity protocol to sweep on it. The registry answers the
// paper's "should *this* system adopt disaggregated memory" question for
// systems other than the testbed — CXL-generation link variants, pool-heavy
// capacity tiers, skewed splits.
type Scenario = scenario.Spec

// Platforms returns every registered scenario, the paper's testbed
// ("baseline") first — a thin wrapper over the default Service's scenario
// set (Default().Scenarios()).
func Platforms() []Scenario { return Default().Scenarios() }

// PlatformNamed looks up a scenario by name (e.g. "cxl-gen5").
func PlatformNamed(name string) (Scenario, error) { return scenario.Get(name) }

// NewMachine builds a machine for direct workload execution.
func NewMachine(p Platform) *Machine { return machine.New(p) }

// Profiler runs the paper's three-level analysis on a platform.
type Profiler = core.Profiler

// NewProfiler returns a profiler for the given platform.
func NewProfiler(p Platform) *Profiler { return core.NewProfiler(p) }

// Level1Report, Level2Report and Level3Report are the three analysis levels.
type (
	// Level1Report is the general workload characterization (§4).
	Level1Report = core.Level1Report
	// Level2Report quantifies multi-tier memory access (§5).
	Level2Report = core.Level2Report
	// Level3Report quantifies interference on memory pooling (§6).
	Level3Report = core.Level3Report
)

// TuningVerdict classifies a phase's remote access ratio against the R_cap
// and R_BW references.
type TuningVerdict = core.TuningVerdict

// Verdict values.
const (
	Balanced        = core.Balanced
	ExcessRemote    = core.ExcessRemote
	UnderusedRemote = core.UnderusedRemote
)

// WorkloadEntry describes one evaluated application (a row of Table 2).
type WorkloadEntry = registry.Entry

// Runnable is the workload interface: anything that drives a machine
// through named phases.
type Runnable = workloads.Workload

// Workloads returns the six evaluated applications in the paper's order —
// a thin wrapper over the default Service's workload table
// (Default().Workloads()).
func Workloads() []WorkloadEntry { return Default().Workloads() }

// Workload looks up an application by name (e.g. "BFS").
func Workload(name string) (WorkloadEntry, error) { return registry.Get(name) }

// Run executes a workload on a fresh machine and returns the machine with
// its recorded phases.
func Run(p Platform, w Runnable) *Machine { return core.Run(p, w) }

// ScalingPoint is one point of the Figure 6 bandwidth-capacity scaling
// curve: the hottest FootprintPct percent of pages carry AccessPct percent
// of memory accesses.
type ScalingPoint = core.ScalingPoint

// Roofline is the (memory-)roofline analytical model.
type Roofline = roofline.Model

// LBenchModel is the calibrated interference generator/probe.
type LBenchModel = lbench.Model

// NewLBench calibrates LBench against a platform.
func NewLBench(p Platform) LBenchModel { return lbench.NewModel(p) }

// LBenchConfig configures a generator run (threads, flops per element).
type LBenchConfig = lbench.Config

// Placement is the allocation placement policy (first-touch, forced local,
// forced remote).
type Placement = mem.Placement

// Placement values.
const (
	PlaceFirstTouch = mem.PlaceFirstTouch
	PlaceLocal      = mem.PlaceLocal
	PlaceRemote     = mem.PlaceRemote
)

// Job is one schedulable unit for the co-location simulator.
type Job = sched.Job

// SchedulePolicy selects queued jobs for freed nodes.
type SchedulePolicy = sched.Policy

// Scheduling policies.
const (
	FIFO              = sched.FIFO
	InterferenceAware = sched.InterferenceAware
)

// RackConfig describes a rack of nodes sharing one memory pool.
type RackConfig = sched.RackConfig

// Schedule simulates a job queue on a rack under the given policy.
func Schedule(rc RackConfig, queue []Job, pol SchedulePolicy) sched.ScheduleResult {
	return sched.Schedule(rc, queue, pol)
}

// ScheduleResult is the outcome of one rack co-location simulation.
type ScheduleResult = sched.ScheduleResult

// ScheduleSummary compares the baseline and interference-aware schedulers
// over repeated runs of one workload (the Figure 13 protocol).
type ScheduleSummary = sched.Summary

// CompareSchedulers runs the Figure 13 protocol: n runs of the profiled
// phases under the baseline (LoI 0-50%) and interference-aware (LoI 0-20%)
// interference processes.
func CompareSchedulers(name string, p Platform, phases []PhaseStats, n int, seed uint64) ScheduleSummary {
	return sched.Compare(name, p, phases, n, seed)
}

// CompareSchedulersParallel is CompareSchedulers with the Monte-Carlo runs
// fanned out over a bounded pool of workers goroutines. Every run owns a
// deterministic RNG substream keyed by its run index, so the summary is
// byte-identical to the sequential CompareSchedulers for any worker count.
func CompareSchedulersParallel(name string, p Platform, phases []PhaseStats, n int, seed uint64, workers int) ScheduleSummary {
	return sched.CompareParallel(name, p, phases, n, seed, workers)
}

// CompareSchedulersContext is CompareSchedulersParallel bounded by ctx:
// once ctx is done no further Monte-Carlo run starts and the call returns
// ctx.Err(). An uncancelled summary is byte-identical to
// CompareSchedulersParallel's.
func CompareSchedulersContext(ctx context.Context, name string, p Platform, phases []PhaseStats, n int, seed uint64, workers int) (ScheduleSummary, error) {
	return sched.CompareContext(ctx, name, p, phases, n, seed, pool.NewLimiter(workers))
}

// BFSVariant selects the §7.1 case-study placement strategy for BFS.
type BFSVariant = bfs.Variant

// BFS placement variants: the unmodified code, the hot-array-first
// reordering (fix 1), and reordering plus freeing the initialization
// scratch (fix 2, the paper's one-line change).
const (
	BFSBaseline    = bfs.Baseline
	BFSReorderOnly = bfs.ReorderOnly
	BFSOptimized   = bfs.Optimized
)

// NewBFS constructs a BFS instance at input scale 1, 2 or 4 with the given
// placement variant.
func NewBFS(scale int, v BFSVariant) Runnable {
	b := bfs.New(scale)
	b.Variant = v
	return b
}

// RegionStats summarizes placement and traffic for one named allocation —
// the per-allocation-site view behind the §7.1 hot-object analysis.
type RegionStats = mem.RegionStats

// SortRegionsHot returns regions sorted by descending access count.
func SortRegionsHot(regions []RegionStats) []RegionStats {
	return core.SortRegionsHot(regions)
}

// PlacementObject is one candidate for the §5.2 static placement
// optimizers: a profiled allocation site with size and access count.
type PlacementObject = placement.Object

// PlacementPlan assigns objects to tiers and predicts the resulting remote
// access ratio.
type PlacementPlan = placement.Plan

// PlacementFromRegions converts a Level-2 per-region profile into placement
// candidates.
func PlacementFromRegions(regions []RegionStats) []PlacementObject {
	return placement.FromRegions(regions)
}

// GreedyPlacement packs objects into the local tier hottest-density-first —
// the generalized §7.1 allocate-hottest-first recipe.
func GreedyPlacement(objects []PlacementObject, localCapacity uint64) PlacementPlan {
	return placement.Greedy(objects, localCapacity)
}

// ExactPlacement solves the placement as a 0/1 knapsack at page granularity
// (the NP-complete formulation §5.2 names, tractable at profile scale).
func ExactPlacement(objects []PlacementObject, localCapacity, pageSize uint64) PlacementPlan {
	return placement.Exact(objects, localCapacity, pageSize)
}

// InterleavePattern is the N:M tiered-page interleave of the kernel patch
// the paper cites; BandwidthInterleave picks the pattern matching the tier
// bandwidth ratio.
type InterleavePattern = placement.InterleavePattern

// BandwidthInterleave returns the N:M pattern proportional to the tier
// bandwidths.
func BandwidthInterleave(localBW, remoteBW float64, maxTerm int) InterleavePattern {
	return placement.BandwidthInterleave(localBW, remoteBW, maxTerm)
}

// RecordTrace executes the workload on a machine built from p while
// streaming its operation trace to w. The trace can later be replayed onto
// machines with different memory configurations — the profile-once /
// analyze-everywhere workflow.
func RecordTrace(p Platform, wl Runnable, w io.Writer) (*Machine, error) {
	m := NewMachine(p)
	err := trace.Record(m, wl.Run, w)
	return m, err
}

// ReplayTrace applies a recorded operation trace to a fresh machine built
// from p and returns it with the replayed phases.
func ReplayTrace(p Platform, r io.Reader) (*Machine, error) {
	m := NewMachine(p)
	if err := trace.Replay(m, r); err != nil {
		return nil, err
	}
	return m, nil
}

// ExperimentSuite regenerates the paper's tables and figures. Suite.All
// runs the drivers sequentially; Suite.AllParallel fans them out over a
// bounded worker pool with byte-identical output (see the Workers field for
// intra-driver fan-out).
type ExperimentSuite = experiments.Suite

// NewExperiments returns the experiment suite on the given platform with
// the paper's capacity protocol.
func NewExperiments(p Platform) *ExperimentSuite { return experiments.NewSuite(p) }

// NewExperimentsFor returns the experiment suite for a scenario: its
// platform plus its capacity sweep and headline split, so the drivers
// reproduce the paper's protocol on the alternate system (what the CLI's
// -platform flag does). Use this — not NewExperiments(sc.Platform), which
// would drop the scenario's capacity protocol — when starting from a
// Scenario.
//
// The scenario must be valid (every registered scenario is); hand-built
// specs with, e.g., a HeadlineFraction outside (0, 1) panic here with the
// validation error instead of silently running at the paper's 50% split.
func NewExperimentsFor(sc Scenario) *ExperimentSuite { return experiments.NewSuiteFor(sc) }

// ExperimentIDs lists every table/figure id in paper order — a thin
// wrapper over the default Service (Default().IDs()).
func ExperimentIDs() []string { return Default().IDs() }

// CanonicalArtifactID resolves an artifact id or figure alias ("fig9") to
// its canonical id ("figure9") — the id documents report, stores key on,
// and /v1 URLs use. Unknown ids match ErrUnknownArtifact.
func CanonicalArtifactID(id string) (string, error) { return experiments.CanonicalID(id) }

// SweepAxis is one swept dimension of a parameter-sweep campaign: an axis
// name ("gen" for interconnect generation, "lat" for added link latency in
// ns, "bw" for a link bandwidth scale factor, "frac" for the local
// capacity fraction) and the values it takes.
type SweepAxis = sweep.Axis

// ParseSweepAxis parses a command-line style axis declaration: either an
// explicit value list ("gen=0,5,6") or an inclusive range
// ("frac=0.25:0.75:0.25").
func ParseSweepAxis(s string) (SweepAxis, error) { return sweep.ParseAxis(s) }

// SweepGrid is a declarative sweep campaign: a base scenario plus the axes
// whose cross-product generates one derived scenario per grid cell, each
// with a canonical name such as "gen=5,frac=0.25". It is the unbounded
// generator counterpart of the fixed Platforms() registry.
type SweepGrid = sweep.Grid

// SweepCell holds one workload's headline metrics on one grid cell: the
// Level-2 remote access ratio and verdict, the Level-3 interference
// sensitivity and induced coefficient, and the scheduling comparison.
type SweepCell = sweep.Cell

// SweepCampaign is one executed sweep: every grid cell's metrics plus the
// base reference. Its Sweep and Sensitivity methods reduce it to the two
// artifact documents ("sweep": the long-form per-cell table;
// "sensitivity": per-axis marginal deltas vs the base with the best/worst
// frontier cells), renderable in any ArtifactFormat.
type SweepCampaign = sweep.Campaign

// DefaultSweepGrid returns the canonical two-axis campaign on a scenario's
// base system: interconnect generation (base link, CXL gen5, CXL gen6)
// crossed with the paper's three local-capacity fractions. It is the grid
// behind the "sweep" and "sensitivity" experiment artifacts.
func DefaultSweepGrid(base Scenario) SweepGrid { return sweep.DefaultGrid(base) }

// RunSweep executes a sweep campaign over the given grid with the paper's
// defaults (all six workloads, 100 scheduler runs per cell), fanned out
// over a bounded pool of workers (0 or less selects every core). The
// result is byte-identical for any worker count: each cell owns a
// deterministic RNG substream derived from its grid coordinates.
//
// Deprecated: use Service.Sweep, which memoizes campaigns single-flight
// per grid, shares the suite's warm profiler caches, and supports
// cancellation. RunSweep runs each call from scratch.
func RunSweep(g SweepGrid, workers int) (*SweepCampaign, error) {
	r := &sweep.Runner{Grid: g}
	return r.Run(pool.NewLimiter(pool.Workers(workers)))
}

// ExperimentResult is one experiment's outcome: its artifact id, its typed
// document (Report) and its text rendering (Render, which is
// RenderText(Report())).
type ExperimentResult = experiments.Result

// Doc is the typed artifact document every experiment reduces to: an
// ordered list of Table/Series/Timeline/Dist/Note blocks with units-aware
// cells. The renderers below and the artifact store consume Docs, so the
// same measurements serve text reports, JSON APIs and CSV exports.
type Doc = report.Doc

// ArtifactFormat names one of the pluggable renderers ("text", "json",
// "csv").
type ArtifactFormat = report.Format

// Renderer formats.
const (
	FormatText = report.FormatText
	FormatJSON = report.FormatJSON
	FormatCSV  = report.FormatCSV
)

// ParseArtifactFormat resolves a format spelling ("text", "json", "csv";
// "txt" accepted, case-insensitive) — the parser behind the CLI -format
// flag and the HTTP ?format= parameter. Failure returns a structured
// error listing every accepted spelling.
func ParseArtifactFormat(s string) (ArtifactFormat, error) { return report.ParseFormat(s) }

// RenderText renders a document as plain text, byte-identical to the
// artifact's historical Render() output.
func RenderText(d Doc) string { return report.RenderText(d) }

// RenderJSON renders a document as lossless, schema-stable JSON: the
// output unmarshals back into an equal Doc.
func RenderJSON(d Doc) (string, error) { return report.RenderJSON(d) }

// RenderCSV renders a document as sectioned, machine-parseable CSV with
// raw (unformatted) numeric values.
func RenderCSV(d Doc) (string, error) { return report.RenderCSV(d) }

// ParseArtifactJSON is the inverse of RenderJSON: it recovers the typed
// document from its JSON rendering — what a client of the /v1 API decodes
// responses with.
func ParseArtifactJSON(s string) (Doc, error) { return report.ParseJSON(s) }

// RenderArtifact renders a document in the given format.
func RenderArtifact(d Doc, f ArtifactFormat) (string, error) { return report.Render(d, f) }

// ArtifactSource computes the document of one artifact on one platform —
// the seam an ArtifactStore sits in front of.
type ArtifactSource = report.Source

// ArtifactStore memoizes artifact documents and renders per (platform,
// artifact, format), writes artifact directories, and serves artifacts
// over HTTP (Handler).
type ArtifactStore = report.Store

// NewArtifactStore returns an empty store over the given source.
func NewArtifactStore(src ArtifactSource) *ArtifactStore { return report.NewStore(src) }

// NewExperimentSource adapts the experiment suites to an ArtifactSource:
// one suite per requested scenario (built with NewExperimentsFor, so each
// uses its scenario's capacity protocol), documents computed on demand
// through the context-aware engine path. The returned source is safe for
// concurrent use, though the store it usually sits behind serializes
// document computation anyway.
//
// Only canonical artifact ids (ExperimentIDs) are accepted: an alias like
// "fig9" errors with a pointer to the canonical id rather than computing
// and caching a duplicate document under a key that diverges from the
// document's Artifact field.
//
// Deprecated: this is the default Service's source, exposed for callers
// that assemble their own ArtifactStore. New code should use Service
// (repro.New), whose store already sits in front of this source.
func NewExperimentSource() ArtifactSource {
	return Default().source
}
