// Package xsbench implements the Monte Carlo neutron transport proxy of the
// paper's Table 2 (XSBench): macroscopic cross-section lookups against a
// unionized energy grid.
//
// The structure mirrors the original proxy app: per-nuclide energy grids
// with interpolated cross-section values, a unionized energy grid over all
// nuclides, and an index grid mapping each unionized point to the bracketing
// gridpoint of every nuclide. Lookups binary-search the unionized energies,
// read one index-grid row, and gather two gridpoints from every nuclide.
//
// The memory behaviour reproduces the paper's findings: the index grid
// dominates the footprint but receives only a couple of cacheline touches
// per lookup, while the (much smaller) energy and nuclide arrays take the
// dense traffic — so the remote access ratio stays low (<6%) at every
// pooling configuration (Figure 9), prefetch coverage is near zero
// (Figure 8), and performance is latency-bound rather than bandwidth-bound
// (§5.1).
package xsbench

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// NumXS is the number of cross-section channels per gridpoint
// (total, elastic, absorption, fission, nu-fission) plus the energy itself.
const NumXS = 6

// XSBench is one proxy-app instance.
type XSBench struct {
	// Nuclides is the nuclide count; Gridpoints the per-nuclide energy
	// gridpoint count; Lookups the number of macro-XS queries.
	Nuclides, Gridpoints, Lookups int
	seed                          uint64

	// After Run: Checksum accumulates the computed macro cross-sections
	// (the XSBench verification hash analogue).
	Checksum float64
}

// New returns an XSBench instance at input scale 1, 2 or 4 (gridpoints
// double per step, like the paper's 11303/22606/45212 inputs).
func New(scale int) *XSBench {
	g := 1500
	switch scale {
	case 2:
		g = 3000
	case 4:
		g = 6000
	}
	return &XSBench{Nuclides: 64, Gridpoints: g, Lookups: 20000, seed: 0x5b}
}

// Name implements workloads.Workload.
func (x *XSBench) Name() string { return "XSBench" }

// Run implements workloads.Workload.
func (x *XSBench) Run(m *machine.Machine) {
	nn, g := x.Nuclides, x.Gridpoints
	ug := nn * g
	rng := stats.NewRNG(x.seed)

	// ---- p1: grid initialization ----------------------------------------
	// Allocation order matters for the tiering profile: the small, hot
	// structures (unionized energies, nuclide grids) come first and land
	// in the local tier; the huge index grid comes last and spills.
	m.StartPhase("p1")

	// Per-nuclide energy grids: sorted uniform randoms in (0,1).
	nuclideEnergy := make([][]float64, nn)
	nucGrids := workloads.NewVec(m, "nuclide-grids", nn*g*NumXS)
	for n := 0; n < nn; n++ {
		es := make([]float64, g)
		for i := range es {
			es[i] = rng.Float64()
		}
		sort.Float64s(es)
		nuclideEnergy[n] = es
		base := (n * g) * NumXS
		for i := 0; i < g; i++ {
			rec := base + i*NumXS
			nucGrids.Data[rec] = es[i]
			for c := 1; c < NumXS; c++ {
				// Smooth channel values tied to the energy so linear
				// interpolation is exactly verifiable.
				nucGrids.Data[rec+c] = float64(c) * es[i]
			}
		}
		nucGrids.WriteRange(base, g*NumXS)
		m.AddFlops(float64(g * NumXS))
	}

	// Unionized energy grid: merge of all nuclide energies, sorted.
	union := make([]float64, 0, ug)
	for _, es := range nuclideEnergy {
		union = append(union, es...)
	}
	sort.Float64s(union)
	unionVec := workloads.NewVec(m, "unionized-energies", ug)
	copy(unionVec.Data, union)
	unionVec.WriteRange(0, ug)

	// Index grid: for every unionized point, the bracketing gridpoint
	// index in every nuclide. This is the footprint giant.
	index := workloads.NewIntVec(m, "index-grid", ug*nn)
	cursors := make([]int, nn)
	for u := 0; u < ug; u++ {
		e := union[u]
		row := u * nn
		for n := 0; n < nn; n++ {
			for cursors[n] < g-1 && nuclideEnergy[n][cursors[n]+1] < e {
				cursors[n]++
			}
			index.Data[row+n] = int32(cursors[n])
		}
		index.WriteRange(row, nn)
	}
	m.EndPhase()

	// ---- p2: cross-section lookups ---------------------------------------
	m.StartPhase("p2")
	checksum := 0.0
	macro := make([]float64, NumXS-1)
	tickEvery := x.Lookups / 10
	if tickEvery == 0 {
		tickEvery = 1
	}
	for l := 0; l < x.Lookups; l++ {
		e := rng.Float64()
		// Binary search the unionized energies (simulated touches along
		// the probe path).
		lo, hi := 0, ug-1
		for lo < hi {
			mid := (lo + hi) / 2
			unionVec.ReadRange(mid, 1)
			if unionVec.Data[mid] < e {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		u := lo
		if u == ug {
			u = ug - 1
		}
		// One index-grid row.
		index.ReadRange(u*nn, nn)
		for c := range macro {
			macro[c] = 0
		}
		// Gather the bracketing gridpoints from every nuclide and
		// interpolate each channel.
		for n := 0; n < nn; n++ {
			gi := int(index.Data[u*nn+n])
			if gi >= g-1 {
				gi = g - 2
			}
			recLo := (n*g + gi) * NumXS
			recHi := recLo + NumXS
			nucGrids.ReadRange(recLo, NumXS)
			nucGrids.ReadRange(recHi, NumXS)
			eLo := nucGrids.Data[recLo]
			eHi := nucGrids.Data[recHi]
			f := 0.0
			if eHi > eLo {
				f = (e - eLo) / (eHi - eLo)
			}
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			for c := 1; c < NumXS; c++ {
				v := nucGrids.Data[recLo+c] + f*(nucGrids.Data[recHi+c]-nucGrids.Data[recLo+c])
				macro[c-1] += v
			}
			m.AddFlops(float64(3 + 3*(NumXS-1)))
		}
		checksum += macro[0]
		if (l+1)%tickEvery == 0 {
			m.Tick()
		}
	}
	m.EndPhase()
	x.Checksum = checksum
}
