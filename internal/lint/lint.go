// Package lint is the repo's custom static-analysis suite: a small,
// stdlib-only driver (go/parser + go/ast + go/types, no external modules)
// plus one analyzer per engine contract. The contracts it enforces are the
// load-bearing guarantees the rest of the repo is built on:
//
//   - determinism: engine packages produce byte-identical artifacts at any
//     worker count, so wall-clock reads, ambient randomness and
//     map-iteration-ordered output are banned there (analyzer
//     "determinism").
//   - cachekeys: memoization and single-flight coalescing key on typed
//     comparable structs, never Sprintf/concatenated strings (analyzer
//     "cachekeys").
//   - errsentinel: errors are classified with errors.Is/errors.As against
//     exported sentinels, never by substring-matching err.Error()
//     (analyzer "errsentinel").
//   - ctxflow: exported entry points take context.Context as their first
//     parameter, and library code never manufactures its own root context
//     (analyzer "ctxflow").
//   - exporteddocs: every exported symbol on the public facade carries a
//     godoc comment, and the facade's load-bearing symbols exist (analyzer
//     "exporteddocs").
//
// A diagnostic is suppressed by a comment of the form
//
//	//repro:allow <rule>[,<rule>...] — <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: an allow without one is itself a diagnostic. The driver also
// reports allows that suppressed nothing, so stale annotations cannot
// accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Kind classifies a package for analyzer scoping.
type Kind uint8

const (
	// KindLibrary marks importable (non-main) packages. Most analyzers run
	// here.
	KindLibrary Kind = 1 << iota
	// KindEngine marks the deterministic engine packages whose rendered
	// output must be byte-identical at any worker count; the determinism
	// analyzer runs only here.
	KindEngine
	// KindSurface marks the public facade (the module root package) whose
	// exported symbols must all carry godoc comments.
	KindSurface
	// KindMain marks executable packages (cmd/..., examples/...): linted
	// for error classification, exempt from library-only rules.
	KindMain
)

// Diagnostic is one reported contract violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule names the analyzer (or "allow" for suppression-syntax errors).
	Rule string
	// Message is the human-readable diagnostic.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed non-test files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression facts for Files.
	Info *types.Info
	// Path is the package's import path.
	Path string
	// Kind scopes which analyzers apply.
	Kind Kind

	rule string
	out  *[]Diagnostic
}

// Reportf records a diagnostic at pos under the running analyzer's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when the checker recorded
// none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzer is one named contract check.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //repro:allow comments.
	Name string
	// Doc is a one-line description of the contract.
	Doc string
	// Appl is the package-kind mask the analyzer runs on.
	Appl Kind
	// Run inspects one package and reports via pass.Reportf.
	Run func(*Pass)
}

// Analyzers is the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		CacheKeysAnalyzer(),
		ErrSentinelAnalyzer(),
		CtxFlowAnalyzer(),
		ExportedDocsAnalyzer(),
	}
}

// allow is one parsed //repro:allow annotation.
type allow struct {
	pos   token.Position
	rules map[string]bool
	used  bool
}

// parseAllows scans a file's comments for //repro:allow annotations and
// returns them keyed by the last line they cover (the comment's own line
// and the line below it). Malformed annotations — no rule list, or a rule
// list without a reason — are reported as rule "allow" diagnostics.
func parseAllows(fset *token.FileSet, f *ast.File, out *[]Diagnostic) map[int][]*allow {
	byLine := map[int][]*allow{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//repro:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) == 0 {
				*out = append(*out, Diagnostic{Pos: pos, Rule: "allow",
					Message: "malformed suppression: want //repro:allow <rule>[,<rule>] — <reason>"})
				continue
			}
			a := &allow{pos: pos, rules: map[string]bool{}}
			for _, r := range strings.Split(fields[0], ",") {
				if r != "" {
					a.rules[r] = true
				}
			}
			// The reason is whatever follows the rule list; an em-dash or
			// hyphen separator alone does not count as one.
			reason := strings.TrimLeft(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0])), "—–- ")
			if reason == "" {
				*out = append(*out, Diagnostic{Pos: pos, Rule: "allow",
					Message: "suppression without a reason: want //repro:allow <rule>[,<rule>] — <reason>"})
				continue
			}
			byLine[pos.Line] = append(byLine[pos.Line], a)
			byLine[pos.Line+1] = append(byLine[pos.Line+1], a)
		}
	}
	return byLine
}

// RunAnalyzers executes every applicable analyzer over pkgs, applies
// //repro:allow suppressions, reports stale allows, and returns the
// surviving diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		// Suppressions are parsed per file once, shared by every analyzer.
		allows := map[string]map[int][]*allow{}
		var syntaxDiags []Diagnostic
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			allows[name] = parseAllows(pkg.Fset, f, &syntaxDiags)
		}

		var raw []Diagnostic
		for _, a := range analyzers {
			if pkg.Kind&a.Appl == 0 {
				continue
			}
			pass := &Pass{
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				Path:  pkg.Path,
				Kind:  pkg.Kind,
				rule:  a.Name,
				out:   &raw,
			}
			a.Run(pass)
		}

		for _, d := range raw {
			if suppressed(allows[d.Pos.Filename], d) {
				continue
			}
			all = append(all, d)
		}
		all = append(all, syntaxDiags...)

		// A suppression that matched nothing is stale: either the violation
		// was fixed (drop the comment) or the rule name is wrong.
		for _, byLine := range allows {
			for _, lineAllows := range byLine {
				for _, a := range lineAllows {
					if !a.used && !staleReported(all, a.pos) {
						all = append(all, Diagnostic{Pos: a.pos, Rule: "allow",
							Message: "stale suppression: no diagnostic here to allow"})
					}
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		if all[i].Pos.Line != all[j].Pos.Line {
			return all[i].Pos.Line < all[j].Pos.Line
		}
		return all[i].Rule < all[j].Rule
	})
	return all
}

// suppressed marks the covering allow used and reports whether d is
// silenced by one.
func suppressed(byLine map[int][]*allow, d Diagnostic) bool {
	hit := false
	for _, a := range byLine[d.Pos.Line] {
		if a.rules[d.Rule] {
			a.used = true
			hit = true
		}
	}
	return hit
}

// staleReported reports whether a stale-suppression diagnostic for pos is
// already present (each allow is indexed under two lines; report it once).
func staleReported(ds []Diagnostic, pos token.Position) bool {
	for _, d := range ds {
		if d.Rule == "allow" && d.Pos == pos && strings.HasPrefix(d.Message, "stale suppression") {
			return true
		}
	}
	return false
}
