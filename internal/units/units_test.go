package units

import "testing"

func TestBytes(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{512, "512 B"},
		{2 * KiB, "2.00 KiB"},
		{3 * MiB, "3.00 MiB"},
		{5 * GiB, "5.00 GiB"},
		{2 * TiB, "2.00 TiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBandwidth(t *testing.T) {
	if got := Bandwidth(34e9); got != "34.00 GB/s" {
		t.Errorf("Bandwidth = %q", got)
	}
	if got := Bandwidth(12.8e12); got != "12.80 TB/s" {
		t.Errorf("Bandwidth = %q", got)
	}
}

func TestFlops(t *testing.T) {
	if got := Flops(250e9); got != "250.00 Gflop/s" {
		t.Errorf("Flops = %q", got)
	}
	if got := Flops(1.5e12); got != "1.50 Tflop/s" {
		t.Errorf("Flops = %q", got)
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.5, "2.50 s"},
		{0.0025, "2.50 ms"},
		{2.5e-6, "2.50 us"},
		{202e-9, "202.00 ns"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.135); got != "13.5%" {
		t.Errorf("Percent = %q", got)
	}
}
