package experiments

import (
	"context"
	"errors"
	"sync"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// baseSpec wraps the suite's platform and capacity protocol as a scenario
// spec — the base system sweep campaigns derive their grids from, so
// `memdis -platform cxl-gen5 sweep` sweeps around that scenario's link and
// protocol rather than the testbed's.
func (s *Suite) baseSpec() scenario.Spec {
	return scenario.Spec{
		Name:              s.Cfg.Name,
		Description:       "the suite's base platform",
		Platform:          s.Cfg,
		CapacityFractions: s.fractions(),
		HeadlineFraction:  s.headline(),
	}
}

// SweepGrid returns the campaign grid over the given axes on the suite's
// base system; nil axes select the canonical generation x capacity-fraction
// grid (sweep.DefaultGrid) that backs the "sweep" and "sensitivity"
// artifacts.
func (s *Suite) SweepGrid(axes []sweep.Axis) sweep.Grid {
	if axes == nil {
		return sweep.DefaultGrid(s.baseSpec())
	}
	return sweep.Grid{Base: s.baseSpec(), Axes: axes}
}

// campaignEntry is one single-flight memo slot of Suite.RunSweep.
type campaignEntry struct {
	once sync.Once
	c    *sweep.Campaign
	err  error
}

// maxCampaigns bounds the campaign memo. Grid keys are request-controlled
// on the serve path (`GET /sweep?axis=...`), and each memoized campaign
// holds every cell of an executed grid — an unbounded map would let a
// client grow server memory one query at a time (the same reason
// report.Store refuses to memoize errors). When full, an arbitrary older
// entry is evicted; eviction only costs recomputation, never changes
// results.
const maxCampaigns = 16

// RunSweep executes a campaign grid with the suite's workload table,
// Monte-Carlo run count and concurrency budget, reusing the suite's warm
// profiler for the base platform. Campaigns are memoized single-flight
// per grid key, so the "sweep" and "sensitivity" artifacts — even when
// AllParallel requests them concurrently — and repeated requests for the
// same grid share one execution. (The memo assumes Entries and Runs are
// configured before the first campaign runs, like the other suite fields.)
func (s *Suite) RunSweep(g sweep.Grid) (*sweep.Campaign, error) {
	//repro:allow ctxflow — ctx-less compatibility wrapper; cancellable callers use RunSweepContext
	return s.RunSweepContext(context.Background(), g)
}

// RunSweepContext is RunSweep bounded by ctx: the campaign's fan-out draws
// from a context-carrying limiter, so once ctx is done the call returns
// ctx.Err() within one cell boundary (see sweep.Runner.RunContext). An
// abandoned campaign is never memoized — the single-flight slot is dropped
// so the next request for the grid re-runs it. An uncancelled call
// memoizes and returns exactly RunSweep's campaign. Like the other
// context-first entry points, concurrent invocations on one Suite
// serialize.
func (s *Suite) RunSweepContext(ctx context.Context, g sweep.Grid) (*sweep.Campaign, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.acquireInvoke(ctx); err != nil {
		return nil, err
	}
	defer s.releaseInvoke()
	return s.runSweepLocked(ctx, g)
}

// runSweepLocked is the memoized campaign executor. It must run inside an
// engine invocation: either holding the invocation slot (the
// RunSweepContext entry point) or on the engine's own task tree (the
// sweep/sensitivity drivers via defaultCampaign), where the installed
// limiter is safe to read.
func (s *Suite) runSweepLocked(ctx context.Context, g sweep.Grid) (*sweep.Campaign, error) {
	key := g.Key()
	s.sweepMu.Lock()
	if s.sweeps == nil {
		s.sweeps = map[string]*campaignEntry{}
	}
	e, ok := s.sweeps[key]
	if !ok {
		if len(s.sweeps) >= maxCampaigns {
			// Arbitrary-victim eviction of a bounded memo: which entry is
			// dropped affects only recompute cost, never rendered output.
			//repro:allow determinism — memo eviction victim choice never reaches results
			for k := range s.sweeps {
				if k != key {
					delete(s.sweeps, k)
					break
				}
			}
		}
		e = &campaignEntry{}
		s.sweeps[key] = e
	}
	s.sweepMu.Unlock()
	e.once.Do(func() {
		r := &sweep.Runner{
			Grid:         g,
			Entries:      s.Entries,
			Runs:         s.Runs,
			BaseProfiler: s.Profiler,
			Cache:        s.Profiler.Cache(),
		}
		e.c, e.err = r.RunContext(ctx, s.lim())
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// Do not let an abandoned execution poison the memo: a later,
		// uncancelled request must be able to run the grid afresh.
		s.sweepMu.Lock()
		if s.sweeps[key] == e {
			delete(s.sweeps, key)
		}
		s.sweepMu.Unlock()
	}
	return e.c, e.err
}

// defaultCampaign runs (or returns the memoized) default-grid campaign.
// It is the engine-internal path of the sweep/sensitivity drivers — called
// from inside a running invocation, so it must not take the invocation
// slot.
func (s *Suite) defaultCampaign() *sweep.Campaign {
	//repro:allow ctxflow — engine-internal driver path: the installed invocation context governs the run; see below
	c, err := s.runSweepLocked(context.Background(), s.SweepGrid(nil))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The engine's installed context died mid-campaign (the grid
			// itself always validates). The driver's result is discarded by
			// the cancelled RunContext/AllParallelContext anyway, so an
			// empty campaign placeholder (frontier indices -1, like an
			// empty grid's) never escapes.
			return &sweep.Campaign{Best: -1, Worst: -1}
		}
		panic(err) // unreachable: the default grid always validates
	}
	return c
}

// SweepResult is the "sweep" artifact: the default campaign's long-form
// per-cell table over the generation x capacity-fraction grid.
type SweepResult struct {
	// Campaign is the executed default-grid campaign.
	Campaign *sweep.Campaign
}

// Sweep runs the default sweep campaign (shared with Sensitivity).
func (s *Suite) Sweep() SweepResult { return SweepResult{Campaign: s.defaultCampaign()} }

// ID implements Result.
func (SweepResult) ID() string { return "sweep" }

// Report implements Result.
func (r SweepResult) Report() report.Doc { return r.Campaign.Sweep() }

// Render implements Result.
func (r SweepResult) Render() string { return report.RenderText(r.Report()) }

// SensitivityResult is the "sensitivity" artifact: per-axis marginal
// deltas of the default campaign against the base system, with the
// best/worst frontier cells.
type SensitivityResult struct {
	// Campaign is the executed default-grid campaign.
	Campaign *sweep.Campaign
}

// Sensitivity runs the default sweep campaign (shared with Sweep) and
// reduces it to the axis-sensitivity view.
func (s *Suite) Sensitivity() SensitivityResult {
	return SensitivityResult{Campaign: s.defaultCampaign()}
}

// ID implements Result.
func (SensitivityResult) ID() string { return "sensitivity" }

// Report implements Result.
func (r SensitivityResult) Report() report.Doc { return r.Campaign.Sensitivity() }

// Render implements Result.
func (r SensitivityResult) Render() string { return report.RenderText(r.Report()) }
