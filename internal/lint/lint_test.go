package lint

import (
	"fmt"
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureKinds maps each fixture package under testdata/src to the Kind it
// is analyzed as, standing in for the classification the real module gets
// from Classify.
var fixtureKinds = map[string]Kind{
	"determinism":  KindLibrary | KindEngine,
	"cachekeys":    KindLibrary,
	"errsentinel":  KindLibrary,
	"ctxflow":      KindLibrary,
	"exporteddocs": KindLibrary | KindSurface,
	"allowsyntax":  KindLibrary,
}

// fixtures loads every fixture package once, sharing a single fset and
// source importer so the stdlib is parsed and type-checked only once.
var fixtures struct {
	once sync.Once
	pkgs map[string]*Package
	err  error
}

func fixturePackage(t *testing.T, name string) *Package {
	t.Helper()
	fixtures.once.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			fixtures.err = err
			return
		}
		root := filepath.Dir(filepath.Dir(wd))
		modPath, err := modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			fixtures.err = err
			return
		}
		fset := token.NewFileSet()
		imp := importer.ForCompiler(fset, "source", nil)
		fixtures.pkgs = map[string]*Package{}
		for fixture, kind := range fixtureKinds {
			dir := filepath.Join(wd, "testdata", "src", fixture)
			pkg, err := loadDir(fset, imp, modPath, root, dir)
			if err != nil {
				fixtures.err = fmt.Errorf("fixture %s: %w", fixture, err)
				return
			}
			if pkg == nil {
				fixtures.err = fmt.Errorf("fixture %s: no Go files in %s", fixture, dir)
				return
			}
			pkg.Kind = kind
			fixtures.pkgs[fixture] = pkg
		}
	})
	if fixtures.err != nil {
		t.Fatalf("loading fixtures: %v", fixtures.err)
	}
	pkg := fixtures.pkgs[name]
	if pkg == nil {
		t.Fatalf("no fixture %q", name)
	}
	return pkg
}

// expectation is one parsed `// want <rule> "substring"` marker.
type expectation struct {
	line    int
	rule    string
	substr  string
	matched bool
}

var wantRe = regexp.MustCompile(`want\s+([a-z]+)\s+"([^"]*)"`)

// wantsOf collects the expectations declared in a fixture's comments; each
// marker expects a diagnostic on the marker's own line.
func wantsOf(pkg *Package) []*expectation {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					out = append(out, &expectation{
						line:   pkg.Fset.Position(c.Pos()).Line,
						rule:   m[1],
						substr: m[2],
					})
				}
			}
		}
	}
	return out
}

// TestAnalyzersOnFixtures runs the full suite over each fixture package
// and requires the diagnostics to match the fixture's want markers exactly:
// every marker fires, nothing else does, and honored //repro:allow
// suppressions stay silent.
func TestAnalyzersOnFixtures(t *testing.T) {
	for _, fixture := range []string{"determinism", "cachekeys", "errsentinel", "ctxflow", "exporteddocs"} {
		t.Run(fixture, func(t *testing.T) {
			pkg := fixturePackage(t, fixture)
			diags := RunAnalyzers([]*Package{pkg}, Analyzers())
			wants := wantsOf(pkg)
			for _, d := range diags {
				ok := false
				for _, w := range wants {
					if !w.matched && w.line == d.Pos.Line && w.rule == d.Rule && strings.Contains(d.Message, w.substr) {
						w.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing diagnostic: line %d, rule %s, message containing %q", w.line, w.rule, w.substr)
				}
			}
		})
	}
}

// TestAllowSyntax exercises the suppression driver itself: a reason-less
// allow is reported and suppresses nothing, and an allow covering no
// diagnostic is reported as stale. The expectations live here rather than
// in want markers because the defects are the allow comments.
func TestAllowSyntax(t *testing.T) {
	pkg := fixturePackage(t, "allowsyntax")
	diags := RunAnalyzers([]*Package{pkg}, Analyzers())
	want := []struct {
		line   int
		rule   string
		substr string
	}{
		{12, "allow", "suppression without a reason"},
		{13, "errsentinel", "strings.Contains over err.Error()"},
		{18, "allow", "stale suppression"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || d.Rule != w.rule || !strings.Contains(d.Message, w.substr) {
			t.Errorf("diagnostic %d = %s; want line %d, rule %s, message containing %q", i, d, w.line, w.rule, w.substr)
		}
	}
}

// TestRequiredSurfaceDrift verifies the typed symbol-drift gate: present
// symbols, methods and consts pass, while missing functions, types and
// methods each produce a drift diagnostic.
func TestRequiredSurfaceDrift(t *testing.T) {
	pkg := fixturePackage(t, "exporteddocs")
	RequiredSurface[pkg.Path] = []string{
		"Documented", "Documented.Render", "NewDocumented", "MaxCells", // present
		"Ghost", "GhostType.Render", "Documented.Missing", // gone
	}
	defer delete(RequiredSurface, pkg.Path)

	var drift []Diagnostic
	for _, d := range RunAnalyzers([]*Package{pkg}, Analyzers()) {
		if strings.Contains(d.Message, "public surface drifted") {
			drift = append(drift, d)
		}
	}
	for _, substr := range []string{
		"Ghost is gone",
		"type GhostType is gone",
		"method Documented.Missing is gone",
	} {
		found := false
		for _, d := range drift {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no drift diagnostic containing %q", substr)
		}
	}
	if len(drift) != 3 {
		for _, d := range drift {
			t.Logf("got: %s", d)
		}
		t.Errorf("got %d drift diagnostics, want 3", len(drift))
	}
}

// TestClassify pins the package-kind mapping the analyzer scoping depends
// on.
func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		path string
		kind Kind
	}{
		{"repro", KindLibrary | KindSurface},
		{"repro/internal/core", KindLibrary | KindEngine},
		{"repro/internal/report", KindLibrary | KindEngine},
		{"repro/internal/api", KindLibrary},
		{"repro/internal/jobs", KindLibrary},
		{"repro/internal/sbench", KindLibrary},
		{"repro/cmd/reprolint", KindMain},
		{"repro/cmd/repro", KindMain},
		{"repro/examples/quickstart", KindMain},
	} {
		if got := Classify("repro", tc.path); got != tc.kind {
			t.Errorf("Classify(repro, %s) = %d, want %d", tc.path, got, tc.kind)
		}
	}
}

// TestReprolintCleanOnRepo is the satellite guarantee: the suite runs
// clean over the real module, so any new violation fails the test tier as
// well as the CI reprolint step.
func TestReprolintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck; the CI quick tier runs cmd/reprolint directly")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd))
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, d := range RunAnalyzers(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
