package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/stats"
)

func obj(name string, bytes, accesses uint64) Object {
	return Object{Name: name, Bytes: bytes, Accesses: accesses}
}

func TestGreedyPinsHottestFirst(t *testing.T) {
	objects := []Object{
		obj("cold-big", 1<<20, 100),
		obj("hot-small", 1<<12, 100000),
		obj("warm", 1<<16, 5000),
	}
	plan := Greedy(objects, 1<<16+1<<12)
	if len(plan.Local) != 2 {
		t.Fatalf("want hot-small+warm local, got %v", plan.Local)
	}
	if plan.Local[0].Name != "hot-small" || plan.Local[1].Name != "warm" {
		t.Errorf("local order should be hottest-first: %v", plan.Local)
	}
	if len(plan.Remote) != 1 || plan.Remote[0].Name != "cold-big" {
		t.Errorf("cold-big should stay remote: %v", plan.Remote)
	}
}

func TestGreedySkipsOversizedButContinues(t *testing.T) {
	objects := []Object{
		obj("huge-hot", 1<<20, 1e6),  // hottest density but does not fit
		obj("small-warm", 1<<10, 10), // fits
	}
	plan := Greedy(objects, 1<<12)
	if len(plan.Local) != 1 || plan.Local[0].Name != "small-warm" {
		t.Fatalf("greedy should skip the oversized object and keep packing: %+v", plan)
	}
}

func TestGreedyZeroCapacity(t *testing.T) {
	plan := Greedy([]Object{obj("a", 10, 10)}, 0)
	if len(plan.Local) != 0 || len(plan.Remote) != 1 {
		t.Fatalf("nothing fits in zero capacity: %+v", plan)
	}
	if r := plan.RemoteAccessRatio(); r != 1 {
		t.Errorf("all-remote ratio = %v, want 1", r)
	}
}

func TestExactBeatsGreedyOnAdversarialCase(t *testing.T) {
	// Classic knapsack trap: greedy takes the densest object, which
	// blocks the two that together are worth more.
	ps := uint64(1)
	objects := []Object{
		obj("dense", 6, 61),  // density 10.2
		obj("half-a", 5, 50), // density 10
		obj("half-b", 5, 50),
	}
	greedy := Greedy(objects, 10)
	exact := Exact(objects, 10, ps)
	gLocal := uint64(0)
	for _, o := range greedy.Local {
		gLocal += o.Accesses
	}
	eLocal := uint64(0)
	for _, o := range exact.Local {
		eLocal += o.Accesses
	}
	if eLocal < gLocal {
		t.Fatalf("exact (%d) must not lose to greedy (%d)", eLocal, gLocal)
	}
	if eLocal != 100 {
		t.Fatalf("exact should pick the two halves (100), got %d", eLocal)
	}
}

func TestExactRespectsCapacity(t *testing.T) {
	ps := uint64(4096)
	objects := []Object{
		obj("a", 10*ps, 100),
		obj("b", 6*ps, 80),
		obj("c", 5*ps, 70),
	}
	plan := Exact(objects, 12*ps, ps)
	if plan.LocalBytes > 12*ps {
		t.Fatalf("plan exceeds capacity: %d > %d", plan.LocalBytes, 12*ps)
	}
	// Optimal is b+c (150) over a (100).
	var got uint64
	for _, o := range plan.Local {
		got += o.Accesses
	}
	if got != 150 {
		t.Fatalf("exact value = %d, want 150", got)
	}
}

func TestExactPanicsOnZeroPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Exact(nil, 10, 0)
}

func TestRemoteAccessRatio(t *testing.T) {
	plan := Plan{
		Local:  []Object{obj("l", 1, 75)},
		Remote: []Object{obj("r", 1, 25)},
	}
	if r := plan.RemoteAccessRatio(); r != 0.25 {
		t.Fatalf("ratio = %v, want 0.25", r)
	}
	if r := (Plan{}).RemoteAccessRatio(); r != 0 {
		t.Fatalf("empty plan ratio = %v, want 0", r)
	}
}

// localNames flattens a plan's local set for comparison.
func localNames(p Plan) []string {
	out := make([]string, 0, len(p.Local))
	for _, o := range p.Local {
		out = append(out, o.Name)
	}
	return out
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]int{}
	for _, s := range a {
		m[s]++
	}
	for _, s := range b {
		m[s]--
	}
	for _, n := range m {
		if n != 0 {
			return false
		}
	}
	return true
}

// TestGreedyExactAgreementTable pins the small inputs where the greedy
// heuristic is provably optimal: there the exact knapsack must select the
// same local set, so the two optimizers validate each other.
func TestGreedyExactAgreementTable(t *testing.T) {
	const ps = 4096
	cases := []struct {
		name      string
		objects   []Object
		capacity  uint64
		wantLocal []string
	}{
		{"empty input", nil, 8 * ps, nil},
		{"zero capacity", []Object{obj("a", ps, 10)}, 0, nil},
		{"single object fits", []Object{obj("a", ps, 10)}, ps, []string{"a"}},
		{"single object too big", []Object{obj("a", 2*ps, 10)}, ps, nil},
		{
			"everything fits",
			[]Object{obj("a", ps, 5), obj("b", 2*ps, 50), obj("c", ps, 500)},
			4 * ps,
			[]string{"a", "b", "c"},
		},
		{
			"equal sizes, hotness decides",
			[]Object{obj("cold", ps, 1), obj("warm", ps, 10), obj("hot", ps, 100)},
			2 * ps,
			[]string{"hot", "warm"},
		},
		{
			"dominant hot object crowds out the rest",
			[]Object{obj("hot-big", 3*ps, 9000), obj("cold-a", 2*ps, 10), obj("cold-b", 2*ps, 10)},
			3 * ps,
			[]string{"hot-big"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Greedy(tc.objects, tc.capacity)
			e := Exact(tc.objects, tc.capacity, ps)
			if !sameSet(localNames(g), tc.wantLocal) {
				t.Errorf("greedy local = %v, want %v", localNames(g), tc.wantLocal)
			}
			if !sameSet(localNames(e), localNames(g)) {
				t.Errorf("exact local %v disagrees with greedy %v on a greedy-optimal input",
					localNames(e), localNames(g))
			}
			if g.LocalBytes > tc.capacity || e.LocalBytes > tc.capacity {
				t.Errorf("capacity exceeded: greedy=%d exact=%d cap=%d",
					g.LocalBytes, e.LocalBytes, tc.capacity)
			}
		})
	}
}

// TestInterleaveEdgePatterns pins the degenerate N:M patterns: no remote
// pages, no local pages, and the empty pattern.
func TestInterleaveEdgePatterns(t *testing.T) {
	local, remote := 73e9, 34e9
	cases := []struct {
		name    string
		p       InterleavePattern
		tier0   mem.Tier // tier of page 0
		wantAgg float64
	}{
		{"all-local N:0", InterleavePattern{Local: 3, Remote: 0}, mem.TierLocal, local},
		{"all-remote 0:M", InterleavePattern{Local: 0, Remote: 2}, mem.TierRemote, remote},
		{"empty 0:0", InterleavePattern{}, mem.TierLocal, local},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 6; i++ {
				if got := tc.p.TierOf(i); got != tc.tier0 {
					t.Fatalf("TierOf(%d) = %v, want %v for every page", i, got, tc.tier0)
				}
			}
			if got := tc.p.AggregateBandwidth(local, remote); got != tc.wantAgg {
				t.Errorf("AggregateBandwidth = %v, want %v", got, tc.wantAgg)
			}
		})
	}
	// Degenerate tier bandwidths collapse BandwidthInterleave to all-local.
	for _, bw := range [][2]float64{{0, remote}, {local, 0}, {0, 0}} {
		p := BandwidthInterleave(bw[0], bw[1], 8)
		if p.Local != 1 || p.Remote != 0 {
			t.Errorf("BandwidthInterleave(%v, %v) = %+v, want all-local 1:0", bw[0], bw[1], p)
		}
	}
}

// Property: Exact never yields fewer local accesses than Greedy, and both
// respect the capacity bound.
func TestExactDominatesGreedyProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(seed uint16, n uint8) bool {
		count := int(n%8) + 1
		objects := make([]Object, count)
		for i := range objects {
			objects[i] = Object{
				Name:     string(rune('a' + i)),
				Bytes:    uint64(rng.Intn(16)+1) * 4096,
				Accesses: uint64(rng.Intn(10000)),
			}
		}
		capacity := uint64(rng.Intn(32)+1) * 4096
		g := Greedy(objects, capacity)
		e := Exact(objects, capacity, 4096)
		if g.LocalBytes > capacity || e.LocalBytes > capacity {
			return false
		}
		var gv, ev uint64
		for _, o := range g.Local {
			gv += o.Accesses
		}
		for _, o := range e.Local {
			ev += o.Accesses
		}
		return ev >= gv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthInterleaveMatchesTestbedRatio(t *testing.T) {
	// 73:34 is close to 2:1.
	p := BandwidthInterleave(73e9, 34e9, 8)
	if p.Remote == 0 {
		t.Fatalf("pattern should use both tiers: %+v", p)
	}
	ratio := float64(p.Local) / float64(p.Remote)
	if ratio < 1.8 || ratio > 2.4 {
		t.Errorf("73:34 pattern ratio = %.2f, want ~2.1", ratio)
	}
}

func TestInterleaveTierOf(t *testing.T) {
	p := InterleavePattern{Local: 2, Remote: 1}
	want := []mem.Tier{mem.TierLocal, mem.TierLocal, mem.TierRemote, mem.TierLocal, mem.TierLocal, mem.TierRemote}
	for i, w := range want {
		if got := p.TierOf(i); got != w {
			t.Errorf("TierOf(%d) = %v, want %v", i, got, w)
		}
	}
	all := InterleavePattern{Local: 1, Remote: 0}
	if all.TierOf(5) != mem.TierLocal {
		t.Error("remote=0 pattern must be all-local")
	}
}

func TestInterleaveAggregateBandwidth(t *testing.T) {
	local, remote := 73e9, 34e9
	p := BandwidthInterleave(local, remote, 8)
	agg := p.AggregateBandwidth(local, remote)
	// The paper's §2.1 point: adding a tier can increase aggregate
	// bandwidth beyond the fast tier alone.
	if agg <= local {
		t.Errorf("interleave aggregate %.1f GB/s should beat local-only %.1f GB/s", agg/1e9, local/1e9)
	}
	if agg > local+remote+1 {
		t.Errorf("aggregate cannot exceed the sum of tiers: %v", agg)
	}
	// A pathologically skewed pattern underuses the remote tier.
	bad := InterleavePattern{Local: 8, Remote: 1}
	if bad.AggregateBandwidth(local, remote) >= agg {
		t.Error("bandwidth-matched pattern should beat a skewed one")
	}
}

// Property: aggregate bandwidth of any pattern is between min(tier) and the
// sum of tiers.
func TestInterleaveBandwidthBoundsProperty(t *testing.T) {
	f := func(l, r uint8) bool {
		p := InterleavePattern{Local: int(l%8) + 1, Remote: int(r % 8)}
		agg := p.AggregateBandwidth(73e9, 34e9)
		return agg >= 34e9-1 && agg <= 73e9+34e9+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRegions(t *testing.T) {
	regs := []mem.RegionStats{
		{Region: &mem.Region{Name: "a", Size: 4096}, Accesses: 10},
		{Region: &mem.Region{Name: "empty", Size: 0}, Accesses: 5},
		{Region: nil},
	}
	objs := FromRegions(regs)
	if len(objs) != 1 || objs[0].Name != "a" {
		t.Fatalf("FromRegions should keep only live sized regions: %+v", objs)
	}
}
