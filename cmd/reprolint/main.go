// Command reprolint runs the repo's contract analyzers (internal/lint)
// over the module: determinism, cachekeys, errsentinel, ctxflow and
// exporteddocs. It is stdlib-only — go/parser, go/ast and go/types with
// the source importer — so CI runs it with nothing but the go toolchain:
//
//	go run ./cmd/reprolint ./...
//
// Diagnostics print one per line as path:line:col: rule: message. Exit
// status is 0 when the tree is clean, 1 when any diagnostic is reported,
// and 2 when packages fail to load or type-check. Suppress a single
// diagnostic with a //repro:allow <rule> — <reason> comment on the
// offending line or the line above; the driver rejects reason-less and
// stale suppressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("rules", false, "list the analyzers and their contracts, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: reprolint [-rules] [pattern ...]\n\npatterns are ./... (default), dir/..., or package directories\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot finds the nearest enclosing directory holding a go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
