// Package superlu implements the sparse LU workload of the paper's Table 2:
// a left-looking (Gilbert–Peierls style) sparse LU factorization with
// partial pivoting and dynamic fill-in, applied to 3D-lattice matrices that
// stand in for the paper's UF collection inputs (SiO/H2O/Si34H36 — mesh-like
// symmetric-pattern matrices; see DESIGN.md for the substitution argument).
//
// Phase structure follows the paper's three-phase profile: p1 generates the
// matrix and the column data structures, p2 factorizes (the fill-dominated
// phase whose footprint grows superlinearly with the input — the cause of
// SuperLU's shifting bandwidth–capacity curve in Figure 6), and p3 performs
// the triangular solves.
package superlu

import (
	"math"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// SuperLU is one factorization instance.
type SuperLU struct {
	// N is the lattice edge; the matrix is order N^3 with the 7-point
	// connectivity pattern.
	N    int
	seed uint64

	// After Run:
	// RelResidual is ||Ax-b||_inf / ||b||_inf for the solved system.
	RelResidual float64
	// FillNNZ is nnz(L)+nnz(U) after factorization; InputNNZ is nnz(A).
	FillNNZ  int
	InputNNZ int
}

// New returns a SuperLU instance at input scale 1, 2 or 4; nnz(A) grows
// roughly 1:1.7:4 like the paper's SiO/H2O/Si34H36 series, and the
// factors' footprint grows faster (fill-in), shifting the access CDF.
func New(scale int) *SuperLU {
	n := 10
	switch scale {
	case 2:
		n = 12
	case 4:
		n = 14
	}
	return &SuperLU{N: n, seed: 0x51}
}

// Name implements workloads.Workload.
func (s *SuperLU) Name() string { return "SuperLU" }

// csc is a compressed sparse column matrix with int32 indexing.
type csc struct {
	n      int
	colPtr []int32
	rowIdx []int32
	values []float64
}

// lattice7 builds the 7-point lattice matrix of order n^3: diagonal 6+eps,
// off-diagonals -1 with small asymmetric noise so pivoting has real work.
func lattice7(n int, rng *stats.RNG) *csc {
	order := n * n * n
	idx := func(i, j, k int) int32 { return int32((k*n+j)*n + i) }
	colPtr := make([]int32, order+1)
	var rowIdx []int32
	var values []float64
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				col := idx(i, j, k)
				add := func(r int32, v float64) {
					rowIdx = append(rowIdx, r)
					values = append(values, v)
				}
				// Row indices appended in increasing order.
				if k > 0 {
					add(idx(i, j, k-1), -1+0.1*rng.Float64())
				}
				if j > 0 {
					add(idx(i, j-1, k), -1+0.1*rng.Float64())
				}
				if i > 0 {
					add(idx(i-1, j, k), -1+0.1*rng.Float64())
				}
				add(col, 6+0.5*rng.Float64())
				if i < n-1 {
					add(idx(i+1, j, k), -1+0.1*rng.Float64())
				}
				if j < n-1 {
					add(idx(i, j+1, k), -1+0.1*rng.Float64())
				}
				if k < n-1 {
					add(idx(i, j, k+1), -1+0.1*rng.Float64())
				}
				colPtr[col+1] = int32(len(rowIdx))
			}
		}
	}
	return &csc{n: order, colPtr: colPtr, rowIdx: rowIdx, values: values}
}

// Run implements workloads.Workload.
func (s *SuperLU) Run(m *machine.Machine) {
	rng := stats.NewRNG(s.seed)

	// ---- p1: matrix generation and setup --------------------------------
	m.StartPhase("p1")
	a := lattice7(s.N, rng)
	order := a.n
	s.InputNNZ = len(a.values)

	aPtr := workloads.NewIntVec(m, "A.colptr", order+1)
	aIdx := workloads.NewIntVec(m, "A.rowidx", len(a.rowIdx))
	aVal := workloads.NewVec(m, "A.values", len(a.values))
	copy(aPtr.Data, a.colPtr)
	copy(aIdx.Data, a.rowIdx)
	copy(aVal.Data, a.values)
	aPtr.WriteRange(0, order+1)
	aIdx.WriteRange(0, len(a.rowIdx))
	aVal.WriteRange(0, len(a.values))

	bv := workloads.NewVec(m, "b", order)
	for i := range bv.Data {
		bv.Data[i] = rng.Float64() - 0.5
	}
	bv.WriteRange(0, order)
	m.AddFlops(float64(len(a.values)))
	m.EndPhase()

	// ---- p2: factorization ----------------------------------------------
	m.StartPhase("p2")
	lu := s.factor(m, a, aPtr, aIdx, aVal)
	m.EndPhase()

	// ---- p3: triangular solves -------------------------------------------
	m.StartPhase("p3")
	x := s.solve(m, lu, bv)
	m.EndPhase()

	// Verify against the original matrix.
	r := make([]float64, order)
	copy(r, bvOrig(bv))
	for j := 0; j < order; j++ {
		xj := x[j]
		for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
			r[a.rowIdx[p]] -= a.values[p] * xj
		}
	}
	normR, normB := 0.0, 0.0
	for i := range r {
		normR = math.Max(normR, math.Abs(r[i]))
		normB = math.Max(normB, math.Abs(bvOrig(bv)[i]))
	}
	if normB == 0 {
		normB = 1
	}
	s.RelResidual = normR / normB
	s.FillNNZ = lu.nnz()
}

func bvOrig(bv *workloads.Vec) []float64 { return bv.Data }

// luFactors holds L (unit diagonal, stored without it) and U by column,
// plus the pivot order.
type luFactors struct {
	order     int
	lPtr      []int32
	lIdx      []int32 // row indices (original numbering)
	lVal      []float64
	uPtr      []int32
	uIdx      []int32 // pivot positions k
	uVal      []float64
	pivotRow  []int32 // pivotRow[k] = original row chosen as k-th pivot
	pinvCache []int32
	// Simulated backing for the factor arrays: allocated in chunks as
	// fill-in grows.
	lStore, uStore *workloads.Vec
}

func (f *luFactors) nnz() int { return len(f.lVal) + len(f.uVal) }

// factor runs left-looking LU with partial pivoting using a dense sparse
// accumulator (SPA) per column.
func (s *SuperLU) factor(m *machine.Machine, a *csc, aPtr, aIdx *workloads.IntVec, aVal *workloads.Vec) *luFactors {
	order := a.n
	f := &luFactors{
		order:    order,
		lPtr:     make([]int32, 1, order+1),
		uPtr:     make([]int32, 1, order+1),
		pivotRow: make([]int32, order),
	}
	// Pre-size the simulated factor stores generously; fill beyond the
	// estimate grows them (new allocations, like SuperLU's memory
	// expansion).
	est := len(a.values) * 8
	f.lStore = workloads.NewVec(m, "LU.L", est)
	f.uStore = workloads.NewVec(m, "LU.U", est)

	pinv := make([]int32, order) // original row -> pivot position, or -1
	for i := range pinv {
		pinv[i] = -1
	}
	spa := workloads.NewVec(m, "spa", order)
	marked := make([]int32, order)
	for i := range marked {
		marked[i] = -1
	}

	for j := 0; j < order; j++ {
		// Scatter A(:,j) into the SPA.
		aPtr.ReadRange(j, 2)
		lo, hi := a.colPtr[j], a.colPtr[j+1]
		aIdx.ReadRange(int(lo), int(hi-lo))
		aVal.ReadRange(int(lo), int(hi-lo))
		for p := lo; p < hi; p++ {
			r := a.rowIdx[p]
			spa.Data[r] = a.values[p]
			marked[r] = int32(j)
			spa.WriteAt(int(r), a.values[p])
		}
		// Left-looking update: apply every earlier pivot k whose row has
		// a nonzero in this column, in pivot order.
		for k := 0; k < j; k++ {
			r := f.pivotRow[k]
			if marked[r] != int32(j) || spa.Data[r] == 0 {
				continue
			}
			ukj := spa.Data[r]
			spa.ReadRange(int(r), 1)
			// spa -= ukj * L(:,k)
			lLo, lHi := f.lPtr[k], f.lPtr[k+1]
			f.lStore.ReadRange(int(lLo), int(lHi-lLo))
			for p := lLo; p < lHi; p++ {
				rr := f.lIdx[p]
				if marked[rr] != int32(j) {
					marked[rr] = int32(j)
					spa.Data[rr] = 0
				}
				spa.Data[rr] -= ukj * f.lVal[p]
				spa.WriteAt(int(rr), spa.Data[rr])
			}
			m.AddFlops(float64(2 * (lHi - lLo)))
		}
		// Partial pivot: largest magnitude among not-yet-pivotal rows.
		var pivotVal float64
		pivot := int32(-1)
		for r := 0; r < order; r++ {
			if marked[r] != int32(j) || pinv[r] >= 0 {
				continue
			}
			if v := math.Abs(spa.Data[r]); v > pivotVal {
				pivotVal, pivot = v, int32(r)
			}
		}
		if pivot < 0 {
			// Structurally empty column: take any unpivoted row.
			for r := 0; r < order; r++ {
				if pinv[r] < 0 {
					pivot = int32(r)
					spa.Data[pivot] = 1e-300
					marked[pivot] = int32(j)
					break
				}
			}
		}
		f.pivotRow[j] = pivot
		pinv[pivot] = int32(j)
		pv := spa.Data[pivot]

		// Emit U(:,j): entries at already-pivotal rows, by pivot position.
		for k := 0; k < j; k++ {
			r := f.pivotRow[k]
			if marked[r] == int32(j) && spa.Data[r] != 0 {
				f.uIdx = append(f.uIdx, int32(k))
				f.uVal = append(f.uVal, spa.Data[r])
			}
		}
		f.uIdx = append(f.uIdx, int32(j))
		f.uVal = append(f.uVal, pv)
		f.uPtr = append(f.uPtr, int32(len(f.uVal)))

		// Emit L(:,j): remaining rows, scaled by the pivot.
		for r := 0; r < order; r++ {
			if marked[r] != int32(j) || pinv[r] >= 0 || spa.Data[r] == 0 {
				continue
			}
			f.lIdx = append(f.lIdx, int32(r))
			f.lVal = append(f.lVal, spa.Data[r]/pv)
		}
		f.lPtr = append(f.lPtr, int32(len(f.lVal)))
		m.AddFlops(float64(f.lPtr[j+1] - f.lPtr[j]))

		// Simulated store writes for the freshly emitted column, growing
		// the backing as fill exceeds the estimate.
		s.growStores(m, f)
		uLo, uHi := f.uPtr[j], f.uPtr[j+1]
		f.uStore.WriteRange(int(uLo), int(uHi-uLo))
		lLo, lHi := f.lPtr[j], f.lPtr[j+1]
		if lHi > lLo {
			f.lStore.WriteRange(int(lLo), int(lHi-lLo))
		}
		if j%64 == 63 {
			m.Tick()
		}
	}
	return f
}

// growStores extends the simulated factor arrays when fill-in outgrows them.
func (s *SuperLU) growStores(m *machine.Machine, f *luFactors) {
	if len(f.lVal) > f.lStore.Len() {
		f.lStore = workloads.NewVec(m, "LU.L-grow", len(f.lVal)*2)
	}
	if len(f.uVal) > f.uStore.Len() {
		f.uStore = workloads.NewVec(m, "LU.U-grow", len(f.uVal)*2)
	}
}

// solve performs Ly = Pb then Ux = y in pivot order.
func (s *SuperLU) solve(m *machine.Machine, f *luFactors, bv *workloads.Vec) []float64 {
	order := f.order
	// y in pivot-position space.
	y := make([]float64, order)
	bv.ReadRange(0, order)
	for k := 0; k < order; k++ {
		y[k] = bv.Data[f.pivotRow[k]]
	}
	// Forward solve with unit L: columns in pivot order.
	for k := 0; k < order; k++ {
		yk := y[k]
		if yk == 0 {
			continue
		}
		lo, hi := f.lPtr[k], f.lPtr[k+1]
		f.lStore.ReadRange(int(lo), int(hi-lo))
		for p := lo; p < hi; p++ {
			// f.lIdx[p] is an original row; its pivot position is where
			// the update lands once that row becomes pivotal.
			y[s.pinvPos(f, f.lIdx[p])] -= f.lVal[p] * yk
		}
		m.AddFlops(float64(2 * (hi - lo)))
	}
	// Back solve with U (columns hold entries by pivot position).
	x := make([]float64, order)
	for k := order - 1; k >= 0; k-- {
		lo, hi := f.uPtr[k], f.uPtr[k+1]
		f.uStore.ReadRange(int(lo), int(hi-lo))
		// Last entry of the column is the diagonal.
		xk := y[k] / f.uVal[hi-1]
		x[k] = xk
		for p := lo; p < hi-1; p++ {
			y[f.uIdx[p]] -= f.uVal[p] * xk
		}
		m.AddFlops(float64(2 * (hi - lo)))
	}
	// Permute back to original column numbering: column j of A was
	// eliminated at position j (left-looking processes columns in order),
	// so x is already in column order.
	bv.WriteRange(0, order)
	return x
}

// pinvPos returns the pivot position of an original row, computing it from
// pivotRow lazily (rows below the current column are assigned later, but
// solve runs after factorization completes, so every row has a position).
func (s *SuperLU) pinvPos(f *luFactors, row int32) int32 {
	if f.pinvCache == nil {
		f.pinvCache = make([]int32, f.order)
		for k, r := range f.pivotRow {
			f.pinvCache[r] = int32(k)
		}
	}
	return f.pinvCache[row]
}
