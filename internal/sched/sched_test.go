package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/stats"
)

// phaseRemote builds a synthetic phase with the given remote traffic share.
func phaseRemote(totalBytes uint64, remoteFrac float64, flops float64) machine.PhaseStats {
	remote := uint64(float64(totalBytes) * remoteFrac)
	return machine.PhaseStats{
		Name:             "p2",
		Flops:            flops,
		LocalBytes:       totalBytes - remote,
		RemoteBytes:      remote,
		DemandMissLocal:  (totalBytes - remote) / 64 / 4,
		DemandMissRemote: remote / 64 / 4,
	}
}

func testConfig() machine.Config { return machine.Default() }

// mcRuns scales a Monte-Carlo run count down in the quick tier: the
// simulations are analytic and cheap, but the tiered harness keeps every
// package's -short cost proportional to its signal.
func mcRuns(n int) int {
	if testing.Short() {
		if n = n / 5; n < 10 {
			n = 10
		}
	}
	return n
}

func TestSimulateRunIdleMatchesModel(t *testing.T) {
	cfg := testConfig()
	ph := phaseRemote(1<<30, 0.5, 1e9)
	rng := stats.NewRNG(1)
	got := SimulateRun(cfg, []machine.PhaseStats{ph}, Interference{MaxLoI: 0, Period: 60}, rng)
	want := cfg.PhaseTime(ph, 0)
	if rel := (got - want) / want; rel > 1e-6 || rel < -1e-6 {
		t.Fatalf("idle simulation %.6g != model %.6g", got, want)
	}
}

func TestSimulateRunInterferenceSlowsDown(t *testing.T) {
	cfg := testConfig()
	ph := phaseRemote(8<<30, 0.8, 1e9)
	idle := SimulateRun(cfg, []machine.PhaseStats{ph}, Interference{MaxLoI: 0}, stats.NewRNG(1))
	loaded := SimulateRun(cfg, []machine.PhaseStats{ph}, Interference{MaxLoI: 0.5}, stats.NewRNG(1))
	if loaded <= idle {
		t.Fatalf("interference should slow the run: idle=%.4g loaded=%.4g", idle, loaded)
	}
}

func TestSimulateRunCrossesRerollBoundaries(t *testing.T) {
	cfg := testConfig()
	// A run much longer than one period must survive many re-rolls.
	ph := phaseRemote(64<<30, 0.7, 1e9)
	pol := Interference{MaxLoI: 0.5, Period: 1} // tiny period: many boundaries
	got := SimulateRun(cfg, []machine.PhaseStats{ph}, pol, stats.NewRNG(7))
	idle := cfg.PhaseTime(ph, 0)
	if got < idle {
		t.Fatalf("run under interference finished faster than idle: %.4g < %.4g", got, idle)
	}
	if got > idle*3 {
		t.Fatalf("implausible slowdown %.2fx", got/idle)
	}
}

func TestDistributionDeterministicPerSeed(t *testing.T) {
	cfg := testConfig()
	ph := []machine.PhaseStats{phaseRemote(1<<30, 0.5, 1e9)}
	a := Distribution(cfg, ph, Baseline(), 20, 42)
	b := Distribution(cfg, ph, Baseline(), 20, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Distribution(cfg, ph, Baseline(), 20, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestCompareAwareImprovesSensitiveJob(t *testing.T) {
	cfg := testConfig()
	// High remote share, low AI: the Hypre-like sensitive case.
	ph := []machine.PhaseStats{phaseRemote(8<<30, 0.8, 1e8)}
	s := Compare("hypre-like", cfg, ph, mcRuns(100), 5)
	if s.MeanSpeedup <= 0 {
		t.Errorf("aware scheduling should speed up a sensitive job, got %.4f", s.MeanSpeedup)
	}
	if s.P75Reduction <= 0 {
		t.Errorf("aware scheduling should cut the 75th percentile, got %.4f", s.P75Reduction)
	}
	if s.Aware.Max-s.Aware.Min >= s.Baseline.Max-s.Baseline.Min {
		t.Errorf("aware range %.4g should be tighter than baseline %.4g",
			s.Aware.Max-s.Aware.Min, s.Baseline.Max-s.Baseline.Min)
	}
}

func TestCompareInsensitiveJobUnaffected(t *testing.T) {
	cfg := testConfig()
	// No remote traffic: interference cannot matter.
	ph := []machine.PhaseStats{phaseRemote(1<<30, 0, 1e9)}
	s := Compare("local-only", cfg, ph, mcRuns(50), 9)
	if s.MeanSpeedup > 0.001 {
		t.Errorf("local-only job should see ~0 speedup, got %.4f", s.MeanSpeedup)
	}
}

func TestJobInjectedRawScalesWithRemoteTraffic(t *testing.T) {
	cfg := testConfig()
	lo := Job{Name: "lo", Phases: []machine.PhaseStats{phaseRemote(1<<30, 0.1, 1e9)}}
	hi := Job{Name: "hi", Phases: []machine.PhaseStats{phaseRemote(1<<30, 0.9, 1e9)}}
	if lo.InjectedRaw(cfg) >= hi.InjectedRaw(cfg) {
		t.Fatalf("more remote traffic must inject more: lo=%.3g hi=%.3g",
			lo.InjectedRaw(cfg), hi.InjectedRaw(cfg))
	}
}

func TestScheduleRunsAllJobs(t *testing.T) {
	cfg := testConfig()
	rc := RackConfig{Nodes: 2, Machine: cfg}
	var queue []Job
	for i := 0; i < 5; i++ {
		queue = append(queue, Job{
			Name:   string(rune('a' + i)),
			Phases: []machine.PhaseStats{phaseRemote(1<<28, 0.5, 1e8)},
			IC:     1 + float64(i)*0.1,
		})
	}
	res := Schedule(rc, queue, FIFO)
	if len(res.Jobs) != 5 {
		t.Fatalf("completed %d/5 jobs", len(res.Jobs))
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
	for _, j := range res.Jobs {
		if j.End <= j.Start {
			t.Errorf("job %s has end %.4g <= start %.4g", j.Name, j.End, j.Start)
		}
		if j.Slowdown() < 1-1e-9 {
			t.Errorf("job %s ran faster than idle: slowdown %.4f", j.Name, j.Slowdown())
		}
	}
}

func TestScheduleRespectsNodeCount(t *testing.T) {
	cfg := testConfig()
	rc := RackConfig{Nodes: 1, Machine: cfg}
	queue := []Job{
		{Name: "a", Phases: []machine.PhaseStats{phaseRemote(1<<28, 0.5, 1e8)}},
		{Name: "b", Phases: []machine.PhaseStats{phaseRemote(1<<28, 0.5, 1e8)}},
	}
	res := Schedule(rc, queue, FIFO)
	// With one node the jobs must be serialized: second starts at first's end.
	if len(res.Jobs) != 2 {
		t.Fatalf("completed %d/2", len(res.Jobs))
	}
	if res.Jobs[1].Start < res.Jobs[0].End-1e-9 {
		t.Errorf("jobs overlapped on a single node: %v", res.Jobs)
	}
	// Serialized jobs see no co-runner interference.
	for _, j := range res.Jobs {
		if j.Slowdown() > 1+1e-6 {
			t.Errorf("job %s slowed down with no co-runner: %.4f", j.Name, j.Slowdown())
		}
	}
}

func TestScheduleAwareBeatsFIFOOnMixedQueue(t *testing.T) {
	cfg := testConfig()
	rc := RackConfig{Nodes: 2, Machine: cfg}
	// Two loud pool-heavy jobs (high IC, also sensitive — the Hypre/NekRS
	// regime) and two quiet mostly-local jobs. FIFO co-locates the two
	// loud jobs; the aware policy interleaves loud with quiet.
	loud := func(n string) Job {
		return Job{Name: n, Phases: []machine.PhaseStats{phaseRemote(4<<30, 0.9, 1e8)}, IC: 1.6, Sensitivity: 0.15}
	}
	quiet := func(n string) Job {
		return Job{Name: n, Phases: []machine.PhaseStats{phaseRemote(4<<30, 0.1, 1e8)}, IC: 1.05, Sensitivity: 0.05}
	}
	queue := []Job{loud("l1"), loud("l2"), quiet("q1"), quiet("q2")}
	fifo := Schedule(rc, queue, FIFO)
	aware := Schedule(rc, queue, InterferenceAware)
	if aware.MaxSlowdown() >= fifo.MaxSlowdown() {
		t.Errorf("aware max slowdown %.4f should beat fifo %.4f",
			aware.MaxSlowdown(), fifo.MaxSlowdown())
	}
	if aware.MeanSlowdown() > fifo.MeanSlowdown()+1e-9 {
		t.Errorf("aware mean slowdown %.4f should not exceed fifo %.4f",
			aware.MeanSlowdown(), fifo.MeanSlowdown())
	}
}

func TestScheduleEmptyQueue(t *testing.T) {
	res := Schedule(RackConfig{Nodes: 2, Machine: testConfig()}, nil, FIFO)
	if len(res.Jobs) != 0 || res.Makespan != 0 {
		t.Fatalf("empty queue should be a no-op: %+v", res)
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || InterferenceAware.String() != "interference-aware" {
		t.Fatal("policy names wrong")
	}
}

// Property: simulated run time is always at least the idle-model time and at
// most the fully-loaded-model time, for any remote share and LoI cap.
func TestSimulateRunBoundedProperty(t *testing.T) {
	cfg := testConfig()
	f := func(remotePct uint8, maxLoIPct uint8, seed uint16) bool {
		remoteFrac := float64(remotePct%101) / 100
		maxLoI := float64(maxLoIPct%51) / 100
		ph := phaseRemote(1<<29, remoteFrac, 5e8)
		phs := []machine.PhaseStats{ph}
		got := SimulateRun(cfg, phs, Interference{MaxLoI: maxLoI, Period: 0.5}, stats.NewRNG(uint64(seed)+1))
		lo := cfg.PhaseTime(ph, 0)
		hi := cfg.PhaseTime(ph, maxLoI)
		return got >= lo*(1-1e-9) && got <= hi*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionParallelByteIdentical(t *testing.T) {
	cfg := testConfig()
	ph := []machine.PhaseStats{phaseRemote(1<<30, 0.5, 1e9)}
	want := Distribution(cfg, ph, Baseline(), 40, 42)
	for _, workers := range []int{2, 4, 16} {
		got := DistributionParallel(cfg, ph, Baseline(), 40, 42, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: run %d diverged: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestCompareParallelByteIdentical(t *testing.T) {
	cfg := testConfig()
	ph := []machine.PhaseStats{phaseRemote(8<<30, 0.8, 1e8)}
	want := Compare("x", cfg, ph, 60, 5)
	got := CompareParallel("x", cfg, ph, 60, 5, 8)
	if want != got {
		t.Fatalf("parallel summary diverged:\nseq: %+v\npar: %+v", want, got)
	}
}

// Property: runs of a distribution are independent draws — permuting the
// run count must not change the values of earlier runs (substreams are
// keyed by run index, not consumed from one shared stream).
func TestDistributionPrefixStable(t *testing.T) {
	cfg := testConfig()
	ph := []machine.PhaseStats{phaseRemote(1<<30, 0.6, 1e9)}
	short := Distribution(cfg, ph, Baseline(), 10, 7)
	long := Distribution(cfg, ph, Baseline(), 30, 7)
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("run %d changed when n grew: %v vs %v", i, short[i], long[i])
		}
	}
}
