package experiments

import (
	"fmt"

	"repro/internal/lbench"
	"repro/internal/link"
	"repro/internal/pool"
	"repro/internal/report"
)

// Figure10Row is the sensitivity series of one workload's compute phase on
// one capacity configuration.
type Figure10Row struct {
	Workload string
	// Relative[i] is the performance at LoILevels[i] relative to LoI=0.
	Relative []float64
}

// Figure10Config is one panel of Figure 10.
type Figure10Config struct {
	LocalFraction float64
	Rows          []Figure10Row
}

// Figure10Result is the three-panel interference-sensitivity figure.
type Figure10Result struct {
	LoIs    []float64
	Configs []Figure10Config
}

// Figure10 quantifies every workload's sensitivity to pool interference at
// LoI 0-50% on the suite's capacity configurations.
func (s *Suite) Figure10() Figure10Result {
	fractions := s.fractions()
	rows := pool.Map(s.lim(), len(fractions)*len(s.Entries), func(i int) Figure10Row {
		e := s.Entries[i%len(s.Entries)]
		rep := s.Profiler.Level3(e, 1, fractions[i/len(s.Entries)], LoILevels)
		return Figure10Row{Workload: e.Name, Relative: rep.Relative}
	})
	res := Figure10Result{LoIs: LoILevels}
	for fi, frac := range fractions {
		res.Configs = append(res.Configs, Figure10Config{
			LocalFraction: frac,
			Rows:          rows[fi*len(s.Entries) : (fi+1)*len(s.Entries)],
		})
	}
	return res
}

// ID implements Result.
func (Figure10Result) ID() string { return "figure10" }

// Report builds relative performance per workload and LoI, per panel.
func (r Figure10Result) Report() report.Doc {
	d := report.New("figure10")
	for _, panel := range r.Configs {
		headers := []string{"Workload (p2)"}
		for _, loi := range r.LoIs {
			headers = append(headers, fmt.Sprintf("LoI=%d", int(loi*100)))
		}
		tb := report.NewTable(fmt.Sprintf(
			"Figure 10 (%d%%-%d%% capacity): relative performance under interference",
			pct(panel.LocalFraction), pct(1-panel.LocalFraction)), headers...)
		for _, row := range panel.Rows {
			cells := []report.Cell{report.Str(row.Workload)}
			for _, v := range row.Relative {
				cells = append(cells, report.Fixed(v, 3))
			}
			tb.Row(cells...)
		}
		d.Append(tb.Block(), report.Gap())
	}
	return *d
}

// Render implements Result.
func (r Figure10Result) Render() string { return report.RenderText(r.Report()) }

// Figure11Result is the three-panel LBench validation figure.
type Figure11Result struct {
	// Left panel: configured intensity (%) vs measured LoI (%), for one and
	// two generator threads.
	ConfiguredPct          []float64
	Measured1T, Measured2T []float64
	// Middle panel: flops/element sweep with the resulting interference
	// coefficient (LBench) and the saturating raw link traffic (PCM).
	FlopsPerElement []int
	IC              []float64
	PCMTrafficGBs   []float64
	// Right panel: per-application induced interference coefficient at the
	// suite's headline pooling setup (time-weighted mean with per-phase
	// extremes). AppPooled is the pooled (remote) capacity share used.
	AppPooled               float64
	Apps                    []string
	AppIC, AppICLo, AppICHi []float64
}

// Figure11 validates the LBench generator and measures per-application
// interference coefficients.
func (s *Suite) Figure11() Figure11Result {
	md := lbench.NewModel(s.Cfg)
	res := Figure11Result{}

	// Left: sweep configured intensity 10..50% and measure generated LoI.
	for pct := 10; pct <= 50; pct += 10 {
		res.ConfiguredPct = append(res.ConfiguredPct, float64(pct))
		for _, threads := range []int{1, 2} {
			n, ok := md.Configure(float64(pct)/100, threads)
			loi := 0.0
			if ok {
				loi = md.MeasuredLoI(lbench.Config{Threads: threads, FlopsPerElement: n}) * 100
			}
			if threads == 1 {
				res.Measured1T = append(res.Measured1T, loi)
			} else {
				res.Measured2T = append(res.Measured2T, loi)
			}
		}
	}

	// Middle: background workload sweeping 1..128 flops/element with 12
	// threads; measure IC via the probe and raw traffic via PCM counters.
	l := link.New(s.Cfg.Link)
	for f := 1; f <= 128; f *= 2 {
		c := lbench.Config{Threads: 12, FlopsPerElement: f}
		bg := md.OfferedRaw(c)
		res.FlopsPerElement = append(res.FlopsPerElement, f)
		res.IC = append(res.IC, md.IC(bg))
		res.PCMTrafficGBs = append(res.PCMTrafficGBs, l.PCMTraffic(bg)/1e9)
	}

	// Right: per-application IC on the headline pooling setup (50% in the
	// paper's protocol; scenario suites install their own split).
	local := s.headline()
	res.AppPooled = 1 - local
	ics := pool.Map(s.lim(), len(s.Entries), func(i int) [3]float64 {
		e := s.Entries[i]
		rep := s.Profiler.Level2(e, 1, local)
		cfg := s.Profiler.ConfigForLocalFraction(e, 1, local)
		mean, lo, hi := md.ICOfWorkload(cfg, rep.Phase2Stats)
		return [3]float64{mean, lo, hi}
	})
	for i, e := range s.Entries {
		res.Apps = append(res.Apps, e.Name)
		res.AppIC = append(res.AppIC, ics[i][0])
		res.AppICLo = append(res.AppICLo, ics[i][1])
		res.AppICHi = append(res.AppICHi, ics[i][2])
	}
	return res
}

// ID implements Result.
func (Figure11Result) ID() string { return "figure11" }

// Report builds the three panels.
func (r Figure11Result) Report() report.Doc {
	left := report.NewTable("Figure 11 (left): LBench intensity calibration",
		"Configured %", "Measured LoI (1 thread)", "Measured LoI (2 threads)")
	for i, c := range r.ConfiguredPct {
		m1 := report.Str("-")
		if r.Measured1T[i] > 0 {
			m1 = report.FixedSuffix(r.Measured1T[i], 1, "%")
		}
		left.Row(report.FixedSuffix(c, 0, "%"), m1, report.FixedSuffix(r.Measured2T[i], 1, "%"))
	}

	mid := report.NewTable("Figure 11 (middle): LBench IC vs saturating PCM counter (12 threads)",
		"flops/element", "IC (LBench)", "UPI traffic GB/s (PCM)")
	for i, f := range r.FlopsPerElement {
		mid.Row(report.Int(f), report.Fixed(r.IC[i], 2), report.Fixed(r.PCMTrafficGBs[i], 1))
	}

	right := report.NewTable(
		fmt.Sprintf("Figure 11 (right): interference coefficient induced by applications (%d%% pooling)",
			pct(r.AppPooled)),
		"Application", "IC mean", "IC min", "IC max")
	for i, a := range r.Apps {
		right.Row(report.Str(a), report.Fixed(r.AppIC[i], 3),
			report.Fixed(r.AppICLo[i], 3), report.Fixed(r.AppICHi[i], 3))
	}
	return *report.New("figure11").Append(
		left.Block(), report.Gap(), mid.Block(), report.Gap(), right.Block())
}

// Render implements Result.
func (r Figure11Result) Render() string { return report.RenderText(r.Report()) }
