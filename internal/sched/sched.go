// Package sched implements the system-level use case of §7.2:
// interference-aware job scheduling on a rack-scale memory pool.
//
// Two layers are provided. The first reproduces the paper's Figure 13
// protocol exactly: a profiled workload runs against background pool
// interference whose level re-rolls uniformly at random every Period
// seconds; the baseline scheduler draws from LoI 0–50% while the
// interference-aware scheduler, which keeps interference-inducing jobs off
// the shared pool, draws from LoI 0–20%. One hundred runs per configuration
// yield the five-number summaries of the figure.
//
// The second layer is an event-driven rack co-location simulator: a queue of
// profiled jobs is placed onto the nodes of a rack that share one memory
// pool, each running job injecting its own remote traffic onto the link.
// A placement policy decides which queued job starts when a node frees; the
// interference-aware policy uses the jobs' interference coefficients (the
// §6.2 hint the paper proposes adding to job descriptions) to avoid
// co-locating high-pressure jobs with sensitive ones.
//
// The Monte-Carlo sweeps are embarrassingly parallel and deterministic at
// the same time: every simulated run owns the RNG substream of its run
// index (stats.RNG.Stream), so Distribution and Compare produce
// byte-identical results whether executed sequentially or across a worker
// pool of any size.
package sched

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/pool"
	"repro/internal/stats"
)

// Interference describes the §7.2 background interference process: the level
// of interference is re-rolled uniformly in [0, MaxLoI] every Period seconds.
type Interference struct {
	// MaxLoI is the top of the uniform LoI range (0.5 baseline, 0.2 aware).
	MaxLoI float64
	// Period is the re-roll interval in seconds (60 in the paper).
	Period float64
}

// Baseline is the paper's random scheduler: LoI re-rolled in 0–50%.
func Baseline() Interference { return Interference{MaxLoI: 0.5, Period: 60} }

// Aware is the paper's interference-aware scheduler: LoI capped at 20%.
func Aware() Interference { return Interference{MaxLoI: 0.2, Period: 60} }

// SimulateRun executes one run of the profiled phases under the interference
// process, advancing the piecewise-constant interference level at every
// Period boundary. Within a constant-LoI window the phase progresses at rate
// 1/T(LoI); the run time is the total simulated wall clock.
//
// Distributions of many runs over the same (cfg, phases) should go through
// Distribution*/Compare*, which build the phase evaluator once and share it
// across runs instead of paying the timing-model setup per run.
func SimulateRun(cfg machine.Config, phases []machine.PhaseStats, pol Interference, rng *stats.RNG) float64 {
	return simulateRun(machine.NewEvaluator(cfg, phases), pol, rng)
}

// simulateRun is SimulateRun on a prebuilt evaluator: the Monte-Carlo hot
// path. The evaluator returns bit-identical times to Config.PhaseTime, so
// the simulated wall clock matches the direct implementation exactly.
func simulateRun(ev *machine.Evaluator, pol Interference, rng *stats.RNG) float64 {
	if pol.Period <= 0 {
		pol.Period = 60
	}
	now := 0.0
	loi := rng.Float64() * pol.MaxLoI
	nextRoll := pol.Period
	for pi, n := 0, ev.Len(); pi < n; pi++ {
		remaining := 1.0 // fraction of the phase left
		for remaining > 1e-12 {
			t := ev.PhaseTime(pi, loi)
			if t <= 0 {
				break
			}
			finish := remaining * t
			if now+finish <= nextRoll {
				now += finish
				remaining = 0
				break
			}
			// Progress until the next interference re-roll.
			dt := nextRoll - now
			remaining -= dt / t
			now = nextRoll
			loi = rng.Float64() * pol.MaxLoI
			nextRoll += pol.Period
		}
	}
	return now
}

// Distribution runs n independent simulations and returns the run times.
// Run i draws from substream i of the seeded generator, so the result is
// identical to DistributionParallel at any worker count.
func Distribution(cfg machine.Config, phases []machine.PhaseStats, pol Interference, n int, seed uint64) []float64 {
	return DistributionParallel(cfg, phases, pol, n, seed, 1)
}

// DistributionParallel runs n independent simulations across a bounded
// worker pool. Each run i owns the deterministic RNG substream
// stats.NewRNG(seed).Stream(i), so times[i] depends only on (seed, i): the
// returned slice is byte-identical for any worker count, including the
// sequential workers=1 case.
func DistributionParallel(cfg machine.Config, phases []machine.PhaseStats, pol Interference, n int, seed uint64, workers int) []float64 {
	return DistributionLimited(cfg, phases, pol, n, seed, pool.NewLimiter(workers))
}

// DistributionLimited is DistributionParallel drawing workers from a shared
// concurrency limiter, so callers that are themselves part of a parallel
// sweep (the Figure 13 driver) stay inside one global budget.
func DistributionLimited(cfg machine.Config, phases []machine.PhaseStats, pol Interference, n int, seed uint64, l *pool.Limiter) []float64 {
	// Substreams derives all n substream states in one O(n) pass over the
	// jump chain and one allocation; substream i is identical to
	// stats.NewRNG(seed).Stream(i). The phase evaluator is built once and
	// shared read-only by every run.
	rngs := stats.NewRNG(seed).Substreams(n)
	times := make([]float64, n)
	ev := machine.NewEvaluator(cfg, phases)
	l.ForEach(n, func(i int) {
		times[i] = simulateRun(ev, pol, &rngs[i])
	})
	return times
}

// DistributionContext is DistributionLimited gated by ctx: once ctx is
// done no further simulation starts, and the call returns ctx.Err() with a
// nil slice. An uncancelled call returns exactly DistributionLimited's
// times — cancellation awareness never perturbs the substream decomposition.
func DistributionContext(ctx context.Context, cfg machine.Config, phases []machine.PhaseStats, pol Interference, n int, seed uint64, l *pool.Limiter) ([]float64, error) {
	cl := l.WithContext(ctx)
	times := DistributionLimited(cfg, phases, pol, n, seed, cl)
	if err := cl.Err(); err != nil {
		return nil, err
	}
	return times, nil
}

// Summary compares baseline and interference-aware distributions for one
// workload (one panel of Figure 13).
type Summary struct {
	Workload string
	Baseline stats.FiveNum
	Aware    stats.FiveNum
	// MeanSpeedup is mean_baseline/mean_aware - 1.
	MeanSpeedup float64
	// P75Reduction is 1 - q3_aware/q3_baseline (the paper's variability
	// measure: the decrease of the 75th percentile).
	P75Reduction float64
}

// Compare runs the Figure 13 protocol: n runs under each scheduler.
func Compare(workload string, cfg machine.Config, phases []machine.PhaseStats, n int, seed uint64) Summary {
	return CompareParallel(workload, cfg, phases, n, seed, 1)
}

// CompareParallel is Compare with the two run distributions simulated on a
// bounded worker pool. The summary is byte-identical for any worker count.
func CompareParallel(workload string, cfg machine.Config, phases []machine.PhaseStats, n int, seed uint64, workers int) Summary {
	return CompareLimited(workload, cfg, phases, n, seed, pool.NewLimiter(workers))
}

// CompareContext is CompareLimited gated by ctx: once ctx is done no
// further Monte-Carlo run starts, and the call returns ctx.Err() with a
// zero Summary. The uncancelled summary is byte-identical to
// CompareLimited's for any limiter width.
func CompareContext(ctx context.Context, workload string, cfg machine.Config, phases []machine.PhaseStats, n int, seed uint64, l *pool.Limiter) (Summary, error) {
	cl := l.WithContext(ctx)
	s := CompareLimited(workload, cfg, phases, n, seed, cl)
	if err := cl.Err(); err != nil {
		return Summary{}, err
	}
	return s, nil
}

// CompareLimited is CompareParallel drawing workers from a shared
// concurrency limiter.
func CompareLimited(workload string, cfg machine.Config, phases []machine.PhaseStats, n int, seed uint64, l *pool.Limiter) Summary {
	base := DistributionLimited(cfg, phases, Baseline(), n, seed, l)
	aware := DistributionLimited(cfg, phases, Aware(), n, seed+1, l)
	s := Summary{
		Workload: workload,
		Baseline: stats.FiveNumber(base),
		Aware:    stats.FiveNumber(aware),
	}
	mb, ma := stats.Mean(base), stats.Mean(aware)
	if ma > 0 {
		s.MeanSpeedup = mb/ma - 1
	}
	if s.Baseline.Q3 > 0 {
		s.P75Reduction = 1 - s.Aware.Q3/s.Baseline.Q3
	}
	return s
}

// ---------------------------------------------------------------------------
// Rack-level co-location simulator
// ---------------------------------------------------------------------------

// Job is one schedulable unit: a profiled workload plus the §6.2 hints a
// user would attach to the submission.
type Job struct {
	// Name identifies the job.
	Name string
	// Phases is the profiled execution (on the pooled configuration the
	// rack provides).
	Phases []machine.PhaseStats
	// IC is the interference coefficient hint (induced interference).
	IC float64
	// Sensitivity is 1 - relative performance at LoI=50% (0 = insensitive).
	Sensitivity float64
}

// InjectedRaw returns the job's time-averaged raw link traffic demand on an
// idle system, in bytes/s — the background pressure it puts on pool peers.
func (j Job) InjectedRaw(cfg machine.Config) float64 {
	var bytes, t float64
	for _, ph := range j.Phases {
		bytes += float64(ph.RemoteBytes) * cfg.Link.Overhead
		t += cfg.PhaseTime(ph, 0)
	}
	if t <= 0 {
		return 0
	}
	return bytes / t
}

// IdleTime returns the job's run time on an idle system.
func (j Job) IdleTime(cfg machine.Config) float64 { return cfg.RunTime(j.Phases, 0) }

// Policy selects the next queued job for a freed node.
type Policy int

const (
	// FIFO starts jobs in arrival order regardless of interference.
	FIFO Policy = iota
	// InterferenceAware starts the queued job with the lowest predicted
	// mutual-interference cost against the currently running set, using
	// the submitted IC and sensitivity hints: pairing a pressure-inducing
	// job (high IC) with a sensitive one — or two pressure-inducing jobs
	// with each other — is what the paper's aware scheduler prevents.
	InterferenceAware
)

// String names the policy.
func (p Policy) String() string {
	if p == InterferenceAware {
		return "interference-aware"
	}
	return "fifo"
}

// RackConfig describes one rack of Figure 2.
type RackConfig struct {
	// Nodes is the number of compute nodes sharing the pool.
	Nodes int
	// Machine is the per-node platform (link = the shared pool link of the
	// node; pool pressure is the sum of co-runners' injected traffic).
	Machine machine.Config
}

// JobResult records one completed job.
type JobResult struct {
	Name string
	// Start and End are simulated times.
	Start, End float64
	// IdleTime is the interference-free run time, so Slowdown can be
	// derived: End-Start vs IdleTime.
	IdleTime float64
}

// Slowdown is the job's stretch relative to an idle system.
func (r JobResult) Slowdown() float64 {
	if r.IdleTime <= 0 {
		return 1
	}
	return (r.End - r.Start) / r.IdleTime
}

// ScheduleResult is the outcome of one rack simulation.
type ScheduleResult struct {
	Policy   Policy
	Jobs     []JobResult
	Makespan float64
}

// MeanSlowdown averages the per-job slowdowns.
func (s ScheduleResult) MeanSlowdown() float64 {
	if len(s.Jobs) == 0 {
		return 1
	}
	sum := 0.0
	for _, j := range s.Jobs {
		sum += j.Slowdown()
	}
	return sum / float64(len(s.Jobs))
}

// MaxSlowdown is the worst per-job stretch — the tail the aware policy cuts.
func (s ScheduleResult) MaxSlowdown() float64 {
	max := 1.0
	for _, j := range s.Jobs {
		if sl := j.Slowdown(); sl > max {
			max = sl
		}
	}
	return max
}

type runningJob struct {
	job       Job
	node      int
	start     float64
	phase     int     // current phase index
	remaining float64 // fraction of current phase left
}

// Schedule simulates the queue on the rack under the policy. Jobs start in
// queue order (FIFO) or by the interference-aware selection rule; every
// running job sees a pool LoI equal to the sum of its co-runners' injected
// raw traffic over the link peak (clamped to 1). Rates are recomputed at
// every start/completion event.
func Schedule(rc RackConfig, queue []Job, pol Policy) ScheduleResult {
	if rc.Nodes <= 0 {
		rc.Nodes = 2
	}
	pending := append([]Job(nil), queue...)
	var running []*runningJob
	freeNodes := rc.Nodes
	now := 0.0
	res := ScheduleResult{Policy: pol}

	pick := func() int {
		if len(pending) == 0 {
			return -1
		}
		if pol == FIFO {
			return 0
		}
		// Interference-aware: minimize the predicted mutual cost of the
		// candidate against the running set. The candidate's induced
		// pressure (IC-1) hurts sensitive runners, and the runners'
		// induced pressure hurts a sensitive candidate; ties keep queue
		// order.
		cost := func(c Job) float64 {
			sum := 0.0
			for _, r := range running {
				sum += r.job.Sensitivity*(c.IC-1) + c.Sensitivity*(r.job.IC-1)
			}
			return sum
		}
		best := 0
		bestCost := cost(pending[0])
		for i := 1; i < len(pending); i++ {
			if c := cost(pending[i]); c < bestCost-1e-12 {
				best, bestCost = i, c
			}
		}
		return best
	}

	start := func(i int) {
		j := pending[i]
		pending = append(pending[:i], pending[i+1:]...)
		running = append(running, &runningJob{job: j, start: now, remaining: 1})
		freeNodes--
	}

	// loiFor computes the pool interference level job r experiences from its
	// co-runners' idle-rate injected traffic.
	loiFor := func(r *runningJob) float64 {
		bg := 0.0
		for _, o := range running {
			if o != r {
				bg += o.job.InjectedRaw(rc.Machine)
			}
		}
		loi := bg / rc.Machine.Link.PeakTraffic
		return stats.Clamp(loi, 0, 1)
	}

	for len(pending) > 0 || len(running) > 0 {
		for freeNodes > 0 {
			i := pick()
			if i < 0 {
				break
			}
			start(i)
		}
		if len(running) == 0 {
			break // nodes exist but nothing runnable
		}
		// Next event: the earliest phase completion at current rates.
		minDT := -1.0
		for _, r := range running {
			ph := r.job.Phases[r.phase]
			t := rc.Machine.PhaseTime(ph, loiFor(r))
			dt := r.remaining * t
			if minDT < 0 || dt < minDT {
				minDT = dt
			}
		}
		if minDT <= 0 {
			minDT = 1e-9
		}
		// Advance every running job by minDT.
		var still []*runningJob
		for _, r := range running {
			ph := r.job.Phases[r.phase]
			t := rc.Machine.PhaseTime(ph, loiFor(r))
			if t > 0 {
				r.remaining -= minDT / t
			}
			if r.remaining <= 1e-9 {
				r.phase++
				r.remaining = 1
			}
			if r.phase >= len(r.job.Phases) {
				res.Jobs = append(res.Jobs, JobResult{
					Name:     r.job.Name,
					Start:    r.start,
					End:      now + minDT,
					IdleTime: r.job.IdleTime(rc.Machine),
				})
				freeNodes++
			} else {
				still = append(still, r)
			}
		}
		running = still
		now += minDT
	}
	res.Makespan = now
	sort.Slice(res.Jobs, func(i, j int) bool { return res.Jobs[i].Start < res.Jobs[j].Start })
	return res
}

// String summarizes the schedule.
func (s ScheduleResult) String() string {
	return fmt.Sprintf("%s: %d jobs, makespan %.2fs, mean slowdown %.3f, max %.3f",
		s.Policy, len(s.Jobs), s.Makespan, s.MeanSlowdown(), s.MaxSlowdown())
}
