package api

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
)

// acceptsGzip reports whether the request negotiated a gzip response: an
// Accept-Encoding member named gzip (or x-gzip) whose qvalue is not zero.
// Anything else — absent header, identity-only, gzip;q=0 — keeps the
// identity encoding, so a plain curl or a conditional GET revalidating an
// identity tag is never surprised by compressed bytes.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(part, ";")
		switch strings.ToLower(strings.TrimSpace(coding)) {
		case "gzip", "x-gzip":
			if v, ok := strings.CutPrefix(strings.ToLower(strings.ReplaceAll(params, " ", "")), "q="); ok {
				if q, err := strconv.ParseFloat(v, 64); err == nil && q == 0 {
					return false
				}
			}
			return true
		}
	}
	return false
}

// gzipBytes compresses a response body at the default level. Rendered
// documents live in memory as strings already, so one extra in-memory copy
// is the whole cost of negotiation.
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	_, _ = zw.Write(b)
	_ = zw.Close()
	return buf.Bytes()
}

// Metrics is the serving-layer counter set: every request, every render a
// flight executed, every waiter a flight absorbed, every 304 and every
// gzipped body. `GET /v1/stats` serves a snapshot, which is what the
// sbench harness diffs around a load run.
type Metrics struct {
	// Requests counts every request through the handler, any route.
	Requests atomic.Int64
	// Renders counts coalesced-flight executions (cache hits included —
	// it is the number of times the backend render path ran un-shared).
	Renders atomic.Int64
	// Coalesced counts requests that joined an already-in-flight render
	// instead of starting their own.
	Coalesced atomic.Int64
	// NotModified counts conditional requests answered 304.
	NotModified atomic.Int64
	// Gzipped counts success bodies served gzip-encoded.
	Gzipped atomic.Int64
}

// Snapshot returns the counters as a JSON-ready map.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"requests":     m.Requests.Load(),
		"renders":      m.Renders.Load(),
		"coalesced":    m.Coalesced.Load(),
		"not_modified": m.NotModified.Load(),
		"gzipped":      m.Gzipped.Load(),
	}
}

// counted increments the request counter around a handler.
func counted(m *Metrics, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.Requests.Add(1)
		h.ServeHTTP(w, r)
	})
}
