// Package report is the typed artifact document model that decouples the
// experiment drivers' measurements from their presentation. Each driver
// reduces its result to a Doc — an ordered list of Table, Series, Timeline,
// Dist and Note blocks whose cells carry machine-readable values plus the
// formatting rule that reproduces the paper's human-readable form — and the
// pluggable renderers turn the same Doc into plain text (byte-identical to
// the historical Render() output, with textplot as the text backend), JSON
// (lossless: the document unmarshals back into an equal Doc) or CSV.
//
// On top of the renderers, Store memoizes one render per (platform,
// artifact, format) triple, writes artifact directories, and serves any
// artifact in any format over HTTP — computation happens once, presentation
// is a lookup.
package report

import (
	"encoding/json"
	"math"
	"strconv"

	"repro/internal/textplot"
	"repro/internal/units"
)

// Float is a float64 payload that survives JSON round-trips even when
// non-finite: NaN and the infinities — which encoding/json rejects — are
// encoded as the strings "NaN", "+Inf" and "-Inf".
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	case `"+Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Floats converts a float64 slice to the JSON-safe Float representation.
func Floats(xs []float64) []Float {
	if xs == nil {
		return nil
	}
	out := make([]Float, len(xs))
	for i, x := range xs {
		out[i] = Float(x)
	}
	return out
}

// Doc is one complete artifact document: the machine-readable form of a
// table or figure, composed of ordered presentation blocks.
type Doc struct {
	// Artifact is the artifact id, e.g. "figure9".
	Artifact string `json:"artifact"`
	// Platform is the scenario the artifact was computed on ("" when the
	// producer did not say; Store stamps the platform it fetched under).
	Platform string  `json:"platform,omitempty"`
	Blocks   []Block `json:"blocks"`
}

// New returns an empty document for the given artifact id.
func New(artifact string) *Doc { return &Doc{Artifact: artifact} }

// Append adds blocks in order and returns the doc for chaining.
func (d *Doc) Append(blocks ...Block) *Doc {
	d.Blocks = append(d.Blocks, blocks...)
	return d
}

// Block is one document block. Exactly one field is non-nil.
type Block struct {
	Table    *Table    `json:"table,omitempty"`
	Series   *Series   `json:"series,omitempty"`
	Timeline *Timeline `json:"timeline,omitempty"`
	Dist     *Dist     `json:"dist,omitempty"`
	Note     *Note     `json:"note,omitempty"`
}

// Table is an aligned table of units-aware cells.
type Table struct {
	Title   string   `json:"title,omitempty"`
	Headers []string `json:"headers,omitempty"`
	Rows    [][]Cell `json:"rows"`
}

// NewTable returns an empty table block.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends one row of cells.
func (t *Table) Row(cells ...Cell) { t.Rows = append(t.Rows, cells) }

// Block wraps the table for Doc.Append.
func (t *Table) Block() Block { return Block{Table: t} }

// SeriesKind selects how a Series block renders.
type SeriesKind string

// Series kinds.
const (
	// Line is an x/y scatter of one or more named lines (a textplot.Plot).
	Line SeriesKind = "line"
	// Bar is a labeled horizontal bar chart (a textplot.BarChart).
	Bar SeriesKind = "bar"
)

// Series is a plotted dataset: either named x/y lines or labeled bars.
type Series struct {
	Title string     `json:"title,omitempty"`
	Kind  SeriesKind `json:"kind"`
	// XLabel/YLabel/Cols/Rows configure line plots (zero means the text
	// renderer's defaults).
	XLabel string       `json:"xlabel,omitempty"`
	YLabel string       `json:"ylabel,omitempty"`
	Cols   int          `json:"cols,omitempty"`
	Rows   int          `json:"rows,omitempty"`
	Lines  []SeriesLine `json:"lines,omitempty"`
	// Unit/Width/Labels/Values configure bar charts.
	Unit   string   `json:"unit,omitempty"`
	Width  int      `json:"width,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Values []Float  `json:"values,omitempty"`
}

// SeriesLine is one named line of a line-kind Series.
type SeriesLine struct {
	Name string  `json:"name"`
	X    []Float `json:"x"`
	Y    []Float `json:"y"`
}

// NewLinePlot returns an empty line-kind series block.
func NewLinePlot(title, xlabel, ylabel string) *Series {
	return &Series{Title: title, Kind: Line, XLabel: xlabel, YLabel: ylabel}
}

// AddLine appends one named line. X and Y must be the same length.
func (s *Series) AddLine(name string, x, y []float64) {
	if len(x) != len(y) {
		panic("report: series line length mismatch")
	}
	s.Lines = append(s.Lines, SeriesLine{Name: name, X: Floats(x), Y: Floats(y)})
}

// NewBarChart returns an empty bar-kind series block.
func NewBarChart(title, unit string) *Series {
	return &Series{Title: title, Kind: Bar, Unit: unit}
}

// AddBar appends one labeled bar.
func (s *Series) AddBar(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, Float(value))
}

// Block wraps the series for Doc.Append.
func (s *Series) Block() Block { return Block{Series: s} }

// Timeline is one or more named per-step value sequences (the x axis is the
// step index).
type Timeline struct {
	Title  string         `json:"title,omitempty"`
	XLabel string         `json:"xlabel,omitempty"`
	YLabel string         `json:"ylabel,omitempty"`
	Rows   int            `json:"rows,omitempty"`
	Lines  []TimelineLine `json:"lines"`
}

// TimelineLine is one named value sequence.
type TimelineLine struct {
	Name   string  `json:"name"`
	Values []Float `json:"values"`
}

// Block wraps the timeline for Doc.Append.
func (t *Timeline) Block() Block { return Block{Timeline: t} }

// Dist is a five-number distribution summary rendered as one
// box-and-whisker line scaled to the [Lo, Hi] axis range.
type Dist struct {
	Label  string `json:"label"`
	Min    Float  `json:"min"`
	Q1     Float  `json:"q1"`
	Median Float  `json:"median"`
	Q3     Float  `json:"q3"`
	Max    Float  `json:"max"`
	Lo     Float  `json:"lo"`
	Hi     Float  `json:"hi"`
	Width  int    `json:"width,omitempty"`
}

// Block wraps the dist for Doc.Append.
func (d *Dist) Block() Block { return Block{Dist: d} }

// Note is verbatim presentation text: summary lines and the whitespace glue
// between blocks. The text renderer emits Text unchanged; the CSV renderer
// skips notes.
type Note struct {
	Text string `json:"text"`
}

// NoteBlock returns a note block with the given verbatim text.
func NoteBlock(text string) Block { return Block{Note: &Note{Text: text}} }

// Gap is the canonical one-blank-line separator between blocks.
func Gap() Block { return NoteBlock("\n") }

// Kind selects a cell's payload field and text formatting rule.
type Kind string

// Cell kinds.
const (
	// KindStr renders S verbatim; Vals optionally carries the numeric
	// payload of composite cells (e.g. "97.5% balanced").
	KindStr Kind = "str"
	// KindInt renders I in decimal (with optional Prefix/Suffix).
	KindInt Kind = "int"
	// KindUint renders U in decimal.
	KindUint Kind = "uint"
	// KindNum renders V the way textplot renders raw float64 cells
	// (integers plainly, everything else with three significant digits).
	KindNum Kind = "num"
	// KindFixed renders V with Prec decimals (plus optional Prefix/Suffix),
	// e.g. Prec 3 -> "1.234", Suffix "%" -> "12.3%".
	KindFixed Kind = "fixed"
	// KindPercent renders the ratio V via units.Percent ("%.1f%%" of V*100).
	KindPercent Kind = "pct"
	// KindBytes renders U via units.Bytes ("1.50 GiB").
	KindBytes Kind = "bytes"
	// KindFlops renders V via units.Flops ("2.50 Gflop/s").
	KindFlops Kind = "flops"
	// KindBandwidth renders V via units.Bandwidth ("34.00 GB/s").
	KindBandwidth Kind = "bw"
	// KindSeconds renders V via units.Seconds ("1.23 ms").
	KindSeconds Kind = "sec"
)

// Cell is one units-aware table cell: a typed value plus the formatting
// rule that reproduces the paper's printed form.
type Cell struct {
	Kind   Kind    `json:"k"`
	S      string  `json:"s,omitempty"`
	V      Float   `json:"v,omitempty"`
	I      int64   `json:"i,omitempty"`
	U      uint64  `json:"u,omitempty"`
	Prec   int     `json:"prec,omitempty"`
	Prefix string  `json:"pre,omitempty"`
	Suffix string  `json:"suf,omitempty"`
	Vals   []Float `json:"vals,omitempty"`
}

// Str returns a verbatim text cell; vals optionally attaches the numeric
// payload of a composite cell so machine consumers need not re-parse text.
func Str(s string, vals ...float64) Cell {
	return Cell{Kind: KindStr, S: s, Vals: Floats(vals)}
}

// Int returns a decimal integer cell.
func Int(n int) Cell { return Cell{Kind: KindInt, I: int64(n)} }

// Uint returns a decimal unsigned-integer cell.
func Uint(n uint64) Cell { return Cell{Kind: KindUint, U: n} }

// Num returns an auto-formatted float cell (textplot's raw-float rule).
func Num(v float64) Cell { return Cell{Kind: KindNum, V: Float(v)} }

// Fixed returns a fixed-precision float cell ("%.<prec>f").
func Fixed(v float64, prec int) Cell {
	return Cell{Kind: KindFixed, V: Float(v), Prec: prec}
}

// FixedSuffix returns a fixed-precision float cell with a unit suffix, e.g.
// FixedSuffix(12.3, 1, "%") -> "12.3%" and FixedSuffix(1.25, 2, "x") -> "1.25x".
func FixedSuffix(v float64, prec int, suffix string) Cell {
	return Cell{Kind: KindFixed, V: Float(v), Prec: prec, Suffix: suffix}
}

// Pct returns a ratio cell rendered as a percentage (units.Percent).
func Pct(ratio float64) Cell { return Cell{Kind: KindPercent, V: Float(ratio)} }

// Bytes returns a byte-count cell (units.Bytes).
func Bytes(n uint64) Cell { return Cell{Kind: KindBytes, U: n} }

// Flops returns a flop-rate cell (units.Flops).
func Flops(v float64) Cell { return Cell{Kind: KindFlops, V: Float(v)} }

// Bandwidth returns a byte-rate cell (units.Bandwidth).
func Bandwidth(v float64) Cell { return Cell{Kind: KindBandwidth, V: Float(v)} }

// Seconds returns a duration cell (units.Seconds).
func Seconds(v float64) Cell { return Cell{Kind: KindSeconds, V: Float(v)} }

// Text renders the cell's human-readable form — the exact string the
// pre-pipeline drivers printed.
func (c Cell) Text() string {
	switch c.Kind {
	case KindInt:
		return c.Prefix + strconv.FormatInt(c.I, 10) + c.Suffix
	case KindUint:
		return c.Prefix + strconv.FormatUint(c.U, 10) + c.Suffix
	case KindNum:
		return c.Prefix + textplot.TrimFloat(float64(c.V)) + c.Suffix
	case KindFixed:
		return c.Prefix + strconv.FormatFloat(float64(c.V), 'f', c.Prec, 64) + c.Suffix
	case KindPercent:
		return units.Percent(float64(c.V))
	case KindBytes:
		return units.Bytes(c.U)
	case KindFlops:
		return units.Flops(float64(c.V))
	case KindBandwidth:
		return units.Bandwidth(float64(c.V))
	case KindSeconds:
		return units.Seconds(float64(c.V))
	}
	return c.S
}

// Value renders the cell's machine-readable form for CSV: integers in
// decimal, floats in shortest round-trippable form (non-finite values as
// "NaN"/"+Inf"/"-Inf", all of which strconv.ParseFloat accepts), strings
// verbatim.
func (c Cell) Value() string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatInt(c.I, 10)
	case KindUint, KindBytes:
		return strconv.FormatUint(c.U, 10)
	case KindNum, KindFixed, KindPercent, KindFlops, KindBandwidth, KindSeconds:
		return strconv.FormatFloat(float64(c.V), 'g', -1, 64)
	}
	return c.S
}
