// Package machine assembles the emulated platform of the paper's Figure 3:
// one compute node with a node-local memory tier, a pooled remote tier
// behind a contended link, an L2 cache with a hardware prefetcher, and a
// roofline-based timing engine.
//
// Workloads drive the machine through Read/Write/AddFlops between
// StartPhase/EndPhase markers (the pf_start/pf_stop tracing API of the
// profiler maps onto these). Execution produces PhaseStats — pure data —
// and execution time is a pure function of (PhaseStats, Config, LoI), so
// experiments can re-evaluate a measured phase under any interference level
// without re-running the workload. This mirrors how the paper first profiles
// and then reasons analytically about deployment configurations.
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/link"
	"repro/internal/mem"
)

// Config is the full platform description. The defaults reproduce the
// paper's dual-socket Skylake-X testbed constants.
type Config struct {
	Name string

	// Memory geometry.
	Mem mem.Config
	// Cache geometry (the L2 + streamer model).
	Cache cache.Config
	// Link is the pool interconnect.
	Link link.Config

	// PeakFlops is the node peak in flop/s.
	PeakFlops float64
	// LocalBandwidth is the node-local memory bandwidth in bytes/s.
	LocalBandwidth float64
	// LocalLatency is the node-local access latency in seconds.
	LocalLatency float64
	// MLP is the average number of overlapping outstanding demand misses;
	// the latency-bound term divides by it.
	MLP float64
	// StreamDemandPenalty is the extra cost of moving bytes through
	// demand-streamed misses instead of prefetches: with the prefetcher
	// off, a streaming phase takes (1+penalty)x the bandwidth-bound time.
	// This calibrates the paper's prefetch performance gains (~30-60%
	// for streaming HPC codes, Figure 8).
	StreamDemandPenalty float64
	// LatencyBWCoupling couples loaded link latency to achievable remote
	// streaming bandwidth: effBW = DataBW / (1 + coupling*(delay-1)).
	// This models the finite-outstanding-prefetch limit that makes
	// bandwidth-bound apps interference-sensitive below link saturation.
	LatencyBWCoupling float64
}

// Default returns the testbed-calibrated configuration: 73 GB/s / 111 ns
// local, 34 GB/s / 202 ns remote, 85 GB/s peak raw link traffic.
func Default() Config {
	return Config{
		Name: "skylake-emulated",
		Mem:  mem.Config{PageSize: 4096},
		// The cache is deliberately small relative to workload
		// footprints: what matters for fidelity is the footprint:cache
		// ratio, and the real testbed runs GB-scale working sets
		// against MB-scale caches.
		Cache: cache.Config{
			Size:            256 << 10,
			Ways:            16,
			PrefetchEnabled: true,
			PrefetchDegree:  4,
			PrefetchStreams: 16,
			PageSize:        4096,
		},
		Link: link.Config{
			DataBandwidth: 34e9,
			PeakTraffic:   85e9,
			Overhead:      1.15,
			Latency:       202e-9,
		},
		PeakFlops:           250e9,
		LocalBandwidth:      73e9,
		LocalLatency:        111e-9,
		MLP:                 28,
		LatencyBWCoupling:   0.5,
		StreamDemandPenalty: 0.85,
	}
}

// WithLocalCapacity returns a copy of the config with the local tier capped
// at n bytes (the setup_waste protocol: local capacity set to a fraction of
// the workload's peak usage).
func (c Config) WithLocalCapacity(n uint64) Config {
	c.Mem.LocalCapacity = n
	return c
}

// WithPrefetch returns a copy with the hardware prefetcher toggled.
func (c Config) WithPrefetch(on bool) Config {
	c.Cache.PrefetchEnabled = on
	return c
}

// WithName returns a copy with the platform name set. Scenario specs use
// the derivation helpers below to parameterize a platform from a base
// configuration instead of mutating struct fields in place.
func (c Config) WithName(name string) Config {
	c.Name = name
	return c
}

// WithLink returns a copy with the pool interconnect replaced.
func (c Config) WithLink(l link.Config) Config {
	c.Link = l
	return c
}

// WithLocalTier returns a copy with the node-local memory tier set to the
// given bandwidth (bytes/s) and latency (seconds).
func (c Config) WithLocalTier(bandwidth, latency float64) Config {
	c.LocalBandwidth = bandwidth
	c.LocalLatency = latency
	return c
}

// WithPeakFlops returns a copy with the node peak compute set (flop/s).
func (c Config) WithPeakFlops(f float64) Config {
	c.PeakFlops = f
	return c
}

// Tick is one timeline bucket (one workload-defined step), backing the
// traffic-timeline plots of Figure 7.
type Tick struct {
	// LinesIn is cachelines filled from memory during the tick.
	LinesIn uint64
	// Flops executed during the tick.
	Flops float64
	// LocalBytes/RemoteBytes moved during the tick.
	LocalBytes  uint64
	RemoteBytes uint64
}

// PhaseStats captures everything the timing model needs about one phase.
type PhaseStats struct {
	Name string

	// Flops is the floating point work executed in the phase.
	Flops float64
	// LocalBytes and RemoteBytes are memory-traffic payload per tier.
	LocalBytes  uint64
	RemoteBytes uint64
	// DemandMissLocal/Remote are unpredictable demand line fills per tier:
	// the latency-exposed misses.
	DemandMissLocal  uint64
	DemandMissRemote uint64
	// StreamMissLocal/Remote are demand fills that followed a detected
	// stream: overlapped by out-of-order execution, they cost bandwidth
	// (with a penalty) rather than latency.
	StreamMissLocal  uint64
	StreamMissRemote uint64
	// Cache is a snapshot of the cache counters over the phase.
	Cache cache.Counters
	// RemoteAccessRatio and RemoteCapacityRatio at phase end.
	RemoteAccessRatio   float64
	RemoteCapacityRatio float64
	// FootprintBytes is total bound memory at phase end.
	FootprintBytes uint64
	// Ticks is the per-step timeline, if the workload called Tick.
	Ticks []Tick
}

// TotalBytes is payload bytes from both tiers.
func (p PhaseStats) TotalBytes() uint64 { return p.LocalBytes + p.RemoteBytes }

// ArithmeticIntensity is flops per byte moved from memory, the paper's
// AI = FLOPS / (Byte_LM + Byte_RM).
func (p PhaseStats) ArithmeticIntensity() float64 {
	tb := p.TotalBytes()
	if tb == 0 {
		return 0
	}
	return p.Flops / float64(tb)
}

// Hook observes the operations a workload drives through a machine, in
// order. It backs trace recording (internal/trace): a recorded operation
// stream can be replayed onto machines with different memory
// configurations, the profile-once / analyze-everywhere workflow.
type Hook interface {
	// OnAlloc fires after a region is reserved.
	OnAlloc(r *mem.Region, pl mem.Placement)
	// OnFree fires before a region is released.
	OnFree(r *mem.Region)
	// OnAccess fires for every demand access (before cache simulation).
	OnAccess(addr, n uint64, write bool)
	// OnFlops fires for every AddFlops call.
	OnFlops(n float64)
	// OnPhase fires at StartPhase (start=true) and EndPhase (start=false).
	OnPhase(name string, start bool)
	// OnTick fires at every timeline tick.
	OnTick()
}

// Machine is one emulated compute node. Not safe for concurrent use.
type Machine struct {
	cfg   Config
	Space *mem.Space
	Cache *cache.Cache
	Link  *link.Link

	phases []PhaseStats
	cur    *PhaseStats

	// Baselines for phase-delta accounting.
	baseCache cache.Counters
	fills     [cache.NumFillReasons][2]uint64 // [reason][tier] line fills in current phase
	tickBase  tickSnapshot

	peakFootprint uint64
	flops         float64
	flopsBase     float64

	hook Hook
}

// SetHook installs an operation observer (nil to remove).
func (m *Machine) SetHook(h Hook) { m.hook = h }

type tickSnapshot struct {
	linesIn     uint64
	flops       float64
	localBytes  uint64
	remoteBytes uint64
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	m := &Machine{cfg: cfg}
	m.Space = mem.NewSpace(cfg.Mem)
	cfg.Cache.PageSize = m.Space.PageSize()
	m.Cache = cache.New(cfg.Cache, m.onFill)
	m.Link = link.New(cfg.Link)
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

func (m *Machine) onFill(lineAddr uint64, reason cache.FillReason) {
	tier := m.Space.Access(lineAddr, cache.LineSize)
	m.fills[reason][tier]++
	if tier == mem.TierRemote {
		m.Link.AddPayload(cache.LineSize)
	}
	if fp := m.Space.Footprint(); fp > m.peakFootprint {
		m.peakFootprint = fp
	}
}

// Alloc reserves a named region with first-touch placement.
func (m *Machine) Alloc(name string, size uint64) *mem.Region {
	r := m.Space.Alloc(name, size)
	if m.hook != nil {
		m.hook.OnAlloc(r, mem.PlaceFirstTouch)
	}
	return r
}

// AllocPlaced reserves a named region with an explicit placement policy.
func (m *Machine) AllocPlaced(name string, size uint64, pl mem.Placement) *mem.Region {
	r := m.Space.AllocPlaced(name, size, pl)
	if m.hook != nil {
		m.hook.OnAlloc(r, pl)
	}
	return r
}

// Free releases a region (capacity returns to its tiers).
func (m *Machine) Free(r *mem.Region) {
	if m.hook != nil {
		m.hook.OnFree(r)
	}
	m.Space.Free(r)
}

// Read issues a demand read of n bytes at addr.
func (m *Machine) Read(addr, n uint64) {
	if m.hook != nil {
		m.hook.OnAccess(addr, n, false)
	}
	m.Cache.AccessRange(addr, n, false)
}

// Write issues a demand write of n bytes at addr (write-allocate).
func (m *Machine) Write(addr, n uint64) {
	if m.hook != nil {
		m.hook.OnAccess(addr, n, true)
	}
	m.Cache.AccessRange(addr, n, true)
}

// AddFlops accounts floating-point work for the current phase.
func (m *Machine) AddFlops(n float64) {
	if m.hook != nil {
		m.hook.OnFlops(n)
	}
	m.flops += n
}

// PeakFootprint returns the largest footprint observed so far.
func (m *Machine) PeakFootprint() uint64 { return m.peakFootprint }

// StartPhase opens a named profiling phase (pf_start).
func (m *Machine) StartPhase(name string) {
	if m.cur != nil {
		m.EndPhase()
	}
	if m.hook != nil {
		m.hook.OnPhase(name, true)
	}
	m.Space.ResetTraffic()
	m.Link.Reset()
	m.baseCache = m.Cache.Counters()
	m.fills = [cache.NumFillReasons][2]uint64{}
	m.flopsBase = m.flops
	m.cur = &PhaseStats{Name: name}
	m.tickBase = m.snapshot()
}

func (m *Machine) snapshot() tickSnapshot {
	c := m.Cache.Counters()
	return tickSnapshot{
		linesIn:     c.LinesIn,
		flops:       m.flops,
		localBytes:  m.Space.TierBytes(mem.TierLocal),
		remoteBytes: m.Space.TierBytes(mem.TierRemote),
	}
}

// Tick closes one timeline bucket within the current phase.
func (m *Machine) Tick() {
	if m.cur == nil {
		return
	}
	if m.hook != nil {
		m.hook.OnTick()
	}
	now := m.snapshot()
	m.cur.Ticks = append(m.cur.Ticks, Tick{
		LinesIn:     now.linesIn - m.tickBase.linesIn,
		Flops:       now.flops - m.tickBase.flops,
		LocalBytes:  now.localBytes - m.tickBase.localBytes,
		RemoteBytes: now.remoteBytes - m.tickBase.remoteBytes,
	})
	m.tickBase = now
}

// EndPhase closes the current phase and records its statistics.
func (m *Machine) EndPhase() PhaseStats {
	if m.cur == nil {
		panic("machine: EndPhase without StartPhase")
	}
	if m.hook != nil {
		m.hook.OnPhase(m.cur.Name, false)
	}
	p := m.cur
	m.cur = nil
	c := m.Cache.Counters()
	p.Cache = cache.Counters{
		DemandAccesses:   c.DemandAccesses - m.baseCache.DemandAccesses,
		DemandHits:       c.DemandHits - m.baseCache.DemandHits,
		DemandMisses:     c.DemandMisses - m.baseCache.DemandMisses,
		LinesIn:          c.LinesIn - m.baseCache.LinesIn,
		PrefetchFills:    c.PrefetchFills - m.baseCache.PrefetchFills,
		UselessPrefetch:  c.UselessPrefetch - m.baseCache.UselessPrefetch,
		PrefetchedHits:   c.PrefetchedHits - m.baseCache.PrefetchedHits,
		DemandMissStream: c.DemandMissStream - m.baseCache.DemandMissStream,
	}
	p.Flops = m.flops - m.flopsBase
	p.LocalBytes = m.Space.TierBytes(mem.TierLocal)
	p.RemoteBytes = m.Space.TierBytes(mem.TierRemote)
	p.DemandMissLocal = m.fills[cache.FillDemand][mem.TierLocal]
	p.DemandMissRemote = m.fills[cache.FillDemand][mem.TierRemote]
	p.StreamMissLocal = m.fills[cache.FillDemandStream][mem.TierLocal]
	p.StreamMissRemote = m.fills[cache.FillDemandStream][mem.TierRemote]
	p.RemoteAccessRatio = m.Space.RemoteAccessRatio()
	p.RemoteCapacityRatio = m.Space.RemoteCapacityRatio()
	p.FootprintBytes = m.Space.Footprint()
	m.phases = append(m.phases, *p)
	return *p
}

// Phases returns the recorded phases in order.
func (m *Machine) Phases() []PhaseStats { return m.phases }

// Phase returns the recorded phase with the given name, or false.
func (m *Machine) Phase(name string) (PhaseStats, bool) {
	for _, p := range m.phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStats{}, false
}

// PhaseTime evaluates the timing model for a phase under background
// interference loi (fraction of peak raw link traffic, 0..1):
//
//	T = max(T_compute, T_local, T_remote) + T_latency
//
// with the remote bandwidth reduced both by proportional sharing past link
// saturation and by the latency–bandwidth coupling below it, and the
// latency term scaled by the M/M/1-style delay factor. The fixed point in
// (T, rho) is solved by iteration.
func (c Config) PhaseTime(p PhaseStats, loi float64) float64 {
	l := link.New(c.Link)
	bgRaw := loi * c.Link.PeakTraffic

	tCompute := 0.0
	if c.PeakFlops > 0 {
		tCompute = p.Flops / c.PeakFlops
	}
	// Demand-streamed fills cost extra bandwidth-side time: without the
	// prefetcher running ahead, the same bytes arrive through a shorter
	// in-flight window.
	localEff := float64(p.LocalBytes) + c.StreamDemandPenalty*float64(p.StreamMissLocal)*cache.LineSize
	tLocal := 0.0
	if c.LocalBandwidth > 0 {
		tLocal = localEff / c.LocalBandwidth
	}

	remoteBytes := float64(p.RemoteBytes) + c.StreamDemandPenalty*float64(p.StreamMissRemote)*cache.LineSize
	// Initial guess: uncontended.
	t := tCompute + 1e-12
	if tLocal > t {
		t = tLocal
	}
	if remoteBytes > 0 {
		tr := remoteBytes / c.Link.DataBandwidth
		if tr > t {
			t = tr
		}
	}
	mlp := c.MLP
	if mlp <= 0 {
		mlp = 1
	}
	for iter := 0; iter < 20; iter++ {
		appRemoteRate := remoteBytes / t
		rho := l.Utilization(l.RawTraffic(appRemoteRate) + bgRaw)
		delay := l.DelayFactor(rho)

		effBW := c.Link.DataBandwidth / (1 + c.LatencyBWCoupling*(delay-1))
		// Capacity available to a greedy streamer under the background
		// load: full data bandwidth until the link saturates, then a
		// proportional share.
		share := l.ShareBandwidth(c.Link.DataBandwidth, bgRaw)
		if share < effBW {
			effBW = share
		}
		tRemote := 0.0
		if remoteBytes > 0 && effBW > 0 {
			tRemote = remoteBytes / effBW
		}

		latRemote := c.Link.Latency * l.DemandDelayFactor(rho)
		tLat := (float64(p.DemandMissLocal)*c.LocalLatency +
			float64(p.DemandMissRemote)*latRemote) / mlp

		tNew := maxf(tCompute, tLocal, tRemote) + tLat
		if tNew <= 0 {
			tNew = 1e-12
		}
		if relDiff(tNew, t) < 1e-9 {
			t = tNew
			break
		}
		t = tNew
	}
	return t
}

// RunTime is the total time of a set of phases at interference loi.
func (c Config) RunTime(phases []PhaseStats, loi float64) float64 {
	total := 0.0
	for _, p := range phases {
		total += c.PhaseTime(p, loi)
	}
	return total
}

// Sensitivity returns relative performance (T_loi0 / T_loi) of the phases at
// the given interference level: 1.0 means unaffected, lower means slower.
func (c Config) Sensitivity(phases []PhaseStats, loi float64) float64 {
	base := c.RunTime(phases, 0)
	loaded := c.RunTime(phases, loi)
	if loaded == 0 {
		return 1
	}
	return base / loaded
}

// BandwidthRatio returns the remote share of aggregate bandwidth,
// R_BW^remote = BW_remote / (BW_local + BW_remote) — the upper reference
// line of Figure 9.
func (c Config) BandwidthRatio() float64 {
	total := c.LocalBandwidth + c.Link.DataBandwidth
	if total == 0 {
		return 0
	}
	return c.Link.DataBandwidth / total
}

func maxf(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	den := b
	if den <= 0 {
		den = 1e-30
	}
	return d / den
}

// String identifies the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("machine(%s, local=%d B)", m.cfg.Name, m.cfg.Mem.LocalCapacity)
}
