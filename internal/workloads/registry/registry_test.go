package registry

import (
	"testing"

	"repro/internal/machine"
)

func TestAllHasSixWorkloadsInPaperOrder(t *testing.T) {
	want := []string{"HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("got %d entries, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.Name != want[i] {
			t.Errorf("entry %d = %s, want %s", i, e.Name, want[i])
		}
		if e.Description == "" || e.Parallelization == "" {
			t.Errorf("%s: missing metadata", e.Name)
		}
		for _, in := range e.Inputs {
			if in == "" {
				t.Errorf("%s: empty input description", e.Name)
			}
		}
		if len(e.Phases) < 2 {
			t.Errorf("%s: every workload has at least init+compute phases", e.Name)
		}
		if e.New == nil {
			t.Errorf("%s: nil constructor", e.Name)
		}
	}
}

func TestGetAndNames(t *testing.T) {
	e, err := Get("SuperLU")
	if err != nil || e.Name != "SuperLU" {
		t.Fatalf("Get(SuperLU) = %v, %v", e.Name, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload should error")
	}
	names := Names()
	if len(names) != 6 || names[0] != "HPL" {
		t.Fatalf("Names() = %v", names)
	}
}

// TestEveryWorkloadEmitsDeclaredPhases runs each workload once and checks
// the recorded phases match the registry's declaration.
func TestEveryWorkloadEmitsDeclaredPhases(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			m := machine.New(machine.Default())
			e.New(1).Run(m)
			phases := m.Phases()
			if len(phases) != len(e.Phases) {
				t.Fatalf("recorded %d phases, registry declares %d", len(phases), len(e.Phases))
			}
			for i, ph := range phases {
				if ph.Name != e.Phases[i] {
					t.Errorf("phase %d = %s, want %s", i, ph.Name, e.Phases[i])
				}
				if ph.TotalBytes() == 0 {
					t.Errorf("phase %s moved no memory", ph.Name)
				}
			}
		})
	}
}

// TestWorkloadsDeterministic runs each workload twice and requires
// identical traffic statistics (all RNG is seeded).
func TestWorkloadsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload twice; the quick tier keeps the single-pass phase check")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			run := func() []machine.PhaseStats {
				m := machine.New(machine.Default())
				e.New(1).Run(m)
				return m.Phases()
			}
			a, b := run(), run()
			for i := range a {
				if a[i].TotalBytes() != b[i].TotalBytes() || a[i].Flops != b[i].Flops ||
					a[i].Cache.LinesIn != b[i].Cache.LinesIn {
					t.Fatalf("phase %s differs between runs: %+v vs %+v", a[i].Name, a[i], b[i])
				}
			}
		})
	}
}
