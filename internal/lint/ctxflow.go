package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces the engine's cancellation contract (PR 5):
// context flows in from the caller, first parameter by convention, and
// library code never manufactures its own root context —
// context.Background()/context.TODO() sever the cancellation chain, so a
// request abandoning a computation could no longer reclaim its workers.
// The few places that legitimately detach (a background job outliving its
// submitting request, a coalesced flight outliving any single waiter, a
// compatibility wrapper) carry an explicit //repro:allow with the
// lifecycle argument.
func CtxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "context.Context is the first parameter and is threaded, never recreated from Background/TODO",
		Appl: KindLibrary,
		Run:  runCtxFlow,
	}
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxPosition(pass, n)
			case *ast.CallExpr:
				fn := calleeFunc(pass, n)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(n.Pos(), "context.%s severs the cancellation chain: accept a ctx from the caller (//repro:allow ctxflow for deliberate lifecycle detach)", fn.Name())
				}
			}
			return true
		})
	}
}

// checkCtxPosition flags exported functions and methods that accept a
// context.Context anywhere but first.
func checkCtxPosition(pass *Pass, decl *ast.FuncDecl) {
	if !decl.Name.IsExported() {
		return
	}
	if decl.Recv != nil {
		// Methods on unexported types are internal plumbing.
		if len(decl.Recv.List) != 1 {
			return
		}
		if name := recvTypeName(pass.TypeOf(decl.Recv.List[0].Type)); name == "" || !ast.IsExported(name) {
			return
		}
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		t := pass.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(t) && idx > 0 {
			pass.Reportf(field.Pos(), "%s accepts context.Context at parameter %d: context is the first parameter of every exported entry point", decl.Name.Name, idx)
			return
		}
		idx += n
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
