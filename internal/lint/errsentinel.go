package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// substringFuncs are the strings-package predicates that turn error text
// into control flow when fed err.Error().
var substringFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"Index": true, "LastIndex": true, "EqualFold": true, "Count": true,
}

// ErrSentinelAnalyzer enforces sentinel-based error classification (PR 5):
// non-test code never branches on error message text. The HTTP layer's
// status mapping, retry decisions and test assertions all go through
// errors.Is/errors.As against exported sentinels — message text is
// documentation, free to improve without breaking callers.
//
// Flagged shapes: err.Error() (or any error's Error() result) flowing into
// strings.Contains/HasPrefix/HasSuffix/Index/LastIndex/EqualFold/Count,
// and direct ==/!= comparison of an Error() call against a string.
func ErrSentinelAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errsentinel",
		Doc:  "classify errors with errors.Is/errors.As against sentinels, never by message text",
		Appl: KindLibrary | KindMain,
		Run:  runErrSentinel,
	}
}

func runErrSentinel(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !substringFuncs[fn.Name()] {
					return true
				}
				for _, arg := range n.Args {
					if pos, ok := containsErrorCall(pass, arg); ok {
						pass.Reportf(pos, "strings.%s over err.Error(): classify with errors.Is/errors.As against an exported sentinel, not message text", fn.Name())
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if isErrorCall(pass, side) {
						pass.Reportf(n.Pos(), "comparing err.Error() text: classify with errors.Is/errors.As against an exported sentinel, not message text")
						return true
					}
				}
			}
			return true
		})
	}
}

// containsErrorCall walks e for any (error).Error() call.
func containsErrorCall(pass *Pass, e ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if expr, ok := n.(ast.Expr); ok && isErrorCall(pass, expr) {
			pos, found = expr.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

// isErrorCall reports whether e is a call of the Error() method on a value
// implementing the error interface.
func isErrorCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	recv := pass.TypeOf(sel.X)
	return recv != nil && types.Implements(recv, errorInterface())
}

// errorInterface returns the universe error interface type.
func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
