// Package link models the interconnect between a compute node and the
// rack-scale memory pool — the role played by the UPI socket link in the
// paper's emulation platform.
//
// The model captures the three behaviours the paper leans on in §3.2 and §6:
//
//  1. link traffic carries protocol overhead, so raw traffic can exceed the
//     peak data bandwidth;
//  2. a PCM-style hardware counter measures raw traffic but saturates at the
//     peak link bandwidth, hiding contention beyond the saturation point;
//  3. queueing delay keeps growing past saturation, which is exactly what
//     LBench observes and raw counters cannot (Figure 11, middle panel).
//
// Delay uses a bounded closed-system contention model: with a finite number
// of outstanding requests per core (MSHRs), queue depth — and therefore
// loaded latency — grows roughly linearly in offered utilization rather
// than diverging like an open M/M/1 queue. Offered load beyond the link
// peak keeps increasing delay (the overload regime), which is exactly the
// regime PCM counters cannot observe and LBench can (Figure 11, middle).
package link

import "repro/internal/stats"

// Config describes the pool link.
type Config struct {
	// DataBandwidth is the peak payload bandwidth in bytes/s
	// (34 GB/s inter-socket on the paper's testbed).
	DataBandwidth float64
	// PeakTraffic is the peak raw link traffic in bytes/s including
	// protocol overhead (85 GB/s on the testbed). LoI percentages are
	// defined against this value.
	PeakTraffic float64
	// Overhead is the protocol overhead multiplier applied to payload
	// bytes to obtain raw link traffic. Defaults to 1.15.
	Overhead float64
	// Latency is the unloaded one-way access latency in seconds
	// (202 ns on the testbed).
	Latency float64
	// DelaySlope is the loaded-latency growth per unit of offered
	// utilization below saturation. Defaults to 0.5.
	DelaySlope float64
	// OverloadSlope is the delay growth per unit of offered load beyond
	// the link peak (rho > 1). Defaults to 0.6: past saturation, backlog
	// accumulates faster than the loaded-latency growth below it. The
	// default reproduces the paper's interference-coefficient scale
	// (IC ~2.6 at 1 flop/element, 12 threads — Figure 11, middle).
	OverloadSlope float64
	// DemandDelaySlope is the loaded-latency growth seen by individual
	// demand misses, gentler than the bulk DelaySlope: short reads
	// interleave between queued bulk transfers, so their latency degrades
	// slower than streaming bandwidth contends. Defaults to 0.18.
	DemandDelaySlope float64
}

func (c Config) withDefaults() Config {
	if c.Overhead == 0 {
		c.Overhead = 1.15
	}
	if c.DelaySlope == 0 {
		c.DelaySlope = 0.5
	}
	if c.OverloadSlope == 0 {
		c.OverloadSlope = 0.6
	}
	if c.DemandDelaySlope == 0 {
		c.DemandDelaySlope = 0.18
	}
	return c
}

// WithLatency returns a copy of the config with the unloaded access latency
// set to d seconds. Scenario specs use these derivation helpers to express
// alternate interconnect generations as deltas against a base link.
func (c Config) WithLatency(d float64) Config {
	c.Latency = d
	return c
}

// WithBandwidth returns a copy with the peak payload bandwidth and the peak
// raw traffic set (bytes/s).
func (c Config) WithBandwidth(data, peak float64) Config {
	c.DataBandwidth = data
	c.PeakTraffic = peak
	return c
}

// WithOverhead returns a copy with the protocol overhead multiplier set.
func (c Config) WithOverhead(x float64) Config {
	c.Overhead = x
	return c
}

// Link is the contention model plus traffic accounting.
type Link struct {
	cfg Config
	// payloadBytes accumulates payload bytes moved since last reset.
	payloadBytes uint64
}

// New returns a link with the given configuration.
func New(cfg Config) *Link {
	return &Link{cfg: cfg.withDefaults()}
}

// Config returns the configuration with defaults applied.
func (l *Link) Config() Config { return l.cfg }

// AddPayload records payload bytes moved over the link.
func (l *Link) AddPayload(n uint64) { l.payloadBytes += n }

// PayloadBytes returns payload bytes moved since the last reset.
func (l *Link) PayloadBytes() uint64 { return l.payloadBytes }

// Reset clears traffic accounting.
func (l *Link) Reset() { l.payloadBytes = 0 }

// RawTraffic converts payload bytes (or bytes/s) to raw link traffic
// including protocol overhead.
func (l *Link) RawTraffic(payload float64) float64 { return payload * l.cfg.Overhead }

// Utilization returns offered raw load as a fraction of peak traffic.
// It is not clamped: values above 1 indicate overload.
func (l *Link) Utilization(rawRate float64) float64 {
	if l.cfg.PeakTraffic == 0 {
		return 0
	}
	return rawRate / l.cfg.PeakTraffic
}

// PCMTraffic is the raw traffic a PCM-style hardware counter would report
// for an offered raw rate: the real rate below the link peak, and the peak
// once saturated (counters cannot see queued demand).
func (l *Link) PCMTraffic(offeredRaw float64) float64 {
	if offeredRaw > l.cfg.PeakTraffic {
		return l.cfg.PeakTraffic
	}
	return offeredRaw
}

// DelayFactor returns the multiplicative queueing delay for a total offered
// utilization rho (raw load / peak, not clamped). Below the link peak the
// loaded latency grows linearly with utilization (closed-system queueing
// with finite outstanding requests); past the peak it keeps growing at the
// overload slope, so contention remains measurable after the PCM counter
// has pinned at the link bandwidth.
func (l *Link) DelayFactor(rho float64) float64 {
	if rho <= 0 {
		return 1
	}
	if rho <= 1 {
		return 1 + l.cfg.DelaySlope*rho
	}
	return 1 + l.cfg.DelaySlope + l.cfg.OverloadSlope*(rho-1)
}

// EffectiveLatency returns the loaded access latency at utilization rho.
func (l *Link) EffectiveLatency(rho float64) float64 {
	return l.cfg.Latency * l.DelayFactor(rho)
}

// DemandDelayFactor is the queueing delay experienced by individual demand
// misses at utilization rho: the same piecewise-linear shape as DelayFactor
// but with the gentler demand slope.
func (l *Link) DemandDelayFactor(rho float64) float64 {
	s := l.cfg.DemandDelaySlope
	if rho <= 0 {
		return 1
	}
	if rho <= 1 {
		return 1 + s*rho
	}
	return 1 + s + 1.2*s*(rho-1)
}

// ShareBandwidth returns the payload bandwidth available to a flow with
// offered payload demand `demand` (bytes/s) while background raw traffic
// `bgRaw` (bytes/s) occupies the link. Below saturation the flow is limited
// only by the data bandwidth; when total offered raw load exceeds the link
// peak, capacity is split proportionally to offered demand (max-min style
// proportional share).
func (l *Link) ShareBandwidth(demand, bgRaw float64) float64 {
	if demand <= 0 {
		return 0
	}
	demandRaw := l.RawTraffic(demand)
	total := demandRaw + bgRaw
	if total <= l.cfg.PeakTraffic {
		return minf(demand, l.cfg.DataBandwidth)
	}
	shareRaw := l.cfg.PeakTraffic * demandRaw / total
	share := shareRaw / l.cfg.Overhead
	return stats.Clamp(share, 0, l.cfg.DataBandwidth)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
