// Package hypre implements the structured-interface solver workload of the
// paper's Table 2 (Hypre ex4-style): a preconditioned conjugate gradient
// iteration on the 7-point Laplacian over an n^3 grid with a Jacobi
// (diagonal) preconditioner.
//
// The profile matches the paper's characterization: low arithmetic
// intensity, streaming access uniformly across the whole footprint (the
// overlapping CDF curves of Figure 6e), high prefetch coverage, and — being
// bandwidth-bound — the highest sensitivity to pool interference among the
// six workloads (Figure 10).
package hypre

import (
	"math"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// Hypre is one solver instance.
type Hypre struct {
	// N is the grid edge; the domain is N^3 points.
	N int
	// MaxIters bounds the CG iteration count; Tol is the relative
	// residual target.
	MaxIters int
	Tol      float64

	// After Run: Iters performed and final relative residual.
	Iters       int
	RelResidual float64
	// Solution is the computed grid solution (for verification).
	Solution []float64
}

// New returns a Hypre instance at input scale 1, 2 or 4 (grid edge grows by
// 4^(1/3) per step to preserve the paper's 1:2:4 memory ratio).
func New(scale int) *Hypre {
	n := 48
	switch scale {
	case 2:
		n = 60
	case 4:
		n = 76
	}
	return &Hypre{N: n, MaxIters: 40, Tol: 1e-8}
}

// Name implements workloads.Workload.
func (h *Hypre) Name() string { return "Hypre" }

// idx maps (i,j,k) to the linear index; i is the unit-stride dimension.
func (h *Hypre) idx(i, j, k int) int { return (k*h.N+j)*h.N + i }

// Run implements workloads.Workload.
func (h *Hypre) Run(m *machine.Machine) {
	n := h.N
	total := n * n * n

	// ---- p1: setup -----------------------------------------------------
	m.StartPhase("p1")
	x := workloads.NewVec(m, "x", total)
	bv := workloads.NewVec(m, "b", total)
	r := workloads.NewVec(m, "r", total)
	p := workloads.NewVec(m, "p", total)
	q := workloads.NewVec(m, "q", total)
	z := workloads.NewVec(m, "z", total)
	// RHS: a smooth source term; x0 = 0.
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			base := h.idx(0, j, k)
			for i := 0; i < n; i++ {
				fi := float64(i+1) / float64(n+1)
				fj := float64(j+1) / float64(n+1)
				fk := float64(k+1) / float64(n+1)
				bv.Data[base+i] = math.Sin(math.Pi*fi) * math.Sin(math.Pi*fj) * math.Sin(math.Pi*fk)
			}
			bv.WriteRange(base, n)
			x.WriteRange(base, n)
			m.AddFlops(float64(4 * n))
		}
	}
	m.EndPhase()

	// ---- p2: PCG solve ---------------------------------------------------
	m.StartPhase("p2")
	// r = b - A*x0 = b (x0 = 0).
	copy(r.Data, bv.Data)
	bv.ReadRange(0, total)
	r.WriteRange(0, total)
	// Jacobi preconditioner: z = r / diag(A); diag = 6.
	h.precond(m, z, r)
	copy(p.Data, z.Data)
	z.ReadRange(0, total)
	p.WriteRange(0, total)
	rz := h.dot(m, r, z)
	norm0 := math.Sqrt(h.dot(m, r, r))
	if norm0 == 0 {
		norm0 = 1
	}
	iters := 0
	rel := 1.0
	for it := 0; it < h.MaxIters; it++ {
		h.applyStencil(m, q, p)
		pq := h.dot(m, p, q)
		if pq == 0 {
			break
		}
		alpha := rz / pq
		h.axpy(m, x, p, alpha)  // x += alpha p
		h.axpy(m, r, q, -alpha) // r -= alpha q
		h.precond(m, z, r)      // z = M^-1 r
		rzNew := h.dot(m, r, z)
		beta := rzNew / rz
		rz = rzNew
		h.xpay(m, p, z, beta) // p = z + beta p
		iters = it + 1
		rel = math.Sqrt(h.dot(m, r, r)) / norm0
		m.Tick()
		if rel < h.Tol {
			break
		}
	}
	m.EndPhase()

	h.Iters = iters
	h.RelResidual = rel
	h.Solution = append([]float64(nil), x.Data...)
}

// applyStencil computes q = A p for the 7-point Laplacian with Dirichlet
// boundaries: (Ap)_ijk = 6 p_ijk - sum of the six neighbours.
func (h *Hypre) applyStencil(m *machine.Machine, q, p *workloads.Vec) {
	n := h.N
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			base := h.idx(0, j, k)
			// The row itself plus its neighbour rows stream in.
			p.ReadRange(base, n)
			if j > 0 {
				p.ReadRange(h.idx(0, j-1, k), n)
			}
			if j < n-1 {
				p.ReadRange(h.idx(0, j+1, k), n)
			}
			if k > 0 {
				p.ReadRange(h.idx(0, j, k-1), n)
			}
			if k < n-1 {
				p.ReadRange(h.idx(0, j, k+1), n)
			}
			q.WriteRange(base, n)
			for i := 0; i < n; i++ {
				v := 6 * p.Data[base+i]
				if i > 0 {
					v -= p.Data[base+i-1]
				}
				if i < n-1 {
					v -= p.Data[base+i+1]
				}
				if j > 0 {
					v -= p.Data[h.idx(i, j-1, k)]
				}
				if j < n-1 {
					v -= p.Data[h.idx(i, j+1, k)]
				}
				if k > 0 {
					v -= p.Data[h.idx(i, j, k-1)]
				}
				if k < n-1 {
					v -= p.Data[h.idx(i, j, k+1)]
				}
				q.Data[base+i] = v
			}
			m.AddFlops(float64(7 * n))
		}
	}
}

// precond applies the Jacobi preconditioner z = r / 6.
func (h *Hypre) precond(m *machine.Machine, z, r *workloads.Vec) {
	total := len(r.Data)
	r.ReadRange(0, total)
	z.WriteRange(0, total)
	inv := 1.0 / 6.0
	for i := range z.Data {
		z.Data[i] = r.Data[i] * inv
	}
	m.AddFlops(float64(total))
}

// dot returns a . b with streaming reads.
func (h *Hypre) dot(m *machine.Machine, a, b *workloads.Vec) float64 {
	total := len(a.Data)
	a.ReadRange(0, total)
	if a != b {
		b.ReadRange(0, total)
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	m.AddFlops(float64(2 * total))
	return s
}

// axpy computes y += alpha * x.
func (h *Hypre) axpy(m *machine.Machine, y, x *workloads.Vec, alpha float64) {
	total := len(y.Data)
	x.ReadRange(0, total)
	y.ReadRange(0, total)
	y.WriteRange(0, total)
	for i := range y.Data {
		y.Data[i] += alpha * x.Data[i]
	}
	m.AddFlops(float64(2 * total))
}

// xpay computes p = z + beta * p.
func (h *Hypre) xpay(m *machine.Machine, p, z *workloads.Vec, beta float64) {
	total := len(p.Data)
	z.ReadRange(0, total)
	p.ReadRange(0, total)
	p.WriteRange(0, total)
	for i := range p.Data {
		p.Data[i] = z.Data[i] + beta*p.Data[i]
	}
	m.AddFlops(float64(2 * total))
}
