package api

import (
	"net/http"
	"strings"

	"repro/internal/report"
)

// negotiate picks the response format: an explicit ?format= always wins
// (and must parse — report.ParseFormat, the same parser the CLI flag
// uses), otherwise the Accept header's media types are scanned in order
// for the first one a renderer backs. Unrecognized Accept types are
// skipped rather than rejected — a plain `curl` gets text — so only an
// explicit malformed ?format= is a client error.
func negotiate(r *http.Request) (report.Format, error) {
	if q := r.URL.Query().Get("format"); q != "" {
		return report.ParseFormat(q)
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType, _, _ := strings.Cut(part, ";")
		switch strings.ToLower(strings.TrimSpace(mediaType)) {
		case "application/json":
			return report.FormatJSON, nil
		case "text/csv":
			return report.FormatCSV, nil
		case "text/plain":
			return report.FormatText, nil
		}
	}
	return report.FormatText, nil
}
