// Package bfs implements the graph-processing workload of the paper's
// Table 2: breadth-first search in the style of the Ligra framework on
// symmetric rMAT graphs, plus the two data-placement variants of the §7.1
// case study.
//
// The baseline variant reproduces the original allocation behaviour the
// paper observed: a large initialization scratch buffer is allocated first
// (filling the local tier), the CSR arrays next, and the hot Parents array
// last — so under memory pooling Parents lands remote and the remote access
// ratio approaches 99% at 75% pooling. The optimized variant applies the
// paper's two fixes: allocate and initialize Parents first (first-touch
// pins it locally), and free the initialization scratch at the end of
// setup, reserving local headroom for the dynamic frontier allocations of
// the search phase. Freeing costs a walk over the buffer, matching the ~3%
// deallocation penalty the paper measured on a local-only system.
package bfs

import (
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Variant selects the §7.1 data-placement strategy.
type Variant int

const (
	// Baseline is the original allocation order with the unfreed scratch.
	Baseline Variant = iota
	// ReorderOnly applies only the first fix (Parents allocated first).
	ReorderOnly
	// Optimized applies both fixes (reorder + free the scratch).
	Optimized
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case ReorderOnly:
		return "reorder-only"
	case Optimized:
		return "optimized"
	default:
		return "baseline"
	}
}

// BFS is one search workload instance.
type BFS struct {
	// NVerts is the vertex count; AvgDeg the directed average degree
	// before symmetrization.
	NVerts, AvgDeg int
	// Roots is how many BFS traversals the compute phase performs.
	Roots int
	// Variant selects the case-study placement strategy.
	Variant Variant
	seed    uint64

	// After Run: Parents holds the final traversal's parent array and
	// Reached the number of vertices reached in it.
	Parents []int32
	Reached int
	// graph retained for verification.
	offsets []int32
	adj     []int32
}

// New returns a BFS instance at input scale 1, 2 or 4 (vertex count doubles
// per step; the rMAT degree skew deepens with scale like the paper's
// N=2^24..2^26 inputs).
func New(scale int) *BFS {
	// The Parents array (4 bytes/vertex) must exceed the L2 capacity for
	// the §7.1 placement study to be meaningful, exactly as the paper's
	// N=2^24..2^26 inputs dwarf the real L2.
	nv := 1 << 17
	switch scale {
	case 2:
		nv = 1 << 18
	case 4:
		nv = 1 << 19
	}
	return &BFS{NVerts: nv, AvgDeg: 8, Roots: 2, Variant: Baseline, seed: 0xb5f5}
}

// Name implements workloads.Workload.
func (b *BFS) Name() string { return "BFS" }

// rmatEdge draws one rMAT edge with the Graph500 parameters
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05).
func rmatEdge(rng *stats.RNG, scale int) (int32, int32) {
	var u, v int32
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < 0.57:
			// quadrant a: no bits set
		case r < 0.76:
			v |= 1 << bit
		case r < 0.95:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}

func log2int(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

// Run implements workloads.Workload.
func (b *BFS) Run(m *machine.Machine) {
	nv := b.NVerts
	ndir := nv * b.AvgDeg
	nsym := 2 * ndir
	vbits := log2int(nv)

	// ---- p1: graph construction ----------------------------------------
	m.StartPhase("p1")

	var parents *workloads.IntVec
	if b.Variant != Baseline {
		// Fix 1: hot array first, initialized immediately so first-touch
		// pins it to the local tier.
		parents = workloads.NewIntVec(m, "Parents", nv)
		for i := range parents.Data {
			parents.Data[i] = -1
		}
		parents.WriteRange(0, nv)
	}

	// The big initialization scratch: the raw edge list (Ligra's load
	// buffer). Two int32 per directed edge.
	scratch := workloads.NewIntVec(m, "edge-scratch", 2*ndir)
	rng := stats.NewRNG(b.seed)
	for e := 0; e < ndir; e++ {
		u, v := rmatEdge(rng, vbits)
		scratch.Data[2*e] = u
		scratch.Data[2*e+1] = v
	}
	scratch.WriteRange(0, 2*ndir)

	// Degree histogram and prefix sum over the symmetrized edges.
	offsets := workloads.NewIntVec(m, "offsets", nv+1)
	for e := 0; e < ndir; e++ {
		u, v := scratch.Data[2*e], scratch.Data[2*e+1]
		offsets.Data[u+1]++
		offsets.Data[v+1]++
	}
	scratch.ReadRange(0, 2*ndir)
	for i := 1; i <= nv; i++ {
		offsets.Data[i] += offsets.Data[i-1]
	}
	offsets.ReadRange(0, nv+1)
	offsets.WriteRange(0, nv+1)

	// Adjacency fill.
	adj := workloads.NewIntVec(m, "adj", nsym)
	cursor := make([]int32, nv)
	for e := 0; e < ndir; e++ {
		u, v := scratch.Data[2*e], scratch.Data[2*e+1]
		pu := offsets.Data[u] + cursor[u]
		pv := offsets.Data[v] + cursor[v]
		adj.Data[pu] = v
		adj.Data[pv] = u
		cursor[u]++
		cursor[v]++
		adj.WriteAt(int(pu), v)
		adj.WriteAt(int(pv), u)
	}
	scratch.ReadRange(0, 2*ndir)

	if b.Variant == Baseline {
		// Original order: Parents allocated last, after local is full.
		parents = workloads.NewIntVec(m, "Parents", nv)
		for i := range parents.Data {
			parents.Data[i] = -1
		}
		parents.WriteRange(0, nv)
	}

	if b.Variant == Optimized {
		// Fix 2: the one-line change — free the scratch. The walk over
		// the buffer is the deallocator cost the paper measured at ~3%.
		scratch.ReadRange(0, 2*ndir)
		scratch.Free()
	}
	m.EndPhase()

	// ---- p2: traversals --------------------------------------------------
	m.StartPhase("p2")
	for r := 0; r < b.Roots; r++ {
		root := int32((int(b.seed) + r*7919) % nv)
		for i := range parents.Data {
			parents.Data[i] = -1
		}
		parents.WriteRange(0, nv)
		b.search(m, parents, offsets, adj, root)
		m.Tick()
	}
	m.EndPhase()

	b.Parents = append([]int32(nil), parents.Data...)
	b.Reached = 0
	for _, p := range b.Parents {
		if p >= 0 {
			b.Reached++
		}
	}
	b.offsets = append([]int32(nil), offsets.Data...)
	b.adj = append([]int32(nil), adj.Data...)
}

// search runs one top-down frontier BFS from root. Frontier buffers are
// dynamically allocated per level (Ligra's dense/sparse frontiers) and
// freed when the level completes — the dynamic-heap behaviour that makes
// the §7.1 free-the-scratch fix matter.
func (b *BFS) search(m *machine.Machine, parents, offsets, adj *workloads.IntVec, root int32) {
	nv := b.NVerts
	frontier := workloads.NewIntVec(m, "frontier", nv)
	frontier.Data[0] = root
	frontier.WriteAt(0, root)
	fsize := 1
	parents.Data[root] = root
	parents.WriteAt(int(root), root)

	for fsize > 0 {
		next := workloads.NewIntVec(m, "frontier-next", nv)
		nsize := 0
		for fi := 0; fi < fsize; fi++ {
			u := frontier.ReadAt(fi)
			lo := offsets.ReadAt(int(u))
			hi := offsets.ReadAt(int(u) + 1)
			if hi > lo {
				adj.ReadRange(int(lo), int(hi-lo))
			}
			for p := lo; p < hi; p++ {
				v := adj.Data[p]
				if parents.ReadAt(int(v)) < 0 {
					parents.WriteAt(int(v), u)
					next.WriteAt(nsize, v)
					nsize++
				}
			}
		}
		frontier.Free()
		frontier = next
		fsize = nsize
	}
	frontier.Free()
}
