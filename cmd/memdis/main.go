// Command memdis regenerates the paper's tables and figures on the emulated
// platform. Usage:
//
//	memdis all                        # every experiment in paper order
//	memdis -j 8 all                   # same, fanned out over 8 workers
//	memdis -j 0 all                   # use every core
//	memdis figure9                    # one experiment (figureN or tableN)
//	memdis -platform cxl-gen5 figure9 # same analysis on an alternate platform
//	memdis -format json figure9       # machine-readable artifact on stdout
//	memdis -out artifacts all         # write figureN.txt|.json|.csv files
//	memdis serve                      # serve every artifact over HTTP
//	memdis list                       # list experiment ids
//	memdis platforms                  # list platform scenarios
//
// The -j flag bounds the worker pool for both the experiment-level and the
// intra-driver fan-out. Output is byte-identical for any -j value: every
// randomized simulation owns a deterministic RNG substream keyed by its run
// index, never by worker or completion order.
//
// The -platform flag re-runs the selected experiments on a registered
// scenario (see `memdis platforms`): the drivers use the scenario's link,
// timing constants and capacity sweep in place of the testbed's.
//
// The -format flag picks the stdout renderer (text, json or csv); -out DIR
// additionally writes each selected artifact in every format into DIR. Both
// draw from one render-once artifact store, as does `memdis serve`, which
// answers GET /artifacts/<id>.<txt|json|csv>?platform=<scenario> on -addr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"

	"repro/internal/experiments"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memdis:", err)
		os.Exit(1)
	}
}

// suites builds one experiment suite per platform on demand, so the store
// source shares profiler caches across artifacts of the same scenario.
// This deliberately does not reuse repro.NewExperimentSource: the CLI
// needs the suite handles themselves — to install -j on each and to run
// `all` through Suite.AllParallel — which the Source seam hides.
func suites(workers int) func(platform string) (*experiments.Suite, error) {
	var mu sync.Mutex
	cache := map[string]*experiments.Suite{}
	return func(platform string) (*experiments.Suite, error) {
		mu.Lock()
		defer mu.Unlock()
		if s, ok := cache[platform]; ok {
			return s, nil
		}
		sp, err := scenario.Get(platform)
		if err != nil {
			return nil, err
		}
		s := experiments.NewSuiteFor(sp)
		s.Workers = workers
		cache[platform] = s
		return s, nil
	}
}

// newStore wires the experiment suites behind the artifact store: documents
// compute once per (platform, artifact), renders once per format.
func newStore(forPlatform func(string) (*experiments.Suite, error)) *report.Store {
	return report.NewStore(func(platform, artifact string) (report.Doc, error) {
		// The store keys and the serve URLs use canonical ids only; the CLI
		// canonicalizes aliases before it gets here, and HTTP clients asking
		// for an alias get pointed at the canonical URL instead of computing
		// and caching a duplicate document under a divergent key.
		canon, err := experiments.CanonicalID(artifact)
		if err != nil {
			return report.Doc{}, err
		}
		if canon != artifact {
			return report.Doc{}, fmt.Errorf("%q is an alias: request %q", artifact, canon)
		}
		s, err := forPlatform(platform)
		if err != nil {
			return report.Doc{}, err
		}
		r, err := s.Run(canon)
		if err != nil {
			return report.Doc{}, err
		}
		return r.Report(), nil
	})
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdis", flag.ContinueOnError)
	workers := fs.Int("j", 1, "parallel workers (0 = all cores)")
	platform := fs.String("platform", "baseline", "platform scenario (see `memdis platforms`)")
	format := fs.String("format", "text", "stdout renderer: text, json or csv")
	outDir := fs.String("out", "", "also write each artifact as <id>.txt|.json|.csv into this directory")
	addr := fs.String("addr", "localhost:8080", "listen address for `memdis serve`")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: memdis [-j N] [-platform S] [-format F] [-out DIR] <all|serve|list|platforms|%s|...>", experiments.IDs[0])
	}
	f, err := report.ParseFormat(*format)
	if err != nil {
		return err
	}
	if _, err := scenario.Get(*platform); err != nil {
		return err
	}
	forPlatform := suites(pool.Workers(*workers))
	st := newStore(forPlatform)
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return nil
	case "platforms":
		for _, sc := range scenario.All() {
			fmt.Printf("%-12s  %s\n", sc.Name, sc.Description)
		}
		return nil
	case "serve":
		if len(args) > 1 {
			return fmt.Errorf("unexpected arguments after \"serve\": %v (flags go before the subcommand: memdis -addr HOST:PORT serve)", args[1:])
		}
		fmt.Fprintf(os.Stderr, "memdis: serving artifacts on http://%s/ (default platform %s)\n", *addr, *platform)
		return http.ListenAndServe(*addr, st.Handler(experiments.IDs, *platform))
	case "all":
		if len(args) > 1 {
			// Catch `memdis all -j 4`: flag parsing stops at the first
			// non-flag argument, so a trailing -j would be silently
			// ignored instead of changing the worker count.
			return fmt.Errorf("unexpected arguments after \"all\": %v (flags go before the subcommand: memdis -j N all)", args[1:])
		}
		// Compute the whole artifact set with the experiment-level fan-out
		// and seed the store, which then only renders.
		s, err := forPlatform(*platform)
		if err != nil {
			return err
		}
		for _, r := range s.AllParallel(s.Workers) {
			st.Put(*platform, r.Report())
		}
		return emit(st, *platform, experiments.IDs, f, *outDir, true)
	default:
		// Canonicalize aliases ("fig9" -> "figure9") so store keys, served
		// URLs and -out filenames always match the document's artifact id.
		ids := make([]string, len(args))
		for i, id := range args {
			canon, err := experiments.CanonicalID(id)
			if err != nil {
				return err
			}
			ids[i] = canon
		}
		return emit(st, *platform, ids, f, *outDir, false)
	}
}

// emit prints each artifact in the chosen format (with the historical
// banner for `all` text output) and, when outDir is set, writes the whole
// artifact set in every format there.
func emit(st *report.Store, platform string, ids []string, f report.Format, outDir string, banner bool) error {
	for _, id := range ids {
		out, err := st.Artifact(platform, id, f)
		if err != nil {
			return err
		}
		switch {
		case f == report.FormatText && banner:
			fmt.Printf("==== %s ====\n%s\n", id, out)
		case f == report.FormatText:
			// The historical `memdis <id>` layout: Println adds the blank
			// line that separated consecutive artifacts.
			fmt.Println(out)
		default:
			fmt.Print(out)
		}
	}
	if outDir == "" {
		return nil
	}
	paths, err := st.WriteDir(outDir, platform, ids)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memdis: wrote %d artifact files to %s\n", len(paths), outDir)
	return nil
}
